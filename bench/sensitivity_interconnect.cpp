// Sensitivity study: how the Figure 3 result (one user-defined reduction
// vs forty built-in reductions in NAS MG ZRAN3) depends on the modelled
// interconnect.
//
// The paper measured one machine (IBM P655 with its Federation-era
// fabric).  Replaying the experiment across interconnect presets shows
// the reproduced conclusion is structural: the forty-reduction baseline
// pays 40x the latency term on every fabric, so the RSMPI advantage
// shrinks only as latency does — and never inverts.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "nas/mg.hpp"

namespace {

using namespace rsmpi;

double time_zran3(int p, nas::MgParams params, const mprt::CostModel& model,
                  bool rsmpi_impl) {
  return bench::time_phase(
      p, model, [](mprt::Comm&) {},
      [&](mprt::Comm& comm) {
        auto grid = nas::mg_fill_grid(comm, params);
        const auto charges = rsmpi_impl
                                 ? nas::mg_zran3_rsmpi(comm, grid, 10)
                                 : nas::mg_zran3_baseline(comm, grid, 10);
        (void)nas::mg_apply_charges(grid, charges);
      },
      /*reps=*/3);
}

}  // namespace

int main() {
  std::printf("Sensitivity: Fig. 3 (MG ZRAN3, class A, p = 32) across "
              "interconnect models\n\n");
  struct Fabric {
    const char* name;
    mprt::CostModel model;
  };
  const Fabric fabrics[] = {
      {"gigabit-ethernet (L=50us)", mprt::CostModel::gigabit_ethernet()},
      {"myrinet          (L= 7us)", mprt::CostModel::myrinet()},
      {"default          (L=10us)", mprt::CostModel{}},
      {"infiniband       (L= 2us)", mprt::CostModel::infiniband()},
      {"shared-memory    (L=.5us)", mprt::CostModel::shared_memory()},
  };
  const auto params = nas::mg_params(nas::ProblemClass::A);
  constexpr int kP = 32;

  std::printf("%-28s %16s %16s %10s\n", "fabric", "f-mpi-40red(ms)",
              "rsmpi-1red(ms)", "speedup");
  for (const auto& f : fabrics) {
    const double base = time_zran3(kP, params, f.model, false);
    const double rsm = time_zran3(kP, params, f.model, true);
    std::printf("%-28s %16.3f %16.3f %10.2f\n", f.name, base * 1e3,
                rsm * 1e3, base / rsm);
  }
  std::printf("\nThe single-reduction version wins on every fabric; the "
              "margin tracks\nthe fabric's latency term, which the "
              "40-collective baseline pays 40x.\n");
  return 0;
}
