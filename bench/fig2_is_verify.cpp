// Figure 2 reproduction: efficiency of the NAS IS verification phase,
// classes A/B/C, comparing three implementations across processor counts:
//
//   nas-mpi   the NPB C+MPI structure (boundary exchange + two array
//             references per element + sum reduction),
//   opt-mpi   the same with the paper's scalar optimization (one array
//             reference per element), which the paper reports closes the
//             gap with RSMPI entirely,
//   rsmpi     the global-view `sorted` reduction (Listing 7).
//
// Times are modelled critical-path (virtual-clock) durations of the
// verification phase only; key generation and the bucket sort are setup.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "nas/is.hpp"

namespace {

using namespace rsmpi;
using nas::Key;

using Verifier = bool (*)(mprt::Comm&, const std::vector<Key>&);

double time_verifier(int p, nas::IsParams params, Verifier verify) {
  // Per-rank key storage, filled during setup and read during the phase.
  std::vector<std::vector<Key>> per_rank(static_cast<std::size_t>(p));
  return bench::time_phase(
      p, mprt::CostModel{},
      [&](mprt::Comm& comm) {
        auto& slot = per_rank[static_cast<std::size_t>(comm.rank())];
        if (slot.empty()) {
          auto keys = nas::is_generate_keys(comm, params);
          slot = nas::is_bucket_sort(comm, std::move(keys), params);
        }
      },
      [&](mprt::Comm& comm) {
        const auto& keys = per_rank[static_cast<std::size_t>(comm.rank())];
        if (!verify(comm, keys)) std::abort();
      });
}

void run_class(nas::ProblemClass cls) {
  const auto params = nas::is_params(cls);

  bench::Series nas_mpi{"nas-mpi", {}};
  bench::Series opt_mpi{"opt-mpi", {}};
  bench::Series rsmpi_series{"rsmpi", {}};

  for (const int p : bench::kProcessorCounts) {
    nas_mpi.times_s.push_back(time_verifier(p, params, nas::is_verify_nas_mpi));
    opt_mpi.times_s.push_back(time_verifier(p, params, nas::is_verify_opt_mpi));
    rsmpi_series.times_s.push_back(
        time_verifier(p, params, nas::is_verify_rsmpi));
  }

  bench::print_figure(
      std::string("Figure 2: NAS IS verification, class ") +
          std::string(nas::to_string(cls)) + "  (" +
          std::to_string(params.total_keys) + " keys)",
      bench::kProcessorCounts, {nas_mpi, opt_mpi, rsmpi_series});
}

}  // namespace

int main() {
  std::printf("NAS IS verification phase: C+MPI vs C+RSMPI (paper Fig. 2)\n");
  std::printf("Times are LogGP virtual-clock critical paths; see DESIGN.md.\n");
  for (const auto cls :
       {nas::ProblemClass::A, nas::ProblemClass::B, nas::ProblemClass::C}) {
    run_class(cls);
  }
  return 0;
}
