// Microbenchmarks of the local-view collective algorithms (paper §1/§2):
// linear chain vs order-preserving binomial tree vs combine-as-available
// k-ary tree for reductions, and linear vs recursive-doubling for scans —
// reported as modelled critical-path time so the latency structure
// (O(p) vs O(log p) rounds) is visible regardless of host scheduling.
#include <benchmark/benchmark.h>

#include <span>
#include <string>
#include <vector>

#include "coll/local_reduce.hpp"
#include "coll/local_scan.hpp"
#include "mprt/runtime.hpp"

namespace {

using namespace rsmpi;

/// Runs one collective on p ranks and reports the modelled makespan as the
/// benchmark's manual time (in seconds).
template <typename Body>
void report_vtime(benchmark::State& state, int p, Body body) {
  mprt::CostModel model;
  model.compute_scale = 0.0;  // isolate the communication structure
  for (auto _ : state) {
    const auto result = mprt::run(p, body, model);
    state.SetIterationTime(result.makespan_s);
  }
}

void BM_Reduce_Linear(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  report_vtime(state, p, [](mprt::Comm& comm) {
    long v = comm.rank();
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_reduce(comm, 0, std::span<long>(&v, 1), op,
                       coll::ReduceAlgo::kLinear);
  });
}

void BM_Reduce_Binomial(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  report_vtime(state, p, [](mprt::Comm& comm) {
    long v = comm.rank();
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_reduce(comm, 0, std::span<long>(&v, 1), op,
                       coll::ReduceAlgo::kBinomial);
  });
}

void BM_Reduce_UnorderedTree(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  report_vtime(state, p, [](mprt::Comm& comm) {
    long v = comm.rank();
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_reduce(comm, 0, std::span<long>(&v, 1), op,
                       coll::ReduceAlgo::kUnorderedTree);
  });
}

void BM_Allreduce_Binomial(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  report_vtime(state, p, [](mprt::Comm& comm) {
    long v = comm.rank();
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_allreduce(comm, std::span<long>(&v, 1), op,
                          coll::ReduceAlgo::kBinomial);
  });
}

void BM_Scan_Linear(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  report_vtime(state, p, [](mprt::Comm& comm) {
    long v = comm.rank();
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_xscan(comm, std::span<long>(&v, 1), op,
                      coll::ScanAlgo::kLinear);
  });
}

void BM_Scan_HillisSteele(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  report_vtime(state, p, [](mprt::Comm& comm) {
    long v = comm.rank();
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_xscan(comm, std::span<long>(&v, 1), op,
                      coll::ScanAlgo::kHillisSteele);
  });
}

void BM_Scan_Blelloch(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  report_vtime(state, p, [](mprt::Comm& comm) {
    long v = comm.rank();
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_xscan(comm, std::span<long>(&v, 1), op,
                      coll::ScanAlgo::kBlelloch);
  });
}

void BM_Reduce_Binomial_PayloadSweep(benchmark::State& state) {
  // Fixed p, growing aggregated payload: the bandwidth term of LogGP.
  const int p = 16;
  const auto width = static_cast<std::size_t>(state.range(0));
  report_vtime(state, p, [width](mprt::Comm& comm) {
    std::vector<long> v(width, comm.rank());
    coll::ElementwiseOp<long, coll::Sum<long>> op;
    coll::local_reduce(comm, 0, std::span<long>(v), op,
                       coll::ReduceAlgo::kBinomial);
  });
  state.SetBytesProcessed(
      static_cast<std::int64_t>(width * sizeof(long)) * state.iterations());
}

const std::vector<std::int64_t> kP = {2, 4, 8, 16, 32, 64};

void RankArgs(benchmark::internal::Benchmark* b) {
  for (const auto p : kP) b->Arg(p);
  b->UseManualTime();
}

BENCHMARK(BM_Reduce_Linear)->Apply(RankArgs);
BENCHMARK(BM_Reduce_Binomial)->Apply(RankArgs);
BENCHMARK(BM_Reduce_UnorderedTree)->Apply(RankArgs);
BENCHMARK(BM_Allreduce_Binomial)->Apply(RankArgs);
BENCHMARK(BM_Scan_Linear)->Apply(RankArgs);
BENCHMARK(BM_Scan_HillisSteele)->Apply(RankArgs);
BENCHMARK(BM_Scan_Blelloch)->Apply(RankArgs);
BENCHMARK(BM_Reduce_Binomial_PayloadSweep)
    ->RangeMultiplier(8)
    ->Range(1, 1 << 15)
    ->UseManualTime();

}  // namespace

// Custom main: each iteration spins up a whole virtual machine, so the
// library default of 0.5 s of *manual* (virtual) time per benchmark would
// cost minutes of wall clock.  A short default keeps the full bench sweep
// runnable; pass --benchmark_min_time explicitly to override.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.02";
  bool has_min_time = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) {
      has_min_time = true;
    }
  }
  if (!has_min_time) args.push_back(min_time.data());
  int my_argc = static_cast<int>(args.size());
  benchmark::Initialize(&my_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(my_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
