// Micro-benchmark for the ISSUE 4 fault-injection layer: what does the
// chaos hook cost when it is (a) compiled in but disabled — the common
// case, every production run — and (b) enabled with a benign plan?
//
// Two measurements per configuration:
//   wall_ms    host milliseconds for the whole run (harness overhead)
//   vtime_s    modelled critical path (virtual cost of injected faults)
//
// The disabled case must sit within noise of the seed runtime: the send
// path tests one pointer (Runtime::chaos() == nullptr) and the mailbox
// dedup only engages when sequence gaps or duplicates appear.  --smoke
// runs a small configuration for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "mprt/runtime.hpp"
#include "mprt/sim.hpp"
#include "rs/ops/counts.hpp"
#include "rs/reduce.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;
using mprt::SimConfig;

struct Sample {
  double wall_ms = 0.0;
  double vtime_s = 0.0;
  std::uint64_t duplicates = 0;
};

Sample measure(int p, int rounds, std::size_t buckets, const SimConfig& sim) {
  const auto t0 = std::chrono::steady_clock::now();
  Sample s;
  const auto rr = mprt::run(
      p,
      [&](Comm& comm) {
        std::vector<int> mine;
        for (std::size_t i = 0; i < buckets; ++i) {
          mine.push_back(static_cast<int>((comm.rank() + i) % buckets));
        }
        for (int round = 0; round < rounds; ++round) {
          rs::reduce(comm, mine, rs::ops::Counts(buckets));
        }
      },
      mprt::CostModel{}, sim);
  const auto t1 = std::chrono::steady_clock::now();
  s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  s.vtime_s = rr.makespan_s;
  s.duplicates = rr.sim.duplicated;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int p = smoke ? 4 : 8;
  const int rounds = smoke ? 20 : 200;
  const std::size_t buckets = smoke ? 64 : 1024;
  const int reps = smoke ? 2 : 5;

  SimConfig off;  // disabled: the production configuration

  SimConfig benign;
  benign.seed = 1;
  benign.delay_prob = 0.3;
  benign.max_extra_delay_s = 1e-5;
  benign.duplicate_prob = 0.3;
  benign.reorder_prob = 0.3;
  benign.max_compute_skew_s = 5e-6;

  std::printf("{\n  \"bench\": \"micro_sim_overhead\", \"p\": %d, "
              "\"rounds\": %d, \"buckets\": %zu,\n  \"configs\": [\n",
              p, rounds, buckets);
  const struct {
    const char* name;
    const SimConfig* sim;
  } configs[] = {{"chaos-off", &off}, {"chaos-benign", &benign}};
  for (std::size_t i = 0; i < 2; ++i) {
    Sample best;
    best.wall_ms = 1e300;
    for (int r = 0; r < reps; ++r) {
      const Sample s = measure(p, rounds, buckets, *configs[i].sim);
      if (s.wall_ms < best.wall_ms) best = s;
    }
    std::printf("    {\"name\": \"%s\", \"wall_ms\": %.3f, "
                "\"vtime_s\": %.6f, \"duplicates\": %llu}%s\n",
                configs[i].name, best.wall_ms, best.vtime_s,
                static_cast<unsigned long long>(best.duplicates),
                i == 0 ? "," : "");
    std::fprintf(stderr, "%-14s wall %8.2f ms   vtime %10.6f s   dup %llu\n",
                 configs[i].name, best.wall_ms, best.vtime_s,
                 static_cast<unsigned long long>(best.duplicates));
  }
  std::printf("  ]\n}\n");
  return 0;
}
