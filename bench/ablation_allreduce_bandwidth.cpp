// Ablation (paper §1, §2.1): aggregated reductions make payloads large,
// and commutative operators may "take better advantage of the network".
// This benchmark shows where the bandwidth-optimal Rabenseifner allreduce
// (reduce-scatter + allgather; commutative only) overtakes the
// order-preserving tree (reduce + broadcast) as the aggregated payload
// grows — the quantitative content of the paper's commutativity remark.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "coll/local_reduce.hpp"
#include "coll/rabenseifner.hpp"

namespace {

using namespace rsmpi;

double run_one(int p, std::size_t width, bool rabenseifner) {
  double best = std::numeric_limits<double>::infinity();
  mprt::CostModel model;  // default LogGP: 10 us latency, 1 GB/s
  model.compute_scale = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto result = mprt::run(
        p,
        [width, rabenseifner](mprt::Comm& comm) {
          std::vector<long> v(width, comm.rank());
          coll::ElementwiseOp<long, coll::Sum<long>> op;
          if (rabenseifner) {
            coll::local_allreduce_rabenseifner(comm, std::span<long>(v), op);
          } else {
            coll::local_allreduce(comm, std::span<long>(v), op,
                                  coll::ReduceAlgo::kBinomial);
          }
        },
        model);
    best = std::min(best, result.makespan_s);
  }
  return best;
}

}  // namespace

int main() {
  std::printf("Ablation: allreduce algorithm vs aggregated payload size\n");
  std::printf("(binomial tree = order-preserving, works for any operator;\n");
  std::printf(" rabenseifner = bandwidth-optimal, commutative only)\n\n");
  for (const int p : {8, 32}) {
    std::printf("p = %d ranks\n", p);
    std::printf("%12s %14s %16s %8s\n", "elements", "tree(us)",
                "rabenseifner(us)", "ratio");
    for (const std::size_t width :
         {std::size_t{1}, std::size_t{64}, std::size_t{1} << 10,
          std::size_t{1} << 14, std::size_t{1} << 18}) {
      const double tree = run_one(p, width, false);
      const double rab = run_one(p, width, true);
      std::printf("%12zu %14.2f %16.2f %8.2f\n", width, tree * 1e6,
                  rab * 1e6, tree / rab);
    }
    std::printf("\n");
  }
  std::printf("ratio < 1: latency regime (tree wins, fewer rounds);\n");
  std::printf("ratio > 1: bandwidth regime (rabenseifner wins, moves\n");
  std::printf("~2n bytes instead of 2n*log2 p).\n");
  return 0;
}
