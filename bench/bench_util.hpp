// Shared plumbing for the figure-reproduction benchmarks: timed-phase
// measurement on the virtual clock, and paper-style series printing.
#pragma once

#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "coll/barrier.hpp"
#include "mprt/comm.hpp"
#include "mprt/runtime.hpp"

namespace rsmpi::bench {

/// The processor counts the figures sweep.  The paper's cluster had 92
/// nodes x 8 CPUs; its figures plot 1..~128 processors.
inline const std::vector<int> kProcessorCounts = {1, 2, 4, 8, 16, 32, 64};

/// Runs `setup` then `phase` on p ranks and returns the modelled
/// critical-path time of the phase alone: ranks barrier after setup, reset
/// their clocks, and the final makespan is the phase's virtual duration.
/// The phase is repeated `reps` times and the minimum taken, suppressing
/// host-side CPU-time measurement jitter.
inline double time_phase(
    int p, const mprt::CostModel& model,
    const std::function<void(mprt::Comm&)>& setup,
    const std::function<void(mprt::Comm&)>& phase, int reps = 3,
    const mprt::ExecPolicy& exec = {}) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto result = mprt::run(
        p,
        [&](mprt::Comm& comm) {
          setup(comm);
          coll::barrier(comm);
          comm.clock().reset();
          phase(comm);
        },
        model, mprt::SimConfig{}, exec);
    if (result.makespan_s < best) best = result.makespan_s;
  }
  return best;
}

/// One series of a figure: a (p -> time) map for one implementation.
struct Series {
  std::string name;
  std::vector<double> times_s;  // parallel to kProcessorCounts
};

/// Prints a figure's series the way the paper reports them: per processor
/// count, the time of each implementation, its speedup T(1)/T(p), and its
/// efficiency speedup/p.
inline void print_figure(const std::string& title,
                         const std::vector<int>& procs,
                         const std::vector<Series>& series) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%6s", "p");
  for (const auto& s : series) {
    std::printf("  %12s(ms) %8s %6s", s.name.c_str(), "spdup", "eff");
  }
  std::printf("\n");
  for (std::size_t i = 0; i < procs.size(); ++i) {
    std::printf("%6d", procs[i]);
    for (const auto& s : series) {
      const double t = s.times_s[i];
      const double speedup = s.times_s[0] / t;
      const double eff = speedup / procs[i];
      std::printf("  %16.3f %8.2f %6.2f", t * 1e3, speedup, eff);
    }
    std::printf("\n");
  }
}

}  // namespace rsmpi::bench
