// Micro-benchmark for ISSUE 3's combine-phase overhaul, in two cuts:
//
//  1. Schedule: recursive-doubling butterfly allreduce (log p rounds) vs
//     the legacy reduce+bcast (~2 log p rounds with a root hotspot), both
//     on the pooled zero-copy path — modelled critical path + wall time.
//  2. Buffer path: the pooled move-based path vs a reproduction of the
//     pre-ISSUE-3 path (fresh serialization buffer per send, copying span
//     send, temporary operator per receive), both on the butterfly
//     schedule — heap-allocation and copy counters, cold and warm.
//
// Emits a machine-readable JSON document on stdout (committed as
// BENCH_combine.json) and a human-readable summary on stderr.  --smoke
// runs a small configuration for CI.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mprt/runtime.hpp"
#include "rs/ops/counts.hpp"
#include "rs/state_exchange.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
using mprt::Comm;

// ~1 MiB of operator state in full mode: Counts serializes its occupancy
// vector (8 B per bucket) plus a length prefix.
constexpr std::size_t kFullBuckets = 131072;
constexpr std::size_t kSmokeBuckets = 4096;

std::size_t state_bytes(std::size_t buckets) {
  return sizeof(std::uint64_t) + buckets * sizeof(long);
}

mprt::CostModel bench_model() {
  mprt::CostModel model;        // default LogGP: o = 1 us, L = 10 us, 1 GB/s
  model.compute_scale = 0.0;    // communication + explicit charges only
  model.copy_per_byte_s = 0.25e-9;  // ~4 GB/s memcpy: payload copies show up
  return model;
}

ops::Counts filled_counts(std::size_t buckets, int rank) {
  ops::Counts op(buckets);
  for (int i = 0; i < 1024; ++i) {
    op.accum(static_cast<int>((static_cast<std::size_t>(rank) * 7919 + i * 31) %
                              buckets));
  }
  return op;
}

// --- the pre-ISSUE-3 combine phase, reproduced for comparison ---------------
// Every send serializes into a fresh buffer and hands the runtime a span
// (which heap-allocates and memcpys the payload); every receive decodes
// into a temporary operator before combining.  Same butterfly schedule as
// rs::detail::state_allreduce_butterfly, different buffer discipline.

template <typename Op>
void legacy_send_state(Comm& comm, int dest, int tag, const Op& op) {
  bytes::Writer w;  // fresh allocation every send
  rs::save_op_into(op, w);
  const auto buf = std::move(w).take();
  comm.send_bytes(dest, tag, std::span<const std::byte>(buf));
}

template <typename Op>
void legacy_butterfly_allreduce(Comm& comm, Op& op, const Op& prototype) {
  const int p = comm.size();
  if (p == 1) return;
  const int tag = comm.next_collective_tag();
  const int rank = comm.rank();
  const int p2 = static_cast<int>(std::bit_floor(static_cast<unsigned>(p)));
  const auto fold = [&](mprt::Message&& msg) {
    Op tmp = rs::load_op(prototype, msg.payload());  // temporary operator
    op.combine(tmp);
  };
  if (rank >= p2) {
    legacy_send_state(comm, rank - p2, tag, op);
    auto msg = comm.recv_message(rank - p2, tag);
    op = rs::load_op(prototype, msg.payload());
    return;
  }
  if (rank + p2 < p) fold(comm.recv_message(rank + p2, tag));
  for (int d = 1; d < p2; d <<= 1) {
    const int partner = rank ^ d;
    legacy_send_state(comm, partner, tag, op);
    fold(comm.recv_message(partner, tag));
  }
  if (rank + p2 < p) legacy_send_state(comm, rank + p2, tag, op);
}

// --- measurement ------------------------------------------------------------

struct Counters {
  std::uint64_t allocs = 0;
  std::uint64_t copies = 0;
  std::uint64_t sends_moved = 0;
  std::uint64_t sends_inline = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;

  void capture(const Comm& comm) {
    allocs = comm.payload_allocs();
    copies = comm.payload_copies();
    sends_moved = comm.sends_moved();
    sends_inline = comm.sends_inline();
    pool_hits = comm.pool_stats().hits;
    pool_misses = comm.pool_stats().misses;
  }
  void accumulate(const Counters& o) {
    allocs += o.allocs;
    copies += o.copies;
    sends_moved += o.sends_moved;
    sends_inline += o.sends_inline;
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
  }
};

enum class Schedule { kButterfly, kReduceBcast, kLegacyButterfly };

void run_schedule(Schedule s, Comm& comm, ops::Counts& op,
                  const ops::Counts& prototype) {
  switch (s) {
    case Schedule::kButterfly:
      rs::detail::state_allreduce_butterfly(comm, op, prototype);
      break;
    case Schedule::kReduceBcast:
      rs::detail::state_allreduce_reduce_bcast(comm, op, prototype,
                                               /*commutative=*/true);
      break;
    case Schedule::kLegacyButterfly:
      legacy_butterfly_allreduce(comm, op, prototype);
      break;
  }
}

struct Sample {
  double critical_path_s = 0.0;  // modelled, one collective, min of 3 reps
  double wall_ms = 0.0;          // host CPU wall time of the counter run
  Counters cold;                 // first collective, empty pools
  Counters warm;                 // second collective, recycled pools
};

Sample measure(Schedule s, int p, std::size_t buckets) {
  Sample out;
  const ops::Counts prototype(buckets);

  out.critical_path_s = bench::time_phase(
      p, bench_model(),
      [&](Comm&) {},
      [&](Comm& comm) {
        auto op = filled_counts(buckets, comm.rank());
        run_schedule(s, comm, op, prototype);
      });

  std::vector<Counters> cold(static_cast<std::size_t>(p));
  std::vector<Counters> warm(static_cast<std::size_t>(p));
  const auto t0 = std::chrono::steady_clock::now();
  mprt::run(
      p,
      [&](Comm& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        const auto mine = filled_counts(buckets, comm.rank());
        auto pass1 = mine;
        run_schedule(s, comm, pass1, prototype);
        cold[r].capture(comm);
        comm.reset_counters();
        auto pass2 = mine;
        run_schedule(s, comm, pass2, prototype);
        warm[r].capture(comm);
      },
      bench_model());
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count() / 2;
  for (int r = 0; r < p; ++r) {
    out.cold.accumulate(cold[static_cast<std::size_t>(r)]);
    out.warm.accumulate(warm[static_cast<std::size_t>(r)]);
  }
  return out;
}

int butterfly_rounds(int p) {
  const int p2 = static_cast<int>(std::bit_floor(static_cast<unsigned>(p)));
  int rounds = 0;
  for (int d = 1; d < p2; d <<= 1) ++rounds;
  return rounds + (p != p2 ? 2 : 0);
}

int reduce_bcast_rounds(int p) {
  int ceil_log2 = 0;
  while ((1 << ceil_log2) < p) ++ceil_log2;
  return 2 * ceil_log2;
}

// --- JSON emission ----------------------------------------------------------

void emit_counters(const char* label, const Counters& c, const char* indent) {
  std::printf("%s\"%s\": {\"payload_allocs\": %llu, \"payload_copies\": %llu, "
              "\"sends_moved\": %llu, \"sends_inline\": %llu, "
              "\"pool_hits\": %llu, \"pool_misses\": %llu}",
              indent, label,
              static_cast<unsigned long long>(c.allocs),
              static_cast<unsigned long long>(c.copies),
              static_cast<unsigned long long>(c.sends_moved),
              static_cast<unsigned long long>(c.sends_inline),
              static_cast<unsigned long long>(c.pool_hits),
              static_cast<unsigned long long>(c.pool_misses));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t buckets = smoke ? kSmokeBuckets : kFullBuckets;
  const std::vector<int> procs = smoke ? std::vector<int>{4, 16}
                                       : std::vector<int>{4, 16, 64};
  const auto model = bench_model();

  std::printf("{\n");
  std::printf("  \"bench\": \"micro_combine_path\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"operator\": \"Counts(%zu)\",\n", buckets);
  std::printf("  \"state_bytes\": %zu,\n", state_bytes(buckets));
  std::printf("  \"cost_model\": {\"latency_s\": %g, \"overhead_s\": %g, "
              "\"per_byte_s\": %g, \"copy_per_byte_s\": %g},\n",
              model.latency_s, model.send_overhead_s, model.per_byte_s,
              model.copy_per_byte_s);

  // Cut 1: schedule (both pooled).
  std::fprintf(stderr, "== schedule: butterfly vs reduce+bcast (pooled) ==\n");
  std::fprintf(stderr, "%6s %8s %18s %8s %18s %8s\n", "p", "rounds",
               "butterfly(us)", "rounds", "reduce+bcast(us)", "ratio");
  std::printf("  \"schedule_comparison\": [\n");
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const int p = procs[i];
    const auto fly = measure(Schedule::kButterfly, p, buckets);
    const auto rb = measure(Schedule::kReduceBcast, p, buckets);
    const double ratio = rb.critical_path_s / fly.critical_path_s;
    std::fprintf(stderr, "%6d %8d %18.1f %8d %18.1f %8.2f\n", p,
                 butterfly_rounds(p), fly.critical_path_s * 1e6,
                 reduce_bcast_rounds(p), rb.critical_path_s * 1e6, ratio);
    std::printf("    {\"p\": %d,\n", p);
    std::printf("     \"butterfly\": {\"rounds\": %d, "
                "\"critical_path_us\": %.3f, \"wall_ms\": %.3f},\n",
                butterfly_rounds(p), fly.critical_path_s * 1e6, fly.wall_ms);
    std::printf("     \"reduce_bcast\": {\"rounds\": %d, "
                "\"critical_path_us\": %.3f, \"wall_ms\": %.3f},\n",
                reduce_bcast_rounds(p), rb.critical_path_s * 1e6, rb.wall_ms);
    std::printf("     \"critical_path_ratio\": %.4f}%s\n", ratio,
                i + 1 < procs.size() ? "," : "");
  }
  std::printf("  ],\n");

  // Cut 2: buffer path (both butterfly).
  std::fprintf(stderr,
               "\n== path: pooled vs legacy alloc+copy (butterfly) ==\n");
  std::fprintf(stderr, "%6s %14s %14s %14s %12s\n", "p", "legacy allocs",
               "pooled allocs", "alloc red.", "copies(leg)");
  std::printf("  \"alloc_comparison\": [\n");
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const int p = procs[i];
    const auto pooled = measure(Schedule::kButterfly, p, buckets);
    const auto legacy = measure(Schedule::kLegacyButterfly, p, buckets);
    const double reduction =
        legacy.warm.allocs == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(pooled.warm.allocs) /
                                 static_cast<double>(legacy.warm.allocs));
    std::fprintf(stderr, "%6d %14llu %14llu %13.1f%% %12llu\n", p,
                 static_cast<unsigned long long>(legacy.warm.allocs),
                 static_cast<unsigned long long>(pooled.warm.allocs),
                 reduction,
                 static_cast<unsigned long long>(legacy.warm.copies));
    std::printf("    {\"p\": %d,\n", p);
    std::printf("     \"pooled\": {\"critical_path_us\": %.3f, "
                "\"wall_ms\": %.3f,\n",
                pooled.critical_path_s * 1e6, pooled.wall_ms);
    emit_counters("cold", pooled.cold, "      ");
    std::printf(",\n");
    emit_counters("warm", pooled.warm, "      ");
    std::printf("},\n");
    std::printf("     \"legacy\": {\"critical_path_us\": %.3f, "
                "\"wall_ms\": %.3f,\n",
                legacy.critical_path_s * 1e6, legacy.wall_ms);
    emit_counters("cold", legacy.cold, "      ");
    std::printf(",\n");
    emit_counters("warm", legacy.warm, "      ");
    std::printf("},\n");
    std::printf("     \"warm_alloc_reduction_pct\": %.2f}%s\n", reduction,
                i + 1 < procs.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
