// Ablation (paper §3, closing paragraph): "The accumulate function often
// has a substantially faster implementation than the combine function ...
// Alternative functions that translate the input values into state values
// rather than accumulate the input values into state values would result
// in worse performance."
//
// Measures, with google-benchmark, the cost of folding n values into a
// MinK state three ways:
//   accum                the paper's formulation — one guarded comparison
//                        per value in the common (rejected) case;
//   translate+combine    the rejected alternative — wrap each value in a
//                        singleton state and combine states;
//   std::partial_sort    a non-streaming oracle, for scale.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>
#include <vector>

#include "rs/ops/mink.hpp"

namespace {

using rsmpi::rs::ops::MinK;

std::vector<int> make_data(std::size_t n) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> dist(0, 1 << 30);
  std::vector<int> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

void BM_MinK_Accumulate(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    MinK<int> op(k);
    for (const int x : data) op.accum(x);
    benchmark::DoNotOptimize(op);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}

void BM_MinK_TranslateThenCombine(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    MinK<int> op(k);
    for (const int x : data) {
      MinK<int> single(k);  // translate the input value into a state...
      single.accum(x);
      op.combine(single);  // ...and combine states
    }
    benchmark::DoNotOptimize(op);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}

void BM_MinK_PartialSortOracle(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    std::vector<int> copy = data;
    std::partial_sort(copy.begin(),
                      copy.begin() + static_cast<std::ptrdiff_t>(k),
                      copy.end());
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}

void Args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t n : {1 << 12, 1 << 16}) {
    for (const std::int64_t k : {10, 100}) {
      b->Args({n, k});
    }
  }
}

BENCHMARK(BM_MinK_Accumulate)->Apply(Args);
BENCHMARK(BM_MinK_TranslateThenCombine)->Apply(Args);
BENCHMARK(BM_MinK_PartialSortOracle)->Apply(Args);

}  // namespace

BENCHMARK_MAIN();
