// Large-message schedule sweep for ISSUE 5: modelled critical path of
// every state-allreduce schedule — legacy two-message, whole-state
// butterfly, chunked Rabenseifner, ring reduce-scatter+allgather, and the
// pipelined binomial tree — plus the cost-model autotuner's pick, over
// state sizes from 4 KB to 4 MB at p ∈ {4, 8, 16}.
//
// Every fixed schedule is driven through the public dispatch with
// RSMPI_SCHEDULE pinned (so the bench measures exactly what a user
// forcing that schedule gets); the autotuned row runs with the
// environment clear.  compute_scale = 0 makes the modelled critical path
// machine-independent, so the committed BENCH_largemsg.json doubles as a
// regression baseline: `--check <baseline.json>` re-measures and fails if
// the autotuned critical path regresses more than 5% at any point the
// current mode sweeps.
//
// Emits machine-readable JSON on stdout (committed as BENCH_largemsg.json
// from a full run) and a human summary on stderr.  --smoke sweeps a
// subset of the full grid for CI; every smoke point exists in the full
// baseline, so --smoke --check works against the committed file.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mprt/cost_model.hpp"
#include "mprt/runtime.hpp"
#include "rs/ops/counts.hpp"
#include "rs/state_exchange.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
using mprt::Comm;
using rs::detail::Schedule;

mprt::CostModel bench_model() {
  mprt::CostModel model;        // default LogGP: o = 1 us, L = 10 us, 1 GB/s
  model.compute_scale = 0.0;    // deterministic: communication charges only
  model.copy_per_byte_s = 0.25e-9;
  return model;
}

ops::Counts filled_counts(std::size_t buckets, int rank) {
  ops::Counts op(buckets);
  for (int i = 0; i < 512; ++i) {
    op.accum(static_cast<int>((static_cast<std::size_t>(rank) * 7919 + i * 31) %
                              buckets));
  }
  return op;
}

struct ScheduleRow {
  const char* env_name;  // RSMPI_SCHEDULE value, nullptr = autotuned
  const char* json_key;
};

const ScheduleRow kRows[] = {
    {"two_message", "two_message_us"}, {"butterfly", "butterfly_us"},
    {"rabenseifner", "rabenseifner_us"}, {"ring", "ring_us"},
    {"pipelined", "pipelined_us"},     {nullptr, "autotuned_us"},
};
constexpr std::size_t kNumFixed = 5;  // rows before the autotuned one

/// Modelled critical path (seconds) of one allreduce of `buckets` Counts
/// state at `p` ranks, with RSMPI_SCHEDULE pinned to `env_name` (or
/// cleared for the autotuned dispatch).  The env var changes only between
/// runs, never while rank threads are live.
double measure(const char* env_name, int p, std::size_t buckets) {
  if (env_name != nullptr) {
    ::setenv("RSMPI_SCHEDULE", env_name, /*overwrite=*/1);
  } else {
    ::unsetenv("RSMPI_SCHEDULE");
  }
  const ops::Counts prototype(buckets);
  const double t = bench::time_phase(
      p, bench_model(), [&](Comm&) {},
      [&](Comm& comm) {
        auto op = filled_counts(buckets, comm.rank());
        rs::detail::state_allreduce(comm, op, prototype);
      });
  ::unsetenv("RSMPI_SCHEDULE");
  return t;
}

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kTwoMessage: return "two_message";
    case Schedule::kButterfly: return "butterfly";
    case Schedule::kRabenseifner: return "rabenseifner";
    case Schedule::kRing: return "ring";
    case Schedule::kPipelined: return "pipelined";
    case Schedule::kAuto: break;
  }
  return "auto";
}

struct Point {
  int p = 0;
  std::size_t state_bytes = 0;
  double us[6] = {};  // per kRows order, autotuned last
  const char* choice = "auto";
  double best_fixed_us = 0.0;
  double autotuned_vs_best = 0.0;
  double ring_speedup_vs_butterfly = 0.0;
};

Point measure_point(int p, std::size_t state_bytes) {
  Point pt;
  pt.p = p;
  pt.state_bytes = state_bytes;
  const std::size_t buckets = state_bytes / sizeof(long);
  for (std::size_t i = 0; i < std::size(kRows); ++i) {
    pt.us[i] = measure(kRows[i].env_name, p, buckets) * 1e6;
  }
  pt.best_fixed_us = pt.us[0];
  for (std::size_t i = 1; i < kNumFixed; ++i) {
    if (pt.us[i] < pt.best_fixed_us) pt.best_fixed_us = pt.us[i];
  }
  pt.autotuned_vs_best = pt.us[kNumFixed] / pt.best_fixed_us;
  pt.ring_speedup_vs_butterfly = pt.us[1] / pt.us[3];
  pt.choice = schedule_name(rs::detail::choose_allreduce_schedule(
      bench_model(), p, buckets * sizeof(long),
      rs::detail::kDefaultSegmentBytes));
  return pt;
}

// --- baseline check ---------------------------------------------------------

/// Extracts the number following `"key": ` in `line`, or -1 if absent.
double json_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::atof(line.c_str() + pos + needle.size());
}

/// Compares each measured point's autotuned critical path against the
/// committed baseline; returns the number of points regressing > 5%.
int check_against_baseline(const std::vector<Point>& points,
                           const char* baseline_path) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "check: cannot open baseline %s\n", baseline_path);
    return 1;
  }
  struct Base {
    int p;
    std::size_t bytes;
    double autotuned_us;
  };
  std::vector<Base> baseline;
  std::string line;
  while (std::getline(in, line)) {
    const double p = json_field(line, "p");
    const double bytes = json_field(line, "state_bytes");
    const double us = json_field(line, "autotuned_us");
    if (p > 0 && bytes > 0 && us > 0) {
      baseline.push_back({static_cast<int>(p),
                          static_cast<std::size_t>(bytes), us});
    }
  }
  int failures = 0;
  for (const Point& pt : points) {
    const Base* match = nullptr;
    for (const Base& b : baseline) {
      if (b.p == pt.p && b.bytes == pt.state_bytes) match = &b;
    }
    if (match == nullptr) {
      std::fprintf(stderr, "check: no baseline point for p=%d bytes=%zu\n",
                   pt.p, pt.state_bytes);
      ++failures;
      continue;
    }
    const double limit = match->autotuned_us * 1.05;
    if (pt.us[kNumFixed] > limit) {
      std::fprintf(stderr,
                   "check: REGRESSION p=%d bytes=%zu autotuned %.1f us > "
                   "baseline %.1f us * 1.05\n",
                   pt.p, pt.state_bytes, pt.us[kNumFixed],
                   match->autotuned_us);
      ++failures;
    }
  }
  if (failures == 0) {
    std::fprintf(stderr, "check: %zu points within 5%% of baseline\n",
                 points.size());
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  const std::vector<int> procs = smoke ? std::vector<int>{4, 16}
                                       : std::vector<int>{4, 8, 16};
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{4096, 4u << 20}
            : std::vector<std::size_t>{4096, 64u << 10, 512u << 10, 4u << 20};
  const auto model = bench_model();

  std::vector<Point> points;
  std::fprintf(stderr, "== large-message allreduce schedules ==\n");
  std::fprintf(stderr, "%4s %10s %12s %12s %12s %12s %12s %12s  %s\n", "p",
               "bytes", "two_msg", "butterfly", "rabenseif", "ring",
               "pipelined", "autotuned", "choice");
  for (const int p : procs) {
    for (const std::size_t bytes : sizes) {
      const Point pt = measure_point(p, bytes);
      std::fprintf(stderr,
                   "%4d %10zu %12.1f %12.1f %12.1f %12.1f %12.1f %12.1f  %s\n",
                   pt.p, pt.state_bytes, pt.us[0], pt.us[1], pt.us[2],
                   pt.us[3], pt.us[4], pt.us[5], pt.choice);
      points.push_back(pt);
    }
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"micro_largemsg\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"operator\": \"Counts(state_bytes / 8)\",\n");
  std::printf("  \"cost_model\": {\"latency_s\": %g, \"overhead_s\": %g, "
              "\"per_byte_s\": %g, \"copy_per_byte_s\": %g, "
              "\"compute_scale\": %g},\n",
              model.latency_s, model.send_overhead_s, model.per_byte_s,
              model.copy_per_byte_s, model.compute_scale);
  std::printf("  \"segment_bytes\": %zu,\n", rs::detail::kDefaultSegmentBytes);
  std::printf("  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    std::printf("    {\"p\": %d, \"state_bytes\": %zu", pt.p, pt.state_bytes);
    for (std::size_t k = 0; k < std::size(kRows); ++k) {
      std::printf(", \"%s\": %.3f", kRows[k].json_key, pt.us[k]);
    }
    std::printf(", \"autotuned_choice\": \"%s\", \"best_fixed_us\": %.3f, "
                "\"autotuned_vs_best\": %.4f, "
                "\"ring_speedup_vs_butterfly\": %.4f}%s\n",
                pt.choice, pt.best_fixed_us, pt.autotuned_vs_best,
                pt.ring_speedup_vs_butterfly,
                i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");

  if (baseline_path != nullptr) {
    return check_against_baseline(points, baseline_path) == 0 ? 0 : 1;
  }
  return 0;
}
