// Parallel local-accumulate micro bench: raw elements/sec through
// detail::accumulate_local as the worker pool widens.
//
// Sweeps {Sum, Histogram, HLL, OrderedWord} x RSMPI_LOCAL_THREADS in
// {1, 2, 4, 8} on two workloads: NAS-IS-style uniform integer keys (Sum,
// Histogram) and log-analytics user ids / token streams (HLL,
// OrderedWord).  Each point reports:
//
//   * modelled_elems_per_s — elements over the virtual-clock charge of
//     the accumulate, with cores_per_rank = threads: summed worker CPU
//     divided by the pool width, plus the serial in-order merge.  On a
//     host with fewer physical cores than the pool this is the modelled
//     throughput of the configured machine (the same virtual-clock
//     methodology every other bench here uses); the work-stealing
//     structure is what licenses the division.
//   * speedup — modelled elements/sec over the same operator's
//     threads=1 point.  A pure overhead ratio (clones, merge, deque
//     traffic), so it is machine-portable and is what --check gates:
//     points at >= 4 threads must keep >= 75% of the committed
//     baseline's speedup (speedup ratios of a wide pool timesharing few
//     physical cores carry ~10-15% scheduling noise, so the
//     communication benches' 5% margin would flake here, and the
//     2-thread points on sub-millisecond ops are overhead-dominated
//     noise — reported, never gated; 25% headroom at >= 4 threads still
//     catches any real serialization regression), and Sum/Histogram at
//     8 threads must clear 3x outright (the ISSUE 8 acceptance floor)
//     at >= 1M elements.
//   * identical — every rep's result is compared against the serial
//     oracle; any parallel/serial divergence fails --check immediately.
//
// Emits JSON on stdout (committed as BENCH_accum.json from a full run)
// and a human summary on stderr.  --smoke cuts reps for CI; every smoke
// point exists in the full baseline.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "mprt/cost_model.hpp"
#include "mprt/runtime.hpp"
#include "par/do_all.hpp"
#include "rs/ops/basic.hpp"
#include "rs/ops/histogram.hpp"
#include "rs/ops/sketches.hpp"
#include "rs/reduce.hpp"
#include "rs/serial.hpp"
#include "verify/checker.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;

constexpr int kThreadSweep[] = {1, 2, 4, 8};

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct PointResult {
  std::string op;
  std::string workload;
  int threads = 1;
  std::size_t elements = 0;
  double modelled_s = 0.0;
  double modelled_elems_per_s = 0.0;
  double speedup = 1.0;
  double wall_ms = 0.0;
  std::uint64_t chunks = 0;  // per rep
  std::uint64_t steals = 0;  // summed over reps
  bool identical = true;
};

/// One (operator, pool width) point: best-of-reps modelled accumulate
/// time at p = 1 with cores_per_rank = threads, every rep's generated
/// result checked against the serial oracle.
template <typename Op, typename In>
PointResult measure(const char* op_name, const char* workload,
                    const Op& prototype, const std::vector<In>& data,
                    int threads, int reps) {
  PointResult pt;
  pt.op = op_name;
  pt.workload = workload;
  pt.threads = threads;
  pt.elements = data.size();
  const auto expected = rs::red_result(
      rs::serial::reduce_state(std::span<const In>(data), Op(prototype)));
  ::setenv("RSMPI_LOCAL_THREADS", std::to_string(threads).c_str(), 1);
  mprt::CostModel model;
  model.compute_scale = 1.0;
  model.cores_per_rank = threads;
  double best = 0.0;
  bool identical = true;
  const auto wall0 = std::chrono::steady_clock::now();
  const auto result = mprt::run(
      1,
      [&](mprt::Comm& comm) {
        for (int rep = 0; rep < reps; ++rep) {
          comm.clock().reset();
          const Op folded = rs::reduce_state(
              comm, std::span<const In>(data), Op(prototype));
          const double t = comm.clock().now();
          if (rep == 0 || t < best) best = t;
          if (rs::red_result(folded) != expected) identical = false;
        }
      },
      model);
  const auto wall1 = std::chrono::steady_clock::now();
  pt.modelled_s = best;
  pt.modelled_elems_per_s =
      best > 0.0 ? static_cast<double>(data.size()) / best : 0.0;
  pt.wall_ms = std::chrono::duration<double, std::milli>(wall1 - wall0)
                   .count() /
               reps;
  pt.chunks = result.local_chunks / static_cast<std::uint64_t>(reps);
  pt.steals = result.local_steals;
  pt.identical = identical;
  return pt;
}

double json_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::atof(line.c_str() + pos + needle.size());
}

bool json_has(const std::string& line, const char* key, const std::string& v) {
  return line.find(std::string("\"") + key + "\": \"" + v + "\"") !=
         std::string::npos;
}

/// Gates: every point bit-identical to the serial oracle; every point
/// at >= 4 threads keeps >= 75% of the baseline's speedup; Sum and
/// Histogram clear the 3x floor at 8 threads outright.  Absolute
/// elements/sec is machine-dependent and never gated.  Returns the
/// number of failures.
int check_against_baseline(const std::vector<PointResult>& points,
                           const char* baseline_path) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "check: cannot open baseline %s\n", baseline_path);
    return 1;
  }
  struct Base {
    std::string op;
    int threads;
    double speedup;
  };
  std::vector<Base> baseline;
  std::string line;
  while (std::getline(in, line)) {
    const double threads = json_field(line, "threads");
    const double speedup = json_field(line, "speedup");
    if (threads <= 0 || speedup <= 0) continue;
    for (const char* op : {"sum", "histogram", "hll", "orderedword"}) {
      if (json_has(line, "op", op)) {
        baseline.push_back({op, static_cast<int>(threads), speedup});
      }
    }
  }
  int failures = 0;
  for (const PointResult& pt : points) {
    if (!pt.identical) {
      std::fprintf(stderr,
                   "check: DIVERGENCE op=%s threads=%d — parallel result "
                   "differs from the serial oracle\n",
                   pt.op.c_str(), pt.threads);
      ++failures;
    }
    if ((pt.op == "sum" || pt.op == "histogram") && pt.threads == 8) {
      if (pt.elements < 1000000) {
        std::fprintf(stderr, "check: op=%s measured at %zu < 1M elements\n",
                     pt.op.c_str(), pt.elements);
        ++failures;
      }
      if (pt.speedup < 3.0) {
        std::fprintf(stderr,
                     "check: FLOOR op=%s threads=8 speedup %.2fx < 3.0x\n",
                     pt.op.c_str(), pt.speedup);
        ++failures;
      }
    }
    const Base* match = nullptr;
    for (const Base& b : baseline) {
      if (b.op == pt.op && b.threads == pt.threads) match = &b;
    }
    if (match == nullptr) {
      std::fprintf(stderr, "check: no baseline point for op=%s threads=%d\n",
                   pt.op.c_str(), pt.threads);
      ++failures;
      continue;
    }
    const double limit = match->speedup * 0.75;
    if (pt.threads >= 4 && pt.speedup < limit) {
      std::fprintf(stderr,
                   "check: REGRESSION op=%s threads=%d speedup %.2fx < "
                   "baseline %.2fx * 0.75\n",
                   pt.op.c_str(), pt.threads, pt.speedup, match->speedup);
      ++failures;
    }
  }
  if (failures == 0) {
    std::fprintf(stderr,
                 "check: %zu points within 25%% of baseline speedups\n",
                 points.size());
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }
  // The sweep is seconds even at full reps; --smoke only tags the JSON
  // so a CI artifact is never mistaken for the committed baseline.
  const int reps = 5;

  // NAS-IS-style workload: 1M uniform keys in [0, 2^19).
  constexpr std::size_t kIsElements = 1'000'000;
  std::vector<long> is_keys_long;
  std::vector<int> is_keys_int;
  is_keys_long.reserve(kIsElements);
  is_keys_int.reserve(kIsElements);
  {
    std::uint64_t s = 42;
    for (std::size_t i = 0; i < kIsElements; ++i) {
      const auto k = static_cast<int>(splitmix(s) % (1u << 19));
      is_keys_long.push_back(k);
      is_keys_int.push_back(k);
    }
  }
  std::vector<int> edges;
  for (int e = 0; e <= (1 << 19); e += (1 << 15)) edges.push_back(e);

  // Log-analytics workload: 1M events over ~200k distinct user ids, and
  // a 256k-token ordered stream for the noncommutative point.
  std::vector<std::uint64_t> user_ids;
  user_ids.reserve(kIsElements);
  {
    std::uint64_t s = 7;
    for (std::size_t i = 0; i < kIsElements; ++i) {
      user_ids.push_back(splitmix(s) % 200'000);
    }
  }
  std::vector<int> tokens;
  tokens.reserve(1u << 18);
  {
    std::uint64_t s = 11;
    for (std::size_t i = 0; i < (1u << 18); ++i) {
      tokens.push_back(static_cast<int>(splitmix(s) % 997));
    }
  }

  std::vector<PointResult> points;
  for (const int threads : kThreadSweep) {
    points.push_back(measure("sum", "nas_is", ops::Sum<long>{}, is_keys_long,
                             threads, reps));
    points.push_back(measure("histogram", "nas_is", ops::Histogram<int>(edges),
                             is_keys_int, threads, reps));
    points.push_back(measure("hll", "log_analytics",
                             ops::HyperLogLog<std::uint64_t>(12), user_ids,
                             threads, reps));
    points.push_back(measure("orderedword", "log_analytics",
                             verify::OrderedWord{}, tokens, threads, reps));
  }
  ::unsetenv("RSMPI_LOCAL_THREADS");

  // Speedups against each operator's threads=1 point.
  for (PointResult& pt : points) {
    for (const PointResult& base : points) {
      if (base.op == pt.op && base.threads == 1 && base.modelled_s > 0.0) {
        pt.speedup = base.modelled_s / pt.modelled_s;
      }
    }
  }

  std::printf("{\n  \"bench\": \"micro_local_accum\",\n");
  std::printf("  \"config\": {\"grain\": %zu, \"reps\": %d, \"smoke\": %s, "
              "\"cores_per_rank\": \"= threads\"},\n",
              par::kDefaultGrain, reps, smoke ? "true" : "false");
  std::printf("  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& pt = points[i];
    std::printf(
        "    {\"op\": \"%s\", \"workload\": \"%s\", \"threads\": %d, "
        "\"elements\": %zu, \"modelled_elems_per_s\": %.6e, "
        "\"speedup\": %.4f, \"chunks\": %llu, \"steals\": %llu, "
        "\"wall_ms\": %.3f, \"identical\": %d}%s\n",
        pt.op.c_str(), pt.workload.c_str(), pt.threads, pt.elements,
        pt.modelled_elems_per_s, pt.speedup,
        static_cast<unsigned long long>(pt.chunks),
        static_cast<unsigned long long>(pt.steals), pt.wall_ms,
        pt.identical ? 1 : 0, i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n}\n");

  std::fprintf(stderr, "%-12s %8s %10s %16s %9s %8s %8s\n", "op", "threads",
               "elements", "modelled el/s", "speedup", "chunks", "steals");
  for (const PointResult& pt : points) {
    std::fprintf(stderr, "%-12s %8d %10zu %16.3e %8.2fx %8llu %8llu%s\n",
                 pt.op.c_str(), pt.threads, pt.elements,
                 pt.modelled_elems_per_s, pt.speedup,
                 static_cast<unsigned long long>(pt.chunks),
                 static_cast<unsigned long long>(pt.steals),
                 pt.identical ? "" : "  DIVERGED");
  }

  if (baseline_path != nullptr) {
    return check_against_baseline(points, baseline_path) == 0 ? 0 : 1;
  }
  return 0;
}
