// TSQR micro bench: tall-skinny QR reduction through the state-exchange
// layer, swept over machine size p x panel width (cols).
//
// Each point runs the production path (pool accumulate + auto state
// exchange) for timing, then replays the same inputs through every
// blocking schedule name, the pipelined tree at several segment sizes,
// and the auto dispatch, comparing all of them bitwise against the
// binomial-fold oracle.  Reported per point:
//
//   * modelled_rows_per_s — global rows absorbed over the slowest rank's
//     virtual-clock charge.  Machine-dependent, informational, never
//     gated.
//   * schedules_identical — every (schedule, segment size, rank) final
//     state byte-identical to verify::binomial_fold of the per-rank
//     states.  Gated by --check: any divergence fails immediately.
//   * orth_err / rel_residual — ||Q^T Q - I||_max and ||A - QR|| / ||A||
//     for Q manufactured from the reduced R over the full stacked input.
//     Gated by --check against tol = 100 * eps * cols (the same gate
//     tests/rs/tsqr_test.cpp applies).  The inputs are exact small
//     rationals and the sim is deterministic, so these are
//     machine-portable.
//
// Emits JSON on stdout (committed as BENCH_tsqr.json from a full run)
// and a human summary on stderr.  --smoke cuts reps for CI; every smoke
// point exists in the full baseline, so --check also verifies baseline
// coverage.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/tsqr.hpp"
#include "rs/reduce.hpp"
#include "rs/serial.hpp"
#include "rs/state_exchange.hpp"
#include "util/dense_qr.hpp"
#include "verify/registry.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
namespace qr = util::qr;
using rs::save_op;
using rs::detail::Schedule;

/// Exact small rationals (|value| < 14, denominator 8): every absorb and
/// rotation rounds identically on any IEEE 754 platform, which is what
/// makes the residual columns of the committed baseline portable.
std::vector<double> make_row(int rank, std::size_t i, std::size_t cols) {
  std::vector<double> row(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    const int t = rank * 131 + static_cast<int>(i) * 31 + static_cast<int>(c) * 7;
    row[c] = static_cast<double>(t % 211) / 8.0 - 13.0;
  }
  return row;
}

struct PointResult {
  int p = 0;
  std::size_t cols = 0;
  std::size_t rows_per_rank = 0;
  double modelled_s = 0.0;
  double modelled_rows_per_s = 0.0;
  double wall_ms = 0.0;
  double orth_err = 0.0;
  double rel_residual = 0.0;
  double tol = 0.0;
  bool schedules_identical = true;
};

/// One (p, cols) point: timed production reduce, bitwise schedule sweep,
/// and the numerical gate over the stacked input.
PointResult measure(int p, std::size_t rows_per_rank, std::size_t cols,
                    int reps) {
  PointResult pt;
  pt.p = p;
  pt.cols = cols;
  pt.rows_per_rank = rows_per_rank;
  pt.tol = 100.0 * std::numeric_limits<double>::epsilon() *
           static_cast<double>(cols);

  std::vector<std::vector<std::vector<double>>> local(
      static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < rows_per_rank; ++i) {
      local[static_cast<std::size_t>(r)].push_back(make_row(r, i, cols));
    }
  }

  // The ordered-schedule oracle: per-rank serial states folded along the
  // binomial reduce tree's bracketing.
  std::vector<ops::TSQR> states;
  for (int r = 0; r < p; ++r) {
    ops::TSQR s(cols);
    for (const auto& row : local[static_cast<std::size_t>(r)]) s.accum(row);
    states.push_back(std::move(s));
  }
  const ops::TSQR oracle = verify::binomial_fold(std::move(states));
  const auto expected = save_op(oracle);

  // Timed production path: pool accumulate + auto exchange; best-of-reps
  // on the slowest rank's virtual clock.
  double best = 0.0;
  const auto wall0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<double> clock(static_cast<std::size_t>(p), 0.0);
    mprt::run(p, [&](mprt::Comm& comm) {
      const auto r = static_cast<std::size_t>(comm.rank());
      const ops::TSQR state =
          rs::reduce_state(comm, local[r], ops::TSQR(cols));
      clock[r] = comm.clock().now();
      if (save_op(state) != expected) pt.schedules_identical = false;
    });
    const double slowest = *std::max_element(clock.begin(), clock.end());
    if (rep == 0 || slowest < best) best = slowest;
  }
  const auto wall1 = std::chrono::steady_clock::now();
  pt.modelled_s = best;
  pt.modelled_rows_per_s =
      best > 0.0
          ? static_cast<double>(rows_per_rank) * static_cast<double>(p) / best
          : 0.0;
  pt.wall_ms =
      std::chrono::duration<double, std::milli>(wall1 - wall0).count() / reps;

  // Bitwise sweep: every schedule name (the dispatch must route each to
  // the order-preserving path), plus the pipelined panel stream at
  // single-column, odd, and whole-state segment sizes.
  const Schedule schedules[] = {Schedule::kTwoMessage, Schedule::kButterfly,
                                Schedule::kRabenseifner, Schedule::kRing,
                                Schedule::kPipelined};
  for (const Schedule sched : schedules) {
    mprt::run(p, [&](mprt::Comm& comm) {
      ops::TSQR op(cols);
      for (const auto& row : local[static_cast<std::size_t>(comm.rank())]) {
        op.accum(row);
      }
      rs::detail::state_allreduce_with_schedule(comm, op, ops::TSQR(cols),
                                                sched, /*segment_bytes=*/24,
                                                /*commutative=*/false);
      if (save_op(op) != expected) pt.schedules_identical = false;
    });
  }
  for (const std::size_t segment_bytes :
       {std::size_t{8}, std::size_t{56}, std::size_t{4096}}) {
    mprt::run(p, [&](mprt::Comm& comm) {
      ops::TSQR op(cols);
      for (const auto& row : local[static_cast<std::size_t>(comm.rank())]) {
        op.accum(row);
      }
      rs::detail::state_allreduce_pipelined(comm, op, segment_bytes);
      if (save_op(op) != expected) pt.schedules_identical = false;
    });
  }

  // Numerical gate over the full stacked matrix, rank-major.
  const std::size_t rows = rows_per_rank * static_cast<std::size_t>(p);
  std::vector<double> a;
  a.reserve(rows * cols);
  for (int r = 0; r < p; ++r) {
    for (const auto& row : local[static_cast<std::size_t>(r)]) {
      a.insert(a.end(), row.begin(), row.end());
    }
  }
  const std::vector<double> r_dense = oracle.gen().dense();
  const std::vector<double> q = qr::solve_q(rows, cols, a, r_dense);
  pt.orth_err = qr::orthogonality_error(qr::QrFactors{rows, cols, q, r_dense});
  pt.rel_residual = qr::relative_residual(rows, cols, a, q, r_dense);
  return pt;
}

double json_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::atof(line.c_str() + pos + needle.size());
}

/// Gates — all machine-portable, no raw throughput:
///   * every point's schedule sweep bitwise identical to the oracle;
///   * orth_err and rel_residual within 100 * eps * cols;
///   * a baseline point exists for every measured (p, cols) — a smoke
///     sweep that drifts out of the committed baseline is a config bug.
/// Returns the number of failures.
int check_against_baseline(const std::vector<PointResult>& points,
                           const char* baseline_path) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "check: cannot open baseline %s\n", baseline_path);
    return 1;
  }
  struct Base {
    int p;
    std::size_t cols;
  };
  std::vector<Base> baseline;
  std::string line;
  while (std::getline(in, line)) {
    const double p = json_field(line, "p");
    const double cols = json_field(line, "cols");
    if (p > 0 && cols > 0) {
      baseline.push_back({static_cast<int>(p), static_cast<std::size_t>(cols)});
    }
  }
  int failures = 0;
  for (const PointResult& pt : points) {
    if (!pt.schedules_identical) {
      std::fprintf(stderr,
                   "check: DIVERGENCE p=%d cols=%zu — a schedule's bytes "
                   "differ from the binomial-fold oracle\n",
                   pt.p, pt.cols);
      ++failures;
    }
    if (pt.orth_err > pt.tol) {
      std::fprintf(stderr,
                   "check: ORTHOGONALITY p=%d cols=%zu %.3e > tol %.3e\n",
                   pt.p, pt.cols, pt.orth_err, pt.tol);
      ++failures;
    }
    if (pt.rel_residual > pt.tol) {
      std::fprintf(stderr, "check: RESIDUAL p=%d cols=%zu %.3e > tol %.3e\n",
                   pt.p, pt.cols, pt.rel_residual, pt.tol);
      ++failures;
    }
    bool covered = false;
    for (const Base& b : baseline) {
      if (b.p == pt.p && b.cols == pt.cols) covered = true;
    }
    if (!covered) {
      std::fprintf(stderr, "check: no baseline point for p=%d cols=%zu\n",
                   pt.p, pt.cols);
      ++failures;
    }
  }
  if (failures == 0) {
    std::fprintf(stderr,
                 "check: %zu points bitwise-pinned and within 100*eps*cols\n",
                 points.size());
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }
  // --smoke trims timing reps only; the (p, cols, rows) grid is identical
  // to the full run so the residual columns match the committed baseline
  // exactly and coverage checking stays meaningful.
  const int reps = smoke ? 1 : 5;
  constexpr std::size_t kRowsPerRank = 64;

  std::vector<PointResult> points;
  for (const int p : {2, 4, 8, 16}) {
    for (const std::size_t cols : {std::size_t{4}, std::size_t{8},
                                   std::size_t{16}}) {
      points.push_back(measure(p, kRowsPerRank, cols, reps));
    }
  }

  std::printf("{\n  \"bench\": \"micro_tsqr\",\n");
  std::printf("  \"config\": {\"rows_per_rank\": %zu, \"reps\": %d, "
              "\"smoke\": %s},\n",
              kRowsPerRank, reps, smoke ? "true" : "false");
  std::printf("  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& pt = points[i];
    std::printf(
        "    {\"p\": %d, \"cols\": %zu, \"rows_per_rank\": %zu, "
        "\"modelled_rows_per_s\": %.6e, \"wall_ms\": %.3f, "
        "\"orth_err\": %.6e, \"rel_residual\": %.6e, \"tol\": %.6e, "
        "\"schedules_identical\": %d}%s\n",
        pt.p, pt.cols, pt.rows_per_rank, pt.modelled_rows_per_s, pt.wall_ms,
        pt.orth_err, pt.rel_residual, pt.tol, pt.schedules_identical ? 1 : 0,
        i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n}\n");

  std::fprintf(stderr, "%4s %6s %10s %16s %12s %12s %10s\n", "p", "cols",
               "rows", "modelled rows/s", "orth_err", "residual", "bitwise");
  for (const PointResult& pt : points) {
    std::fprintf(stderr, "%4d %6zu %10zu %16.3e %12.3e %12.3e %10s\n", pt.p,
                 pt.cols, pt.rows_per_rank * static_cast<std::size_t>(pt.p),
                 pt.modelled_rows_per_s, pt.orth_err, pt.rel_residual,
                 pt.schedules_identical ? "pinned" : "DIVERGED");
  }

  if (baseline_path != nullptr) {
    return check_against_baseline(points, baseline_path) == 0 ? 0 : 1;
  }
  return 0;
}
