// Abstraction-overhead microbenchmarks (paper §3/§4: "it is always
// possible to write MPI that is as fast as RSMPI" — the operator-class
// protocol should cost nothing over the hand-written loop).
//
// For each example operator, the accumulate loop through the operator
// interface is measured against the equivalent raw loop a programmer
// would write inline.
#include <benchmark/benchmark.h>

#include <limits>
#include <random>
#include <vector>

#include "rs/ops/ops.hpp"
#include "rs/serial.hpp"

namespace {

namespace ops = rsmpi::rs::ops;

std::vector<int> ints(std::size_t n, int lo, int hi, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(lo, hi);
  std::vector<int> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

// -- sum ----------------------------------------------------------------------

void BM_Sum_Operator(benchmark::State& state) {
  const auto data = ints(1 << 16, -100, 100, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rsmpi::rs::serial::reduce(data, ops::Sum<long>{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}

void BM_Sum_RawLoop(benchmark::State& state) {
  const auto data = ints(1 << 16, -100, 100, 1);
  for (auto _ : state) {
    long acc = 0;
    for (const int x : data) acc += x;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}

// -- sorted ---------------------------------------------------------------------

void BM_Sorted_Operator(benchmark::State& state) {
  auto data = ints(1 << 16, 0, 1 << 20, 2);
  std::sort(data.begin(), data.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rsmpi::rs::serial::reduce(data, ops::Sorted<int>{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}

void BM_Sorted_RawScalarLoop(benchmark::State& state) {
  // The paper's optimized one-array-reference loop.
  auto data = ints(1 << 16, 0, 1 << 20, 2);
  std::sort(data.begin(), data.end());
  for (auto _ : state) {
    bool ok = true;
    int last = std::numeric_limits<int>::min();
    for (const int x : data) {
      if (last > x) ok = false;
      last = x;
    }
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}

void BM_Sorted_RawTwoRefLoop(benchmark::State& state) {
  // The NPB-style two-array-reference loop (paper §4.1 baseline).
  auto data = ints(1 << 16, 0, 1 << 20, 2);
  std::sort(data.begin(), data.end());
  for (auto _ : state) {
    bool ok = true;
    for (std::size_t i = 1; i < data.size(); ++i) {
      if (data[i - 1] > data[i]) ok = false;
    }
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}

// -- counts ----------------------------------------------------------------------

void BM_Counts_Operator(benchmark::State& state) {
  const auto data = ints(1 << 16, 0, 7, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsmpi::rs::serial::reduce(data, ops::Counts(8)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}

void BM_Counts_RawLoop(benchmark::State& state) {
  const auto data = ints(1 << 16, 0, 7, 3);
  for (auto _ : state) {
    std::vector<long> counts(8, 0);
    for (const int x : data) counts[static_cast<std::size_t>(x)] += 1;
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}

// -- mink -------------------------------------------------------------------------

void BM_MinK_Operator(benchmark::State& state) {
  const auto data = ints(1 << 16, 0, 1 << 30, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rsmpi::rs::serial::reduce(data, ops::MinK<int>(10)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}

void BM_MinK_RawLoop(benchmark::State& state) {
  // Hand-written equivalent: threshold check + bubble insertion.
  const auto data = ints(1 << 16, 0, 1 << 30, 4);
  for (auto _ : state) {
    std::vector<int> v(10, std::numeric_limits<int>::max());
    for (const int x : data) {
      if (x < v[0]) {
        v[0] = x;
        for (std::size_t i = 1; i < v.size() && v[i - 1] < v[i]; ++i) {
          std::swap(v[i - 1], v[i]);
        }
      }
    }
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}

BENCHMARK(BM_Sum_Operator);
BENCHMARK(BM_Sum_RawLoop);
BENCHMARK(BM_Sorted_Operator);
BENCHMARK(BM_Sorted_RawScalarLoop);
BENCHMARK(BM_Sorted_RawTwoRefLoop);
BENCHMARK(BM_Counts_Operator);
BENCHMARK(BM_Counts_RawLoop);
BENCHMARK(BM_MinK_Operator);
BENCHMARK(BM_MinK_RawLoop);

}  // namespace

BENCHMARK_MAIN();
