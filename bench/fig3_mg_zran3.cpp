// Figure 3 reproduction: efficiency of the NAS MG ZRAN3 routine, classes
// A/B/C, comparing the F+MPI structure (forty built-in reductions to
// locate the ten largest and ten smallest grid values one at a time)
// against the F+RSMPI structure (one user-defined TopBottomK reduction).
//
// ZRAN3 as timed includes the random fill, the extrema search, and the
// charge application — matching the paper, whose gap shrinks for larger
// classes precisely because fill/traversal time grows while the forty
// reductions' latency stays constant.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "nas/mg.hpp"

namespace {

using namespace rsmpi;

using Zran3 = nas::MgCharges (*)(mprt::Comm&, const nas::MgGrid&,
                                 std::size_t);

double time_zran3(int p, nas::MgParams params, Zran3 find) {
  return bench::time_phase(
      p, mprt::CostModel{}, [](mprt::Comm&) {},
      [&](mprt::Comm& comm) {
        auto grid = nas::mg_fill_grid(comm, params);
        const auto charges = find(comm, grid, 10);
        (void)nas::mg_apply_charges(grid, charges);
      },
      /*reps=*/3);
}

void run_class(nas::ProblemClass cls) {
  const auto params = nas::mg_params(cls);

  bench::Series f_mpi{"f-mpi-40red", {}};
  bench::Series rsmpi_series{"rsmpi-1red", {}};

  for (const int p : bench::kProcessorCounts) {
    f_mpi.times_s.push_back(time_zran3(p, params, nas::mg_zran3_baseline));
    rsmpi_series.times_s.push_back(
        time_zran3(p, params, nas::mg_zran3_rsmpi));
  }

  bench::print_figure(
      std::string("Figure 3: NAS MG ZRAN3, class ") +
          std::string(nas::to_string(cls)) + "  (" +
          std::to_string(params.nx) + "^3 grid)",
      bench::kProcessorCounts, {f_mpi, rsmpi_series});
}

}  // namespace

int main() {
  std::printf("NAS MG ZRAN3: F+MPI (40 reductions) vs F+RSMPI (1 reduction)"
              " (paper Fig. 3)\n");
  std::printf("Times are LogGP virtual-clock critical paths; see DESIGN.md.\n");
  for (const auto cls :
       {nas::ProblemClass::A, nas::ProblemClass::B, nas::ProblemClass::C}) {
    run_class(cls);
  }
  return 0;
}
