// Compute/communication overlap with nonblocking reductions.
//
// The measurement the nonblocking subsystem exists for: a rank that starts
// rs::reduce_async, computes, and polls the progress engine between
// compute chunks should finish in roughly max(compute, combine) modelled
// time, while the blocking rs::reduce + the same compute pays
// combine + compute.  The win on the modelled critical path is the
// overlap.
//
// The compute is charged as explicit virtual-clock advances (and
// compute_scale is zeroed), so the figure is a deterministic function of
// the cost model — rerunning it cannot jitter.
//
//   $ ./micro_overlap
#include <cmath>
#include <cstdio>
#include <ranges>
#include <vector>

#include "bench_util.hpp"
#include "rs/ops/topbottomk.hpp"
#include "rs/rsmpi.hpp"

namespace {

using namespace rsmpi;
using Candidate = rs::ops::Located<double, std::int64_t>;

constexpr std::size_t kLocalN = 2048;   // values per rank
constexpr std::size_t kTopK = 10;       // TopBottomK(k)
constexpr int kChunks = 40;             // compute chunks between polls
constexpr double kChunkSeconds = 4e-6;  // modelled compute per chunk

/// This rank's slice of the conceptual global array: a deterministic
/// pseudo-random field keyed by global position.
auto make_slice(int rank) {
  const std::int64_t base = static_cast<std::int64_t>(rank) * kLocalN;
  return std::views::iota(std::int64_t{0},
                          static_cast<std::int64_t>(kLocalN)) |
         std::views::transform([base](std::int64_t i) {
           const std::int64_t g = base + i;
           return Candidate{std::sin(static_cast<double>(g) * 12.9898), g};
         });
}

/// The "application work" both variants perform: kChunks chunks of
/// modelled compute; the async variant polls the progress engine between
/// chunks, which is where the overlap comes from.
void compute_chunks(mprt::Comm& comm, bool poll_between) {
  for (int c = 0; c < kChunks; ++c) {
    comm.clock().advance(kChunkSeconds);
    if (poll_between) coll::nb::poll();
  }
}

}  // namespace

int main() {
  mprt::CostModel model;     // the default LogGP parameters
  model.compute_scale = 0.0;  // charge only the explicit advances

  bench::Series blocking{"blocking", {}};
  bench::Series overlap{"overlap", {}};

  for (const int p : bench::kProcessorCounts) {
    const double t_blocking = bench::time_phase(
        p, model, [](mprt::Comm&) {},
        [](mprt::Comm& comm) {
          const auto result = rs::reduce(
              comm, make_slice(comm.rank()),
              rs::ops::TopBottomK<double, std::int64_t>(kTopK));
          (void)result;
          compute_chunks(comm, /*poll_between=*/false);
        });
    const double t_overlap = bench::time_phase(
        p, model, [](mprt::Comm&) {},
        [](mprt::Comm& comm) {
          auto future = rs::reduce_async(
              comm, make_slice(comm.rank()),
              rs::ops::TopBottomK<double, std::int64_t>(kTopK));
          compute_chunks(comm, /*poll_between=*/true);
          (void)future.get();
        });
    blocking.times_s.push_back(t_blocking);
    overlap.times_s.push_back(t_overlap);
  }

  bench::print_figure("compute/communication overlap (reduce_async + poll)",
                      bench::kProcessorCounts, {blocking, overlap});

  std::printf("\n%6s %12s\n", "p", "saving");
  for (std::size_t i = 0; i < bench::kProcessorCounts.size(); ++i) {
    const double saving = 1.0 - overlap.times_s[i] / blocking.times_s[i];
    std::printf("%6d %11.1f%%\n", bench::kProcessorCounts[i], saving * 100);
  }
  return 0;
}
