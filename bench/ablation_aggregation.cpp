// Ablation (paper §2.1): aggregation "allows the programmer to compute
// multiple reductions simultaneously, thus saving the overhead of many
// smaller messages."
//
// Sweeps the number of simultaneous element-wise min reductions k and
// compares k separate scalar allreduces against one aggregated allreduce
// of a k-vector, reporting modelled time and message counts.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "coll/local_reduce.hpp"

namespace {

using namespace rsmpi;

struct Cost {
  double time_s;
  std::uint64_t messages;
};

Cost run_separate(int p, int k) {
  double best = std::numeric_limits<double>::infinity();
  std::uint64_t messages = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto result = mprt::run(p, [&](mprt::Comm& comm) {
      for (int i = 0; i < k; ++i) {
        int v = (comm.rank() * 31 + i * 17) % 1009;
        coll::ElementwiseOp<int, coll::Min<int>> op;
        coll::local_allreduce(comm, std::span<int>(&v, 1), op);
      }
    });
    best = std::min(best, result.makespan_s);
    messages = result.total_messages;
  }
  return {best, messages};
}

Cost run_aggregated(int p, int k) {
  double best = std::numeric_limits<double>::infinity();
  std::uint64_t messages = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto result = mprt::run(p, [&](mprt::Comm& comm) {
      std::vector<int> v(static_cast<std::size_t>(k));
      for (int i = 0; i < k; ++i) {
        v[static_cast<std::size_t>(i)] = (comm.rank() * 31 + i * 17) % 1009;
      }
      coll::ElementwiseOp<int, coll::Min<int>> op;
      coll::local_allreduce(comm, std::span<int>(v), op);
    });
    best = std::min(best, result.makespan_s);
    messages = result.total_messages;
  }
  return {best, messages};
}

}  // namespace

int main() {
  std::printf("Ablation: k separate scalar reductions vs one aggregated "
              "k-vector reduction (paper S2.1)\n");
  constexpr int kRanks = 16;
  std::printf("p = %d ranks\n", kRanks);
  std::printf("%6s %16s %10s %16s %10s %8s\n", "k", "separate(ms)", "msgs",
              "aggregated(ms)", "msgs", "speedup");
  for (const int k : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const Cost sep = run_separate(kRanks, k);
    const Cost agg = run_aggregated(kRanks, k);
    std::printf("%6d %16.3f %10llu %16.3f %10llu %8.2f\n", k,
                sep.time_s * 1e3,
                static_cast<unsigned long long>(sep.messages),
                agg.time_s * 1e3,
                static_cast<unsigned long long>(agg.messages),
                sep.time_s / agg.time_s);
  }
  std::printf("\nAggregation folds k latencies into one; the speedup should "
              "approach k\nwhile payloads stay far below the bandwidth "
              "regime.\n");
  return 0;
}
