// Streaming-service throughput bench: multi-tenant keyed aggregation at
// scale.  Each point hosts several tenant streams on one svc::Service,
// pumps millions of keyed events through hash-sharded routing, persistent
// merges, and windowed emission, and reports:
//
//   * modelled_events_per_s — folded events over the virtual-clock
//     makespan with compute_scale = 0, so the number is a deterministic,
//     machine-independent image of the communication critical path.  The
//     committed BENCH_svc.json doubles as a regression baseline:
//     `--check <baseline.json>` fails if any non-chaos point loses more
//     than 5% of it.
//   * wall_events_per_s — real host throughput of the same run (threads,
//     mailboxes, folds included).  Reported, never gated: it moves with
//     the machine.
//   * p99_epoch_us — worst per-stream p99 epoch latency across ranks, on
//     the virtual clock.
//   * warm_payload_allocs / warm_autotune — counter deltas across the
//     warm epochs.  Both must be ZERO (the persistent plans and pooled
//     route buffers make the warm path allocation- and planning-free);
//     --check enforces it.
//
// One point runs under a chaos plan that kills a shard of the first
// stream mid-flight: exactly that stream must retire, every other tenant
// must keep flowing, and the survivors' final window must equal a serial
// re-aggregation of the surviving ranks' events (checked in-process).
//
// Emits machine-readable JSON on stdout (committed as BENCH_svc.json from
// a full run) and a human summary on stderr.  --smoke sweeps a subset of
// the grid for CI; every smoke point exists in the full baseline.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "mprt/cost_model.hpp"
#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "svc/svc.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
using mprt::Comm;
using svc::Event;

mprt::CostModel bench_model() {
  mprt::CostModel model;      // default LogGP: o = 1 us, L = 10 us, 1 GB/s
  model.compute_scale = 0.0;  // deterministic: communication charges only
  return model;
}

/// The keyed events rank r stages for stream s in epoch e.  Key sets
/// cycle with period 4 so per-shard batch sizes stabilize inside the
/// warm-up and the pooled route buffers reach steady state.
void stage_load(std::vector<Event>* out, int rank, int epoch, int stream,
                int count) {
  out->clear();
  for (int i = 0; i < count; ++i) {
    const auto key = static_cast<std::uint64_t>(
        stream * 1'000'000 + rank * 10'000 + (epoch % 4) * 1'000 + i);
    out->push_back(
        Event{key, static_cast<double>((rank * 31 + epoch * 7 + i) % 1000)});
  }
}

long serial_epoch_sum(const std::vector<int>& ranks, int epoch, int stream,
                      int count) {
  long sum = 0;
  std::vector<Event> events;
  for (const int r : ranks) {
    stage_load(&events, r, epoch, stream, count);
    for (const Event& e : events) sum += static_cast<long>(e.value);
  }
  return sum;
}

const auto kSumValues = [](const Event& e) {
  return static_cast<long>(e.value);
};

struct PointConfig {
  const char* name;
  int p;
  int streams;
  int events_per_rank_epoch;
  int epochs;
  bool chaos;
};

struct PointResult {
  PointConfig cfg;
  double modelled_events_per_s = 0.0;
  double wall_events_per_s = 0.0;
  double p99_epoch_us = 0.0;
  std::uint64_t total_events = 0;
  std::uint64_t warm_payload_allocs = 0;
  std::uint64_t warm_autotune = 0;
  std::uint64_t degraded_streams = 0;
  std::uint64_t local_threads = 0;
  std::uint64_t local_steals = 0;
  bool oracle_ok = true;
};

constexpr int kWarmupEpochs = 4;

svc::WindowConfig tumbling1() {
  svc::WindowConfig cfg;
  cfg.window_epochs = 1;
  return cfg;
}

/// Fault-free point: `streams` tenants, every rank a member of every
/// stream (so routed buffers circulate through balanced pools and the
/// warm path stays allocation-free).  Runs with the work-stealing local
/// pool active (4 workers, grain 128 — folds arrive per sender shard,
/// events_per_rank_epoch / p at a time, so the grain must sit below
/// that for the batches to genuinely fan out)
/// to demonstrate that the warm zero-allocation gate holds with parallel
/// local accumulation enabled; with compute_scale = 0 the pool cannot
/// move the modelled numbers, so the baseline is unaffected.
PointResult measure_base(const PointConfig& cfg) {
  PointResult res;
  res.cfg = cfg;
  ::setenv("RSMPI_LOCAL_THREADS", "4", 1);
  ::setenv("RSMPI_LOCAL_GRAIN", "128", 1);
  std::vector<double> p99(static_cast<std::size_t>(cfg.p), 0.0);
  std::vector<std::uint64_t> warm_allocs(static_cast<std::size_t>(cfg.p), 0);
  std::vector<std::uint64_t> warm_tunes(static_cast<std::size_t>(cfg.p), 0);

  std::vector<int> all_ranks;
  for (int r = 0; r < cfg.p; ++r) all_ranks.push_back(r);

  const auto wall0 = std::chrono::steady_clock::now();
  const auto run = mprt::run(
      cfg.p,
      [&](Comm& comm) {
        svc::Service service(comm);
        std::vector<svc::StreamBase*> tenants;
        for (int s = 0; s < cfg.streams; ++s) {
          const std::string name = "tenant" + std::to_string(s);
          switch (s % 4) {
            case 0:
              tenants.push_back(&service.add_stream(
                  name, all_ranks, ops::Sum<long>{}, kSumValues, tumbling1()));
              break;
            case 1:
              tenants.push_back(&service.add_stream(
                  name, all_ranks, ops::Counts(64),
                  [](const Event& e) { return static_cast<int>(e.key % 64); },
                  tumbling1()));
              break;
            case 2:
              tenants.push_back(&service.add_stream(
                  name, all_ranks, ops::HyperLogLog<std::uint64_t>(10),
                  [](const Event& e) { return e.key; }, tumbling1()));
              break;
            default: {
              svc::WindowConfig sliding;  // two-stack evict path
              sliding.window_epochs = 4;
              sliding.slide_epochs = 1;
              tenants.push_back(&service.add_stream(
                  name, all_ranks, ops::Min<int>{},
                  [](const Event& e) { return static_cast<int>(e.value); },
                  sliding));
              break;
            }
          }
        }

        std::vector<Event> batch;
        std::uint64_t allocs0 = 0;
        std::uint64_t tunes0 = 0;
        for (int e = 1; e <= cfg.epochs; ++e) {
          for (int s = 0; s < cfg.streams; ++s) {
            stage_load(&batch, comm.rank(), e, s, cfg.events_per_rank_epoch);
            tenants[static_cast<std::size_t>(s)]->stage(batch);
          }
          service.step_epoch();
          if (e == kWarmupEpochs) {
            allocs0 = comm.payload_allocs();
            tunes0 = comm.autotune_invocations();
          }
        }

        const auto r = static_cast<std::size_t>(comm.rank());
        warm_allocs[r] = comm.payload_allocs() - allocs0;
        warm_tunes[r] = comm.autotune_invocations() - tunes0;
        for (const auto& [name, s] : service.stats().streams()) {
          const double q = s.latency_quantile_s(0.99) * 1e6;
          if (q > p99[r]) p99[r] = q;
        }
        service.publish();
      },
      bench_model());
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall0;
  ::unsetenv("RSMPI_LOCAL_THREADS");
  ::unsetenv("RSMPI_LOCAL_GRAIN");

  res.local_threads = run.local_threads;
  res.local_steals = run.local_steals;
  res.total_events = static_cast<std::uint64_t>(run.user_stats.at("svc.events"));
  res.modelled_events_per_s =
      static_cast<double>(res.total_events) / run.makespan_s;
  res.wall_events_per_s = static_cast<double>(res.total_events) / wall.count();
  for (int r = 0; r < cfg.p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (p99[i] > res.p99_epoch_us) res.p99_epoch_us = p99[i];
    res.warm_payload_allocs += warm_allocs[i];
    res.warm_autotune += warm_tunes[i];
  }
  return res;
}

/// Chaos point: benign faults plus a kill of the last rank, which shards
/// only the first stream.  That stream must retire; the other tenants
/// must keep flowing at full epoch count, and their final window must
/// equal a serial re-aggregation of the surviving ranks' events.
PointResult measure_chaos(const PointConfig& cfg) {
  PointResult res;
  res.cfg = cfg;
  const int victim = cfg.p - 1;
  std::vector<int> all_ranks;
  std::vector<int> survivors;
  for (int r = 0; r < cfg.p; ++r) {
    all_ranks.push_back(r);
    if (r != victim) survivors.push_back(r);
  }

  mprt::SimConfig sim;
  sim.seed = 20260808;
  sim.duplicate_prob = 0.02;
  sim.delay_prob = 0.05;
  sim.max_extra_delay_s = 5e-5;
  sim.reorder_prob = 0.02;
  sim.kill_rank = victim;
  // Setup is deterministic: each add_stream's split sends p-1 messages
  // per rank and nothing else in setup sends, so the victim dies at its
  // first epoch-1 routing send.
  sim.kill_after_sends =
      static_cast<std::uint64_t>(cfg.streams) *
      static_cast<std::uint64_t>(cfg.p - 1);

  std::vector<std::uint64_t> events(static_cast<std::size_t>(cfg.p), 0);
  std::vector<std::uint64_t> degraded(static_cast<std::size_t>(cfg.p), 0);
  std::vector<double> p99(static_cast<std::size_t>(cfg.p), 0.0);
  std::vector<double> makespans(static_cast<std::size_t>(cfg.p), 0.0);
  std::vector<int> ok(static_cast<std::size_t>(cfg.p), 1);

  const auto wall0 = std::chrono::steady_clock::now();
  try {
    mprt::run(
        cfg.p,
        [&](Comm& comm) {
          svc::Service service(comm);
          using SumStream =
              decltype(service.add_stream("", all_ranks, ops::Sum<long>{},
                                          kSumValues, tumbling1()));
          std::vector<std::remove_reference_t<SumStream>*> tenants;
          for (int s = 0; s < cfg.streams; ++s) {
            // tenant0 shards on every rank (including the victim); the
            // rest shard only on survivors.
            const auto& members = (s == 0) ? all_ranks : survivors;
            tenants.push_back(&service.add_stream("tenant" + std::to_string(s),
                                                  members, ops::Sum<long>{},
                                                  kSumValues, tumbling1()));
          }

          std::vector<Event> batch;
          for (int e = 1; e <= cfg.epochs; ++e) {
            for (int s = 0; s < cfg.streams; ++s) {
              stage_load(&batch, comm.rank(), e, s, cfg.events_per_rank_epoch);
              tenants[static_cast<std::size_t>(s)]->stage(batch);
            }
            service.step_epoch();
          }

          const auto r = static_cast<std::size_t>(comm.rank());
          if (!tenants[0]->degraded()) ok[r] = 0;
          for (int s = 1; s < cfg.streams; ++s) {
            auto* t = tenants[static_cast<std::size_t>(s)];
            if (t->degraded()) ok[r] = 0;
            // Survivor tenants see the full epoch count; the victim's
            // events simply vanish with it.  The final window must match
            // the serial survivor-side oracle exactly.
            if (t->windows_emitted() !=
                static_cast<std::uint64_t>(cfg.epochs)) {
              ok[r] = 0;
            }
            const auto& last = t->last_window();
            if (!last.has_value() ||
                *last != serial_epoch_sum(survivors, cfg.epochs, s,
                                          cfg.events_per_rank_epoch)) {
              ok[r] = 0;
            }
          }
          events[r] = service.stats().total_events();
          degraded[r] = service.stats().degraded_streams();
          for (const auto& [name, s] : service.stats().streams()) {
            const double q = s.latency_quantile_s(0.99) * 1e6;
            if (q > p99[r]) p99[r] = q;
          }
          makespans[r] = comm.clock().now();
        },
        bench_model(), sim);
    res.oracle_ok = false;  // the kill must surface as RankKilledError
  } catch (const RankKilledError&) {
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall0;

  double makespan = 0.0;
  for (const int r : survivors) {
    const auto i = static_cast<std::size_t>(r);
    res.total_events += events[i];
    if (p99[i] > res.p99_epoch_us) res.p99_epoch_us = p99[i];
    if (makespans[i] > makespan) makespan = makespans[i];
    if (ok[i] == 0) res.oracle_ok = false;
    if (degraded[i] != 1) res.oracle_ok = false;
  }
  res.degraded_streams = 1;
  res.modelled_events_per_s = static_cast<double>(res.total_events) / makespan;
  res.wall_events_per_s = static_cast<double>(res.total_events) / wall.count();
  return res;
}

// --- baseline check ---------------------------------------------------------

/// Extracts the number following `"key": ` in `line`, or -1 if absent.
double json_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::atof(line.c_str() + pos + needle.size());
}

/// Gates: non-chaos points keep >= 95% of the baseline's modelled
/// events/sec; every point's warm deltas are zero; the chaos point's
/// structural and oracle checks hold.  Returns the number of failures.
int check_against_baseline(const std::vector<PointResult>& points,
                           const char* baseline_path) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "check: cannot open baseline %s\n", baseline_path);
    return 1;
  }
  struct Base {
    int p;
    int streams;
    int events;
    int epochs;
    int chaos;
    double modelled;
  };
  std::vector<Base> baseline;
  std::string line;
  while (std::getline(in, line)) {
    const double p = json_field(line, "p");
    const double modelled = json_field(line, "modelled_events_per_s");
    if (p > 0 && modelled > 0) {
      baseline.push_back({static_cast<int>(p),
                          static_cast<int>(json_field(line, "streams")),
                          static_cast<int>(
                              json_field(line, "events_per_rank_epoch")),
                          static_cast<int>(json_field(line, "epochs")),
                          static_cast<int>(json_field(line, "chaos")),
                          modelled});
    }
  }
  int failures = 0;
  for (const PointResult& pt : points) {
    if (pt.warm_payload_allocs != 0 && !pt.cfg.chaos) {
      std::fprintf(stderr, "check: %s warm epochs allocated %llu buffers\n",
                   pt.cfg.name,
                   static_cast<unsigned long long>(pt.warm_payload_allocs));
      ++failures;
    }
    if (pt.warm_autotune != 0) {
      std::fprintf(stderr, "check: %s warm epochs re-autotuned %llu times\n",
                   pt.cfg.name,
                   static_cast<unsigned long long>(pt.warm_autotune));
      ++failures;
    }
    if (pt.cfg.chaos) {
      if (!pt.oracle_ok) {
        std::fprintf(stderr,
                     "check: %s chaos run broke degradation invariants\n",
                     pt.cfg.name);
        ++failures;
      }
      continue;  // chaos throughput is reported, not gated
    }
    const Base* match = nullptr;
    for (const Base& b : baseline) {
      if (b.p == pt.cfg.p && b.streams == pt.cfg.streams &&
          b.events == pt.cfg.events_per_rank_epoch &&
          b.epochs == pt.cfg.epochs && b.chaos == (pt.cfg.chaos ? 1 : 0)) {
        match = &b;
      }
    }
    if (match == nullptr) {
      std::fprintf(stderr, "check: no baseline point for %s\n", pt.cfg.name);
      ++failures;
      continue;
    }
    if (pt.modelled_events_per_s < match->modelled * 0.95) {
      std::fprintf(stderr,
                   "check: REGRESSION %s modelled %.3g ev/s < baseline %.3g "
                   "* 0.95\n",
                   pt.cfg.name, pt.modelled_events_per_s, match->modelled);
      ++failures;
    }
  }
  if (failures == 0) {
    std::fprintf(stderr, "check: %zu points pass all gates\n", points.size());
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  // Every smoke point exists in the full grid, so --smoke --check works
  // against the committed full-run baseline.
  const std::vector<PointConfig> full = {
      {"p4_4streams", 4, 4, 2048, 24, false},
      {"p8_4streams", 8, 4, 4096, 24, false},
      {"p16_4streams", 16, 4, 4096, 24, false},
      {"p8_5streams_chaos", 8, 5, 2048, 16, true},
  };
  std::vector<PointConfig> grid;
  for (const PointConfig& cfg : full) {
    if (smoke && cfg.p == 8 && !cfg.chaos) continue;  // CI skips the mid row
    grid.push_back(cfg);
  }

  std::vector<PointResult> points;
  std::fprintf(stderr, "== streaming service throughput ==\n");
  std::fprintf(stderr, "%-20s %4s %8s %12s %16s %16s %12s %10s %8s %8s %6s\n",
               "point", "p", "streams", "events", "modelled_ev_s", "wall_ev_s",
               "p99_us", "warm_alloc", "lthreads", "steals", "ok");
  for (const PointConfig& cfg : grid) {
    const PointResult pt = cfg.chaos ? measure_chaos(cfg) : measure_base(cfg);
    std::fprintf(stderr,
                 "%-20s %4d %8d %12llu %16.3e %16.3e %12.1f %10llu %8llu "
                 "%8llu %6s\n",
                 pt.cfg.name, pt.cfg.p, pt.cfg.streams,
                 static_cast<unsigned long long>(pt.total_events),
                 pt.modelled_events_per_s, pt.wall_events_per_s,
                 pt.p99_epoch_us,
                 static_cast<unsigned long long>(pt.warm_payload_allocs),
                 static_cast<unsigned long long>(pt.local_threads),
                 static_cast<unsigned long long>(pt.local_steals),
                 pt.oracle_ok ? "yes" : "NO");
    points.push_back(pt);
  }

  const auto model = bench_model();
  std::printf("{\n");
  std::printf("  \"bench\": \"svc_throughput\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"cost_model\": {\"latency_s\": %g, \"overhead_s\": %g, "
              "\"per_byte_s\": %g, \"compute_scale\": %g},\n",
              model.latency_s, model.send_overhead_s, model.per_byte_s,
              model.compute_scale);
  std::printf("  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& pt = points[i];
    std::printf(
        "    {\"name\": \"%s\", \"p\": %d, \"streams\": %d, "
        "\"events_per_rank_epoch\": %d, \"epochs\": %d, \"chaos\": %d, "
        "\"total_events\": %llu, \"modelled_events_per_s\": %.6e, "
        "\"wall_events_per_s\": %.6e, \"p99_epoch_us\": %.3f, "
        "\"warm_payload_allocs\": %llu, \"warm_autotune\": %llu, "
        "\"degraded_streams\": %llu, \"local_threads\": %llu, "
        "\"local_steals\": %llu, \"oracle_ok\": %d}%s\n",
        pt.cfg.name, pt.cfg.p, pt.cfg.streams, pt.cfg.events_per_rank_epoch,
        pt.cfg.epochs, pt.cfg.chaos ? 1 : 0,
        static_cast<unsigned long long>(pt.total_events),
        pt.modelled_events_per_s, pt.wall_events_per_s, pt.p99_epoch_us,
        static_cast<unsigned long long>(pt.warm_payload_allocs),
        static_cast<unsigned long long>(pt.warm_autotune),
        static_cast<unsigned long long>(pt.degraded_streams),
        static_cast<unsigned long long>(pt.local_threads),
        static_cast<unsigned long long>(pt.local_steals),
        pt.oracle_ok ? 1 : 0, i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");

  if (baseline_path != nullptr) {
    return check_against_baseline(points, baseline_path) == 0 ? 0 : 1;
  }
  return 0;
}
