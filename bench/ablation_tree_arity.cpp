// Ablation (paper §1): "If the branching factor on the log tree is
// greater than two (common for many parallel machines), then reductions
// of commutative operators can immediately combine whichever partial
// results are available whereas reductions on non-commutative operators
// must stick to a predefined order."
//
// The effect needs *skew*: when every rank is ready simultaneously, all
// schedules are latency-bound alike.  Here each rank's accumulate phase
// takes a different (deterministic, modelled) time, and we compare the
// order-preserving binomial tree against combine-as-available trees of
// arity 2, 4 and 8.
#include <cstdio>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "coll/local_reduce.hpp"

namespace {

using namespace rsmpi;

double run_one(int p, double max_skew_s, coll::ReduceAlgo algo, int arity) {
  mprt::CostModel model;
  model.compute_scale = 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto result = mprt::run(
        p,
        [=](mprt::Comm& comm) {
          // Deterministic skew: rank r's "accumulate phase" finishes at a
          // scattered time in [0, max_skew].
          const double skew =
              max_skew_s *
              static_cast<double>((comm.rank() * 2654435761u) % 1024) /
              1024.0;
          comm.clock().advance(skew);
          long v = comm.rank();
          coll::ElementwiseOp<long, coll::Sum<long>> op;
          coll::local_reduce(comm, 0, std::span<long>(&v, 1), op, algo,
                             arity);
        },
        model);
    best = std::min(best, result.makespan_s);
  }
  return best;
}

}  // namespace

int main() {
  std::printf("Ablation: combine-as-available tree arity under skewed "
              "accumulate phases (paper S1)\n");
  constexpr int kP = 64;
  std::printf("p = %d ranks; skew = spread of per-rank readiness times\n\n",
              kP);
  std::printf("%12s %14s %12s %12s %12s\n", "skew(us)", "binomial(us)",
              "unord-2(us)", "unord-4(us)", "unord-8(us)");
  for (const double skew_us : {0.0, 50.0, 200.0, 1000.0}) {
    const double skew = skew_us * 1e-6;
    std::printf("%12.0f %14.2f %12.2f %12.2f %12.2f\n", skew_us,
                run_one(kP, skew, coll::ReduceAlgo::kBinomial, 2) * 1e6,
                run_one(kP, skew, coll::ReduceAlgo::kUnorderedTree, 2) * 1e6,
                run_one(kP, skew, coll::ReduceAlgo::kUnorderedTree, 4) * 1e6,
                run_one(kP, skew, coll::ReduceAlgo::kUnorderedTree, 8) * 1e6);
  }
  std::printf("\nTwo effects, both §1's: (1) wider arity = shallower tree = "
              "fewer\nchained latencies, so unord-4/8 beat binary trees even "
              "unskewed (the\n'branching factor greater than two' remark); "
              "(2) under skew the\ncombine-as-available trees fold early "
              "arrivals and pay only the last\nstraggler plus a short "
              "fan-in, where the ordered tree also stalls\nintermediate "
              "nodes on its fixed schedule.\n");
  return 0;
}
