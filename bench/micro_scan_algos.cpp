// Microbenchmarks of the scan-built algorithms (compact, radix sort, RLE):
// modelled critical-path time against rank count, showing that the
// algorithm layer inherits the collectives' logarithmic structure.
#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/algos/compact.hpp"
#include "rs/algos/radix_sort.hpp"
#include "rs/algos/rle.hpp"

namespace {

using namespace rsmpi;

constexpr std::size_t kPerRank = 1 << 12;

std::vector<std::uint32_t> rank_data(int rank) {
  std::mt19937 rng(1000u + static_cast<unsigned>(rank));
  std::vector<std::uint32_t> v(kPerRank);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng());
  return v;
}

template <typename Body>
void report_vtime(benchmark::State& state, int p, Body body) {
  mprt::CostModel model;  // default LogGP, no compute charging: structure
  model.compute_scale = 0.0;
  for (auto _ : state) {
    const auto result = mprt::run(p, body, model);
    state.SetIterationTime(result.makespan_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kPerRank) * p *
                          state.iterations());
}

void BM_Compact(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  report_vtime(state, p, [](mprt::Comm& comm) {
    const auto data = rank_data(comm.rank());
    benchmark::DoNotOptimize(rs::algos::compact<std::uint32_t>(
        comm, data, [](std::uint32_t x) { return (x & 3) == 0; }));
  });
}

void BM_RadixSort(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  report_vtime(state, p, [](mprt::Comm& comm) {
    benchmark::DoNotOptimize(
        rs::algos::radix_sort(comm, rank_data(comm.rank())));
  });
}

void BM_RunLengthEncode(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  report_vtime(state, p, [](mprt::Comm& comm) {
    // Bursty data so runs are nontrivial.
    std::vector<std::uint32_t> data;
    data.reserve(kPerRank);
    std::mt19937 rng(7u + static_cast<unsigned>(comm.rank()));
    while (data.size() < kPerRank) {
      const auto v = static_cast<std::uint32_t>(rng() % 16);
      const std::size_t len = 1 + rng() % 8;
      for (std::size_t i = 0; i < len && data.size() < kPerRank; ++i) {
        data.push_back(v);
      }
    }
    benchmark::DoNotOptimize(
        rs::algos::run_length_encode<std::uint32_t>(comm, data));
  });
}

void RankArgs(benchmark::internal::Benchmark* b) {
  for (const int p : {2, 4, 8, 16, 32}) b->Arg(p);
  b->UseManualTime();
}

BENCHMARK(BM_Compact)->Apply(RankArgs);
BENCHMARK(BM_RadixSort)->Apply(RankArgs);
BENCHMARK(BM_RunLengthEncode)->Apply(RankArgs);

}  // namespace

// Short default min_time, as in micro_collectives: every iteration boots
// a virtual machine.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.02";
  bool has_min_time = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) {
      has_min_time = true;
    }
  }
  if (!has_min_time) args.push_back(min_time.data());
  int my_argc = static_cast<int>(args.size());
  benchmark::Initialize(&my_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(my_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
