// Ablation (paper §4.1 last paragraph): what happens when the `sorted`
// reduction is (incorrectly) flagged commutative?
//
// The paper flagged it commutative to see whether the combine-as-available
// schedule would buy anything: "This resulted in no speedup, though the
// program did fail to verify that the array was sorted (as expected)."
// This benchmark reproduces both halves of that sentence: the ordered and
// unordered schedules are timed side by side, and the unordered answer is
// checked against the truth.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.hpp"
#include "rs/ops/sorted.hpp"
#include "rs/reduce.hpp"

namespace {

using namespace rsmpi;

constexpr std::size_t kPerRank = 1 << 16;

std::vector<int> rank_block(int rank) {
  // Globally sorted data: rank r holds [r*n, r*n + n).
  std::vector<int> v(kPerRank);
  std::iota(v.begin(), v.end(), rank * static_cast<int>(kPerRank));
  return v;
}

}  // namespace

int main() {
  std::printf("Ablation: sorted reduction, ordered vs (wrongly) commutative "
              "schedule (paper S4.1)\n");
  std::printf("%6s %16s %16s %10s %12s\n", "p", "ordered(ms)", "flagged(ms)",
              "speedup", "verdict-ok?");

  for (const int p : bench::kProcessorCounts) {
    std::vector<std::vector<int>> per_rank(static_cast<std::size_t>(p));

    const double t_ordered = bench::time_phase(
        p, mprt::CostModel{},
        [&](mprt::Comm& comm) {
          auto& slot = per_rank[static_cast<std::size_t>(comm.rank())];
          if (slot.empty()) slot = rank_block(comm.rank());
        },
        [&](mprt::Comm& comm) {
          const auto& mine = per_rank[static_cast<std::size_t>(comm.rank())];
          auto state = rs::reduce_state(comm, mine, rs::ops::Sorted<int>{});
          if (!rs::red_result(state)) std::abort();
        });

    // The same reduction with the commutativity flag forced on.  With more
    // than two ranks the combine-as-available tree folds blocks in arrival
    // order, so the answer is allowed to be wrong.
    int wrong_verdicts = 0;
    const double t_flagged = bench::time_phase(
        p, mprt::CostModel{},
        [&](mprt::Comm& comm) {
          auto& slot = per_rank[static_cast<std::size_t>(comm.rank())];
          if (slot.empty()) slot = rank_block(comm.rank());
        },
        [&](mprt::Comm& comm) {
          const auto& mine = per_rank[static_cast<std::size_t>(comm.rank())];
          auto state = rs::reduce_state(comm, mine, rs::ops::Sorted<int>{},
                                        /*commutative_override=*/true);
          if (comm.rank() == 0 && !rs::red_result(state)) ++wrong_verdicts;
        });

    std::printf("%6d %16.3f %16.3f %10.2f %12s\n", p, t_ordered * 1e3,
                t_flagged * 1e3, t_ordered / t_flagged,
                wrong_verdicts > 0 ? "NO (as paper)" : "yes");
  }
  std::printf("\nThe paper observed no speedup from the commutative flag and "
              "a failed\nverification; 'NO (as paper)' marks runs where the "
              "unordered schedule\nreturned the wrong verdict on sorted "
              "data.\n");
  return 0;
}
