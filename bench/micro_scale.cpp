// Scale sweep for ISSUE 10: modelled critical path of the allreduce
// schedules at p ∈ {64, 256, 1024, 4096} on a two-tier cluster-of-SMPs
// cost model (8 ranks per node, infiniband-class fabric between nodes,
// shared memory inside, port contention when a whole node injects at
// once).  Every run is rank-virtualized: thousands of virtual ranks
// multiplex onto 8 OS-thread workers, which is what makes the p = 4096
// points tractable on a laptop at all.
//
// The story this bench pins down: flat schedules stop scaling once the
// fabric tier dominates — the ring drowns in latency, butterfly and
// Rabenseifner in port contention — while the two-level hierarchical
// schedule keeps only ~p/8 states on the expensive tier.  At p >= 256 the
// hierarchical critical path beats the best flat schedule on the
// contention-aware closed-form model and the autotuner picks it; at
// p = 64 the flat ring still wins and the autotuner stays there.  The
// ring is skipped above p = 256 in full mode (2·(p−1) physical hops per
// rank — tens of millions of messages at p = 4096 — for a schedule the
// model already prices out).
//
// Two kinds of numbers per point, and they deliberately differ: the
// *_model_us columns are the ScheduleCost closed forms (port contention
// included — what the autotuner minimizes), while the *_us columns are
// the simulator's virtual-clock makespans.  Per-rank virtual clocks share
// no state, so the simulator cannot charge one rank for a sibling's
// concurrent use of the node port — simulated flat butterfly/Rabenseifner
// makespans are therefore contention-free and optimistic at scale, and
// the autotuner knowingly trusts the richer closed form instead (see
// docs/schedules.md).  The headline acceptance metric,
// hierarchical_speedup_vs_best_flat, is computed on the model columns.
//
// Emits machine-readable JSON on stdout (committed as BENCH_scale.json
// from a full run) and a human table on stderr.  --smoke sweeps
// p ∈ {64, 256} for CI; every smoke point exists in the full baseline, so
// `--smoke --check BENCH_scale.json` gates the autotuned critical path at
// 5% in CI.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mprt/cost_model.hpp"
#include "mprt/runtime.hpp"
#include "rs/ops/counts.hpp"
#include "rs/state_exchange.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
using mprt::Comm;
using rs::detail::Schedule;

constexpr int kRanksPerNode = 8;
constexpr int kWorkers = 8;
constexpr std::size_t kStateBytes = 64u << 10;  // bandwidth-relevant state
constexpr std::size_t kBuckets = kStateBytes / sizeof(long);

mprt::CostModel bench_model() {
  mprt::CostModel model = mprt::CostModel::cluster_of_smp(kRanksPerNode);
  model.compute_scale = 0.0;  // deterministic: communication charges only
  return model;
}

ops::Counts filled_counts(int rank) {
  ops::Counts op(kBuckets);
  for (int i = 0; i < 64; ++i) {
    op.accum(static_cast<int>((static_cast<std::size_t>(rank) * 7919 + i * 31) %
                              kBuckets));
  }
  return op;
}

struct ScheduleRow {
  const char* env_name;  // RSMPI_SCHEDULE value, nullptr = autotuned
  const char* json_key;
  int max_p;  // skip above this rank count (physical message explosion)
};

const ScheduleRow kRows[] = {
    {"two_message", "two_message_us", 1 << 30},
    {"butterfly", "butterfly_us", 1 << 30},
    {"rabenseifner", "rabenseifner_us", 1 << 30},
    {"ring", "ring_us", 256},
    {"hierarchical", "hierarchical_us", 1 << 30},
    {nullptr, "autotuned_us", 1 << 30},
};
constexpr std::size_t kNumFlat = 4;          // flat rows before hierarchical
constexpr std::size_t kHierarchicalIdx = 4;  // index of the hierarchical row
constexpr std::size_t kAutoIdx = 5;          // index of the autotuned row

/// Modelled critical path (seconds) of one allreduce at `p` virtual ranks
/// on kWorkers OS threads, with RSMPI_SCHEDULE pinned to `env_name` (or
/// cleared for the autotuned dispatch).  The env var changes only between
/// runs, never while rank fibers are live.
double measure(const char* env_name, int p) {
  if (env_name != nullptr) {
    ::setenv("RSMPI_SCHEDULE", env_name, /*overwrite=*/1);
  } else {
    ::unsetenv("RSMPI_SCHEDULE");
  }
  const ops::Counts prototype(kBuckets);
  // Virtual time is fully deterministic at compute_scale = 0, so one rep
  // suffices even at p = 4096.
  const double t = bench::time_phase(
      p, bench_model(), [&](Comm&) {},
      [&](Comm& comm) {
        auto op = filled_counts(comm.rank());
        rs::detail::state_allreduce(comm, op, prototype);
      },
      /*reps=*/1, mprt::ExecPolicy{/*workers=*/kWorkers, /*stack_bytes=*/0});
  ::unsetenv("RSMPI_SCHEDULE");
  return t;
}

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kTwoMessage: return "two_message";
    case Schedule::kButterfly: return "butterfly";
    case Schedule::kRabenseifner: return "rabenseifner";
    case Schedule::kRing: return "ring";
    case Schedule::kPipelined: return "pipelined";
    case Schedule::kHierarchical: return "hierarchical";
    case Schedule::kAuto: break;
  }
  return "auto";
}

const char* kModelKeys[] = {
    "two_message_model_us", "butterfly_model_us", "rabenseifner_model_us",
    "ring_model_us",        "pipelined_model_us", "hierarchical_model_us",
};
constexpr std::size_t kNumFlatModels = 5;  // entries before hierarchical
constexpr std::size_t kHierModelIdx = 5;

struct Point {
  int p = 0;
  double us[6] = {};        // simulated makespans per kRows order; -1 skipped
  double model_us[6] = {};  // closed-form predictions per kModelKeys order
  const char* choice = "auto";
  double best_flat_model_us = 0.0;
  double hierarchical_speedup_vs_best_flat = 0.0;  // on the model columns
};

Point measure_point(int p) {
  Point pt;
  pt.p = p;
  for (std::size_t i = 0; i < std::size(kRows); ++i) {
    pt.us[i] = p <= kRows[i].max_p ? measure(kRows[i].env_name, p) * 1e6 : -1.0;
  }
  using SC = mprt::ScheduleCost;
  const auto model = bench_model();
  pt.model_us[0] = SC::two_message(model, p, kStateBytes) * 1e6;
  pt.model_us[1] = SC::butterfly(model, p, kStateBytes) * 1e6;
  pt.model_us[2] = SC::rabenseifner(model, p, kStateBytes) * 1e6;
  pt.model_us[3] = SC::ring(model, p, kStateBytes) * 1e6;
  pt.model_us[4] = SC::pipelined_tree_allreduce(
                       model, p, kStateBytes,
                       rs::detail::kDefaultSegmentBytes) * 1e6;
  pt.model_us[5] = SC::hierarchical(model, p, kStateBytes) * 1e6;
  pt.best_flat_model_us = pt.model_us[0];
  for (std::size_t i = 1; i < kNumFlatModels; ++i) {
    if (pt.model_us[i] < pt.best_flat_model_us) {
      pt.best_flat_model_us = pt.model_us[i];
    }
  }
  pt.hierarchical_speedup_vs_best_flat =
      pt.best_flat_model_us / pt.model_us[kHierModelIdx];
  pt.choice = schedule_name(rs::detail::choose_allreduce_schedule(
      bench_model(), p, kStateBytes, rs::detail::kDefaultSegmentBytes));
  return pt;
}

// --- baseline check ---------------------------------------------------------

/// Extracts the number following `"key": ` in `line`, or -1 if absent.
double json_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::atof(line.c_str() + pos + needle.size());
}

/// Compares each measured point's autotuned critical path against the
/// committed baseline; returns the number of points regressing > 5%.
int check_against_baseline(const std::vector<Point>& points,
                           const char* baseline_path) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "check: cannot open baseline %s\n", baseline_path);
    return 1;
  }
  struct Base {
    int p;
    double autotuned_us;
  };
  std::vector<Base> baseline;
  std::string line;
  while (std::getline(in, line)) {
    const double p = json_field(line, "p");
    const double us = json_field(line, "autotuned_us");
    if (p > 0 && us > 0) {
      baseline.push_back({static_cast<int>(p), us});
    }
  }
  int failures = 0;
  for (const Point& pt : points) {
    const Base* match = nullptr;
    for (const Base& b : baseline) {
      if (b.p == pt.p) match = &b;
    }
    if (match == nullptr) {
      std::fprintf(stderr, "check: no baseline point for p=%d\n", pt.p);
      ++failures;
      continue;
    }
    const double limit = match->autotuned_us * 1.05;
    if (pt.us[kAutoIdx] > limit) {
      std::fprintf(stderr,
                   "check: REGRESSION p=%d autotuned %.1f us > baseline "
                   "%.1f us * 1.05\n",
                   pt.p, pt.us[kAutoIdx], match->autotuned_us);
      ++failures;
    }
  }
  if (failures == 0) {
    std::fprintf(stderr, "check: %zu points within 5%% of baseline\n",
                 points.size());
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  const std::vector<int> procs = smoke ? std::vector<int>{64, 256}
                                       : std::vector<int>{64, 256, 1024, 4096};
  const auto model = bench_model();

  std::vector<Point> points;
  std::fprintf(stderr, "== allreduce schedules at scale (%zu-byte state, "
               "%d ranks/node, %d workers) ==\n",
               kStateBytes, kRanksPerNode, kWorkers);
  std::fprintf(stderr, "-- simulated makespans (us; no port contention) --\n");
  std::fprintf(stderr, "%6s %12s %12s %12s %12s %12s %12s  %s\n", "p",
               "two_msg", "butterfly", "rabenseif", "ring", "hierarch",
               "autotuned", "choice");
  for (const int p : procs) {
    const Point pt = measure_point(p);
    std::fprintf(stderr,
                 "%6d %12.1f %12.1f %12.1f %12.1f %12.1f %12.1f  %s\n", pt.p,
                 pt.us[0], pt.us[1], pt.us[2], pt.us[3], pt.us[4], pt.us[5],
                 pt.choice);
    points.push_back(pt);
  }
  std::fprintf(stderr,
               "-- closed-form model (us; contention-aware, what the "
               "autotuner minimizes) --\n");
  std::fprintf(stderr, "%6s %12s %12s %12s %12s %12s %12s  %s\n", "p",
               "two_msg", "butterfly", "rabenseif", "ring", "pipelined",
               "hierarch", "hier_speedup");
  for (const Point& pt : points) {
    std::fprintf(stderr,
                 "%6d %12.1f %12.1f %12.1f %12.1f %12.1f %12.1f  %.2fx\n",
                 pt.p, pt.model_us[0], pt.model_us[1], pt.model_us[2],
                 pt.model_us[3], pt.model_us[4], pt.model_us[5],
                 pt.hierarchical_speedup_vs_best_flat);
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"micro_scale\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"operator\": \"Counts(%zu)\",\n", kBuckets);
  std::printf("  \"state_bytes\": %zu,\n", kStateBytes);
  std::printf("  \"workers\": %d,\n", kWorkers);
  std::printf("  \"cost_model\": {\"ranks_per_node\": %d, \"latency_s\": %g, "
              "\"per_byte_s\": %g, \"intra_latency_s\": %g, "
              "\"intra_per_byte_s\": %g, \"inter_gap_s\": %g},\n",
              model.ranks_per_node, model.latency_s, model.per_byte_s,
              model.intra_latency_s, model.intra_per_byte_s, model.inter_gap_s);
  std::printf("  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    std::printf("    {\"p\": %d", pt.p);
    for (std::size_t k = 0; k < std::size(kRows); ++k) {
      std::printf(", \"%s\": %.3f", kRows[k].json_key, pt.us[k]);
    }
    for (std::size_t k = 0; k < std::size(kModelKeys); ++k) {
      std::printf(", \"%s\": %.3f", kModelKeys[k], pt.model_us[k]);
    }
    std::printf(", \"autotuned_choice\": \"%s\", \"best_flat_model_us\": %.3f, "
                "\"hierarchical_speedup_vs_best_flat\": %.4f}%s\n",
                pt.choice, pt.best_flat_model_us,
                pt.hierarchical_speedup_vs_best_flat,
                i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");

  if (baseline_path != nullptr) {
    return check_against_baseline(points, baseline_path) == 0 ? 0 : 1;
  }
  return 0;
}
