// The RSMPI surface syntax (paper §4), rendered in C++.
//
// The paper's RSMPI is a C extension — `rsmpi operator sorted { state
// {...} void ident(...) ... }` — that a Perl preprocessor lowers to plain
// MPI.  The C++ rendering needs no preprocessor: an RSMPI operator is a
// plain struct in exactly Listing 8's shape,
//
//   struct Sorted {
//     using In = int;
//     struct State { int first, last, status; };  // `state { ... }`
//     static constexpr bool commutative = false;  // `non-commutative`
//     static void ident(State& s);
//     static void pre_accum(State& s, const In& i);    // optional
//     static void accum(State& s, const In& i);
//     static void post_accum(State& s, const In& i);   // optional
//     static void combine(State& s1, const State& s2);
//     static int generate(const State& s);
//     static Out scan_generate(const State& s, const In& i);  // optional
//   };
//
// and the call sites mirror the RSMPI routines, including §4's
// convenience that the world communicator is the default when none is
// passed:
//
//   int sorted = 0;
//   RSMPI_Reduceall<Sorted>(&sorted, keys);
//
// Internally each struct is adapted onto the global-view operator
// protocol (rs/op_concepts.hpp), so every schedule, trait, and test of
// the core library applies unchanged.  The state must be trivially
// copyable — the natural condition for a C-born interface — which also
// makes serialization automatic.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <ranges>
#include <span>
#include <vector>

#include "mprt/comm.hpp"
#include "mprt/runtime.hpp"
#include "rs/async.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"

namespace rsmpi::c_api {

namespace detail {

template <typename COp>
concept HasCPreAccum = requires(typename COp::State& s,
                                const typename COp::In& x) {
  COp::pre_accum(s, x);
};

template <typename COp>
concept HasCPostAccum = requires(typename COp::State& s,
                                 const typename COp::In& x) {
  COp::post_accum(s, x);
};

template <typename COp>
concept HasCScanGenerate = requires(const typename COp::State& s,
                                    const typename COp::In& x) {
  COp::scan_generate(s, x);
};

template <typename COp>
concept HasCGenerate = requires(const typename COp::State& s) {
  COp::generate(s);
};

/// Bridges a Listing-8-style struct onto the operator-class protocol.
template <typename COp>
class Adapter {
 public:
  using In = typename COp::In;
  using State = typename COp::State;
  static_assert(std::is_trivially_copyable_v<State>,
                "RSMPI operator state must be trivially copyable");

  static constexpr bool commutative = [] {
    if constexpr (requires { COp::commutative; }) {
      return COp::commutative;
    } else {
      return true;  // the paper's default (§3.1.4)
    }
  }();

  Adapter() { COp::ident(state_); }

  void accum(const In& x) { COp::accum(state_, x); }

  void pre_accum(const In& x)
    requires HasCPreAccum<COp>
  {
    COp::pre_accum(state_, x);
  }

  void post_accum(const In& x)
    requires HasCPostAccum<COp>
  {
    COp::post_accum(state_, x);
  }

  void combine(const Adapter& other) { COp::combine(state_, other.state_); }

  [[nodiscard]] auto red_gen() const
    requires HasCGenerate<COp>
  {
    return COp::generate(state_);
  }

  [[nodiscard]] auto scan_gen(const In& x) const
    requires HasCScanGenerate<COp>
  {
    return COp::scan_generate(state_, x);
  }

  [[nodiscard]] const State& state() const { return state_; }

 private:
  State state_;
};

}  // namespace detail

/// RSMPI_Reduceall: global-view reduction, result on every rank.
template <typename COp, std::ranges::input_range R, typename Out>
void RSMPI_Reduceall(Out* result, R&& values,
                     mprt::Comm& comm = mprt::this_comm()) {
  *result = rs::reduce(comm, std::forward<R>(values),
                       detail::Adapter<COp>{});
}

/// RSMPI_Reduce: result generated on `root` only; other ranks' outputs
/// are untouched.
template <typename COp, std::ranges::input_range R, typename Out>
void RSMPI_Reduce(Out* result, int root, R&& values,
                  mprt::Comm& comm = mprt::this_comm()) {
  auto out = rs::reduce_root(comm, root, std::forward<R>(values),
                             detail::Adapter<COp>{});
  if (out.has_value()) *result = std::move(*out);
}

/// RSMPI_Scan: inclusive global-view scan of this rank's slice.
template <typename COp, std::ranges::forward_range R, typename Out>
void RSMPI_Scan(std::vector<Out>* result, R&& values,
                mprt::Comm& comm = mprt::this_comm()) {
  *result = rs::scan(comm, std::forward<R>(values), detail::Adapter<COp>{},
                     rs::ScanKind::kInclusive);
}

/// RSMPI_Exscan: exclusive global-view scan; global position 0 receives
/// the generate of the identity state (unlike MPI_Exscan, which leaves it
/// undefined — the reason the abstraction demands an ident function, §2).
template <typename COp, std::ranges::forward_range R, typename Out>
void RSMPI_Exscan(std::vector<Out>* result, R&& values,
                  mprt::Comm& comm = mprt::this_comm()) {
  *result = rs::scan(comm, std::forward<R>(values), detail::Adapter<COp>{},
                     rs::ScanKind::kExclusive);
}

// -- Runtime statistics ------------------------------------------------------

/// Per-rank runtime counters, C-struct shaped: traffic, payload-buffer
/// behaviour, schedule autotuning, fault-recovery incidents, and the live
/// chaos totals.  Readable mid-run (e.g. once per service epoch) — every
/// field is a snapshot of this rank's own counters, gathered without
/// communication.
struct RSMPI_Stats {
  // Traffic.
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  // Payload buffers (zero-copy combine phase + pool).
  std::uint64_t payload_allocs = 0;
  std::uint64_t payload_copies = 0;
  std::uint64_t sends_moved = 0;
  std::uint64_t sends_inline = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t pool_segments_reused = 0;
  // Planning and collectives.
  std::uint64_t autotune_invocations = 0;
  std::int64_t collective_tags_consumed = 0;
  // Two-level topology traffic split (both 0 under a flat cost model).
  std::uint64_t intra_node_bytes = 0;
  std::uint64_t inter_node_bytes = 0;
  // Rank virtualization (all 0 on the thread-per-rank path): OS workers
  // the virtual ranks are multiplexed onto, peak simultaneously-parked
  // ranks, and park transitions so far.  Engine-wide counters snapshotted
  // through this rank, still gathered without communication.
  std::uint64_t workers = 0;
  std::uint64_t parked_ranks = 0;
  std::uint64_t park_events = 0;
  // Fault handling.
  std::uint64_t recv_retries = 0;
  std::uint64_t duplicates_suppressed = 0;
  // Chaos-layer totals for the whole run so far (identical on all ranks).
  std::uint64_t chaos_dropped = 0;
  std::uint64_t chaos_duplicated = 0;
  std::uint64_t chaos_delayed = 0;
  std::uint64_t chaos_reordered = 0;
  int chaos_rank_killed = 0;
};

/// RSMPI_GetStats: fills `stats` with this rank's current counters.
inline void RSMPI_GetStats(RSMPI_Stats* stats,
                           mprt::Comm& comm = mprt::this_comm()) {
  RSMPI_Stats out;
  out.messages_sent = comm.messages_sent();
  out.bytes_sent = comm.bytes_sent();
  out.messages_received = comm.messages_received();
  out.bytes_received = comm.bytes_received();
  out.payload_allocs = comm.payload_allocs();
  out.payload_copies = comm.payload_copies();
  out.sends_moved = comm.sends_moved();
  out.sends_inline = comm.sends_inline();
  const auto& pool = comm.pool_stats();
  out.pool_hits = pool.hits;
  out.pool_misses = pool.misses;
  out.pool_segments_reused = pool.segments_reused;
  out.autotune_invocations = comm.autotune_invocations();
  out.collective_tags_consumed = comm.collective_tags_consumed();
  out.intra_node_bytes = comm.intra_node_bytes();
  out.inter_node_bytes = comm.inter_node_bytes();
  out.workers = comm.virtual_workers();
  out.parked_ranks = comm.parked_ranks();
  out.park_events = comm.park_events();
  out.recv_retries = comm.recv_retries();
  out.duplicates_suppressed = comm.duplicates_suppressed();
  const mprt::SimStats sim = comm.sim_stats();
  out.chaos_dropped = sim.dropped;
  out.chaos_duplicated = sim.duplicated;
  out.chaos_delayed = sim.delayed;
  out.chaos_reordered = sim.reordered;
  out.chaos_rank_killed = sim.rank_killed ? 1 : 0;
  *stats = out;
}

// -- Nonblocking variants (MPI-3 shape) -------------------------------------

/// Status codes returned by RSMPI_Wait/RSMPI_Test, MPI_SUCCESS-style.  A
/// non-success code means the collective could not complete: the request
/// handle is freed, the result pointer is left unwritten, and the rank may
/// handle the failure (e.g. a peer killed by a fault plan) instead of
/// hanging or unwinding.
inline constexpr int RSMPI_SUCCESS = 0;
/// A RecvDeadline expired while the operation was waiting for a message.
inline constexpr int RSMPI_ERR_TIMEOUT = 1;
/// A rank of the machine exited while the operation needed it.
inline constexpr int RSMPI_ERR_PEER_LOST = 2;

/// Opaque request handle for the nonblocking RSMPI routines.  A default-
/// constructed handle is the RSMPI analogue of MPI_REQUEST_NULL: RSMPI_Wait
/// on it returns immediately and RSMPI_Test reports completion.  Handles
/// are freed (reset to null) by the Wait/Test that completes them.
struct RSMPI_Request {
  coll::nb::Request request;
  std::function<void()> finalize;

  [[nodiscard]] bool valid() const { return static_cast<bool>(finalize); }
};

/// RSMPI_Ireduceall: starts the reduction and returns immediately; the
/// result pointer is written by the RSMPI_Wait/RSMPI_Test that completes
/// the returned request, so `result` must stay alive until then.
template <typename COp, std::ranges::input_range R, typename Out>
RSMPI_Request RSMPI_Ireduceall(Out* result, R&& values,
                               mprt::Comm& comm = mprt::this_comm()) {
  auto future = std::make_shared<rs::Future<
      rs::reduce_result_t<detail::Adapter<COp>>>>(rs::reduce_async(
      comm, std::forward<R>(values), detail::Adapter<COp>{}));
  RSMPI_Request req;
  req.request = future->request();
  req.finalize = [future, result]() { *result = future->get(); };
  return req;
}

/// RSMPI_Iscan: nonblocking inclusive scan; the output vector is written
/// by the completing Wait/Test.
template <typename COp, std::ranges::forward_range R, typename Out>
RSMPI_Request RSMPI_Iscan(std::vector<Out>* result, R&& values,
                          mprt::Comm& comm = mprt::this_comm()) {
  using Adapter = detail::Adapter<COp>;
  using In = typename COp::In;
  auto future = std::make_shared<
      rs::Future<std::vector<rs::scan_result_t<Adapter, In>>>>(
      rs::scan_async(comm, std::forward<R>(values), Adapter{},
                     rs::ScanKind::kInclusive));
  RSMPI_Request req;
  req.request = future->request();
  req.finalize = [future, result]() { *result = std::move(future->get()); };
  return req;
}

/// RSMPI_Wait: blocks (progressing every pending operation on this rank)
/// until the request completes, writes its result, nulls the handle, and
/// returns RSMPI_SUCCESS.  A timeout or lost peer frees the handle and
/// returns the matching error code instead of propagating the exception —
/// the MPI convention of surfacing failures as status codes.
inline int RSMPI_Wait(RSMPI_Request* request) {
  if (!request->valid()) return RSMPI_SUCCESS;
  try {
    request->request.wait();
    request->finalize();
  } catch (const TimeoutError&) {
    *request = RSMPI_Request{};
    return RSMPI_ERR_TIMEOUT;
  } catch (const PeerLostError&) {
    *request = RSMPI_Request{};
    return RSMPI_ERR_PEER_LOST;
  }
  *request = RSMPI_Request{};
  return RSMPI_SUCCESS;
}

/// RSMPI_Test: one progress pass; returns 1 and completes the request (as
/// RSMPI_Wait would) if it is done, 0 otherwise.  Null handles test as
/// complete, matching MPI_Test on MPI_REQUEST_NULL.  When `status` is
/// non-null it receives RSMPI_SUCCESS or the error code; a failed request
/// reports complete (flag 1) with the code, and the handle is freed.
inline int RSMPI_Test(RSMPI_Request* request, int* status = nullptr) {
  if (status != nullptr) *status = RSMPI_SUCCESS;
  if (!request->valid()) return 1;
  try {
    if (!request->request.test()) return 0;
    request->finalize();
  } catch (const TimeoutError&) {
    *request = RSMPI_Request{};
    if (status != nullptr) *status = RSMPI_ERR_TIMEOUT;
    return 1;
  } catch (const PeerLostError&) {
    *request = RSMPI_Request{};
    if (status != nullptr) *status = RSMPI_ERR_PEER_LOST;
    return 1;
  }
  *request = RSMPI_Request{};
  return 1;
}

/// RSMPI_Waitall over a batch of requests; returns the first non-success
/// status (every request is waited and freed regardless).
inline int RSMPI_Waitall(std::span<RSMPI_Request> requests) {
  int status = RSMPI_SUCCESS;
  for (auto& request : requests) {
    const int s = RSMPI_Wait(&request);
    if (status == RSMPI_SUCCESS) status = s;
  }
  return status;
}

}  // namespace rsmpi::c_api
