// The virtual machine: spawns one thread per rank and wires their mailboxes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mprt/comm.hpp"
#include "mprt/cost_model.hpp"
#include "mprt/mailbox.hpp"

namespace rsmpi::mprt {

/// Owns the shared state of one parallel execution: mailboxes, per-rank
/// clocks/counters, and the cost model.  Created internally by run(); user
/// code only sees Comm.
class Runtime {
 public:
  Runtime(int num_ranks, CostModel model);

  [[nodiscard]] int size() const { return static_cast<int>(mailboxes_.size()); }
  [[nodiscard]] const CostModel& cost_model() const { return model_; }

  [[nodiscard]] Mailbox& mailbox(int global_rank);
  [[nodiscard]] RankState& rank_state(int global_rank);

  /// Fail-fast teardown: unblocks every rank's pending receive with
  /// AbortError so a single throwing rank cannot deadlock the machine.
  void abort_all();

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<RankState> states_;
  CostModel model_;
};

/// Result of one parallel execution.
struct RunResult {
  /// Maximum final virtual clock across ranks: the modelled critical-path
  /// time of the whole execution.
  double makespan_s = 0.0;
  /// Final virtual clock of each rank.
  std::vector<double> rank_times_s;
  /// Total messages / payload bytes sent by all ranks.
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
};

/// Runs `body` on `num_ranks` ranks, each a thread with its own world
/// Comm, and joins them.  If any rank throws, the runtime aborts the
/// others and rethrows the lowest-ranked exception in the caller.
RunResult run(int num_ranks, const std::function<void(Comm&)>& body,
              const CostModel& model = CostModel{});

/// The calling thread's world communicator, set for the duration of its
/// run() body — the analogue of MPI_COMM_WORLD being implicitly
/// available, which the paper's RSMPI routines default to when no
/// communicator is passed (§4).  Throws if called outside a rank thread.
Comm& this_comm();

}  // namespace rsmpi::mprt
