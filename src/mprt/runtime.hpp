// The virtual machine: runs rank bodies against wired mailboxes — one OS
// thread per rank by default, or many virtual ranks multiplexed onto a
// small worker pool (ISSUE 10, RSMPI_WORKERS / ExecPolicy).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mprt/comm.hpp"
#include "mprt/cost_model.hpp"
#include "mprt/mailbox.hpp"
#include "mprt/sim.hpp"

namespace rsmpi::mprt {

class VirtualScheduler;

/// Owns the shared state of one parallel execution: mailboxes, per-rank
/// clocks/counters, the cost model, and (when a fault plan is active) the
/// chaos controller.  Created internally by run(); user code only sees
/// Comm.
class Runtime {
 public:
  Runtime(int num_ranks, CostModel model, SimConfig sim = SimConfig{});

  [[nodiscard]] int size() const { return static_cast<int>(mailboxes_.size()); }
  [[nodiscard]] const CostModel& cost_model() const { return model_; }

  /// The run's fault driver, or nullptr when no fault plan is active (the
  /// common case — send/receive paths skip the chaos layer on one branch).
  [[nodiscard]] ChaosController* chaos() { return chaos_.get(); }

  [[nodiscard]] Mailbox& mailbox(int global_rank);
  [[nodiscard]] RankState& rank_state(int global_rank);

  /// Fail-fast teardown: unblocks every rank's pending receive with
  /// AbortError so a single throwing rank cannot deadlock the machine.
  void abort_all();

  /// Records that `global_rank`'s thread has exited (fault-plan kill).
  /// Every mailbox is poisoned so receives that would block forever on the
  /// dead rank throw PeerLostError — a typed error, not a hang.
  void notify_peer_lost(int global_rank);

  /// The run's starvation monitor, or nullptr outside oracle-driven
  /// (model-checking) runs.
  [[nodiscard]] StarvationMonitor* monitor() { return monitor_.get(); }

  /// The virtualized run's fiber scheduler, or nullptr on the
  /// thread-per-rank path.  Installed by run() for the duration of the
  /// worker pool's execution so mid-run stat readers (Comm accessors,
  /// RSMPI_GetStats) can snapshot the park counters; its counters are
  /// safe to read from rank fibers while the pool is live.
  void set_scheduler(VirtualScheduler* sched) { scheduler_ = sched; }
  [[nodiscard]] VirtualScheduler* scheduler() const { return scheduler_; }

  /// Records that `global_rank`'s body returned or threw (any cause).
  /// Under the starvation monitor this may complete a global deadlock of
  /// the remaining ranks; the finishing thread confirms and wakes them so
  /// they throw DeadlockError instead of hanging.
  void note_rank_finished(int global_rank);

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<RankState> states_;
  CostModel model_;
  std::unique_ptr<ChaosController> chaos_;
  std::unique_ptr<StarvationMonitor> monitor_;
  VirtualScheduler* scheduler_ = nullptr;
};

/// Result of one parallel execution.
struct RunResult {
  /// Maximum final virtual clock across ranks: the modelled critical-path
  /// time of the whole execution.
  double makespan_s = 0.0;
  /// Final virtual clock of each rank.
  std::vector<double> rank_times_s;
  /// Total messages / payload bytes sent by all ranks.
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  /// Fault-injection statistics (all zero when no fault plan was active).
  SimStats sim;
  /// Duplicate deliveries suppressed by mailbox sequence numbers, summed
  /// over ranks.
  std::uint64_t duplicates_suppressed = 0;
  /// Buffer-pool acquires served from a size-class bin matching the
  /// requested size, summed over ranks — the segment-buffer recycling the
  /// segmented schedules (ring / pipelined) rely on.
  std::uint64_t segments_reused = 0;
  /// Cost-model schedule selections (autotuner argmins), summed over ranks.
  /// Persistent collectives plan once, so warm epoch loops contribute 0.
  std::uint64_t autotune_invocations = 0;
  /// Heap buffers allocated for message payloads, summed over ranks.
  std::uint64_t payload_allocs = 0;
  /// Parallel local-accumulate counters (the src/par/ work-stealing pool;
  /// all 0 unless RSMPI_LOCAL_THREADS enabled it): pool sections, chunks
  /// and steals summed over ranks, and the widest pool any rank used.
  /// Mirrored into user_stats as "par.sections" / "par.chunks" /
  /// "par.steals" / "par.threads" when any section ran, so stat readers
  /// (RSMPI_GetStats, benches) see them uniformly.
  std::uint64_t local_sections = 0;
  std::uint64_t local_chunks = 0;
  std::uint64_t local_steals = 0;
  std::uint64_t local_threads = 0;
  /// Metrics published by the rank bodies via Comm::publish_stat, summed
  /// by name across ranks — how service-layer collectors (svc::
  /// StatCollector) surface their aggregates through the run result.
  std::map<std::string, double> user_stats;
  /// Rank-virtualization counters (ISSUE 10; all 0 on the legacy
  /// thread-per-rank path): OS worker threads the ranks were multiplexed
  /// onto, peak simultaneously-parked virtual ranks, and total park
  /// transitions through the scheduler gate.  Mirrored into user_stats as
  /// "rt.workers" / "rt.parked_ranks" / "rt.park_events" when virtualized.
  std::uint64_t workers = 0;
  std::uint64_t parked_ranks = 0;
  std::uint64_t park_events = 0;
  /// Per-tier traffic split (two-level topology; both 0 unless the cost
  /// model sets ranks_per_node > 1): payload bytes sent between ranks
  /// sharing a modelled node vs crossing nodes.  Mirrored into user_stats
  /// as "tier.intra_bytes" / "tier.inter_bytes" when the model is tiered.
  std::uint64_t intra_node_bytes = 0;
  std::uint64_t inter_node_bytes = 0;
};

/// How run() executes its ranks (ISSUE 10).
struct ExecPolicy {
  /// OS worker threads to multiplex the ranks onto: -1 reads RSMPI_WORKERS
  /// (unset/0 keeps thread-per-rank), 0 forces thread-per-rank, >= 1
  /// forces that many workers.  Oracle-driven (model-checking) runs always
  /// use threads regardless — the verify explorer owns rank scheduling.
  int workers = -1;
  /// Per-fiber stack size; 0 reads RSMPI_STACK_BYTES (default 256 KiB).
  std::size_t stack_bytes = 0;
};

/// Runs `body` on `num_ranks` ranks, each a thread with its own world
/// Comm, and joins them.  If any rank throws, the runtime aborts the
/// others and rethrows the lowest-ranked exception in the caller.
/// Passing a SimConfig activates deterministic fault injection
/// (mprt/sim.hpp) for the duration of the run; every decision derives
/// from the config's seed, so failures replay exactly.
RunResult run(int num_ranks, const std::function<void(Comm&)>& body,
              const CostModel& model = CostModel{},
              const SimConfig& sim = SimConfig{},
              const ExecPolicy& exec = ExecPolicy{});

/// The calling thread's world communicator, set for the duration of its
/// run() body — the analogue of MPI_COMM_WORLD being implicitly
/// available, which the paper's RSMPI routines default to when no
/// communicator is passed (§4).  Throws if called outside a rank thread.
Comm& this_comm();

}  // namespace rsmpi::mprt
