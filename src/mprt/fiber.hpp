// Stackful fibers for rank virtualization (ISSUE 10).
//
// A Fiber is one virtual rank's execution context: a ucontext_t plus an
// mmap'd stack with a PROT_NONE guard page below it, so a rank body that
// overflows its (default 256 KiB) stack faults loudly instead of
// corrupting a neighbour.  MAP_NORESERVE keeps thousands of fibers cheap:
// p=4096 ranks reserve address space, not memory — pages materialize only
// as deep as each rank's call chain actually grows.
//
// Fibers migrate freely between worker threads: resume() records the
// *current* caller's context (and, under ThreadSanitizer, its TSAN fiber
// handle) on every entry, so suspend() always returns to whichever worker
// is running the fiber right now.  Under TSAN each fiber registers as its
// own logical thread via the fiber API — without the annotations TSAN
// would see one OS thread's shadow stack teleporting between rank bodies
// and report phantom races on every switch.
#pragma once

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "util/error.hpp"

#if defined(__SANITIZE_THREAD__)
#define RSMPI_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RSMPI_TSAN_FIBERS 1
#endif
#endif

#ifdef RSMPI_TSAN_FIBERS
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace rsmpi::mprt {

/// One suspendable execution context.  Not thread-safe: at most one thread
/// may be inside resume() at a time (the scheduler's ready queue enforces
/// this — a fiber is either running on exactly one worker, queued, or
/// parked, never two at once).
class Fiber {
 public:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  Fiber(std::size_t stack_bytes, std::function<void()> body)
      : body_(std::move(body)) {
    const std::size_t page = page_size();
    if (stack_bytes < 4 * page) stack_bytes = 4 * page;
    stack_bytes = (stack_bytes + page - 1) / page * page;
    map_bytes_ = stack_bytes + page;  // +1 guard page at the low end
    void* base = ::mmap(nullptr, map_bytes_, PROT_NONE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (base == MAP_FAILED) {
      throw Error("fiber: mmap of stack failed (" +
                  std::to_string(map_bytes_) + " bytes)");
    }
    stack_base_ = base;
    if (::mprotect(static_cast<std::byte*>(base) + page, stack_bytes,
                   PROT_READ | PROT_WRITE) != 0) {
      ::munmap(base, map_bytes_);
      throw Error("fiber: mprotect of stack failed");
    }
    if (::getcontext(&ctx_) != 0) {
      ::munmap(base, map_bytes_);
      throw Error("fiber: getcontext failed");
    }
    ctx_.uc_stack.ss_sp = static_cast<std::byte*>(base) + page;
    ctx_.uc_stack.ss_size = stack_bytes;
    ctx_.uc_link = nullptr;
    // makecontext only passes ints; smuggle `this` through as two halves.
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    ::makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                  static_cast<unsigned>(self >> 32),
                  static_cast<unsigned>(self & 0xFFFFFFFFu));
#ifdef RSMPI_TSAN_FIBERS
    tsan_fiber_ = __tsan_create_fiber(0);
#endif
  }

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  ~Fiber() {
#ifdef RSMPI_TSAN_FIBERS
    if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
    if (stack_base_ != nullptr) ::munmap(stack_base_, map_bytes_);
  }

  /// Switches the calling worker into the fiber; returns when the fiber
  /// suspends or finishes.
  void resume() {
    ucontext_t back{};
    return_ctx_ = &back;
#ifdef RSMPI_TSAN_FIBERS
    return_tsan_ = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
    ::swapcontext(&back, &ctx_);
  }

  /// From inside the fiber: switches back to the worker that resumed it.
  void suspend() {
#ifdef RSMPI_TSAN_FIBERS
    __tsan_switch_to_fiber(return_tsan_, 0);
#endif
    ::swapcontext(&ctx_, return_ctx_);
  }

  [[nodiscard]] bool finished() const { return finished_; }

 private:
  static void trampoline(unsigned hi, unsigned lo) {
    auto* self = reinterpret_cast<Fiber*>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    self->body_();  // rank bodies catch their own exceptions (runtime.cpp)
    self->finished_ = true;
    self->suspend();  // never returns: a finished fiber is never resumed
  }

  static std::size_t page_size() {
    const long p = ::sysconf(_SC_PAGESIZE);
    return p > 0 ? static_cast<std::size_t>(p) : 4096;
  }

  std::function<void()> body_;
  ucontext_t ctx_{};
  ucontext_t* return_ctx_ = nullptr;
  void* stack_base_ = nullptr;
  std::size_t map_bytes_ = 0;
  bool finished_ = false;
#ifdef RSMPI_TSAN_FIBERS
  void* tsan_fiber_ = nullptr;
  void* return_tsan_ = nullptr;
#endif
};

}  // namespace rsmpi::mprt
