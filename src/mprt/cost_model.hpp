// LogGP-style communication cost model and per-rank virtual clock.
//
// The paper's figures plot efficiency against processor count on a 92-node
// IBM P655 cluster.  This repository runs every rank as a thread of one
// process on a (possibly single-core) laptop, so wall-clock speedup across
// ranks is meaningless.  Instead each rank carries a *virtual clock*:
//
//   * local computation advances the clock by measured per-thread CPU time
//     (immune to timesharing, because each thread is only charged while it
//     is actually running), and
//   * every message carries its sender's virtual send-completion time; the
//     receiver's clock becomes max(own, sender + L + bytes*G) + o_r.
//
// The maximum clock over all ranks at the end of a phase is the modelled
// critical-path execution time — the quantity the paper's figures plot.
// Defaults approximate an early-2000s cluster interconnect (10 us latency,
// ~1 GB/s bandwidth), but every experiment can supply its own model.
#pragma once

#include <chrono>
#include <cstddef>
#include <ctime>

namespace rsmpi::mprt {

/// LogGP-flavoured communication parameters, all in seconds.
struct CostModel {
  /// CPU overhead charged on the sender per message (o_s).
  double send_overhead_s = 1.0e-6;
  /// CPU overhead charged on the receiver per message (o_r).
  double recv_overhead_s = 1.0e-6;
  /// Wire latency per message (L).
  double latency_s = 10.0e-6;
  /// Transfer time per payload byte (G); default 1 ns/byte = 1 GB/s.
  double per_byte_s = 1.0e-9;
  /// CPU time charged per byte for a sender-side payload copy (the legacy
  /// span-based send path; the move-based path never pays it).  Default 0
  /// keeps the modelled timeline of existing experiments unchanged —
  /// copies are still *counted* via Comm's stats either way.
  double copy_per_byte_s = 0.0;
  /// Scale factor applied to measured local compute time.  1.0 charges the
  /// host's real per-thread CPU time; values != 1 let experiments model a
  /// faster or slower processor than the host.
  double compute_scale = 1.0;
  /// Cores the *model* grants each rank for parallel local sections (the
  /// work-stealing accumulate in src/par/).  A section's summed worker
  /// CPU is divided by min(cores_per_rank, pool width) before being
  /// charged — the host may timeshare the workers on fewer physical
  /// cores, but the modelled timeline reflects the configured machine,
  /// exactly as rank threads already timeshare one host core yet model a
  /// cluster node each.  Default 1 keeps every pre-existing experiment's
  /// timeline unchanged even with RSMPI_LOCAL_THREADS set.
  int cores_per_rank = 1;

  /// Modelled duration of a parallel local section that consumed
  /// `total_cpu_s` of summed per-thread CPU across a pool of `workers`.
  [[nodiscard]] double parallel_section_seconds(double total_cpu_s,
                                                unsigned workers) const {
    double effective = static_cast<double>(cores_per_rank < 1 ? 1
                                                              : cores_per_rank);
    if (workers >= 1 && static_cast<double>(workers) < effective) {
      effective = static_cast<double>(workers);
    }
    return compute_scale * total_cpu_s / effective;
  }

  /// Time from send initiation to availability at the receiver.
  [[nodiscard]] double wire_time(std::size_t payload_bytes) const {
    return latency_s + static_cast<double>(payload_bytes) * per_byte_s;
  }

  // -- Two-level topology (ISSUE 10) ----------------------------------------
  // Real clusters are nodes-of-cores: ranks sharing a node talk over shared
  // memory, ranks on different nodes over the fabric.  Setting
  // ranks_per_node > 1 maps rank r onto node r / ranks_per_node
  // (contiguous blocks) and charges the intra_* parameters for same-node
  // traffic; the flat parameters above become the *inter-node* tier.  The
  // default of 1 keeps every existing experiment's timeline bit-identical.

  /// Ranks per modelled node; <= 1 means a flat (single-tier) machine.
  int ranks_per_node = 1;
  /// Same-node (shared-memory class) parameters, used only when
  /// ranks_per_node > 1.
  double intra_send_overhead_s = 0.2e-6;
  double intra_recv_overhead_s = 0.2e-6;
  double intra_latency_s = 0.5e-6;
  double intra_per_byte_s = 0.1e-9;
  /// Per-message injection gap at a node's fabric port (LogGP g).  A node
  /// has one port: when k ranks of the same node send inter-node in the
  /// same schedule round, the port serializes them — each message pays the
  /// shared wire k times over plus (k−1) gaps.  This is why leader-based
  /// hierarchical schedules win at scale even though a contiguous rank map
  /// makes the early rounds of flat power-of-two schedules intra-node.
  /// Only the closed-form ScheduleCost predictions charge it (the per-rank
  /// simulator clocks cannot observe sibling ranks' concurrent sends);
  /// 0 disables the effect.
  double inter_gap_s = 0.0;

  [[nodiscard]] bool two_tier() const { return ranks_per_node > 1; }

  /// Node housing global rank `rank` (identity when flat).
  [[nodiscard]] int node_of(int rank) const {
    return two_tier() ? rank / ranks_per_node : rank;
  }

  [[nodiscard]] bool same_node(int a, int b) const {
    return two_tier() && node_of(a) == node_of(b);
  }

  /// Tier-resolved parameters for a message between two *global* ranks.
  /// Bit-identical to the flat accessors when the model is single-tier.
  [[nodiscard]] double wire_time_between(int a, int b,
                                         std::size_t payload_bytes) const {
    if (same_node(a, b)) {
      return intra_latency_s +
             static_cast<double>(payload_bytes) * intra_per_byte_s;
    }
    return wire_time(payload_bytes);
  }
  [[nodiscard]] double send_overhead_between(int a, int b) const {
    return same_node(a, b) ? intra_send_overhead_s : send_overhead_s;
  }
  [[nodiscard]] double recv_overhead_between(int a, int b) const {
    return same_node(a, b) ? intra_recv_overhead_s : recv_overhead_s;
  }

  /// A model in which communication is free; virtual time then measures
  /// pure computation.  Used by unit tests that check clock plumbing.
  static CostModel free() {
    CostModel m;
    m.send_overhead_s = m.recv_overhead_s = m.latency_s = m.per_byte_s = 0.0;
    return m;
  }

  // -- Interconnect presets (rough early/mid-2000s cluster fabrics) ---------
  // Used by the sensitivity benchmarks to show which reproduced results
  // depend on the interconnect and which are structural.

  /// Commodity gigabit ethernet: high latency, ~100 MB/s.
  static CostModel gigabit_ethernet() {
    CostModel m;
    m.send_overhead_s = m.recv_overhead_s = 5.0e-6;
    m.latency_s = 50.0e-6;
    m.per_byte_s = 10.0e-9;
    return m;
  }

  /// Myrinet-class fabric: ~7 us latency, ~250 MB/s.
  static CostModel myrinet() {
    CostModel m;
    m.send_overhead_s = m.recv_overhead_s = 1.0e-6;
    m.latency_s = 7.0e-6;
    m.per_byte_s = 4.0e-9;
    return m;
  }

  /// Infiniband-class fabric: ~2 us latency, ~1 GB/s.
  static CostModel infiniband() {
    CostModel m;
    m.send_overhead_s = m.recv_overhead_s = 0.5e-6;
    m.latency_s = 2.0e-6;
    m.per_byte_s = 1.0e-9;
    return m;
  }

  /// Shared-memory transport: sub-microsecond latency, ~10 GB/s.
  static CostModel shared_memory() {
    CostModel m;
    m.send_overhead_s = m.recv_overhead_s = 0.2e-6;
    m.latency_s = 0.5e-6;
    m.per_byte_s = 0.1e-9;
    return m;
  }

  /// Cluster of SMP nodes: infiniband-class fabric between nodes,
  /// shared-memory transport inside each `rpn`-rank node.  The asymmetry
  /// (4x latency, 10x bandwidth between tiers) is what makes hierarchical
  /// schedules win at scale.
  static CostModel cluster_of_smp(int rpn) {
    CostModel m = infiniband();
    m.ranks_per_node = rpn < 1 ? 1 : rpn;
    m.intra_send_overhead_s = m.intra_recv_overhead_s = 0.2e-6;
    m.intra_latency_s = 0.5e-6;
    m.intra_per_byte_s = 0.1e-9;
    m.inter_gap_s = 0.3e-6;
    return m;
  }
};

/// Closed-form critical-path predictions for the state-allreduce schedules
/// (ISSUE 5).  Each formula counts the modelled hops on the longest
/// dependency chain of the schedule, with hop(b) = o_s + L + b·G + o_r —
/// exactly what a rank's virtual clock accrues for one send/recv pair when
/// compute is free.  The schedule autotuner in rs/state_exchange.hpp picks
/// the argmin of these over (p, state bytes, partitionability); the
/// decision-table tests and the large-message benchmark's `--check` mode
/// hold the implementations to them.
///
/// The formulas deliberately ignore measured compute (combine cost is
/// schedule-independent to first order) and model only the p > 1 case —
/// callers short-circuit p == 1 before dispatching.
struct ScheduleCost {
  /// One message hop of b payload bytes under `m`'s flat (inter-node)
  /// parameters.
  [[nodiscard]] static double hop(const CostModel& m, std::size_t b) {
    return m.send_overhead_s + m.latency_s +
           static_cast<double>(b) * m.per_byte_s + m.recv_overhead_s;
  }

  /// One same-node hop under a two-tier model.
  [[nodiscard]] static double hop_intra(const CostModel& m, std::size_t b) {
    return m.intra_send_overhead_s + m.intra_latency_s +
           static_cast<double>(b) * m.intra_per_byte_s +
           m.intra_recv_overhead_s;
  }

  /// One inter-node hop whose node port is shared by `senders` concurrent
  /// same-node senders this round: the port serializes their wire time and
  /// charges a LogGP gap between injections.  senders == 1 is exactly
  /// hop().
  [[nodiscard]] static double hop_inter_shared(const CostModel& m,
                                               std::size_t b, int senders) {
    const double k = senders < 1 ? 1.0 : static_cast<double>(senders);
    return m.send_overhead_s + m.latency_s +
           k * static_cast<double>(b) * m.per_byte_s +
           (k - 1.0) * m.inter_gap_s + m.recv_overhead_s;
  }

  /// One hop between ranks `distance` apart in the contiguous node map:
  /// intra-node when the exchange distance fits inside a node (exact for
  /// power-of-two ranks_per_node, the case the presets use), inter-node
  /// otherwise.  `senders` is how many ranks per node inject inter-node in
  /// the same round (port contention; 1 = contention-free).  Collapses to
  /// hop() on a flat model, keeping every single-tier prediction
  /// bit-identical to the pre-tier formulas.
  [[nodiscard]] static double hop_at(const CostModel& m, int distance,
                                     std::size_t b, int senders = 1) {
    if (m.two_tier() && distance < m.ranks_per_node) return hop_intra(m, b);
    return hop_inter_shared(m, b, senders);
  }

  /// Reduce-to-zero + broadcast, whole state on every tree edge: one hop
  /// per tree level each way, the level-k edges spanning distance 2^k.
  /// Contention-free: by the time a binomial level spans nodes, at most
  /// one rank per node is still live (power-of-two ranks_per_node).
  [[nodiscard]] static double two_message(const CostModel& m, int p,
                                          std::size_t bytes) {
    if (!m.two_tier()) return 2.0 * ceil_log2(p) * hop(m, bytes);
    double t = 0.0;
    for (int k = 0; k < ceil_log2(p); ++k) {
      t += 2.0 * hop_at(m, 1 << k, bytes);
    }
    return t;
  }

  /// Recursive-doubling butterfly: log2(p2) full-state exchange rounds at
  /// distances 1, 2, ..., p2/2, plus a fold-in and a fold-out full-state
  /// hop to an adjacent rank when p is not a power of two (p2 = largest
  /// power of two <= p).
  [[nodiscard]] static double butterfly(const CostModel& m, int p,
                                        std::size_t bytes) {
    const int p2 = 1 << floor_log2_i(p);
    if (!m.two_tier()) {
      double t = floor_log2_i(p2) * hop(m, bytes);
      if (p != p2) t += 2.0 * hop(m, bytes);
      return t;
    }
    // Every rank is active in every butterfly round, so the inter-node
    // rounds drive all ranks_per_node ranks through each node's one port.
    double t = 0.0;
    for (int d = 1; d < p2; d *= 2) {
      t += hop_at(m, d, bytes, m.ranks_per_node);
    }
    if (p != p2) t += 2.0 * hop_at(m, 1, bytes);
    return t;
  }

  /// Chunked Rabenseifner (recursive halving + recursive doubling): each
  /// of the log2(p2) levels moves half, quarter, ... of the state twice
  /// (once per phase), plus two whole-state hops to fold non-power-of-two
  /// remainders in and out.  The (distance, bytes) pairing mirrors the
  /// implementation's reduce-scatter loop: the first exchange pairs the
  /// widest distance p2/2 with half the state, halving both each level.
  [[nodiscard]] static double rabenseifner(const CostModel& m, int p,
                                           std::size_t bytes) {
    const int p2 = 1 << floor_log2_i(p);
    double t = 0.0;
    std::size_t b = bytes;
    // Like the butterfly, every rank exchanges in every round, so the
    // inter-node levels contend for each node's port.
    for (int d = p2 / 2; d >= 1; d /= 2) {
      b /= 2;
      t += 2.0 * hop_at(m, d, b, m.ranks_per_node);
    }
    if (p != p2) t += 2.0 * hop_at(m, 1, bytes);
    return t;
  }

  /// Ring reduce-scatter + allgather: 2·(p−1) hops of one chunk (~n/p
  /// bytes) each — bandwidth-optimal volume, latency-heavy at large p.
  /// Under a two-tier model the chain of neighbour hops crosses a node
  /// boundary only where the contiguous blocks meet: at most
  /// min(#nodes, p−1) of each phase's p−1 hops are inter-node.
  [[nodiscard]] static double ring(const CostModel& m, int p,
                                   std::size_t bytes) {
    const std::size_t chunk =
        (bytes + static_cast<std::size_t>(p) - 1) / static_cast<std::size_t>(p);
    if (!m.two_tier()) return 2.0 * (p - 1) * hop(m, chunk);
    const int rpn = m.ranks_per_node;
    const int nnodes = (p + rpn - 1) / rpn;
    const int inter = nnodes < p - 1 ? nnodes : p - 1;
    const int intra = (p - 1) - inter;
    return 2.0 * (intra * hop_intra(m, chunk) + inter * hop(m, chunk));
  }

  /// Leader-tier segmented ring over the node leaders (reduce-scatter +
  /// allgather of one per-leader chunk), all hops inter-node.  Exposed so
  /// the hierarchical implementation makes the same ring-vs-binomial
  /// choice as this model.
  [[nodiscard]] static double hierarchical_leader_ring(const CostModel& m,
                                                       int nnodes,
                                                       std::size_t bytes) {
    if (nnodes <= 1) return 0.0;
    const std::size_t chunk = (bytes + static_cast<std::size_t>(nnodes) - 1) /
                              static_cast<std::size_t>(nnodes);
    return 2.0 * (nnodes - 1) * hop(m, chunk);
  }

  /// Leader-tier chunked Rabenseifner over the node leaders: recursive
  /// halving + doubling with halving segment sizes, all hops inter-node,
  /// plus two whole-state hops folding non-power-of-two node counts in and
  /// out.  Log-latency AND bandwidth-optimal — the usual winner once the
  /// leader count itself is large.
  [[nodiscard]] static double hierarchical_leader_rabenseifner(
      const CostModel& m, int nnodes, std::size_t bytes) {
    if (nnodes <= 1) return 0.0;
    const int p2 = 1 << floor_log2_i(nnodes);
    double t = 0.0;
    std::size_t b = bytes;
    for (int d = p2 / 2; d >= 1; d /= 2) {
      b /= 2;
      t += 2.0 * hop(m, b);
    }
    if (nnodes != p2) t += 2.0 * hop(m, bytes);
    return t;
  }

  /// Leader-tier whole-state binomial reduce + broadcast, all hops
  /// inter-node.  The order-preserving option — the only one legal for
  /// noncommutative operators.
  [[nodiscard]] static double hierarchical_leader_binomial(
      const CostModel& m, int nnodes, std::size_t bytes) {
    if (nnodes <= 1) return 0.0;
    return 2.0 * ceil_log2(nnodes) * hop(m, bytes);
  }

  /// Two-level allreduce: binomial reduce to the node leader (intra),
  /// allreduce among leaders (inter; cheapest of segmented ring, chunked
  /// Rabenseifner, and binomial reduce+bcast), binomial broadcast back
  /// (intra).  `seg_ok` gates the segmented leader options — they
  /// partition the state and fold chunks out of rank order, so they are
  /// only available for partitionable commutative operators.
  [[nodiscard]] static double hierarchical(const CostModel& m, int p,
                                           std::size_t bytes,
                                           bool seg_ok = true) {
    const int rpn = m.two_tier() ? m.ranks_per_node : 1;
    const int s = rpn < p ? rpn : p;
    const int nnodes = (p + rpn - 1) / rpn;
    double t = 2.0 * ceil_log2(s) * hop_intra(m, bytes);
    double leader = hierarchical_leader_binomial(m, nnodes, bytes);
    if (seg_ok) {
      const double ring_t = hierarchical_leader_ring(m, nnodes, bytes);
      const double rab_t = hierarchical_leader_rabenseifner(m, nnodes, bytes);
      if (ring_t < leader) leader = ring_t;
      if (rab_t < leader) leader = rab_t;
    }
    return t + leader;
  }

  /// Pipelined binomial reduce to rank 0, fill + drain.  Wire time (L +
  /// b·G) is charged to the receiver's arrival stamp and does not occupy
  /// the sender, so segments in flight on different tree levels overlap:
  /// the first segment pays the full ceil(log2 p)-level climb, after which
  /// the pipeline drains at the root's service rate of ceil(log2 p)
  /// receives (one per level) per segment.
  [[nodiscard]] static double pipelined_tree_reduce(const CostModel& m, int p,
                                                    std::size_t bytes,
                                                    std::size_t segment_bytes) {
    const std::size_t nseg = segment_count(bytes, segment_bytes);
    const std::size_t seg = (bytes + nseg - 1) / nseg;
    const double levels = ceil_log2(p);
    const double per_segment =
        levels * (m.send_overhead_s > m.recv_overhead_s ? m.send_overhead_s
                                                        : m.recv_overhead_s);
    return levels * hop(m, seg) +
           (static_cast<double>(nseg) - 1.0) * per_segment;
  }

  /// Pipelined reduce followed by pipelined broadcast.
  [[nodiscard]] static double pipelined_tree_allreduce(
      const CostModel& m, int p, std::size_t bytes,
      std::size_t segment_bytes) {
    return 2.0 * pipelined_tree_reduce(m, p, bytes, segment_bytes);
  }

  /// Whole-state binomial reduce to rank 0 (the legacy reduce path).
  [[nodiscard]] static double tree_reduce(const CostModel& m, int p,
                                          std::size_t bytes) {
    return ceil_log2(p) * hop(m, bytes);
  }

 private:
  // 1LL shifts: at n near INT_MAX an int shift would overflow to UB before
  // the loop terminates (ISSUE 10 guards for p in the thousands and beyond).
  [[nodiscard]] static constexpr int floor_log2_i(int n) {
    int k = 0;
    while ((1LL << (k + 1)) <= n) ++k;
    return k;
  }
  [[nodiscard]] static constexpr int ceil_log2(int n) {
    int k = 0;
    while ((1LL << k) < n) ++k;
    return k;
  }
  [[nodiscard]] static constexpr std::size_t segment_count(
      std::size_t bytes, std::size_t segment_bytes) {
    if (segment_bytes == 0 || bytes <= segment_bytes) return 1;
    return (bytes + segment_bytes - 1) / segment_bytes;
  }
};

/// Monotone virtual clock owned by one rank.  Not thread-safe; each rank
/// touches only its own clock, and message timestamps transfer time between
/// ranks without shared mutable state.
class VirtualClock {
 public:
  [[nodiscard]] double now() const { return now_s_; }

  /// Advances by a modelled duration (never negative).
  void advance(double seconds) {
    if (seconds > 0.0) now_s_ += seconds;
  }

  /// Joins a causal dependency: the clock may only move forward.
  void merge(double other_time_s) {
    if (other_time_s > now_s_) now_s_ = other_time_s;
  }

  void reset() { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

/// Reads the calling thread's CPU time.  Thread CPU time (as opposed to
/// wall time) makes measured compute segments independent of how many
/// sibling ranks are timesharing the host's cores.
inline double thread_cpu_seconds() {
  ::timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1.0e-9;
}

/// RAII guard that measures a local compute section with the per-thread CPU
/// clock and charges it (scaled by CostModel::compute_scale) to a rank's
/// virtual clock.
///
///   {
///     ComputeTimer t(comm.clock(), comm.cost_model());
///     ... pure local work, no messaging ...
///   }  // clock advanced here
class ComputeTimer {
 public:
  ComputeTimer(VirtualClock& clock, const CostModel& model)
      : clock_(clock), scale_(model.compute_scale),
        start_(thread_cpu_seconds()) {}

  ComputeTimer(const ComputeTimer&) = delete;
  ComputeTimer& operator=(const ComputeTimer&) = delete;

  ~ComputeTimer() { stop(); }

  /// Stops early; subsequent destruction is a no-op.
  void stop() {
    if (!stopped_) {
      stopped_ = true;
      clock_.advance((thread_cpu_seconds() - start_) * scale_);
    }
  }

 private:
  VirtualClock& clock_;
  double scale_;
  double start_;
  bool stopped_ = false;
};

}  // namespace rsmpi::mprt
