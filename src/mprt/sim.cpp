#include "mprt/sim.hpp"

#include <sstream>

namespace rsmpi::mprt {

std::string SimConfig::describe() const {
  std::ostringstream os;
  os << "SimConfig{seed=" << seed;
  if (delay_prob > 0.0) {
    os << ", delay=" << delay_prob << "x" << max_extra_delay_s << "s";
  }
  if (duplicate_prob > 0.0) os << ", dup=" << duplicate_prob;
  if (drop_prob > 0.0) os << ", drop=" << drop_prob;
  if (reorder_prob > 0.0) os << ", reorder=" << reorder_prob;
  if (max_compute_skew_s > 0.0) os << ", skew=" << max_compute_skew_s << "s";
  if (kill_rank >= 0) {
    os << ", kill rank " << kill_rank << " after " << kill_after_sends
       << " sends";
  }
  if (oracle != nullptr) os << ", oracle-dictated";
  os << "}";
  return os.str();
}

/// Each rank's decision stream: its own PRNG plus its send count.  Slots
/// are only ever touched from the owning rank's thread, so no locks; they
/// are padded apart to keep the simulator from serializing ranks on one
/// cache line.
struct alignas(64) ChaosController::PerRank {
  SimRng rng{0};
  std::uint64_t sends = 0;
  std::uint64_t msgs = 0;  // deliveries consulted through a ScheduleOracle
};

ChaosController::ChaosController(const SimConfig& config, int num_ranks)
    : config_(config),
      ranks_(new PerRank[static_cast<std::size_t>(num_ranks)]),
      num_ranks_(num_ranks) {
  for (int r = 0; r < num_ranks; ++r) {
    // Distinct, seed-derived stream per rank; +1 keeps rank 0's stream
    // from collapsing onto the bare seed.
    ranks_[r].rng = SimRng(splitmix64(config.seed) ^
                           splitmix64(static_cast<std::uint64_t>(r) + 1));
  }
}

ChaosController::~ChaosController() { delete[] ranks_; }

double ChaosController::pre_send(int rank) {
  PerRank& me = ranks_[rank];
  if (config_.oracle != nullptr) {
    // Dictated mode: the oracle names the exact send to die at; skew is
    // never injected (the checker owns all nondeterminism explicitly).
    if (config_.oracle->kill_before_send(rank, me.sends)) {
      rank_killed_.store(true, std::memory_order_relaxed);
      throw RankKilledError("rank " + std::to_string(rank) +
                            " killed by schedule oracle instead of send #" +
                            std::to_string(me.sends));
    }
    me.sends += 1;
    return 0.0;
  }
  if (rank == config_.kill_rank && me.sends >= config_.kill_after_sends) {
    rank_killed_.store(true, std::memory_order_relaxed);
    throw RankKilledError("rank " + std::to_string(rank) +
                          " killed by fault plan after " +
                          std::to_string(me.sends) + " sends (" +
                          config_.describe() + ")");
  }
  me.sends += 1;
  if (config_.max_compute_skew_s <= 0.0) return 0.0;
  skew_events_.fetch_add(1, std::memory_order_relaxed);
  return me.rng.uniform() * config_.max_compute_skew_s;
}

DeliveryFault ChaosController::on_message(int rank) {
  PerRank& me = ranks_[rank];
  if (config_.oracle != nullptr) {
    const DeliveryFault fault =
        config_.oracle->message_fault(rank, me.msgs++);
    if (fault.drop) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return fault;
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    if (fault.duplicate) duplicated_.fetch_add(1, std::memory_order_relaxed);
    if (fault.reorder_front) {
      reordered_.fetch_add(1, std::memory_order_relaxed);
    }
    if (fault.extra_delay_s > 0.0) {
      delayed_.fetch_add(1, std::memory_order_relaxed);
    }
    return fault;
  }
  DeliveryFault fault;
  // Every branch consumes its draw unconditionally so the stream stays
  // aligned across plans that differ only in probabilities.
  if (me.rng.uniform() < config_.drop_prob) fault.drop = true;
  if (me.rng.uniform() < config_.duplicate_prob) fault.duplicate = true;
  if (me.rng.uniform() < config_.reorder_prob) fault.reorder_front = true;
  const double delay_draw = me.rng.uniform();
  const double delay_amount = me.rng.uniform() * config_.max_extra_delay_s;
  const double dup_delay = me.rng.uniform() * config_.max_extra_delay_s;
  if (delay_draw < config_.delay_prob) {
    fault.extra_delay_s = delay_amount;
    fault.duplicate_delay_s = dup_delay;
  }

  if (fault.drop) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return fault;
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  if (fault.duplicate) duplicated_.fetch_add(1, std::memory_order_relaxed);
  if (fault.reorder_front) reordered_.fetch_add(1, std::memory_order_relaxed);
  if (fault.extra_delay_s > 0.0) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
  }
  return fault;
}

SimStats ChaosController::stats() const {
  SimStats s;
  s.delivered = delivered_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.duplicated = duplicated_.load(std::memory_order_relaxed);
  s.delayed = delayed_.load(std::memory_order_relaxed);
  s.reordered = reordered_.load(std::memory_order_relaxed);
  s.skew_events = skew_events_.load(std::memory_order_relaxed);
  s.rank_killed = rank_killed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rsmpi::mprt
