#include "mprt/mailbox.hpp"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace rsmpi::mprt {

namespace {

bool matches(const Message& m, std::int64_t context, int source, int tag) {
  return m.context == context &&
         ((source == kAnySource) || (m.source == source)) &&
         ((tag == kAnyTag) || (m.tag == tag));
}

/// True when queued message `a` (at index ia) must be delivered before
/// `b` (at index ib) of the same stream: by sequence number when both are
/// sequenced, by queue position otherwise (legacy unsequenced messages).
bool precedes(const Message& a, std::size_t ia, const Message& b,
              std::size_t ib) {
  if (a.seq != 0 && b.seq != 0) return a.seq < b.seq;
  return ia < ib;
}

}  // namespace

void Mailbox::put(Message msg, bool front) {
  {
    std::lock_guard lock(mutex_);
    ++events_;
    if (front) {
      queue_.push_front(std::move(msg));
    } else {
      queue_.push_back(std::move(msg));
    }
  }
  // notify_all rather than notify_one: only the owner blocks in take(), but
  // it may be woken spuriously by non-matching messages and must re-check.
  cv_.notify_all();
  if (waiter_ != nullptr) waiter_->wake();
}

std::size_t Mailbox::select_locked(std::int64_t context, int source, int tag,
                                   const double* arrival_cutoff) {
  // Under deterministic wildcard selection, a pattern several streams
  // satisfy is resolved by canonical (source, seq) order instead of by the
  // racy physical put order, so a model-checker trace replays exactly.
  const bool canonical = deterministic_wildcard_ &&
                         (source == kAnySource || tag == kAnyTag);
  std::size_t best = npos;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    if (!matches(m, context, source, tag)) continue;
    // A duplicate of an already-delivered sequence number is purged on
    // sight — at-most-once delivery — and the scan restarts because the
    // erase shifted indices.
    if (m.seq != 0) {
      const auto it = delivered_.find({m.context, m.source, m.tag});
      if (it != delivered_.end() && m.seq <= it->second) {
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        ++duplicates_suppressed_;
        i = npos;     // restart (loop increment wraps npos to 0)
        best = npos;  // the erase shifted any candidate index
        continue;
      }
    }
    // Non-overtaking: the message is only eligible if it is the head of
    // its stream — no other queued message of the stream precedes it.
    bool blocked = false;
    for (std::size_t j = 0; j < queue_.size(); ++j) {
      if (j == i) continue;
      const Message& other = queue_[j];
      if (other.context == m.context && other.source == m.source &&
          other.tag == m.tag && precedes(other, j, m, i)) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    // Due-only mode: a stream whose head is still virtually in flight
    // yields nothing (a later same-stream message may not overtake it).
    if (arrival_cutoff != nullptr && m.arrival_vtime_s > *arrival_cutoff) {
      continue;
    }
    if (!canonical) return i;
    if (best == npos ||
        std::pair(m.source, m.seq) <
            std::pair(queue_[best].source, queue_[best].seq)) {
      best = i;
    }
  }
  return best;
}

Message Mailbox::remove_locked(std::size_t idx) {
  Message msg = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  if (msg.seq != 0) {
    std::uint64_t& mark = delivered_[{msg.context, msg.source, msg.tag}];
    if (msg.seq > mark) mark = msg.seq;
  }
  return msg;
}

int Mailbox::relevant_lost_locked() const {
  for (const int peer : lost_peers_) {
    if (!loss_scope_.has_value()) return peer;
    for (const int scoped : *loss_scope_) {
      if (scoped == peer) return peer;
    }
  }
  return -1;
}

void Mailbox::throw_if_dead_locked(bool have_match) const {
  if (aborted_) {
    throw AbortError("mailbox: runtime aborted while waiting for message");
  }
  const int lost = relevant_lost_locked();
  if (!have_match && lost >= 0) {
    throw PeerLostError("mailbox: rank " + std::to_string(lost) +
                        " exited while this rank was waiting for a message");
  }
}

namespace {

/// How long a starvation suspicion must hold before it is declared: long
/// enough for any already-issued wakeup to land (the waking rank would bump
/// the monitor's version), short enough that exhaustive fault exploration
/// stays fast.
constexpr auto kStarvationConfirmWindow = std::chrono::milliseconds(20);

}  // namespace

Message Mailbox::take_monitored(std::int64_t context, int source, int tag,
                                std::unique_lock<std::mutex>& lock) {
  for (;;) {
    if (aborted_) {
      throw AbortError("mailbox: runtime aborted while waiting for message");
    }
    std::size_t idx = select_locked(context, source, tag, nullptr);
    if (idx != npos) return remove_locked(idx);
    throw_if_dead_locked(/*have_match=*/false);  // PeerLostError path
    if (monitor_->starved()) {
      throw DeadlockError(
          "mailbox: every live rank is blocked with no deliverable message "
          "(global deadlock detected by the verify-mode starvation monitor)");
    }
    monitor_->enter_blocked();
    if (monitor_->all_blocked()) {
      // This block may have completed a global deadlock; wait out the
      // confirmation window, then re-check both the monitor *and* our own
      // queue (a put issued just before we blocked lands here as a match,
      // never as a false deadlock).
      const std::uint64_t version = monitor_->version();
      cv_.wait_for(lock, kStarvationConfirmWindow);
      idx = select_locked(context, source, tag, nullptr);
      if (idx == npos && !aborted_ && monitor_->confirm_starved(version)) {
        monitor_->leave_blocked();
        throw DeadlockError(
            "mailbox: every live rank is blocked with no deliverable "
            "message (global deadlock detected by the verify-mode "
            "starvation monitor)");
      }
      monitor_->leave_blocked();
      continue;  // re-runs the full selection/error checks
    }
    const std::uint64_t seen = events_;
    cv_.wait(lock, [&] {
      return aborted_ || monitor_->starved() || events_ != seen ||
             relevant_lost_locked() >= 0;
    });
    monitor_->leave_blocked();
  }
}

void Mailbox::wait_for_event_locked(
    std::unique_lock<std::mutex>& lock,
    const std::chrono::steady_clock::time_point* deadline, const char* what) {
  if (waiter_ != nullptr) {
    if (waiter_->deadlock_declared()) {
      throw DeadlockError(
          std::string("mailbox: every live rank is parked with no "
                      "deliverable message (global deadlock detected by the "
                      "virtualized scheduler while ") +
          what + ")");
    }
    // The park may return spuriously (deadline, deadlock wake, stale
    // notify); the caller's loop re-checks its predicate, and re-entering
    // here converts a deadlock declaration into the throw above.
    waiter_->park(lock, deadline);
    return;
  }
  const std::uint64_t seen = events_;
  const auto pred = [&] {
    return aborted_ || events_ != seen || relevant_lost_locked() >= 0;
  };
  if (deadline != nullptr) {
    cv_.wait_until(lock, *deadline, pred);
  } else {
    cv_.wait(lock, pred);
  }
}

Message Mailbox::take(std::int64_t context, int source, int tag) {
  std::unique_lock lock(mutex_);
  if (monitor_ != nullptr) return take_monitored(context, source, tag, lock);
  for (;;) {
    const std::size_t idx =
        aborted_ ? npos : select_locked(context, source, tag, nullptr);
    if (aborted_ || relevant_lost_locked() >= 0) {
      // A match that is already queued is still deliverable even when a
      // (different) peer died; abort and matchless loss throw here.
      throw_if_dead_locked(idx != npos);
      return remove_locked(idx);
    }
    if (idx != npos) return remove_locked(idx);
    wait_for_event_locked(lock, nullptr, "waiting for a message");
  }
}

std::optional<Message> Mailbox::take_for(std::int64_t context, int source,
                                         int tag, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s));
  std::unique_lock lock(mutex_);
  for (;;) {
    const std::size_t idx =
        aborted_ ? npos : select_locked(context, source, tag, nullptr);
    if (aborted_ || relevant_lost_locked() >= 0) {
      throw_if_dead_locked(idx != npos);
      return remove_locked(idx);
    }
    if (idx != npos) return remove_locked(idx);
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    wait_for_event_locked(lock, &deadline, "waiting for a message");
  }
}

std::optional<Message> Mailbox::try_take(std::int64_t context, int source,
                                         int tag) {
  std::lock_guard lock(mutex_);
  const std::size_t idx = select_locked(context, source, tag, nullptr);
  throw_if_dead_locked(idx != npos);
  if (idx == npos) return std::nullopt;
  return remove_locked(idx);
}

std::optional<Message> Mailbox::try_take_due(std::int64_t context, int source,
                                             int tag, double arrival_cutoff) {
  std::lock_guard lock(mutex_);
  const std::size_t idx =
      select_locked(context, source, tag, &arrival_cutoff);
  // Due-only polling must not throw PeerLostError on an empty poll: the
  // blocking wait that follows the poll loop surfaces it (an in-flight but
  // not-yet-due message is a normal condition, a lost peer is not — but
  // the poller cannot tell them apart, the waiter can).
  if (aborted_) {
    throw AbortError("mailbox: runtime aborted while waiting for message");
  }
  if (idx == npos) return std::nullopt;
  return remove_locked(idx);
}

bool Mailbox::probe(std::int64_t context, int source, int tag) {
  std::lock_guard lock(mutex_);
  return select_locked(context, source, tag, nullptr) != npos;
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::uint64_t Mailbox::duplicates_suppressed() const {
  std::lock_guard lock(mutex_);
  return duplicates_suppressed_;
}

void Mailbox::abort() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
    ++events_;
  }
  cv_.notify_all();
  if (waiter_ != nullptr) waiter_->wake();
}

void Mailbox::notify_peer_lost(int global_rank) {
  {
    std::lock_guard lock(mutex_);
    bool known = false;
    for (const int peer : lost_peers_) known = known || (peer == global_rank);
    if (!known) lost_peers_.push_back(global_rank);
    ++events_;
  }
  cv_.notify_all();
  if (waiter_ != nullptr) waiter_->wake();
}

std::uint64_t Mailbox::event_count() const {
  std::lock_guard lock(mutex_);
  return events_;
}

void Mailbox::idle_wait(std::uint64_t seen_events) {
  if (waiter_ != nullptr) {
    // Virtualized owner: a yield here would spin the worker (the sender it
    // waits on may be queued behind it on the same worker) — park instead.
    // `seen_events` predates the caller's fruitless blocking-mode progress
    // pass, so a newer event means a message may have arrived mid-pass.
    std::unique_lock lock(mutex_);
    for (;;) {
      if (aborted_) {
        throw AbortError(
            "mailbox: runtime aborted while waiting for progress");
      }
      if (events_ != seen_events) return;
      wait_for_event_locked(lock, nullptr, "polling nonblocking operations");
    }
  }
  if (monitor_ == nullptr) {
    std::this_thread::yield();
    return;
  }
  std::unique_lock lock(mutex_);
  if (aborted_) {
    throw AbortError("mailbox: runtime aborted while waiting for progress");
  }
  if (monitor_->starved()) {
    throw DeadlockError(
        "mailbox: every live rank is blocked with no deliverable message "
        "(global deadlock detected while polling nonblocking operations)");
  }
  // `seen_events` was snapshotted before the caller's (fruitless) progress
  // pass.  A newer event means a message may have arrived mid-pass: return
  // and let the caller poll again rather than park on stale information.
  if (events_ != seen_events) return;
  monitor_->enter_blocked();
  if (monitor_->all_blocked()) {
    const std::uint64_t version = monitor_->version();
    cv_.wait_for(lock, kStarvationConfirmWindow);
    // The caller's blocking-mode pass consumed everything deliverable, so
    // with no event since that pass (and no waiter progress anywhere) any
    // still-queued message is permanently undeliverable: a real deadlock.
    if (events_ == seen_events && !aborted_ &&
        monitor_->confirm_starved(version)) {
      monitor_->leave_blocked();
      throw DeadlockError(
          "mailbox: every live rank is blocked with no deliverable message "
          "(global deadlock detected while polling nonblocking operations)");
    }
    monitor_->leave_blocked();
    return;
  }
  cv_.wait(lock, [&] {
    return aborted_ || monitor_->starved() || events_ != seen_events;
  });
  monitor_->leave_blocked();
}

void Mailbox::wake_for_starvation() {
  {
    std::lock_guard lock(mutex_);
    ++events_;
  }
  cv_.notify_all();
  if (waiter_ != nullptr) waiter_->wake();
}

std::vector<int> Mailbox::lost_peers() const {
  std::lock_guard lock(mutex_);
  return lost_peers_;
}

void Mailbox::set_peer_loss_scope(std::optional<std::vector<int>> global_ranks) {
  {
    std::lock_guard lock(mutex_);
    loss_scope_ = std::move(global_ranks);
  }
  // Widening the scope can make a previously-ignored loss relevant to a
  // blocked take (not the normal usage — the owner sets its own scope while
  // not blocked — but the wake keeps the primitive safe either way).
  cv_.notify_all();
  if (waiter_ != nullptr) waiter_->wake();
}

}  // namespace rsmpi::mprt
