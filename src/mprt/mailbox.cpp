#include "mprt/mailbox.hpp"

#include "util/error.hpp"

namespace rsmpi::mprt {

void Mailbox::put(Message msg) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  // notify_all rather than notify_one: only the owner blocks in take(), but
  // it may be woken spuriously by non-matching messages and must re-check.
  cv_.notify_all();
}

std::size_t Mailbox::find_match(std::int64_t context, int source,
                                int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    const bool ctx_ok = m.context == context;
    const bool src_ok = (source == kAnySource) || (m.source == source);
    const bool tag_ok = (tag == kAnyTag) || (m.tag == tag);
    if (ctx_ok && src_ok && tag_ok) return i;
  }
  return npos;
}

Message Mailbox::take(std::int64_t context, int source, int tag) {
  std::unique_lock lock(mutex_);
  std::size_t idx;
  cv_.wait(lock, [&] {
    if (aborted_) return true;
    idx = find_match(context, source, tag);
    return idx != npos;
  });
  if (aborted_) {
    throw AbortError("mailbox: runtime aborted while waiting for message");
  }
  Message msg = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  return msg;
}

std::optional<Message> Mailbox::try_take(std::int64_t context, int source,
                                         int tag) {
  std::lock_guard lock(mutex_);
  if (aborted_) {
    throw AbortError("mailbox: runtime aborted");
  }
  const std::size_t idx = find_match(context, source, tag);
  if (idx == npos) return std::nullopt;
  Message msg = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  return msg;
}

std::optional<Message> Mailbox::try_take_due(std::int64_t context, int source,
                                             int tag, double arrival_cutoff) {
  std::lock_guard lock(mutex_);
  if (aborted_) {
    throw AbortError("mailbox: runtime aborted");
  }
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    const bool ctx_ok = m.context == context;
    const bool src_ok = (source == kAnySource) || (m.source == source);
    const bool tag_ok = (tag == kAnyTag) || (m.tag == tag);
    if (!ctx_ok || !src_ok || !tag_ok) continue;
    // Non-overtaking: skip if an older message of the same stream is still
    // queued (it must be received first, due or not).
    bool blocked = false;
    for (std::size_t j = 0; j < i; ++j) {
      const Message& older = queue_[j];
      if (older.context == m.context && older.source == m.source &&
          older.tag == m.tag) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    if (m.arrival_vtime_s <= arrival_cutoff) {
      Message msg = std::move(queue_[i]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      return msg;
    }
  }
  return std::nullopt;
}

bool Mailbox::probe(std::int64_t context, int source, int tag) {
  std::lock_guard lock(mutex_);
  return find_match(context, source, tag) != npos;
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void Mailbox::abort() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

}  // namespace rsmpi::mprt
