// Communicator handle given to each rank's body function.
//
// A Comm is a rank's view of one *communication context*: its identity
// within the group (rank/size), typed point-to-point messaging to group
// members, and the rank's virtual clock (shared by all of the rank's
// communicators).  The runtime constructs the world communicator spanning
// all ranks; Comm::split derives subcommunicators whose traffic is fully
// isolated from the parent's, MPI-style.  Collective operations are built
// on top of this interface in src/coll and work unchanged on
// subcommunicators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "mprt/buffer_pool.hpp"
#include "mprt/cost_model.hpp"
#include "mprt/mailbox.hpp"
#include "mprt/message.hpp"
#include "mprt/sim.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace rsmpi::mprt {

class Runtime;

/// One outstanding nonblocking operation registered with a rank.  The
/// progress engine (coll/nb) records each in-flight collective here so the
/// rank's pending work — and the collective-tag window it reserved — is
/// inspectable by tests and debuggers.
struct PendingOp {
  std::uint64_t id = 0;
  std::int64_t context = 0;  // communicator the operation runs on
  int first_tag = 0;         // first tag of the reserved window
  int tag_count = 0;         // number of consecutive tags reserved
};

/// Bounded-wait policy for blocking receives.  When set on a rank, every
/// blocking recv waits in `retries` slices whose lengths grow by `backoff`
/// and sum to `timeout_s`; if no matching message arrives within the
/// budget the receive throws TimeoutError instead of hanging — the
/// recovery path for messages a fault plan dropped.  All times are real
/// (wall-clock) seconds: a rank blocked in recv makes no virtual progress,
/// so the deadline must come from the host clock.
struct RecvDeadline {
  double timeout_s = 1.0;
  int retries = 4;
  double backoff = 2.0;
};

/// Per-rank mutable state shared by every communicator of that rank: the
/// virtual clock, the traffic counters, and the pending-operation table.
/// Owned by the runtime; only touched from the rank's own thread.
struct RankState {
  VirtualClock clock;
  /// Next send sequence number; stamped on every outgoing message.  One
  /// counter per rank is enough for per-stream monotonicity because a
  /// rank's sends are sequential.
  std::uint64_t next_seq = 1;
  std::optional<RecvDeadline> recv_deadline;
  std::uint64_t recv_retry_count = 0;  ///< deadline slices that expired
  std::uint64_t sent_count = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t recv_count = 0;
  std::uint64_t recv_bytes = 0;
  // Combine-phase allocation observability (ISSUE 3): how many payload
  // buffers this rank heap-allocated, how many payload byte-copies it
  // made, and how many sends avoided both via move or inline storage.
  std::uint64_t payload_allocs = 0;  ///< heap buffers allocated for payloads
  std::uint64_t payload_copies = 0;  ///< sender-side full-payload copies
  std::uint64_t sends_moved = 0;     ///< sends that adopted the caller's buffer
  std::uint64_t sends_inline = 0;    ///< sends stored inline (<= 64 B)
  BufferPool pool;                   ///< recycled payload buffers (rank-local)
  std::vector<PendingOp> pending_ops;
  std::uint64_t next_pending_id = 1;
  /// Cost-model schedule selections made on this rank (autotuner argmins).
  /// Persistent collectives pay exactly one at plan time; a warm epoch loop
  /// holding this counter flat is the "zero warm-path planning" evidence.
  std::uint64_t autotune_invocations = 0;
  /// (name, value) pairs published via Comm::publish_stat; summed by name
  /// into RunResult::user_stats after the join.  The channel through which
  /// higher layers (e.g. svc::StatCollector) surface their aggregates.
  std::vector<std::pair<std::string, double>> published_stats;
  // Parallel local-accumulate observability (ISSUE 8): sections run
  // through the src/par/ worker pool, chunks executed, successful
  // steal-half operations, and the widest pool any section used.  All
  // stay 0 unless RSMPI_LOCAL_THREADS enables the pool.
  std::uint64_t par_sections = 0;
  std::uint64_t par_chunks = 0;
  std::uint64_t par_steals = 0;
  std::uint64_t par_threads = 0;  ///< max pool width over sections
  // Two-level topology observability (ISSUE 10): payload bytes this rank
  // sent to peers on the same modelled node vs across nodes.  Both stay 0
  // when the cost model is flat (ranks_per_node <= 1).
  std::uint64_t intra_node_bytes = 0;
  std::uint64_t inter_node_bytes = 0;
};

/// Identity/status returned by receives that used wildcards.  `source` is
/// a rank within the receiving communicator.
struct RecvStatus {
  int source = 0;
  int tag = 0;
};

/// One rank's endpoint into one communicator.  World communicators are
/// created by the runtime, one per rank; subcommunicators by split().
/// A Comm must only be used from its rank's thread.  All messaging is
/// two-sided and buffered: send never blocks.
class Comm {
 public:
  /// World communicator over all ranks; called by the runtime.
  Comm(Runtime& runtime, int global_rank);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;
  Comm(Comm&&) = default;

  /// This rank's position within this communicator's group.
  [[nodiscard]] int rank() const { return group_rank_; }
  /// Number of ranks in this communicator's group.
  [[nodiscard]] int size() const { return static_cast<int>(group_.size()); }
  /// This rank's position in the world communicator.
  [[nodiscard]] int global_rank() const { return global_rank_; }

  /// The communication cost model shared by all ranks.
  [[nodiscard]] const CostModel& cost_model() const;

  /// This rank's virtual clock — shared across all of the rank's
  /// communicators, because a rank has one timeline.
  [[nodiscard]] VirtualClock& clock() { return state_->clock; }
  [[nodiscard]] const VirtualClock& clock() const { return state_->clock; }

  /// Convenience RAII compute timer bound to this rank's clock and model.
  [[nodiscard]] ComputeTimer compute_section() {
    return ComputeTimer(state_->clock, cost_model());
  }

  // -- Subcommunicators ----------------------------------------------------

  /// Collectively partitions this communicator: ranks passing the same
  /// `color` (>= 0) form a new group, ordered by (key, parent rank).  Every
  /// member of this communicator must call split the same number of times
  /// in the same order.  The new communicator's traffic is isolated from
  /// the parent's by a fresh context id.
  Comm split(int color, int key);

  // -- Byte-level point-to-point ------------------------------------------

  /// Sends a payload to group rank `dest` with `tag`.  Buffered and
  /// non-blocking: returns as soon as the payload is enqueued at the
  /// destination mailbox.  Charges send overhead to this clock and stamps
  /// the message with its modelled arrival time.  This overload *copies*
  /// the payload (counted in payload_copies; also charged at
  /// CostModel::copy_per_byte_s when nonzero).
  void send_bytes(int dest, int tag, std::span<const std::byte> payload);

  /// Move-based send: adopts the caller's buffer as the message payload —
  /// no copy, no allocation (payloads <= Message::kInlineCapacity are
  /// demoted to inline storage, and the buffer is recycled into this
  /// rank's pool).  Pair with acquire_buffer() for a fully pooled path.
  void send_bytes(int dest, int tag, std::vector<std::byte>&& payload);

  // -- Payload buffer pool -------------------------------------------------

  /// An empty buffer with at least `reserve_bytes` capacity from this
  /// rank's pool (heap-allocating, and counting payload_allocs, on miss).
  [[nodiscard]] std::vector<std::byte> acquire_buffer(
      std::size_t reserve_bytes);

  /// Returns a consumed payload's storage to this rank's pool.  The
  /// canonical receive-side idiom:
  ///
  ///   Message msg = comm.recv_message(src, tag);
  ///   ... combine out of msg.payload() ...
  ///   comm.recycle_buffer(msg.release_storage());
  void recycle_buffer(std::vector<std::byte>&& storage) {
    state_->pool.release(std::move(storage));
  }

  /// Pool statistics (hits/misses/dropped) for tests and benchmarks.
  [[nodiscard]] const BufferPool::Stats& pool_stats() const {
    return state_->pool.stats();
  }

  /// Raises this rank's pool retention caps so at least `buffers`
  /// recycled payloads survive per size class.  A plan-time knob for
  /// persistent handles and services whose warm path recycles wide
  /// fan-ins (see BufferPool::ensure_retention); never shrinks.
  void reserve_pool_capacity(std::size_t buffers) {
    state_->pool.ensure_retention(buffers);
  }

  // -- Receive deadlines ---------------------------------------------------

  /// Installs (or clears, with std::nullopt) a bounded-wait policy for
  /// this rank's blocking receives.  Shared by all of the rank's
  /// communicators, like the clock: a rank has one patience.
  void set_recv_deadline(std::optional<RecvDeadline> deadline) {
    state_->recv_deadline = std::move(deadline);
  }
  [[nodiscard]] const std::optional<RecvDeadline>& recv_deadline() const {
    return state_->recv_deadline;
  }
  /// Deadline slices that expired and were retried (observability).
  [[nodiscard]] std::uint64_t recv_retries() const {
    return state_->recv_retry_count;
  }

  /// Duplicate deliveries this rank's mailbox suppressed via sequence
  /// numbers (observability; nonzero only under fault plans or manual
  /// duplicate injection).
  [[nodiscard]] std::uint64_t duplicates_suppressed() const;

  /// Blocks until a message matching (source, tag) on this communicator
  /// arrives; merges the message's arrival time into this clock and
  /// charges receive overhead.  Wildcards kAnySource/kAnyTag are allowed.
  /// With a RecvDeadline installed, waits with retry/backoff and throws
  /// TimeoutError when the budget is exhausted; throws PeerLostError if a
  /// rank of the machine exited while this one was waiting.
  Message recv_message(int source, int tag);

  /// True when a matching message is already queued (non-blocking probe).
  [[nodiscard]] bool probe(int source, int tag);

  /// Non-blocking receive: takes a matching message if one is queued,
  /// std::nullopt otherwise.  Clock accounting matches recv_message.
  std::optional<Message> try_recv_message(int source, int tag);

  /// Non-blocking receive that only takes a message whose modelled arrival
  /// time has passed on this rank's virtual clock ("has it arrived *yet*?").
  /// A message that is physically queued but virtually still in flight is
  /// left queued and std::nullopt is returned.  This is the receive the
  /// nonblocking progress engine polls with: it never charges modelled
  /// waiting, so communication overlapped with compute is free on the
  /// virtual timeline.
  std::optional<Message> try_recv_due(int source, int tag);

  // -- Typed point-to-point -----------------------------------------------

  /// Sends one trivially-copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send(int dest, int tag, const T& value) {
    send_bytes(dest, tag, bytes::to_bytes(value));
  }

  /// Receives one trivially-copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T recv(int source, int tag, RecvStatus* status = nullptr) {
    Message msg = recv_message(source, tag);
    if (status != nullptr) *status = RecvStatus{msg.source, msg.tag};
    return bytes::from_bytes<T>(msg.payload());
  }

  /// Sends a contiguous sequence of trivially-copyable values.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_span(int dest, int tag, std::span<const T> values) {
    send_bytes(dest, tag,
               std::span<const std::byte>(
                   reinterpret_cast<const std::byte*>(values.data()),
                   values.size_bytes()));
  }

  /// Receives a sequence whose length the receiver does not know a priori.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> recv_vector(int source, int tag,
                             RecvStatus* status = nullptr) {
    Message msg = recv_message(source, tag);
    if (status != nullptr) *status = RecvStatus{msg.source, msg.tag};
    const std::span<const std::byte> payload = msg.payload();
    if (payload.size() % sizeof(T) != 0) {
      throw ProtocolError("recv_vector: payload size " +
                          std::to_string(payload.size()) +
                          " is not a multiple of element size " +
                          std::to_string(sizeof(T)));
    }
    std::vector<T> out(payload.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), payload.data(), payload.size());
    }
    return out;
  }

  /// Receives a sequence of exactly `out.size()` values into `out`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void recv_span(int source, int tag, std::span<T> out) {
    Message msg = recv_message(source, tag);
    const std::span<const std::byte> payload = msg.payload();
    if (payload.size() != out.size_bytes()) {
      throw ProtocolError("recv_span: expected " +
                          std::to_string(out.size_bytes()) + " bytes, got " +
                          std::to_string(payload.size()));
    }
    if (!out.empty()) {
      std::memcpy(out.data(), payload.data(), payload.size());
    }
  }

  /// Non-blocking typed receive.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::optional<T> try_recv(int source, int tag,
                            RecvStatus* status = nullptr) {
    auto msg = try_recv_message(source, tag);
    if (!msg.has_value()) return std::nullopt;
    if (status != nullptr) *status = RecvStatus{msg->source, msg->tag};
    return bytes::from_bytes<T>(msg->payload());
  }

  /// Combined send+receive with distinct partners, deadlock-free because
  /// sends are buffered.  The common idiom of pairwise exchanges.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T sendrecv(int dest, int send_tag, const T& value, int source,
             int recv_tag) {
    send(dest, send_tag, value);
    return recv<T>(source, recv_tag);
  }

  // -- Collective tag management ------------------------------------------

  /// Tags at or above this value are reserved for collective operations;
  /// user point-to-point traffic should stay below it.
  static constexpr int kCollectiveTagBase = 1 << 20;

  /// Size of the collective tag window [kCollectiveTagBase, INT_MAX].  The
  /// sequence wraps only after ~2^31 collectives — long-lived nonblocking
  /// operations would need that many collectives in flight at once before
  /// a wildcard receive could alias two of them.  (A previous 16-bit
  /// window aliased after 65536 collectives; see tag_window_test.)
  static constexpr std::int64_t kCollectiveTagWindow =
      static_cast<std::int64_t>(std::numeric_limits<int>::max()) -
      kCollectiveTagBase + 1;

  /// A contiguous range of collective tags owned by a persistent handle.
  /// Reserved once (advancing the SPMD sequence), then re-leased every
  /// epoch via begin_tag_block/end_tag_block so an epoch loop of millions
  /// of collectives consumes a bounded slice of the tag window instead of
  /// marching through — and eventually wrapping — it.  Re-using the same
  /// tags across epochs is safe because each epoch's messages are fully
  /// consumed before the next epoch starts, and stale chaos-duplicates are
  /// discarded by the mailbox's per-stream sequence watermark.
  struct TagBlock {
    int first_tag = 0;
    int count = 0;
  };

  /// Reserves `count` consecutive tags for a long-lived handle and returns
  /// them as a leasable block.  Advances the SPMD sequence exactly once.
  TagBlock reserve_tag_block(int count) {
    return TagBlock{reserve_collective_tags(count), count};
  }

  /// Begins serving collective-tag reservations from `block` instead of
  /// the global sequence.  While the lease is active, reserve requests walk
  /// a cursor from the block's start (throwing if the block is too small)
  /// and the SPMD sequence does not advance.  Leases do not nest.
  void begin_tag_block(const TagBlock& block) {
    if (active_block_.has_value()) {
      throw ArgumentError(
          "begin_tag_block: a tag-block lease is already active on this "
          "communicator (leases do not nest)");
    }
    active_block_ = block;
    block_cursor_ = 0;
  }

  /// Ends the active lease; subsequent reservations use the global
  /// sequence again.
  void end_tag_block() { active_block_.reset(); }

  /// Total collective tags consumed from the global sequence.  Persistent
  /// handles hold this flat across warm epochs (the tag-recycling
  /// regression tests assert exactly that).
  [[nodiscard]] std::int64_t collective_tags_consumed() const {
    return collective_seq_;
  }

  /// Shrinks the collective tag window so tests can exercise the wrap
  /// logic in millions (not billions) of epochs.  Test-only; every rank of
  /// a communicator must install the same window or tags stop agreeing.
  void set_collective_tag_window_for_test(std::int64_t window) {
    if (window < 1 || window > kCollectiveTagWindow) {
      throw ArgumentError("set_collective_tag_window_for_test: window " +
                          std::to_string(window) + " outside [1, " +
                          std::to_string(kCollectiveTagWindow) + "]");
    }
    tag_window_ = window;
  }

  /// Reserves `count` consecutive tags for one collective operation and
  /// returns the first.  Because ranks execute a communicator's
  /// collectives SPMD-style in the same order, the n-th reservation on
  /// every member returns the same tags, isolating concurrent wildcard
  /// receives of adjacent collectives from each other.  A reservation
  /// never straddles the window's wrap point: if the remaining window is
  /// too small, every rank skips to the window start together.  Under an
  /// active tag-block lease the tags come from the leased block and the
  /// sequence does not move.
  int reserve_collective_tags(int count) {
    if (count < 1 || static_cast<std::int64_t>(count) > tag_window_) {
      throw ArgumentError("reserve_collective_tags: count " +
                          std::to_string(count) + " outside [1, " +
                          std::to_string(tag_window_) + "]");
    }
    if (active_block_.has_value()) {
      if (block_cursor_ + count > active_block_->count) {
        throw ArgumentError(
            "reserve_collective_tags: leased tag block of " +
            std::to_string(active_block_->count) +
            " tags exhausted (collective needs " + std::to_string(count) +
            " more); reserve a larger block for this persistent handle");
      }
      const int tag = active_block_->first_tag + block_cursor_;
      block_cursor_ += count;
      return tag;
    }
    std::int64_t pos = collective_seq_ % tag_window_;
    if (pos + count > tag_window_) {
      collective_seq_ += tag_window_ - pos;
      pos = 0;
    }
    collective_seq_ += count;
    return kCollectiveTagBase + static_cast<int>(pos);
  }

  /// Returns a fresh tag for one collective invocation.
  int next_collective_tag() { return reserve_collective_tags(1); }

  // -- Pending nonblocking operations -------------------------------------

  /// Registers an in-flight nonblocking operation (and the tag window it
  /// reserved) in this rank's pending-operation table; returns its id.
  /// Called by the progress engine, shared across the rank's communicators.
  std::uint64_t register_pending_op(int first_tag, int tag_count) {
    const std::uint64_t id = state_->next_pending_id++;
    state_->pending_ops.push_back({id, context_, first_tag, tag_count});
    return id;
  }

  /// Removes a completed operation from the pending table.
  void complete_pending_op(std::uint64_t id) {
    auto& ops = state_->pending_ops;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].id == id) {
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  /// Number of nonblocking operations currently in flight on this rank
  /// (across all of its communicators).
  [[nodiscard]] std::size_t pending_op_count() const {
    return state_->pending_ops.size();
  }

  /// The pending-operation table itself, for tests and debugging.
  [[nodiscard]] const std::vector<PendingOp>& pending_ops() const {
    return state_->pending_ops;
  }

  // -- Counters (observability; used by tests and benchmarks) -------------

  [[nodiscard]] std::uint64_t messages_sent() const {
    return state_->sent_count;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return state_->sent_bytes; }
  [[nodiscard]] std::uint64_t messages_received() const {
    return state_->recv_count;
  }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return state_->recv_bytes;
  }

  /// Heap buffers this rank allocated for message payloads (span-based
  /// sends plus pool misses of acquire_buffer).
  [[nodiscard]] std::uint64_t payload_allocs() const {
    return state_->payload_allocs;
  }
  /// Full-payload byte copies made on the send side (span-based sends).
  [[nodiscard]] std::uint64_t payload_copies() const {
    return state_->payload_copies;
  }
  /// Sends that adopted the caller's buffer without copying.
  [[nodiscard]] std::uint64_t sends_moved() const {
    return state_->sends_moved;
  }
  /// Sends whose payload fit in the message's inline storage.
  [[nodiscard]] std::uint64_t sends_inline() const {
    return state_->sends_inline;
  }

  /// Cost-model schedule selections made on this rank (see
  /// RankState::autotune_invocations).
  [[nodiscard]] std::uint64_t autotune_invocations() const {
    return state_->autotune_invocations;
  }
  /// Records one autotuner argmin; called by the schedule-dispatch layer.
  void note_autotune_invocation() { state_->autotune_invocations += 1; }

  /// Records one parallel local-accumulate section (par::accumulate_indexed
  /// after a pooled run); run() aggregates these into RunResult.
  void note_parallel_section(unsigned threads, std::uint64_t chunks,
                             std::uint64_t steals) {
    state_->par_sections += 1;
    state_->par_chunks += chunks;
    state_->par_steals += steals;
    if (threads > state_->par_threads) state_->par_threads = threads;
  }
  /// Parallel accumulate sections this rank ran through the worker pool.
  [[nodiscard]] std::uint64_t local_parallel_sections() const {
    return state_->par_sections;
  }
  /// Chunks executed across this rank's parallel sections.
  [[nodiscard]] std::uint64_t local_chunks() const {
    return state_->par_chunks;
  }
  /// Successful steal-half operations across this rank's sections.
  [[nodiscard]] std::uint64_t local_steals() const {
    return state_->par_steals;
  }
  /// Widest worker pool any parallel section on this rank used (0 if the
  /// pool never engaged).
  [[nodiscard]] std::uint64_t local_threads() const {
    return state_->par_threads;
  }

  /// Payload bytes this rank sent to peers on the same modelled node /
  /// across nodes (ISSUE 10).  Both stay 0 under a flat cost model.
  [[nodiscard]] std::uint64_t intra_node_bytes() const {
    return state_->intra_node_bytes;
  }
  [[nodiscard]] std::uint64_t inter_node_bytes() const {
    return state_->inter_node_bytes;
  }

  /// Rank-virtualization snapshot (ISSUE 10): OS worker threads the ranks
  /// are multiplexed onto, peak simultaneously-parked virtual ranks, and
  /// total park transitions so far.  All 0 on the thread-per-rank path.
  /// Engine-wide (not per-rank) counters, but readable mid-run without
  /// communication, like the rest of the snapshot accessors.
  [[nodiscard]] std::uint64_t virtual_workers() const;
  [[nodiscard]] std::uint64_t parked_ranks() const;
  [[nodiscard]] std::uint64_t park_events() const;

  /// Publishes a named metric from this rank; after the join, run() sums
  /// same-named entries across ranks into RunResult::user_stats.  Publish
  /// aggregates (e.g. once per run from a stat collector), not per-event
  /// samples — entries accumulate until the run ends.
  void publish_stat(std::string name, double value) {
    state_->published_stats.emplace_back(std::move(name), value);
  }

  /// Live snapshot of the run's fault-injection statistics (all zero when
  /// no fault plan is active).  Safe to call mid-run, which is what lets a
  /// long-lived service report chaos counters per epoch instead of only at
  /// RunResult teardown.
  [[nodiscard]] SimStats sim_stats() const;

  // -- Model-checking hooks (ISSUE 7) -------------------------------------

  /// The run's schedule oracle, or nullptr outside model-checking runs.
  /// Collectives with genuine arrival-order freedom consult it to branch
  /// deterministically instead of folding in racy arrival order.
  [[nodiscard]] ScheduleOracle* schedule_oracle() const;

  /// Monotonic event count of this rank's mailbox.  Snapshot before a
  /// nonblocking progress pass and hand to idle_wait.
  [[nodiscard]] std::uint64_t mail_events() const;

  /// Parks this rank until its mailbox sees an event newer than
  /// `seen_events`; plain yield outside model-checking runs.  Throws
  /// DeadlockError when the park completes a global deadlock.
  void idle_wait(std::uint64_t seen_events);

  /// Group membership of this communicator: group rank -> global rank.
  [[nodiscard]] const std::vector<int>& group_global_ranks() const {
    return group_;
  }

  /// Scopes which lost peers poison this *rank's* receives (all of the
  /// rank's communicators share one mailbox, hence one scope — install the
  /// scope around each stream's work and restore it after).  std::nullopt
  /// restores the default: any lost rank anywhere unblocks this rank's
  /// receives with PeerLostError.
  void set_peer_loss_scope(std::optional<std::vector<int>> global_ranks);

  /// Global ranks known (by this rank's mailbox) to have exited.  Read
  /// after catching PeerLostError to learn which peer died — e.g. to mark
  /// the dead shard's streams degraded while others keep flowing.
  [[nodiscard]] std::vector<int> lost_peers() const;

  void reset_counters() {
    state_->sent_count = 0;
    state_->sent_bytes = 0;
    state_->recv_count = 0;
    state_->recv_bytes = 0;
    state_->payload_allocs = 0;
    state_->payload_copies = 0;
    state_->sends_moved = 0;
    state_->sends_inline = 0;
    state_->pool.reset_stats();
  }

 private:
  /// Subcommunicator constructor; used by split().
  Comm(Runtime& runtime, int global_rank, std::int64_t context,
       std::vector<int> group, int group_rank);

  /// Chaos hook at the top of every send: charges fault-plan compute skew
  /// and throws RankKilledError at the configured kill point.  No-op
  /// without a fault plan.
  void chaos_pre_send();

  /// Stamps the sequence number and enqueues `msg` at `dest`'s mailbox,
  /// applying the fault plan (drop/duplicate/delay/reorder) when active.
  void deliver(int dest, Message&& msg);

  /// Charges the tier-resolved send overhead and counts the payload against
  /// the intra-/inter-node byte counters (two-tier models only).
  void charge_send(int dest_global, std::size_t nbytes);

  /// Tier-resolved receive overhead for a message from `source_group_rank`.
  [[nodiscard]] double recv_overhead_from(int source_group_rank) const;

  /// The blocking take behind recv_message: plain blocking wait, or
  /// retry/backoff slices under the rank's RecvDeadline.
  Message take_blocking(int source, int tag);

  Runtime& runtime_;
  RankState* state_;
  int global_rank_;
  std::int64_t context_ = 0;
  std::vector<int> group_;  // group rank -> global rank
  int group_rank_ = 0;
  std::int64_t collective_seq_ = 0;
  std::int64_t tag_window_ = kCollectiveTagWindow;
  std::optional<TagBlock> active_block_;
  int block_cursor_ = 0;
  int split_seq_ = 0;
};

/// RAII lease of a persistent handle's tag block: collectives issued while
/// the lease lives draw their tags from the block (identically on every
/// rank, since the leases are SPMD like the collectives themselves) and
/// the communicator's tag sequence stands still.
class TagBlockLease {
 public:
  TagBlockLease(Comm& comm, const Comm::TagBlock& block) : comm_(&comm) {
    comm_->begin_tag_block(block);
  }
  TagBlockLease(const TagBlockLease&) = delete;
  TagBlockLease& operator=(const TagBlockLease&) = delete;
  ~TagBlockLease() { comm_->end_tag_block(); }

 private:
  Comm* comm_;
};

}  // namespace rsmpi::mprt
