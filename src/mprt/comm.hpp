// Communicator handle given to each rank's body function.
//
// A Comm is a rank's view of one *communication context*: its identity
// within the group (rank/size), typed point-to-point messaging to group
// members, and the rank's virtual clock (shared by all of the rank's
// communicators).  The runtime constructs the world communicator spanning
// all ranks; Comm::split derives subcommunicators whose traffic is fully
// isolated from the parent's, MPI-style.  Collective operations are built
// on top of this interface in src/coll and work unchanged on
// subcommunicators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "mprt/buffer_pool.hpp"
#include "mprt/cost_model.hpp"
#include "mprt/mailbox.hpp"
#include "mprt/message.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace rsmpi::mprt {

class Runtime;

/// One outstanding nonblocking operation registered with a rank.  The
/// progress engine (coll/nb) records each in-flight collective here so the
/// rank's pending work — and the collective-tag window it reserved — is
/// inspectable by tests and debuggers.
struct PendingOp {
  std::uint64_t id = 0;
  std::int64_t context = 0;  // communicator the operation runs on
  int first_tag = 0;         // first tag of the reserved window
  int tag_count = 0;         // number of consecutive tags reserved
};

/// Bounded-wait policy for blocking receives.  When set on a rank, every
/// blocking recv waits in `retries` slices whose lengths grow by `backoff`
/// and sum to `timeout_s`; if no matching message arrives within the
/// budget the receive throws TimeoutError instead of hanging — the
/// recovery path for messages a fault plan dropped.  All times are real
/// (wall-clock) seconds: a rank blocked in recv makes no virtual progress,
/// so the deadline must come from the host clock.
struct RecvDeadline {
  double timeout_s = 1.0;
  int retries = 4;
  double backoff = 2.0;
};

/// Per-rank mutable state shared by every communicator of that rank: the
/// virtual clock, the traffic counters, and the pending-operation table.
/// Owned by the runtime; only touched from the rank's own thread.
struct RankState {
  VirtualClock clock;
  /// Next send sequence number; stamped on every outgoing message.  One
  /// counter per rank is enough for per-stream monotonicity because a
  /// rank's sends are sequential.
  std::uint64_t next_seq = 1;
  std::optional<RecvDeadline> recv_deadline;
  std::uint64_t recv_retry_count = 0;  ///< deadline slices that expired
  std::uint64_t sent_count = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t recv_count = 0;
  std::uint64_t recv_bytes = 0;
  // Combine-phase allocation observability (ISSUE 3): how many payload
  // buffers this rank heap-allocated, how many payload byte-copies it
  // made, and how many sends avoided both via move or inline storage.
  std::uint64_t payload_allocs = 0;  ///< heap buffers allocated for payloads
  std::uint64_t payload_copies = 0;  ///< sender-side full-payload copies
  std::uint64_t sends_moved = 0;     ///< sends that adopted the caller's buffer
  std::uint64_t sends_inline = 0;    ///< sends stored inline (<= 64 B)
  BufferPool pool;                   ///< recycled payload buffers (rank-local)
  std::vector<PendingOp> pending_ops;
  std::uint64_t next_pending_id = 1;
};

/// Identity/status returned by receives that used wildcards.  `source` is
/// a rank within the receiving communicator.
struct RecvStatus {
  int source = 0;
  int tag = 0;
};

/// One rank's endpoint into one communicator.  World communicators are
/// created by the runtime, one per rank; subcommunicators by split().
/// A Comm must only be used from its rank's thread.  All messaging is
/// two-sided and buffered: send never blocks.
class Comm {
 public:
  /// World communicator over all ranks; called by the runtime.
  Comm(Runtime& runtime, int global_rank);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;
  Comm(Comm&&) = default;

  /// This rank's position within this communicator's group.
  [[nodiscard]] int rank() const { return group_rank_; }
  /// Number of ranks in this communicator's group.
  [[nodiscard]] int size() const { return static_cast<int>(group_.size()); }
  /// This rank's position in the world communicator.
  [[nodiscard]] int global_rank() const { return global_rank_; }

  /// The communication cost model shared by all ranks.
  [[nodiscard]] const CostModel& cost_model() const;

  /// This rank's virtual clock — shared across all of the rank's
  /// communicators, because a rank has one timeline.
  [[nodiscard]] VirtualClock& clock() { return state_->clock; }
  [[nodiscard]] const VirtualClock& clock() const { return state_->clock; }

  /// Convenience RAII compute timer bound to this rank's clock and model.
  [[nodiscard]] ComputeTimer compute_section() {
    return ComputeTimer(state_->clock, cost_model());
  }

  // -- Subcommunicators ----------------------------------------------------

  /// Collectively partitions this communicator: ranks passing the same
  /// `color` (>= 0) form a new group, ordered by (key, parent rank).  Every
  /// member of this communicator must call split the same number of times
  /// in the same order.  The new communicator's traffic is isolated from
  /// the parent's by a fresh context id.
  Comm split(int color, int key);

  // -- Byte-level point-to-point ------------------------------------------

  /// Sends a payload to group rank `dest` with `tag`.  Buffered and
  /// non-blocking: returns as soon as the payload is enqueued at the
  /// destination mailbox.  Charges send overhead to this clock and stamps
  /// the message with its modelled arrival time.  This overload *copies*
  /// the payload (counted in payload_copies; also charged at
  /// CostModel::copy_per_byte_s when nonzero).
  void send_bytes(int dest, int tag, std::span<const std::byte> payload);

  /// Move-based send: adopts the caller's buffer as the message payload —
  /// no copy, no allocation (payloads <= Message::kInlineCapacity are
  /// demoted to inline storage, and the buffer is recycled into this
  /// rank's pool).  Pair with acquire_buffer() for a fully pooled path.
  void send_bytes(int dest, int tag, std::vector<std::byte>&& payload);

  // -- Payload buffer pool -------------------------------------------------

  /// An empty buffer with at least `reserve_bytes` capacity from this
  /// rank's pool (heap-allocating, and counting payload_allocs, on miss).
  [[nodiscard]] std::vector<std::byte> acquire_buffer(
      std::size_t reserve_bytes);

  /// Returns a consumed payload's storage to this rank's pool.  The
  /// canonical receive-side idiom:
  ///
  ///   Message msg = comm.recv_message(src, tag);
  ///   ... combine out of msg.payload() ...
  ///   comm.recycle_buffer(msg.release_storage());
  void recycle_buffer(std::vector<std::byte>&& storage) {
    state_->pool.release(std::move(storage));
  }

  /// Pool statistics (hits/misses/dropped) for tests and benchmarks.
  [[nodiscard]] const BufferPool::Stats& pool_stats() const {
    return state_->pool.stats();
  }

  // -- Receive deadlines ---------------------------------------------------

  /// Installs (or clears, with std::nullopt) a bounded-wait policy for
  /// this rank's blocking receives.  Shared by all of the rank's
  /// communicators, like the clock: a rank has one patience.
  void set_recv_deadline(std::optional<RecvDeadline> deadline) {
    state_->recv_deadline = std::move(deadline);
  }
  [[nodiscard]] const std::optional<RecvDeadline>& recv_deadline() const {
    return state_->recv_deadline;
  }
  /// Deadline slices that expired and were retried (observability).
  [[nodiscard]] std::uint64_t recv_retries() const {
    return state_->recv_retry_count;
  }

  /// Duplicate deliveries this rank's mailbox suppressed via sequence
  /// numbers (observability; nonzero only under fault plans or manual
  /// duplicate injection).
  [[nodiscard]] std::uint64_t duplicates_suppressed() const;

  /// Blocks until a message matching (source, tag) on this communicator
  /// arrives; merges the message's arrival time into this clock and
  /// charges receive overhead.  Wildcards kAnySource/kAnyTag are allowed.
  /// With a RecvDeadline installed, waits with retry/backoff and throws
  /// TimeoutError when the budget is exhausted; throws PeerLostError if a
  /// rank of the machine exited while this one was waiting.
  Message recv_message(int source, int tag);

  /// True when a matching message is already queued (non-blocking probe).
  [[nodiscard]] bool probe(int source, int tag);

  /// Non-blocking receive: takes a matching message if one is queued,
  /// std::nullopt otherwise.  Clock accounting matches recv_message.
  std::optional<Message> try_recv_message(int source, int tag);

  /// Non-blocking receive that only takes a message whose modelled arrival
  /// time has passed on this rank's virtual clock ("has it arrived *yet*?").
  /// A message that is physically queued but virtually still in flight is
  /// left queued and std::nullopt is returned.  This is the receive the
  /// nonblocking progress engine polls with: it never charges modelled
  /// waiting, so communication overlapped with compute is free on the
  /// virtual timeline.
  std::optional<Message> try_recv_due(int source, int tag);

  // -- Typed point-to-point -----------------------------------------------

  /// Sends one trivially-copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send(int dest, int tag, const T& value) {
    send_bytes(dest, tag, bytes::to_bytes(value));
  }

  /// Receives one trivially-copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T recv(int source, int tag, RecvStatus* status = nullptr) {
    Message msg = recv_message(source, tag);
    if (status != nullptr) *status = RecvStatus{msg.source, msg.tag};
    return bytes::from_bytes<T>(msg.payload());
  }

  /// Sends a contiguous sequence of trivially-copyable values.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_span(int dest, int tag, std::span<const T> values) {
    send_bytes(dest, tag,
               std::span<const std::byte>(
                   reinterpret_cast<const std::byte*>(values.data()),
                   values.size_bytes()));
  }

  /// Receives a sequence whose length the receiver does not know a priori.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> recv_vector(int source, int tag,
                             RecvStatus* status = nullptr) {
    Message msg = recv_message(source, tag);
    if (status != nullptr) *status = RecvStatus{msg.source, msg.tag};
    const std::span<const std::byte> payload = msg.payload();
    if (payload.size() % sizeof(T) != 0) {
      throw ProtocolError("recv_vector: payload size " +
                          std::to_string(payload.size()) +
                          " is not a multiple of element size " +
                          std::to_string(sizeof(T)));
    }
    std::vector<T> out(payload.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), payload.data(), payload.size());
    }
    return out;
  }

  /// Receives a sequence of exactly `out.size()` values into `out`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void recv_span(int source, int tag, std::span<T> out) {
    Message msg = recv_message(source, tag);
    const std::span<const std::byte> payload = msg.payload();
    if (payload.size() != out.size_bytes()) {
      throw ProtocolError("recv_span: expected " +
                          std::to_string(out.size_bytes()) + " bytes, got " +
                          std::to_string(payload.size()));
    }
    if (!out.empty()) {
      std::memcpy(out.data(), payload.data(), payload.size());
    }
  }

  /// Non-blocking typed receive.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::optional<T> try_recv(int source, int tag,
                            RecvStatus* status = nullptr) {
    auto msg = try_recv_message(source, tag);
    if (!msg.has_value()) return std::nullopt;
    if (status != nullptr) *status = RecvStatus{msg->source, msg->tag};
    return bytes::from_bytes<T>(msg->payload());
  }

  /// Combined send+receive with distinct partners, deadlock-free because
  /// sends are buffered.  The common idiom of pairwise exchanges.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T sendrecv(int dest, int send_tag, const T& value, int source,
             int recv_tag) {
    send(dest, send_tag, value);
    return recv<T>(source, recv_tag);
  }

  // -- Collective tag management ------------------------------------------

  /// Tags at or above this value are reserved for collective operations;
  /// user point-to-point traffic should stay below it.
  static constexpr int kCollectiveTagBase = 1 << 20;

  /// Size of the collective tag window [kCollectiveTagBase, INT_MAX].  The
  /// sequence wraps only after ~2^31 collectives — long-lived nonblocking
  /// operations would need that many collectives in flight at once before
  /// a wildcard receive could alias two of them.  (A previous 16-bit
  /// window aliased after 65536 collectives; see tag_window_test.)
  static constexpr std::int64_t kCollectiveTagWindow =
      static_cast<std::int64_t>(std::numeric_limits<int>::max()) -
      kCollectiveTagBase + 1;

  /// Reserves `count` consecutive tags for one collective operation and
  /// returns the first.  Because ranks execute a communicator's
  /// collectives SPMD-style in the same order, the n-th reservation on
  /// every member returns the same tags, isolating concurrent wildcard
  /// receives of adjacent collectives from each other.  A reservation
  /// never straddles the window's wrap point: if the remaining window is
  /// too small, every rank skips to the window start together.
  int reserve_collective_tags(int count) {
    if (count < 1 || static_cast<std::int64_t>(count) > kCollectiveTagWindow) {
      throw ArgumentError("reserve_collective_tags: count " +
                          std::to_string(count) + " outside [1, " +
                          std::to_string(kCollectiveTagWindow) + "]");
    }
    std::int64_t pos = collective_seq_ % kCollectiveTagWindow;
    if (pos + count > kCollectiveTagWindow) {
      collective_seq_ += kCollectiveTagWindow - pos;
      pos = 0;
    }
    collective_seq_ += count;
    return kCollectiveTagBase + static_cast<int>(pos);
  }

  /// Returns a fresh tag for one collective invocation.
  int next_collective_tag() { return reserve_collective_tags(1); }

  // -- Pending nonblocking operations -------------------------------------

  /// Registers an in-flight nonblocking operation (and the tag window it
  /// reserved) in this rank's pending-operation table; returns its id.
  /// Called by the progress engine, shared across the rank's communicators.
  std::uint64_t register_pending_op(int first_tag, int tag_count) {
    const std::uint64_t id = state_->next_pending_id++;
    state_->pending_ops.push_back({id, context_, first_tag, tag_count});
    return id;
  }

  /// Removes a completed operation from the pending table.
  void complete_pending_op(std::uint64_t id) {
    auto& ops = state_->pending_ops;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].id == id) {
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  /// Number of nonblocking operations currently in flight on this rank
  /// (across all of its communicators).
  [[nodiscard]] std::size_t pending_op_count() const {
    return state_->pending_ops.size();
  }

  /// The pending-operation table itself, for tests and debugging.
  [[nodiscard]] const std::vector<PendingOp>& pending_ops() const {
    return state_->pending_ops;
  }

  // -- Counters (observability; used by tests and benchmarks) -------------

  [[nodiscard]] std::uint64_t messages_sent() const {
    return state_->sent_count;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return state_->sent_bytes; }
  [[nodiscard]] std::uint64_t messages_received() const {
    return state_->recv_count;
  }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return state_->recv_bytes;
  }

  /// Heap buffers this rank allocated for message payloads (span-based
  /// sends plus pool misses of acquire_buffer).
  [[nodiscard]] std::uint64_t payload_allocs() const {
    return state_->payload_allocs;
  }
  /// Full-payload byte copies made on the send side (span-based sends).
  [[nodiscard]] std::uint64_t payload_copies() const {
    return state_->payload_copies;
  }
  /// Sends that adopted the caller's buffer without copying.
  [[nodiscard]] std::uint64_t sends_moved() const {
    return state_->sends_moved;
  }
  /// Sends whose payload fit in the message's inline storage.
  [[nodiscard]] std::uint64_t sends_inline() const {
    return state_->sends_inline;
  }

  void reset_counters() {
    state_->sent_count = 0;
    state_->sent_bytes = 0;
    state_->recv_count = 0;
    state_->recv_bytes = 0;
    state_->payload_allocs = 0;
    state_->payload_copies = 0;
    state_->sends_moved = 0;
    state_->sends_inline = 0;
    state_->pool.reset_stats();
  }

 private:
  /// Subcommunicator constructor; used by split().
  Comm(Runtime& runtime, int global_rank, std::int64_t context,
       std::vector<int> group, int group_rank);

  /// Chaos hook at the top of every send: charges fault-plan compute skew
  /// and throws RankKilledError at the configured kill point.  No-op
  /// without a fault plan.
  void chaos_pre_send();

  /// Stamps the sequence number and enqueues `msg` at `dest`'s mailbox,
  /// applying the fault plan (drop/duplicate/delay/reorder) when active.
  void deliver(int dest, Message&& msg);

  /// The blocking take behind recv_message: plain blocking wait, or
  /// retry/backoff slices under the rank's RecvDeadline.
  Message take_blocking(int source, int tag);

  Runtime& runtime_;
  RankState* state_;
  int global_rank_;
  std::int64_t context_ = 0;
  std::vector<int> group_;  // group rank -> global rank
  int group_rank_ = 0;
  std::int64_t collective_seq_ = 0;
  int split_seq_ = 0;
};

}  // namespace rsmpi::mprt
