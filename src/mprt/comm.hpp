// Communicator handle given to each rank's body function.
//
// A Comm is a rank's view of one *communication context*: its identity
// within the group (rank/size), typed point-to-point messaging to group
// members, and the rank's virtual clock (shared by all of the rank's
// communicators).  The runtime constructs the world communicator spanning
// all ranks; Comm::split derives subcommunicators whose traffic is fully
// isolated from the parent's, MPI-style.  Collective operations are built
// on top of this interface in src/coll and work unchanged on
// subcommunicators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "mprt/cost_model.hpp"
#include "mprt/mailbox.hpp"
#include "mprt/message.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace rsmpi::mprt {

class Runtime;

/// Per-rank mutable state shared by every communicator of that rank: the
/// virtual clock and the send counters.  Owned by the runtime.
struct RankState {
  VirtualClock clock;
  std::uint64_t sent_count = 0;
  std::uint64_t sent_bytes = 0;
};

/// Identity/status returned by receives that used wildcards.  `source` is
/// a rank within the receiving communicator.
struct RecvStatus {
  int source = 0;
  int tag = 0;
};

/// One rank's endpoint into one communicator.  World communicators are
/// created by the runtime, one per rank; subcommunicators by split().
/// A Comm must only be used from its rank's thread.  All messaging is
/// two-sided and buffered: send never blocks.
class Comm {
 public:
  /// World communicator over all ranks; called by the runtime.
  Comm(Runtime& runtime, int global_rank);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;
  Comm(Comm&&) = default;

  /// This rank's position within this communicator's group.
  [[nodiscard]] int rank() const { return group_rank_; }
  /// Number of ranks in this communicator's group.
  [[nodiscard]] int size() const { return static_cast<int>(group_.size()); }
  /// This rank's position in the world communicator.
  [[nodiscard]] int global_rank() const { return global_rank_; }

  /// The communication cost model shared by all ranks.
  [[nodiscard]] const CostModel& cost_model() const;

  /// This rank's virtual clock — shared across all of the rank's
  /// communicators, because a rank has one timeline.
  [[nodiscard]] VirtualClock& clock() { return state_->clock; }
  [[nodiscard]] const VirtualClock& clock() const { return state_->clock; }

  /// Convenience RAII compute timer bound to this rank's clock and model.
  [[nodiscard]] ComputeTimer compute_section() {
    return ComputeTimer(state_->clock, cost_model());
  }

  // -- Subcommunicators ----------------------------------------------------

  /// Collectively partitions this communicator: ranks passing the same
  /// `color` (>= 0) form a new group, ordered by (key, parent rank).  Every
  /// member of this communicator must call split the same number of times
  /// in the same order.  The new communicator's traffic is isolated from
  /// the parent's by a fresh context id.
  Comm split(int color, int key);

  // -- Byte-level point-to-point ------------------------------------------

  /// Sends a payload to group rank `dest` with `tag`.  Buffered and
  /// non-blocking: returns as soon as the payload is enqueued at the
  /// destination mailbox.  Charges send overhead to this clock and stamps
  /// the message with its modelled arrival time.
  void send_bytes(int dest, int tag, std::span<const std::byte> payload);

  /// Blocks until a message matching (source, tag) on this communicator
  /// arrives; merges the message's arrival time into this clock and
  /// charges receive overhead.  Wildcards kAnySource/kAnyTag are allowed.
  Message recv_message(int source, int tag);

  /// True when a matching message is already queued (non-blocking probe).
  [[nodiscard]] bool probe(int source, int tag);

  /// Non-blocking receive: takes a matching message if one is queued,
  /// std::nullopt otherwise.  Clock accounting matches recv_message.
  std::optional<Message> try_recv_message(int source, int tag);

  // -- Typed point-to-point -----------------------------------------------

  /// Sends one trivially-copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send(int dest, int tag, const T& value) {
    send_bytes(dest, tag, bytes::to_bytes(value));
  }

  /// Receives one trivially-copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T recv(int source, int tag, RecvStatus* status = nullptr) {
    Message msg = recv_message(source, tag);
    if (status != nullptr) *status = RecvStatus{msg.source, msg.tag};
    return bytes::from_bytes<T>(msg.payload);
  }

  /// Sends a contiguous sequence of trivially-copyable values.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_span(int dest, int tag, std::span<const T> values) {
    send_bytes(dest, tag,
               std::span<const std::byte>(
                   reinterpret_cast<const std::byte*>(values.data()),
                   values.size_bytes()));
  }

  /// Receives a sequence whose length the receiver does not know a priori.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> recv_vector(int source, int tag,
                             RecvStatus* status = nullptr) {
    Message msg = recv_message(source, tag);
    if (status != nullptr) *status = RecvStatus{msg.source, msg.tag};
    if (msg.payload.size() % sizeof(T) != 0) {
      throw ProtocolError("recv_vector: payload size " +
                          std::to_string(msg.payload.size()) +
                          " is not a multiple of element size " +
                          std::to_string(sizeof(T)));
    }
    std::vector<T> out(msg.payload.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    }
    return out;
  }

  /// Receives a sequence of exactly `out.size()` values into `out`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void recv_span(int source, int tag, std::span<T> out) {
    Message msg = recv_message(source, tag);
    if (msg.payload.size() != out.size_bytes()) {
      throw ProtocolError("recv_span: expected " +
                          std::to_string(out.size_bytes()) + " bytes, got " +
                          std::to_string(msg.payload.size()));
    }
    if (!out.empty()) {
      std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    }
  }

  /// Non-blocking typed receive.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::optional<T> try_recv(int source, int tag,
                            RecvStatus* status = nullptr) {
    auto msg = try_recv_message(source, tag);
    if (!msg.has_value()) return std::nullopt;
    if (status != nullptr) *status = RecvStatus{msg->source, msg->tag};
    return bytes::from_bytes<T>(msg->payload);
  }

  /// Combined send+receive with distinct partners, deadlock-free because
  /// sends are buffered.  The common idiom of pairwise exchanges.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T sendrecv(int dest, int send_tag, const T& value, int source,
             int recv_tag) {
    send(dest, send_tag, value);
    return recv<T>(source, recv_tag);
  }

  // -- Collective tag management ------------------------------------------

  /// Tags at or above this value are reserved for collective operations;
  /// user point-to-point traffic should stay below it.
  static constexpr int kCollectiveTagBase = 1 << 20;

  /// Returns a fresh tag for one collective invocation.  Because ranks
  /// execute a communicator's collectives SPMD-style in the same order,
  /// the n-th collective on every member receives the same tag, isolating
  /// concurrent wildcard receives of adjacent collectives from each other.
  int next_collective_tag() {
    const int tag = kCollectiveTagBase + (collective_seq_ & 0xFFFF);
    ++collective_seq_;
    return tag;
  }

  // -- Counters (observability; used by tests and benchmarks) -------------

  [[nodiscard]] std::uint64_t messages_sent() const {
    return state_->sent_count;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return state_->sent_bytes; }
  void reset_counters() {
    state_->sent_count = 0;
    state_->sent_bytes = 0;
  }

 private:
  /// Subcommunicator constructor; used by split().
  Comm(Runtime& runtime, int global_rank, std::int64_t context,
       std::vector<int> group, int group_rank);

  Runtime& runtime_;
  RankState* state_;
  int global_rank_;
  std::int64_t context_ = 0;
  std::vector<int> group_;  // group rank -> global rank
  int group_rank_ = 0;
  int collective_seq_ = 0;
  int split_seq_ = 0;
};

}  // namespace rsmpi::mprt
