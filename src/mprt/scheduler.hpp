// Virtual-rank scheduler (ISSUE 10): multiplexes many rank fibers onto a
// small pool of OS worker threads.
//
// Execution model.  Each virtual rank is a Fiber (mprt/fiber.hpp) that a
// worker resumes off a shared FIFO ready queue.  A rank runs until its
// blocking mailbox wait finds nothing deliverable, at which point the
// mailbox's RankWaiter hook parks the fiber: the worker gets it back via
// swapcontext and picks up the next ready rank.  A sender's Mailbox::put
// wakes the parked receiver through the same hook, requeueing its fiber —
// possibly onto a different worker; fibers migrate freely.
//
// The park/wake race is resolved by a three-state gate per fiber
// (idle / notified / parked):
//   * wake():   prev = gate.exchange(notified); if prev == parked, requeue.
//   * scheduler, after the fiber switches out: CAS(idle -> parked); on
//     failure a wake landed mid-switch — reset to idle and requeue at once.
//   * the fiber, on resume: gate.store(idle), then re-check its predicate
//     under the mailbox lock.
// A wakeup is never lost because every waker publishes its event (message,
// abort, peer loss) under the mailbox lock *before* calling wake(), and a
// woken fiber always re-checks the predicate after resetting the gate.
//
// Deadlock detection is exact, not timing-based: under the scheduler mutex
// every live fiber is in exactly one of three states — running (counted),
// in the ready queue, or fully parked (the running-count decrement and the
// park CAS happen under one mutex hold).  If live > 0, nothing is running,
// nothing is ready and no timed park is pending, then no rank can ever be
// woken (only rank fibers send; the caller's thread is joined on the pool;
// the par/ worker pools never touch mailboxes) — the scheduler sets a
// sticky deadlocked flag and wakes every parked fiber, whose mailbox wait
// loops convert it into DeadlockError.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "mprt/mailbox.hpp"

namespace rsmpi::mprt {

class Comm;

/// Per-fiber replacement for the runtime's per-thread context: the rank's
/// world communicator (this_comm) and its nonblocking progress engine
/// (coll/nb) live here when the rank is a fiber, because thread_locals
/// would be shared by every rank multiplexed onto the worker.  The
/// nb_engine slot is opaque to keep mprt independent of coll/.
struct FiberSlot {
  Comm* comm = nullptr;
  std::shared_ptr<void> nb_engine;
  int rank = -1;
};

/// The calling context's fiber slot, or nullptr when the caller is a plain
/// rank thread (threaded execution, or code outside any run).
[[nodiscard]] FiberSlot* current_fiber_slot();

/// Worker pool + ready queue + park gates for one virtualized run.  Not
/// reusable: construct, install waiters, run(), read counters, destroy.
class VirtualScheduler {
 public:
  /// RSMPI_WORKERS: number of OS threads to multiplex ranks onto; 0 or
  /// unset keeps the legacy thread-per-rank runtime.
  [[nodiscard]] static int workers_from_env();

  /// RSMPI_STACK_BYTES override for per-fiber stacks, else the 256 KiB
  /// default.
  [[nodiscard]] static std::size_t default_stack_bytes();

  VirtualScheduler(int num_ranks, int workers, std::size_t stack_bytes);
  ~VirtualScheduler();

  VirtualScheduler(const VirtualScheduler&) = delete;
  VirtualScheduler& operator=(const VirtualScheduler&) = delete;

  [[nodiscard]] int workers() const;

  /// Rank `rank`'s park/resume endpoint, for Mailbox::set_rank_waiter.
  [[nodiscard]] RankWaiter& waiter(int rank);

  /// Runs `rank_body(r)` for every rank on the worker pool; returns when
  /// all fibers have finished.  The body must catch its own exceptions
  /// (the runtime's rank wrapper does).
  void run(const std::function<void(int)>& rank_body);

  /// Total park transitions (a fiber fully suspended awaiting a wake).
  [[nodiscard]] std::uint64_t park_events() const;

  /// Peak number of simultaneously parked fibers.
  [[nodiscard]] int peak_parked() const;

  /// True once the exact deadlock detector fired during run().
  [[nodiscard]] bool deadlock_declared() const;

  struct Impl;  // public so scheduler.cpp's thread_local can name it

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace rsmpi::mprt
