// Per-rank mailbox: an unbounded MPSC message queue with MPI-style
// (source, tag) matching, wildcard receives, and abort-aware blocking.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "mprt/message.hpp"

namespace rsmpi::mprt {

/// Global-progress bookkeeping for the model-checking tier: counts how many
/// live ranks are currently blocked with nothing deliverable.  When every
/// live rank is blocked at once, no rank can ever enqueue another message
/// (only rank threads send), so the machine is deadlocked — the detecting
/// waiter confirms the state is stable and then surfaces DeadlockError.
/// Installed on every mailbox only when a ScheduleOracle is active; normal
/// runs never touch it.
///
/// Detection protocol: a waiter increments `blocked` before sleeping and
/// bumps `version` when it stops being blocked.  Whoever observes
/// blocked == active (the last waiter to block, or a finishing rank whose
/// exit makes the remainder all-blocked) waits out a short confirmation
/// window; if no progress happened (version unchanged) and its own queue
/// is still empty, the deadlock is real — any pending wakeup would have
/// bumped the version within the window.
class StarvationMonitor {
 public:
  explicit StarvationMonitor(int num_ranks) : active_(num_ranks) {}

  void enter_blocked() { blocked_.fetch_add(1, std::memory_order_acq_rel); }
  void leave_blocked() {
    version_.fetch_add(1, std::memory_order_acq_rel);
    blocked_.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// A rank's body completed or threw: it will never block (or send) again.
  void note_finished() {
    version_.fetch_add(1, std::memory_order_acq_rel);
    active_.fetch_sub(1, std::memory_order_acq_rel);
  }

  [[nodiscard]] bool all_blocked() const {
    const int active = active_.load(std::memory_order_acquire);
    return active > 0 && blocked_.load(std::memory_order_acquire) >= active;
  }

  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Declares the deadlock if it held across the confirmation window (all
  /// blocked, and no waiter made progress since `version_before`).
  /// Returns the (sticky) starved flag.
  bool confirm_starved(std::uint64_t version_before) {
    if (all_blocked() &&
        version_.load(std::memory_order_acquire) == version_before) {
      starved_.store(true, std::memory_order_release);
    }
    return starved();
  }

  [[nodiscard]] bool starved() const {
    return starved_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<int> blocked_{0};
  std::atomic<int> active_;
  std::atomic<std::uint64_t> version_{0};
  std::atomic<bool> starved_{false};
};

/// Park/resume endpoint of one virtual rank (ISSUE 10).  When the runtime
/// multiplexes many ranks onto a worker pool, blocking a mailbox wait on
/// the condition variable would stall a whole worker; instead the mailbox
/// routes the wait through this hook, which suspends the owning fiber and
/// hands the worker to another rank.  Implemented by the scheduler
/// (mprt/scheduler.cpp); the mailbox stays ignorant of fibers.
class RankWaiter {
 public:
  virtual ~RankWaiter() = default;

  /// Suspends the owning rank until wake() (or the optional deadline, or a
  /// scheduler-wide deadlock declaration).  Called by the owning rank with
  /// its mailbox lock held via `lock`; the implementation releases the
  /// lock across the suspension and reacquires it before returning.  May
  /// return spuriously — callers re-check their predicate in a loop.
  virtual void park(std::unique_lock<std::mutex>& lock,
                    const std::chrono::steady_clock::time_point* deadline) = 0;

  /// Makes the owning rank runnable (idempotent; callable from any thread;
  /// the caller must not hold the mailbox lock).  A wake that races the
  /// park is never lost: the gate protocol turns it into an immediate
  /// re-run of the parking rank.
  virtual void wake() = 0;

  /// True once the scheduler has proven no parked rank can ever be woken
  /// (every live rank parked, no timers pending).  Mailbox wait loops
  /// convert this into DeadlockError — the virtualized runtime's exact
  /// replacement for the verify tier's timing-based starvation monitor.
  [[nodiscard]] virtual bool deadlock_declared() const = 0;
};

/// Thread-safe mailbox owned by one rank.  Any rank may `put`; only the
/// owning rank calls `take`/`try_take`/`probe`.  Matching preserves
/// per-(source, tag) FIFO order: `take` always returns the *oldest* queued
/// message that satisfies the pattern, so two same-tag messages from the
/// same sender are received in send order (the MPI non-overtaking rule).
///
/// "Oldest" is defined by Message::seq, not by queue position: a fault
/// plan (mprt/sim.hpp) may physically enqueue messages out of order or
/// enqueue the same message twice, and the sequence numbers let every
/// receive path — blocking take, try_take, and the due-only try_take_due
/// the async progress engine polls with — agree on one delivery order and
/// deliver each sequence number at most once (duplicates are counted and
/// discarded against a per-stream watermark).
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message; wakes the owner if it is blocked in take().
  /// `front` enqueues at the head instead of the tail — the fault plans'
  /// physical-reorder injection (delivery order is unaffected for
  /// sequenced messages, which is the property the harness verifies).
  void put(Message msg, bool front = false);

  /// Blocks until a message matching (context, source, tag) is available
  /// and removes it.  Source and tag may be wildcards
  /// (kAnySource/kAnyTag); the context is always exact.  Throws AbortError
  /// if the runtime is aborted, and PeerLostError if a rank of the machine
  /// exited, while waiting.
  Message take(std::int64_t context, int source, int tag);

  /// Bounded-wait take: like take(), but gives up and returns std::nullopt
  /// after `timeout_s` seconds of real time without a match.  Comm layers
  /// retry/backoff (RecvDeadline) on top of this primitive.
  std::optional<Message> take_for(std::int64_t context, int source, int tag,
                                  double timeout_s);

  /// Non-blocking take; std::nullopt when no queued message matches.
  std::optional<Message> try_take(std::int64_t context, int source, int tag);

  /// Non-blocking take restricted to messages whose modelled arrival time
  /// is <= `arrival_cutoff` — "has this message arrived yet on the virtual
  /// timeline?".  Non-overtaking is preserved: a message is only eligible
  /// if no older (lower-sequence) message of its own (context, source,
  /// tag) stream is still queued.
  std::optional<Message> try_take_due(std::int64_t context, int source,
                                      int tag, double arrival_cutoff);

  /// True when a message matching the pattern is queued (MPI_Iprobe).
  /// Stale duplicates are purged first so probe never reports a message
  /// take would refuse to deliver.
  [[nodiscard]] bool probe(std::int64_t context, int source, int tag);

  /// Number of queued (unmatched) messages; primarily for tests.
  [[nodiscard]] std::size_t pending() const;

  /// Duplicate deliveries discarded by sequence-number suppression.
  [[nodiscard]] std::uint64_t duplicates_suppressed() const;

  /// Puts the mailbox into the aborted state: all current and future
  /// blocking takes throw AbortError.  Used for fail-fast teardown when a
  /// sibling rank throws.
  void abort();

  /// Records that global rank `global_rank` has exited.  Receives that
  /// find no matching message then throw PeerLostError instead of
  /// blocking forever on a sender that will never send; already-queued
  /// messages remain deliverable.
  void notify_peer_lost(int global_rank);

  /// Restricts which lost peers poison this mailbox's receives.  With a
  /// scope installed, only exits of the listed *global* ranks make empty
  /// receives throw PeerLostError; exits of out-of-scope ranks are ignored
  /// (their loss is some other communicator's problem).  std::nullopt — the
  /// default — restores the machine-wide behaviour: any lost rank poisons
  /// every blocked receive.  The service layer scopes each stream's merges
  /// to the stream's own shard group so one dead tenant cannot take down
  /// the others.
  void set_peer_loss_scope(std::optional<std::vector<int>> global_ranks);

  /// Snapshot of the global ranks known to have exited (regardless of the
  /// installed scope).  The service layer reads this after catching
  /// PeerLostError to learn *which* shard died.
  [[nodiscard]] std::vector<int> lost_peers() const;

  // -- Model-checking hooks (ISSUE 7) ---------------------------------------

  /// Installs the run's starvation monitor: blocking takes then detect
  /// global deadlock and throw DeadlockError instead of hanging.  Set once
  /// before the rank threads start; nullptr (the default) keeps the
  /// untimed legacy waits.
  void set_starvation_monitor(StarvationMonitor* monitor) {
    monitor_ = monitor;
  }

  /// With deterministic wildcard selection on, a kAnySource take whose
  /// pattern several streams satisfy picks the lowest (source, seq)
  /// candidate instead of the first by physical queue position — removing
  /// the one put-order race wildcard matching otherwise has.  Installed
  /// together with the monitor so verify-mode traces replay exactly.
  void set_deterministic_wildcard(bool on) { deterministic_wildcard_ = on; }

  /// Monotonic count of mailbox events (puts, aborts, peer losses).
  /// Snapshot it *before* a progress pass and hand it to idle_wait so an
  /// arrival during the pass is never slept through.
  [[nodiscard]] std::uint64_t event_count() const;

  /// Parks the owning rank until this mailbox sees an event newer than
  /// `seen_events` — the verify-mode replacement for the progress engine's
  /// yield spin, and a starvation-detection point: throws DeadlockError
  /// when the park completes a global deadlock, AbortError when the
  /// runtime is torn down.  Without a monitor installed it degrades to a
  /// plain yield.
  void idle_wait(std::uint64_t seen_events);

  /// Wakes the owner (if parked) so it re-checks the monitor's starved
  /// flag.  Called by a *finishing* rank that detected starvation; the
  /// caller must not hold this mailbox's lock.
  void wake_for_starvation();

  // -- Rank virtualization hook (ISSUE 10) -----------------------------------

  /// Installs the owner's park/resume endpoint: blocking waits then
  /// suspend the owning fiber instead of sleeping on the condition
  /// variable, and every event that notifies the condition variable also
  /// wakes the fiber.  Set once before the run's workers start and cleared
  /// after they join; mutually exclusive with the starvation monitor
  /// (oracle-mode runs stay on dedicated threads).
  void set_rank_waiter(RankWaiter* waiter) { waiter_ = waiter; }

 private:
  /// Sender-stream identity; the unit of ordering and deduplication.
  struct StreamKey {
    std::int64_t context;
    int source;
    int tag;
    bool operator==(const StreamKey&) const = default;
  };
  struct StreamKeyHash {
    std::size_t operator()(const StreamKey& k) const {
      std::uint64_t h = static_cast<std::uint64_t>(k.context) * 0x9E3779B97F4A7C15ULL;
      h ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.source)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.tag));
      h *= 0xC2B2AE3D27D4EB4FULL;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };

  /// Index of the oldest eligible message matching the pattern, after
  /// purging already-delivered duplicates; npos when none.  With
  /// `arrival_cutoff`, a stream whose head has not virtually arrived is
  /// skipped entirely (non-overtaking).  Caller holds the lock.
  [[nodiscard]] std::size_t select_locked(std::int64_t context, int source,
                                          int tag,
                                          const double* arrival_cutoff);

  /// Removes index `idx` from the queue, advancing its stream's delivered
  /// watermark.  Caller holds the lock.
  Message remove_locked(std::size_t idx);

  /// Throws if the mailbox is aborted (always) or an in-scope peer is lost
  /// (when the caller found no deliverable message).  Caller holds the lock.
  void throw_if_dead_locked(bool have_match) const;

  /// The first lost peer the current loss scope cares about, or -1.
  /// Caller holds the lock.
  [[nodiscard]] int relevant_lost_locked() const;

  /// Blocking take under an installed starvation monitor: same matching
  /// semantics as take(), plus deadlock detection.  Caller holds the lock.
  Message take_monitored(std::int64_t context, int source, int tag,
                         std::unique_lock<std::mutex>& lock);

  /// Blocks (holding `lock`) until this mailbox sees any event newer than
  /// the caller's last look: fiber park when a RankWaiter is installed,
  /// condition-variable wait otherwise.  Returns with the lock held; the
  /// caller re-checks its predicate.  Throws DeadlockError when the
  /// scheduler has declared a global deadlock.
  void wait_for_event_locked(
      std::unique_lock<std::mutex>& lock,
      const std::chrono::steady_clock::time_point* deadline,
      const char* what);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  StarvationMonitor* monitor_ = nullptr;
  RankWaiter* waiter_ = nullptr;  // virtualized-owner park/resume endpoint
  bool deterministic_wildcard_ = false;
  std::uint64_t events_ = 0;  // bumped on every put/abort/loss, for idle_wait
  std::unordered_map<StreamKey, std::uint64_t, StreamKeyHash> delivered_;
  std::uint64_t duplicates_suppressed_ = 0;
  bool aborted_ = false;
  std::vector<int> lost_peers_;  // global ranks that exited
  std::optional<std::vector<int>> loss_scope_;  // nullopt = every peer
};

}  // namespace rsmpi::mprt
