// Per-rank mailbox: an unbounded MPSC message queue with MPI-style
// (source, tag) matching, wildcard receives, and abort-aware blocking.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "mprt/message.hpp"

namespace rsmpi::mprt {

/// Thread-safe mailbox owned by one rank.  Any rank may `put`; only the
/// owning rank calls `take`/`try_take`/`probe`.  Matching preserves
/// per-(source, tag) FIFO order: `take` always returns the *oldest* queued
/// message that satisfies the pattern, so two same-tag messages from the
/// same sender are received in send order (the MPI non-overtaking rule).
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message; wakes the owner if it is blocked in take().
  void put(Message msg);

  /// Blocks until a message matching (context, source, tag) is available
  /// and removes it.  Source and tag may be wildcards
  /// (kAnySource/kAnyTag); the context is always exact.  Throws AbortError
  /// if the runtime is aborted while waiting.
  Message take(std::int64_t context, int source, int tag);

  /// Non-blocking take; std::nullopt when no queued message matches.
  std::optional<Message> try_take(std::int64_t context, int source, int tag);

  /// Non-blocking take restricted to messages whose modelled arrival time
  /// is <= `arrival_cutoff` — "has this message arrived yet on the virtual
  /// timeline?".  Non-overtaking is preserved: a message is only eligible
  /// if no older message of its own (context, source, tag) stream is still
  /// queued ahead of it.
  std::optional<Message> try_take_due(std::int64_t context, int source,
                                      int tag, double arrival_cutoff);

  /// True when a message matching the pattern is queued (MPI_Iprobe).
  [[nodiscard]] bool probe(std::int64_t context, int source, int tag);

  /// Number of queued (unmatched) messages; primarily for tests.
  [[nodiscard]] std::size_t pending() const;

  /// Puts the mailbox into the aborted state: all current and future
  /// blocking takes throw AbortError.  Used for fail-fast teardown when a
  /// sibling rank throws.
  void abort();

 private:
  /// Index of oldest matching message, or npos.  Caller holds the lock.
  [[nodiscard]] std::size_t find_match(std::int64_t context, int source,
                                       int tag) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool aborted_ = false;
};

}  // namespace rsmpi::mprt
