// Per-rank freelist of payload buffers for the zero-copy message path.
//
// A rank acquires a buffer from its own pool before serializing an
// operator state, the move-based Comm::send_bytes hands the filled buffer
// to the receiver's mailbox without copying, and the *receiver* releases
// the buffer into its own pool once the payload is consumed.  Buffers
// therefore migrate between ranks, but acquire/release are always called
// from the owning rank's thread (the pool lives in RankState, which is
// only touched from that thread), so no locking is needed here — the
// cross-thread handoff is synchronized by the mailbox's mutex.
//
// Segmented schedules (ISSUE 5) circulate many small chunk buffers next
// to occasional whole-state ones, so the pool keeps size-class bins
// (powers of two from 1 KiB to 256 KiB) besides the generic LIFO
// freelist: a segment-sized acquire is served from its own bin instead of
// cannibalizing a pooled whole-state buffer and forcing the next
// whole-state send to reallocate.  Acquire never misses while *anything*
// is pooled — it falls back from the exact bin to larger bins, the
// generic freelist, and finally any nonempty bin — preserving the
// zero-alloc steady state the warm-path tests pin down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rsmpi::mprt {

/// Rank-local freelist of byte buffers, binned by capacity.  Not
/// thread-safe by design; see the header comment for why that is sound.
class BufferPool {
 public:
  /// Upper bound on retained generic (over-256-KiB or unclassed) buffers;
  /// beyond it, released buffers are dropped (freed) so a burst of
  /// traffic cannot pin memory forever.
  static constexpr std::size_t kMaxPooled = 16;
  /// Upper bound on retained buffers per size-class bin.
  static constexpr std::size_t kMaxPerClass = 8;
  /// Size-class c covers capacities in (kClassMinBytes << (c-1),
  /// kClassMinBytes << c]; class 0 covers [0, kClassMinBytes].
  static constexpr std::size_t kClassMinBytes = 1024;
  static constexpr std::size_t kClassMaxBytes = 256 * 1024;
  static constexpr std::size_t kNumClasses = 9;  // 1K, 2K, ..., 256K

  struct Stats {
    std::uint64_t hits = 0;    ///< acquire served from the pool
    std::uint64_t misses = 0;  ///< acquire had to heap-allocate
    std::uint64_t dropped = 0; ///< release discarded (pool full)
    /// Acquires with a known size served from that size's own bin — the
    /// segment-buffer recycling the pipelined/ring schedules rely on.
    /// A subset of `hits`.
    std::uint64_t segments_reused = 0;
  };

  /// Returns an empty buffer with at least `reserve_bytes` of capacity,
  /// reusing a pooled allocation when possible.  LIFO reuse within each
  /// bin keeps the hottest buffer in circulation.
  std::vector<std::byte> acquire(std::size_t reserve_bytes) {
    // Exact bin first: a right-sized buffer, counted as a segment reuse
    // when the caller asked for a definite size.
    const std::size_t cls = class_of(reserve_bytes);
    if (cls < kNumClasses && !bins_[cls].empty()) {
      ++stats_.hits;
      if (reserve_bytes > 0) ++stats_.segments_reused;
      return take_from(bins_[cls], reserve_bytes);
    }
    // Larger bins next (ascending, tightest fit): already big enough.
    for (std::size_t c = cls + 1; c < kNumClasses; ++c) {
      if (!bins_[c].empty()) {
        ++stats_.hits;
        return take_from(bins_[c], reserve_bytes);
      }
    }
    // Generic freelist (whole-state sized buffers live here).
    if (!free_.empty()) {
      ++stats_.hits;
      return take_from(free_, reserve_bytes);
    }
    // Any pooled allocation beats a heap allocation: scan the smaller
    // bins, largest first (reserve will grow the buffer in place).
    for (std::size_t c = cls < kNumClasses ? cls : kNumClasses; c-- > 0;) {
      if (!bins_[c].empty()) {
        ++stats_.hits;
        return take_from(bins_[c], reserve_bytes);
      }
    }
    ++stats_.misses;
    std::vector<std::byte> buf;
    buf.reserve(reserve_bytes);
    return buf;
  }

  /// Returns a buffer to its size-class bin (or the generic freelist for
  /// large buffers) for reuse.  Empty buffers (no allocation to recycle)
  /// and overflow beyond the bin caps are dropped.
  void release(std::vector<std::byte>&& buf) {
    const std::size_t cap = buf.capacity();
    if (cap == 0) return;
    if (cap <= kClassMaxBytes) {
      auto& bin = bins_[class_of(cap)];
      if (bin.size() >= per_class_cap_) {
        ++stats_.dropped;
        return;
      }
      bin.push_back(std::move(buf));
      return;
    }
    if (free_.size() >= generic_cap_) {
      ++stats_.dropped;
      return;
    }
    free_.push_back(std::move(buf));
  }

  /// Raises the retention caps so at least `buffers` released buffers
  /// survive per size-class bin (and in the generic freelist).  A
  /// plan-time knob: wide fan-ins — a 16-member service stream recycles
  /// 15 same-class route buffers back to back every epoch — would
  /// otherwise overflow the default caps and re-allocate each epoch.
  /// Raising a cap changes only how many buffers are *retained*, never
  /// how many are allocated.  Caps never shrink.
  void ensure_retention(std::size_t buffers) {
    if (buffers > per_class_cap_) per_class_cap_ = buffers;
    if (buffers > generic_cap_) generic_cap_ = buffers;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t per_class_cap() const { return per_class_cap_; }
  [[nodiscard]] std::size_t size() const {
    std::size_t n = free_.size();
    for (const auto& bin : bins_) n += bin.size();
    return n;
  }
  void reset_stats() { stats_ = Stats{}; }

 private:
  /// Size class covering `bytes`, or kNumClasses for over-kClassMaxBytes.
  [[nodiscard]] static std::size_t class_of(std::size_t bytes) {
    std::size_t cap = kClassMinBytes;
    std::size_t c = 0;
    while (bytes > cap && c < kNumClasses) {
      cap <<= 1;
      ++c;
    }
    return c;
  }

  static std::vector<std::byte> take_from(
      std::vector<std::vector<std::byte>>& list, std::size_t reserve_bytes) {
    std::vector<std::byte> buf = std::move(list.back());
    list.pop_back();
    buf.clear();
    buf.reserve(reserve_bytes);
    return buf;
  }

  std::vector<std::vector<std::byte>> free_;
  std::vector<std::vector<std::byte>> bins_[kNumClasses];
  std::size_t per_class_cap_ = kMaxPerClass;
  std::size_t generic_cap_ = kMaxPooled;
  Stats stats_;
};

}  // namespace rsmpi::mprt
