// Per-rank freelist of payload buffers for the zero-copy message path.
//
// A rank acquires a buffer from its own pool before serializing an
// operator state, the move-based Comm::send_bytes hands the filled buffer
// to the receiver's mailbox without copying, and the *receiver* releases
// the buffer into its own pool once the payload is consumed.  Buffers
// therefore migrate between ranks, but acquire/release are always called
// from the owning rank's thread (the pool lives in RankState, which is
// only touched from that thread), so no locking is needed here — the
// cross-thread handoff is synchronized by the mailbox's mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rsmpi::mprt {

/// Rank-local LIFO freelist of byte buffers.  Not thread-safe by design;
/// see the header comment for why that is sound.
class BufferPool {
 public:
  /// Upper bound on retained buffers; beyond it, released buffers are
  /// dropped (freed) so a burst of traffic cannot pin memory forever.
  static constexpr std::size_t kMaxPooled = 16;

  struct Stats {
    std::uint64_t hits = 0;    ///< acquire served from the freelist
    std::uint64_t misses = 0;  ///< acquire had to heap-allocate
    std::uint64_t dropped = 0; ///< release discarded (pool full)
  };

  /// Returns an empty buffer with at least `reserve_bytes` of capacity,
  /// reusing a pooled allocation when possible.  LIFO reuse keeps the
  /// hottest (largest, most recently grown) buffer in circulation.
  std::vector<std::byte> acquire(std::size_t reserve_bytes) {
    if (!free_.empty()) {
      std::vector<std::byte> buf = std::move(free_.back());
      free_.pop_back();
      ++stats_.hits;
      buf.clear();
      buf.reserve(reserve_bytes);
      return buf;
    }
    ++stats_.misses;
    std::vector<std::byte> buf;
    buf.reserve(reserve_bytes);
    return buf;
  }

  /// Returns a buffer to the freelist for reuse.  Empty buffers (no
  /// allocation to recycle) and overflow beyond kMaxPooled are dropped.
  void release(std::vector<std::byte>&& buf) {
    if (buf.capacity() == 0) return;
    if (free_.size() >= kMaxPooled) {
      ++stats_.dropped;
      return;
    }
    free_.push_back(std::move(buf));
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return free_.size(); }
  void reset_stats() { stats_ = Stats{}; }

 private:
  std::vector<std::vector<std::byte>> free_;
  Stats stats_;
};

}  // namespace rsmpi::mprt
