#include "mprt/comm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mprt/runtime.hpp"
#include "mprt/scheduler.hpp"

namespace rsmpi::mprt {

namespace {

/// splitmix64 finalizer: mixes (parent context, split sequence, color) into
/// a fresh context id.  All members of a split compute the same inputs, so
/// they agree on the id without communication; distinct (parent, seq,
/// color) triples collide with negligible probability in 63 bits.
std::int64_t derive_context(std::int64_t parent, int split_seq, int color) {
  std::uint64_t z = static_cast<std::uint64_t>(parent) * 0x9E3779B97F4A7C15ULL;
  z ^= static_cast<std::uint64_t>(split_seq) + 0xBF58476D1CE4E5B9ULL +
       (z << 6) + (z >> 2);
  z *= 0x94D049BB133111EBULL;
  z ^= static_cast<std::uint64_t>(color) + 0x2545F4914F6CDD1DULL + (z << 16);
  z ^= z >> 31;
  z *= 0xD6E8FEB86659FD93ULL;
  z ^= z >> 27;
  // Keep it positive and never 0 (the world context).
  const auto ctx = static_cast<std::int64_t>(z >> 1);
  return ctx == 0 ? 1 : ctx;
}

}  // namespace

Comm::Comm(Runtime& runtime, int global_rank)
    : runtime_(runtime),
      state_(&runtime.rank_state(global_rank)),
      global_rank_(global_rank),
      context_(0),
      group_(static_cast<std::size_t>(runtime.size())),
      group_rank_(global_rank) {
  std::iota(group_.begin(), group_.end(), 0);
}

Comm::Comm(Runtime& runtime, int global_rank, std::int64_t context,
           std::vector<int> group, int group_rank)
    : runtime_(runtime),
      state_(&runtime.rank_state(global_rank)),
      global_rank_(global_rank),
      context_(context),
      group_(std::move(group)),
      group_rank_(group_rank) {}

const CostModel& Comm::cost_model() const { return runtime_.cost_model(); }

namespace {

void check_dest(int dest, int size, int self) {
  if (dest < 0 || dest >= size) {
    throw ArgumentError("send_bytes: destination rank " +
                        std::to_string(dest) + " out of range [0, " +
                        std::to_string(size) + ")");
  }
  if (dest == self) {
    throw ArgumentError("send_bytes: self-sends are not supported; "
                        "collectives special-case the local contribution");
  }
}

}  // namespace

void Comm::chaos_pre_send() {
  if (ChaosController* chaos = runtime_.chaos()) {
    // May throw RankKilledError; the skew models this rank computing
    // slower than its peers, shifting every downstream arrival.
    state_->clock.advance(chaos->pre_send(global_rank_));
  }
}

void Comm::deliver(int dest, Message&& msg) {
  msg.seq = state_->next_seq++;
  Mailbox& box = runtime_.mailbox(group_[static_cast<std::size_t>(dest)]);
  ChaosController* chaos = runtime_.chaos();
  if (chaos == nullptr) {
    box.put(std::move(msg));
    return;
  }
  DeliveryFault fault = chaos->on_message(global_rank_);
  msg.arrival_vtime_s += fault.extra_delay_s;
  if (fault.drop) return;
  if (fault.duplicate) {
    Message copy = msg;
    copy.arrival_vtime_s += fault.duplicate_delay_s;
    box.put(std::move(copy));
  }
  box.put(std::move(msg), fault.reorder_front);
}

void Comm::charge_send(int dest_global, std::size_t nbytes) {
  const CostModel& m = cost_model();
  state_->clock.advance(m.send_overhead_between(global_rank_, dest_global));
  if (m.two_tier()) {
    if (m.same_node(global_rank_, dest_global)) {
      state_->intra_node_bytes += nbytes;
    } else {
      state_->inter_node_bytes += nbytes;
    }
  }
}

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> payload) {
  check_dest(dest, size(), group_rank_);
  chaos_pre_send();
  const CostModel& m = cost_model();
  const int dest_global = group_[static_cast<std::size_t>(dest)];
  charge_send(dest_global, payload.size());
  if (payload.size() > Message::kInlineCapacity) {
    // The copy into a fresh heap buffer is the cost the move-based
    // overload exists to avoid; count it, and charge it *before* stamping
    // the arrival time — the payload cannot hit the wire until copied.
    state_->payload_allocs += 1;
    state_->payload_copies += 1;
    state_->clock.advance(static_cast<double>(payload.size()) *
                          m.copy_per_byte_s);
  }

  Message msg;
  msg.context = context_;
  msg.source = group_rank_;
  msg.tag = tag;
  msg.arrival_vtime_s =
      state_->clock.now() +
      m.wire_time_between(global_rank_, dest_global, payload.size());
  if (msg.assign_payload(payload)) {
    state_->sends_inline += 1;
  }

  state_->sent_count += 1;
  state_->sent_bytes += payload.size();
  deliver(dest, std::move(msg));
}

void Comm::send_bytes(int dest, int tag, std::vector<std::byte>&& payload) {
  check_dest(dest, size(), group_rank_);
  chaos_pre_send();
  const int dest_global = group_[static_cast<std::size_t>(dest)];
  charge_send(dest_global, payload.size());

  Message msg;
  msg.context = context_;
  msg.source = group_rank_;
  msg.tag = tag;
  msg.arrival_vtime_s =
      state_->clock.now() +
      cost_model().wire_time_between(global_rank_, dest_global,
                                     payload.size());
  const std::size_t nbytes = payload.size();
  std::vector<std::byte> leftover = msg.adopt_payload(std::move(payload));
  if (nbytes <= Message::kInlineCapacity) {
    state_->sends_inline += 1;
    // The caller's buffer was not adopted; keep its capacity in our pool.
    state_->pool.release(std::move(leftover));
  } else {
    state_->sends_moved += 1;
  }

  state_->sent_count += 1;
  state_->sent_bytes += nbytes;
  deliver(dest, std::move(msg));
}

std::vector<std::byte> Comm::acquire_buffer(std::size_t reserve_bytes) {
  const std::uint64_t misses_before = state_->pool.stats().misses;
  std::vector<std::byte> buf = state_->pool.acquire(reserve_bytes);
  if (state_->pool.stats().misses != misses_before) {
    state_->payload_allocs += 1;
  }
  return buf;
}

Message Comm::take_blocking(int source, int tag) {
  Mailbox& box = runtime_.mailbox(global_rank_);
  const std::optional<RecvDeadline>& deadline = state_->recv_deadline;
  if (!deadline.has_value()) return box.take(context_, source, tag);

  // Wait in slices that grow by the backoff factor and sum to the total
  // budget: slice0 * (1 + b + b^2 + ...) = timeout.  Expiring slices are
  // counted so tests can see the retries happen.
  const int retries = std::max(1, deadline->retries);
  const double b = std::max(1.0, deadline->backoff);
  double slice = b == 1.0 ? deadline->timeout_s / retries
                          : deadline->timeout_s * (b - 1.0) /
                                (std::pow(b, retries) - 1.0);
  for (int attempt = 0; attempt < retries; ++attempt) {
    auto msg = box.take_for(context_, source, tag, slice);
    if (msg.has_value()) return std::move(*msg);
    state_->recv_retry_count += 1;
    slice *= b;
  }
  throw TimeoutError(
      "recv: no message from " +
      (source == kAnySource ? std::string("any source")
                            : "rank " + std::to_string(source)) +
      (tag == kAnyTag ? std::string(", any tag")
                      : ", tag " + std::to_string(tag)) +
      " within " + std::to_string(deadline->timeout_s) + "s (" +
      std::to_string(retries) + " backoff slices); message dropped or "
      "sender stalled");
}

Message Comm::recv_message(int source, int tag) {
  if (source != kAnySource && (source < 0 || source >= size())) {
    throw ArgumentError("recv_message: source rank " + std::to_string(source) +
                        " out of range [0, " + std::to_string(size()) + ")");
  }
  Message msg = take_blocking(source, tag);
  state_->clock.merge(msg.arrival_vtime_s);
  state_->clock.advance(recv_overhead_from(msg.source));
  state_->recv_count += 1;
  state_->recv_bytes += msg.payload_size();
  return msg;
}

double Comm::recv_overhead_from(int source_group_rank) const {
  // The message stamps its sender's group rank; resolve to a global rank so
  // the tier decision matches the sender's (both key on global ranks).
  if (source_group_rank < 0 || source_group_rank >= size()) {
    return cost_model().recv_overhead_s;
  }
  return cost_model().recv_overhead_between(
      global_rank_, group_[static_cast<std::size_t>(source_group_rank)]);
}

std::uint64_t Comm::duplicates_suppressed() const {
  return runtime_.mailbox(global_rank_).duplicates_suppressed();
}

SimStats Comm::sim_stats() const {
  if (ChaosController* chaos = runtime_.chaos()) return chaos->stats();
  return SimStats{};
}

std::uint64_t Comm::virtual_workers() const {
  if (VirtualScheduler* sched = runtime_.scheduler()) {
    return static_cast<std::uint64_t>(sched->workers());
  }
  return 0;
}

std::uint64_t Comm::parked_ranks() const {
  if (VirtualScheduler* sched = runtime_.scheduler()) {
    return static_cast<std::uint64_t>(sched->peak_parked());
  }
  return 0;
}

std::uint64_t Comm::park_events() const {
  if (VirtualScheduler* sched = runtime_.scheduler()) {
    return sched->park_events();
  }
  return 0;
}

ScheduleOracle* Comm::schedule_oracle() const {
  if (ChaosController* chaos = runtime_.chaos()) return chaos->oracle();
  return nullptr;
}

std::uint64_t Comm::mail_events() const {
  return runtime_.mailbox(global_rank_).event_count();
}

void Comm::idle_wait(std::uint64_t seen_events) {
  runtime_.mailbox(global_rank_).idle_wait(seen_events);
}

void Comm::set_peer_loss_scope(std::optional<std::vector<int>> global_ranks) {
  runtime_.mailbox(global_rank_).set_peer_loss_scope(std::move(global_ranks));
}

std::vector<int> Comm::lost_peers() const {
  return runtime_.mailbox(global_rank_).lost_peers();
}

bool Comm::probe(int source, int tag) {
  return runtime_.mailbox(global_rank_).probe(context_, source, tag);
}

std::optional<Message> Comm::try_recv_message(int source, int tag) {
  if (source != kAnySource && (source < 0 || source >= size())) {
    throw ArgumentError("try_recv_message: source rank " +
                        std::to_string(source) + " out of range [0, " +
                        std::to_string(size()) + ")");
  }
  auto msg = runtime_.mailbox(global_rank_).try_take(context_, source, tag);
  if (msg.has_value()) {
    state_->clock.merge(msg->arrival_vtime_s);
    state_->clock.advance(recv_overhead_from(msg->source));
    state_->recv_count += 1;
    state_->recv_bytes += msg->payload_size();
  }
  return msg;
}

std::optional<Message> Comm::try_recv_due(int source, int tag) {
  if (source != kAnySource && (source < 0 || source >= size())) {
    throw ArgumentError("try_recv_due: source rank " + std::to_string(source) +
                        " out of range [0, " + std::to_string(size()) + ")");
  }
  auto msg = runtime_.mailbox(global_rank_).try_take_due(
      context_, source, tag, state_->clock.now());
  if (msg.has_value()) {
    // arrival <= now by construction, so the merge is a no-op; only the
    // receive overhead is charged — this is what makes polling between
    // compute chunks overlap communication with the compute.
    state_->clock.merge(msg->arrival_vtime_s);
    state_->clock.advance(recv_overhead_from(msg->source));
    state_->recv_count += 1;
    state_->recv_bytes += msg->payload_size();
  }
  return msg;
}

Comm Comm::split(int color, int key) {
  if (color < 0) {
    throw ArgumentError("split: color must be non-negative");
  }
  const int p = size();
  const int tag = next_collective_tag();

  // Full exchange of (color, key) within this communicator.  O(p^2)
  // messages, but split is a rare setup operation and the simple schedule
  // keeps it correct on any group shape.
  struct Entry {
    int color;
    int key;
  };
  const Entry mine{color, key};
  for (int r = 0; r < p; ++r) {
    if (r != group_rank_) send(r, tag, mine);
  }
  // members: (key, parent rank, global rank) of everyone sharing my color.
  struct Member {
    int key;
    int parent_rank;
    int global;
  };
  std::vector<Member> members;
  members.push_back({key, group_rank_, global_rank_});
  for (int r = 0; r < p; ++r) {
    if (r == group_rank_) continue;
    const Entry e = recv<Entry>(r, tag);
    if (e.color == color) {
      members.push_back({e.key, r, group_[static_cast<std::size_t>(r)]});
    }
  }
  std::sort(members.begin(), members.end(),
            [](const Member& a, const Member& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.parent_rank < b.parent_rank;
            });

  std::vector<int> new_group;
  new_group.reserve(members.size());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    new_group.push_back(members[i].global);
    if (members[i].global == global_rank_) {
      my_new_rank = static_cast<int>(i);
    }
  }

  const std::int64_t ctx = derive_context(context_, split_seq_, color);
  ++split_seq_;
  return Comm(runtime_, global_rank_, ctx, std::move(new_group), my_new_rank);
}

}  // namespace rsmpi::mprt
