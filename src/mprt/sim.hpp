// Deterministic fault-injection for the virtual machine (ISSUE 4).
//
// A SimConfig describes a *fault plan*: probabilities for delaying,
// reordering, duplicating, and dropping messages at the mailbox boundary,
// a per-send compute-skew amplitude, and an optional kill point (rank +
// send count) that terminates a rank mid-collective.  The plan is driven
// by a counter-based PRNG seeded per rank, so every decision depends only
// on (seed, rank, that rank's event count) — never on thread scheduling —
// and any run is replayable bit-for-bit from its seed.
//
// The controller lives on the Runtime and is consulted from each rank's
// own thread on its send path; the per-rank streams need no locking.
// Statistics are atomics because tests read them after the join.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace rsmpi::mprt {

/// splitmix64 finalizer: the mixing function behind every deterministic
/// stream in the simulator (fault decisions, property-test case derivation).
inline std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Minimal deterministic PRNG over splitmix64.  Value-type, copyable, and
/// independent of the standard library's unspecified distributions, so a
/// seed reproduces the same run on every platform.
class SimRng {
 public:
  explicit SimRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() { return splitmix64(state_++); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n); n must be positive.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

/// What the chaos layer decided to do with one message.
struct DeliveryFault {
  bool drop = false;
  bool duplicate = false;
  bool reorder_front = false;
  double extra_delay_s = 0.0;      ///< added to the message's arrival time
  double duplicate_delay_s = 0.0;  ///< additionally added to the copy
};

/// Decision procedure driving one *dictated* execution of the virtual
/// machine — the model checker's hook into the chaos layer (ISSUE 7).
///
/// With an oracle installed through SimConfig, every probabilistic draw of
/// the chaos layer is replaced by a consulted decision: message faults and
/// kill points come from message_fault/kill_before_send (keyed by the
/// sending rank's own event counters, so decisions are independent of
/// thread scheduling, exactly like the seeded streams they replace), and
/// the instrumented collectives (rs/state_exchange.hpp) branch their
/// arrival-order choices through choose().  A driver (src/verify) records
/// the choices of one run, then systematically re-runs with forced
/// prefixes to enumerate the whole decision tree.
///
/// Implementations are called concurrently from rank threads; each rank's
/// calls are sequential, so per-rank slots need no locking.
class ScheduleOracle {
 public:
  virtual ~ScheduleOracle() = default;

  /// Picks one of `alternatives` (>= 2) outcomes at `rank`'s next choice
  /// point.  Must return a value in [0, alternatives).
  virtual int choose(int rank, int alternatives) = 0;

  /// Reports `orders` combine orders proven byte-equivalent (and therefore
  /// not branched on) at a choice site — the DPOR-style pruning counter.
  virtual void note_pruned(int rank, std::uint64_t orders) = 0;

  /// Fault dictated for the `index`-th message `rank` delivers (0-based).
  virtual DeliveryFault message_fault(int rank, std::uint64_t index) = 0;

  /// True when `rank` must die instead of performing its `index`-th send
  /// (index counts completed sends, so 0 kills before any send).
  virtual bool kill_before_send(int rank, std::uint64_t index) = 0;
};

/// One run's fault plan.  All probabilities are per message (or per send
/// for the skew); a default-constructed config injects nothing and the
/// runtime then skips the chaos layer entirely.
struct SimConfig {
  std::uint64_t seed = 0;

  // -- Message faults (applied at the destination mailbox boundary) -------
  double delay_prob = 0.0;        ///< chance of extra wire delay
  double max_extra_delay_s = 0.0; ///< uniform extra delay in [0, max)
  double duplicate_prob = 0.0;    ///< chance the message is enqueued twice
  double drop_prob = 0.0;         ///< chance the message never arrives
  double reorder_prob = 0.0;      ///< chance of queue-front insertion

  // -- Compute faults ------------------------------------------------------
  /// Per-send clock jitter in [0, max): models ranks computing at skewed
  /// speeds, which shifts every schedule's arrival pattern.
  double max_compute_skew_s = 0.0;

  // -- Kill ----------------------------------------------------------------
  /// Rank to kill (-1 for none): its `kill_after_sends`-th send throws
  /// RankKilledError inside the rank body.
  int kill_rank = -1;
  std::uint64_t kill_after_sends = 0;

  // -- Model checking ------------------------------------------------------
  /// When set, chaos decisions are *dictated* by the oracle instead of
  /// drawn from the seeded streams, and the probabilistic fields above are
  /// ignored.  Non-owning: the oracle must outlive the run.
  ScheduleOracle* oracle = nullptr;

  [[nodiscard]] bool enabled() const {
    return delay_prob > 0.0 || duplicate_prob > 0.0 || drop_prob > 0.0 ||
           reorder_prob > 0.0 || max_compute_skew_s > 0.0 || kill_rank >= 0 ||
           oracle != nullptr;
  }

  /// One-line human description, printed in failure messages so a seed's
  /// plan is visible without re-deriving it.
  [[nodiscard]] std::string describe() const;
};

/// Aggregate fault counts for one run; snapshot carried on RunResult.
struct SimStats {
  std::uint64_t delivered = 0;   ///< messages enqueued normally
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  std::uint64_t skew_events = 0;
  bool rank_killed = false;
};

/// Per-run fault driver.  pre_send/on_message are called from the sending
/// rank's thread only; each rank owns an independent decision stream.
class ChaosController {
 public:
  ChaosController(const SimConfig& config, int num_ranks);
  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;
  ~ChaosController();

  [[nodiscard]] const SimConfig& config() const { return config_; }

  /// The dictating oracle, or nullptr for seeded-probabilistic chaos.
  [[nodiscard]] ScheduleOracle* oracle() const { return config_.oracle; }

  /// Called at the top of every send on `rank`.  Returns the compute skew
  /// to charge to the rank's clock; throws RankKilledError when the rank's
  /// kill point is reached.
  double pre_send(int rank);

  /// Fault decision for the message `rank` is about to deliver.
  DeliveryFault on_message(int rank);

  /// Aggregated statistics (safe to read after the ranks have joined, or
  /// concurrently for monitoring).
  [[nodiscard]] SimStats stats() const;

 private:
  struct PerRank;

  SimConfig config_;
  PerRank* ranks_;  // one slot per rank, touched only by that rank's thread
  int num_ranks_;

  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> duplicated_{0};
  std::atomic<std::uint64_t> delayed_{0};
  std::atomic<std::uint64_t> reordered_{0};
  std::atomic<std::uint64_t> skew_events_{0};
  std::atomic<bool> rank_killed_{false};
};

}  // namespace rsmpi::mprt
