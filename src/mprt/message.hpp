// In-flight message representation for the rsmpi runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rsmpi::mprt {

/// Wildcards for receive matching, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// One message in flight between two ranks.
///
/// `context` identifies the communicator the message was sent on (MPI's
/// communicator-context mechanism): receives only ever match messages of
/// their own communicator, so point-to-point traffic and collectives on a
/// subcommunicator can never be confused with the parent's.  `source` is
/// the sender's rank *within that communicator*.  `arrival_vtime_s` is the
/// virtual time at which the payload becomes available at the receiver
/// (sender clock at send + modelled wire time); the receiver merges it
/// into its own clock on matching.
struct Message {
  std::int64_t context = 0;
  int source = 0;
  int tag = 0;
  double arrival_vtime_s = 0.0;
  std::vector<std::byte> payload;
};

}  // namespace rsmpi::mprt
