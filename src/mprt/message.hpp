// In-flight message representation for the rsmpi runtime.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

namespace rsmpi::mprt {

/// Wildcards for receive matching, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// One message in flight between two ranks.
///
/// `context` identifies the communicator the message was sent on (MPI's
/// communicator-context mechanism): receives only ever match messages of
/// their own communicator, so point-to-point traffic and collectives on a
/// subcommunicator can never be confused with the parent's.  `source` is
/// the sender's rank *within that communicator*.  `arrival_vtime_s` is the
/// virtual time at which the payload becomes available at the receiver
/// (sender clock at send + modelled wire time); the receiver merges it
/// into its own clock on matching.
///
/// Payload storage has two representations: payloads up to
/// kInlineCapacity bytes live inside the Message itself (no heap
/// allocation on either side — the common case for small trivially
/// copyable operator states like mink<double>), larger ones live in a
/// heap buffer that can be *adopted* from the sender without copying and
/// *released* by the receiver into its buffer pool for reuse.
class Message {
 public:
  /// Payloads at or below this size are stored inline (allocation-free).
  static constexpr std::size_t kInlineCapacity = 64;

  std::int64_t context = 0;
  int source = 0;
  int tag = 0;
  double arrival_vtime_s = 0.0;
  /// Per-sender sequence number (strictly increasing along every
  /// (context, source, tag) stream because a rank's sends are sequential).
  /// The mailbox orders same-stream receives by it and suppresses
  /// duplicates against a per-stream watermark, so physically reordered or
  /// duplicated deliveries — injected by a fault plan, or arising from the
  /// async engine's replay — are invisible above the mailbox.  0 means
  /// "unsequenced" (messages built directly in tests): those keep the
  /// legacy queue-position order and bypass duplicate suppression.
  std::uint64_t seq = 0;

  Message() = default;

  /// Copies `data` in: inline when it fits, otherwise into a fresh heap
  /// buffer.  Returns true when the payload was stored inline.
  bool assign_payload(std::span<const std::byte> data) {
    if (data.size() <= kInlineCapacity) {
      inline_size_ = data.size();
      if (!data.empty()) {
        std::memcpy(inline_buf_.data(), data.data(), data.size());
      }
      heap_.clear();
      return true;
    }
    inline_size_ = npos;
    heap_.assign(data.begin(), data.end());
    return false;
  }

  /// Takes ownership of an already-filled buffer without copying.  Small
  /// payloads are still demoted to inline storage so the (possibly pooled)
  /// buffer can be handed back to the caller for reuse; the return value
  /// is the buffer if it was not adopted, empty otherwise.
  std::vector<std::byte> adopt_payload(std::vector<std::byte>&& data) {
    if (data.size() <= kInlineCapacity) {
      inline_size_ = data.size();
      if (!data.empty()) {
        std::memcpy(inline_buf_.data(), data.data(), data.size());
      }
      heap_.clear();
      return std::move(data);  // caller may recycle it
    }
    inline_size_ = npos;
    heap_ = std::move(data);
    return {};
  }

  /// Read-only view of the payload, wherever it lives.
  [[nodiscard]] std::span<const std::byte> payload() const {
    if (inline_size_ != npos) {
      return std::span<const std::byte>(inline_buf_.data(), inline_size_);
    }
    return heap_;
  }

  [[nodiscard]] std::size_t payload_size() const {
    return inline_size_ != npos ? inline_size_ : heap_.size();
  }

  /// True when the payload is stored inside the Message (no heap buffer).
  [[nodiscard]] bool payload_inline() const { return inline_size_ != npos; }

  /// Moves the payload out as an owning vector.  Inline payloads are
  /// copied into a fresh vector (they are at most kInlineCapacity bytes);
  /// heap payloads are moved without copying.
  [[nodiscard]] std::vector<std::byte> take_payload() {
    if (inline_size_ != npos) {
      std::vector<std::byte> out(inline_buf_.begin(),
                                 inline_buf_.begin() +
                                     static_cast<std::ptrdiff_t>(inline_size_));
      inline_size_ = 0;
      return out;
    }
    return std::move(heap_);
  }

  /// Relinquishes the heap buffer (empty for inline payloads) so the
  /// receiver can recycle it through its buffer pool once the payload has
  /// been consumed.  The message must not be read afterwards.
  [[nodiscard]] std::vector<std::byte> release_storage() {
    if (inline_size_ != npos) return {};
    return std::move(heap_);
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // inline_size_ == npos means "payload lives in heap_".
  std::size_t inline_size_ = 0;
  std::array<std::byte, kInlineCapacity> inline_buf_;
  std::vector<std::byte> heap_;
};

}  // namespace rsmpi::mprt
