#include "mprt/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "mprt/fiber.hpp"
#include "util/error.hpp"

namespace rsmpi::mprt {

namespace {

// Park-gate states; see the protocol walkthrough in scheduler.hpp.
constexpr int kGateIdle = 0;
constexpr int kGateNotified = 1;
constexpr int kGateParked = 2;

}  // namespace

struct VirtualScheduler::Impl {
  using Clock = std::chrono::steady_clock;

  struct VFiber {
    int rank = -1;
    std::unique_ptr<Fiber> fiber;
    std::atomic<int> gate{kGateIdle};
    /// Bumped (under `mu`) every time the fiber is taken off the ready
    /// queue; a timer whose recorded generation no longer matches belongs
    /// to an earlier, already-woken park and is discarded unfired.
    std::uint64_t timer_gen = 0;
    bool want_park = false;  // set by the fiber just before suspending
    const Clock::time_point* park_deadline = nullptr;
    FiberSlot slot;
  };

  class Waiter : public RankWaiter {
   public:
    Impl* impl = nullptr;
    VFiber* f = nullptr;
    void park(std::unique_lock<std::mutex>& lock,
              const Clock::time_point* deadline) override {
      impl->park(f, lock, deadline);
    }
    void wake() override { impl->wake(f); }
    [[nodiscard]] bool deadlock_declared() const override {
      return impl->deadlocked.load(std::memory_order_acquire);
    }
  };

  struct Timer {
    Clock::time_point due;
    VFiber* f = nullptr;
    std::uint64_t gen = 0;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.due > b.due;
    }
  };

  int nworkers = 1;
  std::size_t stack_bytes = Fiber::kDefaultStackBytes;
  std::vector<std::unique_ptr<VFiber>> fibers;
  std::vector<Waiter> waiters;

  std::mutex mu;
  std::condition_variable cv;  // workers sleep here when nothing is ready
  std::deque<VFiber*> ready;
  std::vector<Timer> timers;  // min-heap by `due` via std::*_heap
  int live = 0;               // fibers whose body has not finished
  int running = 0;            // fibers currently on a worker
  int parked_now = 0;         // fibers whose park CAS completed
  int peak_parked = 0;
  std::atomic<bool> deadlocked{false};
  std::atomic<std::uint64_t> park_count{0};

  void park(VFiber* f, std::unique_lock<std::mutex>& owner_lock,
            const Clock::time_point* deadline) {
    f->want_park = true;
    f->park_deadline = deadline;
    owner_lock.unlock();
    f->fiber->suspend();
    // Resumed (possibly on a different worker).  Reset the gate before the
    // caller re-checks its predicate: a wake issued after this store finds
    // the gate idle and relies on that predicate re-check instead.
    f->gate.store(kGateIdle);
    owner_lock.lock();
  }

  void wake(VFiber* f) {
    const int prev = f->gate.exchange(kGateNotified);
    if (prev == kGateParked) {
      // Exactly one waker can observe kParked (exchange is atomic), so the
      // requeue is single-entry.
      {
        std::lock_guard lk(mu);
        --parked_now;
        ready.push_back(f);
      }
      cv.notify_one();
    }
  }

  /// Wakes every live fiber after setting the sticky deadlocked flag; the
  /// resumed fibers' mailbox wait loops throw DeadlockError.  Caller holds
  /// `mu`.
  void declare_deadlock_locked() {
    deadlocked.store(true, std::memory_order_release);
    for (auto& up : fibers) {
      VFiber* f = up.get();
      if (f->fiber == nullptr || f->fiber->finished()) continue;
      const int prev = f->gate.exchange(kGateNotified);
      if (prev == kGateParked) {
        --parked_now;
        ready.push_back(f);
      }
    }
    cv.notify_all();
  }

  void worker_main() {
    std::unique_lock lock(mu);
    for (;;) {
      if (!timers.empty()) {
        const auto now = Clock::now();
        while (!timers.empty() && timers.front().due <= now) {
          std::pop_heap(timers.begin(), timers.end(), TimerLater{});
          const Timer t = timers.back();
          timers.pop_back();
          if (t.gen != t.f->timer_gen) continue;  // stale: already woken
          // wake(), inlined because `mu` is already held.
          const int prev = t.f->gate.exchange(kGateNotified);
          if (prev == kGateParked) {
            --parked_now;
            ready.push_back(t.f);
          }
        }
      }
      if (ready.empty()) {
        if (live == 0) {
          cv.notify_all();  // release siblings blocked in cv.wait
          return;
        }
        bool timers_alive = false;
        for (const Timer& t : timers) {
          timers_alive = timers_alive || (t.gen == t.f->timer_gen);
        }
        if (running == 0 && !timers_alive) {
          // Nothing runs, nothing is ready, no timed park is pending, yet
          // fibers are alive: every one of them is fully parked and only
          // fibers send — no wake can ever arrive.  Exact deadlock.
          declare_deadlock_locked();
          continue;
        }
        if (timers.empty()) {
          cv.wait(lock);
        } else {
          cv.wait_until(lock, timers.front().due);
        }
        continue;
      }

      VFiber* f = ready.front();
      ready.pop_front();
      ++running;
      ++f->timer_gen;
      lock.unlock();

      t_current_fiber = f;
      f->fiber->resume();
      t_current_fiber = nullptr;

      lock.lock();
      --running;
      if (f->fiber->finished()) {
        --live;
        if (live == 0) cv.notify_all();
        continue;
      }
      if (!f->want_park) {
        ready.push_back(f);  // cooperative yield (no caller today)
        continue;
      }
      f->want_park = false;
      const Clock::time_point* deadline = f->park_deadline;
      f->park_deadline = nullptr;
      int expected = kGateIdle;
      if (f->gate.compare_exchange_strong(expected, kGateParked)) {
        ++parked_now;
        if (parked_now > peak_parked) peak_parked = parked_now;
        park_count.fetch_add(1, std::memory_order_relaxed);
        if (deadline != nullptr) {
          // The deadline points into the suspended fiber's stack frame —
          // alive until the fiber resumes, which requires this timer (or a
          // wake) to fire first.
          timers.push_back({*deadline, f, f->timer_gen});
          std::push_heap(timers.begin(), timers.end(), TimerLater{});
          cv.notify_all();  // sleepers may hold a stale (later) wait deadline
        }
      } else {
        // A wake landed while the fiber was switching out: it is runnable
        // again right now.
        f->gate.store(kGateIdle);
        ready.push_back(f);
        cv.notify_one();
      }
    }
  }

  static thread_local VFiber* t_current_fiber;
};

thread_local VirtualScheduler::Impl::VFiber*
    VirtualScheduler::Impl::t_current_fiber = nullptr;

FiberSlot* current_fiber_slot() {
  auto* f = VirtualScheduler::Impl::t_current_fiber;
  return f == nullptr ? nullptr : &f->slot;
}

int VirtualScheduler::workers_from_env() {
  const char* raw = std::getenv("RSMPI_WORKERS");
  if (raw == nullptr || *raw == '\0') return 0;
  const long v = std::strtol(raw, nullptr, 10);
  if (v < 0) return 0;
  return static_cast<int>(std::min(v, 1024L));
}

std::size_t VirtualScheduler::default_stack_bytes() {
  const char* raw = std::getenv("RSMPI_STACK_BYTES");
  if (raw == nullptr || *raw == '\0') return Fiber::kDefaultStackBytes;
  const unsigned long long v = std::strtoull(raw, nullptr, 10);
  return v == 0 ? Fiber::kDefaultStackBytes : static_cast<std::size_t>(v);
}

VirtualScheduler::VirtualScheduler(int num_ranks, int workers,
                                   std::size_t stack_bytes)
    : impl_(std::make_unique<Impl>()) {
  if (num_ranks < 1) {
    throw ArgumentError("VirtualScheduler: need at least one rank");
  }
  impl_->nworkers = std::max(1, workers);
  impl_->stack_bytes =
      stack_bytes == 0 ? default_stack_bytes() : stack_bytes;
  impl_->fibers.reserve(static_cast<std::size_t>(num_ranks));
  impl_->waiters.resize(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    auto f = std::make_unique<Impl::VFiber>();
    f->rank = r;
    f->slot.rank = r;
    impl_->waiters[static_cast<std::size_t>(r)].impl = impl_.get();
    impl_->waiters[static_cast<std::size_t>(r)].f = f.get();
    impl_->fibers.push_back(std::move(f));
  }
}

VirtualScheduler::~VirtualScheduler() = default;

int VirtualScheduler::workers() const { return impl_->nworkers; }

RankWaiter& VirtualScheduler::waiter(int rank) {
  return impl_->waiters[static_cast<std::size_t>(rank)];
}

void VirtualScheduler::run(const std::function<void(int)>& rank_body) {
  Impl& s = *impl_;
  {
    std::lock_guard lk(s.mu);
    for (auto& up : s.fibers) {
      Impl::VFiber* f = up.get();
      f->fiber = std::make_unique<Fiber>(
          s.stack_bytes, [f, &rank_body] { rank_body(f->rank); });
      s.ready.push_back(f);
    }
    s.live = static_cast<int>(s.fibers.size());
  }
  const int n =
      std::min(s.nworkers, static_cast<int>(s.fibers.size()));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers.emplace_back([&s] { s.worker_main(); });
  }
  for (auto& t : workers) t.join();
}

std::uint64_t VirtualScheduler::park_events() const {
  return impl_->park_count.load(std::memory_order_relaxed);
}

int VirtualScheduler::peak_parked() const {
  std::lock_guard lk(impl_->mu);
  return impl_->peak_parked;
}

bool VirtualScheduler::deadlock_declared() const {
  return impl_->deadlocked.load(std::memory_order_acquire);
}

}  // namespace rsmpi::mprt
