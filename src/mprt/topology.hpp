// Rank-topology arithmetic shared by the collective algorithms.
//
// The collectives in src/coll are expressed over three virtual topologies:
// binomial trees (reduce, bcast), hypercube/recursive-doubling pairings
// (allreduce, scan), and dissemination rings (barrier).  The functions here
// keep that index arithmetic in one tested place.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace rsmpi::mprt::topology {

/// Smallest power of two >= n (n >= 1).  std::bit_ceil instead of a shift
/// loop: for n above 2^30 the doubling `p <<= 1` would overflow int before
/// the comparison terminates (UB), and virtualized runs push p into ranges
/// where that ceiling is in sight.
[[nodiscard]] constexpr int ceil_pow2(int n) {
  return static_cast<int>(std::bit_ceil(static_cast<unsigned>(n < 1 ? 1 : n)));
}

/// floor(log2(n)) for n >= 1.
[[nodiscard]] constexpr int floor_log2(int n) {
  return std::bit_width(static_cast<unsigned>(n)) - 1;
}

/// Number of rounds of a dissemination/recursive-doubling schedule over n
/// ranks: ceil(log2(n)), and 0 for a single rank.  The stride is 64-bit so
/// the final doubling cannot overflow for any int n.
[[nodiscard]] constexpr int num_rounds(int n) {
  int rounds = 0;
  for (std::int64_t d = 1; d < n; d <<= 1) ++rounds;
  return rounds;
}

/// Binomial reduce tree rooted at rank 0, preserving rank order: in round
/// k (k = 0, 1, ...), every rank with bit k set sends its partial result to
/// `rank - 2^k` and leaves; a rank with bit k clear receives from
/// `rank + 2^k` if that rank exists and still holds data.
///
/// The key property for non-commutative operators: the partial result held
/// by rank r always covers the *contiguous* rank interval [r, r + extent),
/// and a receive appends the partner's interval on the right, so combines
/// can always be evaluated as (left block) op (right block).
struct BinomialStep {
  enum class Role { kSend, kRecv };
  Role role;
  int partner;
};

/// The schedule of rounds executed by `rank` in a p-rank binomial reduce to
/// rank 0.  A rank's schedule ends with at most one kSend step.
[[nodiscard]] inline std::vector<BinomialStep> binomial_reduce_schedule(
    int rank, int p) {
  std::vector<BinomialStep> steps;
  for (int d = 1; d < p; d <<= 1) {
    if ((rank & d) != 0) {
      steps.push_back({BinomialStep::Role::kSend, rank - d});
      break;
    }
    if (rank + d < p) {
      steps.push_back({BinomialStep::Role::kRecv, rank + d});
    }
  }
  return steps;
}

/// Contiguous rank→node map for two-level (cluster-of-SMPs) schedules
/// (ISSUE 10): node i holds ranks [i·rpn, min((i+1)·rpn, p)), its lowest
/// rank acting as leader.  Contiguity is what keeps hierarchical reduction
/// legal for noncommutative operators — each node's partial covers a
/// contiguous rank interval, so the leader tier combines whole intervals
/// in rank order, exactly like the binomial tree above.
struct NodeMap {
  int p = 1;    ///< total ranks
  int rpn = 1;  ///< ranks per node (last node may be ragged)

  constexpr NodeMap(int num_ranks, int ranks_per_node)
      : p(num_ranks < 1 ? 1 : num_ranks),
        rpn(ranks_per_node < 1 ? 1 : ranks_per_node) {}

  [[nodiscard]] constexpr int num_nodes() const { return (p + rpn - 1) / rpn; }
  [[nodiscard]] constexpr int node_of(int rank) const { return rank / rpn; }
  [[nodiscard]] constexpr int leader_of(int node) const { return node * rpn; }
  [[nodiscard]] constexpr bool is_leader(int rank) const {
    return rank % rpn == 0;
  }
  /// Ranks on `node` (the last node may hold fewer than rpn).
  [[nodiscard]] constexpr int node_size(int node) const {
    const int lo = leader_of(node);
    const int hi = lo + rpn;
    return (hi < p ? hi : p) - lo;
  }
  /// Rank's index within its node, in [0, node_size).
  [[nodiscard]] constexpr int local_rank(int rank) const { return rank % rpn; }
};

/// The mirror schedule for a binomial broadcast from rank 0: the reduce
/// schedule reversed with roles flipped.
[[nodiscard]] inline std::vector<BinomialStep> binomial_bcast_schedule(
    int rank, int p) {
  std::vector<BinomialStep> steps = binomial_reduce_schedule(rank, p);
  std::vector<BinomialStep> out(steps.rbegin(), steps.rend());
  for (auto& s : out) {
    s.role = (s.role == BinomialStep::Role::kSend) ? BinomialStep::Role::kRecv
                                                   : BinomialStep::Role::kSend;
  }
  return out;
}

}  // namespace rsmpi::mprt::topology
