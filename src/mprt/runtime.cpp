#include "mprt/runtime.hpp"

#include <chrono>
#include <exception>
#include <thread>

#include "mprt/scheduler.hpp"
#include "util/error.hpp"

namespace rsmpi::mprt {

namespace {
thread_local Comm* t_current_comm = nullptr;

/// RAII registration of the rank thread's world communicator.
struct CurrentCommGuard {
  explicit CurrentCommGuard(Comm& comm) { t_current_comm = &comm; }
  ~CurrentCommGuard() { t_current_comm = nullptr; }
};
}  // namespace

Comm& this_comm() {
  // Virtualized ranks carry their communicator in the fiber slot — the
  // worker's thread_local would be shared by every rank multiplexed onto it.
  if (FiberSlot* slot = current_fiber_slot()) {
    if (slot->comm != nullptr) return *slot->comm;
  }
  if (t_current_comm == nullptr) {
    throw Error("this_comm: no rank is active on this thread (only valid "
                "inside a run() body)");
  }
  return *t_current_comm;
}

Runtime::Runtime(int num_ranks, CostModel model, SimConfig sim)
    : model_(model) {
  if (num_ranks < 1) {
    throw ArgumentError("Runtime: need at least one rank, got " +
                        std::to_string(num_ranks));
  }
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  states_.resize(static_cast<std::size_t>(num_ranks));
  if (sim.enabled()) {
    chaos_ = std::make_unique<ChaosController>(sim, num_ranks);
  }
  if (sim.oracle != nullptr) {
    // Model-checking mode: liveness is checked structurally (starvation
    // monitor) and wildcard matching is made canonical so a recorded
    // decision string replays the identical execution.
    monitor_ = std::make_unique<StarvationMonitor>(num_ranks);
    for (auto& mb : mailboxes_) {
      mb->set_starvation_monitor(monitor_.get());
      mb->set_deterministic_wildcard(true);
    }
  }
}

Mailbox& Runtime::mailbox(int global_rank) {
  return *mailboxes_[static_cast<std::size_t>(global_rank)];
}

RankState& Runtime::rank_state(int global_rank) {
  return states_[static_cast<std::size_t>(global_rank)];
}

void Runtime::abort_all() {
  for (auto& mb : mailboxes_) mb->abort();
}

void Runtime::notify_peer_lost(int global_rank) {
  for (auto& mb : mailboxes_) mb->notify_peer_lost(global_rank);
}

void Runtime::note_rank_finished(int global_rank) {
  (void)global_rank;
  if (!monitor_) return;
  monitor_->note_finished();
  // This exit may have left every remaining rank blocked — and with no
  // further enter_blocked transition, no waiter would ever confirm the
  // deadlock.  The finishing thread is the witness: wait out the
  // confirmation window, declare, and wake the sleepers (it holds no
  // mailbox lock, so it may notify them all).
  if (!monitor_->all_blocked()) return;
  const std::uint64_t version = monitor_->version();
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  if (monitor_->confirm_starved(version)) {
    for (auto& mb : mailboxes_) mb->wake_for_starvation();
  }
}

RunResult run(int num_ranks, const std::function<void(Comm&)>& body,
              const CostModel& model, const SimConfig& sim,
              const ExecPolicy& exec) {
  Runtime runtime(num_ranks, model, sim);

  std::vector<std::unique_ptr<Comm>> comms;
  comms.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    comms.push_back(std::make_unique<Comm>(runtime, r));
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks));

  // One rank's body plus its error discipline, shared by both execution
  // modes.  Fires note_rank_finished on every exit path (return, kill,
  // abort): under the starvation monitor this rank's departure may leave
  // the remainder all-blocked, and the finishing context must notice.
  const auto rank_main = [&](int r) {
    struct FinishGuard {
      Runtime& rt;
      int rank;
      ~FinishGuard() { rt.note_rank_finished(rank); }
    } finish{runtime, r};
    try {
      Comm& comm = *comms[static_cast<std::size_t>(r)];
      if (FiberSlot* slot = current_fiber_slot()) {
        slot->comm = &comm;
        body(comm);
      } else {
        CurrentCommGuard guard(comm);
        body(comm);
      }
    } catch (const RankKilledError&) {
      // A fault-plan kill is a modelled failure, not a teardown: peers
      // get the typed PeerLostError (and may handle it and continue)
      // rather than the indiscriminate abort.
      errors[static_cast<std::size_t>(r)] = std::current_exception();
      runtime.notify_peer_lost(r);
    } catch (...) {
      errors[static_cast<std::size_t>(r)] = std::current_exception();
      runtime.abort_all();
    }
  };

  // Oracle-driven (model-checking) runs own rank scheduling through the
  // starvation monitor; they always use thread-per-rank.
  int workers = exec.workers < 0 ? VirtualScheduler::workers_from_env()
                                 : exec.workers;
  if (runtime.monitor() != nullptr) workers = 0;

  RunResult result;
  if (workers > 0) {
    VirtualScheduler sched(num_ranks, workers, exec.stack_bytes);
    for (int r = 0; r < num_ranks; ++r) {
      runtime.mailbox(r).set_rank_waiter(&sched.waiter(r));
    }
    runtime.set_scheduler(&sched);
    sched.run(rank_main);
    runtime.set_scheduler(nullptr);
    for (int r = 0; r < num_ranks; ++r) {
      runtime.mailbox(r).set_rank_waiter(nullptr);
    }
    result.workers = static_cast<std::uint64_t>(sched.workers());
    result.parked_ranks = static_cast<std::uint64_t>(sched.peak_parked());
    result.park_events = sched.park_events();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      threads.emplace_back([&rank_main, r] { rank_main(r); });
    }
    for (auto& t : threads) t.join();
  }

  // Rethrow the first real (non-cascade) failure, preferring low ranks so
  // the reported error is deterministic.  AbortError/PeerLostError on a
  // rank is only a symptom of some other rank's failure; surface one only
  // if nothing else threw (which would indicate a stray abort).
  std::exception_ptr symptom_only;
  for (const auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const AbortError&) {
      if (!symptom_only) symptom_only = e;
    } catch (const PeerLostError&) {
      if (!symptom_only) symptom_only = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (symptom_only) std::rethrow_exception(symptom_only);

  result.rank_times_s.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    const RankState& s = runtime.rank_state(r);
    const double t = s.clock.now();
    result.rank_times_s.push_back(t);
    if (t > result.makespan_s) result.makespan_s = t;
    result.total_messages += s.sent_count;
    result.total_bytes += s.sent_bytes;
    result.duplicates_suppressed += runtime.mailbox(r).duplicates_suppressed();
    result.segments_reused += s.pool.stats().segments_reused;
    result.autotune_invocations += s.autotune_invocations;
    result.payload_allocs += s.payload_allocs;
    result.local_sections += s.par_sections;
    result.local_chunks += s.par_chunks;
    result.local_steals += s.par_steals;
    result.intra_node_bytes += s.intra_node_bytes;
    result.inter_node_bytes += s.inter_node_bytes;
    if (s.par_threads > result.local_threads) {
      result.local_threads = s.par_threads;
    }
    for (const auto& [name, value] : s.published_stats) {
      result.user_stats[name] += value;
    }
  }
  if (result.local_sections > 0) {
    result.user_stats["par.sections"] +=
        static_cast<double>(result.local_sections);
    result.user_stats["par.chunks"] += static_cast<double>(result.local_chunks);
    result.user_stats["par.steals"] += static_cast<double>(result.local_steals);
    result.user_stats["par.threads"] +=
        static_cast<double>(result.local_threads);
  }
  if (result.workers > 0) {
    result.user_stats["rt.workers"] += static_cast<double>(result.workers);
    result.user_stats["rt.parked_ranks"] +=
        static_cast<double>(result.parked_ranks);
    result.user_stats["rt.park_events"] +=
        static_cast<double>(result.park_events);
  }
  if (model.two_tier()) {
    result.user_stats["tier.intra_bytes"] +=
        static_cast<double>(result.intra_node_bytes);
    result.user_stats["tier.inter_bytes"] +=
        static_cast<double>(result.inter_node_bytes);
  }
  if (ChaosController* chaos = runtime.chaos()) {
    result.sim = chaos->stats();
  }
  return result;
}

}  // namespace rsmpi::mprt
