// Windowed aggregation over epoch streams: tumbling and sliding windows
// of any operator, built from per-epoch partial states merged with
// `combine` — never by re-accumulating raw events.
//
// Three execution strategies, chosen per stream:
//
//   * tumbling (slide == window): one running state, emit-and-reset.
//   * invertible sliding: operators exposing `uncombine` (Sum, Counts,
//     Histogram — see rs::InvertibleOp) keep one running aggregate and
//     subtract evicted epochs in O(1).
//   * two-stack sliding: semilattice operators (Min/Max/HLL) and anything
//     else fall back to the two-stack queue: evicting flips the back
//     stack into suffix aggregates (an exclusive scan of the buffered
//     epoch states, run backwards), so every epoch still costs amortized
//     O(1) combines.
//
// Exact operators (integer and idempotent states) emit windows
// bit-identical to a serial re-aggregation of the window's epochs — the
// oracle tests/svc/window_test.cpp pins.  Floating-point operators agree
// up to re-association (and MeanVar's uncombine is rounding-level, so
// bit-stable MeanVar windows should set allow_inversion = false).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <ranges>
#include <utility>
#include <vector>

#include "mprt/comm.hpp"
#include "rs/op_concepts.hpp"
#include "svc/persistent.hpp"
#include "util/error.hpp"

namespace rsmpi::svc {

/// Window shape, counted in epochs.
struct WindowConfig {
  /// Epochs per window; 1 means every epoch emits.
  std::size_t window_epochs = 1;
  /// Emission stride; 0 means tumbling (slide == window).
  std::size_t slide_epochs = 0;
  /// Permit the uncombine fast path for invertible operators.  Turn off
  /// to force the two-stack path (e.g. for bit-stable MeanVar windows).
  bool allow_inversion = true;
};

/// A windowed stream of one operator over one communicator: each
/// push_epoch/push_state call is one epoch (a globally-merged operator
/// state), and a window result is emitted whenever a window boundary
/// closes.  The cross-rank merge runs through a PersistentReduce, so the
/// warm path neither plans nor allocates.
template <rs::Combinable Op>
class WindowedStream {
 public:
  static constexpr bool kInvertible = rs::InvertibleOp<Op>;

  WindowedStream(mprt::Comm& comm, Op prototype, WindowConfig cfg)
      : comm_(&comm),
        prototype_(prototype),
        merge_(comm, prototype),
        window_(cfg.window_epochs),
        slide_(cfg.slide_epochs == 0 ? cfg.window_epochs : cfg.slide_epochs),
        // Tumbling windows reset instead of evicting, so inversion (an
        // eviction strategy) is only meaningfully "in use" when sliding.
        use_inversion_(kInvertible && cfg.allow_inversion &&
                       slide_ != window_),
        tumbling_(slide_ == window_),
        agg_(prototype),
        back_agg_(prototype) {
    if (window_ == 0) {
      throw ArgumentError("WindowedStream: window_epochs must be >= 1");
    }
  }

  /// One epoch from raw local values: accumulate, merge across ranks,
  /// advance the window.
  template <std::ranges::input_range R>
    requires rs::Accumulates<Op, std::ranges::range_value_t<R>>
  std::optional<rs::reduce_result_t<Op>> push_epoch(R&& local) {
    return push_merged(merge_.execute_state(std::forward<R>(local)));
  }

  /// One epoch from an already-accumulated local partial state (the
  /// service's keyed-routing path): merge across ranks, advance the
  /// window.
  std::optional<rs::reduce_result_t<Op>> push_state(Op partial) {
    merge_.execute_combine(partial);
    return push_merged(std::move(partial));
  }

  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t windows_emitted() const {
    return windows_emitted_;
  }
  [[nodiscard]] bool uses_inversion() const { return use_inversion_; }
  [[nodiscard]] std::size_t window() const { return window_; }
  [[nodiscard]] std::size_t slide() const { return slide_; }
  [[nodiscard]] const PersistentReduce<Op>& merge() const { return merge_; }

  /// Re-tags the underlying merge plan after an aborted epoch (see
  /// PersistentReduce::rotate_tags).  The window state itself is untouched
  /// — a degraded epoch simply contributes no state.
  void rotate_merge_tags() { merge_.rotate_tags(); }

 private:
  std::optional<rs::reduce_result_t<Op>> push_merged(Op s) {
    auto timer = comm_->compute_section();
    epochs_ += 1;
    if (tumbling_) {
      agg_.combine(s);
      in_window_ += 1;
      if (in_window_ < window_) return std::nullopt;
      auto result = rs::red_result(agg_);
      agg_ = prototype_;
      in_window_ = 0;
      windows_emitted_ += 1;
      return result;
    }
    if constexpr (kInvertible) {
      if (use_inversion_) {
        agg_.combine(s);
        states_.push_back(std::move(s));
        return maybe_emit();
      }
    }
    back_agg_.combine(s);
    back_.push_back(std::move(s));
    return maybe_emit();
  }

  std::optional<rs::reduce_result_t<Op>> maybe_emit() {
    if (epochs_ < window_ || (epochs_ - window_) % slide_ != 0) {
      return std::nullopt;
    }
    evict_to(window_);
    windows_emitted_ += 1;
    if constexpr (kInvertible) {
      if (use_inversion_) return rs::red_result(agg_);
    }
    Op agg = front_.empty() ? prototype_ : front_.back();
    agg.combine(back_agg_);
    return rs::red_result(agg);
  }

  /// Drops the oldest epochs until exactly `keep` remain in the window.
  void evict_to(std::size_t keep) {
    if constexpr (kInvertible) {
      if (use_inversion_) {
        while (states_.size() > keep) {
          agg_.uncombine(states_.front());
          states_.pop_front();
        }
        return;
      }
    }
    while (front_.size() + back_.size() > keep) {
      if (front_.empty()) flip();
      front_.pop_back();
    }
  }

  /// The two-stack flip: turns the buffered back-stack states into suffix
  /// aggregates (suffix_i = s_i (+) suffix_{i+1} — a backwards exclusive
  /// scan of the buffer), newest first, so front_.back() carries the
  /// whole buffer and each pop_back evicts exactly the oldest epoch.
  void flip() {
    front_.reserve(back_.size());
    Op suffix = prototype_;
    for (auto it = back_.rbegin(); it != back_.rend(); ++it) {
      Op s = std::move(*it);
      s.combine(suffix);
      suffix = s;
      front_.push_back(std::move(s));
    }
    back_.clear();
    back_agg_ = prototype_;
  }

  mprt::Comm* comm_;
  Op prototype_;
  PersistentReduce<Op> merge_;
  std::size_t window_ = 1;
  std::size_t slide_ = 1;
  bool use_inversion_ = false;
  bool tumbling_ = false;
  std::uint64_t epochs_ = 0;
  std::uint64_t windows_emitted_ = 0;
  std::size_t in_window_ = 0;  // tumbling only

  Op agg_;                  // tumbling running state / invertible aggregate
  std::deque<Op> states_;   // invertible path: per-epoch states, oldest first
  std::vector<Op> front_;   // two-stack: suffix aggregates, oldest on top
  std::deque<Op> back_;     // two-stack: raw states, chronological
  Op back_agg_;             // two-stack: running aggregate of back_
};

}  // namespace rsmpi::svc
