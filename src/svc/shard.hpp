// Keyed sharding for multi-tenant streams: maps an event key to the shard
// (stream-member rank) that owns it.  Hash partitioning by default —
// splitmix64 of the key, reduced modulo the shard count — with the map
// pluggable per stream so tenants can bring locality-aware or
// range-partitioned placements.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "mprt/sim.hpp"
#include "util/error.hpp"

namespace rsmpi::svc {

/// A shard map: key -> shard index in [0, num_shards).  Must be pure and
/// identical on every rank (routing is computed independently by each
/// member), and total — every key must map somewhere.
using ShardFn = std::function<int(std::uint64_t key, int num_shards)>;

/// Default hash partitioner: well-mixed and stationary, so a key's owner
/// never changes across epochs (what keyed aggregation state requires).
struct HashShard {
  int operator()(std::uint64_t key, int num_shards) const {
    return static_cast<int>(mprt::splitmix64(key) %
                            static_cast<std::uint64_t>(num_shards));
  }
};

/// Pluggable shard map carried by each stream.
class ShardMap {
 public:
  ShardMap() : fn_(HashShard{}) {}
  explicit ShardMap(ShardFn fn) : fn_(std::move(fn)) {
    if (!fn_) throw ArgumentError("ShardMap: empty shard function");
  }

  [[nodiscard]] int owner(std::uint64_t key, int num_shards) const {
    const int shard = fn_(key, num_shards);
    if (shard < 0 || shard >= num_shards) {
      throw ArgumentError("ShardMap: shard function returned " +
                          std::to_string(shard) + " outside [0, " +
                          std::to_string(num_shards) + ")");
    }
    return shard;
  }

 private:
  ShardFn fn_;
};

}  // namespace rsmpi::svc
