// Umbrella header for the streaming aggregation service (src/svc):
// persistent collectives, windowed streams, the multi-tenant sharded
// service, and its stat collector.  See docs/service.md.
#pragma once

#include "svc/persistent.hpp"  // IWYU pragma: export
#include "svc/service.hpp"     // IWYU pragma: export
#include "svc/shard.hpp"       // IWYU pragma: export
#include "svc/stats.hpp"       // IWYU pragma: export
#include "svc/window.hpp"      // IWYU pragma: export
