// Multi-tenant streaming aggregation service.
//
// A Service hosts many named streams on one communicator.  Each stream is
// a keyed, sharded, windowed aggregation of one operator:
//
//   * every rank ingests events (stage) for any stream;
//   * each epoch, events are routed to their owning shard — a member rank
//     chosen by the stream's ShardMap — as one batched message per member
//     (empty batches included, so receives match deterministically);
//   * each shard folds its batches (in source-rank order, so the fold is
//     deterministic) into a partial operator state via the stream's
//     extract function;
//   * the partials are merged across the stream's subcommunicator through
//     a persistent allreduce and pushed into the stream's window, which
//     emits a result whenever a window boundary closes.
//
// Degradation is per stream.  The service scopes the rank's peer-loss
// wakeups to the live service ranks; when a rank dies, exactly the
// streams it shards are marked degraded (their merges can never complete)
// while every other stream keeps flowing — the dead rank is dropped from
// their routing sources and from the loss scope, and the one torn epoch
// is abandoned consistently by all members (the merge cannot complete
// without all of them, so every member observes the failure).  Messages a
// torn epoch left behind cannot corrupt later epochs: routed batches
// carry the epoch number (stale ones are discarded on receipt, and
// per-(source, tag) FIFO means a receiver can never consume a newer epoch
// first), and aborted merges rotate to a fresh tag block.
//
// All planning — autotuner argmins, tag reservation, buffer priming —
// happens in add_stream; the per-epoch path neither plans nor allocates
// once warm (batch vectors and pooled payload buffers are recycled).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "mprt/comm.hpp"
#include "mprt/message.hpp"
#include "par/accumulate.hpp"
#include "rs/op_concepts.hpp"
#include "svc/shard.hpp"
#include "svc/stats.hpp"
#include "svc/window.hpp"
#include "util/error.hpp"

namespace rsmpi::svc {

/// One keyed event.  Streams interpret (key, value) through their extract
/// function: a click stream may accumulate the value, a cardinality
/// stream the key.
struct Event {
  std::uint64_t key = 0;
  double value = 0.0;
};
static_assert(std::is_trivially_copyable_v<Event>);

/// Service-wide policy.
struct ServiceConfig {
  /// Bounded-wait policy installed on the rank for the service's
  /// lifetime, so a dropped message degrades an epoch instead of hanging
  /// the rank.
  mprt::RecvDeadline deadline{2.0, 4, 2.0};
  bool install_deadline = true;
};

namespace detail {

/// Wire header of one routed batch.
struct RouteHeader {
  std::uint64_t epoch = 0;
  std::uint64_t count = 0;
};
static_assert(std::is_trivially_copyable_v<RouteHeader>);

}  // namespace detail

/// Untyped face of a stream: everything the service core needs to drive
/// an epoch — routing, membership, degradation — without knowing the
/// operator type.
class StreamBase {
 public:
  virtual ~StreamBase() = default;
  StreamBase(const StreamBase&) = delete;
  StreamBase& operator=(const StreamBase&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Service-comm ranks sharding this stream.
  [[nodiscard]] const std::vector<int>& members() const { return members_; }
  /// This rank's shard index, or -1 when it only ingests.
  [[nodiscard]] int my_shard() const { return my_shard_; }
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] std::uint64_t events_staged() const { return staged_.size(); }

  /// Queues one event on this rank for the next epoch.
  void stage(const Event& e) { staged_.push_back(e); }
  void stage(std::span<const Event> events) {
    staged_.insert(staged_.end(), events.begin(), events.end());
  }

 protected:
  StreamBase(std::string name, mprt::Comm& comm, StatCollector& stats,
             std::vector<int> members, ShardMap shard, int route_tag)
      : comm_(&comm),
        stats_(&stats),
        name_(std::move(name)),
        members_(std::move(members)),
        shard_(std::move(shard)),
        route_tag_(route_tag) {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (members_[i] == comm_->rank()) my_shard_ = static_cast<int>(i);
    }
    batches_.resize(members_.size());
  }

  // The typed hooks Stream<Op> implements.
  virtual void begin_fold() = 0;
  virtual void fold(std::span<const Event> events) = 0;
  virtual void merge_and_window() = 0;
  virtual void rotate_merge_tags() = 0;

  mprt::Comm* comm_;
  StatCollector* stats_;

 private:
  friend class Service;

  /// One epoch of this stream on this rank.  `sources` are the live
  /// service-comm ranks, ascending — identical on every member, so the
  /// fold order (and therefore the merged state) is deterministic.
  void run_epoch(std::uint64_t epoch, const std::vector<int>& sources) {
    route(epoch);
    if (my_shard_ < 0) return;
    const double t0 = comm_->clock().now();
    begin_fold();
    std::uint64_t folded = 0;
    for (const int src : sources) folded += recv_and_fold(src, epoch);
    merge_and_window();
    stats_->record_epoch(name_, folded, comm_->clock().now() - t0);
  }

  /// Partitions this rank's staged events by owning shard and sends one
  /// batch to every member (empty batches included, so receives match
  /// deterministically).  The batch this rank owes itself is not sent —
  /// recv_and_fold reads it straight out of batches_, like collectives
  /// special-case the local contribution.  Buffers come from and return
  /// to the rank pools, so the warm path allocates nothing.
  void route(std::uint64_t epoch) {
    const int nm = static_cast<int>(members_.size());
    for (auto& b : batches_) b.clear();
    {
      auto timer = comm_->compute_section();
      for (const Event& e : staged_) {
        batches_[static_cast<std::size_t>(shard_.owner(e.key, nm))]
            .push_back(e);
      }
    }
    staged_.clear();
    for (int i = 0; i < nm; ++i) {
      if (members_[static_cast<std::size_t>(i)] == comm_->rank()) continue;
      const auto& b = batches_[static_cast<std::size_t>(i)];
      const std::size_t bytes =
          sizeof(detail::RouteHeader) + b.size() * sizeof(Event);
      auto buf = comm_->acquire_buffer(bytes);
      buf.resize(bytes);
      const detail::RouteHeader h{epoch, b.size()};
      std::memcpy(buf.data(), &h, sizeof h);
      if (!b.empty()) {
        std::memcpy(buf.data() + sizeof h, b.data(), b.size() * sizeof(Event));
      }
      comm_->send_bytes(members_[static_cast<std::size_t>(i)], route_tag_,
                        std::move(buf));
    }
  }

  /// Receives `src`'s batch for `epoch` and folds it.  Batches from an
  /// epoch this stream abandoned (degraded) are discarded; FIFO per
  /// (source, tag) guarantees a newer epoch can never arrive first.
  std::uint64_t recv_and_fold(int src, std::uint64_t epoch) {
    if (src == comm_->rank()) {  // this epoch's route() just filled it
      const auto& b = batches_[static_cast<std::size_t>(my_shard_)];
      fold(b);
      return b.size();
    }
    for (;;) {
      mprt::Message msg = comm_->recv_message(src, route_tag_);
      const std::span<const std::byte> payload = msg.payload();
      if (payload.size() < sizeof(detail::RouteHeader)) {
        throw ProtocolError("svc: routed batch shorter than its header");
      }
      detail::RouteHeader h;
      std::memcpy(&h, payload.data(), sizeof h);
      if (h.epoch < epoch) {  // leftover of a degraded epoch
        comm_->recycle_buffer(msg.release_storage());
        continue;
      }
      if (h.epoch > epoch ||
          payload.size() != sizeof h + h.count * sizeof(Event)) {
        throw ProtocolError("svc: stream '" + name_ +
                            "' received a malformed batch (epoch " +
                            std::to_string(h.epoch) + ", expected " +
                            std::to_string(epoch) + ")");
      }
      scratch_.resize(h.count);
      if (h.count > 0) {
        std::memcpy(scratch_.data(), payload.data() + sizeof h,
                    h.count * sizeof(Event));
      }
      comm_->recycle_buffer(msg.release_storage());
      fold(scratch_);
      return h.count;
    }
  }

  [[nodiscard]] bool has_member_global(const std::vector<int>& globals) const {
    const auto& group = comm_->group_global_ranks();
    for (const int m : members_) {
      for (const int g : globals) {
        if (group[static_cast<std::size_t>(m)] == g) return true;
      }
    }
    return false;
  }

  std::string name_;
  std::vector<int> members_;  // service-comm ranks, ascending
  ShardMap shard_;
  int route_tag_ = 0;
  int my_shard_ = -1;
  bool degraded_ = false;
  std::vector<Event> staged_;
  std::vector<std::vector<Event>> batches_;  // reused across epochs
  std::vector<Event> scratch_;               // reused across epochs
};

/// The typed stream: operator + extract function + window.  Created via
/// Service::add_stream; results are read back through last_window().
template <rs::Combinable Op, typename Extract>
class Stream final : public StreamBase {
 public:
  using In = std::decay_t<std::invoke_result_t<Extract, const Event&>>;
  static_assert(rs::Accumulates<Op, In>,
                "stream operator cannot accumulate the extract's output");

  Stream(std::string name, mprt::Comm& comm, StatCollector& stats,
         std::vector<int> members, ShardMap shard, int route_tag,
         mprt::Comm subcomm, bool is_member, Op prototype, WindowConfig wcfg,
         Extract extract)
      : StreamBase(std::move(name), comm, stats, std::move(members),
                   std::move(shard), route_tag),
        prototype_(std::move(prototype)),
        partial_(prototype_),
        extract_(std::move(extract)),
        subcomm_(std::move(subcomm)) {
    if (is_member) window_.emplace(subcomm_, prototype_, wcfg);
  }

  /// The most recent window emission on this shard (empty between
  /// boundaries and on non-member ranks; identical on every member).
  [[nodiscard]] const std::optional<rs::reduce_result_t<Op>>& last_window()
      const {
    return last_window_;
  }
  [[nodiscard]] std::uint64_t windows_emitted() const {
    return window_.has_value() ? window_->windows_emitted() : 0;
  }
  [[nodiscard]] const std::optional<WindowedStream<Op>>& window() const {
    return window_;
  }

 private:
  void begin_fold() override {
    partial_ = prototype_;
    saw_input_ = false;
    last_in_.reset();
  }

  void fold(std::span<const Event> events) override {
    if (events.empty()) return;
    // Extract + accumulate through the worker pool (serial unless
    // RSMPI_LOCAL_THREADS > 1; par::accumulate_indexed owns the clock
    // charge and stays off the comm buffers, so the warm path remains
    // zero-allocation on the messaging side).  The epoch may arrive as
    // several batches, so the pre hook fires only on the first batch's
    // first event and the post hook is deferred to merge_and_window.
    const bool first_batch = !saw_input_;
    saw_input_ = true;
    par::accumulate_indexed(
        *comm(), partial_, prototype_, events.size(),
        [&](std::size_t i) { return extract_(events[i]); },
        /*fire_pre=*/first_batch, /*fire_post=*/false);
    if constexpr (rs::HasPostAccum<Op, In>) {
      // Only operators that observe the last element pay the copy
      // (previously copied once per event, now once per batch).
      last_in_ = extract_(events.back());
    }
  }

  void merge_and_window() override {
    if (saw_input_ && last_in_.has_value()) {
      rs::post_accum_if(partial_, *last_in_);
    }
    last_window_ = window_->push_state(std::move(partial_));
    partial_ = prototype_;
    if (last_window_.has_value()) stats()->record_window(name());
  }

  void rotate_merge_tags() override {
    if (window_.has_value()) window_->rotate_merge_tags();
  }

  [[nodiscard]] mprt::Comm* comm() { return StreamBase::comm_; }
  [[nodiscard]] StatCollector* stats() { return StreamBase::stats_; }

  Op prototype_;
  Op partial_;
  Extract extract_;
  bool saw_input_ = false;
  std::optional<In> last_in_;
  mprt::Comm subcomm_;  // members: the stream's merge group; others: unused
  std::optional<WindowedStream<Op>> window_;  // members only
  std::optional<rs::reduce_result_t<Op>> last_window_;
};

/// The service core: stream registry, epoch driver, loss handling, stats.
/// Construction and add_stream are collective over `comm` (every rank
/// calls them identically, like communicator splits); step_epoch is
/// likewise called once per epoch on every rank.
class Service {
 public:
  explicit Service(mprt::Comm& comm, ServiceConfig cfg = {})
      : comm_(&comm), cfg_(cfg) {
    live_sources_.resize(static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      live_sources_[static_cast<std::size_t>(r)] = r;
    }
    comm_->set_peer_loss_scope(comm_->group_global_ranks());
    if (cfg_.install_deadline) comm_->set_recv_deadline(cfg_.deadline);
  }

  ~Service() {
    comm_->set_peer_loss_scope(std::nullopt);
    if (cfg_.install_deadline) comm_->set_recv_deadline(std::nullopt);
  }

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Registers a stream sharded over `members` (service-comm ranks,
  /// strictly ascending).  Collective: every rank must call with the same
  /// arguments in the same order.  All planning happens here — the
  /// subcommunicator split, the persistent-merge plan (autotuner, tags,
  /// buffer priming), and the routing-tag reservation.
  template <rs::Combinable Op, typename Extract>
  Stream<Op, Extract>& add_stream(std::string name, std::vector<int> members,
                                  Op prototype, Extract extract,
                                  WindowConfig wcfg = {},
                                  ShardMap shard = {}) {
    if (members.empty()) {
      throw ArgumentError("add_stream: stream '" + name + "' has no shards");
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i] < 0 || members[i] >= comm_->size() ||
          (i > 0 && members[i] <= members[i - 1])) {
        throw ArgumentError("add_stream: members of stream '" + name +
                            "' must be strictly ascending ranks of the "
                            "service communicator");
      }
    }
    const int route_tag = comm_->reserve_tag_block(1).first_tag;
    // Routing recycles one batch buffer per member every epoch, all of
    // one size class; retain enough that the warm path never re-allocates.
    comm_->reserve_pool_capacity(members.size() +
                                 coll::kPersistentPrimedBuffers);
    bool is_member = false;
    for (const int m : members) is_member = is_member || (m == comm_->rank());
    mprt::Comm sub = comm_->split(is_member ? 1 : 0, comm_->rank());
    auto stream = std::make_unique<Stream<Op, Extract>>(
        std::move(name), *comm_, stats_, std::move(members), std::move(shard),
        route_tag, std::move(sub), is_member, std::move(prototype), wcfg,
        std::move(extract));
    Stream<Op, Extract>& ref = *stream;
    streams_.push_back(std::move(stream));
    return ref;
  }

  /// Runs one epoch of every stream, in registration order.  A stream
  /// whose epoch fails degrades alone: a dead shard retires its streams
  /// permanently, a transient fault (timeout, lost ingester) costs the
  /// stream one epoch.
  void step_epoch() {
    epoch_ += 1;
    for (auto& s : streams_) {
      if (s->degraded_) {
        s->staged_.clear();
        continue;
      }
      try {
        s->run_epoch(epoch_, live_sources_);
      } catch (const PeerLostError&) {
        absorb_losses();
        note_degraded_epoch(*s);
      } catch (const TimeoutError&) {
        note_degraded_epoch(*s);
      }
    }
  }

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] StatCollector& stats() { return stats_; }
  [[nodiscard]] const StatCollector& stats() const { return stats_; }
  [[nodiscard]] const std::vector<int>& live_sources() const {
    return live_sources_;
  }

  /// Publishes the collector's totals into RunResult::user_stats.
  void publish() { stats_.publish(*comm_); }

  /// JSON stat dump for this rank (see docs/service.md for the schema).
  [[nodiscard]] std::string stats_json() const {
    return stats_.to_json(*comm_);
  }

 private:
  /// Folds newly-discovered dead ranks into the routing sources, narrows
  /// the loss scope so the known-dead stop poisoning receives, and
  /// retires every stream the dead ranks sharded.
  void absorb_losses() {
    const std::vector<int> lost = comm_->lost_peers();
    std::vector<int> fresh;
    for (const int g : lost) {
      bool known = false;
      for (const int d : dead_global_) known = known || (d == g);
      if (!known) fresh.push_back(g);
    }
    if (fresh.empty()) return;
    dead_global_.insert(dead_global_.end(), fresh.begin(), fresh.end());

    const auto& group = comm_->group_global_ranks();
    live_sources_.clear();
    std::vector<int> live_globals;
    for (int r = 0; r < comm_->size(); ++r) {
      const int g = group[static_cast<std::size_t>(r)];
      bool dead = false;
      for (const int d : dead_global_) dead = dead || (d == g);
      if (!dead) {
        live_sources_.push_back(r);
        live_globals.push_back(g);
      }
    }
    comm_->set_peer_loss_scope(std::move(live_globals));

    for (auto& s : streams_) {
      if (!s->degraded_ && s->has_member_global(dead_global_)) {
        s->degraded_ = true;
        stats_.record_stream_degraded(s->name());
      }
    }
  }

  /// A torn (but survivable) epoch: count it and rotate the merge tags so
  /// the abandoned collective's messages can never match a later epoch.
  void note_degraded_epoch(StreamBase& s) {
    if (s.degraded_) return;  // retired by absorb_losses; no more epochs
    stats_.record_degraded_epoch(s.name());
    if (s.my_shard() >= 0) s.rotate_merge_tags();
  }

  mprt::Comm* comm_;
  ServiceConfig cfg_;
  StatCollector stats_;
  std::vector<std::unique_ptr<StreamBase>> streams_;
  std::vector<int> live_sources_;  // service-comm ranks still alive
  std::vector<int> dead_global_;   // global ranks known dead
  std::uint64_t epoch_ = 0;
};

}  // namespace rsmpi::svc
