// Observability for the streaming service: per-epoch latency histograms,
// sustained throughput, pool reuse, and chaos-induced incidents, gathered
// rank-locally and dumped as JSON (shape modeled on katana's
// StatCollector: named stats, per-category aggregates, one JSON document
// per run).
//
// The collector is deliberately runtime-agnostic: it only reads public
// Comm counters.  Aggregates flow out two ways — `to_json()` for the
// bench/demo reports, and `publish()` into Comm::publish_stat so run()
// folds every rank's totals into RunResult::user_stats.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mprt/comm.hpp"

namespace rsmpi::svc {

/// Log-spaced latency histogram over microseconds: bucket b counts epochs
/// whose latency lies in [2^b, 2^(b+1)) microseconds, bucket 0 catching
/// everything below 1 us and the last bucket everything at or above 2^22
/// us (~4.2 s).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 24;

  void record(double seconds) {
    const double us = seconds * 1e6;
    std::size_t b = 0;
    while (b + 1 < kBuckets && us >= static_cast<double>(1ULL << (b + 1))) {
      ++b;
    }
    counts_[b] += 1;
  }

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& counts() const {
    return counts_;
  }

  [[nodiscard]] std::string to_json() const {
    std::ostringstream os;
    os << "[";
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (b > 0) os << ",";
      os << counts_[b];
    }
    os << "]";
    return os.str();
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
};

/// Per-stream running aggregates plus the raw per-epoch latency samples
/// (kept for exact quantiles; epochs are bounded by run length, not event
/// count, so the memory is tame).
struct StreamStats {
  std::uint64_t epochs = 0;
  std::uint64_t events = 0;
  std::uint64_t windows_emitted = 0;
  std::uint64_t degraded_epochs = 0;
  double total_latency_s = 0.0;
  LatencyHistogram latency_hist;
  std::vector<double> latency_samples_s;

  void record_epoch(std::uint64_t epoch_events, double latency_s) {
    epochs += 1;
    events += epoch_events;
    total_latency_s += latency_s;
    latency_hist.record(latency_s);
    latency_samples_s.push_back(latency_s);
  }

  /// Exact q-quantile of the per-epoch latencies (0 when no samples).
  [[nodiscard]] double latency_quantile_s(double q) const {
    if (latency_samples_s.empty()) return 0.0;
    std::vector<double> sorted = latency_samples_s;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
};

/// Rank-local stat collector for one service instance.  Records epoch
/// latencies per stream (on whatever clock the caller samples — the
/// service uses the rank's virtual clock so the numbers are deterministic
/// and machine-independent), plus incident counters the chaos layer
/// induces (receive-deadline retries, degraded streams).
class StatCollector {
 public:
  /// Begins an epoch measurement; returns the clock value to pass to
  /// end_epoch (virtual seconds of the rank's own timeline).
  [[nodiscard]] static double epoch_start(const mprt::Comm& comm) {
    return comm.clock().now();
  }

  void record_epoch(const std::string& stream, std::uint64_t events,
                    double latency_s) {
    streams_[stream].record_epoch(events, latency_s);
  }

  void record_window(const std::string& stream) {
    streams_[stream].windows_emitted += 1;
  }

  void record_degraded_epoch(const std::string& stream) {
    streams_[stream].degraded_epochs += 1;
  }

  /// Marks a stream permanently degraded (a shard died and the stream
  /// stopped flowing); counted once per stream.
  void record_stream_degraded(const std::string& stream) {
    auto& s = streams_[stream];
    if (s.degraded_epochs == 0) s.degraded_epochs = 1;
    degraded_streams_ += 1;
  }

  [[nodiscard]] const std::map<std::string, StreamStats>& streams() const {
    return streams_;
  }
  [[nodiscard]] std::uint64_t degraded_streams() const {
    return degraded_streams_;
  }

  [[nodiscard]] std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const auto& [name, s] : streams_) n += s.events;
    return n;
  }
  [[nodiscard]] std::uint64_t total_epochs() const {
    std::uint64_t n = 0;
    for (const auto& [name, s] : streams_) n += s.epochs;
    return n;
  }

  /// One JSON document: per-stream aggregates plus this rank's runtime
  /// counters (pool reuse, retries, chaos totals, autotune count).  The
  /// stat schema is documented in docs/service.md.
  [[nodiscard]] std::string to_json(const mprt::Comm& comm) const {
    std::ostringstream os;
    os << "{\n  \"rank\": " << comm.global_rank() << ",\n  \"streams\": {";
    bool first = true;
    for (const auto& [name, s] : streams_) {
      os << (first ? "\n" : ",\n");
      first = false;
      const double mean =
          s.epochs > 0 ? s.total_latency_s / static_cast<double>(s.epochs)
                       : 0.0;
      os << "    \"" << name << "\": {"
         << "\"epochs\": " << s.epochs << ", \"events\": " << s.events
         << ", \"windows\": " << s.windows_emitted
         << ", \"degraded_epochs\": " << s.degraded_epochs
         << ", \"mean_epoch_s\": " << mean
         << ", \"p50_epoch_s\": " << s.latency_quantile_s(0.5)
         << ", \"p99_epoch_s\": " << s.latency_quantile_s(0.99)
         << ", \"latency_hist_us_log2\": " << s.latency_hist.to_json() << "}";
    }
    const auto& pool = comm.pool_stats();
    const mprt::SimStats sim = comm.sim_stats();
    os << "\n  },\n  \"runtime\": {"
       << "\"pool_hits\": " << pool.hits << ", \"pool_misses\": " << pool.misses
       << ", \"segments_reused\": " << pool.segments_reused
       << ", \"payload_allocs\": " << comm.payload_allocs()
       << ", \"autotune_invocations\": " << comm.autotune_invocations()
       << ", \"recv_retries\": " << comm.recv_retries()
       << ", \"duplicates_suppressed\": " << comm.duplicates_suppressed()
       << ", \"chaos_dropped\": " << sim.dropped
       << ", \"chaos_duplicated\": " << sim.duplicated
       << ", \"chaos_delayed\": " << sim.delayed
       << ", \"degraded_streams\": " << degraded_streams_ << "}\n}";
    return os.str();
  }

  /// Publishes the rank's totals through Comm::publish_stat, so they
  /// arrive summed across ranks in RunResult::user_stats under the
  /// "svc." prefix.
  void publish(mprt::Comm& comm) const {
    comm.publish_stat("svc.epochs", static_cast<double>(total_epochs()));
    comm.publish_stat("svc.events", static_cast<double>(total_events()));
    comm.publish_stat("svc.degraded_streams",
                      static_cast<double>(degraded_streams_));
    std::uint64_t windows = 0;
    for (const auto& [name, s] : streams_) windows += s.windows_emitted;
    comm.publish_stat("svc.windows", static_cast<double>(windows));
    comm.publish_stat("svc.recv_retries",
                      static_cast<double>(comm.recv_retries()));
    comm.publish_stat("svc.pool_segment_reuses",
                      static_cast<double>(comm.pool_stats().segments_reused));
  }

 private:
  std::map<std::string, StreamStats> streams_;
  std::uint64_t degraded_streams_ = 0;
};

}  // namespace rsmpi::svc
