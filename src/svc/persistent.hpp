// Persistent collectives: the service-facing handles over the plan/execute
// split of coll/persistent.hpp.
//
// A handle is created once per (operator configuration, communicator) and
// then driven for the life of the stream:
//
//   svc::PersistentReduce<ops::Histogram<double>> merge(comm, proto);
//   for (;;) {
//     auto counts = merge.execute(epoch_batch);   // zero warm-path planning
//   }
//
// Creation pays the autotuner argmin, the env reads, the tag-block
// reservation, and the pool priming; execute() replays the frozen plan.
// Results are bit-identical to the one-shot rs::reduce/rs::scan calls
// because the executor shares their schedule implementations.
#pragma once

#include <optional>
#include <ranges>
#include <utility>
#include <vector>

#include "coll/persistent.hpp"
#include "mprt/comm.hpp"
#include "rs/op_concepts.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"

namespace rsmpi::svc {

/// Persistent allreduce of operator states.  The prototype (identity
/// state plus constructor configuration) is captured at creation; every
/// epoch starts from a fresh copy of it.
template <rs::Combinable Op>
class PersistentReduce {
 public:
  PersistentReduce(mprt::Comm& comm, Op prototype,
                   std::optional<bool> commutative_override = std::nullopt)
      : comm_(&comm),
        prototype_(std::move(prototype)),
        plan_(coll::plan_state_allreduce(comm, prototype_,
                                         commutative_override)) {}

  /// One epoch: accumulate this rank's batch, merge states across ranks
  /// through the frozen plan, return the fully-combined state (identical
  /// on every rank).
  template <std::ranges::input_range R>
    requires rs::Accumulates<Op, std::ranges::range_value_t<R>>
  Op execute_state(R&& local) {
    Op op = prototype_;
    rs::detail::accumulate_local(*comm_, op, std::forward<R>(local));
    coll::execute_planned_allreduce(*comm_, op, prototype_, plan_);
    return op;
  }

  /// One epoch over an already-accumulated partial state (the service's
  /// path: keyed routing accumulates per-shard partials first).  Merges in
  /// place.
  void execute_combine(Op& op) {
    coll::execute_planned_allreduce(*comm_, op, prototype_, plan_);
  }

  /// Convenience: epoch merge plus the reduction generate.
  template <std::ranges::input_range R>
    requires rs::Accumulates<Op, std::ranges::range_value_t<R>>
  rs::reduce_result_t<Op> execute(R&& local) {
    return rs::red_result(execute_state(std::forward<R>(local)));
  }

  /// Reserves a fresh tag block for the plan.  Called (identically on
  /// every member — all members observe the same failed epoch) after an
  /// epoch aborts mid-collective, so stale messages parked under the old
  /// tags can never be matched by a later epoch.
  void rotate_tags() {
    plan_.tags = comm_->reserve_tag_block(coll::kPersistentAllreduceTags);
  }

  [[nodiscard]] const coll::PersistentPlan& plan() const { return plan_; }
  [[nodiscard]] const Op& prototype() const { return prototype_; }

 private:
  mprt::Comm* comm_;
  Op prototype_;
  coll::PersistentPlan plan_;
};

/// Persistent global-view scan: per epoch, the full accumulate /
/// state-xscan / generate-replay pipeline of rs::scan, with the xscan's
/// tag drawn from the handle's reserved block so epoch loops never walk
/// the tag window.
template <rs::Combinable Op>
class PersistentScan {
 public:
  PersistentScan(mprt::Comm& comm, Op prototype)
      : comm_(&comm),
        prototype_(std::move(prototype)),
        plan_(coll::plan_state_xscan(comm, prototype_)) {}

  /// One epoch: returns this rank's slice of the scanned output.
  template <std::ranges::forward_range R>
    requires rs::ScanOp<Op, std::ranges::range_value_t<R>>
  std::vector<rs::scan_result_t<Op, std::ranges::range_value_t<R>>> execute(
      R&& local, rs::ScanKind kind = rs::ScanKind::kInclusive) {
    using In = std::ranges::range_value_t<R>;
    using Out = rs::scan_result_t<Op, In>;
    Op op = prototype_;
    rs::detail::accumulate_local(*comm_, op, local);
    coll::execute_planned_xscan(*comm_, op, prototype_, plan_);
    std::vector<Out> out;
    if constexpr (std::ranges::sized_range<R>) {
      out.reserve(static_cast<std::size_t>(std::ranges::size(local)));
    }
    auto timer = comm_->compute_section();
    for (const In& x : local) {
      if (kind == rs::ScanKind::kExclusive) {
        out.push_back(rs::scan_result(op, x));
        op.accum(x);
      } else {
        op.accum(x);
        out.push_back(rs::scan_result(op, x));
      }
    }
    return out;
  }

  /// One epoch, states only: the exclusive prefix state of this rank.
  template <std::ranges::input_range R>
    requires rs::Accumulates<Op, std::ranges::range_value_t<R>>
  Op execute_state(R&& local) {
    Op op = prototype_;
    rs::detail::accumulate_local(*comm_, op, std::forward<R>(local));
    coll::execute_planned_xscan(*comm_, op, prototype_, plan_);
    return op;
  }

  [[nodiscard]] const coll::PersistentPlan& plan() const { return plan_; }

 private:
  mprt::Comm* comm_;
  Op prototype_;
  coll::PersistentPlan plan_;
};

}  // namespace rsmpi::svc
