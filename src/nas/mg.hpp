// NAS MG ZRAN3: the initialization routine the paper's Figure 3 measures.
//
// ZRAN3 fills a 3-D grid with uniform random numbers (vranlc), locates the
// ten largest and ten smallest values together with their grid positions,
// and rewrites the grid as +1 at the largest positions, -1 at the
// smallest, and 0 elsewhere.
//
// The F+MPI reference resolves the extrema one at a time with repeated
// built-in reductions — forty in all (§4.2): for each of the ten charges
// of each sign, one max/min allreduce to agree on the value and one
// min-location allreduce to agree on the owning position.  The
// global-view version replaces all forty with a single user-defined
// TopBottomK reduction whose accumulate phase *is* the grid traversal.
#pragma once

#include <cstdint>
#include <vector>

#include "mprt/comm.hpp"
#include "nas/classes.hpp"
#include "rs/async.hpp"
#include "rs/ops/topbottomk.hpp"

namespace rsmpi::nas {

/// One rank's slab of the z-sliced grid, plus its global extent.
struct MgGrid {
  int nx = 0, ny = 0, nz = 0;  // global extents
  int z0 = 0;                  // first global z-plane owned by this rank
  int local_nz = 0;            // number of owned z-planes
  std::vector<double> values;  // local_nz * ny * nx, x fastest

  [[nodiscard]] std::int64_t global_index(int x, int y, int z_local) const {
    return (static_cast<std::int64_t>(z_local + z0) * ny + y) * nx + x;
  }
  [[nodiscard]] std::size_t local_index(int x, int y, int z_local) const {
    return (static_cast<std::size_t>(z_local) * ny + y) * nx + x;
  }
};

/// The charge positions ZRAN3 discovers.
struct MgCharges {
  std::vector<std::int64_t> positive;  // positions of the ten largest
  std::vector<std::int64_t> negative;  // positions of the ten smallest
};

/// Fills this rank's slab with the class's random field.  The field is a
/// pure function of global position (seed-jumped vranlc per slab), so it
/// is identical for every rank count.
MgGrid mg_fill_grid(const mprt::Comm& comm, MgParams params);

/// The F+MPI formulation (baseline): per-rank candidate lists, then forty
/// built-in reductions (2 collectives x 10 charges x 2 signs) to agree on
/// values and owning positions one at a time.
MgCharges mg_zran3_baseline(mprt::Comm& comm, const MgGrid& grid,
                            std::size_t k = 10);

/// The global-view formulation: a single TopBottomK reduction over the
/// grid values.
MgCharges mg_zran3_rsmpi(mprt::Comm& comm, const MgGrid& grid,
                         std::size_t k = 10);

/// Nonblocking variant of the global-view formulation: the grid traversal
/// (accumulate) runs immediately, the cross-rank combine proceeds in the
/// background, and get() on the returned future yields the charges.  Call
/// coll::nb::poll() between chunks of other work (e.g. filling the next
/// grid) to overlap the combine with it.  `grid` may be reused or freed as
/// soon as this returns; `comm` must outlive the future's completion.
rs::Future<MgCharges> mg_zran3_rsmpi_async(mprt::Comm& comm,
                                           const MgGrid& grid,
                                           std::size_t k = 10);

/// Completes ZRAN3: rewrites the slab as {-1, 0, +1} from the charge
/// positions.  Returns the number of nonzeros written locally (for tests).
int mg_apply_charges(MgGrid& grid, const MgCharges& charges);

}  // namespace rsmpi::nas
