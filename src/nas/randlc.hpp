// The NAS Parallel Benchmarks pseudorandom number generator.
//
// NPB generates all of its input data with the linear congruential
// generator
//
//     x_{k+1} = a * x_k  (mod 2^46),      a = 5^13 = 1220703125,
//
// returning uniform doubles r_k = x_k * 2^-46 in (0, 1).  The reference
// implementation carries the 46-bit state in IEEE doubles, splitting every
// operand into two 23-bit halves so all intermediate products stay exact;
// this file reproduces that arithmetic (randlc / vranlc) plus the
// log-time jump NPB uses to give each process an independent substream
// (IS's find_my_seed).  Tests validate the double-splitting arithmetic
// against an exact 128-bit integer oracle.
#pragma once

#include <cstdint>
#include <span>

namespace rsmpi::nas {

/// NPB's default multiplier (5^13) and seed.
inline constexpr double kRandlcA = 1220703125.0;
inline constexpr double kRandlcSeed = 314159265.0;

/// Advances x by one LCG step (x := a*x mod 2^46) and returns x * 2^-46.
double randlc(double& x, double a);

/// Fills `out` with successive uniform draws, advancing x accordingly —
/// NPB's vectorized variant, used to fill MG's grids.
void vranlc(double& x, double a, std::span<double> out);

/// The k-th power of `a` modulo 2^46, computed in log2(k) squarings with
/// the same exact double arithmetic.  pow_a(a, k) is the multiplier that
/// advances a seed by k steps at once.
double randlc_pow(double a, std::uint64_t k);

/// Seed after jumping `k` steps forward from `seed` — the substream
/// mechanism NPB IS uses to give each process disjoint key blocks.
double randlc_jump(double seed, double a, std::uint64_t k);

}  // namespace rsmpi::nas
