// NAS IS (Integer Sort) kernel: key generation, distributed bucket sort,
// and the verification phase the paper's Figure 2 measures.
//
// The benchmark generates Gaussian-ish integer keys with randlc, bucket-
// sorts them across ranks so that every key on rank r precedes every key
// on rank r+1, and finally *verifies* that the conceptual global array is
// sorted.  The verification is the paper's §4.1 case study: the reference
// C+MPI code exchanges boundary keys with neighbours, checks the local
// stretch element-by-element (two array references per element), and
// sum-reduces the per-rank error counts — while the global-view version is
// one line: a `sorted` reduction over the whole array.
#pragma once

#include <cstdint>
#include <vector>

#include "mprt/comm.hpp"
#include "nas/classes.hpp"

namespace rsmpi::nas {

using Key = std::int32_t;

/// Deterministically generates this rank's block of the class's key
/// sequence (NPB IS create_seq): each key is floor(max_key/4 * (sum of 4
/// consecutive randlc draws)).  The substream is seed-jumped so the global
/// sequence is independent of the rank count.
std::vector<Key> is_generate_keys(const mprt::Comm& comm, IsParams params);

/// Distributed bucket sort: keys are routed to the rank owning their value
/// range (alltoallv) and counting-sorted locally.  On return every rank
/// holds an ascending block and blocks ascend with rank — the conceptual
/// global array is sorted.
std::vector<Key> is_bucket_sort(mprt::Comm& comm, std::vector<Key> keys,
                                IsParams params);

/// Verification as in the distributed NPB C+MPI reference: boundary-key
/// exchange with the neighbour rank, an element-wise local check that
/// indexes the array twice per element, and a final sum-allreduce of error
/// counts.  Returns true when globally sorted.
bool is_verify_nas_mpi(mprt::Comm& comm, const std::vector<Key>& keys);

/// The paper's "scalar improvement" on the same structure: the running
/// previous key is kept in a local scalar, halving the array references.
/// (The paper reports that this optimization alone closed the measured
/// gap between the MPI and RSMPI versions.)
bool is_verify_opt_mpi(mprt::Comm& comm, const std::vector<Key>& keys);

/// The global-view version: one `sorted` reduction (Listing 7) over the
/// conceptual whole array.
bool is_verify_rsmpi(mprt::Comm& comm, const std::vector<Key>& keys);

/// The ranking phase — the section NPB IS actually times.  Computes, for
/// each locally-held key, its global rank (the number of keys smaller
/// than it across all ranks), NPB-style: one *aggregated* sum-allreduce
/// of the full key histogram (§2.1 aggregation at its largest), then a
/// local exclusive prefix over key values.  Keys of equal value share a
/// rank, as in NPB.
std::vector<std::int64_t> is_rank_keys(mprt::Comm& comm,
                                       const std::vector<Key>& keys,
                                       IsParams params);

}  // namespace rsmpi::nas
