#include "nas/randlc.hpp"

#include <cmath>

namespace rsmpi::nas {

namespace {
// 2^-23, 2^23, 2^-46, 2^46: the split constants of the NPB reference code.
constexpr double r23 = 1.0 / 8388608.0;
constexpr double t23 = 8388608.0;
constexpr double r46 = r23 * r23;
constexpr double t46 = t23 * t23;
}  // namespace

double randlc(double& x, double a) {
  // Split a and x into 23-bit halves: a = a1*2^23 + a2, x = x1*2^23 + x2.
  double t1 = r23 * a;
  const double a1 = std::trunc(t1);
  const double a2 = a - t23 * a1;

  t1 = r23 * x;
  const double x1 = std::trunc(t1);
  const double x2 = x - t23 * x1;

  // z = lower 23 bits of (a1*x2 + a2*x1); the a1*x1 term only affects bits
  // >= 46 and is dropped entirely.
  t1 = a1 * x2 + a2 * x1;
  const double t2 = std::trunc(r23 * t1);
  const double z = t1 - t23 * t2;

  // x = lower 46 bits of (z*2^23 + a2*x2).
  const double t3 = t23 * z + a2 * x2;
  const double t4 = std::trunc(r46 * t3);
  x = t3 - t46 * t4;
  return r46 * x;
}

void vranlc(double& x, double a, std::span<double> out) {
  for (double& y : out) {
    y = randlc(x, a);
  }
}

double randlc_pow(double a, std::uint64_t k) {
  // Square-and-multiply in the 46-bit modular arithmetic: randlc(x, a)
  // computes x*a mod 2^46 as a side effect, which is exactly the modular
  // product we need.
  double result = 1.0;
  double base = a;
  while (k != 0) {
    if (k & 1u) {
      (void)randlc(result, base);  // result *= base (mod 2^46)
    }
    double sq = base;
    (void)randlc(sq, base);  // sq = base^2 (mod 2^46)
    base = sq;
    k >>= 1;
  }
  return result;
}

double randlc_jump(double seed, double a, std::uint64_t k) {
  const double ak = randlc_pow(a, k);
  (void)randlc(seed, ak);
  return seed;
}

}  // namespace rsmpi::nas
