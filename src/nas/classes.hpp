// NPB problem classes, scaled for a laptop-hosted virtual machine.
//
// The paper's figures use NPB classes A, B and C on a 92-node cluster.
// The official sizes (IS: 2^23/2^25/2^27 keys; MG: 256^3–512^3 grids) are
// impractical for a single-host run sweeping 1–64 virtual ranks, so each
// class is scaled down by a fixed power of two, preserving the 4x key-count
// ratio between consecutive IS classes and the relative ordering of MG
// grids.  The scale factors are recorded here and in EXPERIMENTS.md; the
// figures' qualitative content (who wins, and that the gap narrows as the
// class grows) is preserved because it depends on the ratio of local work
// to message cost, not on absolute sizes.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/error.hpp"

namespace rsmpi::nas {

enum class ProblemClass { S, W, A, B, C };

[[nodiscard]] constexpr std::string_view to_string(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return "S";
    case ProblemClass::W: return "W";
    case ProblemClass::A: return "A";
    case ProblemClass::B: return "B";
    case ProblemClass::C: return "C";
  }
  return "?";
}

/// IS parameters.  Official NPB: S=2^16/2^11, W=2^20/2^16, A=2^23/2^19,
/// B=2^25/2^21, C=2^27/2^23 (total keys / max key).  A, B, C are scaled
/// down by 2^6 keys here; max-key values are scaled by 2^3 to keep key
/// density (duplicates per value) in a realistic range.
struct IsParams {
  std::int64_t total_keys;
  std::int64_t max_key;
};

[[nodiscard]] constexpr IsParams is_params(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return {1 << 16, 1 << 11};
    case ProblemClass::W: return {1 << 18, 1 << 14};  // scaled from 2^20
    case ProblemClass::A: return {1 << 20, 1 << 16};  // scaled from 2^23
    case ProblemClass::B: return {1 << 22, 1 << 18};  // scaled from 2^25
    case ProblemClass::C: return {1 << 24, 1 << 20};  // scaled from 2^27
  }
  throw ArgumentError("is_params: unknown class");
}

/// MG grid extents for the ZRAN3 experiment.  Official NPB: S=32^3,
/// W=128^3 (fewer iterations), A=256^3, B=256^3, C=512^3.  A, B and C are
/// scaled by 1/4 per dimension; B keeps NPB's property of sharing A's grid
/// (its extra cost is iteration count, which ZRAN3 does not see) and is
/// given an intermediate size instead so the figure has three distinct
/// workloads.
struct MgParams {
  int nx, ny, nz;
};

[[nodiscard]] constexpr MgParams mg_params(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return {32, 32, 32};
    case ProblemClass::W: return {48, 48, 48};
    case ProblemClass::A: return {64, 64, 64};   // scaled from 256^3
    case ProblemClass::B: return {96, 96, 96};   // see note above
    case ProblemClass::C: return {128, 128, 128};  // scaled from 512^3
  }
  throw ArgumentError("mg_params: unknown class");
}

}  // namespace rsmpi::nas
