#include "nas/mg.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <ranges>

#include "coll/local_reduce.hpp"
#include "nas/randlc.hpp"
#include "rs/async.hpp"
#include "rs/reduce.hpp"

namespace rsmpi::nas {

namespace {

using Candidate = rs::ops::Located<double, std::int64_t>;

/// Sorted local candidate lists built in one grid pass — the per-rank
/// bookkeeping both formulations need before any communication.
struct LocalCandidates {
  std::vector<Candidate> largest;   // descending by value
  std::vector<Candidate> smallest;  // ascending by value
};

LocalCandidates build_candidates(const MgGrid& grid, std::size_t k) {
  rs::ops::TopBottomK<double, std::int64_t> keeper(k);
  const int plane = grid.nx * grid.ny;
  for (std::size_t i = 0; i < grid.values.size(); ++i) {
    const int zl = static_cast<int>(i / static_cast<std::size_t>(plane));
    const std::int64_t gpos =
        static_cast<std::int64_t>(i % static_cast<std::size_t>(plane)) +
        static_cast<std::int64_t>(zl + grid.z0) * plane;
    keeper.accum(Candidate{grid.values[i], gpos});
  }
  auto result = keeper.gen();
  return {std::move(result.largest), std::move(result.smallest)};
}

}  // namespace

MgGrid mg_fill_grid(const mprt::Comm& comm, MgParams params) {
  const int p = comm.size();
  const int rank = comm.rank();

  MgGrid grid;
  grid.nx = params.nx;
  grid.ny = params.ny;
  grid.nz = params.nz;
  grid.local_nz = params.nz / p + (rank < params.nz % p ? 1 : 0);
  grid.z0 = (params.nz / p) * rank + std::min(rank, params.nz % p);
  grid.values.resize(static_cast<std::size_t>(grid.local_nz) * params.ny *
                     params.nx);

  // The field is draw number (global flat index) of one randlc stream, so
  // jump the seed to this slab's first cell.
  const std::uint64_t offset = static_cast<std::uint64_t>(grid.z0) *
                               static_cast<std::uint64_t>(params.ny) *
                               static_cast<std::uint64_t>(params.nx);
  double x = randlc_jump(kRandlcSeed, kRandlcA, offset);
  vranlc(x, kRandlcA, grid.values);
  return grid;
}

MgCharges mg_zran3_baseline(mprt::Comm& comm, const MgGrid& grid,
                            std::size_t k) {
  LocalCandidates cand;
  {
    auto timer = comm.compute_section();
    cand = build_candidates(grid, k);
  }

  MgCharges charges;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  constexpr double kPosInf = std::numeric_limits<double>::infinity();
  constexpr std::int64_t kNoPos = std::numeric_limits<std::int64_t>::max();

  // Ten iterations per sign, two built-in collectives per iteration —
  // the "forty reductions" of the F+MPI reference (§4.2).
  std::size_t next_large = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double local_best =
        next_large < cand.largest.size() ? cand.largest[next_large].value
                                         : kNegInf;
    const double best =
        coll::local_allreduce_value(comm, local_best, coll::Max<double>{});
    const std::int64_t local_pos =
        (next_large < cand.largest.size() && local_best == best)
            ? cand.largest[next_large].index
            : kNoPos;
    const std::int64_t pos =
        coll::local_allreduce_value(comm, local_pos,
                                    coll::Min<std::int64_t>{});
    if (local_pos == pos && pos != kNoPos) ++next_large;
    charges.positive.push_back(pos);
  }

  std::size_t next_small = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double local_best =
        next_small < cand.smallest.size() ? cand.smallest[next_small].value
                                          : kPosInf;
    const double best =
        coll::local_allreduce_value(comm, local_best, coll::Min<double>{});
    const std::int64_t local_pos =
        (next_small < cand.smallest.size() && local_best == best)
            ? cand.smallest[next_small].index
            : kNoPos;
    const std::int64_t pos =
        coll::local_allreduce_value(comm, local_pos,
                                    coll::Min<std::int64_t>{});
    if (local_pos == pos && pos != kNoPos) ++next_small;
    charges.negative.push_back(pos);
  }
  return charges;
}

MgCharges mg_zran3_rsmpi(mprt::Comm& comm, const MgGrid& grid,
                         std::size_t k) {
  const int plane = grid.nx * grid.ny;
  const std::int64_t base = static_cast<std::int64_t>(grid.z0) * plane;
  auto located =
      std::views::iota(std::size_t{0}, grid.values.size()) |
      std::views::transform([&grid, plane, base](std::size_t i) {
        const std::int64_t zl =
            static_cast<std::int64_t>(i / static_cast<std::size_t>(plane));
        const std::int64_t gpos =
            base + zl * plane +
            static_cast<std::int64_t>(i % static_cast<std::size_t>(plane));
        return Candidate{grid.values[i], gpos};
      });

  const auto result = rs::reduce(
      comm, located, rs::ops::TopBottomK<double, std::int64_t>(k));

  MgCharges charges;
  for (const auto& c : result.largest) charges.positive.push_back(c.index);
  for (const auto& c : result.smallest) charges.negative.push_back(c.index);
  return charges;
}

rs::Future<MgCharges> mg_zran3_rsmpi_async(mprt::Comm& comm,
                                           const MgGrid& grid,
                                           std::size_t k) {
  const int plane = grid.nx * grid.ny;
  const std::int64_t base = static_cast<std::int64_t>(grid.z0) * plane;
  auto located =
      std::views::iota(std::size_t{0}, grid.values.size()) |
      std::views::transform([&grid, plane, base](std::size_t i) {
        const std::int64_t zl =
            static_cast<std::int64_t>(i / static_cast<std::size_t>(plane));
        const std::int64_t gpos =
            base + zl * plane +
            static_cast<std::int64_t>(i % static_cast<std::size_t>(plane));
        return Candidate{grid.values[i], gpos};
      });

  // The accumulate (the grid traversal) happens inside reduce_async, so
  // the view over `grid` is not referenced after this call returns.
  auto inner = std::make_shared<
      rs::Future<rs::ops::TopBottomKResult<double, std::int64_t>>>(
      rs::reduce_async(comm, located,
                       rs::ops::TopBottomK<double, std::int64_t>(k)));
  return rs::Future<MgCharges>(inner->request(), [inner]() {
    const auto& result = inner->get();
    MgCharges charges;
    for (const auto& c : result.largest) charges.positive.push_back(c.index);
    for (const auto& c : result.smallest) charges.negative.push_back(c.index);
    return charges;
  });
}

int mg_apply_charges(MgGrid& grid, const MgCharges& charges) {
  std::fill(grid.values.begin(), grid.values.end(), 0.0);
  const int plane = grid.nx * grid.ny;
  const std::int64_t lo = static_cast<std::int64_t>(grid.z0) * plane;
  const std::int64_t hi = lo + static_cast<std::int64_t>(grid.local_nz) *
                                   plane;
  int written = 0;
  for (const std::int64_t pos : charges.positive) {
    if (pos >= lo && pos < hi) {
      grid.values[static_cast<std::size_t>(pos - lo)] = 1.0;
      ++written;
    }
  }
  for (const std::int64_t pos : charges.negative) {
    if (pos >= lo && pos < hi) {
      grid.values[static_cast<std::size_t>(pos - lo)] = -1.0;
      ++written;
    }
  }
  return written;
}

}  // namespace rsmpi::nas
