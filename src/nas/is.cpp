#include "nas/is.hpp"

#include <algorithm>
#include <limits>

#include "coll/alltoall.hpp"
#include "coll/local_reduce.hpp"
#include "nas/randlc.hpp"
#include "rs/ops/sorted.hpp"
#include "rs/reduce.hpp"

namespace rsmpi::nas {

namespace {

/// Number of keys owned by `rank` when `total` keys are block-distributed
/// over `p` ranks (first `total % p` ranks take one extra).
std::int64_t block_size(std::int64_t total, int p, int rank) {
  return total / p + (rank < static_cast<int>(total % p) ? 1 : 0);
}

std::int64_t block_start(std::int64_t total, int p, int rank) {
  const std::int64_t base = total / p;
  const std::int64_t extra = total % p;
  return base * rank + std::min<std::int64_t>(rank, extra);
}

}  // namespace

std::vector<Key> is_generate_keys(const mprt::Comm& comm, IsParams params) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::int64_t my_n = block_size(params.total_keys, p, rank);
  const std::int64_t my_start = block_start(params.total_keys, p, rank);

  // Each key consumes 4 randlc draws; jump the seed to this block's first
  // draw so the global key sequence is identical for every rank count.
  double x = randlc_jump(kRandlcSeed, kRandlcA,
                         static_cast<std::uint64_t>(4 * my_start));

  // NPB IS: key = floor(max_key/4 * (r1 + r2 + r3 + r4)); the sum of four
  // uniforms gives the benchmark's bell-shaped key distribution.
  const double k4 = static_cast<double>(params.max_key) / 4.0;
  std::vector<Key> keys(static_cast<std::size_t>(my_n));
  for (auto& key : keys) {
    const double r = randlc(x, kRandlcA) + randlc(x, kRandlcA) +
                     randlc(x, kRandlcA) + randlc(x, kRandlcA);
    key = static_cast<Key>(k4 * r);
  }
  return keys;
}

std::vector<Key> is_bucket_sort(mprt::Comm& comm, std::vector<Key> keys,
                                IsParams params) {
  const int p = comm.size();

  // One bucket per rank, splitting the key range evenly; NPB's production
  // code tunes bucket boundaries, but even splits suffice for the slightly
  // bell-shaped distribution.
  const std::int64_t bucket_width =
      (params.max_key + p - 1) / p;

  std::vector<std::vector<Key>> outgoing(static_cast<std::size_t>(p));
  {
    auto timer = comm.compute_section();
    for (const Key key : keys) {
      int dest = static_cast<int>(key / bucket_width);
      if (dest >= p) dest = p - 1;
      outgoing[static_cast<std::size_t>(dest)].push_back(key);
    }
  }

  std::vector<Key> local = coll::alltoallv(comm, outgoing);

  auto timer = comm.compute_section();
  // Counting sort over this rank's value range.
  const std::int64_t lo = static_cast<std::int64_t>(comm.rank()) * bucket_width;
  const std::int64_t hi =
      std::min<std::int64_t>(lo + bucket_width, params.max_key);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(hi - lo + 1), 0);
  for (const Key key : local) {
    counts[static_cast<std::size_t>(key - lo)] += 1;
  }
  std::size_t out_i = 0;
  for (std::int64_t v = lo; v <= hi; ++v) {
    for (std::int64_t c = 0; c < counts[static_cast<std::size_t>(v - lo)];
         ++c) {
      local[out_i++] = static_cast<Key>(v);
    }
  }
  return local;
}

bool is_verify_nas_mpi(mprt::Comm& comm, const std::vector<Key>& keys) {
  const int p = comm.size();
  const int rank = comm.rank();
  constexpr int kBoundaryTag = 101;

  // Phase 1: neighbour boundary exchange — each rank passes its *first*
  // key left so rank r can check its last key against rank r+1's first.
  // Ranks with no keys forward the boundary they receive, preserving the
  // adjacency chain.
  Key next_first = 0;
  bool have_next = false;
  if (p > 1) {
    if (rank > 0) {
      if (!keys.empty()) {
        comm.send(rank - 1, kBoundaryTag, keys.front());
      } else if (rank == p - 1) {
        comm.send(rank - 1, kBoundaryTag,
                  std::numeric_limits<Key>::max());  // empty tail: no bound
      }
    }
    if (rank < p - 1) {
      next_first = comm.recv<Key>(rank + 1, kBoundaryTag);
      have_next = true;
      if (keys.empty() && rank > 0) {
        comm.send(rank - 1, kBoundaryTag, next_first);
      }
    }
  }

  // Phase 2: local element-wise check, transliterated from the NPB C code:
  // both operands are array references (two loads per element).
  long errors = 0;
  {
    auto timer = comm.compute_section();
    for (std::size_t i = 1; i < keys.size(); ++i) {
      if (keys[i - 1] > keys[i]) ++errors;
    }
    if (have_next && !keys.empty() && keys.back() > next_first) ++errors;
  }

  // Phase 3: global sum of error counts.
  errors = coll::local_allreduce_value(comm, errors, coll::Sum<long>{});
  return errors == 0;
}

bool is_verify_opt_mpi(mprt::Comm& comm, const std::vector<Key>& keys) {
  const int p = comm.size();
  const int rank = comm.rank();
  constexpr int kBoundaryTag = 102;

  Key next_first = 0;
  bool have_next = false;
  if (p > 1) {
    if (rank > 0) {
      if (!keys.empty()) {
        comm.send(rank - 1, kBoundaryTag, keys.front());
      } else if (rank == p - 1) {
        comm.send(rank - 1, kBoundaryTag, std::numeric_limits<Key>::max());
      }
    }
    if (rank < p - 1) {
      next_first = comm.recv<Key>(rank + 1, kBoundaryTag);
      have_next = true;
      if (keys.empty() && rank > 0) {
        comm.send(rank - 1, kBoundaryTag, next_first);
      }
    }
  }

  long errors = 0;
  {
    auto timer = comm.compute_section();
    if (!keys.empty()) {
      // The scalar improvement: one array reference per element.
      Key last = keys[0];
      for (std::size_t i = 1; i < keys.size(); ++i) {
        const Key k = keys[i];
        if (last > k) ++errors;
        last = k;
      }
      if (have_next && last > next_first) ++errors;
    }
  }

  errors = coll::local_allreduce_value(comm, errors, coll::Sum<long>{});
  return errors == 0;
}

bool is_verify_rsmpi(mprt::Comm& comm, const std::vector<Key>& keys) {
  return rs::reduce(comm, keys, rs::ops::Sorted<Key>{});
}

std::vector<std::int64_t> is_rank_keys(mprt::Comm& comm,
                                       const std::vector<Key>& keys,
                                       IsParams params) {
  // Local key histogram over the full key range.
  std::vector<std::int64_t> hist(static_cast<std::size_t>(params.max_key),
                                 0);
  {
    auto timer = comm.compute_section();
    for (const Key key : keys) {
      hist[static_cast<std::size_t>(key)] += 1;
    }
  }

  // Global histogram: one aggregated allreduce carrying max_key counters.
  coll::ElementwiseOp<std::int64_t, coll::Sum<std::int64_t>> sum_op;
  coll::local_allreduce(comm, std::span<std::int64_t>(hist), sum_op);

  // rank(v) = number of keys with value < v: exclusive prefix, locally.
  auto timer = comm.compute_section();
  std::int64_t running = 0;
  for (auto& h : hist) {
    const std::int64_t count = h;
    h = running;
    running += count;
  }
  std::vector<std::int64_t> ranks;
  ranks.reserve(keys.size());
  for (const Key key : keys) {
    ranks.push_back(hist[static_cast<std::size_t>(key)]);
  }
  return ranks;
}

}  // namespace rsmpi::nas
