// Flat byte archive used to serialize user-defined operator state and
// collective payloads between ranks.
//
// The format is a plain little-endian (host-order) concatenation of
// trivially-copyable values; variable-length sequences are preceded by a
// 64-bit count.  The archive is intentionally minimal: messages never leave
// the process (ranks are threads of one virtual machine), so no
// byte-swapping or versioning is needed — only bounds safety, which Reader
// enforces on every extraction.
//
// Zero-copy support: a Writer can be constructed over a recycled buffer
// (keeping its capacity) and `reset()` between uses, so a tree reduction
// serializes into the same allocation on every hop.  A Reader can hand out
// borrowed views (`get_raw`, `get_counted_raw`) so operators may combine
// directly out of a receive buffer without materializing vectors; since
// the view is byte-addressed and possibly unaligned, elements are read
// with `load_unaligned`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace rsmpi::bytes {

/// Reads one T from a possibly-unaligned byte position.  Companion to the
/// borrowed views below: a span handed out by Reader::get_counted_raw has
/// byte alignment only.
template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] T load_unaligned(const std::byte* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

/// Appends trivially-copyable values and sized sequences to a byte buffer.
class Writer {
 public:
  Writer() = default;

  /// Builds a writer over a recycled buffer: contents are cleared but the
  /// capacity is kept, so serializing into a pooled buffer allocates only
  /// if the state outgrew it.
  explicit Writer(std::vector<std::byte>&& storage) : buf_(std::move(storage)) {
    buf_.clear();
  }

  /// Clears the contents for reuse without releasing the allocation.
  void reset() { buf_.clear(); }

  /// Serialize one trivially-copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Serialize a sequence of trivially-copyable values preceded by its
  /// length, so the reader can recover it without out-of-band information.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_span(std::span<const T> values) {
    put<std::uint64_t>(values.size());
    if (!values.empty()) {
      const auto* p = reinterpret_cast<const std::byte*>(values.data());
      buf_.insert(buf_.end(), p, p + values.size_bytes());
    }
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& values) {
    put_span(std::span<const T>(values));
  }

  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  /// Raw bytes without a length prefix (caller manages framing).
  void put_raw(std::span<const std::byte> raw) {
    buf_.insert(buf_.end(), raw.begin(), raw.end());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::byte> view() const { return buf_; }

  /// Relinquish the underlying buffer.
  std::vector<std::byte> take() && { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Extracts values from a byte buffer written by Writer.  Every extraction
/// is bounds-checked and throws ProtocolError on underflow; length
/// prefixes are validated with overflow-checked arithmetic so a corrupted
/// count cannot wrap the bounds check.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T value;
    require(sizeof(T));
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    const std::size_t nbytes = checked_extent(n, sizeof(T));
    require(nbytes);
    std::vector<T> out(n);
    if (n > 0) {
      std::memcpy(out.data(), data_.data() + pos_, nbytes);
    }
    pos_ += nbytes;
    return out;
  }

  /// Reads a length-prefixed sequence into a caller-provided buffer, which
  /// must be exactly the serialized length.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void get_span(std::span<T> out) {
    const auto n = get<std::uint64_t>();
    if (n != out.size()) {
      throw ProtocolError("bytes::Reader: sequence length mismatch (have " +
                          std::to_string(n) + ", want " +
                          std::to_string(out.size()) + ")");
    }
    const std::size_t nbytes = checked_extent(n, sizeof(T));
    require(nbytes);
    if (n > 0) {
      std::memcpy(out.data(), data_.data() + pos_, nbytes);
    }
    pos_ += nbytes;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Borrows `nbytes` raw bytes from the archive without copying.  The
  /// view is valid only while the underlying payload is alive.
  [[nodiscard]] std::span<const std::byte> get_raw(std::size_t nbytes) {
    require(nbytes);
    const std::span<const std::byte> view = data_.subspan(pos_, nbytes);
    pos_ += nbytes;
    return view;
  }

  /// Reads a length prefix, then borrows the element bytes without
  /// copying.  Elements have byte alignment only — extract them with
  /// load_unaligned, never by reinterpret_cast.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::span<const std::byte> get_counted_raw(
      std::uint64_t* count_out = nullptr) {
    const auto n = get<std::uint64_t>();
    if (count_out != nullptr) *count_out = n;
    return get_raw(checked_extent(n, sizeof(T)));
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  /// n * elem_size with overflow detection: a hostile length prefix such
  /// as 2^61 with 8-byte elements would wrap the product and slip past
  /// require() into a huge resize.
  static std::size_t checked_extent(std::uint64_t n, std::size_t elem_size) {
    if (elem_size != 0 &&
        n > std::numeric_limits<std::size_t>::max() / elem_size) {
      throw ProtocolError(
          "bytes::Reader: sequence extent overflows (count " +
          std::to_string(n) + " x " + std::to_string(elem_size) + " bytes)");
    }
    return static_cast<std::size_t>(n) * elem_size;
  }

  void require(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw ProtocolError("bytes::Reader: payload underflow (need " +
                          std::to_string(n) + " bytes, have " +
                          std::to_string(data_.size() - pos_) + ")");
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Serializes a trivially-copyable value into a standalone buffer.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<std::byte> to_bytes(const T& value) {
  Writer w;
  w.put(value);
  return std::move(w).take();
}

/// Deserializes a trivially-copyable value from a standalone buffer.
template <typename T>
  requires std::is_trivially_copyable_v<T>
T from_bytes(std::span<const std::byte> data) {
  Reader r(data);
  T value = r.get<T>();
  if (!r.exhausted()) {
    throw ProtocolError("bytes::from_bytes: trailing bytes in payload");
  }
  return value;
}

}  // namespace rsmpi::bytes
