// Error types shared across the rsmpi library.
#pragma once

#include <stdexcept>
#include <string>

namespace rsmpi {

/// Base class for all errors raised by the rsmpi library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised on a rank when the parallel region is being torn down because
/// another rank threw.  Blocking receives unblock by throwing this, so a
/// single failing rank cannot deadlock the whole virtual machine.
class AbortError : public Error {
 public:
  explicit AbortError(const std::string& what) : Error(what) {}
};

/// Raised for malformed arguments (bad rank, negative count, ...).
class ArgumentError : public Error {
 public:
  explicit ArgumentError(const std::string& what) : Error(what) {}
};

/// Raised when deserialization runs past the end of a message payload or a
/// payload has an unexpected size.  Indicates a protocol bug or a corrupted
/// user-provided save/load pair.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// Raised by a blocking receive whose RecvDeadline expired before a
/// matching message arrived (e.g. because a fault plan dropped it).  The
/// receive has consumed nothing; the caller may retry or give up.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Raised by a receive path when a rank of the machine has exited (killed
/// by a fault plan, or crashed) while this rank would otherwise block
/// forever waiting for it.  Surfaced through the C API as
/// RSMPI_ERR_PEER_LOST rather than a hang.
class PeerLostError : public Error {
 public:
  explicit PeerLostError(const std::string& what) : Error(what) {}
};

/// Thrown inside a rank body when the fault plan kills that rank
/// mid-collective.  The runtime converts it into PeerLostError on every
/// sibling rank and rethrows it to run()'s caller as the root cause.
class RankKilledError : public Error {
 public:
  explicit RankKilledError(const std::string& what) : Error(what) {}
};

/// Raised under the model-checking tier (mprt/sim.hpp ScheduleOracle) when
/// the starvation monitor proves that every live rank is blocked with no
/// deliverable message anywhere — a global deadlock.  Only rank threads can
/// enqueue messages, so the condition is stable once observed; surfacing it
/// as a typed error is what turns "no silent hang" from a wall-clock
/// timeout into a structural check.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

}  // namespace rsmpi
