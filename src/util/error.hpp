// Error types shared across the rsmpi library.
#pragma once

#include <stdexcept>
#include <string>

namespace rsmpi {

/// Base class for all errors raised by the rsmpi library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised on a rank when the parallel region is being torn down because
/// another rank threw.  Blocking receives unblock by throwing this, so a
/// single failing rank cannot deadlock the whole virtual machine.
class AbortError : public Error {
 public:
  explicit AbortError(const std::string& what) : Error(what) {}
};

/// Raised for malformed arguments (bad rank, negative count, ...).
class ArgumentError : public Error {
 public:
  explicit ArgumentError(const std::string& what) : Error(what) {}
};

/// Raised when deserialization runs past the end of a message payload or a
/// payload has an unexpected size.  Indicates a protocol bug or a corrupted
/// user-provided save/load pair.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

}  // namespace rsmpi
