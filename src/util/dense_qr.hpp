// Dense thin-QR reference kernel (ISSUE 9): classic Householder QR of a
// row-major rows x cols matrix, no external BLAS.  This is the *numerical
// oracle* for rs::ops::TSQR — the distributed Givens merge must agree with
// this factorization to within O(eps * cols), and the explicit thin Q it
// forms backs the orthogonality / residual checks the bench gates on.
//
// Sign convention: the factorization is canonicalized to a nonnegative
// diagonal of R (flip row of R + column of Q), matching the TSQR
// operator's invariant so R factors are directly comparable.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace rsmpi::util::qr {

/// Thin QR factors of a rows x cols matrix A: Q is rows x cols with
/// orthonormal columns (row-major), R is cols x cols upper triangular
/// (row-major) with nonnegative diagonal, and A == Q * R up to rounding.
struct QrFactors {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> q;  // rows x cols, row-major
  std::vector<double> r;  // cols x cols, row-major, upper triangular

  [[nodiscard]] double r_entry(std::size_t i, std::size_t j) const {
    return r[i * cols + j];
  }
  [[nodiscard]] double q_entry(std::size_t i, std::size_t j) const {
    return q[i * cols + j];
  }
};

/// Householder QR with explicit thin-Q formation.  `a` is row-major
/// rows x cols; rows < cols is allowed (trailing rows of R stay zero).
inline QrFactors householder_qr(std::size_t rows, std::size_t cols,
                                std::span<const double> a) {
  if (cols == 0) throw ArgumentError("householder_qr: need at least 1 column");
  if (a.size() != rows * cols) {
    throw ArgumentError("householder_qr: matrix size mismatch");
  }
  // Work copy of A; reflectors v_j (normalized to v[0] = 1) and their
  // scalars beta_j are kept to form Q afterwards.
  std::vector<double> w(a.begin(), a.end());
  const std::size_t steps = std::min(rows, cols);
  std::vector<std::vector<double>> vs(steps);
  std::vector<double> betas(steps, 0.0);

  const auto at = [&](std::size_t i, std::size_t j) -> double& {
    return w[i * cols + j];
  };

  for (std::size_t j = 0; j < steps; ++j) {
    double sigma = 0.0;
    for (std::size_t i = j; i < rows; ++i) sigma += at(i, j) * at(i, j);
    sigma = std::sqrt(sigma);
    if (sigma == 0.0) continue;  // column already zero below the diagonal
    const double x0 = at(j, j);
    const double alpha = x0 >= 0.0 ? -sigma : sigma;
    std::vector<double> v(rows - j);
    v[0] = x0 - alpha;
    for (std::size_t i = j + 1; i < rows; ++i) v[i - j] = at(i, j);
    double vtv = 0.0;
    for (const double x : v) vtv += x * x;
    if (vtv == 0.0) continue;
    const double beta = 2.0 / vtv;
    // Apply I - beta v v^T to the trailing columns of W.
    for (std::size_t t = j; t < cols; ++t) {
      double dot = 0.0;
      for (std::size_t i = j; i < rows; ++i) dot += v[i - j] * at(i, t);
      dot *= beta;
      for (std::size_t i = j; i < rows; ++i) at(i, t) -= dot * v[i - j];
    }
    at(j, j) = alpha;
    for (std::size_t i = j + 1; i < rows; ++i) at(i, j) = 0.0;
    vs[j] = std::move(v);
    betas[j] = beta;
  }

  QrFactors f;
  f.rows = rows;
  f.cols = cols;
  f.r.assign(cols * cols, 0.0);
  for (std::size_t i = 0; i < steps; ++i) {
    for (std::size_t j = i; j < cols; ++j) f.r[i * cols + j] = at(i, j);
  }

  // Thin Q: apply the reflectors in reverse to the first `cols` columns of
  // the identity.
  f.q.assign(rows * cols, 0.0);
  for (std::size_t j = 0; j < std::min(rows, cols); ++j) f.q[j * cols + j] = 1.0;
  for (std::size_t j = steps; j-- > 0;) {
    if (betas[j] == 0.0) continue;
    const std::vector<double>& v = vs[j];
    for (std::size_t t = 0; t < cols; ++t) {
      double dot = 0.0;
      for (std::size_t i = j; i < rows; ++i) dot += v[i - j] * f.q[i * cols + t];
      dot *= betas[j];
      for (std::size_t i = j; i < rows; ++i) f.q[i * cols + t] -= dot * v[i - j];
    }
  }

  // Canonicalize: nonnegative diagonal of R.
  for (std::size_t j = 0; j < std::min(rows, cols); ++j) {
    if (f.r[j * cols + j] < 0.0) {
      for (std::size_t t = j; t < cols; ++t) f.r[j * cols + t] = -f.r[j * cols + t];
      for (std::size_t i = 0; i < rows; ++i) f.q[i * cols + j] = -f.q[i * cols + j];
    }
  }
  return f;
}

/// ‖QᵀQ − I‖∞ (max row sum): how far the thin Q is from orthonormal.
inline double orthogonality_error(const QrFactors& f) {
  double worst = 0.0;
  for (std::size_t i = 0; i < f.cols; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < f.cols; ++j) {
      double dot = 0.0;
      for (std::size_t r = 0; r < f.rows; ++r) {
        dot += f.q[r * f.cols + i] * f.q[r * f.cols + j];
      }
      if (i == j) dot -= 1.0;
      row_sum += std::fabs(dot);
    }
    worst = std::max(worst, row_sum);
  }
  return worst;
}

/// ‖A − QR‖F / ‖A‖F for a caller-supplied (Q, R) pair: Q row-major
/// rows x cols, R row-major cols x cols upper triangular.
inline double relative_residual(std::size_t rows, std::size_t cols,
                                std::span<const double> a,
                                std::span<const double> q,
                                std::span<const double> r) {
  if (a.size() != rows * cols || q.size() != rows * cols ||
      r.size() != cols * cols) {
    throw ArgumentError("relative_residual: shape mismatch");
  }
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      double qr = 0.0;
      for (std::size_t t = 0; t <= j && t < cols; ++t) {
        qr += q[i * cols + t] * r[t * cols + j];
      }
      const double d = a[i * cols + j] - qr;
      num += d * d;
      den += a[i * cols + j] * a[i * cols + j];
    }
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : HUGE_VAL;
  return std::sqrt(num / den);
}

/// Least-squares Q for a given upper-triangular R: Q = A · R⁻¹ by forward
/// substitution per row (R is upper triangular, so column j of Q needs
/// columns < j already solved).  Used to manufacture a Q for the *reduced*
/// R that TSQR produces, since the reduction ships only R.
inline std::vector<double> solve_q(std::size_t rows, std::size_t cols,
                                   std::span<const double> a,
                                   std::span<const double> r) {
  if (a.size() != rows * cols || r.size() != cols * cols) {
    throw ArgumentError("solve_q: shape mismatch");
  }
  std::vector<double> q(rows * cols, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      double sum = a[i * cols + j];
      for (std::size_t t = 0; t < j; ++t) {
        sum -= q[i * cols + t] * r[t * cols + j];
      }
      const double d = r[j * cols + j];
      q[i * cols + j] = d == 0.0 ? 0.0 : sum / d;
    }
  }
  return q;
}

}  // namespace rsmpi::util::qr
