// bytes.hpp is header-only; this translation unit exists to give the build a
// home for the archive's symbols should out-of-line definitions be added.
#include "util/bytes.hpp"
