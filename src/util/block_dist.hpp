// Block distribution arithmetic: n elements over p ranks, first n % p
// ranks one element heavier.  Shared by the distributed-array substrate
// and the scan-built algorithms.
#pragma once

#include <algorithm>
#include <cstdint>

namespace rsmpi {

struct BlockDist {
  std::int64_t n = 0;
  int p = 1;

  [[nodiscard]] std::int64_t size_of(int rank) const {
    return n / p + (rank < static_cast<int>(n % p) ? 1 : 0);
  }
  [[nodiscard]] std::int64_t start_of(int rank) const {
    return (n / p) * rank + std::min<std::int64_t>(rank, n % p);
  }
  /// The rank owning global position `pos` (0 <= pos < n).
  [[nodiscard]] int owner_of(std::int64_t pos) const {
    // Positions below the heavy/light boundary belong to heavy ranks.
    const std::int64_t heavy = n % p;
    const std::int64_t heavy_span = heavy * (n / p + 1);
    if (pos < heavy_span) {
      return static_cast<int>(pos / (n / p + 1));
    }
    if (n / p == 0) return static_cast<int>(heavy);  // degenerate: n < p
    return static_cast<int>(heavy + (pos - heavy_span) / (n / p));
  }
};

}  // namespace rsmpi
