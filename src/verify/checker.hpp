// Scenario matrix for the exhaustive model checker (ISSUE 7), built over
// the shared operator registry (src/verify/registry.hpp, ISSUE 9): the
// zoo, per-rank inputs, and oracles live there so the sim / par suites
// enumerate the same list.  Scenario builders cover the five autotuned
// schedules (blocking path), the direct pipelined panel path for
// partitionable operators, the planted mutation, the nonblocking paths
// (the commutative combine-as-available tree driven directly, plus
// reduce_async), and the persistent-plan replay from src/svc — each
// scenario a self-checking Runner comparing every completed rank's result
// against the registry's oracle (serial fold for exact operators, the
// binomial-tree bracketing for TSQR).
#pragma once

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coll/nb/progress.hpp"
#include "coll/pipeline.hpp"
#include "mprt/runtime.hpp"
#include "rs/async.hpp"
#include "rs/ops/counts.hpp"
#include "rs/serial.hpp"
#include "rs/state_exchange.hpp"
#include "svc/persistent.hpp"
#include "verify/explorer.hpp"
#include "verify/registry.hpp"

namespace rsmpi::verify {

// -- Runner factory ---------------------------------------------------------

namespace detail {

/// Wraps a per-rank collective body into a self-checking Runner: run the
/// machine under the oracle, then compare every completed rank's result
/// against the serial oracle bit-for-bit (operator results are compared
/// through operator==; for these ops that is exact).  Typed rsmpi errors
/// unwinding the run land in typed_error; anything untyped is itself a
/// violation (the liveness contract says result or *typed* error).
template <typename Op, typename Collective>
Runner make_runner(int p, Collective collective) {
  return [p, collective](RecordingOracle& oracle) -> ExecutionResult {
    using Result = rs::reduce_result_t<Op>;
    const Result want = expected_result<Op>(p);
    std::vector<std::optional<Result>> got(static_cast<std::size_t>(p));
    ExecutionResult result;
    mprt::SimConfig sim;
    sim.oracle = &oracle;
    try {
      mprt::run(
          p,
          [&](mprt::Comm& comm) {
            got[static_cast<std::size_t>(comm.rank())] =
                collective(comm);
          },
          mprt::CostModel{}, sim);
    } catch (const Error& e) {
      result.typed_error = true;
      result.error_what = e.what();
    } catch (const std::exception& e) {
      result.failed = true;
      result.detail =
          std::string("untyped exception escaped the run: ") + e.what();
      return result;
    }
    for (int r = 0; r < p; ++r) {
      const auto& mine = got[static_cast<std::size_t>(r)];
      if (mine.has_value() && !(*mine == want)) {
        result.failed = true;
        result.detail = "rank " + std::to_string(r) +
                        ": result differs from the serial oracle";
        return result;
      }
    }
    return result;
  };
}

}  // namespace detail

// -- Scenario builders ------------------------------------------------------

inline std::string schedule_name(rs::detail::Schedule schedule) {
  using S = rs::detail::Schedule;
  switch (schedule) {
    case S::kAuto:
      return "auto";
    case S::kTwoMessage:
      return "two_message";
    case S::kButterfly:
      return "butterfly";
    case S::kRabenseifner:
      return "rabenseifner";
    case S::kRing:
      return "ring";
    case S::kPipelined:
      return "pipelined";
  }
  return "unknown";
}

/// Small segments so the segmented schedules (ring / pipelined /
/// Rabenseifner chunks) actually split the checker states into multiple
/// messages instead of degenerating to one segment.
inline constexpr std::size_t kCheckerSegmentBytes = 8;

/// Blocking allreduce through one pinned schedule.
template <typename Op>
Scenario blocking_scenario(const std::string& op_name, int p,
                           rs::detail::Schedule schedule) {
  Scenario s;
  s.name = op_name + "-" + schedule_name(schedule) + "-p" + std::to_string(p);
  s.num_ranks = p;
  s.runner = detail::make_runner<Op>(p, [schedule](mprt::Comm& comm) {
    Op op = accumulated<Op>(comm.rank());
    const Op prototype = make_prototype<Op>();
    rs::detail::state_allreduce_with_schedule(comm, op, prototype, schedule,
                                              kCheckerSegmentBytes,
                                              rs::op_commutative<Op>());
    return rs::red_result(op);
  });
  return s;
}

/// The planted ordering bug: the deliberately-wrong variant that routes
/// any operator through the commutative-only combine-as-available tree.
/// With OrderedWord the explorer must catch it (mutation_test).
template <typename Op>
Scenario mutation_scenario(const std::string& op_name, int p) {
  Scenario s;
  s.name = op_name + "-mutation-p" + std::to_string(p);
  s.num_ranks = p;
  s.runner = detail::make_runner<Op>(p, [](mprt::Comm& comm) {
    Op op = accumulated<Op>(comm.rank());
    const Op prototype = make_prototype<Op>();
    rs::detail::state_allreduce_mutation_unordered(comm, op, prototype);
    return rs::red_result(op);
  });
  return s;
}

/// Nonblocking combine-as-available tree, driven directly (the production
/// dispatch only hands commutative operators to the butterfly/ring, so the
/// fold-on-arrival branch is exercised here by explicit construction).
/// Only valid for commutative operators.
template <typename Op>
Scenario nb_tree_scenario(const std::string& op_name, int p) {
  static_assert(rs::op_commutative<Op>(),
                "nb_tree_scenario drives the commutative branch");
  Scenario s;
  s.name = op_name + "-nbtree-p" + std::to_string(p);
  s.num_ranks = p;
  s.runner = detail::make_runner<Op>(p, [](mprt::Comm& comm) {
    const Op prototype = make_prototype<Op>();
    auto state = std::make_shared<rs::detail::AsyncOpState<Op>>(
        accumulated<Op>(comm.rank()), prototype);
    const int tag = comm.reserve_collective_tags(2);
    auto request = coll::nb::ProgressEngine::current().launch(
        comm,
        std::make_unique<rs::detail::StateAllreduceOp<Op>>(
            comm, state, /*commutative=*/true, tag, tag + 1),
        tag, 2);
    request.wait();
    return rs::red_result(state->op);
  });
  return s;
}

/// The production async path: rs::reduce_async (butterfly or binomial by
/// the operator's own commutativity trait).
template <typename Op>
Scenario async_scenario(const std::string& op_name, int p) {
  Scenario s;
  s.name = op_name + "-async-p" + std::to_string(p);
  s.num_ranks = p;
  s.runner = detail::make_runner<Op>(p, [](mprt::Comm& comm) {
    auto future = rs::reduce_async(comm, rank_inputs<Op>(comm.rank()),
                                   make_prototype<Op>());
    return future.get();
  });
  return s;
}

/// The order-preserving pipelined binomial allreduce driven directly with
/// the tiny checker segment size, so partitionable states genuinely
/// stream as multiple panels — for TSQR, column panels through the
/// streamed-session merge.  This is the path that proves the panel
/// machinery presents zero schedule freedom under exhaustive exploration.
template <typename Op>
Scenario pipelined_panel_scenario(const std::string& op_name, int p) {
  static_assert(rs::op_partitionable<Op>(),
                "pipelined_panel_scenario needs partitionable state");
  Scenario s;
  s.name = op_name + "-pipelined-panels-p" + std::to_string(p);
  s.num_ranks = p;
  s.runner = detail::make_runner<Op>(p, [](mprt::Comm& comm) {
    Op op = accumulated<Op>(comm.rank());
    rs::detail::state_allreduce_pipelined(comm, op, kCheckerSegmentBytes);
    return rs::red_result(op);
  });
  return s;
}

inline constexpr int kPersistentEpochs = 2;

/// Persistent-plan replay (satellite 3): plan once, execute two epochs.
/// Every completed epoch's result must equal the serial oracle — a
/// pre-fault epoch must replay bit-identically even when a later epoch is
/// killed mid-collective.
template <typename Op>
Scenario persistent_scenario(const std::string& op_name, int p) {
  Scenario s;
  s.name = op_name + "-persistent-p" + std::to_string(p);
  s.num_ranks = p;
  s.runner = [p](RecordingOracle& oracle) -> ExecutionResult {
    using Result = rs::reduce_result_t<Op>;
    const Result want = expected_result<Op>(p);
    std::vector<std::vector<std::optional<Result>>> got(
        kPersistentEpochs,
        std::vector<std::optional<Result>>(static_cast<std::size_t>(p)));
    ExecutionResult result;
    mprt::SimConfig sim;
    sim.oracle = &oracle;
    try {
      mprt::run(
          p,
          [&](mprt::Comm& comm) {
            svc::PersistentReduce<Op> handle(comm, make_prototype<Op>());
            for (int epoch = 0; epoch < kPersistentEpochs; ++epoch) {
              const Result r =
                  handle.execute(rank_inputs<Op>(comm.rank()));
              got[static_cast<std::size_t>(epoch)]
                 [static_cast<std::size_t>(comm.rank())] = r;
            }
          },
          mprt::CostModel{}, sim);
    } catch (const Error& e) {
      result.typed_error = true;
      result.error_what = e.what();
    } catch (const std::exception& e) {
      result.failed = true;
      result.detail =
          std::string("untyped exception escaped the run: ") + e.what();
      return result;
    }
    for (int epoch = 0; epoch < kPersistentEpochs; ++epoch) {
      for (int r = 0; r < p; ++r) {
        const auto& mine = got[static_cast<std::size_t>(epoch)]
                              [static_cast<std::size_t>(r)];
        if (mine.has_value() && !(*mine == want)) {
          result.failed = true;
          result.detail = "epoch " + std::to_string(epoch) + " rank " +
                          std::to_string(r) +
                          ": persistent replay differs from the serial "
                          "oracle";
          return result;
        }
      }
    }
    return result;
  };
  return s;
}

// -- Scenario registry ------------------------------------------------------

class ScenarioSet {
 public:
  void add(Scenario scenario) { scenarios_.push_back(std::move(scenario)); }

  [[nodiscard]] const std::vector<Scenario>& all() const { return scenarios_; }

  [[nodiscard]] const Scenario* find(const std::string& name) const {
    for (const Scenario& s : scenarios_) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

 private:
  std::vector<Scenario> scenarios_;
};

/// The standard checker matrix at one machine size, enumerated from the
/// shared registry (satellite 6): every zoo operator gets the blocking
/// schedules its traits admit (all five for partitionable or
/// noncommutative operators — noncommutative ones route every name to the
/// order-preserving path — two for the rest), the commutative ones the
/// nonblocking combine-as-available tree, the partitionable ones the
/// direct pipelined panel path, plus the async and persistent tiers per
/// the registry flags.  The planted mutation is NOT in the standard set —
/// mutation_scenario builds it for the detection test only.
inline ScenarioSet standard_scenarios(int p) {
  using S = rs::detail::Schedule;
  ScenarioSet set;
  for_each_zoo_op([&](auto tag, const ZooOpInfo& info) {
    using Op = typename decltype(tag)::type;
    const std::string name = info.name;
    const bool all_schedules = info.partitionable || !info.commutative;
    for (const S schedule : {S::kTwoMessage, S::kButterfly, S::kRabenseifner,
                             S::kRing, S::kPipelined}) {
      if (!all_schedules && schedule != S::kTwoMessage &&
          schedule != S::kButterfly) {
        continue;
      }
      set.add(blocking_scenario<Op>(name, p, schedule));
    }
    if constexpr (rs::op_commutative<Op>()) {
      set.add(nb_tree_scenario<Op>(name, p));
    }
    if constexpr (rs::op_partitionable<Op>()) {
      set.add(pipelined_panel_scenario<Op>(name, p));
    }
    if (info.async_tier) set.add(async_scenario<Op>(name, p));
    if (info.persistent_tier) set.add(persistent_scenario<Op>(name, p));
  });
  return set;
}

/// Every scenario a trace might name, across the machine sizes the tests
/// explore (p in [2, max_p]), plus the mutation targets.
inline ScenarioSet replayable_scenarios(int max_p = 5) {
  ScenarioSet set;
  for (int p = 2; p <= max_p; ++p) {
    const ScenarioSet base = standard_scenarios(p);
    for (const Scenario& s : base.all()) set.add(s);
    set.add(mutation_scenario<OrderedWord>("word", p));
    set.add(mutation_scenario<rs::ops::TSQR>("tsqr", p));
  }
  return set;
}

/// RSMPI_VERIFY_TRACE replay hook: when the variable is set, decodes it,
/// resolves the scenario, and replays that single execution — the
/// one-violation reproduction loop.  Returns std::nullopt when the
/// variable is unset.  Throws ArgumentError on malformed traces or
/// unknown scenario names.
inline std::optional<ExecutionResult> replay_from_env(
    const ScenarioSet& set) {
  const char* raw = std::getenv("RSMPI_VERIFY_TRACE");
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  const Trace trace = decode_trace(raw);
  const Scenario* scenario = set.find(trace.scenario);
  if (scenario == nullptr) {
    throw ArgumentError("RSMPI_VERIFY_TRACE: unknown scenario '" +
                        trace.scenario + "'");
  }
  return replay(*scenario, trace);
}

}  // namespace rsmpi::verify
