// The checker zoo and scenario matrix for the exhaustive model checker
// (ISSUE 7).
//
// Two stress operators complement the production ops:
//
//   * OrderedWord (satellite 1) — a noncommutative ordered-concat whose
//     tokens carry their originating rank.  Any schedule that folds ranks
//     out of order scrambles the word, so the explorer flags a
//     commutative-only schedule being selected for it the moment it
//     happens: a correctly-routed OrderedWord collective presents *zero*
//     choice points (the order-preserving schedules have no arrival-order
//     freedom), and the planted mutation presents many, most failing.
//
//   * CanonSet — a *semantically* commutative set-union whose state bytes
//     are insertion-ordered.  Its combine commutes as a set but not
//     byte-wise, so the explorer's all-orders probe cannot prune and must
//     genuinely branch; gen() sorts, so every interleaving must still
//     produce the identical result.  This is the operator that proves the
//     DFS explores real schedule freedom with zero violations.
//
// Scenario builders cover the five autotuned schedules (blocking path),
// the planted mutation, the nonblocking paths (the commutative
// combine-as-available tree driven directly, plus reduce_async), and the
// persistent-plan replay from src/svc — each scenario a self-checking
// Runner comparing every completed rank's result against the serial
// oracle.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coll/nb/progress.hpp"
#include "mprt/runtime.hpp"
#include "rs/async.hpp"
#include "rs/ops/counts.hpp"
#include "rs/serial.hpp"
#include "rs/state_exchange.hpp"
#include "svc/persistent.hpp"
#include "verify/explorer.hpp"

namespace rsmpi::verify {

// -- Operator zoo -----------------------------------------------------------

/// Noncommutative ordered concatenation of rank-tagged tokens.
class OrderedWord {
 public:
  static constexpr bool commutative = false;

  void accum(const int& token) {
    word_ += "<" + std::to_string(token) + ">";
  }
  void combine(const OrderedWord& other) { word_ += other.word_; }
  [[nodiscard]] std::string gen() const { return word_; }

  void save(bytes::Writer& w) const { w.put_string(word_); }
  void load(bytes::Reader& r) { word_ = r.get_string(); }

 private:
  std::string word_;
};

/// Set union with insertion-ordered state bytes and sorted output.
/// Commutative by the operator trait (absent => true), but its serialized
/// state depends on fold order — the probe cannot prune, the result check
/// still must pass on every branch.
class CanonSet {
 public:
  void accum(const int& x) { insert(x); }
  void combine(const CanonSet& other) {
    for (const int x : other.elems_) insert(x);
  }
  [[nodiscard]] std::vector<int> gen() const {
    std::vector<int> sorted = elems_;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }

  void save(bytes::Writer& w) const { w.put_vector(elems_); }
  void load(bytes::Reader& r) { elems_ = r.get_vector<int>(); }

 private:
  void insert(int x) {
    if (std::find(elems_.begin(), elems_.end(), x) == elems_.end()) {
      elems_.push_back(x);
    }
  }

  std::vector<int> elems_;
};

// -- Inputs and expectations ------------------------------------------------

inline constexpr std::size_t kCheckerBuckets = 6;
inline constexpr int kCheckerTokensPerRank = 3;

/// Deterministic rank-tagged raw tokens: rank r contributes
/// {10r, 10r+1, 10r+2}.  Each operator maps them into its own input
/// domain below.
inline std::vector<int> rank_tokens(int rank) {
  std::vector<int> tokens;
  tokens.reserve(kCheckerTokensPerRank);
  for (int i = 0; i < kCheckerTokensPerRank; ++i) {
    tokens.push_back(rank * 10 + i);
  }
  return tokens;
}

template <typename Op>
std::vector<int> rank_inputs(int rank) {
  std::vector<int> inputs = rank_tokens(rank);
  if constexpr (std::is_same_v<Op, rs::ops::Counts>) {
    for (int& x : inputs) x %= static_cast<int>(kCheckerBuckets);
  } else if constexpr (std::is_same_v<Op, CanonSet>) {
    // Overlap across ranks so the union actually deduplicates.
    inputs.push_back(7);
  }
  return inputs;
}

template <typename Op>
Op make_prototype() {
  if constexpr (std::is_same_v<Op, rs::ops::Counts>) {
    return rs::ops::Counts(kCheckerBuckets);
  } else {
    return Op{};
  }
}

/// The serial oracle: every rank's inputs folded in rank order.
template <typename Op>
rs::reduce_result_t<Op> expected_result(int p) {
  Op op = make_prototype<Op>();
  for (int r = 0; r < p; ++r) {
    for (const int x : rank_inputs<Op>(r)) op.accum(x);
  }
  return rs::red_result(op);
}

// -- Runner factory ---------------------------------------------------------

namespace detail {

/// Wraps a per-rank collective body into a self-checking Runner: run the
/// machine under the oracle, then compare every completed rank's result
/// against the serial oracle bit-for-bit (operator results are compared
/// through operator==; for these ops that is exact).  Typed rsmpi errors
/// unwinding the run land in typed_error; anything untyped is itself a
/// violation (the liveness contract says result or *typed* error).
template <typename Op, typename Collective>
Runner make_runner(int p, Collective collective) {
  return [p, collective](RecordingOracle& oracle) -> ExecutionResult {
    using Result = rs::reduce_result_t<Op>;
    const Result want = expected_result<Op>(p);
    std::vector<std::optional<Result>> got(static_cast<std::size_t>(p));
    ExecutionResult result;
    mprt::SimConfig sim;
    sim.oracle = &oracle;
    try {
      mprt::run(
          p,
          [&](mprt::Comm& comm) {
            got[static_cast<std::size_t>(comm.rank())] =
                collective(comm);
          },
          mprt::CostModel{}, sim);
    } catch (const Error& e) {
      result.typed_error = true;
      result.error_what = e.what();
    } catch (const std::exception& e) {
      result.failed = true;
      result.detail =
          std::string("untyped exception escaped the run: ") + e.what();
      return result;
    }
    for (int r = 0; r < p; ++r) {
      const auto& mine = got[static_cast<std::size_t>(r)];
      if (mine.has_value() && !(*mine == want)) {
        result.failed = true;
        result.detail = "rank " + std::to_string(r) +
                        ": result differs from the serial oracle";
        return result;
      }
    }
    return result;
  };
}

/// Accumulates this rank's inputs into a fresh identity state.
template <typename Op>
Op accumulated(int rank) {
  Op op = make_prototype<Op>();
  for (const int x : rank_inputs<Op>(rank)) op.accum(x);
  return op;
}

}  // namespace detail

// -- Scenario builders ------------------------------------------------------

inline std::string schedule_name(rs::detail::Schedule schedule) {
  using S = rs::detail::Schedule;
  switch (schedule) {
    case S::kAuto:
      return "auto";
    case S::kTwoMessage:
      return "two_message";
    case S::kButterfly:
      return "butterfly";
    case S::kRabenseifner:
      return "rabenseifner";
    case S::kRing:
      return "ring";
    case S::kPipelined:
      return "pipelined";
  }
  return "unknown";
}

/// Small segments so the segmented schedules (ring / pipelined /
/// Rabenseifner chunks) actually split the checker states into multiple
/// messages instead of degenerating to one segment.
inline constexpr std::size_t kCheckerSegmentBytes = 8;

/// Blocking allreduce through one pinned schedule.
template <typename Op>
Scenario blocking_scenario(const std::string& op_name, int p,
                           rs::detail::Schedule schedule) {
  Scenario s;
  s.name = op_name + "-" + schedule_name(schedule) + "-p" + std::to_string(p);
  s.num_ranks = p;
  s.runner = detail::make_runner<Op>(p, [schedule](mprt::Comm& comm) {
    Op op = detail::accumulated<Op>(comm.rank());
    const Op prototype = make_prototype<Op>();
    rs::detail::state_allreduce_with_schedule(comm, op, prototype, schedule,
                                              kCheckerSegmentBytes,
                                              rs::op_commutative<Op>());
    return rs::red_result(op);
  });
  return s;
}

/// The planted ordering bug: the deliberately-wrong variant that routes
/// any operator through the commutative-only combine-as-available tree.
/// With OrderedWord the explorer must catch it (mutation_test).
template <typename Op>
Scenario mutation_scenario(const std::string& op_name, int p) {
  Scenario s;
  s.name = op_name + "-mutation-p" + std::to_string(p);
  s.num_ranks = p;
  s.runner = detail::make_runner<Op>(p, [](mprt::Comm& comm) {
    Op op = detail::accumulated<Op>(comm.rank());
    const Op prototype = make_prototype<Op>();
    rs::detail::state_allreduce_mutation_unordered(comm, op, prototype);
    return rs::red_result(op);
  });
  return s;
}

/// Nonblocking combine-as-available tree, driven directly (the production
/// dispatch only hands commutative operators to the butterfly/ring, so the
/// fold-on-arrival branch is exercised here by explicit construction).
/// Only valid for commutative operators.
template <typename Op>
Scenario nb_tree_scenario(const std::string& op_name, int p) {
  static_assert(rs::op_commutative<Op>(),
                "nb_tree_scenario drives the commutative branch");
  Scenario s;
  s.name = op_name + "-nbtree-p" + std::to_string(p);
  s.num_ranks = p;
  s.runner = detail::make_runner<Op>(p, [](mprt::Comm& comm) {
    const Op prototype = make_prototype<Op>();
    auto state = std::make_shared<rs::detail::AsyncOpState<Op>>(
        detail::accumulated<Op>(comm.rank()), prototype);
    const int tag = comm.reserve_collective_tags(2);
    auto request = coll::nb::ProgressEngine::current().launch(
        comm,
        std::make_unique<rs::detail::StateAllreduceOp<Op>>(
            comm, state, /*commutative=*/true, tag, tag + 1),
        tag, 2);
    request.wait();
    return rs::red_result(state->op);
  });
  return s;
}

/// The production async path: rs::reduce_async (butterfly or binomial by
/// the operator's own commutativity trait).
template <typename Op>
Scenario async_scenario(const std::string& op_name, int p) {
  Scenario s;
  s.name = op_name + "-async-p" + std::to_string(p);
  s.num_ranks = p;
  s.runner = detail::make_runner<Op>(p, [](mprt::Comm& comm) {
    auto future = rs::reduce_async(comm, rank_inputs<Op>(comm.rank()),
                                   make_prototype<Op>());
    return future.get();
  });
  return s;
}

inline constexpr int kPersistentEpochs = 2;

/// Persistent-plan replay (satellite 3): plan once, execute two epochs.
/// Every completed epoch's result must equal the serial oracle — a
/// pre-fault epoch must replay bit-identically even when a later epoch is
/// killed mid-collective.
template <typename Op>
Scenario persistent_scenario(const std::string& op_name, int p) {
  Scenario s;
  s.name = op_name + "-persistent-p" + std::to_string(p);
  s.num_ranks = p;
  s.runner = [p](RecordingOracle& oracle) -> ExecutionResult {
    using Result = rs::reduce_result_t<Op>;
    const Result want = expected_result<Op>(p);
    std::vector<std::vector<std::optional<Result>>> got(
        kPersistentEpochs,
        std::vector<std::optional<Result>>(static_cast<std::size_t>(p)));
    ExecutionResult result;
    mprt::SimConfig sim;
    sim.oracle = &oracle;
    try {
      mprt::run(
          p,
          [&](mprt::Comm& comm) {
            svc::PersistentReduce<Op> handle(comm, make_prototype<Op>());
            for (int epoch = 0; epoch < kPersistentEpochs; ++epoch) {
              const Result r =
                  handle.execute(rank_inputs<Op>(comm.rank()));
              got[static_cast<std::size_t>(epoch)]
                 [static_cast<std::size_t>(comm.rank())] = r;
            }
          },
          mprt::CostModel{}, sim);
    } catch (const Error& e) {
      result.typed_error = true;
      result.error_what = e.what();
    } catch (const std::exception& e) {
      result.failed = true;
      result.detail =
          std::string("untyped exception escaped the run: ") + e.what();
      return result;
    }
    for (int epoch = 0; epoch < kPersistentEpochs; ++epoch) {
      for (int r = 0; r < p; ++r) {
        const auto& mine = got[static_cast<std::size_t>(epoch)]
                              [static_cast<std::size_t>(r)];
        if (mine.has_value() && !(*mine == want)) {
          result.failed = true;
          result.detail = "epoch " + std::to_string(epoch) + " rank " +
                          std::to_string(r) +
                          ": persistent replay differs from the serial "
                          "oracle";
          return result;
        }
      }
    }
    return result;
  };
  return s;
}

// -- Scenario registry ------------------------------------------------------

class ScenarioSet {
 public:
  void add(Scenario scenario) { scenarios_.push_back(std::move(scenario)); }

  [[nodiscard]] const std::vector<Scenario>& all() const { return scenarios_; }

  [[nodiscard]] const Scenario* find(const std::string& name) const {
    for (const Scenario& s : scenarios_) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

 private:
  std::vector<Scenario> scenarios_;
};

/// The standard checker matrix at one machine size: all five schedules x
/// {commutative (Counts), noncommutative (OrderedWord)} on the blocking
/// path, CanonSet on the branching paths, the nonblocking tree and async
/// dispatch, and the persistent-plan replay.  The planted mutation is NOT
/// in the standard set — mutation_scenario builds it for the detection
/// test only.
inline ScenarioSet standard_scenarios(int p) {
  using S = rs::detail::Schedule;
  ScenarioSet set;
  for (const S schedule : {S::kTwoMessage, S::kButterfly, S::kRabenseifner,
                           S::kRing, S::kPipelined}) {
    set.add(blocking_scenario<rs::ops::Counts>("counts", p, schedule));
    set.add(blocking_scenario<OrderedWord>("word", p, schedule));
  }
  set.add(blocking_scenario<CanonSet>("canon", p, S::kTwoMessage));
  set.add(blocking_scenario<CanonSet>("canon", p, S::kButterfly));
  set.add(nb_tree_scenario<rs::ops::Counts>("counts", p));
  set.add(nb_tree_scenario<CanonSet>("canon", p));
  set.add(async_scenario<rs::ops::Counts>("counts", p));
  set.add(async_scenario<OrderedWord>("word", p));
  set.add(persistent_scenario<rs::ops::Counts>("counts", p));
  set.add(persistent_scenario<OrderedWord>("word", p));
  return set;
}

/// Every scenario a trace might name, across the machine sizes the tests
/// explore (p in [2, max_p]), plus the mutation targets.
inline ScenarioSet replayable_scenarios(int max_p = 5) {
  ScenarioSet set;
  for (int p = 2; p <= max_p; ++p) {
    const ScenarioSet base = standard_scenarios(p);
    for (const Scenario& s : base.all()) set.add(s);
    set.add(mutation_scenario<OrderedWord>("word", p));
  }
  return set;
}

/// RSMPI_VERIFY_TRACE replay hook: when the variable is set, decodes it,
/// resolves the scenario, and replays that single execution — the
/// one-violation reproduction loop.  Returns std::nullopt when the
/// variable is unset.  Throws ArgumentError on malformed traces or
/// unknown scenario names.
inline std::optional<ExecutionResult> replay_from_env(
    const ScenarioSet& set) {
  const char* raw = std::getenv("RSMPI_VERIFY_TRACE");
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  const Trace trace = decode_trace(raw);
  const Scenario* scenario = set.find(trace.scenario);
  if (scenario == nullptr) {
    throw ArgumentError("RSMPI_VERIFY_TRACE: unknown scenario '" +
                        trace.scenario + "'");
  }
  return replay(*scenario, trace);
}

}  // namespace rsmpi::verify
