// Fault placements for the exhaustive model checker (ISSUE 7).
//
// A placement names exactly one injected fault of one dictated execution:
// a single message dropped, duplicated, or physically reordered at the
// destination mailbox (identified by the sending rank and that rank's
// 0-based delivery index), or a single rank killed instead of performing
// its index-th send.  The explorer enumerates every placement the
// canonical fault-free run makes possible, so the fault space is derived
// from observed traffic, never guessed.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace rsmpi::verify {

struct FaultPlacement {
  enum class Kind { kNone, kDrop, kDuplicate, kReorder, kKill };

  Kind kind = Kind::kNone;
  int rank = 0;             ///< the sending rank the fault is keyed to
  std::uint64_t index = 0;  ///< that rank's message (or send, for kKill) index

  /// Duplicates and physical reorders must be absorbed by the mailbox's
  /// sequence numbers: a benign fault's execution must complete with the
  /// fault-free result.  Drops and kills may instead surface a typed error.
  [[nodiscard]] bool benign() const {
    return kind == Kind::kNone || kind == Kind::kDuplicate ||
           kind == Kind::kReorder;
  }

  /// Compact code used in traces: "none", "drop@1.2", "dup@0.0",
  /// "reorder@2.1", "kill@1.3".
  [[nodiscard]] std::string code() const {
    switch (kind) {
      case Kind::kNone:
        return "none";
      case Kind::kDrop:
        return "drop@" + location();
      case Kind::kDuplicate:
        return "dup@" + location();
      case Kind::kReorder:
        return "reorder@" + location();
      case Kind::kKill:
        return "kill@" + location();
    }
    return "none";
  }

  /// Inverse of code(); throws ArgumentError on malformed input.
  static FaultPlacement parse(const std::string& code) {
    if (code == "none" || code.empty()) return FaultPlacement{};
    const std::size_t at = code.find('@');
    if (at == std::string::npos) {
      throw ArgumentError("FaultPlacement: malformed fault code '" + code +
                          "'");
    }
    const std::string name = code.substr(0, at);
    FaultPlacement f;
    if (name == "drop") {
      f.kind = Kind::kDrop;
    } else if (name == "dup") {
      f.kind = Kind::kDuplicate;
    } else if (name == "reorder") {
      f.kind = Kind::kReorder;
    } else if (name == "kill") {
      f.kind = Kind::kKill;
    } else {
      throw ArgumentError("FaultPlacement: unknown fault kind '" + name + "'");
    }
    const std::string loc = code.substr(at + 1);
    const std::size_t dot = loc.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= loc.size()) {
      throw ArgumentError("FaultPlacement: malformed fault location '" + loc +
                          "'");
    }
    try {
      f.rank = std::stoi(loc.substr(0, dot));
      f.index = std::stoull(loc.substr(dot + 1));
    } catch (const std::exception&) {
      throw ArgumentError("FaultPlacement: non-numeric fault location '" +
                          loc + "'");
    }
    if (f.rank < 0) {
      throw ArgumentError("FaultPlacement: negative rank in '" + code + "'");
    }
    return f;
  }

  bool operator==(const FaultPlacement&) const = default;

 private:
  [[nodiscard]] std::string location() const {
    return std::to_string(rank) + "." + std::to_string(index);
  }
};

}  // namespace rsmpi::verify
