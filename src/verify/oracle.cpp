#include "verify/oracle.hpp"

#include <utility>

#include "util/error.hpp"

namespace rsmpi::verify {

RecordingOracle::RecordingOracle(int num_ranks,
                                 std::vector<std::vector<int>> prefix,
                                 FaultPlacement fault)
    : ranks_(static_cast<std::size_t>(num_ranks)), fault_(fault) {
  if (num_ranks < 1) {
    throw ArgumentError("RecordingOracle: need at least one rank");
  }
  if (prefix.size() > ranks_.size()) {
    throw ArgumentError("RecordingOracle: prefix has more ranks than the "
                        "machine");
  }
  for (std::size_t r = 0; r < prefix.size(); ++r) {
    ranks_[r].prefix = std::move(prefix[r]);
  }
}

int RecordingOracle::choose(int rank, int alternatives) {
  PerRank& me = ranks_[static_cast<std::size_t>(rank)];
  const std::size_t step = me.choices.size();
  int chosen = 0;
  if (step < me.prefix.size()) {
    chosen = me.prefix[step];
    if (chosen < 0 || chosen >= alternatives) {
      // The forced branch no longer exists (the execution tree changed
      // shape, e.g. under a different fault).  Clamp rather than crash the
      // rank thread; the explorer discards the run via prefix_mismatch().
      chosen = alternatives - 1;
      prefix_mismatch_.store(true, std::memory_order_relaxed);
    }
  }
  me.choices.push_back({chosen, alternatives});
  return chosen;
}

void RecordingOracle::note_pruned(int rank, std::uint64_t orders) {
  (void)rank;
  pruned_.fetch_add(orders, std::memory_order_relaxed);
}

mprt::DeliveryFault RecordingOracle::message_fault(int rank,
                                                  std::uint64_t index) {
  PerRank& me = ranks_[static_cast<std::size_t>(rank)];
  me.msgs = index + 1;
  mprt::DeliveryFault fault;
  if (rank == fault_.rank && index == fault_.index) {
    switch (fault_.kind) {
      case FaultPlacement::Kind::kDrop:
        fault.drop = true;
        break;
      case FaultPlacement::Kind::kDuplicate:
        fault.duplicate = true;
        break;
      case FaultPlacement::Kind::kReorder:
        fault.reorder_front = true;
        break;
      case FaultPlacement::Kind::kNone:
      case FaultPlacement::Kind::kKill:
        break;
    }
  }
  return fault;
}

bool RecordingOracle::kill_before_send(int rank, std::uint64_t index) {
  PerRank& me = ranks_[static_cast<std::size_t>(rank)];
  me.sends = index + 1;
  return fault_.kind == FaultPlacement::Kind::kKill && rank == fault_.rank &&
         index == fault_.index;
}

std::vector<std::vector<int>> RecordingOracle::decisions() const {
  std::vector<std::vector<int>> out;
  out.reserve(ranks_.size());
  for (const PerRank& r : ranks_) {
    std::vector<int> d;
    d.reserve(r.choices.size());
    for (const ChoiceRecord& c : r.choices) d.push_back(c.chosen);
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace rsmpi::verify
