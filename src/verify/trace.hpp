// Replayable execution traces for the model checker (ISSUE 7).
//
// A trace is the complete name of one dictated execution: the scenario it
// ran (looked up in the checker's registry), the single fault placement,
// and the per-rank decision string the schedule oracle consulted.  Every
// violation the explorer reports is shrunk to a minimal trace and printed
// as RSMPI_VERIFY_TRACE=<encoded>; exporting that variable re-runs exactly
// the failing execution (tests/verify hook the variable at startup).
//
// Wire format, versioned:
//
//   v1;scn=<scenario>;fault=<code>;dec=<rank0>|<rank1>|...|<rankP-1>
//
// Rank sections are ascending and '|'-separated; within a section the
// decisions are ','-separated integers.  A rank with no decisions is an
// empty section (so "dec=|2,0|" is p=3 with choices only on rank 1).
// Decoding is strict: unknown versions, malformed fields, or non-numeric
// decisions throw ArgumentError rather than replaying the wrong run.
#pragma once

#include <string>
#include <vector>

#include "verify/fault.hpp"

namespace rsmpi::verify {

struct Trace {
  std::string scenario;
  FaultPlacement fault;
  std::vector<std::vector<int>> decisions;  // [rank][step]

  bool operator==(const Trace&) const = default;
};

[[nodiscard]] std::string encode_trace(const Trace& trace);
[[nodiscard]] Trace decode_trace(const std::string& encoded);

}  // namespace rsmpi::verify
