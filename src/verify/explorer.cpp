#include "verify/explorer.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace rsmpi::verify {

namespace {

/// Everything one dictated execution left behind.
struct RunOutcome {
  ExecutionResult result;
  std::vector<std::vector<ChoiceRecord>> choices;
  std::vector<std::vector<int>> decisions;
  std::uint64_t pruned = 0;
  bool prefix_mismatch = false;
  std::vector<std::uint64_t> msgs;
  std::vector<std::uint64_t> sends;
};

RunOutcome run_once(const Scenario& scenario,
                    std::vector<std::vector<int>> prefix,
                    const FaultPlacement& fault) {
  RecordingOracle oracle(scenario.num_ranks, std::move(prefix), fault);
  RunOutcome out;
  out.result = scenario.runner(oracle);
  const int p = scenario.num_ranks;
  out.choices.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    out.choices.push_back(oracle.choices(r));
    out.msgs.push_back(oracle.messages(r));
    out.sends.push_back(oracle.sends(r));
  }
  out.decisions = oracle.decisions();
  out.pruned = oracle.pruned();
  out.prefix_mismatch = oracle.prefix_mismatch();
  return out;
}

/// The explorer's fault policy: a failed result check is always a
/// violation; a typed error is a violation only under a benign (or no)
/// fault — lossy faults (drop, kill) are allowed to surface typed errors,
/// never to corrupt the results of ranks that completed (which the
/// runner's own check covers).  Returns the violation detail, empty if OK.
std::string violation_detail(const ExecutionResult& result,
                             const FaultPlacement& fault) {
  if (result.failed) {
    return result.detail.empty() ? "result check failed" : result.detail;
  }
  if (result.typed_error && fault.benign()) {
    return "execution under benign fault '" + fault.code() +
           "' must complete with the fault-free result; got typed error: " +
           result.error_what;
  }
  return "";
}

/// Lexicographic DFS advance over the recorded choice log.  Decision
/// positions are ordered rank-descending (children before parents — see
/// the header), step-ascending; this scan finds the least-significant
/// position with an unexplored alternative, bumps it, keeps everything
/// more significant (ranks > r verbatim, rank r's earlier steps), and
/// clears everything less significant (ranks < r re-run canonically).
/// Returns false when the whole space is explored.
bool advance_prefix(const std::vector<std::vector<ChoiceRecord>>& choices,
             std::vector<std::vector<int>>& prefix) {
  const int p = static_cast<int>(choices.size());
  for (int r = 0; r < p; ++r) {
    const auto& log = choices[static_cast<std::size_t>(r)];
    for (int s = static_cast<int>(log.size()) - 1; s >= 0; --s) {
      const auto& c = log[static_cast<std::size_t>(s)];
      if (c.chosen + 1 >= c.alternatives) continue;
      prefix.assign(static_cast<std::size_t>(p), {});
      for (int q = r + 1; q < p; ++q) {
        for (const auto& qc : choices[static_cast<std::size_t>(q)]) {
          prefix[static_cast<std::size_t>(q)].push_back(qc.chosen);
        }
      }
      auto& mine = prefix[static_cast<std::size_t>(r)];
      for (int t = 0; t < s; ++t) {
        mine.push_back(log[static_cast<std::size_t>(t)].chosen);
      }
      mine.push_back(c.chosen + 1);
      return true;
    }
  }
  return false;
}

std::string decisions_key(const std::vector<std::vector<int>>& decisions) {
  std::string key;
  for (const auto& rank : decisions) {
    for (const int d : rank) {
      key += std::to_string(d);
      key += ',';
    }
    key += '|';
  }
  return key;
}

std::uint64_t total_decisions(const std::vector<std::vector<int>>& decisions) {
  std::uint64_t n = 0;
  for (const auto& rank : decisions) n += rank.size();
  return n;
}

/// Shrinks a failing trace to a minimal one, deterministically: every
/// candidate is derived syntactically from the decision string (never from
/// an RNG or container iteration order) and validated by replay, so the
/// minimal trace is identical on every platform.
Trace shrink(const Scenario& scenario, Trace trace) {
  const auto still_fails = [&](const Trace& candidate) {
    const ExecutionResult r = replay(scenario, candidate);
    return !violation_detail(r, candidate.fault).empty();
  };

  // 1. Drop the fault if the failure reproduces without it.
  if (trace.fault.kind != FaultPlacement::Kind::kNone) {
    Trace candidate = trace;
    candidate.fault = FaultPlacement{};
    if (still_fails(candidate)) trace = std::move(candidate);
  }

  // 2. Strip trailing zeros: a zero decision is the canonical choice, and
  // an absent decision replays canonically, so this is identity-preserving
  // and needs no replay.
  for (auto& rank : trace.decisions) {
    while (!rank.empty() && rank.back() == 0) rank.pop_back();
  }

  // 3. Suffix truncation, per rank in ascending order.
  for (std::size_t r = 0; r < trace.decisions.size(); ++r) {
    while (!trace.decisions[r].empty()) {
      Trace candidate = trace;
      auto& cut = candidate.decisions[r];
      cut.pop_back();
      while (!cut.empty() && cut.back() == 0) cut.pop_back();
      if (!still_fails(candidate)) break;
      trace = std::move(candidate);
    }
  }

  // 4. Per-position lowering, positions in (rank, step) ascending order,
  // candidate values ascending from 0.
  for (std::size_t r = 0; r < trace.decisions.size(); ++r) {
    for (std::size_t s = 0; s < trace.decisions[r].size(); ++s) {
      for (int v = 0; v < trace.decisions[r][s]; ++v) {
        Trace candidate = trace;
        candidate.decisions[r][s] = v;
        if (still_fails(candidate)) {
          trace = std::move(candidate);
          break;
        }
      }
    }
  }
  return trace;
}

/// Explores every interleaving reachable under one fixed fault placement.
/// The first (canonical) run's per-rank message/send counts are written to
/// *counts when requested — the fault-free pass uses them to enumerate the
/// placement space.
void explore_placement(const Scenario& scenario, const FaultPlacement& fault,
                       const ExploreLimits& limits, Report& report,
                       RunOutcome* canonical) {
  const int p = scenario.num_ranks;
  std::vector<std::vector<int>> prefix(static_cast<std::size_t>(p));
  std::set<std::string> seen;
  const bool fault_free = fault.kind == FaultPlacement::Kind::kNone;
  bool first = true;
  for (;;) {
    if (report.stats.executions >= limits.max_executions) {
      report.stats.budget_exhausted = true;
      return;
    }
    RunOutcome out = run_once(scenario, prefix, fault);
    report.stats.executions += 1;
    if (fault_free) {
      report.stats.interleavings += 1;
    } else {
      report.stats.fault_executions += 1;
    }
    report.stats.pruned_orders += out.pruned;
    report.stats.max_decisions =
        std::max(report.stats.max_decisions, total_decisions(out.decisions));
    if (first && canonical != nullptr) *canonical = out;
    first = false;

    // A prefix-mismatch run followed a branch that no longer exists; its
    // decision vector may duplicate an explored one, so it is advanced
    // over but never judged or recorded twice.
    const bool fresh = seen.insert(decisions_key(out.decisions)).second;
    if (fresh && !out.prefix_mismatch) {
      const std::string detail = violation_detail(out.result, fault);
      if (!detail.empty()) {
        Trace trace{scenario.name, fault, out.decisions};
        report.violations.push_back(
            Violation{shrink(scenario, std::move(trace)), detail});
      }
    }
    if (!advance_prefix(out.choices, prefix)) return;
  }
}

}  // namespace

Report explore(const Scenario& scenario, const ExploreLimits& limits) {
  if (!scenario.runner) {
    throw ArgumentError("explore: scenario '" + scenario.name +
                        "' has no runner");
  }
  if (scenario.num_ranks < 1) {
    throw ArgumentError("explore: scenario '" + scenario.name +
                        "' needs at least one rank");
  }
  Report report;
  RunOutcome canonical;
  explore_placement(scenario, FaultPlacement{}, limits, report, &canonical);
  if (!limits.faults || report.stats.budget_exhausted) return report;

  // Placement space from the canonical run's observed traffic: every
  // message once per message-fault kind, every send once as a kill site.
  std::vector<FaultPlacement> placements;
  for (int r = 0; r < scenario.num_ranks; ++r) {
    const std::uint64_t msgs = canonical.msgs[static_cast<std::size_t>(r)];
    for (std::uint64_t i = 0; i < msgs; ++i) {
      placements.push_back({FaultPlacement::Kind::kDrop, r, i});
      placements.push_back({FaultPlacement::Kind::kDuplicate, r, i});
      placements.push_back({FaultPlacement::Kind::kReorder, r, i});
    }
    const std::uint64_t sends = canonical.sends[static_cast<std::size_t>(r)];
    for (std::uint64_t i = 0; i < sends; ++i) {
      placements.push_back({FaultPlacement::Kind::kKill, r, i});
    }
  }
  for (const FaultPlacement& placement : placements) {
    report.stats.fault_placements += 1;
    explore_placement(scenario, placement, limits, report, nullptr);
    if (report.stats.budget_exhausted) break;
  }
  return report;
}

ExecutionResult replay(const Scenario& scenario, const Trace& trace) {
  if (!scenario.runner) {
    throw ArgumentError("replay: scenario '" + scenario.name +
                        "' has no runner");
  }
  RecordingOracle oracle(scenario.num_ranks, trace.decisions, trace.fault);
  return scenario.runner(oracle);
}

}  // namespace rsmpi::verify
