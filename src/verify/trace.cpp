#include "verify/trace.hpp"

#include <sstream>

#include "util/error.hpp"

namespace rsmpi::verify {

namespace {

/// Splits `s` on `sep`, keeping empty fields (an empty input is one empty
/// field — callers treat that case themselves).
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

int parse_decision(const std::string& field) {
  if (field.empty()) {
    throw ArgumentError("decode_trace: empty decision field");
  }
  for (const char c : field) {
    if (c < '0' || c > '9') {
      throw ArgumentError("decode_trace: non-numeric decision '" + field +
                          "'");
    }
  }
  try {
    return std::stoi(field);
  } catch (const std::exception&) {
    throw ArgumentError("decode_trace: decision '" + field +
                        "' out of range");
  }
}

}  // namespace

std::string encode_trace(const Trace& trace) {
  std::ostringstream os;
  os << "v1;scn=" << trace.scenario << ";fault=" << trace.fault.code()
     << ";dec=";
  for (std::size_t r = 0; r < trace.decisions.size(); ++r) {
    if (r > 0) os << '|';
    for (std::size_t s = 0; s < trace.decisions[r].size(); ++s) {
      if (s > 0) os << ',';
      os << trace.decisions[r][s];
    }
  }
  return os.str();
}

Trace decode_trace(const std::string& encoded) {
  const std::vector<std::string> fields = split(encoded, ';');
  if (fields.size() != 4) {
    throw ArgumentError("decode_trace: expected 4 ';'-separated fields, got " +
                        std::to_string(fields.size()));
  }
  if (fields[0] != "v1") {
    throw ArgumentError("decode_trace: unknown trace version '" + fields[0] +
                        "'");
  }
  Trace trace;
  if (fields[1].rfind("scn=", 0) != 0) {
    throw ArgumentError("decode_trace: expected 'scn=' field, got '" +
                        fields[1] + "'");
  }
  trace.scenario = fields[1].substr(4);
  if (trace.scenario.empty()) {
    throw ArgumentError("decode_trace: empty scenario name");
  }
  if (fields[2].rfind("fault=", 0) != 0) {
    throw ArgumentError("decode_trace: expected 'fault=' field, got '" +
                        fields[2] + "'");
  }
  trace.fault = FaultPlacement::parse(fields[2].substr(6));
  if (fields[3].rfind("dec=", 0) != 0) {
    throw ArgumentError("decode_trace: expected 'dec=' field, got '" +
                        fields[3] + "'");
  }
  const std::string body = fields[3].substr(4);
  for (const std::string& section : split(body, '|')) {
    std::vector<int> rank_decisions;
    if (!section.empty()) {
      for (const std::string& field : split(section, ',')) {
        rank_decisions.push_back(parse_decision(field));
      }
    }
    trace.decisions.push_back(std::move(rank_decisions));
  }
  return trace;
}

}  // namespace rsmpi::verify
