// Exhaustive schedule-space explorer (ISSUE 7 tentpole).
//
// The explorer drives a *scenario* — a closure that runs the virtual
// machine once under a RecordingOracle and checks its own postconditions —
// through every reachable decision tree branch, and then through every
// single-fault placement the canonical run admits:
//
//   1. Run once with an empty prefix: the canonical execution.  Record the
//      per-rank choice log (each consulted choice point with its
//      alternative count) and the per-rank message/send counts.
//   2. Depth-first advance: find the next branch in lexicographic order
//      (see below), force it as a prefix, re-run.  Repeat until no choice
//      point has an unexplored alternative.
//   3. Fault pass: for each message (rank, index) of the canonical run,
//      re-explore the full interleaving space under a single drop /
//      duplicate / reorder; for each send index, under a kill.  Benign
//      faults (dup, reorder) must complete with the fault-free result;
//      lossy faults (drop, kill) may instead surface a *typed* error —
//      silent hangs are impossible because verify-mode runs carry the
//      starvation monitor, which converts them into DeadlockError.
//
// Branch order: decisions are ordered rank-DESCENDING, step-ascending.
// In the instrumented collectives children always have higher ranks than
// their parents, so a rank's choices are causally downstream of higher
// ranks' — advancing a choice at rank r invalidates only the decisions of
// ranks < r (which are cleared to canonical), while ranks > r replay their
// recorded decisions verbatim.  This enumerates the product space
// lexicographically: every combination exactly once, with a seen-set as a
// safety net against tree-shape anomalies.
//
// Every violation is shrunk to a minimal trace (fault dropped if the
// failure reproduces without it; decisions truncated and lowered
// position-by-position in a fixed, platform-independent order) and
// reported with its RSMPI_VERIFY_TRACE encoding.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "verify/oracle.hpp"
#include "verify/trace.hpp"

namespace rsmpi::verify {

/// Raw outcome of one dictated execution, as the scenario saw it.  The
/// runner performs its own result checks (against the serial oracle) and
/// reports mismatches via `failed`; typed rsmpi errors that unwound the
/// run land in `typed_error`/`error_what`.  The benign/lossy fault policy
/// is applied by the explorer, not the runner.
struct ExecutionResult {
  bool failed = false;
  std::string detail;
  bool typed_error = false;
  std::string error_what;
};

/// Runs the virtual machine once under `oracle` and checks postconditions.
using Runner = std::function<ExecutionResult(RecordingOracle&)>;

struct Scenario {
  std::string name;
  int num_ranks = 2;
  Runner runner;
};

struct ExploreLimits {
  /// Hard budget on dictated executions (interleavings and fault runs
  /// combined); exceeded => budget_exhausted is set and the report is
  /// partial.  The p <= 5 scenario spaces are far below this.
  std::uint64_t max_executions = 100000;
  /// Also enumerate the single-fault placements (step 3 above).
  bool faults = true;
};

struct ExploreStats {
  std::uint64_t executions = 0;         ///< dictated runs performed
  std::uint64_t interleavings = 0;      ///< fault-free executions explored
  std::uint64_t fault_executions = 0;   ///< executions under a placement
  std::uint64_t fault_placements = 0;   ///< distinct placements enumerated
  std::uint64_t pruned_orders = 0;      ///< fold orders proven equivalent
  std::uint64_t max_decisions = 0;      ///< longest decision string seen
  bool budget_exhausted = false;
};

struct Violation {
  Trace trace;         ///< minimal reproducer (shrunk, replay-validated)
  std::string detail;  ///< what went wrong on the original execution
};

struct Report {
  ExploreStats stats;
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Explores `scenario` exhaustively within `limits`.
[[nodiscard]] Report explore(const Scenario& scenario,
                             const ExploreLimits& limits = {});

/// Replays one dictated execution from a trace (the RSMPI_VERIFY_TRACE
/// path).  The trace's scenario name is not consulted — the caller already
/// resolved it to `scenario`.
[[nodiscard]] ExecutionResult replay(const Scenario& scenario,
                                     const Trace& trace);

}  // namespace rsmpi::verify
