// The shared operator registry for the verification tiers (ISSUE 9,
// satellite 6).  Every operator the checkers stress lives here exactly
// once — the exhaustive model checker (tests/verify), the seeded property
// suite (tests/sim), and the parallel determinism suite (tests/par) all
// enumerate this list, so an operator added to the zoo cannot silently
// miss a tier: each suite carries a coverage test that walks
// for_each_zoo_op and fails on any name it does not handle.
//
// This header is deliberately light (operators + serial oracles only, no
// explorer or runtime machinery) so test suites outside tests/verify can
// include it without dragging the model checker in.
//
// Two kinds of oracle ride here:
//
//   * exact operators (integer state, or bitwise-associative combine):
//     the serial left fold over all ranks' inputs is the expected result
//     under *every* schedule;
//   * TSQR (floating-point, bit-level nonassociative): every ordered path
//     in the runtime — blocking reduce+bcast, the pipelined binomial
//     tree, the async noncommutative state machine, the persistent-plan
//     replay — folds states along mprt::topology's binomial reduce
//     schedule, so binomial_reduce_oracle replicates that bracketing
//     locally and is the bit-exact expectation for all of them.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <type_traits>
#include <vector>

#include "rs/op_concepts.hpp"
#include "rs/ops/counts.hpp"
#include "rs/ops/tsqr.hpp"

namespace rsmpi::verify {

// -- Stress operators --------------------------------------------------------

/// Noncommutative ordered concatenation of rank-tagged tokens.  Any
/// schedule that folds ranks out of order scrambles the word, so the
/// explorer flags a commutative-only schedule being selected for it the
/// moment it happens.
class OrderedWord {
 public:
  static constexpr bool commutative = false;

  void accum(const int& token) {
    word_ += "<" + std::to_string(token) + ">";
  }
  void combine(const OrderedWord& other) { word_ += other.word_; }
  [[nodiscard]] std::string gen() const { return word_; }

  void save(bytes::Writer& w) const { w.put_string(word_); }
  void load(bytes::Reader& r) { word_ = r.get_string(); }

 private:
  std::string word_;
};

/// Set union with insertion-ordered state bytes and sorted output.
/// Commutative by the operator trait (absent => true), but its serialized
/// state depends on fold order — the explorer's all-orders probe cannot
/// prune, yet the result check still must pass on every branch.
class CanonSet {
 public:
  void accum(const int& x) { insert(x); }
  void combine(const CanonSet& other) {
    for (const int x : other.elems_) insert(x);
  }
  [[nodiscard]] std::vector<int> gen() const {
    std::vector<int> sorted = elems_;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }

  void save(bytes::Writer& w) const { w.put_vector(elems_); }
  void load(bytes::Reader& r) { elems_ = r.get_vector<int>(); }

 private:
  void insert(int x) {
    if (std::find(elems_.begin(), elems_.end(), x) == elems_.end()) {
      elems_.push_back(x);
    }
  }

  std::vector<int> elems_;
};

// -- Inputs and prototypes ---------------------------------------------------

inline constexpr std::size_t kCheckerBuckets = 6;
inline constexpr int kCheckerTokensPerRank = 3;
inline constexpr std::size_t kCheckerTsqrCols = 3;

/// Deterministic rank-tagged raw tokens: rank r contributes
/// {10r, 10r+1, 10r+2}.  Each operator maps them into its own input
/// domain below.
inline std::vector<int> rank_tokens(int rank) {
  std::vector<int> tokens;
  tokens.reserve(kCheckerTokensPerRank);
  for (int i = 0; i < kCheckerTokensPerRank; ++i) {
    tokens.push_back(rank * 10 + i);
  }
  return tokens;
}

/// One TSQR input row derived from a raw token: small exact integers, so
/// the row is identical on every platform, and token-distinct so fold
/// orders produce bit-distinct rounding (what the mutation test needs).
inline std::vector<double> tsqr_row_from_token(int token,
                                               std::size_t cols =
                                                   kCheckerTsqrCols) {
  std::vector<double> row(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    row[c] =
        static_cast<double>((token * 7 + static_cast<int>(c) * 13) % 19 - 9);
  }
  return row;
}

template <typename Op>
struct zoo_input {
  using type = int;
};
template <>
struct zoo_input<rs::ops::TSQR> {
  using type = std::vector<double>;
};
template <typename Op>
using zoo_input_t = typename zoo_input<Op>::type;

template <typename Op>
std::vector<zoo_input_t<Op>> rank_inputs(int rank) {
  if constexpr (std::is_same_v<Op, rs::ops::TSQR>) {
    std::vector<std::vector<double>> rows;
    for (const int t : rank_tokens(rank)) rows.push_back(tsqr_row_from_token(t));
    return rows;
  } else {
    std::vector<int> inputs = rank_tokens(rank);
    if constexpr (std::is_same_v<Op, rs::ops::Counts>) {
      for (int& x : inputs) x %= static_cast<int>(kCheckerBuckets);
    } else if constexpr (std::is_same_v<Op, CanonSet>) {
      // Overlap across ranks so the union actually deduplicates.
      inputs.push_back(7);
    }
    return inputs;
  }
}

template <typename Op>
Op make_prototype() {
  if constexpr (std::is_same_v<Op, rs::ops::Counts>) {
    return rs::ops::Counts(kCheckerBuckets);
  } else if constexpr (std::is_same_v<Op, rs::ops::TSQR>) {
    return rs::ops::TSQR(kCheckerTsqrCols);
  } else {
    return Op{};
  }
}

/// Accumulates this rank's inputs into a fresh identity state.
template <typename Op>
Op accumulated(int rank) {
  Op op = make_prototype<Op>();
  for (const auto& x : rank_inputs<Op>(rank)) op.accum(x);
  return op;
}

// -- Oracles -----------------------------------------------------------------

/// Folds per-rank states along the binomial reduce tree's bracketing
/// (mprt::topology::binomial_reduce_schedule): at step d, rank r with
/// r % 2d == 0 absorbs rank r+d's subtree state, steps ascending.  This
/// is the combine order every order-preserving path in the runtime
/// performs — the bit-exact oracle for operators whose combine is not
/// bitwise associative (TSQR).
template <typename Op>
Op binomial_fold(std::vector<Op> states) {
  const std::size_t p = states.size();
  for (std::size_t d = 1; d < p; d <<= 1) {
    for (std::size_t r = 0; r + d < p; r += 2 * d) {
      states[r].combine(states[r + d]);
    }
  }
  return std::move(states[0]);
}

/// The expected allreduce result at machine size p: serial left fold of
/// raw inputs for exact operators, the binomial-tree bracketing for TSQR.
template <typename Op>
rs::reduce_result_t<Op> expected_result(int p) {
  if constexpr (std::is_same_v<Op, rs::ops::TSQR>) {
    std::vector<Op> states;
    states.reserve(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) states.push_back(accumulated<Op>(r));
    return rs::red_result(binomial_fold(std::move(states)));
  } else {
    Op op = make_prototype<Op>();
    for (int r = 0; r < p; ++r) {
      for (const auto& x : rank_inputs<Op>(r)) op.accum(x);
    }
    return rs::red_result(op);
  }
}

// -- The registry ------------------------------------------------------------

/// Per-operator metadata driving which tiers and schedules apply.
struct ZooOpInfo {
  const char* name;    // scenario-name prefix, stable across PRs
  bool commutative;    // rs::op_commutative<Op>()
  bool partitionable;  // segmented schedules + panel scenarios apply
  bool exact;          // combine bitwise associative: serial fold is the
                       // oracle under any bracketing; false => only
                       // ordered schedules + binomial_fold oracle
  bool async_tier;     // exercised through rs::reduce_async
  bool persistent_tier;  // exercised through svc::PersistentReduce
};

template <typename Op>
struct ZooTag {
  using type = Op;
};

/// THE operator list.  Adding an operator here enrolls it in the
/// exhaustive checker matrix automatically and breaks the sim / par
/// suites' coverage tests until they handle the new name — no tier can be
/// missed silently.
template <typename Fn>
void for_each_zoo_op(Fn&& fn) {
  fn(ZooTag<rs::ops::Counts>{},
     ZooOpInfo{"counts", true, true, true, true, true});
  fn(ZooTag<OrderedWord>{},
     ZooOpInfo{"word", false, false, true, true, true});
  fn(ZooTag<CanonSet>{},
     ZooOpInfo{"canon", true, false, true, false, false});
  fn(ZooTag<rs::ops::TSQR>{},
     ZooOpInfo{"tsqr", false, true, false, true, true});
}

/// The registered names, for coverage assertions.
inline std::vector<std::string> zoo_names() {
  std::vector<std::string> names;
  for_each_zoo_op([&](auto, const ZooOpInfo& info) {
    names.emplace_back(info.name);
  });
  return names;
}

}  // namespace rsmpi::verify
