// RecordingOracle: the ScheduleOracle implementation the explorer drives
// executions with (ISSUE 7).
//
// One oracle dictates one execution.  Per rank it holds a *forced prefix*
// of decisions (the branch the explorer wants to revisit); choices past
// the prefix take alternative 0 — the canonical first branch — and every
// consulted choice is recorded with its alternative count, which is what
// the explorer's DFS advances over.  The oracle also dictates the single
// fault placement of the execution and counts each rank's messages and
// sends, so the fault space of a scenario can be read off its canonical
// run.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "mprt/sim.hpp"
#include "verify/fault.hpp"

namespace rsmpi::verify {

/// One consulted choice point: which alternative ran, out of how many.
struct ChoiceRecord {
  int chosen = 0;
  int alternatives = 0;
  bool operator==(const ChoiceRecord&) const = default;
};

class RecordingOracle final : public mprt::ScheduleOracle {
 public:
  RecordingOracle(int num_ranks, std::vector<std::vector<int>> prefix,
                  FaultPlacement fault = {});

  int choose(int rank, int alternatives) override;
  void note_pruned(int rank, std::uint64_t orders) override;
  mprt::DeliveryFault message_fault(int rank, std::uint64_t index) override;
  bool kill_before_send(int rank, std::uint64_t index) override;

  /// Full per-rank choice log of the execution (prefix + canonical tail).
  [[nodiscard]] const std::vector<ChoiceRecord>& choices(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)].choices;
  }

  /// The per-rank decision string (chosen values only) — the trace body.
  [[nodiscard]] std::vector<std::vector<int>> decisions() const;

  /// Combine orders proven byte-equivalent and skipped, summed over ranks.
  [[nodiscard]] std::uint64_t pruned() const {
    return pruned_.load(std::memory_order_relaxed);
  }

  /// True when a forced decision was out of range for the alternatives the
  /// execution actually presented (the tree changed shape under the
  /// prefix — e.g. a fault removed a choice point).  The choice is clamped
  /// and the flag raised so the explorer can discard the duplicate branch.
  [[nodiscard]] bool prefix_mismatch() const {
    return prefix_mismatch_.load(std::memory_order_relaxed);
  }

  /// Messages `rank` delivered / sends it attempted during the execution.
  [[nodiscard]] std::uint64_t messages(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)].msgs;
  }
  [[nodiscard]] std::uint64_t sends(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)].sends;
  }

  [[nodiscard]] int num_ranks() const {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] const FaultPlacement& fault() const { return fault_; }

 private:
  // Rank slots are only touched from the owning rank's thread while the
  // machine runs (the explorer reads them after the join); padded apart so
  // the dictated runs do not serialize ranks on one cache line.
  struct alignas(64) PerRank {
    std::vector<int> prefix;
    std::vector<ChoiceRecord> choices;
    std::uint64_t msgs = 0;
    std::uint64_t sends = 0;
  };

  std::vector<PerRank> ranks_;
  FaultPlacement fault_;
  std::atomic<std::uint64_t> pruned_{0};
  std::atomic<bool> prefix_mismatch_{false};
};

}  // namespace rsmpi::verify
