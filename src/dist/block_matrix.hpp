// A global-view distributed matrix, block-distributed by rows, with
// row-wise and column-wise scans.
//
// The paper motivates exclusive scans partly by "the elegant recursive
// definitions of multidimensional scans" (§1): a multidimensional prefix
// operation is a composition of one-dimensional scans along each axis.
// With a row-block distribution, the row-axis scan is pure local compute,
// and the column-axis scan is one *aggregated* exclusive scan across
// ranks (all columns in one message, §2.1) followed by local prefixing —
// the composition yields, e.g., the summed-area table.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coll/gather.hpp"
#include "coll/local_scan.hpp"
#include "mprt/comm.hpp"
#include "util/block_dist.hpp"
#include "util/error.hpp"

namespace rsmpi::dist {

template <typename T>
class BlockMatrix {
 public:
  /// rows x cols zeros, row blocks distributed over the ranks.
  BlockMatrix(mprt::Comm& comm, std::int64_t rows, std::int64_t cols)
      : comm_(&comm), rows_(rows), cols_(cols), dist_{rows, comm.size()} {
    if (rows < 0 || cols < 0) {
      throw ArgumentError("BlockMatrix: negative extent");
    }
    local_.resize(static_cast<std::size_t>(dist_.size_of(comm.rank())) *
                  static_cast<std::size_t>(cols));
  }

  /// Builds from a pure function of (row, col), rank-count independent.
  template <typename Fn>
    requires std::invocable<Fn, std::int64_t, std::int64_t>
  static BlockMatrix from_index(mprt::Comm& comm, std::int64_t rows,
                                std::int64_t cols, Fn fn) {
    BlockMatrix m(comm, rows, cols);
    const std::int64_t r0 = m.local_row_start();
    for (std::int64_t r = 0; r < m.local_rows(); ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        m.at_local(r, c) = fn(r0 + r, c);
      }
    }
    return m;
  }

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] std::int64_t local_rows() const {
    return dist_.size_of(comm_->rank());
  }
  [[nodiscard]] std::int64_t local_row_start() const {
    return dist_.start_of(comm_->rank());
  }
  [[nodiscard]] mprt::Comm& comm() const { return *comm_; }

  /// Element by (local row, column).
  [[nodiscard]] T& at_local(std::int64_t local_row, std::int64_t col) {
    return local_[static_cast<std::size_t>(local_row * cols_ + col)];
  }
  [[nodiscard]] const T& at_local(std::int64_t local_row,
                                  std::int64_t col) const {
    return local_[static_cast<std::size_t>(local_row * cols_ + col)];
  }

  [[nodiscard]] std::span<T> local() { return local_; }
  [[nodiscard]] std::span<const T> local() const { return local_; }

  // -- Axis scans -------------------------------------------------------------

  /// In-place inclusive scan along each row (the x axis).  Rows are never
  /// split across ranks, so this is pure local compute.
  template <coll::BinaryOperator<T> BinOp>
  void row_scan_inplace(BinOp op) {
    auto timer = comm_->compute_section();
    for (std::int64_t r = 0; r < local_rows(); ++r) {
      T acc = BinOp::identity();
      for (std::int64_t c = 0; c < cols_; ++c) {
        acc = op(acc, at_local(r, c));
        at_local(r, c) = acc;
      }
    }
  }

  /// In-place inclusive scan along each column (the y axis): per-column
  /// local totals, one aggregated exclusive scan across ranks, then local
  /// prefixing seeded by the received offsets.
  template <coll::BinaryOperator<T> BinOp>
  void column_scan_inplace(BinOp op) {
    std::vector<T> carry(static_cast<std::size_t>(cols_));
    {
      auto timer = comm_->compute_section();
      for (std::size_t c = 0; c < carry.size(); ++c) {
        carry[c] = BinOp::identity();
      }
      for (std::int64_t r = 0; r < local_rows(); ++r) {
        for (std::int64_t c = 0; c < cols_; ++c) {
          carry[static_cast<std::size_t>(c)] =
              op(carry[static_cast<std::size_t>(c)], at_local(r, c));
        }
      }
    }
    coll::ElementwiseOp<T, BinOp> agg;
    coll::local_xscan(*comm_, std::span<T>(carry), agg);
    {
      auto timer = comm_->compute_section();
      for (std::int64_t r = 0; r < local_rows(); ++r) {
        for (std::int64_t c = 0; c < cols_; ++c) {
          carry[static_cast<std::size_t>(c)] =
              op(carry[static_cast<std::size_t>(c)], at_local(r, c));
          at_local(r, c) = carry[static_cast<std::size_t>(c)];
        }
      }
    }
  }

  /// The 2-D prefix: scan along rows, then along columns — the recursive
  /// multidimensional-scan construction.  With Sum this is the
  /// summed-area table.
  template <coll::BinaryOperator<T> BinOp>
  void prefix2d_inplace(BinOp op) {
    row_scan_inplace(op);
    column_scan_inplace(op);
  }

  /// The full matrix, row-major, on `root` (empty elsewhere).
  [[nodiscard]] std::vector<T> gather_to(int root) const
    requires std::is_trivially_copyable_v<T>
  {
    return coll::gather<T>(*comm_, root, local_);
  }

  // -- Halo exchange ------------------------------------------------------------

  /// Ghost rows for stencil codes: the last row of the previous non-empty
  /// rank and the first row of the next non-empty rank.  `has_*` is false
  /// at the matrix edges (and everywhere when this rank owns no rows).
  struct Halos {
    bool has_above = false;
    bool has_below = false;
    std::vector<T> above;  // global row local_row_start() - 1
    std::vector<T> below;  // global row local_row_start() + local_rows()
  };

  /// Collectively exchanges boundary rows with the neighbouring owners.
  /// Empty ranks forward through, so any distribution works.  One round
  /// of neighbour messages (two sends per interior rank).
  [[nodiscard]] Halos exchange_halos() const
    requires std::is_trivially_copyable_v<T>
  {
    Halos h;
    const int p = comm_->size();
    const int rank = comm_->rank();
    const int tag_up = comm_->next_collective_tag();    // toward rank 0
    const int tag_down = comm_->next_collective_tag();  // toward rank p-1
    const bool nonempty = local_rows() > 0;

    // Downward stream: each rank passes its last row (or the one it
    // received, when empty) toward higher ranks.
    if (rank > 0) {
      std::vector<T> recv(static_cast<std::size_t>(cols_));
      // The stream carries a presence flag ahead of the payload: rank 0's
      // side may be entirely empty.
      const auto flag = comm_->recv<std::uint8_t>(rank - 1, tag_down);
      if (flag != 0) {
        comm_->recv_span<T>(rank - 1, tag_down, recv);
        h.has_above = true;
        h.above = std::move(recv);
      }
    }
    if (rank + 1 < p) {
      if (nonempty) {
        comm_->send(rank + 1, tag_down, std::uint8_t{1});
        comm_->send_span(rank + 1, tag_down,
                         std::span<const T>(row_span(local_rows() - 1)));
      } else if (h.has_above) {
        comm_->send(rank + 1, tag_down, std::uint8_t{1});
        comm_->send_span(rank + 1, tag_down, std::span<const T>(h.above));
      } else {
        comm_->send(rank + 1, tag_down, std::uint8_t{0});
      }
    }

    // Upward stream: first rows toward lower ranks, mirrored.
    if (rank + 1 < p) {
      std::vector<T> recv(static_cast<std::size_t>(cols_));
      const auto flag = comm_->recv<std::uint8_t>(rank + 1, tag_up);
      if (flag != 0) {
        comm_->recv_span<T>(rank + 1, tag_up, recv);
        h.has_below = true;
        h.below = std::move(recv);
      }
    }
    if (rank > 0) {
      if (nonempty) {
        comm_->send(rank - 1, tag_up, std::uint8_t{1});
        comm_->send_span(rank - 1, tag_up,
                         std::span<const T>(row_span(0)));
      } else if (h.has_below) {
        comm_->send(rank - 1, tag_up, std::uint8_t{1});
        comm_->send_span(rank - 1, tag_up, std::span<const T>(h.below));
      } else {
        comm_->send(rank - 1, tag_up, std::uint8_t{0});
      }
    }

    if (!nonempty) {
      // An empty rank is a pure relay: it owns no boundary of its own.
      h.has_above = h.has_below = false;
      h.above.clear();
      h.below.clear();
    }
    return h;
  }

  /// Collective read of one global element (owner broadcasts).
  [[nodiscard]] T fetch(std::int64_t row, std::int64_t col) const
    requires std::is_trivially_copyable_v<T>
  {
    if (row < 0 || row >= rows_ || col < 0 || col >= cols_) {
      throw ArgumentError("BlockMatrix::fetch: index out of range");
    }
    const int owner = dist_.owner_of(row);
    T value{};
    if (owner == comm_->rank()) {
      value = at_local(row - local_row_start(), col);
    }
    return coll::bcast(*comm_, owner, value);
  }

 private:
  [[nodiscard]] std::span<const T> row_span(std::int64_t local_row) const {
    return std::span<const T>(
        local_.data() + static_cast<std::size_t>(local_row * cols_),
        static_cast<std::size_t>(cols_));
  }

  mprt::Comm* comm_;
  std::int64_t rows_;
  std::int64_t cols_;
  BlockDist dist_;
  std::vector<T> local_;
};

}  // namespace rsmpi::dist
