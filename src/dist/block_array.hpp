// A global-view distributed array: the data substrate the paper's Chapel
// call sites assume.
//
// Chapel writes
//
//     var minimums: [1..10] integer;
//     minimums = mink(integer, 10) reduce A;
//
// where A is a block-distributed array the programmer manipulates as one
// conceptual whole.  BlockArray is that object for this library: every
// rank holds one contiguous block (first n % p ranks one element
// heavier), construction/fill is by *global index* so contents are
// independent of the rank count, and the reduce/scan entry points apply
// an operator to the conceptual whole array:
//
//     auto A = dist::BlockArray<int>::from_index(comm, n, [](auto i) {...});
//     auto minimums = A.reduce(rs::ops::MinK<int>(10));
//     auto ranking  = A.scan(rs::ops::Counts(8));
//     auto loc      = A.indexed().reduce-style via A.reduce_indexed(...)
#pragma once

#include <cstdint>
#include <functional>
#include <ranges>
#include <span>
#include <vector>

#include "coll/gather.hpp"
#include "mprt/comm.hpp"
#include "rs/ops/mini.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "util/block_dist.hpp"
#include "util/error.hpp"

namespace rsmpi::dist {

template <typename T>
class BlockArray {
 public:
  /// An array of n default-constructed elements, block-distributed over
  /// the communicator's ranks.
  BlockArray(mprt::Comm& comm, std::int64_t n)
      : comm_(&comm), dist_{n, comm.size()} {
    if (n < 0) throw ArgumentError("BlockArray: negative size");
    local_.resize(static_cast<std::size_t>(dist_.size_of(comm.rank())));
  }

  /// Builds the array from a pure function of the global index, so the
  /// contents are identical for every rank count.
  template <typename Fn>
    requires std::invocable<Fn, std::int64_t>
  static BlockArray from_index(mprt::Comm& comm, std::int64_t n, Fn fn) {
    BlockArray a(comm, n);
    const std::int64_t start = a.local_start();
    for (std::size_t i = 0; i < a.local_.size(); ++i) {
      a.local_[i] = fn(start + static_cast<std::int64_t>(i));
    }
    return a;
  }

  /// Adopts an existing local block (must already be this rank's share).
  static BlockArray from_local(mprt::Comm& comm, std::int64_t n,
                               std::vector<T> local) {
    BlockArray a(comm, n);
    if (local.size() != a.local_.size()) {
      throw ArgumentError("BlockArray::from_local: block has " +
                          std::to_string(local.size()) + " elements, rank " +
                          std::to_string(comm.rank()) + " owns " +
                          std::to_string(a.local_.size()));
    }
    a.local_ = std::move(local);
    return a;
  }

  // -- Global-view geometry -------------------------------------------------

  [[nodiscard]] std::int64_t size() const { return dist_.n; }
  [[nodiscard]] std::int64_t local_size() const {
    return static_cast<std::int64_t>(local_.size());
  }
  [[nodiscard]] std::int64_t local_start() const {
    return dist_.start_of(comm_->rank());
  }
  [[nodiscard]] int owner_of(std::int64_t global_index) const {
    return dist_.owner_of(global_index);
  }
  [[nodiscard]] bool owns(std::int64_t global_index) const {
    return owner_of(global_index) == comm_->rank();
  }
  [[nodiscard]] mprt::Comm& comm() const { return *comm_; }

  // -- Local access ----------------------------------------------------------

  [[nodiscard]] std::span<T> local() { return local_; }
  [[nodiscard]] std::span<const T> local() const { return local_; }

  /// Element at a global index this rank owns.
  [[nodiscard]] T& at(std::int64_t global_index) {
    return local_[local_offset(global_index)];
  }
  [[nodiscard]] const T& at(std::int64_t global_index) const {
    return local_[local_offset(global_index)];
  }

  /// Applies fn(element, global_index) to every owned element.
  template <typename Fn>
    requires std::invocable<Fn, T&, std::int64_t>
  void for_each(Fn fn) {
    const std::int64_t start = local_start();
    for (std::size_t i = 0; i < local_.size(); ++i) {
      fn(local_[i], start + static_cast<std::int64_t>(i));
    }
  }

  // -- Global-view reductions and scans ---------------------------------------

  /// `op reduce A` — the whole-array reduction, result on every rank.
  template <typename Op>
    requires rs::ReductionOp<Op, T>
  [[nodiscard]] rs::reduce_result_t<Op> reduce(Op op) const {
    return rs::reduce(*comm_, local_, std::move(op));
  }

  /// Reduction over (value, global index) pairs — the paper's mini call
  /// site `mini(integer) reduce [i in 1..n] (A(i), i)` without
  /// materializing the tuple array.
  template <typename Op>
  [[nodiscard]] auto reduce_indexed(Op op) const {
    const std::int64_t start = local_start();
    auto view = std::views::iota(std::size_t{0}, local_.size()) |
                std::views::transform([this, start](std::size_t i) {
                  return rs::ops::Located<T, std::int64_t>{
                      local_[i], start + static_cast<std::int64_t>(i)};
                });
    return rs::reduce(*comm_, view, std::move(op));
  }

  /// `op scan A` — the whole-array scan; the result is a BlockArray of
  /// the operator's scan outputs with the same distribution.
  template <typename Op>
    requires rs::ScanOp<Op, T>
  [[nodiscard]] BlockArray<rs::scan_result_t<Op, T>> scan(
      Op op, rs::ScanKind kind = rs::ScanKind::kInclusive) const {
    auto out = rs::scan(*comm_, local_, std::move(op), kind);
    return BlockArray<rs::scan_result_t<Op, T>>::from_local(
        *comm_, dist_.n, std::move(out));
  }

  /// Exclusive-scan shorthand.
  template <typename Op>
    requires rs::ScanOp<Op, T>
  [[nodiscard]] auto xscan(Op op) const {
    return scan(std::move(op), rs::ScanKind::kExclusive);
  }

  /// Elementwise transform into a new array with the same distribution:
  /// B = map(A, fn), fn taking (value, global index).
  template <typename Fn>
    requires std::invocable<Fn, const T&, std::int64_t>
  [[nodiscard]] auto map(Fn fn) const {
    using Out = std::invoke_result_t<Fn, const T&, std::int64_t>;
    std::vector<Out> out;
    out.reserve(local_.size());
    const std::int64_t start = local_start();
    for (std::size_t i = 0; i < local_.size(); ++i) {
      out.push_back(fn(local_[i], start + static_cast<std::int64_t>(i)));
    }
    return BlockArray<Out>::from_local(*comm_, dist_.n, std::move(out));
  }

  // -- Assembly (testing / output) --------------------------------------------

  /// The full array on `root` (empty elsewhere).  O(n) data movement;
  /// meant for verification and small outputs, not inner loops.
  [[nodiscard]] std::vector<T> gather_to(int root) const
    requires std::is_trivially_copyable_v<T>
  {
    return coll::gather<T>(*comm_, root, local_);
  }

  /// Collective read of one global element: the owner broadcasts it, so
  /// every rank returns the value.  All ranks must call with the same
  /// index.
  [[nodiscard]] T fetch(std::int64_t global_index) const
    requires std::is_trivially_copyable_v<T>
  {
    if (global_index < 0 || global_index >= dist_.n) {
      throw ArgumentError("BlockArray::fetch: index out of range");
    }
    const int owner = owner_of(global_index);
    const T value = owns(global_index) ? at(global_index) : T{};
    return coll::bcast(*comm_, owner, value);
  }

 private:
  [[nodiscard]] std::size_t local_offset(std::int64_t global_index) const {
    if (!owns(global_index)) {
      throw ArgumentError("BlockArray: rank " + std::to_string(comm_->rank()) +
                          " does not own global index " +
                          std::to_string(global_index));
    }
    return static_cast<std::size_t>(global_index - local_start());
  }

  mprt::Comm* comm_;
  BlockDist dist_;
  std::vector<T> local_;
};

/// Reduction over pairs of identically-distributed arrays — the
/// global-view analogue of zipping two Chapel arrays into a tuple
/// expression and reducing it.  `op` must accumulate std::pair<A, B>.
template <typename A, typename B, typename Op>
[[nodiscard]] auto zip_reduce(const BlockArray<A>& a, const BlockArray<B>& b,
                              Op op) {
  if (a.size() != b.size()) {
    throw ArgumentError("zip_reduce: arrays differ in global size");
  }
  auto view = std::views::iota(std::int64_t{0}, a.local_size()) |
              std::views::transform([&](std::int64_t i) {
                return std::pair<A, B>(
                    a.local()[static_cast<std::size_t>(i)],
                    b.local()[static_cast<std::size_t>(i)]);
              });
  return rs::reduce(a.comm(), view, std::move(op));
}

}  // namespace rsmpi::dist
