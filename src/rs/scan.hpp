// Global-view user-defined scan (paper Listing 3) — the paper's headline
// contribution: "the first global-view formulation of user-defined scans".
//
// The algorithm has three stages:
//   1. accumulate: each rank folds its local slice into a state, exactly
//      as the reduction does (pre_accum / accum / post_accum) — including
//      the work-stealing parallel path under detail::accumulate_local
//      when RSMPI_LOCAL_THREADS enables it (stage 3's generate/replay
//      walk is inherently sequential: each position's output depends on
//      the state after every earlier position);
//   2. LOCAL_XSCAN over the per-rank states: each rank obtains the
//      combination of all lower ranks' states (identity on rank 0);
//   3. generate/replay: starting from that prefix state, re-walk the local
//      slice, emitting f_scan_gen at each position and folding the
//      position's value back in with f_accum.
//
// Listing 3 as printed produces the exclusive scan; interchanging its
// lines 12 and 13 (generate before vs. after the accumulate) yields the
// inclusive scan, and `kind` selects between the two.
#pragma once

#include <ranges>
#include <vector>

#include "rs/op_concepts.hpp"
#include "rs/reduce.hpp"
#include "rs/state_exchange.hpp"

namespace rsmpi::rs {

enum class ScanKind { kInclusive, kExclusive };

/// Global-view scan over the conceptual concatenation of every rank's
/// local slice.  Returns this rank's slice of the scanned output, one
/// value per local input position.  Requires a forward range because the
/// input is walked twice (accumulate, then generate/replay).
template <typename Op, std::ranges::forward_range R>
  requires ScanOp<Op, std::ranges::range_value_t<R>>
std::vector<scan_result_t<Op, std::ranges::range_value_t<R>>> scan(
    mprt::Comm& comm, R&& local, Op op,
    ScanKind kind = ScanKind::kInclusive) {
  using In = std::ranges::range_value_t<R>;
  using Out = scan_result_t<Op, In>;

  const Op prototype = op;

  // Stage 1: accumulate the local slice (Listing 3 lines 2–8).
  detail::accumulate_local(comm, op, local);

  // Stage 2: exclusive scan of states across ranks (line 9).
  detail::state_xscan(comm, op, prototype);

  // Stage 3: generate + replay (lines 10–13).  `op` now holds the
  // combination of all lower ranks' contributions.
  std::vector<Out> out;
  if constexpr (std::ranges::sized_range<R>) {
    out.reserve(static_cast<std::size_t>(std::ranges::size(local)));
  }
  auto timer = comm.compute_section();
  for (const In& x : local) {
    if (kind == ScanKind::kExclusive) {
      out.push_back(scan_result(op, x));
      op.accum(x);
    } else {
      op.accum(x);
      out.push_back(scan_result(op, x));
    }
  }
  return out;
}

/// The combine half of the scan in isolation: accumulates this rank's
/// slice and returns the *exclusive prefix state* — the combination of
/// every earlier rank's fully-accumulated state (identity on rank 0).
/// Callers that don't need per-position outputs (e.g. a boundary carry
/// such as "the last value held by any earlier rank") use this directly
/// and skip the generate/replay stage.
template <typename Op, std::ranges::input_range R>
  requires Accumulates<Op, std::ranges::range_value_t<R>> && Combinable<Op> &&
           std::copy_constructible<Op> &&
           (HasSaveLoad<Op> || std::is_trivially_copyable_v<Op>)
Op xscan_state(mprt::Comm& comm, R&& local, Op op) {
  const Op prototype = op;
  detail::accumulate_local(comm, op, std::forward<R>(local));
  detail::state_xscan(comm, op, prototype);
  return op;
}

/// Exclusive scan: position i receives the combination of all earlier
/// positions, and global position 0 receives the generate of the identity
/// state — which is why the abstraction requires f_ident (§2).
template <typename Op, std::ranges::forward_range R>
  requires ScanOp<Op, std::ranges::range_value_t<R>>
auto xscan(mprt::Comm& comm, R&& local, Op op) {
  return scan(comm, std::forward<R>(local), std::move(op),
              ScanKind::kExclusive);
}

}  // namespace rsmpi::rs
