// Convenience umbrella for the whole public API:
//
//   #include "rs/rsmpi.hpp"
//
//   rsmpi::mprt::run(8, [](rsmpi::mprt::Comm& comm) {
//     std::vector<int> mine = my_slice(comm.rank());
//     auto mins = rsmpi::rs::reduce(comm, mine, rsmpi::rs::ops::MinK<int>(10));
//     auto ranks = rsmpi::rs::scan(comm, octants, rsmpi::rs::ops::Counts(8));
//   });
#pragma once

#include "coll/barrier.hpp"
#include "coll/bcast.hpp"
#include "coll/gather.hpp"
#include "coll/local_reduce.hpp"
#include "coll/local_scan.hpp"
#include "coll/nb/iallreduce.hpp"
#include "coll/nb/ibarrier.hpp"
#include "coll/nb/ibcast.hpp"
#include "coll/nb/progress.hpp"
#include "coll/nb/request.hpp"
#include "coll/persistent.hpp"
#include "coll/rabenseifner.hpp"
#include "dist/block_array.hpp"
#include "dist/block_matrix.hpp"
#include "mprt/comm.hpp"
#include "mprt/runtime.hpp"
#include "rs/algos/compact.hpp"
#include "rs/algos/radix_sort.hpp"
#include "rs/algos/rle.hpp"
#include "rsmpi_c/rsmpi_c.hpp"
#include "rs/async.hpp"
#include "rs/op_concepts.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "rs/serial.hpp"
#include "svc/svc.hpp"
