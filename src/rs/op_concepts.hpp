// The global-view operator interface (paper §3).
//
// A user-defined reduction/scan operator is a class in the style of the
// paper's Chapel listings (mink, mini, counts, sorted):
//
//   * construction yields the identity state (f_ident);
//   * `accum(x)` folds one input value into the state (f_accum);
//   * `combine(other)` folds another operator's state in on the right —
//     this (+) other, where `this` covers the earlier input positions
//     (f_combine);
//   * one or more generate functions produce the output type from the
//     state: `gen()` serves both roles, or `red_gen()` / `scan_gen(x)`
//     specialize reduction and scan output (f_red_gen, f_scan_gen — note
//     the scan generator may consult the input value at each position);
//   * optional `pre_accum(x)` / `post_accum(x)` observe the first/last
//     local value around the accumulate loop (f_pre_accum, f_post_accum);
//   * optional `static constexpr bool commutative` — assumed true when
//     absent, as in Chapel (§3.1.4);
//   * state travels between ranks either by memcpy (trivially copyable
//     operators) or through `save(bytes::Writer&)` / `load(bytes::Reader&)`
//     for operators with heap state.
//
// Because operators may take runtime constructor arguments (e.g. mink's
// k), the algorithms never default-construct them: the caller passes a
// freshly-constructed *prototype* in identity state, and fresh identities
// are obtained by copying it.
//
// Prototypes must be cheap to clone.  The parallel local accumulate
// (src/par/, docs/parallel_local.md) copies the prototype once per input
// chunk — ceil(extent / RSMPI_LOCAL_GRAIN) clones per call when the
// worker pool is enabled — so an identity copy should cost O(state
// size), allocate sparingly, and never touch shared resources.  Every
// operator in src/rs/ops/ satisfies this; an operator whose identity
// copy is expensive should raise the grain or stay on the serial path
// (the pool is opt-in per process via RSMPI_LOCAL_THREADS).
#pragma once

#include <concepts>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>

#include "util/bytes.hpp"

namespace rsmpi::rs {

template <typename Op>
concept Combinable = requires(Op a, const Op& b) { a.combine(b); };

template <typename Op, typename In>
concept Accumulates = requires(Op op, const In& x) { op.accum(x); };

template <typename Op>
concept HasGen = requires(const Op op) { op.gen(); };

template <typename Op>
concept HasRedGen = requires(const Op op) { op.red_gen(); };

template <typename Op, typename In>
concept HasScanGen = requires(const Op op, const In& x) { op.scan_gen(x); };

template <typename Op, typename In>
concept HasPreAccum = requires(Op op, const In& x) { op.pre_accum(x); };

template <typename Op, typename In>
concept HasPostAccum = requires(Op op, const In& x) { op.post_accum(x); };

template <typename Op>
concept HasSaveLoad = requires(const Op cop, Op op, bytes::Writer& w,
                               bytes::Reader& r) {
  cop.save(w);
  op.load(r);
};

// -- Optional zero-copy serialization hooks (ISSUE 3) -----------------------
//
// Operators may additionally provide any of:
//
//   * `save_into(bytes::Writer&)`  — serialize into a caller-supplied
//     (typically pooled) writer; detected in preference to save();
//   * `load_from(bytes::Reader&)`  — overwrite *this* operator's state in
//     place from a reader, reusing existing heap capacity instead of
//     constructing a fresh operator;
//   * `combine_from_bytes(span)`   — fold a serialized peer state directly
//     out of a receive buffer: this (+) decode(bytes), with zero
//     intermediate Op construction.  The span is byte-aligned only; use
//     bytes::load_unaligned for element access.
//
// All three are optional; the helpers below fall back to save/load (or
// memcpy for trivially copyable operators), so the hooks are a pure
// optimization, never a requirement.

template <typename Op>
concept HasSaveInto = requires(const Op op, bytes::Writer& w) {
  op.save_into(w);
};

template <typename Op>
concept HasLoadFrom = requires(Op op, bytes::Reader& r) { op.load_from(r); };

template <typename Op>
concept HasCombineFromBytes =
    requires(Op op, std::span<const std::byte> data) {
      op.combine_from_bytes(data);
    };

// -- Partitionable states (ISSUE 5) -----------------------------------------
//
// An operator whose state is an array of independently combinable elements
// (Counts buckets, Histogram bins, an element-wise vector, or a single
// scalar) may additionally provide:
//
//   * `part_extent()`            — number of elements; must be equal on
//     every rank holding the same prototype and stable under accum/combine;
//   * `part_bytes(lo, hi)`       — serialized size of the element range
//     [lo, hi); must depend only on the range and the prototype
//     configuration (never on accumulated values), so every rank plans the
//     same segmentation;
//   * `save_part(lo, hi, w)`     — append exactly part_bytes(lo, hi) bytes
//     for the range (no framing: both ends derive the range from the
//     schedule step);
//   * `load_part(lo, hi, data)`  — overwrite the range from a peer's
//     save_part bytes;
//   * `combine_part(lo, hi, data)` — fold a peer's save_part bytes into
//     the range: this[lo, hi) = this[lo, hi) (+) decode(data).
//
// The contract (checked by the segmented-schedule tests): for any split of
// [0, part_extent()) into consecutive ranges, combining another state
// range-by-range must equal one whole-state combine(), and save_part over
// the full range followed by load_part must round-trip the state.  The
// bandwidth-optimal schedules (coll/ring.hpp, coll/pipeline.hpp) are only
// offered to operators modelling these hooks; everything else keeps the
// whole-state path.

template <typename Op>
concept PartitionableState =
    requires(const Op cop, Op op, std::size_t lo, std::size_t hi,
             bytes::Writer& w, std::span<const std::byte> data) {
      { cop.part_extent() } -> std::convertible_to<std::size_t>;
      { cop.part_bytes(lo, hi) } -> std::convertible_to<std::size_t>;
      cop.save_part(lo, hi, w);
      op.load_part(lo, hi, data);
      op.combine_part(lo, hi, data);
    };

/// Whether the runtime may combine disjoint element ranges of Op's state
/// independently (and thus run reduce-scatter/pipelined schedules on it).
template <typename Op>
[[nodiscard]] constexpr bool op_partitionable() {
  return PartitionableState<Op>;
}

// -- Invertible combines (streaming windows) --------------------------------
//
// An operator whose combine has an inverse may provide
//
//   * `uncombine(other)` — undo a prior combine(other):
//     (s (+) other).uncombine(other) == s for states actually produced by
//     combining `other` in.  Group-like operators (Sum, Counts, Histogram)
//     satisfy this exactly; MeanVar only up to floating-point rounding.
//
// Sliding windows over an invertible operator evict expired epochs in O(1)
// by uncombining them from a running aggregate; operators without the hook
// (Min/Max, HyperLogLog, and other semilattices, where combine destroys
// information) take the two-stack suffix-scan evict path instead
// (svc/window.hpp).  The hook is never required.

template <typename Op>
concept InvertibleOp = requires(Op a, const Op& b) { a.uncombine(b); };

/// Serialized size of the whole partitionable state — the `n` the schedule
/// cost formulas are evaluated at.
template <PartitionableState Op>
[[nodiscard]] std::size_t part_state_bytes(const Op& op) {
  return op.part_bytes(0, op.part_extent());
}

/// A complete reduction operator over input type In: accumulable,
/// combinable, copyable (for identity cloning), able to generate a
/// reduction result, and serializable one way or the other.
template <typename Op, typename In>
concept ReductionOp =
    Accumulates<Op, In> && Combinable<Op> && std::copy_constructible<Op> &&
    (HasGen<Op> || HasRedGen<Op>) &&
    (HasSaveLoad<Op> || std::is_trivially_copyable_v<Op>);

/// A complete scan operator additionally generates per-position output.
template <typename Op, typename In>
concept ScanOp = Accumulates<Op, In> && Combinable<Op> &&
                 std::copy_constructible<Op> &&
                 (HasGen<Op> || HasScanGen<Op, In>) &&
                 (HasSaveLoad<Op> || std::is_trivially_copyable_v<Op>);

/// Chapel's rule: an operator without the trait is commutative (§3.1.4).
template <typename Op>
[[nodiscard]] constexpr bool op_commutative() {
  if constexpr (requires { Op::commutative; }) {
    return Op::commutative;
  } else {
    return true;
  }
}

/// Invokes pre_accum when the operator defines it; no-op otherwise.
template <typename Op, typename In>
void pre_accum_if(Op& op, const In& first) {
  if constexpr (HasPreAccum<Op, In>) op.pre_accum(first);
}

/// Invokes post_accum when the operator defines it; no-op otherwise.
template <typename Op, typename In>
void post_accum_if(Op& op, const In& last) {
  if constexpr (HasPostAccum<Op, In>) op.post_accum(last);
}

/// The reduction generate function: red_gen when present, else gen.
template <typename Op>
[[nodiscard]] auto red_result(const Op& op) {
  if constexpr (HasRedGen<Op>) {
    return op.red_gen();
  } else {
    return op.gen();
  }
}

/// The scan generate function: scan_gen(x) when present, else gen.  The
/// paper's scan generator may produce a different value per position based
/// on the input value there (counts does; mink does not).
template <typename Op, typename In>
[[nodiscard]] auto scan_result(const Op& op, const In& x) {
  if constexpr (HasScanGen<Op, In>) {
    return op.scan_gen(x);
  } else {
    return op.gen();
  }
}

/// Result type of a reduction with operator Op.
template <typename Op>
using reduce_result_t = decltype(red_result(std::declval<const Op&>()));

/// Result type of one scan output position.
template <typename Op, typename In>
using scan_result_t =
    decltype(scan_result(std::declval<const Op&>(), std::declval<const In&>()));

/// Serializes an operator's state into a caller-supplied writer (which may
/// wrap a pooled buffer).  Preference order: save_into > save > memcpy of
/// the trivially-copyable representation.
template <typename Op>
void save_op_into(const Op& op, bytes::Writer& w) {
  if constexpr (HasSaveInto<Op>) {
    op.save_into(w);
  } else if constexpr (HasSaveLoad<Op>) {
    op.save(w);
  } else {
    static_assert(std::is_trivially_copyable_v<Op>,
                  "operator must be trivially copyable or provide save/load");
    w.put(op);
  }
}

/// Overwrites `op`'s state in place from serialized bytes.  Preference
/// order: load_from > load > memcpy.  `op` must already carry the right
/// constructor parameters (callers copy the prototype once and reuse it).
template <typename Op>
void load_op_into(Op& op, std::span<const std::byte> data) {
  if constexpr (HasLoadFrom<Op>) {
    bytes::Reader r(data);
    op.load_from(r);
    if (!r.exhausted()) {
      throw ProtocolError("load_op: trailing bytes after operator state");
    }
  } else if constexpr (HasSaveLoad<Op>) {
    bytes::Reader r(data);
    op.load(r);
    if (!r.exhausted()) {
      throw ProtocolError("load_op: trailing bytes after operator state");
    }
  } else {
    static_assert(std::is_trivially_copyable_v<Op>,
                  "operator must be trivially copyable or provide save/load");
    if (data.size() != sizeof(Op)) {
      throw ProtocolError("load_op: operator state has wrong size");
    }
    std::memcpy(static_cast<void*>(&op), data.data(), sizeof(Op));
  }
}

/// Folds a serialized peer state into `op`: op = op (+) decode(data).
/// Uses the operator's combine_from_bytes hook when present (combining
/// straight out of the receive buffer); otherwise materializes a temporary
/// operator from the prototype and combines it.
template <typename Op>
void combine_op_from_bytes(Op& op, const Op& prototype,
                           std::span<const std::byte> data) {
  if constexpr (HasCombineFromBytes<Op>) {
    op.combine_from_bytes(data);
  } else {
    Op other(prototype);
    load_op_into(other, data);
    op.combine(other);
  }
}

/// Serializes an operator's state.
template <typename Op>
[[nodiscard]] std::vector<std::byte> save_op(const Op& op) {
  bytes::Writer w;
  save_op_into(op, w);
  return std::move(w).take();
}

/// Reconstructs an operator's state from bytes.  `prototype` supplies
/// constructor parameters (it is copied, then overwritten by load).
template <typename Op>
[[nodiscard]] Op load_op(const Op& prototype, std::span<const std::byte> data) {
  Op op(prototype);
  load_op_into(op, data);
  return op;
}

}  // namespace rsmpi::rs
