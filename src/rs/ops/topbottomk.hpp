// The TopBottomK operator: the k largest and k smallest values of a
// distributed array, each with its global position.
//
// This is the single user-defined reduction that replaces the "forty
// reductions" of NAS MG's ZRAN3 routine (paper §4.2): the F+MPI reference
// locates the ten largest and ten smallest grid values one at a time with
// repeated built-in reductions, while the global-view formulation carries
// both candidate lists in one operator state and resolves everything in a
// single combine tree.  It composes the semantics of mink/maxk (Listing 4)
// with the location tracking of mini (Listing 5).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rs/ops/mini.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace rsmpi::rs::ops {

/// Output of TopBottomK: the k largest entries (descending by value) and
/// the k smallest (ascending), with positions.
template <typename T, typename Index = long>
struct TopBottomKResult {
  std::vector<Located<T, Index>> largest;
  std::vector<Located<T, Index>> smallest;
};

template <typename T, typename Index = long>
class TopBottomK {
 public:
  static constexpr bool commutative = true;
  using Element = Located<T, Index>;

  explicit TopBottomK(std::size_t k) : k_(k) {
    if (k == 0) throw ArgumentError("TopBottomK: k must be positive");
    largest_.reserve(k + 1);
    smallest_.reserve(k + 1);
  }

  /// Inserts into whichever candidate lists x qualifies for; each list is
  /// kept sorted so rejection costs one comparison against the threshold.
  void accum(const Element& x) {
    insert_largest(x);
    insert_smallest(x);
  }

  void combine(const TopBottomK& other) {
    for (const Element& e : other.largest_) insert_largest(e);
    for (const Element& e : other.smallest_) insert_smallest(e);
  }

  [[nodiscard]] TopBottomKResult<T, Index> gen() const {
    return {largest_, smallest_};
  }

  [[nodiscard]] std::size_t k() const { return k_; }

  void save(bytes::Writer& w) const {
    w.put_vector(largest_);
    w.put_vector(smallest_);
  }
  void load(bytes::Reader& r) {
    largest_ = r.get_vector<Element>();
    smallest_ = r.get_vector<Element>();
    if (largest_.size() > k_ || smallest_.size() > k_) {
      throw ProtocolError("TopBottomK: state arrived with more than k items");
    }
  }

  /// Zero-copy combine: inserts the peer's candidates straight out of the
  /// receive buffer (elements read unaligned; no intermediate operator).
  void combine_from_bytes(std::span<const std::byte> data) {
    bytes::Reader r(data);
    std::uint64_t nl = 0;
    const auto raw_l = r.get_counted_raw<Element>(&nl);
    std::uint64_t ns = 0;
    const auto raw_s = r.get_counted_raw<Element>(&ns);
    if (nl > k_ || ns > k_ || !r.exhausted()) {
      throw ProtocolError("TopBottomK: state arrived with more than k items");
    }
    for (std::uint64_t i = 0; i < nl; ++i) {
      insert_largest(bytes::load_unaligned<Element>(raw_l.data() +
                                                    i * sizeof(Element)));
    }
    for (std::uint64_t i = 0; i < ns; ++i) {
      insert_smallest(bytes::load_unaligned<Element>(raw_s.data() +
                                                     i * sizeof(Element)));
    }
  }

 private:
  /// Descending by value; ties by ascending position (deterministic under
  /// any combine order, like MinI).
  static bool larger(const Element& a, const Element& b) {
    if (a.value != b.value) return a.value > b.value;
    return a.index < b.index;
  }
  static bool smaller(const Element& a, const Element& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.index < b.index;
  }

  void insert_largest(const Element& x) {
    if (largest_.size() == k_ && !larger(x, largest_.back())) return;
    const auto pos =
        std::lower_bound(largest_.begin(), largest_.end(), x, larger);
    largest_.insert(pos, x);
    if (largest_.size() > k_) largest_.pop_back();
  }

  void insert_smallest(const Element& x) {
    if (smallest_.size() == k_ && !smaller(x, smallest_.back())) return;
    const auto pos =
        std::lower_bound(smallest_.begin(), smallest_.end(), x, smaller);
    smallest_.insert(pos, x);
    if (smallest_.size() > k_) smallest_.pop_back();
  }

  std::size_t k_;
  std::vector<Element> largest_;   // descending by value
  std::vector<Element> smallest_;  // ascending by value
};

}  // namespace rsmpi::rs::ops
