// The mini / maxi operators (paper Listing 5): minimum (maximum) value
// together with its location.  The input is a (value, index) pair —
// Chapel's first-class tuples, here a plain aggregate — and the output is
// the winning pair.
//
// Deviation from the listing: Listing 5 keeps the first-seen pair on ties
// (strict comparison), which makes the result depend on combine order and
// therefore nondeterministic under the commutative combine-as-available
// schedule.  We resolve ties to the smallest index — the MPI_MINLOC rule —
// which restores determinism without changing any untied result.
#pragma once

#include <limits>

namespace rsmpi::rs::ops {

/// Input/output element for the located extrema operators.
template <typename T, typename Index = long>
struct Located {
  T value;
  Index index;

  friend constexpr bool operator==(const Located&, const Located&) = default;
};

/// Minimum value and its location.
template <typename T, typename Index = long>
class MinI {
 public:
  static constexpr bool commutative = true;
  using Element = Located<T, Index>;

  void accum(const Element& x) {
    if (x.value < best_.value ||
        (x.value == best_.value && x.index < best_.index)) {
      best_ = x;
    }
  }

  void combine(const MinI& other) { accum(other.best_); }

  [[nodiscard]] Element gen() const { return best_; }

 private:
  Element best_{std::numeric_limits<T>::max(),
                std::numeric_limits<Index>::max()};
};

/// Maximum value and its location.
template <typename T, typename Index = long>
class MaxI {
 public:
  static constexpr bool commutative = true;
  using Element = Located<T, Index>;

  void accum(const Element& x) {
    if (x.value > best_.value ||
        (x.value == best_.value && x.index < best_.index)) {
      best_ = x;
    }
  }

  void combine(const MaxI& other) { accum(other.best_); }

  [[nodiscard]] Element gen() const { return best_; }

 private:
  Element best_{std::numeric_limits<T>::lowest(),
                std::numeric_limits<Index>::max()};
};

}  // namespace rsmpi::rs::ops
