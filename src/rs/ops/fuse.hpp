// Operator fusion: run two (or, by nesting, any number of) reductions over
// the same input in a single accumulate pass and a single combine tree.
//
// This is the paper's §2.1 aggregation idea hoisted to the operator level:
// instead of aggregating k instances of the *same* operator, Fuse
// aggregates *different* operators — e.g. the NAS MG rewrite's "ten
// largest and ten smallest in one reduction" is TopBottomK, which is
// morally Fuse<MaxK-with-loc, MinK-with-loc>.  One message per tree edge
// carries both states.
#pragma once

#include <utility>

#include "rs/op_concepts.hpp"

namespace rsmpi::rs::ops {

template <typename OpA, typename OpB>
class Fuse {
 public:
  static constexpr bool commutative =
      op_commutative<OpA>() && op_commutative<OpB>();

  Fuse(OpA a, OpB b) : a_(std::move(a)), b_(std::move(b)) {}

  template <typename In>
    requires Accumulates<OpA, In> && Accumulates<OpB, In>
  void accum(const In& x) {
    a_.accum(x);
    b_.accum(x);
  }

  template <typename In>
    requires Accumulates<OpA, In> && Accumulates<OpB, In>
  void pre_accum(const In& x) {
    pre_accum_if(a_, x);
    pre_accum_if(b_, x);
  }

  template <typename In>
    requires Accumulates<OpA, In> && Accumulates<OpB, In>
  void post_accum(const In& x) {
    post_accum_if(a_, x);
    post_accum_if(b_, x);
  }

  void combine(const Fuse& other) {
    a_.combine(other.a_);
    b_.combine(other.b_);
  }

  /// Reduction output: the pair of both operators' results.
  [[nodiscard]] auto red_gen() const {
    return std::make_pair(red_result(a_), red_result(b_));
  }

  template <typename In>
  [[nodiscard]] auto scan_gen(const In& x) const {
    return std::make_pair(scan_result(a_, x), scan_result(b_, x));
  }

  [[nodiscard]] const OpA& first() const { return a_; }
  [[nodiscard]] const OpB& second() const { return b_; }

  void save(bytes::Writer& w) const {
    w.put_vector(save_op(a_));
    w.put_vector(save_op(b_));
  }
  void load(bytes::Reader& r) {
    const auto ra = r.get_vector<std::byte>();
    a_ = load_op(a_, ra);
    const auto rb = r.get_vector<std::byte>();
    b_ = load_op(b_, rb);
  }

 private:
  OpA a_;
  OpB b_;
};

/// Factory with deduction: fuse(ops::Min<int>{}, ops::Max<int>{}).
template <typename OpA, typename OpB>
[[nodiscard]] Fuse<OpA, OpB> fuse(OpA a, OpB b) {
  return Fuse<OpA, OpB>(std::move(a), std::move(b));
}

}  // namespace rsmpi::rs::ops
