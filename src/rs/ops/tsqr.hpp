// Tall-skinny QR as a user-defined reduction (ISSUE 9 tentpole, after
// Demmel et al., arXiv 1002.4250): the state is the upper-triangular R
// factor of every row absorbed so far, accum folds one row in via Givens
// rotations, and combine merges two R factors by re-factoring the stack
// [R_left; R_right].  The operator is *noncommutative at the bit level*
// (R merges are only commutative up to rounding), non-invertible, and its
// diagonal is kept nonnegative by construction — every rotation writes
// hypot(..) >= 0 onto the diagonal — so results from different ordered
// schedules are directly comparable without a canonicalization pass.
//
// State layout: packed column-major upper triangle.  Column j holds its
// j+1 entries (rows 0..j) contiguously at offset j(j+1)/2, k(k+1)/2
// doubles total.  The identity state is all zeros, and there is no row
// counter, so the state is exactly its payload and save_part/load_part
// round-trip bitwise.
//
// Column panels (the partitionable-state hooks) are the interesting part:
// a Givens merge is *not* element-wise, so combining a peer's R column
// range in isolation is meaningless.  Instead, combine_part runs a
// *streamed* merge: per in-flight peer a MergeSession tracks the next
// expected column and the log of rotations generated so far (one list per
// peer row).  When columns [lo, hi) arrive, each new column first replays
// the already-generated rotations of every participating peer row (in
// generation order), then generates and logs this column's own rotations.
// Processing the merge column-major this way performs the exact same
// scalar operations, on the exact same operand values, in the same
// per-location order as the row-major whole-state merge — so a segmented
// schedule that feeds panels in order is *bitwise identical* to one
// whole-state combine.  Columns below `next` are final (later rotations
// only touch columns >= next), which is what lets the pipelined binomial
// tree forward leading panels onward before the trailing ones arrive.
//
// Sessions are matched by panel start: a panel at column 0 opens a new
// session, and a panel at lo > 0 attaches to the first open session
// expecting lo.  The blocking and pipelined schedules both interleave
// children deterministically per segment (source-specific receives in
// fixed step order), so this demux is deterministic — the exhaustive
// checker (tests/verify) proves it presents zero schedule freedom.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace rsmpi::rs::ops {

/// Reduction output of TSQR: the column count and the packed column-major
/// upper-triangular R (same layout as the operator state).
struct TsqrResult {
  std::size_t cols = 0;
  std::vector<double> r;  // packed column-major upper triangle

  /// Entry R(i, j), i <= j; zero below the diagonal.
  [[nodiscard]] double entry(std::size_t i, std::size_t j) const {
    if (j >= cols || i >= cols) throw ArgumentError("TsqrResult: out of range");
    if (i > j) return 0.0;
    return r[j * (j + 1) / 2 + i];
  }

  /// Row-major cols x cols dense R (for the numerical oracle helpers).
  [[nodiscard]] std::vector<double> dense() const {
    std::vector<double> out(cols * cols, 0.0);
    for (std::size_t j = 0; j < cols; ++j) {
      for (std::size_t i = 0; i <= j; ++i) {
        out[i * cols + j] = r[j * (j + 1) / 2 + i];
      }
    }
    return out;
  }

  friend bool operator==(const TsqrResult&, const TsqrResult&) = default;
};

class TSQR {
 public:
  static constexpr bool commutative = false;

  explicit TSQR(std::size_t cols) : k_(cols), r_(packed_size(cols), 0.0) {
    if (cols == 0) throw ArgumentError("TSQR: need at least one column");
  }

  [[nodiscard]] std::size_t cols() const { return k_; }

  /// Absorb one row of the tall matrix: one Givens rotation per nonzero
  /// surviving entry, diagonal kept nonnegative by hypot.
  void accum(const std::vector<double>& row) {
    if (row.size() != k_) {
      throw ArgumentError("TSQR: row has " + std::to_string(row.size()) +
                          " entries, operator has " + std::to_string(k_) +
                          " columns");
    }
    scratch_ = row;
    absorb_row(0, scratch_.data());
  }

  /// Merge another R factor: stream the peer's columns through a fresh
  /// session — the same code path combine_part uses, so whole-state and
  /// segmented merges are bitwise identical by construction.
  void combine(const TSQR& other) {
    if (other.k_ != k_) {
      throw ProtocolError("TSQR: mismatched column counts in combine");
    }
    MergeSession session(k_);
    for (std::size_t t = 0; t < k_; ++t) {
      absorb_column(session, t, other.r_.data() + col_offset(t));
    }
  }

  [[nodiscard]] TsqrResult gen() const { return TsqrResult{k_, r_}; }

  // -- serialization ---------------------------------------------------------

  void save(bytes::Writer& w) const { w.put_vector(r_); }
  void save_into(bytes::Writer& w) const { save(w); }

  void load(bytes::Reader& r) {
    auto v = r.get_vector<double>();
    if (v.size() != r_.size()) {
      throw ProtocolError("TSQR: state arrived with mismatched size");
    }
    r_ = std::move(v);
  }
  void load_from(bytes::Reader& r) { r.get_span(std::span<double>(r_)); }

  /// Zero-copy combine: stream the peer's serialized columns directly out
  /// of the (unaligned) receive buffer, no temporary operator.
  void combine_from_bytes(std::span<const std::byte> data) {
    bytes::Reader reader(data);
    std::uint64_t n = 0;
    const auto raw = reader.get_counted_raw<double>(&n);
    if (n != r_.size() || !reader.exhausted()) {
      throw ProtocolError("TSQR: mismatched column counts in combine");
    }
    MergeSession session(k_);
    for (std::size_t t = 0; t < k_; ++t) {
      absorb_column(session, t,
                    unpack_column(raw.data() + col_offset(t) * sizeof(double),
                                  t + 1));
    }
  }

  // -- partitionable state: column panels ------------------------------------

  [[nodiscard]] std::size_t part_extent() const { return k_; }

  /// Column j weighs (j+1) doubles, so panels are inherently uneven —
  /// equal-byte segmentation lands on odd column splits immediately.
  [[nodiscard]] std::size_t part_bytes(std::size_t lo, std::size_t hi) const {
    check_range(lo, hi);
    return (col_offset(hi) - col_offset(lo)) * sizeof(double);
  }

  void save_part(std::size_t lo, std::size_t hi, bytes::Writer& w) const {
    check_range(lo, hi);
    w.put_raw(std::as_bytes(std::span<const double>(r_).subspan(
        col_offset(lo), col_offset(hi) - col_offset(lo))));
  }

  void load_part(std::size_t lo, std::size_t hi,
                 std::span<const std::byte> data) {
    check_range(lo, hi);
    if (data.size() != part_bytes(lo, hi)) {
      throw ProtocolError("TSQR: segment arrived with mismatched size");
    }
    if (!data.empty()) {
      std::memcpy(r_.data() + col_offset(lo), data.data(), data.size());
    }
  }

  /// Streamed panel merge; panels of one peer must arrive in column order
  /// starting at 0 (every ordered schedule satisfies this).
  void combine_part(std::size_t lo, std::size_t hi,
                    std::span<const std::byte> data) {
    check_range(lo, hi);
    if (data.size() != part_bytes(lo, hi)) {
      throw ProtocolError("TSQR: segment arrived with mismatched size");
    }
    MergeSession* session = nullptr;
    if (lo == 0) {
      sessions_.emplace_back(k_);
      session = &sessions_.back();
    } else {
      for (MergeSession& s : sessions_) {
        if (s.next == lo) {
          session = &s;
          break;
        }
      }
      if (session == nullptr) {
        throw ProtocolError("TSQR: column panel out of order (no merge in "
                            "progress expects column " + std::to_string(lo) +
                            ")");
      }
    }
    const std::byte* p = data.data();
    for (std::size_t t = lo; t < hi; ++t) {
      absorb_column(*session, t, unpack_column(p, t + 1));
      p += (t + 1) * sizeof(double);
    }
    if (session->next == k_) {
      // Completed merge: retire the session so the next panel at column 0
      // opens a fresh one.
      for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
        if (&*it == session) {
          sessions_.erase(it);
          break;
        }
      }
    }
  }

  friend bool operator==(const TSQR& a, const TSQR& b) {
    return a.k_ == b.k_ && a.r_ == b.r_;
  }

 private:
  /// One logged Givens rotation: generated at `col`, mixing R row `col`
  /// with one peer row.
  struct Rotation {
    std::uint32_t col;
    double cs;
    double sn;
  };

  /// Per-peer streaming merge state: the next column expected, and the
  /// rotations generated so far for each peer row (applied in generation
  /// order to every later column that row participates in).
  struct MergeSession {
    explicit MergeSession(std::size_t k) : row_rots(k) {}
    std::size_t next = 0;
    std::vector<std::vector<Rotation>> row_rots;
  };

  static constexpr std::size_t packed_size(std::size_t k) {
    return k * (k + 1) / 2;
  }
  static constexpr std::size_t col_offset(std::size_t j) {
    return j * (j + 1) / 2;
  }

  void check_range(std::size_t lo, std::size_t hi) const {
    if (lo > hi || hi > k_) {
      throw ProtocolError("TSQR: segment range out of bounds");
    }
  }

  /// Reads one packed column (unaligned receive bytes) into the scratch
  /// buffer and returns a pointer to the aligned doubles.
  const double* unpack_column(const std::byte* p, std::size_t n) {
    scratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      scratch_[i] = bytes::load_unaligned<double>(p + i * sizeof(double));
    }
    return scratch_.data();
  }

  /// Row-major absorb of one dense row starting at column `first`:
  /// the accum path.  `v` has k_ entries and is clobbered.
  void absorb_row(std::size_t first, double* v) {
    for (std::size_t c = first; c < k_; ++c) {
      const double b = v[c];
      if (b == 0.0) continue;
      double& diag = r_[col_offset(c) + c];
      const double h = std::hypot(diag, b);
      const double cs = diag / h;
      const double sn = b / h;
      diag = h;
      for (std::size_t t = c + 1; t < k_; ++t) {
        double& rc = r_[col_offset(t) + c];
        const double nr = cs * rc + sn * v[t];
        v[t] = -sn * rc + cs * v[t];
        rc = nr;
      }
    }
  }

  /// Column-major streamed absorb of one peer column `t` (values vals[i]
  /// = peer R(i, t) for i <= t): replay each participating peer row's
  /// logged rotations against this column, then generate this column's
  /// rotation for that row and log it.  `session.next` must equal t.
  void absorb_column(MergeSession& session, std::size_t t,
                     const double* vals) {
    if (session.next != t) {
      throw ProtocolError("TSQR: column panel out of order");
    }
    for (std::size_t i = 0; i <= t; ++i) {
      double v = vals[i];
      for (const Rotation& e : session.row_rots[i]) {
        double& rc = r_[col_offset(t) + e.col];
        const double nr = e.cs * rc + e.sn * v;
        v = -e.sn * rc + e.cs * v;
        rc = nr;
      }
      if (v == 0.0) continue;
      double& diag = r_[col_offset(t) + t];
      const double h = std::hypot(diag, v);
      session.row_rots[i].push_back(
          {static_cast<std::uint32_t>(t), diag / h, v / h});
      diag = h;
    }
    session.next = t + 1;
  }

  std::size_t k_;
  std::vector<double> r_;
  std::vector<MergeSession> sessions_;  // in-flight streamed panel merges
  std::vector<double> scratch_;         // row / unaligned-column staging
};

}  // namespace rsmpi::rs::ops
