// Segmented operator adapter: lifts any global-view operator to segmented
// semantics in the style of Blelloch's segmented scans (the paper's [3],
// whose vector model builds data-parallel algorithms on exactly this
// primitive).
//
// Input elements carry a start-of-segment flag; a segmented *scan* with
// Segmented<Op> restarts the underlying operator at every flagged
// position, yielding per-segment running results, and a segmented
// *reduction* yields the underlying result of the final segment.  The
// adapter is the standard segment monoid: state = (suffix-run state, saw a
// boundary?), so it is associative whenever Op is, but never commutative —
// segment boundaries order the operands.
#pragma once

#include "rs/op_concepts.hpp"

namespace rsmpi::rs::ops {

/// One segmented input element.
template <typename In>
struct Seg {
  In value;
  /// True when this element begins a new segment.
  bool start = false;
};

template <typename Op, typename In>
  requires Accumulates<Op, In> && Combinable<Op> &&
           std::copy_constructible<Op>
class Segmented {
 public:
  static constexpr bool commutative = false;

  /// `prototype` must be in identity state; it seeds every restart.
  explicit Segmented(Op prototype)
      : run_(prototype), prototype_(std::move(prototype)) {}

  void accum(const Seg<In>& x) {
    if (x.start) {
      run_ = prototype_;
      boundary_ = true;
    }
    run_.accum(x.value);
  }

  /// this = this (+) other.  If the right block contains a boundary, its
  /// suffix run replaces ours (our run ended inside the right block);
  /// otherwise the right block continues our run.
  void combine(const Segmented& other) {
    if (other.boundary_) {
      run_ = other.run_;
      boundary_ = true;
    } else {
      run_.combine(other.run_);
    }
  }

  /// Reduction output: the underlying result of the last segment.
  [[nodiscard]] auto red_gen() const { return red_result(run_); }

  /// Scan output: the underlying operator's per-position output within the
  /// current segment.
  [[nodiscard]] auto scan_gen(const Seg<In>& x) const {
    return scan_result(run_, x.value);
  }

  /// Access to the wrapped state (e.g. for extra generate functions).
  [[nodiscard]] const Op& inner() const { return run_; }

  void save(bytes::Writer& w) const {
    w.put<std::uint8_t>(boundary_ ? 1 : 0);
    w.put_vector(save_op(run_));
  }
  void load(bytes::Reader& r) {
    boundary_ = r.get<std::uint8_t>() != 0;
    const auto raw = r.get_vector<std::byte>();
    run_ = load_op(prototype_, raw);
  }

 private:
  Op run_;         // state of the suffix run (since the last boundary)
  Op prototype_;   // identity, for restarts and deserialization
  bool boundary_ = false;
};

/// Deduction-friendly factory: segmented(ops::Sum<long>{}).
template <typename In, typename Op>
[[nodiscard]] Segmented<Op, In> segmented(Op prototype) {
  return Segmented<Op, In>(std::move(prototype));
}

}  // namespace rsmpi::rs::ops
