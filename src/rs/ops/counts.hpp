// The counts operator (paper Listing 6, §3.1.3): given values that are
// bucket numbers, the *reduction* yields the occupancy of every bucket and
// the *scan* yields each value's rank within its bucket — the operator
// whose generate function differs between the two uses (red_gen vs.
// scan_gen), and whose scan generator consults the input value at each
// position.
//
// The paper's particles-in-octants example: reducing
// [6,7,6,3,8,2,8,4,8,3] over 8 buckets gives counts [0,1,2,1,0,2,1,3]; the
// scan gives rankings [1,1,2,1,1,1,2,1,3,2].
//
// Buckets here are 0-based (the paper's Chapel arrays are 1-based).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace rsmpi::rs::ops {

class Counts {
 public:
  static constexpr bool commutative = true;

  explicit Counts(std::size_t num_buckets) : v_(num_buckets, 0) {
    if (num_buckets == 0) {
      throw ArgumentError("Counts: need at least one bucket");
    }
  }

  void accum(const int& x) {
    if (x < 0 || static_cast<std::size_t>(x) >= v_.size()) {
      throw ArgumentError("Counts: bucket index " + std::to_string(x) +
                          " out of range [0, " + std::to_string(v_.size()) +
                          ")");
    }
    v_[static_cast<std::size_t>(x)] += 1;
  }

  void combine(const Counts& other) {
    if (other.v_.size() != v_.size()) {
      throw ProtocolError("Counts: mismatched bucket counts in combine");
    }
    for (std::size_t i = 0; i < v_.size(); ++i) v_[i] += other.v_[i];
  }

  /// Inverse of combine (bucket occupancies are element-wise sums): the
  /// invertible-window hook.
  void uncombine(const Counts& other) {
    if (other.v_.size() != v_.size()) {
      throw ProtocolError("Counts: mismatched bucket counts in uncombine");
    }
    for (std::size_t i = 0; i < v_.size(); ++i) v_[i] -= other.v_[i];
  }

  /// Reduction output: occupancy per bucket.
  [[nodiscard]] std::vector<long> red_gen() const { return v_; }

  /// Scan output at a position holding value x: the number of occurrences
  /// of bucket x seen so far — in an inclusive scan, x's 1-based rank
  /// within its bucket.
  [[nodiscard]] long scan_gen(const int& x) const {
    return v_[static_cast<std::size_t>(x)];
  }

  void save(bytes::Writer& w) const { w.put_vector(v_); }
  void load(bytes::Reader& r) {
    auto v = r.get_vector<long>();
    if (v.size() != v_.size()) {
      throw ProtocolError("Counts: state arrived with mismatched size");
    }
    v_ = std::move(v);
  }

  /// Zero-copy combine: folds a peer's serialized occupancies straight out
  /// of the receive buffer (no intermediate Counts construction).
  void combine_from_bytes(std::span<const std::byte> data) {
    bytes::Reader r(data);
    std::uint64_t n = 0;
    const auto raw = r.get_counted_raw<long>(&n);
    if (n != v_.size() || !r.exhausted()) {
      throw ProtocolError("Counts: mismatched bucket counts in combine");
    }
    const std::byte* p = raw.data();
    for (std::size_t i = 0; i < v_.size(); ++i, p += sizeof(long)) {
      v_[i] += bytes::load_unaligned<long>(p);
    }
  }

  // Partitionable-state hooks (ISSUE 5): each bucket combines
  // independently, so segmented schedules may ship and fold bucket ranges.
  [[nodiscard]] std::size_t part_extent() const { return v_.size(); }
  [[nodiscard]] std::size_t part_bytes(std::size_t lo, std::size_t hi) const {
    return (hi - lo) * sizeof(long);
  }
  void save_part(std::size_t lo, std::size_t hi, bytes::Writer& w) const {
    check_range(lo, hi);
    w.put_raw(std::as_bytes(std::span<const long>(v_).subspan(lo, hi - lo)));
  }
  void load_part(std::size_t lo, std::size_t hi,
                 std::span<const std::byte> data) {
    check_range(lo, hi);
    if (data.size() != (hi - lo) * sizeof(long)) {
      throw ProtocolError("Counts: segment arrived with mismatched size");
    }
    if (!data.empty()) std::memcpy(v_.data() + lo, data.data(), data.size());
  }
  void combine_part(std::size_t lo, std::size_t hi,
                    std::span<const std::byte> data) {
    check_range(lo, hi);
    if (data.size() != (hi - lo) * sizeof(long)) {
      throw ProtocolError("Counts: segment arrived with mismatched size");
    }
    const std::byte* p = data.data();
    for (std::size_t i = lo; i < hi; ++i, p += sizeof(long)) {
      v_[i] += bytes::load_unaligned<long>(p);
    }
  }

 private:
  void check_range(std::size_t lo, std::size_t hi) const {
    if (lo > hi || hi > v_.size()) {
      throw ProtocolError("Counts: segment range out of bounds");
    }
  }

  std::vector<long> v_;
};

}  // namespace rsmpi::rs::ops
