// The sorted operator (paper Listing 7, §3.1.4): reduces an ordered
// sequence to the single boolean "is it sorted?".
//
// This is the paper's showcase non-commutative operator and the operator
// behind the NAS IS case study (§4.1).  The accumulate function tracks the
// running last element (one comparison, one register-resident value per
// input — the "scalar improvement" the paper credits for RSMPI's edge over
// the stock NAS code), pre_accum records the block's first element, and
// combine checks both sub-results and the boundary pair.
//
// Deviation from the listing: Listing 7's combine consults the right
// operand's `first` but never updates its own, which silently mis-handles
// a processor holding zero elements (its sentinel `first`/`last` values
// leak into boundary checks).  We carry an explicit emptiness flag: an
// empty state is a true identity for combine.  All non-empty behaviour is
// exactly the listing's.
#pragma once

#include <limits>

namespace rsmpi::rs::ops {

template <typename T>
class Sorted {
 public:
  /// Order matters: [3, 1] combined as (3)(1) is unsorted, as (1)(3) is
  /// sorted.  Declaring this false selects the order-preserving combine
  /// schedule (and §4.1's experiment of lying about it is reproduced in
  /// bench/ablation_commutativity).
  static constexpr bool commutative = false;

  /// Observes the first element of the local block (Listing 7 pre_accum).
  void pre_accum(const T& x) {
    first_ = x;
    empty_ = false;
  }

  /// Folds one element: any descent falsifies sortedness (Listing 7 accum).
  /// If the framework's pre_accum hook was bypassed (direct use), the
  /// first accumulated element doubles as `first`.
  void accum(const T& x) {
    if (empty_) {
      first_ = x;
      empty_ = false;
    } else if (last_ > x) {
      // last_ starts at T's lowest value, so the very first accum after
      // pre_accum can never trip this branch spuriously.
      status_ = false;
    }
    last_ = x;
  }

  /// this = this (+) other, where this covers the earlier positions:
  /// both halves must be sorted and the boundary must not descend.
  void combine(const Sorted& other) {
    if (other.empty_) return;
    if (empty_) {
      *this = other;
      return;
    }
    status_ = status_ && other.status_ && last_ <= other.first_;
    last_ = other.last_;
  }

  [[nodiscard]] bool gen() const { return status_; }

 private:
  bool status_ = true;
  bool empty_ = true;
  T first_ = std::numeric_limits<T>::max();
  T last_ = std::numeric_limits<T>::lowest();
};

}  // namespace rsmpi::rs::ops
