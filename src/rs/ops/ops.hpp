// Umbrella header for the global-view operator library.
#pragma once

#include "rs/ops/basic.hpp"        // Sum, Product, Min, Max, All, Any, CountIf
#include "rs/ops/concat.hpp"       // Concat (non-commutative test op)
#include "rs/ops/counts.hpp"       // Counts (Listing 6)
#include "rs/ops/mapped.hpp"       // Mapped (input-transform adapter)
#include "rs/ops/firstlast.hpp"    // First, Last (boundary carries)
#include "rs/ops/fuse.hpp"         // Fuse (two reductions, one pass)
#include "rs/ops/histogram.hpp"    // Histogram
#include "rs/ops/kahan.hpp"        // KahanSum (compensated summation)
#include "rs/ops/maxsubarray.hpp"  // MaxSubarray (Kadane, associative form)
#include "rs/ops/meanvar.hpp"      // MeanVar (Welford)
#include "rs/ops/mini.hpp"         // MinI, MaxI (Listing 5)
#include "rs/ops/mink.hpp"         // MinK, MaxK (Listings 1/4)
#include "rs/ops/segmented.hpp"    // Segmented (Blelloch-style segments)
#include "rs/ops/sketches.hpp"     // HyperLogLog, HeavyHitters, BloomFilter
#include "rs/ops/sorted.hpp"       // Sorted (Listing 7)
#include "rs/ops/topbottomk.hpp"   // TopBottomK (NAS MG §4.2)
#include "rs/ops/tsqr.hpp"         // TSQR (noncommutative R-factor merge)
