// Compensated (Kahan–Neumaier) summation as a reduction operator.
//
// Floating-point addition is only approximately associative, so a
// parallel sum's result depends on the combine tree — an old HPC trap the
// operator-class abstraction can *mitigate*: carrying a compensation term
// through accumulate and combine keeps the error near one ulp of the
// true sum regardless of schedule, where the naive Sum<double> error
// grows with the condition number of the data.
#pragma once

#include <cmath>

namespace rsmpi::rs::ops {

class KahanSum {
 public:
  static constexpr bool commutative = true;

  /// Neumaier's variant of the compensated update: also correct when the
  /// addend exceeds the running sum in magnitude.
  void accum(const double& x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  /// Merging two compensated partial sums: fold the other's principal sum
  /// with a compensated update and carry both compensation terms.
  void combine(const KahanSum& o) {
    accum(o.sum_);
    comp_ += o.comp_;
  }

  [[nodiscard]] double gen() const { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

}  // namespace rsmpi::rs::ops
