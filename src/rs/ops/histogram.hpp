// Histogram operator: Counts generalized from integer bucket numbers to
// real values binned by explicit edges.  Demonstrates configuration state
// (the edges) that rides in the prototype and is excluded from the wire
// format — only the occupancy vector travels between ranks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace rsmpi::rs::ops {

/// Bins values into [edges[i], edges[i+1]) intervals; values below the
/// first edge or at/above the last are counted in two overflow bins.
template <typename T>
class Histogram {
 public:
  static constexpr bool commutative = true;

  explicit Histogram(std::vector<T> edges) : edges_(std::move(edges)) {
    if (edges_.size() < 2) {
      throw ArgumentError("Histogram: need at least two bin edges");
    }
    if (!std::is_sorted(edges_.begin(), edges_.end())) {
      throw ArgumentError("Histogram: edges must be ascending");
    }
    counts_.assign(edges_.size() + 1, 0);  // bins + {under, over}flow
  }

  void accum(const T& x) { counts_[bin_of(x)] += 1; }

  void combine(const Histogram& other) {
    if (other.counts_.size() != counts_.size()) {
      throw ProtocolError("Histogram: mismatched bin counts in combine");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  }

  /// Inverse of combine (bin occupancies are element-wise sums): the
  /// invertible-window hook.
  void uncombine(const Histogram& other) {
    if (other.counts_.size() != counts_.size()) {
      throw ProtocolError("Histogram: mismatched bin counts in uncombine");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] -= other.counts_[i];
    }
  }

  /// Reduction output: interior bins first, then underflow and overflow.
  [[nodiscard]] std::vector<long> red_gen() const { return counts_; }

  /// Scan output: occurrences so far in x's own bin (x's running rank
  /// within its bin, 1-based under an inclusive scan).
  [[nodiscard]] long scan_gen(const T& x) const { return counts_[bin_of(x)]; }

  [[nodiscard]] std::size_t num_interior_bins() const {
    return edges_.size() - 1;
  }
  [[nodiscard]] long underflow() const {
    return counts_[counts_.size() - 2];
  }
  [[nodiscard]] long overflow() const { return counts_.back(); }

  void save(bytes::Writer& w) const { w.put_vector(counts_); }
  void load(bytes::Reader& r) {
    auto v = r.get_vector<long>();
    if (v.size() != counts_.size()) {
      throw ProtocolError("Histogram: state arrived with mismatched size");
    }
    counts_ = std::move(v);
  }

  // Zero-copy hooks (same wire format as save/load): serialize into a
  // pooled writer, overwrite the occupancy vector in place, and fold a
  // peer's serialized occupancies straight out of the receive buffer.
  void save_into(bytes::Writer& w) const { w.put_vector(counts_); }
  void load_from(bytes::Reader& r) {
    std::uint64_t n = 0;
    const auto raw = r.get_counted_raw<long>(&n);
    if (n != counts_.size()) {
      throw ProtocolError("Histogram: state arrived with mismatched size");
    }
    if (!raw.empty()) std::memcpy(counts_.data(), raw.data(), raw.size());
  }
  void combine_from_bytes(std::span<const std::byte> data) {
    bytes::Reader r(data);
    std::uint64_t n = 0;
    const auto raw = r.get_counted_raw<long>(&n);
    if (n != counts_.size() || !r.exhausted()) {
      throw ProtocolError("Histogram: mismatched bin counts in combine");
    }
    const std::byte* p = raw.data();
    for (std::size_t i = 0; i < counts_.size(); ++i, p += sizeof(long)) {
      counts_[i] += bytes::load_unaligned<long>(p);
    }
  }

  // Partitionable-state hooks (ISSUE 5): the occupancy vector is
  // element-wise additive, so bin ranges combine independently.  The edges
  // stay prototype configuration and never travel.
  [[nodiscard]] std::size_t part_extent() const { return counts_.size(); }
  [[nodiscard]] std::size_t part_bytes(std::size_t lo, std::size_t hi) const {
    return (hi - lo) * sizeof(long);
  }
  void save_part(std::size_t lo, std::size_t hi, bytes::Writer& w) const {
    check_range(lo, hi);
    w.put_raw(
        std::as_bytes(std::span<const long>(counts_).subspan(lo, hi - lo)));
  }
  void load_part(std::size_t lo, std::size_t hi,
                 std::span<const std::byte> data) {
    check_range(lo, hi);
    if (data.size() != (hi - lo) * sizeof(long)) {
      throw ProtocolError("Histogram: segment arrived with mismatched size");
    }
    if (!data.empty()) {
      std::memcpy(counts_.data() + lo, data.data(), data.size());
    }
  }
  void combine_part(std::size_t lo, std::size_t hi,
                    std::span<const std::byte> data) {
    check_range(lo, hi);
    if (data.size() != (hi - lo) * sizeof(long)) {
      throw ProtocolError("Histogram: segment arrived with mismatched size");
    }
    const std::byte* p = data.data();
    for (std::size_t i = lo; i < hi; ++i, p += sizeof(long)) {
      counts_[i] += bytes::load_unaligned<long>(p);
    }
  }

 private:
  void check_range(std::size_t lo, std::size_t hi) const {
    if (lo > hi || hi > counts_.size()) {
      throw ProtocolError("Histogram: segment range out of bounds");
    }
  }

  /// Index layout: [0, nbins) interior, nbins = underflow, nbins+1 = over.
  [[nodiscard]] std::size_t bin_of(const T& x) const {
    const std::size_t nbins = edges_.size() - 1;
    if (x < edges_.front()) return nbins;      // underflow
    if (!(x < edges_.back())) return nbins + 1;  // overflow (x >= last edge)
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
    return static_cast<std::size_t>(it - edges_.begin()) - 1;
  }

  std::vector<T> edges_;
  std::vector<long> counts_;
};

/// Approximate q-quantile from a reduced histogram: the value (linearly
/// interpolated within its bin) below which a fraction q of the counted
/// samples fall.  Underflow/overflow samples count toward the ends but
/// clamp to the outer edges.  q in [0, 1].
template <typename T>
[[nodiscard]] double histogram_quantile(const std::vector<long>& counts,
                                        const std::vector<T>& edges,
                                        double q) {
  if (counts.size() != edges.size() + 1) {
    throw ArgumentError(
        "histogram_quantile: counts must be red_gen() of a Histogram with "
        "these edges");
  }
  if (q < 0.0 || q > 1.0) {
    throw ArgumentError("histogram_quantile: q must be in [0, 1]");
  }
  long total = 0;
  for (const long c : counts) total += c;
  if (total == 0) {
    throw ArgumentError("histogram_quantile: empty histogram");
  }
  const double target = q * static_cast<double>(total);
  // Walk underflow, interior bins, overflow in value order.
  double seen = static_cast<double>(counts[counts.size() - 2]);  // underflow
  if (target <= seen) return static_cast<double>(edges.front());
  const std::size_t nbins = edges.size() - 1;
  for (std::size_t b = 0; b < nbins; ++b) {
    const double c = static_cast<double>(counts[b]);
    if (target <= seen + c && c > 0) {
      const double frac = (target - seen) / c;
      return static_cast<double>(edges[b]) +
             frac * (static_cast<double>(edges[b + 1]) -
                     static_cast<double>(edges[b]));
    }
    seen += c;
  }
  return static_cast<double>(edges.back());  // in the overflow tail
}

}  // namespace rsmpi::rs::ops
