// Mergeable-sketch operators: the modern descendants of the paper's
// user-defined reductions.  Each carries a fixed-size summary state whose
// combine is exactly a set-union/merge — the shape the global-view
// abstraction was built for: the accumulate phase streams the local data
// once, and the combine tree moves only sketch bytes.
//
// All three sketches here are deterministic (given the prototype's
// parameters), so the parallel == serial property tests apply verbatim.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace rsmpi::rs::ops {

namespace detail {

/// splitmix64: cheap, well-mixed 64-bit hash for sketch indexing.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

template <typename T>
  requires std::is_integral_v<T>
std::uint64_t sketch_hash(const T& x, std::uint64_t salt = 0) {
  return mix64(static_cast<std::uint64_t>(x) ^ salt);
}

}  // namespace detail

/// Approximate count of distinct values (HyperLogLog).  State: 2^b
/// 6-bit-ish registers; combine is the element-wise maximum, so the
/// operator is commutative and idempotent.
template <typename T>
class HyperLogLog {
 public:
  static constexpr bool commutative = true;

  /// `precision_bits` b in [4, 16]: 2^b registers, standard error about
  /// 1.04 / sqrt(2^b).
  explicit HyperLogLog(int precision_bits) : b_(precision_bits) {
    if (b_ < 4 || b_ > 16) {
      throw ArgumentError("HyperLogLog: precision_bits must be in [4, 16]");
    }
    registers_.assign(std::size_t{1} << b_, 0);
  }

  void accum(const T& x) {
    const std::uint64_t h = detail::sketch_hash(x);
    const std::size_t idx = static_cast<std::size_t>(h >> (64 - b_));
    // Rank = position of the first 1-bit in the remaining 64-b bits.
    const std::uint64_t rest = (h << b_) | (std::uint64_t{1} << (b_ - 1));
    const auto rank = static_cast<std::uint8_t>(std::countl_zero(rest) + 1);
    if (rank > registers_[idx]) registers_[idx] = rank;
  }

  void combine(const HyperLogLog& o) {
    if (o.registers_.size() != registers_.size()) {
      throw ProtocolError("HyperLogLog: mismatched precision in combine");
    }
    for (std::size_t i = 0; i < registers_.size(); ++i) {
      registers_[i] = std::max(registers_[i], o.registers_[i]);
    }
  }

  /// Estimated distinct count (with the standard small-range correction).
  [[nodiscard]] double gen() const {
    const double m = static_cast<double>(registers_.size());
    double sum = 0.0;
    int zeros = 0;
    for (const auto r : registers_) {
      sum += std::ldexp(1.0, -static_cast<int>(r));
      if (r == 0) ++zeros;
    }
    const double alpha =
        m <= 16 ? 0.673 : (m <= 32 ? 0.697 : (m <= 64 ? 0.709
                                                      : 0.7213 / (1 + 1.079 / m)));
    double est = alpha * m * m / sum;
    if (est <= 2.5 * m && zeros > 0) {
      est = m * std::log(m / static_cast<double>(zeros));  // linear counting
    }
    return est;
  }

  void save(bytes::Writer& w) const { w.put_vector(registers_); }
  void load(bytes::Reader& r) {
    auto v = r.get_vector<std::uint8_t>();
    if (v.size() != registers_.size()) {
      throw ProtocolError("HyperLogLog: state arrived with wrong size");
    }
    registers_ = std::move(v);
  }

  /// Zero-copy combine: register-wise max straight out of the receive
  /// buffer (byte-sized registers need no alignment handling).
  void combine_from_bytes(std::span<const std::byte> data) {
    bytes::Reader r(data);
    std::uint64_t n = 0;
    const auto raw = r.get_counted_raw<std::uint8_t>(&n);
    if (n != registers_.size() || !r.exhausted()) {
      throw ProtocolError("HyperLogLog: mismatched precision in combine");
    }
    for (std::size_t i = 0; i < registers_.size(); ++i) {
      registers_[i] =
          std::max(registers_[i], static_cast<std::uint8_t>(raw[i]));
    }
  }

 private:
  int b_;
  std::vector<std::uint8_t> registers_;
};

/// Heavy hitters (Misra–Gries summary): every value occurring more than
/// n / (k+1) times globally is guaranteed to appear in the output, with
/// its count underestimated by at most n / (k+1).  Combine is the
/// standard mergeable form: add counters, then decrement everything by
/// the (k+1)-largest count and drop the non-positive remainder.
template <typename T>
  requires std::is_integral_v<T>
class HeavyHitters {
 public:
  static constexpr bool commutative = true;

  struct Entry {
    T value;
    long count;
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  explicit HeavyHitters(std::size_t k) : k_(k) {
    if (k == 0) throw ArgumentError("HeavyHitters: k must be positive");
  }

  void accum(const T& x) {
    auto it = counters_.find(x);
    if (it != counters_.end()) {
      it->second += 1;
      return;
    }
    if (counters_.size() < k_) {
      counters_.emplace(x, 1);
      return;
    }
    // Misra–Gries decrement: everyone loses one; zeros evicted.
    for (auto c = counters_.begin(); c != counters_.end();) {
      if (--c->second == 0) {
        c = counters_.erase(c);
      } else {
        ++c;
      }
    }
  }

  void combine(const HeavyHitters& o) {
    if (o.k_ != k_) {
      throw ProtocolError("HeavyHitters: mismatched k in combine");
    }
    for (const auto& [value, count] : o.counters_) {
      counters_[value] += count;
    }
    if (counters_.size() <= k_) return;
    // Find the (k+1)-th largest count and subtract it everywhere.
    std::vector<long> counts;
    counts.reserve(counters_.size());
    for (const auto& [value, count] : counters_) counts.push_back(count);
    std::nth_element(counts.begin(), counts.begin() + static_cast<long>(k_),
                     counts.end(), std::greater<>());
    const long cut = counts[k_];
    for (auto c = counters_.begin(); c != counters_.end();) {
      c->second -= cut;
      if (c->second <= 0) {
        c = counters_.erase(c);
      } else {
        ++c;
      }
    }
  }

  /// Surviving candidates, most frequent first (ties by value for
  /// determinism).  Counts are lower bounds on true frequencies.
  [[nodiscard]] std::vector<Entry> gen() const {
    std::vector<Entry> out;
    out.reserve(counters_.size());
    for (const auto& [value, count] : counters_) out.push_back({value, count});
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.value < b.value;
    });
    return out;
  }

  void save(bytes::Writer& w) const {
    w.put<std::uint64_t>(counters_.size());
    for (const auto& [value, count] : counters_) {
      w.put(value);
      w.put(count);
    }
  }
  void load(bytes::Reader& r) {
    const auto n = r.get<std::uint64_t>();
    counters_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      const T value = r.get<T>();
      const long count = r.get<long>();
      counters_.emplace(value, count);
    }
  }

 private:
  std::size_t k_;
  std::map<T, long> counters_;  // ordered: deterministic iteration
};

/// Approximate-membership filter (Bloom).  Combine is the bitwise OR of
/// the bit arrays; queries after the reduction answer "possibly present"
/// with a false-positive rate set by the sizing, and never a false
/// negative.
template <typename T>
  requires std::is_integral_v<T>
class BloomFilter {
 public:
  static constexpr bool commutative = true;

  BloomFilter(std::size_t num_bits, int num_hashes)
      : nbits_(num_bits), nhashes_(num_hashes),
        words_((num_bits + 63) / 64, 0) {
    if (num_bits == 0 || num_hashes < 1) {
      throw ArgumentError("BloomFilter: need bits and at least one hash");
    }
  }

  void accum(const T& x) {
    for (int h = 0; h < nhashes_; ++h) {
      set_bit(bit_index(x, h));
    }
  }

  void combine(const BloomFilter& o) {
    if (o.words_.size() != words_.size()) {
      throw ProtocolError("BloomFilter: mismatched size in combine");
    }
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  }

  /// The reduction result is the filter itself.
  [[nodiscard]] BloomFilter gen() const { return *this; }

  /// Possibly-present query (no false negatives).
  [[nodiscard]] bool maybe_contains(const T& x) const {
    for (int h = 0; h < nhashes_; ++h) {
      if (!get_bit(bit_index(x, h))) return false;
    }
    return true;
  }

  /// Fraction of set bits (load factor; FPR ~ load^k).
  [[nodiscard]] double fill_ratio() const {
    std::size_t set = 0;
    for (const auto w : words_) set += std::popcount(w);
    return static_cast<double>(set) / static_cast<double>(nbits_);
  }

  void save(bytes::Writer& w) const { w.put_vector(words_); }
  void load(bytes::Reader& r) {
    auto v = r.get_vector<std::uint64_t>();
    if (v.size() != words_.size()) {
      throw ProtocolError("BloomFilter: state arrived with wrong size");
    }
    words_ = std::move(v);
  }

  /// Zero-copy combine: bitwise OR straight out of the receive buffer
  /// (words read unaligned).
  void combine_from_bytes(std::span<const std::byte> data) {
    bytes::Reader r(data);
    std::uint64_t n = 0;
    const auto raw = r.get_counted_raw<std::uint64_t>(&n);
    if (n != words_.size() || !r.exhausted()) {
      throw ProtocolError("BloomFilter: mismatched size in combine");
    }
    const std::byte* p = raw.data();
    for (std::size_t i = 0; i < words_.size(); ++i, p += sizeof(std::uint64_t)) {
      words_[i] |= bytes::load_unaligned<std::uint64_t>(p);
    }
  }

 private:
  [[nodiscard]] std::size_t bit_index(const T& x, int h) const {
    return static_cast<std::size_t>(
        detail::sketch_hash(x, 0x5bd1e995u * static_cast<unsigned>(h + 1)) %
        nbits_);
  }
  void set_bit(std::size_t i) { words_[i / 64] |= std::uint64_t{1} << (i % 64); }
  [[nodiscard]] bool get_bit(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  std::size_t nbits_;
  int nhashes_;
  std::vector<std::uint64_t> words_;
};

}  // namespace rsmpi::rs::ops
