// First / Last operators: the first (last) value of the reduced sequence.
//
// Trivial as reductions, they earn their keep in *scans*: an exclusive
// scan with Last hands every position the nearest preceding value — the
// carry primitive that stitches rank boundaries in algorithms like
// run-length encoding (rs/algos/rle.hpp) without any ad-hoc neighbour
// protocol, even across empty ranks.
#pragma once

#include <type_traits>

namespace rsmpi::rs::ops {

/// Presence-tagged value; the generate type of First/Last.
template <typename T>
struct Maybe {
  bool has = false;
  T value{};

  friend constexpr bool operator==(const Maybe&, const Maybe&) = default;
};

/// The first value of the sequence (positionally, so non-commutative).
template <typename T>
  requires std::is_trivially_copyable_v<T>
class First {
 public:
  static constexpr bool commutative = false;

  void accum(const T& x) {
    if (!v_.has) v_ = {true, x};
  }
  void combine(const First& o) {
    if (!v_.has) v_ = o.v_;
  }
  [[nodiscard]] Maybe<T> gen() const { return v_; }

 private:
  Maybe<T> v_;
};

/// The last value of the sequence (positionally, so non-commutative).
template <typename T>
  requires std::is_trivially_copyable_v<T>
class Last {
 public:
  static constexpr bool commutative = false;

  void accum(const T& x) { v_ = {true, x}; }
  void combine(const Last& o) {
    if (o.v_.has) v_ = o.v_;
  }
  [[nodiscard]] Maybe<T> gen() const { return v_; }

 private:
  Maybe<T> v_;
};

}  // namespace rsmpi::rs::ops
