// Concatenation operator: the canonical non-commutative associative
// operator, used throughout the test suite to pin operand ordering (any
// schedule that reorders combines scrambles the string).  Scanning with it
// yields running prefixes, making it a readable demonstration of the
// exclusive/inclusive distinction.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "util/bytes.hpp"

namespace rsmpi::rs::ops {

class Concat {
 public:
  static constexpr bool commutative = false;

  void accum(const char& c) { s_.push_back(c); }

  void combine(const Concat& other) { s_ += other.s_; }

  [[nodiscard]] std::string gen() const { return s_; }

  void save(bytes::Writer& w) const { w.put_string(s_); }
  void load(bytes::Reader& r) { s_ = r.get_string(); }

  /// Zero-copy combine: appends the peer's characters straight out of the
  /// receive buffer (no intermediate Concat or string construction).
  void combine_from_bytes(std::span<const std::byte> data) {
    bytes::Reader r(data);
    const auto n = r.get<std::uint64_t>();
    const auto raw = r.get_raw(n);
    if (!r.exhausted()) {
      throw ProtocolError("Concat: trailing bytes after operator state");
    }
    s_.append(reinterpret_cast<const char*>(raw.data()), raw.size());
  }

 private:
  std::string s_;
};

}  // namespace rsmpi::rs::ops
