// Input-transforming operator adapter: feed f(x) to an operator expecting
// a different input type.  The lazy-view equivalent at the data side is a
// std::views::transform; this adapter puts the same idea on the operator
// side, which composes better when the operator is handed to generic code
// that only sees the raw input type:
//
//   // Reduce the *lengths* of strings with a plain Max<int>:
//   auto longest = rs::reduce(comm, lengths_as_sizes,
//       ops::mapped<std::size_t>([](std::size_t s) { return (int)s; },
//                                ops::Max<int>{}));
//
// The transform must be stateless-ish (trivially copyable, e.g. a
// captureless lambda or function pointer) because the adapter travels
// between ranks with its inner state.
#pragma once

#include <type_traits>
#include <utility>

#include "rs/op_concepts.hpp"

namespace rsmpi::rs::ops {

template <typename In, typename Fn, typename Op>
class Mapped {
 public:
  static constexpr bool commutative = op_commutative<Op>();

  Mapped(Fn fn, Op op) : fn_(std::move(fn)), op_(std::move(op)) {}

  void accum(const In& x) { op_.accum(fn_(x)); }

  void pre_accum(const In& x)
    requires HasPreAccum<Op, std::invoke_result_t<Fn, In>>
  {
    op_.pre_accum(fn_(x));
  }

  void post_accum(const In& x)
    requires HasPostAccum<Op, std::invoke_result_t<Fn, In>>
  {
    op_.post_accum(fn_(x));
  }

  void combine(const Mapped& other) { op_.combine(other.op_); }

  [[nodiscard]] auto red_gen() const { return red_result(op_); }

  [[nodiscard]] auto scan_gen(const In& x) const {
    return scan_result(op_, fn_(x));
  }

  [[nodiscard]] const Op& inner() const { return op_; }

  void save(bytes::Writer& w) const
    requires HasSaveLoad<Op>
  {
    op_.save(w);
  }
  void load(bytes::Reader& r)
    requires HasSaveLoad<Op>
  {
    op_.load(r);
  }

 private:
  Fn fn_;
  Op op_;
};

/// Factory naming the input type only: mapped<Event>(fn, op).
template <typename In, typename Fn, typename Op>
[[nodiscard]] Mapped<In, Fn, Op> mapped(Fn fn, Op op) {
  return Mapped<In, Fn, Op>(std::move(fn), std::move(op));
}

}  // namespace rsmpi::rs::ops
