// Maximum contiguous subarray sum: the classic example of a reduction that
// looks inherently sequential (Kadane's algorithm carries a running
// suffix) yet is expressible as an associative — though non-commutative —
// operator, putting it squarely in the class of "complex scans and
// reductions" the paper cites Fisher & Ghuloum [10] for parallelizing.
//
// State is the standard 4-tuple (total, best, best-prefix, best-suffix);
// accumulate is Kadane's O(1) update, combine is the 4-tuple merge.
#pragma once

#include <algorithm>

namespace rsmpi::rs::ops {

template <typename T>
class MaxSubarray {
 public:
  static constexpr bool commutative = false;

  void accum(const T& x) {
    if (empty_) {
      total_ = best_ = prefix_ = suffix_ = x;
      empty_ = false;
      return;
    }
    total_ += x;
    suffix_ = std::max(x, suffix_ + x);
    best_ = std::max(best_, suffix_);
    prefix_ = std::max(prefix_, total_);
  }

  void combine(const MaxSubarray& o) {
    if (o.empty_) return;
    if (empty_) {
      *this = o;
      return;
    }
    best_ = std::max({best_, o.best_, suffix_ + o.prefix_});
    prefix_ = std::max(prefix_, total_ + o.prefix_);
    suffix_ = std::max(o.suffix_, o.total_ + suffix_);
    total_ += o.total_;
  }

  /// The maximum sum over all nonempty contiguous subarrays; T{} for an
  /// empty input.
  [[nodiscard]] T gen() const { return empty_ ? T{} : best_; }

 private:
  bool empty_ = true;
  T total_{};
  T best_{};
  T prefix_{};  // best sum of a prefix
  T suffix_{};  // best sum of a suffix
};

}  // namespace rsmpi::rs::ops
