// Elementary global-view operators: the built-in reductions every
// high-level language ships (sum, product, min, max, logical all/any),
// restated against the operator-class protocol so they compose with the
// same reduce/scan machinery as user-defined operators.
#pragma once

#include <cstddef>
#include <cstring>
#include <limits>
#include <span>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace rsmpi::rs::ops {

/// Partitionable-state hooks (ISSUE 5) for trivially-copyable scalar
/// operators: the state is a single element whose wire format is the
/// operator's memcpy representation, matching the whole-state fallback.
/// CRTP mixin so each operator's hooks see its concrete type; the base is
/// empty, keeping the derived operator trivially copyable and its size
/// unchanged.
template <typename Derived>
class ScalarPartitionable {
 public:
  [[nodiscard]] std::size_t part_extent() const { return 1; }
  [[nodiscard]] std::size_t part_bytes(std::size_t lo, std::size_t hi) const {
    return (hi - lo) * sizeof(Derived);
  }
  void save_part(std::size_t lo, std::size_t hi, bytes::Writer& w) const {
    check_range(lo, hi);
    if (hi > lo) w.put(static_cast<const Derived&>(*this));
  }
  void load_part(std::size_t lo, std::size_t hi,
                 std::span<const std::byte> data) {
    check_range(lo, hi);
    if (data.size() != part_bytes(lo, hi)) {
      throw ProtocolError("scalar operator: segment has mismatched size");
    }
    if (hi > lo) {
      std::memcpy(static_cast<void*>(static_cast<Derived*>(this)),
                  data.data(), sizeof(Derived));
    }
  }
  void combine_part(std::size_t lo, std::size_t hi,
                    std::span<const std::byte> data) {
    check_range(lo, hi);
    if (data.size() != part_bytes(lo, hi)) {
      throw ProtocolError("scalar operator: segment has mismatched size");
    }
    if (hi > lo) {
      static_cast<Derived*>(this)->combine(
          bytes::load_unaligned<Derived>(data.data()));
    }
  }

 private:
  static void check_range(std::size_t lo, std::size_t hi) {
    if (lo > hi || hi > 1) {
      throw ProtocolError("scalar operator: segment range out of bounds");
    }
  }
};

/// Running sum.  State, input, and output types coincide — the degenerate
/// case in which the global-view abstraction collapses to the local view.
template <typename T>
class Sum : public ScalarPartitionable<Sum<T>> {
 public:
  static constexpr bool commutative = true;

  void accum(const T& x) { value_ += x; }
  void combine(const Sum& other) { value_ += other.value_; }
  /// Inverse of combine (sums form a group): the invertible-window hook.
  void uncombine(const Sum& other) { value_ -= other.value_; }
  [[nodiscard]] T gen() const { return value_; }

 private:
  T value_{};
};

/// Running product.
template <typename T>
class Product : public ScalarPartitionable<Product<T>> {
 public:
  static constexpr bool commutative = true;

  void accum(const T& x) { value_ *= x; }
  void combine(const Product& other) { value_ *= other.value_; }
  [[nodiscard]] T gen() const { return value_; }

 private:
  T value_{1};
};

/// Minimum value.
template <typename T>
class Min : public ScalarPartitionable<Min<T>> {
 public:
  static constexpr bool commutative = true;

  void accum(const T& x) {
    if (x < value_) value_ = x;
  }
  void combine(const Min& other) { accum(other.value_); }
  [[nodiscard]] T gen() const { return value_; }

 private:
  T value_ = std::numeric_limits<T>::max();
};

/// Maximum value.
template <typename T>
class Max : public ScalarPartitionable<Max<T>> {
 public:
  static constexpr bool commutative = true;

  void accum(const T& x) {
    if (x > value_) value_ = x;
  }
  void combine(const Max& other) { accum(other.value_); }
  [[nodiscard]] T gen() const { return value_; }

 private:
  T value_ = std::numeric_limits<T>::lowest();
};

/// Logical conjunction over a predicate-valued input.
class All {
 public:
  static constexpr bool commutative = true;

  void accum(const bool& x) { value_ = value_ && x; }
  void combine(const All& other) { value_ = value_ && other.value_; }
  [[nodiscard]] bool gen() const { return value_; }

 private:
  bool value_ = true;
};

/// Logical disjunction over a predicate-valued input.
class Any {
 public:
  static constexpr bool commutative = true;

  void accum(const bool& x) { value_ = value_ || x; }
  void combine(const Any& other) { value_ = value_ || other.value_; }
  [[nodiscard]] bool gen() const { return value_; }

 private:
  bool value_ = false;
};

/// Counts inputs satisfying a predicate.  Demonstrates configuration state
/// (the predicate) riding along in the operator prototype while only the
/// counter participates in combines.
template <typename T, typename Pred>
class CountIf {
 public:
  static constexpr bool commutative = true;

  explicit CountIf(Pred pred) : pred_(std::move(pred)) {}

  void accum(const T& x) {
    if (pred_(x)) ++count_;
  }
  void combine(const CountIf& other) { count_ += other.count_; }
  [[nodiscard]] long gen() const { return count_; }

 private:
  Pred pred_;
  long count_ = 0;
};

/// Boyer–Moore majority vote, parallelized: the pairwise summary
/// (candidate, weight) merges by cancelling opposing weights, so if any
/// value holds a strict global majority it is guaranteed to be the
/// surviving candidate under *any* combine tree.  (Whether the candidate
/// truly is a majority needs one verification pass — CountIf — as in the
/// sequential algorithm.)
template <typename T>
class MajorityVote {
 public:
  static constexpr bool commutative = true;

  void accum(const T& x) {
    if (weight_ == 0) {
      candidate_ = x;
      weight_ = 1;
    } else if (candidate_ == x) {
      ++weight_;
    } else {
      --weight_;
    }
  }

  void combine(const MajorityVote& o) {
    if (o.weight_ == 0) return;
    if (weight_ == 0 || candidate_ == o.candidate_) {
      if (weight_ == 0) candidate_ = o.candidate_;
      weight_ += o.weight_;
      return;
    }
    if (o.weight_ > weight_) {
      candidate_ = o.candidate_;
      weight_ = o.weight_ - weight_;
    } else {
      weight_ -= o.weight_;
    }
  }

  /// The only possible majority value (meaningless if no majority exists).
  [[nodiscard]] T gen() const { return candidate_; }

 private:
  T candidate_{};
  long weight_ = 0;
};

}  // namespace rsmpi::rs::ops
