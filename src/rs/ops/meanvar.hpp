// Streaming mean/variance operator (Welford accumulation, Chan et al.
// pairwise combination).  The fully general shape of the paper's §3 type
// signatures: input (a sample), state (count/mean/M2), and output (a
// summary struct) are three distinct types.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace rsmpi::rs::ops {

/// Reduction output of MeanVar.
struct MeanVarResult {
  std::int64_t count = 0;
  double mean = 0.0;
  /// Population variance (M2 / n); 0 when count < 2.
  double variance = 0.0;

  friend bool operator==(const MeanVarResult&, const MeanVarResult&) = default;
};

class MeanVar {
 public:
  static constexpr bool commutative = true;

  /// Welford's single-pass update.
  void accum(const double& x) {
    n_ += 1;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  /// Chan et al. parallel combination of two partial summaries.
  void combine(const MeanVar& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
  }

  /// Inverse of the Chan combine: undoes a prior combine(other).  Exact in
  /// the count; mean/M2 are recovered only up to floating-point rounding
  /// (unlike the integer operators' uncombine), so windowed streams that
  /// need bit-stable MeanVar results should force the non-invertible path.
  void uncombine(const MeanVar& other) {
    if (other.n_ == 0) return;
    const std::int64_t na_count = n_ - other.n_;
    if (na_count <= 0) {
      *this = MeanVar{};
      return;
    }
    const double n = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double na = static_cast<double>(na_count);
    const double mean_a = (n * mean_ - nb * other.mean_) / na;
    const double delta = other.mean_ - mean_a;
    m2_ -= other.m2_ + delta * delta * na * nb / n;
    if (m2_ < 0.0) m2_ = 0.0;  // clamp rounding residue
    mean_ = mean_a;
    n_ = na_count;
  }

  [[nodiscard]] MeanVarResult gen() const {
    MeanVarResult r;
    r.count = n_;
    r.mean = n_ > 0 ? mean_ : 0.0;
    r.variance = n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
    return r;
  }

  // Partitionable-state hooks (ISSUE 5): the whole (n, mean, M2) summary
  // is one element, so segmented schedules degenerate to the whole-state
  // wire format (the trivially-copyable memcpy representation).  Note the
  // Chan combine is floating-point: results across schedules agree only up
  // to rounding, unlike the integer element-wise operators.
  [[nodiscard]] std::size_t part_extent() const { return 1; }
  [[nodiscard]] std::size_t part_bytes(std::size_t lo, std::size_t hi) const {
    return (hi - lo) * sizeof(MeanVar);
  }
  void save_part(std::size_t lo, std::size_t hi, bytes::Writer& w) const {
    check_range(lo, hi);
    if (hi > lo) w.put(*this);
  }
  void load_part(std::size_t lo, std::size_t hi,
                 std::span<const std::byte> data) {
    check_range(lo, hi);
    if (data.size() != part_bytes(lo, hi)) {
      throw ProtocolError("MeanVar: segment arrived with mismatched size");
    }
    if (hi > lo) std::memcpy(static_cast<void*>(this), data.data(), sizeof(MeanVar));
  }
  void combine_part(std::size_t lo, std::size_t hi,
                    std::span<const std::byte> data) {
    check_range(lo, hi);
    if (data.size() != part_bytes(lo, hi)) {
      throw ProtocolError("MeanVar: segment arrived with mismatched size");
    }
    if (hi > lo) combine(bytes::load_unaligned<MeanVar>(data.data()));
  }

 private:
  static void check_range(std::size_t lo, std::size_t hi) {
    if (lo > hi || hi > 1) {
      throw ProtocolError("MeanVar: segment range out of bounds");
    }
  }

  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace rsmpi::rs::ops
