// The mink / maxk operators (paper Listings 1 and 4).
//
// mink reduces a distributed array of values to its k smallest elements.
// It is the paper's canonical example of the global-view advantage: the
// *input* type (one value) differs from the *state* and *output* types (a
// k-vector), so the accumulate function — a guarded O(k) insertion that
// usually rejects in one comparison — is substantially cheaper than the
// combine function, and the abstraction keeps the cheap path in the inner
// loop (§3's note on optimizing accumulate at combine's expense).
#pragma once

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace rsmpi::rs::ops {

/// k smallest values of the reduced sequence, generated in ascending
/// order.  k is a runtime constructor parameter carried by the prototype.
template <typename T>
class MinK {
 public:
  static constexpr bool commutative = true;

  explicit MinK(std::size_t k)
      : v_(k, std::numeric_limits<T>::max()) {
    if (k == 0) throw ArgumentError("MinK: k must be positive");
  }

  /// Listing 4's accumulate: if x beats the current worst kept value,
  /// replace it and bubble toward its sorted position.  v_ is kept in
  /// descending order so v_[0] is the rejection threshold.
  void accum(const T& x) {
    if (x < v_[0]) {
      v_[0] = x;
      for (std::size_t i = 1; i < v_.size() && v_[i - 1] < v_[i]; ++i) {
        std::swap(v_[i - 1], v_[i]);
      }
    }
  }

  /// Listing 4's combine: fold the other state's kept values through
  /// accumulate.
  void combine(const MinK& other) {
    for (const T& x : other.v_) accum(x);
  }

  /// The k minimum values, ascending.  Positions never filled (fewer than
  /// k inputs) remain at T's maximum, matching the identity definition.
  [[nodiscard]] std::vector<T> gen() const {
    std::vector<T> out(v_.rbegin(), v_.rend());
    return out;
  }

  [[nodiscard]] std::size_t k() const { return v_.size(); }

  void save(bytes::Writer& w) const { w.put_vector(v_); }
  void load(bytes::Reader& r) {
    auto v = r.get_vector<T>();
    if (v.size() != v_.size()) {
      throw ProtocolError("MinK: state arrived with mismatched k");
    }
    v_ = std::move(v);
  }

 private:
  std::vector<T> v_;  // descending; v_[0] = largest kept value
};

/// k largest values of the reduced sequence, generated in descending
/// order; the mirror of MinK.
template <typename T>
class MaxK {
 public:
  static constexpr bool commutative = true;

  explicit MaxK(std::size_t k)
      : v_(k, std::numeric_limits<T>::lowest()) {
    if (k == 0) throw ArgumentError("MaxK: k must be positive");
  }

  void accum(const T& x) {
    if (x > v_[0]) {
      v_[0] = x;
      for (std::size_t i = 1; i < v_.size() && v_[i - 1] > v_[i]; ++i) {
        std::swap(v_[i - 1], v_[i]);
      }
    }
  }

  void combine(const MaxK& other) {
    for (const T& x : other.v_) accum(x);
  }

  /// The k maximum values, descending.
  [[nodiscard]] std::vector<T> gen() const {
    return std::vector<T>(v_.rbegin(), v_.rend());
  }

  [[nodiscard]] std::size_t k() const { return v_.size(); }

  void save(bytes::Writer& w) const { w.put_vector(v_); }
  void load(bytes::Reader& r) {
    auto v = r.get_vector<T>();
    if (v.size() != v_.size()) {
      throw ProtocolError("MaxK: state arrived with mismatched k");
    }
    v_ = std::move(v);
  }

 private:
  std::vector<T> v_;  // ascending; v_[0] = smallest kept value
};

}  // namespace rsmpi::rs::ops
