// Combine-phase plumbing for the global-view abstraction: moving operator
// *state* between ranks and folding it with f_combine.
//
// These routines are the LOCAL_REDUCE / LOCAL_XSCAN of Listings 2–3,
// specialized to a single variable-size operator state per rank instead of
// a fixed value buffer.  The same three schedules as src/coll are offered:
// order-preserving binomial (non-commutative safe), combine-as-available
// k-ary tree (commutative only), and linear baselines.
#pragma once

#include <vector>

#include "coll/bcast.hpp"
#include "mprt/comm.hpp"
#include "mprt/topology.hpp"
#include "rs/op_concepts.hpp"
#include "util/error.hpp"

namespace rsmpi::rs::detail {

inline constexpr int kUnorderedArity = 4;

/// Binomial-tree reduction of operator states to rank 0, preserving rank
/// order so non-commutative combines see (earlier ranks) (+) (later ranks).
template <Combinable Op>
void state_reduce_binomial(mprt::Comm& comm, Op& op, const Op& prototype) {
  const int p = comm.size();
  const int tag = comm.next_collective_tag();
  const int rank = comm.rank();
  for (const auto& step : mprt::topology::binomial_reduce_schedule(rank, p)) {
    if (step.role == mprt::topology::BinomialStep::Role::kSend) {
      comm.send_bytes(step.partner, tag, save_op(op));
    } else {
      const auto msg = comm.recv_message(step.partner, tag);
      Op other = load_op(prototype, msg.payload);
      auto timer = comm.compute_section();
      op.combine(other);
    }
  }
}

/// Combine-as-available k-ary tree to rank 0; requires commutativity.
template <Combinable Op>
void state_reduce_unordered(mprt::Comm& comm, Op& op, const Op& prototype,
                            int arity = kUnorderedArity) {
  const int p = comm.size();
  const int tag = comm.next_collective_tag();
  const int rank = comm.rank();
  int num_children = 0;
  for (int c = arity * rank + 1; c <= arity * rank + arity && c < p; ++c) {
    ++num_children;
  }
  for (int i = 0; i < num_children; ++i) {
    const auto msg = comm.recv_message(mprt::kAnySource, tag);
    Op other = load_op(prototype, msg.payload);
    auto timer = comm.compute_section();
    op.combine(other);
  }
  if (rank != 0) {
    comm.send_bytes((rank - 1) / arity, tag, save_op(op));
  }
}

/// Reduces operator states to rank 0, choosing the schedule from the
/// operator's commutativity trait (or an explicit override used by the
/// commutativity ablation benchmark).
template <Combinable Op>
void state_reduce_to_zero(mprt::Comm& comm, Op& op, const Op& prototype,
                          bool commutative = op_commutative<Op>()) {
  if (comm.size() == 1) return;
  if (commutative) {
    state_reduce_unordered(comm, op, prototype);
  } else {
    state_reduce_binomial(comm, op, prototype);
  }
}

/// Reduce to rank 0, then broadcast the finished state to all ranks.
template <Combinable Op>
void state_allreduce(mprt::Comm& comm, Op& op, const Op& prototype,
                     bool commutative = op_commutative<Op>()) {
  if (comm.size() == 1) return;
  state_reduce_to_zero(comm, op, prototype, commutative);
  auto state = comm.rank() == 0 ? save_op(op) : std::vector<std::byte>{};
  state = coll::bcast_bytes(comm, 0, state);
  if (comm.rank() != 0) {
    op = load_op(prototype, state);
  }
}

/// Recursive-doubling exclusive scan of operator states across ranks: on
/// return `op` holds the combination of all lower ranks' input states
/// (identity, i.e. a copy of `prototype`, on rank 0).  Valid for
/// non-commutative operators — every prepend joins contiguous rank
/// intervals in order (see coll/local_scan.hpp for the invariant).
template <Combinable Op>
void state_xscan(mprt::Comm& comm, Op& op, const Op& prototype) {
  const int p = comm.size();
  const int rank = comm.rank();
  if (p == 1) {
    op = prototype;
    return;
  }
  const int tag = comm.next_collective_tag();

  Op incl = op;          // combination of [max(0, rank-2d+1), rank]
  Op excl = prototype;   // combination of [max(0, rank-2d+1), rank-1]
  for (int d = 1; d < p; d <<= 1) {
    if (rank + d < p) {
      comm.send_bytes(rank + d, tag, save_op(incl));
    }
    if (rank - d >= 0) {
      const auto msg = comm.recv_message(rank - d, tag);
      Op received = load_op(prototype, msg.payload);
      auto timer = comm.compute_section();
      Op tmp = received;
      tmp.combine(incl);
      incl = std::move(tmp);
      received.combine(excl);
      excl = std::move(received);
    }
  }
  op = std::move(excl);
}

}  // namespace rsmpi::rs::detail
