// Combine-phase plumbing for the global-view abstraction: moving operator
// *state* between ranks and folding it with f_combine.
//
// These routines are the LOCAL_REDUCE / LOCAL_XSCAN of Listings 2–3,
// specialized to a single variable-size operator state per rank instead of
// a fixed value buffer.  Schedules offered: order-preserving binomial
// (non-commutative safe), combine-as-available k-ary tree (commutative
// only), recursive-doubling butterfly allreduce (commutative only), and a
// deferred-prefix exclusive scan.
//
// The hot path is zero-copy end to end (ISSUE 3): states are serialized
// into pooled buffers (Comm::acquire_buffer), handed to the receiver by
// move (no sender-side copy), folded straight out of the receive buffer
// (combine_op_from_bytes — no intermediate Op when the operator provides
// combine_from_bytes), and the receive buffer is recycled into the
// receiving rank's pool.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <numeric>
#include <string_view>
#include <utility>
#include <vector>

#include "coll/bcast.hpp"
#include "coll/hierarchical.hpp"
#include "coll/pipeline.hpp"
#include "coll/ring.hpp"
#include "mprt/comm.hpp"
#include "mprt/cost_model.hpp"
#include "mprt/topology.hpp"
#include "rs/op_concepts.hpp"
#include "util/error.hpp"

namespace rsmpi::rs::detail {

inline constexpr int kUnorderedArity = 4;

// -- Schedule selection (ISSUE 5) -------------------------------------------
//
// state_allreduce/state_reduce_to_zero pick among the schedules below by
// evaluating the ScheduleCost closed forms against the communicator's cost
// model; RSMPI_SCHEDULE pins a schedule and RSMPI_SEGMENT_BYTES sets the
// pipeline granularity (see docs/schedules.md).

enum class Schedule {
  kAuto,         // argmin of the cost-model predictions
  kTwoMessage,   // reduce to rank 0 + broadcast (legacy; order-preserving)
  kButterfly,    // recursive doubling, whole state per round
  kRabenseifner, // chunked recursive halving + doubling (partitionable)
  kRing,         // chunked reduce-scatter + allgather ring (partitionable)
  kPipelined,    // segmented binomial tree(s) (partitionable)
  kHierarchical, // two-level node-leader schedule (two-tier cost models)
};

/// Reads RSMPI_SCHEDULE (unset or "auto" → kAuto; unknown values throw, so
/// typos fail loudly instead of silently benchmarking the wrong schedule).
inline Schedule schedule_from_env() {
  const char* raw = std::getenv("RSMPI_SCHEDULE");
  if (raw == nullptr) return Schedule::kAuto;
  const std::string_view v(raw);
  if (v.empty() || v == "auto") return Schedule::kAuto;
  if (v == "two_message" || v == "reduce_bcast") return Schedule::kTwoMessage;
  if (v == "butterfly") return Schedule::kButterfly;
  if (v == "rabenseifner") return Schedule::kRabenseifner;
  if (v == "ring") return Schedule::kRing;
  if (v == "pipelined") return Schedule::kPipelined;
  if (v == "hierarchical") return Schedule::kHierarchical;
  throw ArgumentError("RSMPI_SCHEDULE: unknown schedule name");
}

/// Reads RSMPI_SEGMENT_BYTES (pipeline segment size; default 64 KiB).
inline std::size_t segment_bytes_from_env() {
  const char* raw = std::getenv("RSMPI_SEGMENT_BYTES");
  if (raw == nullptr || *raw == '\0') return kDefaultSegmentBytes;
  const unsigned long long v = std::strtoull(raw, nullptr, 10);
  return v == 0 ? std::size_t{1} : static_cast<std::size_t>(v);
}

/// Cost-model argmin over the allreduce schedules available to a
/// commutative, partitionable operator.  Ties break toward the earlier
/// entry in the candidate order below, which lists the simpler schedules
/// first (butterfly before the segmented ones).
inline Schedule choose_allreduce_schedule(const mprt::CostModel& model, int p,
                                          std::size_t state_bytes,
                                          std::size_t segment_bytes) {
  using SC = mprt::ScheduleCost;
  std::vector<std::pair<Schedule, double>> candidates = {
      {Schedule::kButterfly, SC::butterfly(model, p, state_bytes)},
      {Schedule::kTwoMessage, SC::two_message(model, p, state_bytes)},
      {Schedule::kRabenseifner, SC::rabenseifner(model, p, state_bytes)},
      {Schedule::kRing, SC::ring(model, p, state_bytes)},
      {Schedule::kPipelined,
       SC::pipelined_tree_allreduce(model, p, state_bytes, segment_bytes)},
  };
  if (model.two_tier()) {
    // Only meaningful on a two-tier machine, and listed last: flat
    // schedules win ties, and this autotuner only runs for commutative
    // partitionable operators, so the different-bracketing caveat of the
    // hierarchical schedule (see coll/hierarchical.hpp) never applies.
    candidates.emplace_back(
        Schedule::kHierarchical,
        SC::hierarchical(model, p, state_bytes, /*seg_ok=*/true));
  }
  Schedule best = candidates[0].first;
  double best_cost = candidates[0].second;
  for (const auto& [s, cost] : candidates) {
    if (cost < best_cost) {
      best = s;
      best_cost = cost;
    }
  }
  return best;
}

// send_state / combine_received_state — the whole-state transfer
// primitives these schedules are built on — live in coll/ring.hpp beside
// their segmented analogues, included above.

// -- Model-checking instrumentation (ISSUE 7) -------------------------------

/// Largest fan-in for which all n! fold orders are locally simulated before
/// branching (5! = 120 serializations; fan-ins past the probe bound skip
/// the pruning and branch directly).
inline constexpr std::size_t kMaxProbeChildren = 5;

inline std::uint64_t fold_order_count(std::size_t n) {
  std::uint64_t f = 1;
  for (std::size_t i = 2; i <= n; ++i) f *= i;
  return f;
}

/// Folds `pending` received states into `op` in an order dictated by the
/// schedule oracle — the instrumented replacement for fold-on-arrival at
/// the collectives with genuine arrival-order freedom.  The candidate list
/// is canonicalized by (source, seq) so it is identical on every run
/// regardless of physical arrival order; all nondeterminism is then in the
/// oracle's choices.
///
/// Soundness of the pruning: before branching, every one of the n! fold
/// orders is simulated locally on state copies (combine_op_from_bytes and
/// save_op touch no communicator, so the probe has no side effects).  If
/// all orders serialize to identical bytes, the orders are interchangeable
/// *for these concrete states* — any downstream behaviour depends only on
/// the folded state's bytes — so one canonical order is applied without
/// consuming a decision, and note_pruned records the n!-1 sibling orders
/// skipped.  This is checked, never assumed from the operator's
/// commutativity trait: an op whose combine is commutative semantically
/// but not byte-wise (e.g. insertion-ordered containers) still branches.
/// When orders differ, the oracle chooses fold steps one at a time, with
/// payload-identical candidates grouped (folding either of two
/// byte-identical states is the same fold) for symmetry reduction.
template <Combinable Op>
void oracle_fold_messages(mprt::Comm& comm, mprt::ScheduleOracle& oracle,
                          Op& op, const Op& prototype,
                          std::vector<mprt::Message>&& pending) {
  const std::size_t n = pending.size();
  if (n == 0) return;
  if (n > 1) {
    std::sort(pending.begin(), pending.end(),
              [](const mprt::Message& a, const mprt::Message& b) {
                return std::pair(a.source, a.seq) <
                       std::pair(b.source, b.seq);
              });
  }
  if (n == 1) {
    combine_received_state(comm, op, prototype, std::move(pending[0]));
    return;
  }

  if (n <= kMaxProbeChildren) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::byte> canonical;
    bool all_identical = true;
    bool first = true;
    do {
      Op probe = op;
      for (const std::size_t i : order) {
        combine_op_from_bytes(probe, prototype, pending[i].payload());
      }
      std::vector<std::byte> bytes = save_op(probe);
      if (first) {
        canonical = std::move(bytes);
        first = false;
      } else if (bytes != canonical) {
        all_identical = false;
        break;
      }
    } while (std::next_permutation(order.begin(), order.end()));
    if (all_identical) {
      oracle.note_pruned(comm.rank(), fold_order_count(n) - 1);
      for (auto& msg : pending) {
        combine_received_state(comm, op, prototype, std::move(msg));
      }
      return;
    }
  }

  std::vector<std::size_t> remaining(n);
  std::iota(remaining.begin(), remaining.end(), 0);
  while (!remaining.empty()) {
    // Distinct-payload representatives, in canonical order.
    std::vector<std::size_t> reps;
    for (const std::size_t i : remaining) {
      bool duplicate = false;
      for (const std::size_t r : reps) {
        const auto a = pending[i].payload();
        const auto b = pending[r].payload();
        if (a.size() == b.size() &&
            std::equal(a.begin(), a.end(), b.begin())) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) reps.push_back(i);
    }
    std::size_t pick = reps[0];
    if (reps.size() > 1) {
      const int choice =
          oracle.choose(comm.rank(), static_cast<int>(reps.size()));
      pick = reps[static_cast<std::size_t>(choice)];
    }
    combine_received_state(comm, op, prototype, std::move(pending[pick]));
    remaining.erase(std::find(remaining.begin(), remaining.end(), pick));
  }
}

/// Binomial-tree reduction of operator states to rank 0, preserving rank
/// order so non-commutative combines see (earlier ranks) (+) (later ranks).
template <Combinable Op>
void state_reduce_binomial(mprt::Comm& comm, Op& op, const Op& prototype) {
  const int p = comm.size();
  const int tag = comm.next_collective_tag();
  const int rank = comm.rank();
  for (const auto& step : mprt::topology::binomial_reduce_schedule(rank, p)) {
    if (step.role == mprt::topology::BinomialStep::Role::kSend) {
      send_state(comm, step.partner, tag, op);
    } else {
      auto msg = comm.recv_message(step.partner, tag);
      combine_received_state(comm, op, prototype, std::move(msg));
    }
  }
}

/// Combine-as-available k-ary tree to rank 0; requires commutativity.
template <Combinable Op>
void state_reduce_unordered(mprt::Comm& comm, Op& op, const Op& prototype,
                            int arity = kUnorderedArity) {
  const int p = comm.size();
  const int tag = comm.next_collective_tag();
  const int rank = comm.rank();
  // Children of node r are arity*r+1 .. arity*r+arity, clipped to [0, p).
  const int first_child = arity * rank + 1;
  const int num_children =
      first_child >= p ? 0 : std::min(arity, p - first_child);
  mprt::ScheduleOracle* oracle = comm.schedule_oracle();
  if (oracle != nullptr && num_children > 1) {
    // Model-checking mode: the fold-on-arrival loop below is the genuine
    // arrival-order race this collective embodies.  Receive the full
    // fan-in, then fold in an oracle-dictated order — the receive loop's
    // own wildcard matching is canonicalized by the mailbox, so the only
    // nondeterminism left is the fold order the oracle drives.
    std::vector<mprt::Message> pending;
    pending.reserve(static_cast<std::size_t>(num_children));
    for (int i = 0; i < num_children; ++i) {
      pending.push_back(comm.recv_message(mprt::kAnySource, tag));
    }
    oracle_fold_messages(comm, *oracle, op, prototype, std::move(pending));
  } else {
    for (int i = 0; i < num_children; ++i) {
      auto msg = comm.recv_message(mprt::kAnySource, tag);
      combine_received_state(comm, op, prototype, std::move(msg));
    }
  }
  if (rank != 0) {
    send_state(comm, (rank - 1) / arity, tag, op);
  }
}

/// DELIBERATELY WRONG allreduce variant, kept only as the model checker's
/// detection target (tests/verify/mutation_test.cpp): it routes the
/// operator through the combine-as-available tree *regardless of
/// commutativity* — the classic ordering bug of selecting a
/// commutative-only schedule for a non-commutative operator.  Never
/// dispatched by state_allreduce; calling it with a non-commutative
/// operator produces order-dependent results the exhaustive explorer must
/// catch with a minimal replayable trace.
template <Combinable Op>
void state_allreduce_mutation_unordered(mprt::Comm& comm, Op& op,
                                        const Op& prototype) {
  if (comm.size() == 1) return;
  state_reduce_unordered(comm, op, prototype);
  auto state = comm.rank() == 0 ? save_op(op) : std::vector<std::byte>{};
  state = coll::bcast_bytes(comm, 0, state);
  if (comm.rank() != 0) {
    load_op_into(op, state);
  }
}

/// Reduces operator states to rank 0, choosing the schedule from the
/// operator's commutativity trait (or an explicit override used by the
/// commutativity ablation benchmark).  Partitionable states stream through
/// the pipelined binomial tree when RSMPI_SCHEDULE forces it or the cost
/// model strictly prefers it (large states); the pipeline is
/// order-preserving, so this holds for non-commutative operators too.
template <Combinable Op>
void state_reduce_to_zero(mprt::Comm& comm, Op& op, const Op& prototype,
                          bool commutative = op_commutative<Op>()) {
  if (comm.size() == 1) return;
  if constexpr (PartitionableState<Op>) {
    const Schedule forced = schedule_from_env();
    if (forced == Schedule::kPipelined ||
        (forced == Schedule::kAuto && [&] {
          using SC = mprt::ScheduleCost;
          const auto& model = comm.cost_model();
          const std::size_t bytes = part_state_bytes(op);
          return SC::pipelined_tree_reduce(model, comm.size(), bytes,
                                           segment_bytes_from_env()) <
                 SC::tree_reduce(model, comm.size(), bytes);
        }())) {
      state_reduce_pipelined(comm, op, segment_bytes_from_env());
      return;
    }
  }
  if (commutative) {
    state_reduce_unordered(comm, op, prototype);
  } else {
    state_reduce_binomial(comm, op, prototype);
  }
}

/// Legacy allreduce shape: reduce to rank 0, then broadcast the finished
/// state.  2·log p rounds with rank 0 as a bandwidth hotspot; kept as the
/// only order-preserving option (non-commutative operators) and as the
/// baseline the butterfly is benchmarked against.
template <Combinable Op>
void state_allreduce_reduce_bcast(mprt::Comm& comm, Op& op,
                                  const Op& prototype,
                                  bool commutative = op_commutative<Op>()) {
  if (comm.size() == 1) return;
  state_reduce_to_zero(comm, op, prototype, commutative);
  auto state = comm.rank() == 0 ? save_op(op) : std::vector<std::byte>{};
  state = coll::bcast_bytes(comm, 0, state);
  if (comm.rank() != 0) {
    load_op_into(op, state);
  }
}

/// Recursive-doubling (butterfly) allreduce: log p rounds, every rank
/// sends and receives once per round, no root hotspot.  Requires
/// commutativity — in round d, rank r folds partner r^d's partial on the
/// right regardless of which side of r it sits on.  Non-powers-of-two are
/// folded in Rabenseifner-style: the trailing p - 2^k ranks deposit their
/// state into a butterfly member first and receive the finished result
/// back at the end (2 extra rounds for those ranks only).
template <Combinable Op>
void state_allreduce_butterfly(mprt::Comm& comm, Op& op, const Op& prototype) {
  const int p = comm.size();
  if (p == 1) return;
  const int tag = comm.next_collective_tag();
  const int rank = comm.rank();
  const int p2 =
      static_cast<int>(std::bit_floor(static_cast<unsigned>(p)));

  if (rank >= p2) {
    // Outside the butterfly: contribute, then receive the final state.
    send_state(comm, rank - p2, tag, op);
    auto msg = comm.recv_message(rank - p2, tag);
    {
      auto timer = comm.compute_section();
      load_op_into(op, msg.payload());
    }
    comm.recycle_buffer(msg.release_storage());
    return;
  }
  if (rank + p2 < p) {
    auto msg = comm.recv_message(rank + p2, tag);
    combine_received_state(comm, op, prototype, std::move(msg));
  }
  for (int d = 1; d < p2; d <<= 1) {
    const int partner = rank ^ d;
    send_state(comm, partner, tag, op);
    auto msg = comm.recv_message(partner, tag);
    combine_received_state(comm, op, prototype, std::move(msg));
  }
  if (rank + p2 < p) {
    send_state(comm, rank + p2, tag, op);
  }
}

/// Executes an allreduce with an already-resolved schedule decision — the
/// shared back half of the fresh dispatch below and of the persistent-plan
/// executor (coll/persistent.hpp), so a cached plan runs bit-identically
/// to a freshly-planned call.  Performs no planning of its own: no env
/// reads, no cost-model argmins.  Non-commutative operators always take
/// the order-preserving reduce+bcast; non-partitionable commutative ones
/// fall back to the whole-state butterfly for any segmented schedule name.
template <Combinable Op>
void state_allreduce_with_schedule(mprt::Comm& comm, Op& op,
                                   const Op& prototype, Schedule schedule,
                                   std::size_t segment_bytes,
                                   bool commutative) {
  if (comm.size() == 1) return;
  if (!commutative) {
    // The hierarchical schedule is order-preserving when its leader tier
    // is pinned to the ordered binomial, so a forced request is honoured
    // on a two-tier model; everything else takes the flat reduce+bcast.
    if (schedule == Schedule::kHierarchical &&
        comm.cost_model().two_tier()) {
      state_allreduce_hierarchical(comm, op, prototype,
                                   /*commutative=*/false);
      return;
    }
    state_allreduce_reduce_bcast(comm, op, prototype, /*commutative=*/false);
    return;
  }
  if constexpr (PartitionableState<Op>) {
    switch (schedule) {
      case Schedule::kTwoMessage:
        state_allreduce_reduce_bcast(comm, op, prototype, /*commutative=*/true);
        return;
      case Schedule::kRabenseifner:
        state_allreduce_rabenseifner(comm, op, prototype);
        return;
      case Schedule::kRing:
        state_allreduce_ring(comm, op);
        return;
      case Schedule::kPipelined:
        state_allreduce_pipelined(comm, op, segment_bytes);
        return;
      case Schedule::kHierarchical:
        state_allreduce_hierarchical(comm, op, prototype,
                                     /*commutative=*/true);
        return;
      case Schedule::kAuto:
      case Schedule::kButterfly:
        state_allreduce_butterfly(comm, op, prototype);
        return;
    }
  } else {
    if (schedule == Schedule::kTwoMessage) {
      state_allreduce_reduce_bcast(comm, op, prototype, /*commutative=*/true);
    } else if (schedule == Schedule::kHierarchical) {
      state_allreduce_hierarchical(comm, op, prototype, /*commutative=*/true);
    } else {
      state_allreduce_butterfly(comm, op, prototype);
    }
  }
}

/// Allreduce dispatch.  Non-commutative operators always take the
/// order-preserving reduce+bcast.  Commutative *partitionable* operators
/// are autotuned: the cost-model argmin over {two-message, butterfly,
/// Rabenseifner, ring, pipelined}, overridable via RSMPI_SCHEDULE.
/// Commutative non-partitionable operators keep the whole-state butterfly
/// (segmented schedule names in RSMPI_SCHEDULE gracefully fall back to it;
/// only two_message is honoured, since it needs no partitioning).  The
/// `commutative` override is used by the ablation benchmarks and by tests
/// pinning a specific schedule.
template <Combinable Op>
void state_allreduce(mprt::Comm& comm, Op& op, const Op& prototype,
                     bool commutative = op_commutative<Op>()) {
  if (comm.size() == 1) return;
  if (!commutative) {
    // Never autotuned for noncommutative operators (the hierarchical
    // bracketing differs from the flat reduce tree's), but an explicit
    // RSMPI_SCHEDULE=hierarchical is honoured on a two-tier model — the
    // ordered leader tier keeps it legal.
    if (schedule_from_env() == Schedule::kHierarchical &&
        comm.cost_model().two_tier()) {
      state_allreduce_hierarchical(comm, op, prototype,
                                   /*commutative=*/false);
      return;
    }
    state_allreduce_reduce_bcast(comm, op, prototype, /*commutative=*/false);
    return;
  }
  const Schedule forced = schedule_from_env();
  Schedule schedule = forced;
  std::size_t segment_bytes = kDefaultSegmentBytes;
  if constexpr (PartitionableState<Op>) {
    segment_bytes = segment_bytes_from_env();
    if (forced == Schedule::kAuto) {
      comm.note_autotune_invocation();
      schedule = choose_allreduce_schedule(comm.cost_model(), comm.size(),
                                           part_state_bytes(op), segment_bytes);
    }
  }
  state_allreduce_with_schedule(comm, op, prototype, schedule, segment_bytes,
                                /*commutative=*/true);
}

/// Legacy recursive-doubling exclusive scan: maintains the inclusive
/// window *and* the exclusive prefix eagerly, paying two combines per
/// doubling step on the critical path.  Kept as the baseline the deferred
/// formulation below is tested and benchmarked against.
template <Combinable Op>
void state_xscan_eager(mprt::Comm& comm, Op& op, const Op& prototype) {
  const int p = comm.size();
  const int rank = comm.rank();
  if (p == 1) {
    op = prototype;
    return;
  }
  const int tag = comm.next_collective_tag();

  Op incl = op;          // combination of [max(0, rank-2d+1), rank]
  Op excl = prototype;   // combination of [max(0, rank-2d+1), rank-1]
  for (int d = 1; d < p; d <<= 1) {
    if (rank + d < p) {
      send_state(comm, rank + d, tag, incl);
    }
    if (rank - d >= 0) {
      auto msg = comm.recv_message(rank - d, tag);
      Op received = load_op(prototype, msg.payload());
      comm.recycle_buffer(msg.release_storage());
      auto timer = comm.compute_section();
      Op tmp = received;
      tmp.combine(incl);
      incl = std::move(tmp);
      received.combine(excl);
      excl = std::move(received);
    }
  }
  op = std::move(excl);
}

/// Round- and computation-efficient exclusive scan of operator states: on
/// return `op` holds the combination of all lower ranks' input states
/// (identity, i.e. a copy of `prototype`, on rank 0).  Valid for
/// non-commutative operators — every prepend joins contiguous rank
/// intervals in order.
///
/// Only the forwarded *window* (the inclusive combination of the most
/// recent 2d ranks) is maintained on the critical path — one combine per
/// doubling step, and none at all once the rank has made its last send
/// (rank + 2d >= p).  Received partials are parked unparsed and folded
/// into the exclusive prefix after the last send, off the chain of
/// combines downstream ranks are waiting on.  The fold replays the eager
/// variant's bracketing exactly, so results are bit-identical to
/// state_xscan_eager for every operator, including non-commutative and
/// floating-point ones.
template <Combinable Op>
void state_xscan(mprt::Comm& comm, Op& op, const Op& prototype) {
  const int p = comm.size();
  const int rank = comm.rank();
  if (p == 1) {
    op = prototype;
    return;
  }
  const int tag = comm.next_collective_tag();

  Op window = op;  // combination of [max(0, rank-2d+1), rank]
  std::vector<mprt::Message> deferred;  // step-d messages, ascending d
  for (int d = 1; d < p; d <<= 1) {
    if (rank + d < p) {
      send_state(comm, rank + d, tag, window);
    }
    if (rank - d >= 0) {
      deferred.push_back(comm.recv_message(rank - d, tag));
      if (rank + 2 * d < p) {
        // The window is only needed while there are sends left; update it
        // with the single on-critical-path combine: window = recv (+) window.
        Op received = load_op(prototype, deferred.back().payload());
        auto timer = comm.compute_section();
        received.combine(window);
        window = std::move(received);
      }
    }
  }

  // Off the critical path: fold the parked partials into the exclusive
  // prefix, prepending in ascending-d order (each message covers the
  // interval immediately left of everything folded so far).
  Op excl = prototype;
  for (auto& msg : deferred) {
    Op received = load_op(prototype, msg.payload());
    comm.recycle_buffer(msg.release_storage());
    auto timer = comm.compute_section();
    received.combine(excl);
    excl = std::move(received);
  }
  op = std::move(excl);
}

}  // namespace rsmpi::rs::detail
