// Asynchronous global-view reductions and scans.
//
// rs::reduce_async / rs::scan_async run the accumulate phase immediately
// (it is local compute, through detail::accumulate_local — so the
// work-stealing worker pool applies here too when RSMPI_LOCAL_THREADS
// enables it) and hand the combine phase — the only part that talks to
// other ranks — to the rank's nonblocking progress engine (coll/nb).  The caller receives a Future and keeps computing; calling
// coll::nb::poll() between compute chunks lets the combine tree climb
// while the rank's virtual clock advances through the compute, so the
// communication cost overlaps and the modelled critical path shrinks.
//
// The state machines here are the nonblocking restatement of
// rs/state_exchange.hpp: the same binomial / combine-as-available /
// recursive-doubling schedules over serialized operator states, with every
// blocking recv_message replaced by a polled nonblocking receive.  Because
// states travel as tagged messages (not into preallocated buffers),
// variable-size operator states work exactly as they do in the blocking
// paths.
#pragma once

#include <bit>
#include <functional>
#include <memory>
#include <optional>
#include <ranges>
#include <utility>
#include <vector>

#include "coll/nb/iallreduce.hpp"
#include "coll/nb/istate_ring.hpp"
#include "coll/nb/progress.hpp"
#include "mprt/comm.hpp"
#include "mprt/topology.hpp"
#include "rs/op_concepts.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "util/error.hpp"

namespace rsmpi::rs {

/// Handle to an asynchronous reduction or scan result.  `get()` waits for
/// the in-flight combine (making progress on every pending operation of
/// this rank while it does) and then generates the result; it may be
/// called once or many times — the result is cached.  The communicator and
/// the operator state live until the future's last copy is destroyed, but
/// `get()`/`wait()` must be called before the communicator's rank thread
/// exits.
template <typename T>
class Future {
 public:
  Future() = default;
  Future(coll::nb::Request request, std::function<T()> finalize)
      : request_(request), finalize_(std::move(finalize)) {}

  /// True if this future was produced by an async call (not default).
  [[nodiscard]] bool valid() const { return static_cast<bool>(finalize_); }

  /// True when the combine phase has completed (no progress is made).
  [[nodiscard]] bool done() const { return request_.done(); }

  /// One progress pass; true when the combine phase has completed.
  bool test() { return request_.test(); }

  /// Blocks (making progress) until the combine phase completes.
  void wait() { request_.wait(); }

  /// Waits, then generates and caches the result.
  T& get() {
    if (!finalize_) {
      throw ArgumentError("Future::get: future is not valid");
    }
    if (!result_.has_value()) {
      request_.wait();
      result_.emplace(finalize_());
    }
    return *result_;
  }

  /// The underlying request, for wait_all / test_any batching.
  [[nodiscard]] coll::nb::Request& request() { return request_; }

 private:
  coll::nb::Request request_;
  std::function<T()> finalize_;
  std::optional<T> result_;
};

namespace detail {

/// Shared home for the operator state while the combine is in flight.
/// Owned jointly by the Operation (in the progress engine) and by the
/// Future's finalize closure, so it survives whichever is dropped first.
template <typename Op>
struct AsyncOpState {
  Op op;
  Op prototype;
  AsyncOpState(Op op_, Op prototype_)
      : op(std::move(op_)), prototype(std::move(prototype_)) {}
};

/// Nonblocking state_allreduce: reduce serialized operator states to rank
/// 0 (order-preserving binomial for non-commutative operators,
/// combine-as-available k-ary tree otherwise), then binomial-broadcast the
/// finished state.  Combine work is charged through compute_section, as in
/// the blocking schedules.
template <Combinable Op>
class StateAllreduceOp final : public coll::nb::Operation {
 public:
  StateAllreduceOp(mprt::Comm& comm, std::shared_ptr<AsyncOpState<Op>> state,
                   bool commutative, int reduce_tag, int bcast_tag)
      : comm_(comm),
        state_(std::move(state)),
        reduce_tag_(reduce_tag),
        bcast_tag_(bcast_tag),
        commutative_(commutative) {
    const int p = comm.size();
    const int rank = comm.rank();
    if (commutative_) {
      for (int c = kUnorderedArity * rank + 1;
           c <= kUnorderedArity * rank + kUnorderedArity && c < p; ++c) {
        ++children_left_;
      }
    } else {
      reduce_steps_ = mprt::topology::binomial_reduce_schedule(rank, p);
    }
    bcast_steps_ = mprt::topology::binomial_bcast_schedule(rank, p);
  }

  bool step(coll::nb::StepMode mode) override {
    bool progressed = false;
    const int rank = comm_.rank();
    while (phase_ != Phase::kDone) {
      switch (phase_) {
        case Phase::kReduce: {
          if (commutative_) {
            // Fold whichever child's state lands first (§1's
            // combine-as-available optimization), then hand up.
            if (children_left_ > 0) {
              auto msg = coll::nb::detail::nb_recv(comm_, mprt::kAnySource, reduce_tag_, mode);
              if (!msg.has_value()) return progressed;
              if (comm_.schedule_oracle() != nullptr) {
                // Model-checking mode: park the arrival and fold the full
                // fan-in below in an oracle-dictated order, so the
                // fold-on-arrival race is enumerated, not raced.
                pending_.push_back(std::move(*msg));
              } else {
                combine_received_state(comm_, state_->op, state_->prototype,
                                       std::move(*msg));
              }
              --children_left_;
              progressed = true;
              continue;
            }
            if (!pending_.empty()) {
              oracle_fold_messages(comm_, *comm_.schedule_oracle(),
                                   state_->op, state_->prototype,
                                   std::move(pending_));
              pending_.clear();
              progressed = true;
            }
            if (rank != 0) {
              send_state(comm_, (rank - 1) / kUnorderedArity, reduce_tag_,
                         state_->op);
              progressed = true;
            }
            next_ = 0;
            phase_ = Phase::kBcast;
            continue;
          }
          if (next_ >= reduce_steps_.size()) {
            next_ = 0;
            phase_ = Phase::kBcast;
            continue;
          }
          const auto& s = reduce_steps_[next_];
          if (s.role == mprt::topology::BinomialStep::Role::kSend) {
            send_state(comm_, s.partner, reduce_tag_, state_->op);
          } else {
            auto msg = coll::nb::detail::nb_recv(comm_, s.partner, reduce_tag_, mode);
            if (!msg.has_value()) return progressed;
            combine_received_state(comm_, state_->op, state_->prototype,
                                   std::move(*msg));
          }
          ++next_;
          progressed = true;
          continue;
        }
        case Phase::kBcast: {
          if (next_ >= bcast_steps_.size()) {
            phase_ = Phase::kDone;
            continue;
          }
          const auto& s = bcast_steps_[next_];
          if (s.role == mprt::topology::BinomialStep::Role::kRecv) {
            auto msg = coll::nb::detail::nb_recv(comm_, s.partner, bcast_tag_, mode);
            if (!msg.has_value()) return progressed;
            {
              auto timer = comm_.compute_section();
              load_op_into(state_->op, msg->payload());
            }
            comm_.recycle_buffer(msg->release_storage());
          } else {
            send_state(comm_, s.partner, bcast_tag_, state_->op);
          }
          ++next_;
          progressed = true;
          continue;
        }
        case Phase::kDone:
          break;
      }
    }
    return progressed;
  }

  [[nodiscard]] bool done() const override { return phase_ == Phase::kDone; }

 private:
  enum class Phase { kReduce, kBcast, kDone };

  mprt::Comm& comm_;
  std::shared_ptr<AsyncOpState<Op>> state_;
  int reduce_tag_;
  int bcast_tag_;
  bool commutative_;
  int children_left_ = 0;
  std::vector<mprt::Message> pending_;  // parked arrivals (oracle mode only)
  std::vector<mprt::topology::BinomialStep> reduce_steps_;
  std::vector<mprt::topology::BinomialStep> bcast_steps_;
  std::size_t next_ = 0;
  Phase phase_ = Phase::kReduce;
};

/// Nonblocking recursive-doubling (butterfly) state allreduce — the
/// state_allreduce_butterfly schedule of rs/state_exchange.hpp as a polled
/// state machine.  log p rounds, one tag, no root hotspot; commutative
/// operators only.
template <Combinable Op>
class StateButterflyAllreduceOp final : public coll::nb::Operation {
 public:
  StateButterflyAllreduceOp(mprt::Comm& comm,
                            std::shared_ptr<AsyncOpState<Op>> state, int tag)
      : comm_(comm),
        state_(std::move(state)),
        tag_(tag),
        p2_(static_cast<int>(
            std::bit_floor(static_cast<unsigned>(comm.size())))) {}

  bool step(coll::nb::StepMode mode) override {
    bool progressed = false;
    const int p = comm_.size();
    const int rank = comm_.rank();
    while (phase_ != Phase::kDone) {
      switch (phase_) {
        case Phase::kFoldIn: {
          if (rank >= p2_) {
            // Outside the butterfly: deposit the local state, then wait
            // for the finished result.
            send_state(comm_, rank - p2_, tag_, state_->op);
            phase_ = Phase::kAwaitResult;
            progressed = true;
            continue;
          }
          if (rank + p2_ < p) {
            auto msg = coll::nb::detail::nb_recv(comm_, rank + p2_, tag_, mode);
            if (!msg.has_value()) return progressed;
            combine_received_state(comm_, state_->op, state_->prototype,
                                   std::move(*msg));
            progressed = true;
          }
          phase_ = Phase::kExchange;
          continue;
        }
        case Phase::kExchange: {
          if (d_ >= p2_) {
            if (rank + p2_ < p) {
              send_state(comm_, rank + p2_, tag_, state_->op);
              progressed = true;
            }
            phase_ = Phase::kDone;
            continue;
          }
          const int partner = rank ^ d_;
          if (!sent_) {
            send_state(comm_, partner, tag_, state_->op);
            sent_ = true;
            progressed = true;
          }
          auto msg = coll::nb::detail::nb_recv(comm_, partner, tag_, mode);
          if (!msg.has_value()) return progressed;
          combine_received_state(comm_, state_->op, state_->prototype,
                                 std::move(*msg));
          d_ <<= 1;
          sent_ = false;
          progressed = true;
          continue;
        }
        case Phase::kAwaitResult: {
          auto msg = coll::nb::detail::nb_recv(comm_, rank - p2_, tag_, mode);
          if (!msg.has_value()) return progressed;
          {
            auto timer = comm_.compute_section();
            load_op_into(state_->op, msg->payload());
          }
          comm_.recycle_buffer(msg->release_storage());
          phase_ = Phase::kDone;
          progressed = true;
          continue;
        }
        case Phase::kDone:
          break;
      }
    }
    return progressed;
  }

  [[nodiscard]] bool done() const override { return phase_ == Phase::kDone; }

 private:
  enum class Phase { kFoldIn, kExchange, kAwaitResult, kDone };

  mprt::Comm& comm_;
  std::shared_ptr<AsyncOpState<Op>> state_;
  int tag_;
  int p2_;
  int d_ = 1;
  bool sent_ = false;
  Phase phase_ = Phase::kFoldIn;
};

/// Nonblocking state_xscan: the deferred-prefix recursive-doubling
/// exclusive scan of rs/state_exchange.hpp as a polled state machine.  On
/// completion state->op holds the combination of all lower ranks' input
/// states (identity on rank 0).  Only the forwarded window is combined
/// inside the doubling loop; parked partials fold into the exclusive
/// prefix after the last send.
template <Combinable Op>
class StateXscanOp final : public coll::nb::Operation {
 public:
  StateXscanOp(mprt::Comm& comm, std::shared_ptr<AsyncOpState<Op>> state,
               int tag)
      : comm_(comm),
        state_(std::move(state)),
        tag_(tag),
        window_(state_->op) {}

  bool step(coll::nb::StepMode mode) override {
    bool progressed = false;
    const int p = comm_.size();
    const int rank = comm_.rank();
    while (d_ < p) {
      if (!sent_) {
        if (rank + d_ < p) {
          send_state(comm_, rank + d_, tag_, window_);
        }
        sent_ = true;
        progressed = true;
      }
      if (rank - d_ >= 0) {
        auto msg = coll::nb::detail::nb_recv(comm_, rank - d_, tag_, mode);
        if (!msg.has_value()) return progressed;
        deferred_.push_back(std::move(*msg));
        if (rank + 2 * d_ < p) {
          // Window still feeds a later send: one combine on the critical
          // path, window = received (+) window.
          Op received = load_op(state_->prototype, deferred_.back().payload());
          auto timer = comm_.compute_section();
          received.combine(window_);
          window_ = std::move(received);
        }
      }
      d_ <<= 1;
      sent_ = false;
      progressed = true;
    }
    if (!finished_) {
      Op excl = state_->prototype;
      for (auto& msg : deferred_) {
        Op received = load_op(state_->prototype, msg.payload());
        comm_.recycle_buffer(msg.release_storage());
        auto timer = comm_.compute_section();
        received.combine(excl);
        excl = std::move(received);
      }
      deferred_.clear();
      state_->op = std::move(excl);
      finished_ = true;
      progressed = true;
    }
    return progressed;
  }

  [[nodiscard]] bool done() const override { return finished_; }

 private:
  mprt::Comm& comm_;
  std::shared_ptr<AsyncOpState<Op>> state_;
  int tag_;
  Op window_;  // combination of [max(0, rank-2d+1), rank]
  std::vector<mprt::Message> deferred_;  // step-d messages, ascending d
  int d_ = 1;
  bool sent_ = false;
  bool finished_ = false;
};

/// Launches the nonblocking state allreduce for an already-accumulated
/// operator state; shared by reduce_async and the C bindings.  Commutative
/// operators get a single-tag schedule — the bandwidth-optimal ring when
/// the state is partitionable and RSMPI_SCHEDULE forces it or the cost
/// model prefers it over the butterfly (the only two shapes the progress
/// engine offers), the whole-state butterfly otherwise.  Non-commutative
/// operators take the order-preserving binomial reduce + bcast (two tags).
template <Combinable Op>
coll::nb::Request launch_state_allreduce(
    mprt::Comm& comm, std::shared_ptr<AsyncOpState<Op>> state,
    bool commutative) {
  if (comm.size() == 1) return coll::nb::Request{};
  if (commutative) {
    const int tag = comm.reserve_collective_tags(1);
    if constexpr (PartitionableState<Op>) {
      const Schedule forced = schedule_from_env();
      using SC = mprt::ScheduleCost;
      const bool use_ring =
          forced == Schedule::kRing ||
          (forced == Schedule::kAuto &&
           SC::ring(comm.cost_model(), comm.size(),
                    part_state_bytes(state->op)) <
               SC::butterfly(comm.cost_model(), comm.size(),
                             part_state_bytes(state->op)));
      if (use_ring) {
        return coll::nb::ProgressEngine::current().launch(
            comm,
            std::make_unique<coll::nb::IStateRingAllreduceOp<AsyncOpState<Op>>>(
                comm, std::move(state), tag),
            tag, 1);
      }
    }
    return coll::nb::ProgressEngine::current().launch(
        comm,
        std::make_unique<StateButterflyAllreduceOp<Op>>(comm, std::move(state),
                                                        tag),
        tag, 1);
  }
  const int tag = comm.reserve_collective_tags(2);
  return coll::nb::ProgressEngine::current().launch(
      comm,
      std::make_unique<StateAllreduceOp<Op>>(comm, std::move(state),
                                             /*commutative=*/false, tag,
                                             tag + 1),
      tag, 2);
}

}  // namespace detail

/// Asynchronous global-view reduction.  Accumulates the local slice now
/// (local compute, charged to the clock), starts the cross-rank combine in
/// the background, and returns a future whose get() yields the same value
/// on every rank as rs::reduce.  Interleave coll::nb::poll() with your
/// compute to overlap the combine with it.
///
///   auto fut = rs::reduce_async(comm, my_slice, ops::MinK<int>(10));
///   for (auto& chunk : work) { process(chunk); coll::nb::poll(); }
///   auto mins = fut.get();
template <typename Op, std::ranges::input_range R>
  requires ReductionOp<Op, std::ranges::range_value_t<R>>
Future<reduce_result_t<Op>> reduce_async(mprt::Comm& comm, R&& local, Op op) {
  const Op prototype = op;
  detail::accumulate_local(comm, op, std::forward<R>(local));
  auto state = std::make_shared<detail::AsyncOpState<Op>>(std::move(op),
                                                          prototype);
  auto request =
      detail::launch_state_allreduce(comm, state, op_commutative<Op>());
  return Future<reduce_result_t<Op>>(
      request, [state]() { return red_result(state->op); });
}

/// Asynchronous global-view scan.  Accumulates the local slice now, runs
/// the cross-rank exclusive scan of states in the background, and replays
/// the slice at get() to produce this rank's output positions — equal to
/// rs::scan's.  The local values are copied into the future so the caller
/// may overwrite the input range while the scan is in flight.
template <typename Op, std::ranges::forward_range R>
  requires ScanOp<Op, std::ranges::range_value_t<R>>
Future<std::vector<scan_result_t<Op, std::ranges::range_value_t<R>>>>
scan_async(mprt::Comm& comm, R&& local, Op op,
           ScanKind kind = ScanKind::kInclusive) {
  using In = std::ranges::range_value_t<R>;
  using Out = scan_result_t<Op, In>;

  const Op prototype = op;
  detail::accumulate_local(comm, op, local);
  auto slice = std::make_shared<std::vector<In>>(std::ranges::begin(local),
                                                 std::ranges::end(local));
  auto state = std::make_shared<detail::AsyncOpState<Op>>(std::move(op),
                                                          prototype);

  coll::nb::Request request;
  if (comm.size() > 1) {
    const int tag = comm.reserve_collective_tags(1);
    request = coll::nb::ProgressEngine::current().launch(
        comm, std::make_unique<detail::StateXscanOp<Op>>(comm, state, tag),
        tag, 1);
  } else {
    state->op = prototype;  // exclusive prefix of rank 0 is the identity
  }

  auto finalize = [state, slice, kind, comm = &comm]() {
    Op replay = state->op;
    std::vector<Out> out;
    out.reserve(slice->size());
    auto timer = comm->compute_section();
    for (const In& x : *slice) {
      if (kind == ScanKind::kExclusive) {
        out.push_back(scan_result(replay, x));
        replay.accum(x);
      } else {
        replay.accum(x);
        out.push_back(scan_result(replay, x));
      }
    }
    return out;
  };
  return Future<std::vector<Out>>(request, std::move(finalize));
}

/// Waits on every future in the pack (progressing all pending operations).
template <typename... Ts>
void wait_all_futures(Future<Ts>&... futures) {
  (futures.wait(), ...);
}

}  // namespace rsmpi::rs
