// Sequential reference semantics for the global-view abstraction.
//
// These run the same operator protocol (pre_accum / accum / post_accum /
// generate) over a single range with no communication.  They serve three
// roles: the p = 1 degenerate case, the oracle the parallel property tests
// compare against, and a readable statement of what a reduction/scan
// *means* independent of any schedule.
#pragma once

#include <algorithm>
#include <cstddef>
#include <ranges>
#include <vector>

#include "rs/op_concepts.hpp"

namespace rsmpi::rs::serial {

/// Folds a range into an operator state (identity prototype in, fully
/// accumulated state out).
template <typename Op, std::ranges::input_range R>
  requires Accumulates<Op, std::ranges::range_value_t<R>>
Op reduce_state(R&& values, Op op) {
  using In = std::ranges::range_value_t<R>;
  auto it = std::ranges::begin(values);
  const auto end = std::ranges::end(values);
  if (it == end) return op;
  pre_accum_if(op, static_cast<const In&>(*it));
  In last = *it;
  for (; it != end; ++it) {
    const In& x = *it;
    op.accum(x);
    last = x;
  }
  post_accum_if(op, static_cast<const In&>(last));
  return op;
}

/// Sequential reduction: accumulate everything, then generate.
template <typename Op, std::ranges::input_range R>
  requires Accumulates<Op, std::ranges::range_value_t<R>> &&
           (HasGen<Op> || HasRedGen<Op>)
reduce_result_t<Op> reduce(R&& values, Op op) {
  return red_result(reduce_state(std::forward<R>(values), std::move(op)));
}

/// Sequential inclusive scan.
template <typename Op, std::ranges::input_range R>
  requires Accumulates<Op, std::ranges::range_value_t<R>>
std::vector<scan_result_t<Op, std::ranges::range_value_t<R>>> scan(
    R&& values, Op op) {
  using In = std::ranges::range_value_t<R>;
  std::vector<scan_result_t<Op, In>> out;
  for (const In& x : values) {
    op.accum(x);
    out.push_back(scan_result(op, x));
  }
  return out;
}

/// Sequential exclusive scan: position i is generated from the state of
/// positions [0, i); position 0 from the identity state.
template <typename Op, std::ranges::input_range R>
  requires Accumulates<Op, std::ranges::range_value_t<R>>
std::vector<scan_result_t<Op, std::ranges::range_value_t<R>>> xscan(
    R&& values, Op op) {
  using In = std::ranges::range_value_t<R>;
  std::vector<scan_result_t<Op, In>> out;
  for (const In& x : values) {
    out.push_back(scan_result(op, x));
    op.accum(x);
  }
  return out;
}

/// The "reduction of two states" view used by tests that exercise combine
/// directly: left (+) right.
template <Combinable Op>
Op combine(Op left, const Op& right) {
  left.combine(right);
  return left;
}

/// Sequential oracle for the partitionable-state contract (ISSUE 5):
/// combines `right` into `left` one element range at a time through the
/// save_part/combine_part hooks.  The contract requires the result to
/// equal serial::combine(left, right) for every segmentation, which the
/// segmented-schedule tests check at several widths.
template <Combinable Op>
  requires PartitionableState<Op>
Op combine_via_parts(Op left, const Op& right, std::size_t segment_elems = 1) {
  const std::size_t n = right.part_extent();
  if (segment_elems == 0) segment_elems = 1;
  for (std::size_t lo = 0; lo < n; lo += segment_elems) {
    const std::size_t hi = std::min(n, lo + segment_elems);
    bytes::Writer w;
    right.save_part(lo, hi, w);
    left.combine_part(lo, hi, w.view());
  }
  return left;
}

}  // namespace rsmpi::rs::serial
