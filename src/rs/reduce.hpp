// Global-view user-defined reduction (paper Listing 2).
//
// Unlike the local-view routines — which assume each rank has already
// accumulated its data into one partial value — the global-view reduction
// owns *both* phases of Figure 1: it runs the accumulate loop over the
// rank's local slice of the conceptual global array (with the optional
// pre/post hooks on the boundary elements), combines the per-rank states
// along a log tree, and applies the generate function to produce the
// output type.  This is the Chapel expression
//
//     result = op(...) reduce A;
//
// rendered as a C++ function template.
#pragma once

#include <cstddef>
#include <optional>
#include <ranges>

#include "par/accumulate.hpp"
#include "rs/op_concepts.hpp"
#include "rs/state_exchange.hpp"

namespace rsmpi::rs {

namespace detail {

/// The accumulate phase of Listing 2, lines 2–8: pre_accum on the first
/// local value, accum over every local value, post_accum on the last.
/// Local compute is charged to the rank's virtual clock.
///
/// Sized random-access ranges of combinable operators route through the
/// work-stealing worker pool (par::accumulate_indexed): serial by
/// default, parallel when RSMPI_LOCAL_THREADS > 1, and bit-identical to
/// the sequential loop either way — chunk states merge in index order
/// (see docs/parallel_local.md).  Every entry point built on this —
/// reduce / allreduce / scan / reduce_async / scan_async / the svc
/// persistent epochs — therefore gets parallel local accumulation for
/// free.  `op` must arrive in identity state (the documented prototype
/// contract, op_concepts.hpp); it doubles as the chunk-clone source.
/// Other ranges (pure input iterators, non-combinable operators) keep
/// the sequential loop.
template <typename Op, std::ranges::input_range R>
  requires Accumulates<Op, std::ranges::range_value_t<R>>
void accumulate_local(mprt::Comm& comm, Op& op, R&& local) {
  using In = std::ranges::range_value_t<R>;
  if constexpr (std::ranges::random_access_range<R> &&
                std::ranges::sized_range<R> && Combinable<Op> &&
                std::copy_constructible<Op>) {
    const std::size_t n = std::ranges::size(local);
    const auto first = std::ranges::begin(local);
    par::accumulate_indexed(
        comm, op, op, n, [&](std::size_t i) -> decltype(auto) {
          return first[static_cast<std::ranges::range_difference_t<R>>(i)];
        });
  } else {
    auto timer = comm.compute_section();
    auto it = std::ranges::begin(local);
    const auto end = std::ranges::end(local);
    if (it == end) return;
    pre_accum_if(op, static_cast<const In&>(*it));
    if constexpr (HasPostAccum<Op, In>) {
      // `last` is only materialized (and copied per element) when the
      // operator actually observes the final value.
      In last = *it;
      for (; it != end; ++it) {
        const In& x = *it;
        op.accum(x);
        last = x;
      }
      op.post_accum(static_cast<const In&>(last));
    } else {
      for (; it != end; ++it) op.accum(*it);
    }
  }
}

}  // namespace detail

/// Accumulates this rank's local values into `op` and combines states
/// across ranks; returns the fully-combined operator state on every rank.
/// Building block for reduce/allreduce and for callers that want to reuse
/// the state (e.g. to call several generate functions).
///
/// `commutative_override` forces the combine schedule regardless of the
/// operator's trait.  Forcing a non-commutative operator onto the
/// combine-as-available schedule produces wrong answers — it exists to
/// reproduce the paper's §4.1 experiment of flagging `sorted` commutative
/// (no speedup, failed verification) and for A/B benchmarks of the
/// schedules themselves.
template <typename Op, std::ranges::input_range R>
  requires ReductionOp<Op, std::ranges::range_value_t<R>>
Op reduce_state(mprt::Comm& comm, R&& local, Op op,
                std::optional<bool> commutative_override = std::nullopt) {
  const Op prototype = op;  // identity copy, kept for deserialization
  detail::accumulate_local(comm, op, std::forward<R>(local));
  detail::state_allreduce(comm, op, prototype,
                          commutative_override.value_or(op_commutative<Op>()));
  return op;
}

/// Global-view reduction; the generated result is returned on every rank
/// (Chapel's reduce expression yields its value wherever it is used).
///
///   auto mins = rs::reduce(comm, my_slice, ops::MinK<int>(10));
template <typename Op, std::ranges::input_range R>
  requires ReductionOp<Op, std::ranges::range_value_t<R>>
reduce_result_t<Op> reduce(mprt::Comm& comm, R&& local, Op op) {
  return red_result(reduce_state(comm, std::forward<R>(local), std::move(op)));
}

/// Synonym for reduce(); provided because the local-view vocabulary
/// (§2) distinguishes REDUCE from ALLREDUCE and callers porting MPI code
/// expect the name.
template <typename Op, std::ranges::input_range R>
  requires ReductionOp<Op, std::ranges::range_value_t<R>>
reduce_result_t<Op> allreduce(mprt::Comm& comm, R&& local, Op op) {
  return reduce(comm, std::forward<R>(local), std::move(op));
}

/// Root-only variant: the combined result is generated on `root` and
/// std::nullopt is returned elsewhere, saving the broadcast of the final
/// state when only one rank consumes it.
template <typename Op, std::ranges::input_range R>
  requires ReductionOp<Op, std::ranges::range_value_t<R>>
std::optional<reduce_result_t<Op>> reduce_root(mprt::Comm& comm, int root,
                                               R&& local, Op op) {
  const Op prototype = op;
  detail::accumulate_local(comm, op, std::forward<R>(local));
  if (comm.size() > 1) {
    detail::state_reduce_to_zero(comm, op, prototype);
    if (root != 0) {
      const int tag = comm.next_collective_tag();
      if (comm.rank() == 0) {
        detail::send_state(comm, root, tag, op);
      } else if (comm.rank() == root) {
        auto msg = comm.recv_message(0, tag);
        load_op_into(op, msg.payload());
        comm.recycle_buffer(msg.release_storage());
      }
    }
  }
  if (comm.rank() != root) return std::nullopt;
  return red_result(op);
}

}  // namespace rsmpi::rs
