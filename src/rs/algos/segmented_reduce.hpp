// Segmented reduction: one reduction result *per segment* of a
// flag-delimited distributed array, with any global-view operator doing
// the per-segment work.
//
// Where a Segmented<Op> *scan* yields running values and a Segmented<Op>
// *reduction* yields only the final segment, this algorithm materializes
// every segment's result, block-distributed by segment id:
//
//   1. exclusive sum scan over per-rank segment-start counts assigns
//      global segment ids (exactly as rle.hpp numbers runs);
//   2. each rank folds its local stretch of every intersecting segment
//      into an operator state;
//   3. partial states are *serialized* and routed to the segment's output
//      owner by one alltoallv, where they are combined in source-rank
//      order (correct for non-commutative operators, since source ranks
//      cover ascending position ranges) and generated.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coll/alltoall.hpp"
#include "coll/local_reduce.hpp"
#include "coll/local_scan.hpp"
#include "mprt/comm.hpp"
#include "rs/op_concepts.hpp"
#include "rs/ops/segmented.hpp"
#include "util/block_dist.hpp"

namespace rsmpi::rs::algos {

/// Reduces each segment of the distributed array with `op` (prototype in
/// identity state).  Input elements are Seg<In> (value + start flag); an
/// unflagged global position 0 opens an implicit first segment.  Returns
/// this rank's block of the per-segment results, ordered by segment id.
template <typename Op, typename In>
  requires ReductionOp<Op, In>
std::vector<reduce_result_t<Op>> segmented_reduce(
    mprt::Comm& comm, std::span<const ops::Seg<In>> local, Op prototype) {
  const int p = comm.size();

  // 1. Per-rank partial states, one per locally-intersecting segment.
  struct Partial {
    bool starts_here;
    Op state;
  };
  std::vector<Partial> partials;
  {
    auto timer = comm.compute_section();
    for (const auto& e : local) {
      if (partials.empty() || e.start) {
        partials.push_back({e.start, prototype});
      }
      partials.back().state.accum(e.value);
    }
  }
  const bool first_continues = !partials.empty() && !partials[0].starts_here;

  // Does any earlier rank hold data?  (Decides whether a continuing first
  // stretch joins an earlier segment or *is* the implicit segment 0.)
  const std::int64_t elems_before = coll::local_xscan_value(
      comm, static_cast<std::int64_t>(local.size()),
      coll::Sum<std::int64_t>{});
  const bool joins_earlier = first_continues && elems_before > 0;

  // 2. Global segment ids via the start-count prefix.
  const std::int64_t my_starts =
      static_cast<std::int64_t>(partials.size()) - (joins_earlier ? 1 : 0);
  const std::int64_t id0 =
      coll::local_xscan_value(comm, my_starts, coll::Sum<std::int64_t>{});
  const std::int64_t total_segments =
      coll::local_allreduce_value(comm, my_starts,
                                  coll::Sum<std::int64_t>{});

  // 3. Route serialized partial states to segment owners.
  const BlockDist dist{total_segments, p};
  std::vector<std::vector<std::byte>> frames(static_cast<std::size_t>(p));
  {
    auto timer = comm.compute_section();
    std::int64_t id = joins_earlier ? id0 - 1 : id0;
    for (const auto& partial : partials) {
      bytes::Writer w;
      w.put<std::int64_t>(id);
      w.put_vector(save_op(partial.state));
      auto frame = std::move(w).take();
      auto& dest = frames[static_cast<std::size_t>(dist.owner_of(id))];
      bytes::Writer envelope;
      envelope.put<std::uint64_t>(frame.size());
      envelope.put_raw(frame);
      const auto env = std::move(envelope).take();
      dest.insert(dest.end(), env.begin(), env.end());
      ++id;
    }
  }

  // Exchange the framed byte streams; sources arrive in rank order.
  std::vector<std::vector<std::byte>> received;
  coll::detail::alltoallv_bytes(comm, frames, received);

  // 4. Combine partials per segment (source-rank order = position order)
  //    and generate.
  auto timer = comm.compute_section();
  const std::int64_t out_start = dist.start_of(comm.rank());
  const auto out_count = static_cast<std::size_t>(dist.size_of(comm.rank()));
  std::vector<Op> states(out_count, prototype);
  std::vector<bool> seen(out_count, false);
  for (int src = 0; src < p; ++src) {
    bytes::Reader stream(received[static_cast<std::size_t>(src)]);
    while (!stream.exhausted()) {
      const auto frame_len = stream.get<std::uint64_t>();
      (void)frame_len;
      const auto id = stream.get<std::int64_t>();
      const auto blob = stream.get_vector<std::byte>();
      const Op part = load_op(prototype, blob);
      auto& slot = states[static_cast<std::size_t>(id - out_start)];
      if (!seen[static_cast<std::size_t>(id - out_start)]) {
        slot = part;
        seen[static_cast<std::size_t>(id - out_start)] = true;
      } else {
        slot.combine(part);
      }
    }
  }

  std::vector<reduce_result_t<Op>> out;
  out.reserve(out_count);
  for (const Op& s : states) out.push_back(red_result(s));
  return out;
}

}  // namespace rsmpi::rs::algos
