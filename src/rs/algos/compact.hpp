// Stream compaction (parallel filter) built from the library's own
// primitives — the first of the classic parallel-prefix algorithms
// Blelloch's vector model (the paper's [3]) constructs from scan.
//
// Semantics: given the conceptual global array formed by concatenating
// every rank's local block, keep exactly the elements satisfying the
// predicate, preserve their order, and block-redistribute the survivors
// so every rank ends up with an even share.  The enumeration step is one
// exclusive sum scan (each rank learns the global offset of its first
// survivor); the redistribution is one alltoallv.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coll/alltoall.hpp"
#include "coll/local_reduce.hpp"
#include "coll/local_scan.hpp"
#include "mprt/comm.hpp"
#include "util/block_dist.hpp"

namespace rsmpi::rs::algos {

using rsmpi::BlockDist;

/// Keeps the elements of the distributed array satisfying `keep`,
/// preserving global order, and returns this rank's block of the
/// compacted array under an even block distribution.
template <typename T, typename Pred>
  requires std::is_trivially_copyable_v<T>
std::vector<T> compact(mprt::Comm& comm, std::span<const T> local,
                       Pred keep) {
  const int p = comm.size();

  // 1. Select locally, in order.
  std::vector<T> kept;
  {
    auto timer = comm.compute_section();
    for (const T& x : local) {
      if (keep(x)) kept.push_back(x);
    }
  }

  // 2. Enumerate: exclusive scan of survivor counts gives this rank's
  //    first global output position; an allreduce gives the total.
  const auto my_count = static_cast<std::int64_t>(kept.size());
  const std::int64_t my_offset =
      coll::local_xscan_value(comm, my_count, coll::Sum<std::int64_t>{});
  const std::int64_t total =
      coll::local_allreduce_value(comm, my_count, coll::Sum<std::int64_t>{});

  // 3. Route each survivor to the rank owning its output position.
  const BlockDist dist{total, p};
  std::vector<std::vector<T>> outgoing(static_cast<std::size_t>(p));
  {
    auto timer = comm.compute_section();
    for (std::size_t i = 0; i < kept.size(); ++i) {
      const std::int64_t pos = my_offset + static_cast<std::int64_t>(i);
      outgoing[static_cast<std::size_t>(dist.owner_of(pos))].push_back(
          kept[i]);
    }
  }
  // Survivors arrive ordered by source rank = ordered by global position,
  // and each source's block is internally ordered, so concatenation in
  // source order is the correct block.
  return coll::alltoallv(comm, outgoing);
}

}  // namespace rsmpi::rs::algos
