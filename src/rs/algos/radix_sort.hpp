// Distributed LSD radix sort, built entirely from the library's reduction
// and scan primitives — the flagship of the "scans as the principal tool
// for parallel algorithm design" school (Blelloch, the paper's [3]).
//
// Each digit pass is:
//   1. a local histogram of the current digit (pure compute);
//   2. one aggregated exclusive sum scan of the histograms across ranks
//      (§2.1 aggregation: all 2^b buckets in one message) — rank r learns,
//      per bucket, how many equal-digit keys earlier ranks hold;
//   3. one aggregated allreduce for the global bucket totals, scanned
//      locally into bucket base offsets;
//   4. a route: key i with digit d goes to global position
//      base[d] + earlier_ranks[d] + (its index among the rank's own
//      digit-d keys), delivered by one alltoallv and placed by offset.
//
// The pass is stable, so b-bit digits from least to most significant sort
// the whole key.  Keys end up block-distributed and globally ascending.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coll/alltoall.hpp"
#include "coll/local_reduce.hpp"
#include "coll/local_scan.hpp"
#include "mprt/comm.hpp"
#include "rs/algos/compact.hpp"
#include "util/error.hpp"

namespace rsmpi::rs::algos {

/// Sorts the distributed array of unsigned keys ascending; returns this
/// rank's block of the sorted array (block distribution of the global
/// total).  `digit_bits` trades passes against histogram width.
template <typename K>
  requires std::is_unsigned_v<K>
std::vector<K> radix_sort(mprt::Comm& comm, std::vector<K> local,
                          int digit_bits = 8) {
  if (digit_bits < 1 || digit_bits > 16) {
    throw ArgumentError("radix_sort: digit_bits must be in [1, 16]");
  }
  const int p = comm.size();
  const std::size_t buckets = std::size_t{1} << digit_bits;
  const K digit_mask = static_cast<K>(buckets - 1);

  const std::int64_t total = coll::local_allreduce_value(
      comm, static_cast<std::int64_t>(local.size()),
      coll::Sum<std::int64_t>{});
  const BlockDist dist{total, p};

  /// A key en route to its output position.
  struct Placed {
    std::int64_t pos;
    K key;
  };

  const int passes =
      (static_cast<int>(sizeof(K)) * 8 + digit_bits - 1) / digit_bits;
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * digit_bits;

    // 1. Local histogram of this digit.
    std::vector<std::int64_t> hist(buckets, 0);
    {
      auto timer = comm.compute_section();
      for (const K key : local) {
        hist[static_cast<std::size_t>((key >> shift) & digit_mask)] += 1;
      }
    }

    // 2. Exclusive scan across ranks, all buckets aggregated in one call.
    std::vector<std::int64_t> earlier = hist;
    coll::ElementwiseOp<std::int64_t, coll::Sum<std::int64_t>> sum_op;
    coll::local_xscan(comm, std::span<std::int64_t>(earlier), sum_op);

    // 3. Global totals -> bucket base offsets (local exclusive scan over
    //    the bucket axis).
    std::vector<std::int64_t> totals = hist;
    coll::local_allreduce(comm, std::span<std::int64_t>(totals), sum_op);
    std::vector<std::int64_t> base(buckets, 0);
    for (std::size_t b = 1; b < buckets; ++b) {
      base[b] = base[b - 1] + totals[b - 1];
    }

    // 4. Route each key to the owner of its output position.
    std::vector<std::vector<Placed>> outgoing(static_cast<std::size_t>(p));
    {
      auto timer = comm.compute_section();
      std::vector<std::int64_t> next(buckets);
      for (std::size_t b = 0; b < buckets; ++b) {
        next[b] = base[b] + earlier[b];
      }
      for (const K key : local) {
        const auto b = static_cast<std::size_t>((key >> shift) & digit_mask);
        const std::int64_t pos = next[b]++;
        outgoing[static_cast<std::size_t>(dist.owner_of(pos))].push_back(
            {pos, key});
      }
    }
    const auto incoming = coll::alltoallv(comm, outgoing);

    // Place by global position relative to this rank's block start.
    auto timer = comm.compute_section();
    local.assign(static_cast<std::size_t>(dist.size_of(comm.rank())), K{});
    const std::int64_t my_start = dist.start_of(comm.rank());
    for (const Placed& pl : incoming) {
      local[static_cast<std::size_t>(pl.pos - my_start)] = pl.key;
    }
  }
  return local;
}

}  // namespace rsmpi::rs::algos
