// Distributed run-length encoding — a composition exercise for the
// library's own primitives, in the Blelloch tradition of building array
// algorithms from scans:
//
//   1. a Last-operator exclusive scan carries each rank the value
//      preceding its block (correct across empty ranks, log p rounds);
//   2. local run detection is pure compute;
//   3. an exclusive sum scan over per-rank run-start counts assigns
//      global run ids;
//   4. one alltoallv routes partial runs (a run may span many ranks) to
//      the output owner, which sums the lengths.
//
// The result is the globally-ordered list of (value, length) runs,
// block-distributed over the ranks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coll/alltoall.hpp"
#include "coll/local_reduce.hpp"
#include "coll/local_scan.hpp"
#include "mprt/comm.hpp"
#include "rs/ops/firstlast.hpp"
#include "rs/scan.hpp"
#include "util/block_dist.hpp"
#include "util/error.hpp"

namespace rsmpi::rs::algos {

template <typename T>
struct Run {
  T value;
  std::int64_t length;

  friend bool operator==(const Run&, const Run&) = default;
};

/// Encodes the distributed array into runs; returns this rank's block of
/// the run list under an even block distribution.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<Run<T>> run_length_encode(mprt::Comm& comm,
                                      std::span<const T> local) {
  const int p = comm.size();

  // 1. The value immediately before this block, if any earlier rank holds
  //    one — an exclusive scan with the Last operator.
  const auto prev =
      xscan_state(comm, local, ops::Last<T>{}).gen();

  // 2. Local runs, noting whether the first continues the carried value.
  struct LocalRun {
    T value;
    std::int64_t length;
  };
  std::vector<LocalRun> runs;
  bool first_continues = false;
  {
    auto timer = comm.compute_section();
    for (const T& x : local) {
      if (!runs.empty() && runs.back().value == x) {
        runs.back().length += 1;
      } else {
        runs.push_back({x, 1});
      }
    }
    first_continues = !runs.empty() && prev.has && prev.value == runs[0].value;
  }

  // 3. Global run ids: exclusive prefix of per-rank start counts.
  const std::int64_t my_starts =
      static_cast<std::int64_t>(runs.size()) - (first_continues ? 1 : 0);
  const std::int64_t id0 =
      coll::local_xscan_value(comm, my_starts, coll::Sum<std::int64_t>{});
  const std::int64_t total_runs =
      coll::local_allreduce_value(comm, my_starts, coll::Sum<std::int64_t>{});

  // 4. Route each partial run to the rank owning its output slot.
  struct Partial {
    std::int64_t id;
    T value;
    std::int64_t length;
  };
  const BlockDist dist{total_runs, p};
  std::vector<std::vector<Partial>> outgoing(static_cast<std::size_t>(p));
  {
    auto timer = comm.compute_section();
    std::int64_t id = first_continues ? id0 - 1 : id0;
    for (const LocalRun& r : runs) {
      outgoing[static_cast<std::size_t>(dist.owner_of(id))].push_back(
          {id, r.value, r.length});
      ++id;
    }
  }
  const auto incoming = coll::alltoallv(comm, outgoing);

  auto timer = comm.compute_section();
  const std::int64_t my_out_start = dist.start_of(comm.rank());
  std::vector<Run<T>> out(
      static_cast<std::size_t>(dist.size_of(comm.rank())), Run<T>{T{}, 0});
  for (const Partial& part : incoming) {
    auto& slot = out[static_cast<std::size_t>(part.id - my_out_start)];
    slot.value = part.value;  // all partials of one run share the value
    slot.length += part.length;
  }
  return out;
}

/// The values of consecutive-duplicate-free form of the array — RLE minus
/// the lengths.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> unique_consecutive(mprt::Comm& comm,
                                  std::span<const T> local) {
  const auto runs = run_length_encode(comm, local);
  std::vector<T> out;
  out.reserve(runs.size());
  for (const auto& r : runs) out.push_back(r.value);
  return out;
}

}  // namespace rsmpi::rs::algos
