// Lazily-started per-rank worker pool with chunked work stealing.
//
// Each rank thread owns (at most) one pool, created on first use and sized
// by RSMPI_LOCAL_THREADS (default 1 — no workers are ever spawned and
// every parallel section degenerates to an inline loop, keeping the
// default execution byte-for-byte identical to the pre-pool runtime).
// The pool's unit of work is a *chunk index*: run_chunks(nchunks, body)
// executes body(worker, c) exactly once for every c in [0, nchunks).
//
// Scheduling: chunks are dealt to per-worker deques as contiguous index
// blocks (worker w initially owns [w*n/T, (w+1)*n/T)).  An owner pops
// from the front of its own deque; an idle worker scans the others and
// steals the back half of the first non-empty deque it finds — the
// classic steal-half discipline, which keeps stolen work contiguous and
// bounds the number of steals at O(T log n) per section.  Which worker
// executes which chunk is therefore timing-dependent, and deliberately
// so; determinism is recovered one layer up (par/reducible.hpp) by
// giving every *chunk* its own operator state and merging states in
// chunk-index order, never in completion order.
//
// The caller of run_chunks participates as worker 0, so a pool of T
// threads spawns only T-1 OS threads, and a section's results are
// visible to the caller without extra synchronization: every worker
// checks in under the pool mutex before run_chunks returns, which
// carries the happens-before edge from each body execution to the
// caller's reads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mprt/cost_model.hpp"

namespace rsmpi::par {

/// Observability for one parallel section (one run_chunks call).  The
/// summed worker CPU feeds CostModel::parallel_section_seconds; the
/// counters surface through Comm::note_parallel_section into RunResult.
struct RunStats {
  unsigned threads = 1;       ///< pool width the section ran with
  std::uint64_t chunks = 0;   ///< chunk executions (== nchunks on success)
  std::uint64_t steals = 0;   ///< successful steal-half operations
  double worker_cpu_s = 0.0;  ///< per-thread CPU summed over all workers
};

class WorkerPool {
 public:
  /// Hard cap on pool width; RSMPI_LOCAL_THREADS is clamped into [1, 64].
  static constexpr unsigned kMaxThreads = 64;

  /// RSMPI_LOCAL_THREADS: workers per rank for local accumulation.
  /// Unset, empty, or unparsable means 1 (serial).
  static unsigned threads_from_env() {
    const char* raw = std::getenv("RSMPI_LOCAL_THREADS");
    if (raw == nullptr || *raw == '\0') return 1;
    char* end = nullptr;
    const long v = std::strtol(raw, &end, 10);
    if (end == raw || v < 1) return 1;
    return v > static_cast<long>(kMaxThreads) ? kMaxThreads
                                              : static_cast<unsigned>(v);
  }

  /// The calling thread's pool.  Re-created (old workers joined) whenever
  /// RSMPI_LOCAL_THREADS changes between sections, so tests and benches
  /// can sweep pool widths on one thread; rank threads are short-lived
  /// and typically build exactly one pool.
  static WorkerPool& current() {
    thread_local std::unique_ptr<WorkerPool> pool;
    const unsigned want = threads_from_env();
    if (pool == nullptr || pool->threads() != want) {
      pool = std::make_unique<WorkerPool>(want);
    }
    return *pool;
  }

  explicit WorkerPool(unsigned threads)
      : threads_(threads == 0 ? 1 : threads), queues_(threads_) {}

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    job_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  [[nodiscard]] unsigned threads() const { return threads_; }

  using ChunkBody = std::function<void(unsigned worker, std::size_t chunk)>;

  /// Executes body(worker, c) exactly once for every c in [0, nchunks),
  /// spread over the pool.  Bodies for distinct chunks run concurrently
  /// and must not touch shared mutable state (per-chunk operator states
  /// via par::Reducible are the intended pattern).  Blocks until every
  /// worker has finished; rethrows the first body exception (remaining
  /// chunks are drained without executing their bodies).  Must only be
  /// called from the pool's owning thread, which serves as worker 0.
  RunStats run_chunks(std::size_t nchunks, const ChunkBody& body) {
    RunStats stats;
    stats.threads = threads_;
    if (threads_ <= 1 || nchunks <= 1) {
      // Inline path: no workers, no locks — identical to a plain loop.
      stats.threads = 1;
      const double cpu0 = mprt::thread_cpu_seconds();
      for (std::size_t c = 0; c < nchunks; ++c) body(0, c);
      stats.worker_cpu_s = mprt::thread_cpu_seconds() - cpu0;
      stats.chunks = nchunks;
      return stats;
    }
    ensure_workers();
    {
      std::lock_guard<std::mutex> lk(mu_);
      body_ = &body;
      error_ = nullptr;
      failed_.store(false, std::memory_order_relaxed);
      chunks_executed_ = 0;
      steals_ = 0;
      cpu_s_ = 0.0;
      done_count_ = 0;
      // Deterministic initial deal: worker w owns the contiguous block
      // [w*n/T, (w+1)*n/T).  (Only the starting point — stealing moves
      // chunks freely; chunk->state mapping is what stays fixed.)
      for (unsigned w = 0; w < threads_; ++w) {
        queues_[w].lo = nchunks * w / threads_;
        queues_[w].hi = nchunks * (w + 1) / threads_;
      }
      ++generation_;
    }
    job_cv_.notify_all();
    const Local mine = work_loop(0);
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] { return done_count_ == threads_ - 1; });
      body_ = nullptr;
      chunks_executed_ += mine.chunks;
      steals_ += mine.steals;
      cpu_s_ += mine.cpu_s;
      stats.chunks = chunks_executed_;
      stats.steals = steals_;
      stats.worker_cpu_s = cpu_s_;
      error = error_;
      error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
    return stats;
  }

 private:
  /// One worker's deque: a contiguous chunk-index range [lo, hi).  The
  /// owner pops lo; thieves move the back half into their own (empty)
  /// deque.  Guarded by its own mutex — contention is one lock per chunk
  /// pop, negligible next to any real accumulate body at sane grains.
  struct Queue {
    std::mutex m;
    std::size_t lo = 0;
    std::size_t hi = 0;
  };

  struct Local {
    std::uint64_t chunks = 0;
    std::uint64_t steals = 0;
    double cpu_s = 0.0;
  };

  void ensure_workers() {
    if (!workers_.empty()) return;
    workers_.reserve(threads_ - 1);
    for (unsigned w = 1; w < threads_; ++w) {
      workers_.emplace_back([this, w] { worker_main(w); });
    }
  }

  void worker_main(unsigned w) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        job_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
      }
      const Local l = work_loop(w);
      {
        std::lock_guard<std::mutex> lk(mu_);
        chunks_executed_ += l.chunks;
        steals_ += l.steals;
        cpu_s_ += l.cpu_s;
        ++done_count_;
      }
      done_cv_.notify_one();
    }
  }

  Local work_loop(unsigned w) {
    Local out;
    const double cpu0 = mprt::thread_cpu_seconds();
    for (;;) {
      std::size_t c = 0;
      if (pop_front(w, &c)) {
        execute(w, c);
        ++out.chunks;
        continue;
      }
      if (!steal_some(w)) break;
      ++out.steals;
    }
    out.cpu_s = mprt::thread_cpu_seconds() - cpu0;
    return out;
  }

  void execute(unsigned w, std::size_t c) {
    if (failed_.load(std::memory_order_relaxed)) return;  // drain, don't run
    try {
      (*body_)(w, c);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }

  bool pop_front(unsigned w, std::size_t* c) {
    Queue& q = queues_[w];
    std::lock_guard<std::mutex> lk(q.m);
    if (q.lo >= q.hi) return false;
    *c = q.lo++;
    return true;
  }

  /// Steals the back half of the first non-empty victim deque into w's
  /// own deque (empty by construction: only its owner refills it, and the
  /// owner steals only after its own pop failed).  Two-phase — victim
  /// lock, then own lock — so no two locks are ever held together.
  bool steal_some(unsigned w) {
    for (unsigned i = 1; i < threads_; ++i) {
      const unsigned v = (w + i) % threads_;
      std::size_t lo = 0;
      std::size_t hi = 0;
      {
        Queue& q = queues_[v];
        std::lock_guard<std::mutex> lk(q.m);
        const std::size_t n = q.hi - q.lo;
        if (n == 0) continue;
        const std::size_t take = (n + 1) / 2;
        lo = q.hi - take;
        hi = q.hi;
        q.hi = lo;
      }
      Queue& mine = queues_[w];
      std::lock_guard<std::mutex> lk(mine.m);
      mine.lo = lo;
      mine.hi = hi;
      return true;
    }
    return false;
  }

  const unsigned threads_;
  std::vector<Queue> queues_;  // one per worker, never resized
  std::vector<std::thread> workers_;

  std::mutex mu_;  // job handoff + completion + section totals
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  unsigned done_count_ = 0;
  bool shutdown_ = false;
  const ChunkBody* body_ = nullptr;
  std::exception_ptr error_;
  std::atomic<bool> failed_{false};
  std::uint64_t chunks_executed_ = 0;
  std::uint64_t steals_ = 0;
  double cpu_s_ = 0.0;
};

}  // namespace rsmpi::par
