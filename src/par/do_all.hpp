// par::do_all — chunked parallel-for over the calling rank's worker pool.
//
// The Galois-style do_all(range, body, steal=true) entry point: indices
// are grouped into fixed-size chunks, chunks are spread over the pool's
// deques, and idle workers steal.  Chunk boundaries are a pure function
// of (extent, grain) — they never depend on the pool width or on which
// worker ran what — which is the foundation of the determinism argument
// for reductions built on top (see docs/parallel_local.md): anything
// keyed by *chunk index* is reproducible even though the worker-to-chunk
// assignment is not.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>

#include "par/pool.hpp"

namespace rsmpi::par {

/// Elements per chunk when RSMPI_LOCAL_GRAIN is unset.  Large enough
/// that per-chunk costs (one deque pop, one operator clone + combine in
/// the reduction layers) are noise against 4096 accum calls; small
/// enough to load-balance skewed bodies.
inline constexpr std::size_t kDefaultGrain = 4096;

/// RSMPI_LOCAL_GRAIN: elements per chunk for parallel local sections.
/// Unset, empty, or unparsable means kDefaultGrain; minimum 1.
inline std::size_t grain_from_env() {
  const char* raw = std::getenv("RSMPI_LOCAL_GRAIN");
  if (raw == nullptr || *raw == '\0') return kDefaultGrain;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || v < 1) return kDefaultGrain;
  return static_cast<std::size_t>(v);
}

/// Number of chunks covering [0, extent) at the given grain; chunk c is
/// [c*grain, min(extent, (c+1)*grain)).
[[nodiscard]] inline std::size_t chunk_count(std::size_t extent,
                                             std::size_t grain) {
  if (extent == 0) return 0;
  const std::size_t g = grain == 0 ? 1 : grain;
  return (extent + g - 1) / g;
}

/// Runs body(i) exactly once for every i in [0, extent), in parallel over
/// the calling thread's worker pool (serial when RSMPI_LOCAL_THREADS is
/// unset).  body must be safe to invoke concurrently for distinct
/// indices; there is no cross-index ordering.  grain 0 means
/// grain_from_env().  Returns the section's RunStats.
template <typename Body>
RunStats do_all(std::size_t extent, Body&& body, std::size_t grain = 0) {
  const std::size_t g = grain == 0 ? grain_from_env() : grain;
  const std::size_t nchunks = chunk_count(extent, g);
  return WorkerPool::current().run_chunks(
      nchunks, [&](unsigned, std::size_t c) {
        const std::size_t lo = c * g;
        const std::size_t hi = std::min(extent, lo + g);
        for (std::size_t i = lo; i < hi; ++i) body(i);
      });
}

}  // namespace rsmpi::par
