// par::Reducible — per-chunk operator states for one parallel reduction.
//
// The deterministic half of the work-stealing accumulate: every *chunk*
// gets its own identity clone of the operator prototype, a worker folds
// the chunk's elements into that clone, and merge_into combines the
// clones into the target in ascending chunk order.  Because the chunk ->
// state mapping and the merge order are both functions of chunk indices
// only, the final state is independent of pool width and of the stealing
// schedule; for operators whose combine is the exact homomorphism of
// their accum (the contract the cross-rank combine phase already relies
// on) it is bit-identical to the serial loop.  The alternative — one
// state per *worker*, Galois GAccumulator style — was rejected: it makes
// floating-point results depend on which worker happened to run which
// chunk.
//
// Storage is one vector ("lane") per worker, so workers never touch each
// other's lanes and no locking is needed while accumulating; the caller
// reads the lanes only after the pool's completion barrier.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "par/pool.hpp"

namespace rsmpi::par {

template <typename Op>
class Reducible {
 public:
  /// `prototype` must stay alive (and unmodified) for the Reducible's
  /// lifetime and must be in identity state — it is copied once per
  /// chunk, which is why operator prototypes must be cheap to clone
  /// (docs/operators.md).  `chunk_hint` pre-sizes the lanes.
  Reducible(const Op& prototype, unsigned workers, std::size_t chunk_hint = 0)
      : prototype_(&prototype), lanes_(workers == 0 ? 1 : workers) {
    if (chunk_hint != 0) {
      const std::size_t per = chunk_hint / lanes_.size() + 1;
      for (auto& lane : lanes_) lane.reserve(per);
    }
  }

  /// A fresh identity clone owned by `worker`'s lane, tagged with the
  /// chunk index it will cover.  The reference is valid until the same
  /// worker's next fresh_state call (lane growth relocates earlier
  /// entries) — fold the chunk immediately, then drop it.
  Op& fresh_state(unsigned worker, std::size_t chunk) {
    auto& lane = lanes_[worker];
    lane.emplace_back(chunk, *prototype_);
    return lane.back().second;
  }

  /// Combines every chunk state into `into` in ascending chunk order:
  /// into = into (+) s_0 (+) s_1 (+) ... — exactly the serial fold's
  /// association for exact operators, regardless of which worker
  /// produced which state.  Call only after the pool section completed.
  /// Returns the number of states merged.
  std::size_t merge_into(Op& into) {
    std::vector<std::pair<std::size_t, Op*>> order;
    std::size_t total = 0;
    for (auto& lane : lanes_) total += lane.size();
    order.reserve(total);
    for (auto& lane : lanes_) {
      for (auto& [chunk, state] : lane) order.emplace_back(chunk, &state);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [chunk, state] : order) into.combine(*state);
    return order.size();
  }

 private:
  const Op* prototype_;
  std::vector<std::vector<std::pair<std::size_t, Op>>> lanes_;
};

}  // namespace rsmpi::par
