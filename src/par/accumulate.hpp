// Parallel accumulate bridge: work-stealing chunk execution (par/pool),
// per-chunk operator states merged in index order (par/reducible), the
// operator's pre/post hooks fired exactly once on the true first/last
// element, and the section charged to the rank's virtual clock through
// CostModel::parallel_section_seconds.  This is the single integration
// point under rs::detail::accumulate_local and svc::Stream::fold, so
// every reduction/scan entry point gets the pool for free.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <type_traits>

#include "mprt/comm.hpp"
#include "par/do_all.hpp"
#include "par/pool.hpp"
#include "par/reducible.hpp"
#include "rs/op_concepts.hpp"

namespace rsmpi::par {

/// RSMPI_LOCAL_CHUNKED=1 forces the canonical chunked fold even when the
/// pool is one thread wide, so a single-threaded run is byte-identical to
/// any pool width at the same (extent, grain) — the knob the
/// reproducibility suite (tests/rs/reproducibility_test.cpp) pins when
/// comparing floating-point operator states across RSMPI_LOCAL_THREADS.
/// Off by default: the serial fallback loop is cheaper and matches the
/// pre-pool bit pattern.
inline bool canonical_chunked_from_env() {
  const char* raw = std::getenv("RSMPI_LOCAL_CHUNKED");
  return raw != nullptr && *raw != '\0' && *raw != '0';
}

/// Accumulates `n` indexed elements into `op`, ending exactly as if the
/// serial protocol
///
///   pre_accum(get(0)); for i in [0, n): accum(get(i)); post_accum(get(n-1));
///
/// had run on the rank thread.  `get(i)` produces element i (by value or
/// reference) and must be safe to call concurrently for distinct i; with
/// the pool active it runs on worker threads.  `prototype` supplies
/// identity clones for the per-chunk states and is snapshotted before
/// pre_accum can fire — callers may pass `op` itself when it is still in
/// identity state (every rs:: entry point does).
///
/// `fire_pre` / `fire_post` let callers that feed one logical input as
/// several batches (svc::Stream::fold) fire the boundary hooks on the
/// true global first/last element instead of each batch's.
///
/// Serial fallback — bit-identical to the pre-pool loop — whenever the
/// pool is one thread wide (the RSMPI_LOCAL_THREADS default) or the
/// extent does not exceed one grain.  Parallel sections are charged to
/// the virtual clock as summed worker CPU over min(cores_per_rank,
/// pool width) model cores, and counted via Comm::note_parallel_section.
template <typename Op, typename Get>
void accumulate_indexed(mprt::Comm& comm, Op& op, const Op& prototype,
                        std::size_t n, Get&& get, bool fire_pre = true,
                        bool fire_post = true) {
  using In = std::decay_t<decltype(get(std::size_t{0}))>;
  if (n == 0) return;
  WorkerPool& pool = WorkerPool::current();
  const std::size_t grain = grain_from_env();
  const std::size_t nchunks = chunk_count(n, grain);
  // nchunks <= 1 stays serial at every pool width (one chunk folds the
  // same either way), so the single-chunk case is width-independent too.
  if (nchunks <= 1 || (pool.threads() <= 1 && !canonical_chunked_from_env())) {
    auto timer = comm.compute_section();
    if constexpr (rs::HasPreAccum<Op, In>) {
      if (fire_pre) op.pre_accum(get(0));
    }
    for (std::size_t i = 0; i < n; ++i) op.accum(get(i));
    if constexpr (rs::HasPostAccum<Op, In>) {
      if (fire_post) op.post_accum(get(n - 1));
    }
    return;
  }
  if (pool.threads() <= 1) {
    // Canonical chunked fold on the rank thread (RSMPI_LOCAL_CHUNKED):
    // identical chunk boundaries, identity clones, and ascending-chunk
    // merge as the pool path below, so the bits match any pool width.
    const Op identity(prototype);
    auto timer = comm.compute_section();
    if constexpr (rs::HasPreAccum<Op, In>) {
      if (fire_pre) op.pre_accum(get(0));
    }
    for (std::size_t chunk = 0; chunk < nchunks; ++chunk) {
      const std::size_t lo = chunk * grain;
      const std::size_t hi = std::min(n, lo + grain);
      Op state(identity);
      for (std::size_t i = lo; i < hi; ++i) state.accum(get(i));
      op.combine(state);
    }
    if constexpr (rs::HasPostAccum<Op, In>) {
      if (fire_post) op.post_accum(get(n - 1));
    }
    return;
  }
  // Snapshot the identity before pre_accum may mutate `op` — the chunk
  // states must clone the *unhooked* identity, or every chunk would
  // inherit chunk 0's boundary observation.
  const Op identity(prototype);
  if constexpr (rs::HasPreAccum<Op, In>) {
    if (fire_pre) {
      auto timer = comm.compute_section();
      op.pre_accum(get(0));
    }
  }
  Reducible<Op> partials(identity, pool.threads(), nchunks);
  const RunStats stats =
      pool.run_chunks(nchunks, [&](unsigned worker, std::size_t chunk) {
        const std::size_t lo = chunk * grain;
        const std::size_t hi = std::min(n, lo + grain);
        Op& state = partials.fresh_state(worker, chunk);
        for (std::size_t i = lo; i < hi; ++i) state.accum(get(i));
      });
  {
    // The in-order merge and the post hook run on the rank thread and
    // are charged as ordinary serial compute.
    auto timer = comm.compute_section();
    partials.merge_into(op);
    if constexpr (rs::HasPostAccum<Op, In>) {
      if (fire_post) op.post_accum(get(n - 1));
    }
  }
  comm.clock().advance(comm.cost_model().parallel_section_seconds(
      stats.worker_cpu_s, stats.threads));
  comm.note_parallel_section(stats.threads, stats.chunks, stats.steals);
}

}  // namespace rsmpi::par
