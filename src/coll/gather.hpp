// Gather and allgather of variable-length typed buffers.
#pragma once

#include <span>
#include <vector>

#include "coll/bcast.hpp"
#include "mprt/comm.hpp"

namespace rsmpi::coll {

/// Gathers each rank's buffer to `root`, concatenated in rank order.  On
/// non-root ranks the result is empty.  Buffers may have different lengths
/// per rank (gatherv semantics).
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> gather(mprt::Comm& comm, int root,
                      std::span<const T> local) {
  const int p = comm.size();
  const int tag = comm.next_collective_tag();
  if (comm.rank() != root) {
    comm.send_span(root, tag, local);
    return {};
  }
  std::vector<T> out;
  for (int r = 0; r < p; ++r) {
    if (r == root) {
      out.insert(out.end(), local.begin(), local.end());
    } else {
      const auto part = comm.recv_vector<T>(r, tag);
      out.insert(out.end(), part.begin(), part.end());
    }
  }
  return out;
}

/// Allgather: gather to rank 0, then broadcast the concatenation.  Returns
/// the rank-ordered concatenation of all local buffers on every rank.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> allgather(mprt::Comm& comm, std::span<const T> local) {
  std::vector<T> all = gather(comm, 0, local);
  std::vector<std::byte> raw;
  if (comm.rank() == 0) {
    raw.assign(reinterpret_cast<const std::byte*>(all.data()),
               reinterpret_cast<const std::byte*>(all.data()) + all.size() *
                                                                    sizeof(T));
  }
  raw = bcast_bytes(comm, 0, raw);
  std::vector<T> out(raw.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

/// Allgather of one scalar per rank; result[r] is rank r's value.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> allgather_value(mprt::Comm& comm, const T& value) {
  return allgather<T>(comm, std::span<const T>(&value, 1));
}

}  // namespace rsmpi::coll
