#include "coll/alltoall.hpp"

#include "util/error.hpp"

namespace rsmpi::coll::detail {

void alltoallv_bytes(mprt::Comm& comm,
                     const std::vector<std::vector<std::byte>>& send,
                     std::vector<std::vector<std::byte>>& recv) {
  const int p = comm.size();
  const int rank = comm.rank();
  if (static_cast<int>(send.size()) != p) {
    throw ArgumentError("alltoallv: need exactly one send block per rank");
  }
  const int tag = comm.next_collective_tag();
  recv.assign(static_cast<std::size_t>(p), {});
  recv[static_cast<std::size_t>(rank)] = send[static_cast<std::size_t>(rank)];

  // Shifted pairwise exchange: in round k, send to rank+k and receive from
  // rank-k.  Sends are buffered, so each round is deadlock-free without
  // pairing constraints, and the schedule spreads load across partners.
  for (int k = 1; k < p; ++k) {
    const int to = (rank + k) % p;
    const int from = (rank - k + p) % p;
    comm.send_bytes(to, tag, send[static_cast<std::size_t>(to)]);
    recv[static_cast<std::size_t>(from)] =
        comm.recv_message(from, tag).take_payload();
  }
}

}  // namespace rsmpi::coll::detail
