// LOCAL_REDUCE / LOCAL_ALLREDUCE: the paper's local-view reduction
// abstraction (§2).  Each rank contributes one already-accumulated value
// buffer; these routines run the combine phase of Figure 1 across ranks.
//
// Algorithm selection follows §1's discussion of operator properties:
//   * non-commutative (but associative) operators use an order-preserving
//     binomial tree, in which every partial result covers a contiguous
//     rank interval and combines always append on the right;
//   * commutative operators may also use a k-ary combine-as-available tree
//     (wildcard receives), which exploits a branching factor greater than
//     two by folding in whichever child's contribution lands first;
//   * a linear chain is provided as the baseline the log-tree variants are
//     measured against.
#pragma once

#include <optional>
#include <vector>

#include "coll/bcast.hpp"
#include "coll/buffer_op.hpp"
#include "mprt/comm.hpp"
#include "mprt/topology.hpp"
#include "util/error.hpp"

namespace rsmpi::coll {

enum class ReduceAlgo {
  kAuto,           ///< binomial if non-commutative, k-ary unordered otherwise
  kLinear,         ///< rank 0 folds contributions in rank order
  kBinomial,       ///< order-preserving log tree (safe for non-commutative)
  kUnorderedTree,  ///< k-ary combine-as-available (requires commutative)
};

namespace detail {

inline constexpr int kUnorderedArity = 4;

template <typename T, LocalViewOp<T> Op>
void combine_received(const Op& op, std::span<T> inout, bool inout_is_left,
                      std::span<const T> received) {
  if (received.size() != inout.size()) {
    throw ProtocolError("local_reduce: buffer extent differs across ranks");
  }
  if (inout_is_left) {
    op.combine(inout, received);
  } else {
    // result = received (+) inout; evaluate into a temp, then copy back.
    std::vector<T> tmp(received.begin(), received.end());
    op.combine(std::span<T>(tmp),
               std::span<const T>(inout.data(), inout.size()));
    std::copy(tmp.begin(), tmp.end(), inout.begin());
  }
}

/// Order-preserving binomial tree to virtual rank 0 (= real rank `root`
/// after rotation).  Only valid for non-commutative ops when root == 0,
/// because rotation breaks rank-order contiguity; callers enforce this.
template <typename T, LocalViewOp<T> Op>
void reduce_binomial(mprt::Comm& comm, int root, std::span<T> values,
                     const Op& op) {
  const int p = comm.size();
  const int tag = comm.next_collective_tag();
  const int vrank = (comm.rank() - root + p) % p;
  for (const auto& step : mprt::topology::binomial_reduce_schedule(vrank, p)) {
    const int partner = (step.partner + root) % p;
    if (step.role == mprt::topology::BinomialStep::Role::kSend) {
      comm.send_span(partner, tag, std::span<const T>(values));
    } else {
      std::vector<T> received(values.size());
      comm.recv_span<T>(partner, tag, received);
      // Receiver is the lower virtual rank: its block is on the left.
      combine_received(op, values, /*inout_is_left=*/true,
                       std::span<const T>(received));
    }
  }
}

/// Linear chain: every rank sends to root, which folds in rank order.
template <typename T, LocalViewOp<T> Op>
void reduce_linear(mprt::Comm& comm, int root, std::span<T> values,
                   const Op& op) {
  const int p = comm.size();
  const int tag = comm.next_collective_tag();
  if (comm.rank() != root) {
    comm.send_span(root, tag, std::span<const T>(values));
    return;
  }
  // Fold left-to-right over rank order; the root's own block sits at
  // position `root`, so contributions below it arrive on the left.
  std::vector<T> acc;
  bool have_acc = false;
  std::vector<T> received(values.size());
  for (int r = 0; r < p; ++r) {
    std::span<const T> block;
    if (r == root) {
      block = std::span<const T>(values.data(), values.size());
    } else {
      comm.recv_span<T>(r, tag, received);
      block = std::span<const T>(received);
    }
    if (!have_acc) {
      acc.assign(block.begin(), block.end());
      have_acc = true;
    } else {
      op.combine(std::span<T>(acc), block);
    }
  }
  std::copy(acc.begin(), acc.end(), values.begin());
}

/// k-ary combine-as-available tree rooted at `root` (after rotation).
/// Children of virtual node i are k*i+1 .. k*i+k; a parent folds child
/// contributions in *arrival* order, which is only correct for commutative
/// operators — exactly the optimization §1 describes for branching factors
/// greater than two.
template <typename T, LocalViewOp<T> Op>
void reduce_unordered(mprt::Comm& comm, int root, std::span<T> values,
                      const Op& op, int arity) {
  const int p = comm.size();
  const int tag = comm.next_collective_tag();
  const int vrank = (comm.rank() - root + p) % p;

  int num_children = 0;
  for (int c = arity * vrank + 1; c <= arity * vrank + arity && c < p; ++c) {
    ++num_children;
  }
  std::vector<T> received(values.size());
  for (int i = 0; i < num_children; ++i) {
    comm.recv_span<T>(mprt::kAnySource, tag, received);
    op.combine(values, std::span<const T>(received));
  }
  if (vrank != 0) {
    const int vparent = (vrank - 1) / arity;
    comm.send_span((vparent + root) % p, tag, std::span<const T>(values));
  }
}

}  // namespace detail

/// LOCAL_REDUCE: combines each rank's buffer across ranks; the result is
/// valid in `values` on `root` only (other ranks' buffers are clobbered
/// with partial results).  Non-commutative operators are handled with an
/// order-preserving schedule regardless of the requested algorithm.
/// `unordered_arity` is the branching factor of the combine-as-available
/// tree (§1: factors greater than two let commutative reductions fold
/// whichever partial results arrive first).
template <typename T, LocalViewOp<T> Op>
void local_reduce(mprt::Comm& comm, int root, std::span<T> values,
                  const Op& op, ReduceAlgo algo = ReduceAlgo::kAuto,
                  int unordered_arity = detail::kUnorderedArity) {
  const int p = comm.size();
  if (root < 0 || root >= p) {
    throw ArgumentError("local_reduce: root rank out of range");
  }
  if (p == 1) return;

  const bool commutative = is_commutative<Op>();
  if (!commutative && algo == ReduceAlgo::kUnorderedTree) {
    throw ArgumentError(
        "local_reduce: combine-as-available schedule requires a commutative "
        "operator");
  }

  // For non-commutative operators with a nonzero root, rotating the tree
  // would destroy rank-order contiguity; instead reduce to rank 0 in order
  // and forward the finished result to the requested root.
  const bool forward_from_zero =
      !commutative && root != 0 &&
      (algo == ReduceAlgo::kBinomial || algo == ReduceAlgo::kAuto);
  const int tree_root = forward_from_zero ? 0 : root;

  if (unordered_arity < 2) {
    throw ArgumentError("local_reduce: unordered arity must be >= 2");
  }
  switch (algo) {
    case ReduceAlgo::kLinear:
      detail::reduce_linear(comm, tree_root, values, op);
      break;
    case ReduceAlgo::kBinomial:
      detail::reduce_binomial(comm, tree_root, values, op);
      break;
    case ReduceAlgo::kUnorderedTree:
      detail::reduce_unordered(comm, tree_root, values, op, unordered_arity);
      break;
    case ReduceAlgo::kAuto:
      if (commutative) {
        detail::reduce_unordered(comm, tree_root, values, op,
                                 unordered_arity);
      } else {
        detail::reduce_binomial(comm, tree_root, values, op);
      }
      break;
  }

  if (forward_from_zero) {
    const int tag = comm.next_collective_tag();
    if (comm.rank() == 0) {
      comm.send_span(root, tag, std::span<const T>(values));
    } else if (comm.rank() == root) {
      comm.recv_span<T>(0, tag, values);
    }
  }
}

/// LOCAL_ALLREDUCE: as local_reduce but the result is valid on every rank.
/// Implemented as reduce-to-root plus binomial broadcast, which preserves
/// operand order for non-commutative operators.
template <typename T, LocalViewOp<T> Op>
void local_allreduce(mprt::Comm& comm, std::span<T> values, const Op& op,
                     ReduceAlgo algo = ReduceAlgo::kAuto,
                     int unordered_arity = detail::kUnorderedArity) {
  local_reduce(comm, 0, values, op, algo, unordered_arity);
  bcast_span(comm, 0, values);
}

// -- Scalar convenience wrappers over binary operators ----------------------

/// Reduces one value per rank with a scalar binary operator; result valid
/// on root (other ranks receive their partial result).
template <typename T, BinaryOperator<T> BinOp>
T local_reduce_value(mprt::Comm& comm, int root, T value, BinOp,
                     ReduceAlgo algo = ReduceAlgo::kAuto) {
  ElementwiseOp<T, BinOp> op;
  local_reduce(comm, root, std::span<T>(&value, 1), op, algo);
  return value;
}

/// Allreduce of one value per rank with a scalar binary operator.
template <typename T, BinaryOperator<T> BinOp>
T local_allreduce_value(mprt::Comm& comm, T value, BinOp,
                        ReduceAlgo algo = ReduceAlgo::kAuto) {
  ElementwiseOp<T, BinOp> op;
  local_allreduce(comm, std::span<T>(&value, 1), op, algo);
  return value;
}

}  // namespace rsmpi::coll
