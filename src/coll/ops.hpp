// The twelve built-in reduction operators MPI provides (paper §2.2):
// maximum, minimum, sum, product, logical and/or/xor, bit-wise and/or/xor,
// and maximum/minimum value-with-location.
//
// Each operator is a stateless function object with
//   * `static constexpr bool commutative` — drives algorithm selection, and
//   * `static T identity()` — MPI itself does not require an identity (the
//     first element of its exclusive scan is undefined); we follow the
//     paper's local-view abstraction, which does require one so exclusive
//     scans are fully defined (§2).
#pragma once

#include <concepts>
#include <functional>
#include <limits>
#include <type_traits>

namespace rsmpi::coll {

/// A binary operator usable by the local-view collectives: callable on two
/// values of T plus an identity element.
template <typename Op, typename T>
concept BinaryOperator = requires(const Op op, const T a, const T b) {
  { op(a, b) } -> std::convertible_to<T>;
  { Op::identity() } -> std::convertible_to<T>;
};

/// Reads Op::commutative if present; the paper's default when the trait is
/// left unspecified is `true` (§3.1.4).
template <typename Op>
[[nodiscard]] constexpr bool is_commutative() {
  if constexpr (requires { Op::commutative; }) {
    return Op::commutative;
  } else {
    return true;
  }
}

template <typename T>
struct Max {
  static constexpr bool commutative = true;
  static constexpr T identity() { return std::numeric_limits<T>::lowest(); }
  constexpr T operator()(const T& a, const T& b) const { return a > b ? a : b; }
};

template <typename T>
struct Min {
  static constexpr bool commutative = true;
  static constexpr T identity() { return std::numeric_limits<T>::max(); }
  constexpr T operator()(const T& a, const T& b) const { return a < b ? a : b; }
};

template <typename T>
struct Sum {
  static constexpr bool commutative = true;
  static constexpr T identity() { return T{}; }
  constexpr T operator()(const T& a, const T& b) const { return a + b; }
};

template <typename T>
struct Prod {
  static constexpr bool commutative = true;
  static constexpr T identity() { return T{1}; }
  constexpr T operator()(const T& a, const T& b) const { return a * b; }
};

template <typename T = bool>
struct LogicalAnd {
  static constexpr bool commutative = true;
  static constexpr T identity() { return T(true); }
  constexpr T operator()(const T& a, const T& b) const { return a && b; }
};

template <typename T = bool>
struct LogicalOr {
  static constexpr bool commutative = true;
  static constexpr T identity() { return T(false); }
  constexpr T operator()(const T& a, const T& b) const { return a || b; }
};

template <typename T = bool>
struct LogicalXor {
  static constexpr bool commutative = true;
  static constexpr T identity() { return T(false); }
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(static_cast<bool>(a) != static_cast<bool>(b));
  }
};

template <std::integral T>
struct BitAnd {
  static constexpr bool commutative = true;
  static constexpr T identity() { return static_cast<T>(~T{0}); }
  constexpr T operator()(const T& a, const T& b) const { return a & b; }
};

template <std::integral T>
struct BitOr {
  static constexpr bool commutative = true;
  static constexpr T identity() { return T{0}; }
  constexpr T operator()(const T& a, const T& b) const { return a | b; }
};

template <std::integral T>
struct BitXor {
  static constexpr bool commutative = true;
  static constexpr T identity() { return T{0}; }
  constexpr T operator()(const T& a, const T& b) const { return a ^ b; }
};

/// A value paired with its location, the element type of MaxLoc/MinLoc.
template <typename T, typename Index = long>
struct ValueLoc {
  T value;
  Index index;

  friend constexpr bool operator==(const ValueLoc&, const ValueLoc&) = default;
};

/// MPI_MAXLOC: maximum value; ties resolved to the smallest index.
template <typename T, typename Index = long>
struct MaxLoc {
  static constexpr bool commutative = true;
  static constexpr ValueLoc<T, Index> identity() {
    return {std::numeric_limits<T>::lowest(),
            std::numeric_limits<Index>::max()};
  }
  constexpr ValueLoc<T, Index> operator()(const ValueLoc<T, Index>& a,
                                          const ValueLoc<T, Index>& b) const {
    if (a.value > b.value) return a;
    if (b.value > a.value) return b;
    return a.index <= b.index ? a : b;
  }
};

/// MPI_MINLOC: minimum value; ties resolved to the smallest index.
template <typename T, typename Index = long>
struct MinLoc {
  static constexpr bool commutative = true;
  static constexpr ValueLoc<T, Index> identity() {
    return {std::numeric_limits<T>::max(), std::numeric_limits<Index>::max()};
  }
  constexpr ValueLoc<T, Index> operator()(const ValueLoc<T, Index>& a,
                                          const ValueLoc<T, Index>& b) const {
    if (a.value < b.value) return a;
    if (b.value < a.value) return b;
    return a.index <= b.index ? a : b;
  }
};

}  // namespace rsmpi::coll
