// Two-level (topology-aware) allreduce over operator states (ISSUE 10).
//
// Flat schedules treat all rank pairs as equal, but a cluster of SMP nodes
// is not flat: same-node hops are an order of magnitude cheaper than the
// fabric (mprt::CostModel's two-tier parameters).  This schedule exploits
// the contiguous NodeMap (mprt/topology.hpp):
//
//   phase 1  intra-node binomial reduce to the node leader (cheap hops),
//   phase 2  allreduce among the leaders only (the expensive tier moves
//            p/rpn states instead of p), and
//   phase 3  intra-node binomial broadcast of the finished state.
//
// The leader tier picks among a segmented ring (bandwidth-optimal), a
// chunked Rabenseifner (bandwidth-optimal at log latency; the usual winner
// once the leader count is large), and an order-preserving whole-state
// binomial reduce+bcast, using the *same* ScheduleCost comparison the
// autotuner's closed form evaluates — so the model and the implementation
// never disagree about which variant ran.  The segmented options fold
// chunks out of rank order and so require commutativity; the binomial is
// the only leader tier noncommutative operators may use.
//
// Noncommutative safety: phase 1 preserves rank order within each node
// (binomial_reduce_schedule's contiguous-interval invariant), the ordered
// leader tier combines whole node intervals in node order, and node
// intervals are contiguous in global rank order — so the full reduction is
// a bracketing of r_0 (+) r_1 (+) ... (+) r_{p-1} in order.  The bracketing
// differs from the flat schedules' in general, so for operators verified
// bit-exactly against a specific fold tree the hierarchical schedule is
// only ever *forced* (RSMPI_SCHEDULE=hierarchical), never autotuned.
#pragma once

#include <cstddef>
#include <utility>

#include "coll/bcast.hpp"
#include "coll/ring.hpp"
#include "mprt/comm.hpp"
#include "mprt/cost_model.hpp"
#include "mprt/topology.hpp"
#include "rs/op_concepts.hpp"

namespace rsmpi::rs::detail {

/// Segmented ring allreduce over the node leaders: the ring schedule of
/// coll/ring.hpp with the rank set {leader_of(0), ..., leader_of(n-1)}.
/// Called by leaders only; requires commutativity (chunks fold in ring
/// order).
template <Combinable Op>
  requires PartitionableState<Op>
void leader_ring_allreduce(mprt::Comm& comm,
                           const mprt::topology::NodeMap& map, int tag,
                           Op& op) {
  const int nn = map.num_nodes();
  if (nn == 1) return;
  const int node = map.node_of(comm.rank());
  const std::size_t n = op.part_extent();
  const int next = map.leader_of((node + 1) % nn);
  const int prev = map.leader_of((node + nn - 1) % nn);
  const auto bounds = [&](int c) {
    const int cc = ((c % nn) + nn) % nn;
    return std::pair{coll::detail::chunk_start(n, nn, cc),
                     coll::detail::chunk_start(n, nn, cc + 1)};
  };

  for (int s = 0; s < nn - 1; ++s) {
    const auto [slo, shi] = bounds(node - s);
    send_state_part(comm, next, tag, op, slo, shi);
    const auto [rlo, rhi] = bounds(node - s - 1);
    auto msg = comm.recv_message(prev, tag);
    combine_part_received(comm, op, rlo, rhi, std::move(msg));
  }
  for (int s = 0; s < nn - 1; ++s) {
    const auto [slo, shi] = bounds(node + 1 - s);
    send_state_part(comm, next, tag, op, slo, shi);
    const auto [rlo, rhi] = bounds(node - s);
    auto msg = comm.recv_message(prev, tag);
    load_part_received(comm, op, rlo, rhi, std::move(msg));
  }
}

/// Chunked Rabenseifner allreduce over the node leaders: the schedule of
/// coll/ring.hpp's state_allreduce_rabenseifner with node indices as the
/// virtual ranks and map.leader_of translating them back to globals.
/// Non-power-of-two node counts fold odd nodes into even neighbours
/// (whole state) first and hand them the result last.  Called by leaders
/// only; requires commutativity.
template <Combinable Op>
  requires PartitionableState<Op>
void leader_rabenseifner_allreduce(mprt::Comm& comm,
                                   const mprt::topology::NodeMap& map, int tag,
                                   Op& op, const Op& prototype) {
  const int nn = map.num_nodes();
  if (nn == 1) return;
  const int node = map.node_of(comm.rank());
  const std::size_t n = op.part_extent();
  const int pof2 = 1 << mprt::topology::floor_log2(nn);
  const int rem = nn - pof2;

  int vnode;  // node index within the power-of-two core, or folded away
  if (node < 2 * rem) {
    if (node % 2 == 1) {
      send_state(comm, map.leader_of(node - 1), tag, op);
      auto msg = comm.recv_message(map.leader_of(node - 1), tag);
      {
        auto timer = comm.compute_section();
        load_op_into(op, msg.payload());
      }
      comm.recycle_buffer(msg.release_storage());
      return;
    }
    auto msg = comm.recv_message(map.leader_of(node + 1), tag);
    combine_received_state(comm, op, prototype, std::move(msg));
    vnode = node / 2;
  } else {
    vnode = node - rem;
  }
  const auto partner_leader = [&](int v) {
    return map.leader_of(v < rem ? 2 * v : v + rem);
  };
  const auto start = [&](int c) { return coll::detail::chunk_start(n, pof2, c); };

  // Recursive-halving reduce-scatter over the leaders.
  int lo = 0, hi = pof2;
  for (int dist = pof2 / 2; dist >= 1; dist /= 2) {
    const int partner = vnode ^ dist;
    const int mid = (lo + hi) / 2;
    const bool keep_low = vnode < mid;
    const int send_lo = keep_low ? mid : lo;
    const int send_hi = keep_low ? hi : mid;
    const int keep_lo = keep_low ? lo : mid;
    const int keep_hi = keep_low ? mid : hi;
    send_state_part(comm, partner_leader(partner), tag, op, start(send_lo),
                    start(send_hi));
    auto msg = comm.recv_message(partner_leader(partner), tag);
    combine_part_received(comm, op, start(keep_lo), start(keep_hi),
                          std::move(msg));
    lo = keep_lo;
    hi = keep_hi;
  }

  // Recursive-doubling allgather.
  for (int dist = 1; dist < pof2; dist *= 2) {
    const int partner = vnode ^ dist;
    send_state_part(comm, partner_leader(partner), tag, op, start(lo),
                    start(hi));
    const int block = 2 * dist;
    const int base = (vnode / block) * block;
    const int plo = (lo == base) ? base + dist : base;
    const int phi = plo + dist;
    auto msg = comm.recv_message(partner_leader(partner), tag);
    load_part_received(comm, op, start(plo), start(phi), std::move(msg));
    lo = base;
    hi = base + block;
  }

  if (node < 2 * rem) {
    send_state(comm, map.leader_of(node + 1), tag, op);
  }
}

/// Order-preserving whole-state allreduce over the node leaders: binomial
/// reduce to node 0's leader (combining node intervals in node order, so
/// noncommutative operators see contiguous global-rank intervals) followed
/// by a binomial broadcast back.  Called by leaders only.
template <Combinable Op>
void leader_binomial_allreduce(mprt::Comm& comm,
                               const mprt::topology::NodeMap& map, int tag,
                               Op& op, const Op& prototype) {
  const int nn = map.num_nodes();
  if (nn == 1) return;
  const int node = map.node_of(comm.rank());
  using mprt::topology::BinomialStep;
  for (const auto& step :
       mprt::topology::binomial_reduce_schedule(node, nn)) {
    if (step.role == BinomialStep::Role::kSend) {
      send_state(comm, map.leader_of(step.partner), tag, op);
    } else {
      auto msg = comm.recv_message(map.leader_of(step.partner), tag);
      combine_received_state(comm, op, prototype, std::move(msg));
    }
  }
  for (const auto& step :
       mprt::topology::binomial_bcast_schedule(node, nn)) {
    if (step.role == BinomialStep::Role::kSend) {
      send_state(comm, map.leader_of(step.partner), tag, op);
    } else {
      auto msg = comm.recv_message(map.leader_of(step.partner), tag);
      {
        auto timer = comm.compute_section();
        load_op_into(op, msg.payload());
      }
      comm.recycle_buffer(msg.release_storage());
    }
  }
}

/// Two-level allreduce (see file comment).  Legal for noncommutative
/// operators — pass `commutative = false` to pin the ordered leader tier;
/// with `commutative = true` the leader tier takes the cost model's pick
/// between the segmented ring and the ordered binomial.
template <Combinable Op>
void state_allreduce_hierarchical(mprt::Comm& comm, Op& op,
                                  const Op& prototype,
                                  bool commutative = op_commutative<Op>()) {
  const int p = comm.size();
  if (p == 1) return;
  const mprt::CostModel& model = comm.cost_model();
  const int rpn = model.two_tier() ? model.ranks_per_node : 1;
  const mprt::topology::NodeMap map(p, rpn);

  // Every rank reserves the same 3-tag block SPMD-style, whether or not it
  // participates in a given phase — tag sequences must never diverge
  // across ranks.
  const int tag0 = comm.reserve_collective_tags(3);
  const int tag_reduce = tag0;
  const int tag_leader = tag0 + 1;
  const int tag_bcast = tag0 + 2;

  const int rank = comm.rank();
  const int node = map.node_of(rank);
  const int leader = map.leader_of(node);
  const int lrank = map.local_rank(rank);
  const int lsize = map.node_size(node);
  using mprt::topology::BinomialStep;

  // Phase 1: intra-node binomial reduce to the leader, rank order
  // preserved (partner indices are node-local, offset back to globals).
  for (const auto& step :
       mprt::topology::binomial_reduce_schedule(lrank, lsize)) {
    if (step.role == BinomialStep::Role::kSend) {
      send_state(comm, leader + step.partner, tag_reduce, op);
    } else {
      auto msg = comm.recv_message(leader + step.partner, tag_reduce);
      combine_received_state(comm, op, prototype, std::move(msg));
    }
  }

  // Phase 2: allreduce among leaders over the expensive tier, picking the
  // variant with the *same* ScheduleCost comparison the autotuner's closed
  // form minimizes, so model and implementation never disagree.
  if (lrank == 0 && map.num_nodes() > 1) {
    bool done = false;
    if constexpr (PartitionableState<Op>) {
      if (commutative) {
        using SC = mprt::ScheduleCost;
        const std::size_t bytes = part_state_bytes(op);
        const int nn = map.num_nodes();
        const double ring_t = SC::hierarchical_leader_ring(model, nn, bytes);
        const double rab_t =
            SC::hierarchical_leader_rabenseifner(model, nn, bytes);
        const double binom_t =
            SC::hierarchical_leader_binomial(model, nn, bytes);
        if (rab_t < binom_t && rab_t <= ring_t) {
          leader_rabenseifner_allreduce(comm, map, tag_leader, op, prototype);
          done = true;
        } else if (ring_t < binom_t) {
          leader_ring_allreduce(comm, map, tag_leader, op);
          done = true;
        }
      }
    }
    if (!done) {
      leader_binomial_allreduce(comm, map, tag_leader, op, prototype);
    }
  }

  // Phase 3: intra-node binomial broadcast of the finished state.
  for (const auto& step :
       mprt::topology::binomial_bcast_schedule(lrank, lsize)) {
    if (step.role == BinomialStep::Role::kSend) {
      send_state(comm, leader + step.partner, tag_bcast, op);
    } else {
      auto msg = comm.recv_message(leader + step.partner, tag_bcast);
      {
        auto timer = comm.compute_section();
        load_op_into(op, msg.payload());
      }
      comm.recycle_buffer(msg.release_storage());
    }
  }
}

}  // namespace rsmpi::rs::detail
