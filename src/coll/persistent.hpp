// Persistent-plan handles for repeated collectives (MPI's persistent
// requests, recast for operator-state allreduce/scan).
//
// A long-lived epoch loop — the streaming service in src/svc runs one per
// tenant stream — executes the *same* collective millions of times: same
// operator configuration, same communicator, same state layout.  Every
// planning decision the one-shot path makes per call is invariant across
// those calls, so it is hoisted here into a PersistentPlan made once:
//
//   * the autotuner argmin over {two-message, butterfly, Rabenseifner,
//     ring, pipelined} (invariant because part_bytes depends only on the
//     range and the prototype configuration, never on accumulated values);
//   * the segment size (RSMPI_SEGMENT_BYTES, read once);
//   * a reserved collective-tag block, re-leased each epoch so the tag
//     window is never exhausted no matter how many epochs run
//     (Comm::TagBlock; see the tag-recycling regression tests);
//   * pre-acquired pooled payload buffers sized to the serialized-state
//     layout, so the first epochs already run allocation-free.
//
// The executor funnels into the same schedule implementations as the
// one-shot dispatch (rs::detail::state_allreduce_with_schedule), so a
// cached plan is bit-identical to a freshly-planned call — the property
// tests/svc/persistent_test.cpp pins across the operator zoo.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "mprt/comm.hpp"
#include "rs/op_concepts.hpp"
#include "rs/state_exchange.hpp"

namespace rsmpi::coll {

/// Tags reserved per persistent allreduce plan: the widest epoch consumes
/// two (two-message and pipelined allreduce each run a reduce plus a
/// broadcast); the rest is headroom for schedule growth.
inline constexpr int kPersistentAllreduceTags = 4;
/// Tags per persistent scan plan (state_xscan consumes one per epoch).
inline constexpr int kPersistentScanTags = 2;

/// Buffers pre-acquired into the rank's pool at plan time.
inline constexpr int kPersistentPrimedBuffers = 4;

/// The frozen planning decisions of one persistent collective.  SPMD like
/// the collectives themselves: every member of the communicator computes
/// an identical plan from identical inputs, without communication.
struct PersistentPlan {
  rs::detail::Schedule schedule = rs::detail::Schedule::kButterfly;
  bool commutative = true;
  /// Serialized-state layout: the planned wire size of one whole state
  /// (from the partitionable hooks when available, else the serialized
  /// prototype — a lower bound for operators whose state grows).
  std::size_t state_bytes = 0;
  std::size_t segment_bytes = rs::detail::kDefaultSegmentBytes;
  mprt::Comm::TagBlock tags;
  /// Completed planned executions (epochs) through this plan.
  std::uint64_t epochs = 0;
};

namespace detail {

/// Acquires and releases `count` buffers of `bytes` capacity so the warm
/// path's first acquire hits the pool instead of the heap.  Plan-time
/// misses are the price of warm-path zero-alloc epochs.
inline void prime_buffer_pool(mprt::Comm& comm, std::size_t bytes,
                              int count) {
  if (bytes == 0) return;
  std::vector<std::vector<std::byte>> primed;
  primed.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    primed.push_back(comm.acquire_buffer(bytes));
  }
  for (auto& buf : primed) comm.recycle_buffer(std::move(buf));
}

}  // namespace detail

/// Plans a persistent allreduce of Op states over `comm`: resolves the
/// schedule (env override or autotuner argmin — counted as exactly one
/// autotune invocation), freezes the segment size, reserves the tag block,
/// and primes the buffer pool.  `commutative_override` mirrors the
/// one-shot dispatch's ablation knob.
template <rs::Combinable Op>
PersistentPlan plan_state_allreduce(
    mprt::Comm& comm, const Op& prototype,
    std::optional<bool> commutative_override = std::nullopt) {
  using rs::detail::Schedule;
  PersistentPlan plan;
  plan.commutative = commutative_override.value_or(rs::op_commutative<Op>());
  plan.schedule = rs::detail::schedule_from_env();
  if constexpr (rs::PartitionableState<Op>) {
    plan.state_bytes = rs::part_state_bytes(prototype);
    plan.segment_bytes = rs::detail::segment_bytes_from_env();
    if (plan.commutative && plan.schedule == Schedule::kAuto) {
      comm.note_autotune_invocation();
      plan.schedule = rs::detail::choose_allreduce_schedule(
          comm.cost_model(), comm.size(), plan.state_bytes,
          plan.segment_bytes);
    }
  } else {
    plan.state_bytes = rs::save_op(prototype).size();
  }
  plan.tags = comm.reserve_tag_block(kPersistentAllreduceTags);
  detail::prime_buffer_pool(comm, plan.state_bytes,
                            kPersistentPrimedBuffers);
  if (plan.segment_bytes < plan.state_bytes) {
    // Segmented schedules circulate chunk buffers beside whole states.
    detail::prime_buffer_pool(comm, plan.segment_bytes,
                              kPersistentPrimedBuffers);
  }
  return plan;
}

/// Plans a persistent exclusive scan (state_xscan) over `comm`.  Scans
/// have one schedule, so planning is tag reservation plus pool priming.
template <rs::Combinable Op>
PersistentPlan plan_state_xscan(mprt::Comm& comm, const Op& prototype) {
  PersistentPlan plan;
  plan.commutative = rs::op_commutative<Op>();
  plan.schedule = rs::detail::Schedule::kTwoMessage;  // nominal; unused
  if constexpr (rs::PartitionableState<Op>) {
    plan.state_bytes = rs::part_state_bytes(prototype);
  } else {
    plan.state_bytes = rs::save_op(prototype).size();
  }
  plan.tags = comm.reserve_tag_block(kPersistentScanTags);
  detail::prime_buffer_pool(comm, plan.state_bytes,
                            kPersistentPrimedBuffers);
  return plan;
}

/// One warm epoch of a planned allreduce: leases the plan's tag block
/// (recycling the same tags every epoch — safe because an epoch's
/// messages are consumed within the epoch, and chaos duplicates die
/// against the mailbox sequence watermark) and executes the frozen
/// schedule through the same code path as the one-shot dispatch.  No env
/// reads, no cost-model argmins, no allocations once the pool is warm.
template <rs::Combinable Op>
void execute_planned_allreduce(mprt::Comm& comm, Op& op, const Op& prototype,
                               PersistentPlan& plan) {
  mprt::TagBlockLease lease(comm, plan.tags);
  rs::detail::state_allreduce_with_schedule(comm, op, prototype,
                                            plan.schedule, plan.segment_bytes,
                                            plan.commutative);
  plan.epochs += 1;
}

/// One warm epoch of a planned exclusive scan: on return `op` holds the
/// combination of all lower ranks' epoch states (identity on rank 0).
template <rs::Combinable Op>
void execute_planned_xscan(mprt::Comm& comm, Op& op, const Op& prototype,
                           PersistentPlan& plan) {
  mprt::TagBlockLease lease(comm, plan.tags);
  rs::detail::state_xscan(comm, op, prototype);
  plan.epochs += 1;
}

}  // namespace rsmpi::coll
