#include "coll/barrier.hpp"

namespace rsmpi::coll {

void barrier(mprt::Comm& comm) {
  const int p = comm.size();
  if (p == 1) return;
  const int tag = comm.next_collective_tag();
  const int rank = comm.rank();
  for (int d = 1; d < p; d <<= 1) {
    const int to = (rank + d) % p;
    const int from = (rank - d + p) % p;
    comm.send(to, tag, std::uint8_t{1});
    (void)comm.recv<std::uint8_t>(from, tag);
  }
}

}  // namespace rsmpi::coll
