// Request handles for nonblocking collectives (MPI-3 shape).
//
// A Request names one in-flight operation owned by the rank's
// ProgressEngine (coll/nb/progress.hpp).  Handles are small and copyable,
// like MPI_Request: copies refer to the same operation, and a
// default-constructed handle is the analogue of MPI_REQUEST_NULL — already
// complete, wait() is a no-op.  Operations that finish during launch (for
// example any collective on a single-rank communicator) return a null
// handle directly.
//
// Progress happens only inside wait()/test() and explicit
// ProgressEngine::poll() calls — there is no progress thread.  All handles
// of a rank must be used from that rank's thread.
#pragma once

#include <cstdint>
#include <span>

namespace rsmpi::coll::nb {

class ProgressEngine;

/// Handle to one pending nonblocking operation.
class Request {
 public:
  /// Null handle: refers to no operation and reads as complete.
  Request() = default;

  /// False for null handles (including requests whose operation completed
  /// during launch).
  [[nodiscard]] bool valid() const { return engine_ != nullptr; }

  /// True when the operation has completed.  Does not attempt progress.
  [[nodiscard]] bool done() const;

  /// Makes one progress pass over the rank's pending operations and
  /// returns whether this one has completed (MPI_Test).
  bool test();

  /// Progresses the rank's pending operations until this one completes
  /// (MPI_Wait).  Never blocks in a mailbox receive, so waiting on one
  /// operation can never deadlock another that still needs progress.
  void wait();

 private:
  friend class ProgressEngine;
  Request(ProgressEngine* engine, std::uint64_t id)
      : engine_(engine), id_(id) {}

  ProgressEngine* engine_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Waits for every request in the batch (MPI_Waitall).  Waiting on any one
/// of them progresses all pending operations of the rank, so completion
/// order does not matter.
void wait_all(std::span<Request> requests);

/// One progress pass, then returns the index of some completed request, or
/// -1 if none is complete yet (MPI_Testany).  Null requests count as
/// complete.
int test_any(std::span<Request> requests);

}  // namespace rsmpi::coll::nb
