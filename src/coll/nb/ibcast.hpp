// Nonblocking binomial broadcast (MPI_Ibcast).
//
// The blocking bcast (coll/bcast.hpp) lets non-root ranks receive a
// payload of unknown size; a nonblocking broadcast cannot — the caller
// hands over a buffer that must keep living while the operation is in
// flight, so (as in MPI_Ibcast) its extent must match on every rank.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "coll/nb/progress.hpp"
#include "mprt/comm.hpp"
#include "mprt/topology.hpp"
#include "util/error.hpp"

namespace rsmpi::coll::nb {

namespace detail {

class IBcastOp final : public Operation {
 public:
  IBcastOp(mprt::Comm& comm, int root, int tag, std::span<std::byte> buffer)
      : comm_(comm), root_(root), tag_(tag), buffer_(buffer) {
    const int p = comm.size();
    const int vrank = (comm.rank() - root + p) % p;
    steps_ = mprt::topology::binomial_bcast_schedule(vrank, p);
  }

  bool step(StepMode mode) override {
    bool progressed = false;
    const int p = comm_.size();
    while (next_ < steps_.size()) {
      const auto& s = steps_[next_];
      const int partner = (s.partner + root_) % p;
      if (s.role == mprt::topology::BinomialStep::Role::kRecv) {
        auto msg = nb_recv(comm_, partner, tag_, mode);
        if (!msg.has_value()) return progressed;
        if (msg->payload_size() != buffer_.size()) {
          throw ProtocolError("ibcast: buffer extent differs across ranks");
        }
        if (!buffer_.empty()) {
          std::memcpy(buffer_.data(), msg->payload().data(),
                      msg->payload_size());
        }
      } else {
        comm_.send_bytes(partner, tag_, buffer_);
      }
      ++next_;
      progressed = true;
    }
    return progressed;
  }

  [[nodiscard]] bool done() const override { return next_ >= steps_.size(); }

 private:
  mprt::Comm& comm_;
  int root_;
  int tag_;
  std::span<std::byte> buffer_;
  std::vector<mprt::topology::BinomialStep> steps_;
  std::size_t next_ = 0;
};

}  // namespace detail

/// Starts a nonblocking broadcast of `buffer` from `root`.  The buffer
/// must have the same extent on every rank and must outlive the request's
/// completion; on completion every rank's buffer holds the root's bytes.
inline Request ibcast_bytes(mprt::Comm& comm, int root,
                            std::span<std::byte> buffer) {
  if (root < 0 || root >= comm.size()) {
    throw ArgumentError("ibcast: root rank out of range");
  }
  const int tag = comm.next_collective_tag();
  return ProgressEngine::current().launch(
      comm, std::make_unique<detail::IBcastOp>(comm, root, tag, buffer), tag,
      1);
}

/// Typed nonblocking broadcast of a buffer of trivially-copyable values.
template <typename T>
  requires std::is_trivially_copyable_v<T>
Request ibcast_span(mprt::Comm& comm, int root, std::span<T> values) {
  return ibcast_bytes(
      comm, root,
      std::span<std::byte>(reinterpret_cast<std::byte*>(values.data()),
                           values.size_bytes()));
}

}  // namespace rsmpi::coll::nb
