// Nonblocking reduce / allreduce over local-view buffer operators
// (MPI_Ireduce / MPI_Iallreduce).
//
// Two allreduce schedules, mirroring the blocking collectives:
//   * binomial — order-preserving reduce to rank 0 plus binomial
//     broadcast; safe for non-commutative operators;
//   * Rabenseifner — the recursive-halving reduce-scatter + recursive-
//     doubling allgather of coll/rabenseifner.hpp, restated as a state
//     machine over the same chunk arithmetic (detail::chunk_start) and the
//     same MPICH-style non-power-of-two fold; commutative operators only.
//
// Each operation reserves a tag window on its communicator and advances in
// the rank's ProgressEngine; user buffers must outlive completion.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "coll/local_reduce.hpp"
#include "coll/nb/progress.hpp"
#include "coll/rabenseifner.hpp"
#include "mprt/comm.hpp"
#include "mprt/topology.hpp"
#include "util/error.hpp"

namespace rsmpi::coll::nb {

/// Schedule selection for iallreduce.
enum class IAllreduceAlgo {
  kBinomial,      ///< reduce-to-zero + bcast; any associative operator
  kRabenseifner,  ///< reduce-scatter + allgather; commutative only
};

namespace detail {

/// Binomial reduce to a root, optionally followed by a forward hop (for
/// non-commutative operators with a nonzero root) or by a binomial
/// broadcast of the finished buffer (allreduce).
template <typename T, LocalViewOp<T> Op>
class IReduceOp final : public Operation {
 public:
  IReduceOp(mprt::Comm& comm, int root, std::span<T> values, Op op,
            bool bcast_after, int reduce_tag, int second_tag)
      : comm_(comm),
        op_(std::move(op)),
        values_(values),
        root_(root),
        reduce_tag_(reduce_tag),
        second_tag_(second_tag),
        bcast_after_(bcast_after) {
    const int p = comm.size();
    // Rotating the tree breaks rank-order contiguity, so non-commutative
    // reductions to a nonzero root reduce to rank 0 in order and forward
    // the finished buffer — same policy as the blocking local_reduce.
    forward_ = !is_commutative<Op>() && root != 0 && !bcast_after;
    const int tree_root = forward_ ? 0 : root;
    vrank_ = (comm.rank() - tree_root + p) % p;
    tree_root_ = tree_root;
    reduce_steps_ = mprt::topology::binomial_reduce_schedule(vrank_, p);
    if (bcast_after) {
      bcast_steps_ = mprt::topology::binomial_bcast_schedule(vrank_, p);
    }
  }

  bool step(StepMode mode) override {
    bool progressed = false;
    const int p = comm_.size();
    while (phase_ != Phase::kDone) {
      switch (phase_) {
        case Phase::kReduce: {
          if (next_ >= reduce_steps_.size()) {
            next_ = 0;
            phase_ = forward_ ? Phase::kForward
                              : (bcast_after_ ? Phase::kBcast : Phase::kDone);
            continue;
          }
          const auto& s = reduce_steps_[next_];
          const int partner = (s.partner + tree_root_) % p;
          if (s.role == mprt::topology::BinomialStep::Role::kSend) {
            comm_.send_span(partner, reduce_tag_,
                            std::span<const T>(values_));
          } else {
            auto msg = nb_recv(comm_, partner, reduce_tag_, mode);
            if (!msg.has_value()) return progressed;
            if (msg->payload_size() != values_.size_bytes()) {
              throw ProtocolError(
                  "iallreduce: buffer extent differs across ranks");
            }
            std::vector<T> received(values_.size());
            if (!received.empty()) {
              std::memcpy(received.data(), msg->payload().data(),
                          msg->payload_size());
            }
            // Receiver is the lower virtual rank: its block is on the left.
            coll::detail::combine_received(op_, values_,
                                           /*inout_is_left=*/true,
                                           std::span<const T>(received));
          }
          ++next_;
          progressed = true;
          continue;
        }
        case Phase::kForward: {
          if (comm_.rank() == 0) {
            comm_.send_span(root_, second_tag_, std::span<const T>(values_));
            phase_ = Phase::kDone;
            progressed = true;
          } else if (comm_.rank() == root_) {
            auto msg = nb_recv(comm_, 0, second_tag_, mode);
            if (!msg.has_value()) return progressed;
            if (msg->payload_size() != values_.size_bytes()) {
              throw ProtocolError(
                  "ireduce: buffer extent differs across ranks");
            }
            if (!values_.empty()) {
              std::memcpy(values_.data(), msg->payload().data(),
                          msg->payload_size());
            }
            phase_ = Phase::kDone;
            progressed = true;
          } else {
            phase_ = Phase::kDone;
          }
          continue;
        }
        case Phase::kBcast: {
          if (next_ >= bcast_steps_.size()) {
            phase_ = Phase::kDone;
            continue;
          }
          const auto& s = bcast_steps_[next_];
          const int partner = (s.partner + tree_root_) % p;
          if (s.role == mprt::topology::BinomialStep::Role::kRecv) {
            auto msg = nb_recv(comm_, partner, second_tag_, mode);
            if (!msg.has_value()) return progressed;
            if (msg->payload_size() != values_.size_bytes()) {
              throw ProtocolError(
                  "iallreduce: buffer extent differs across ranks");
            }
            if (!values_.empty()) {
              std::memcpy(values_.data(), msg->payload().data(),
                          msg->payload_size());
            }
          } else {
            comm_.send_span(partner, second_tag_,
                            std::span<const T>(values_));
          }
          ++next_;
          progressed = true;
          continue;
        }
        case Phase::kDone:
          break;
      }
    }
    return progressed;
  }

  [[nodiscard]] bool done() const override { return phase_ == Phase::kDone; }

 private:
  enum class Phase { kReduce, kForward, kBcast, kDone };

  mprt::Comm& comm_;
  Op op_;
  std::span<T> values_;
  int root_;
  int tree_root_;
  int vrank_;
  int reduce_tag_;
  int second_tag_;
  bool bcast_after_;
  bool forward_ = false;
  std::vector<mprt::topology::BinomialStep> reduce_steps_;
  std::vector<mprt::topology::BinomialStep> bcast_steps_;
  std::size_t next_ = 0;
  Phase phase_ = Phase::kReduce;
};

/// Rabenseifner's allreduce as a state machine.  Stage structure, chunk
/// arithmetic, and the remainder fold are those of
/// local_allreduce_rabenseifner; every receive is polled.
template <typename T, LocalViewOp<T> Op>
class IAllreduceRabenseifnerOp final : public Operation {
 public:
  IAllreduceRabenseifnerOp(mprt::Comm& comm, std::span<T> values, Op op,
                           int tag)
      : comm_(comm), op_(std::move(op)), values_(values), tag_(tag) {
    const int p = comm.size();
    pof2_ = 1 << mprt::topology::floor_log2(p);
    rem_ = p - pof2_;
    const int rank = comm.rank();
    if (rank < 2 * rem_) {
      if (rank % 2 == 1) {
        phase_ = Phase::kFoldSend;
        vrank_ = -1;
      } else {
        phase_ = Phase::kFoldRecv;
        vrank_ = rank / 2;
      }
    } else {
      phase_ = Phase::kReduceScatter;
      vrank_ = rank - rem_;
    }
    lo_ = 0;
    hi_ = pof2_;
    dist_ = pof2_ / 2;
  }

  bool step(StepMode mode) override {
    bool progressed = false;
    const int rank = comm_.rank();
    const std::size_t n = values_.size();
    while (phase_ != Phase::kDone) {
      switch (phase_) {
        case Phase::kFoldSend: {  // odd remainder rank: hand off, wait out
          comm_.send_span(rank - 1, tag_, std::span<const T>(values_));
          phase_ = Phase::kFoldAwaitFinal;
          progressed = true;
          continue;
        }
        case Phase::kFoldAwaitFinal: {
          auto msg = nb_recv(comm_, rank - 1, tag_, mode);
          if (!msg.has_value()) return progressed;
          copy_payload(*msg, values_);
          phase_ = Phase::kDone;
          progressed = true;
          continue;
        }
        case Phase::kFoldRecv: {  // even remainder rank: absorb neighbour
          auto msg = nb_recv(comm_, rank + 1, tag_, mode);
          if (!msg.has_value()) return progressed;
          std::vector<T> other = to_values(*msg, n);
          op_.combine(values_, std::span<const T>(other));
          phase_ = Phase::kReduceScatter;
          progressed = true;
          continue;
        }
        case Phase::kReduceScatter: {
          if (dist_ < 1 || pof2_ == 1) {
            phase_ = Phase::kAllgather;
            dist_ = 1;
            continue;
          }
          const int partner = vrank_ ^ dist_;
          const int mid = (lo_ + hi_) / 2;
          const bool keep_low = vrank_ < mid;
          const int keep_lo = keep_low ? lo_ : mid;
          const int keep_hi = keep_low ? mid : hi_;
          if (!sent_) {
            const int send_lo = keep_low ? mid : lo_;
            const int send_hi = keep_low ? hi_ : mid;
            const std::size_t s0 = coll::detail::chunk_start(n, pof2_, send_lo);
            const std::size_t s1 = coll::detail::chunk_start(n, pof2_, send_hi);
            comm_.send_span(real_rank(partner), tag_,
                            std::span<const T>(values_.data() + s0, s1 - s0));
            sent_ = true;
            progressed = true;
          }
          auto msg = nb_recv(comm_, real_rank(partner), tag_, mode);
          if (!msg.has_value()) return progressed;
          const std::size_t k0 = coll::detail::chunk_start(n, pof2_, keep_lo);
          const std::size_t k1 = coll::detail::chunk_start(n, pof2_, keep_hi);
          std::vector<T> other = to_values(*msg, k1 - k0);
          op_.combine(values_.subspan(k0, k1 - k0),
                      std::span<const T>(other));
          lo_ = keep_lo;
          hi_ = keep_hi;
          dist_ /= 2;
          sent_ = false;
          progressed = true;
          continue;
        }
        case Phase::kAllgather: {
          if (dist_ >= pof2_) {
            phase_ = (rank < 2 * rem_) ? Phase::kUnfoldSend : Phase::kDone;
            continue;
          }
          const int partner = vrank_ ^ dist_;
          if (!sent_) {
            const std::size_t h0 = coll::detail::chunk_start(n, pof2_, lo_);
            const std::size_t h1 = coll::detail::chunk_start(n, pof2_, hi_);
            comm_.send_span(real_rank(partner), tag_,
                            std::span<const T>(values_.data() + h0, h1 - h0));
            sent_ = true;
            progressed = true;
          }
          auto msg = nb_recv(comm_, real_rank(partner), tag_, mode);
          if (!msg.has_value()) return progressed;
          const int block = 2 * dist_;
          const int base = (vrank_ / block) * block;
          const int plo = (lo_ == base) ? base + dist_ : base;
          const int phi = plo + dist_;
          const std::size_t q0 = coll::detail::chunk_start(n, pof2_, plo);
          const std::size_t q1 = coll::detail::chunk_start(n, pof2_, phi);
          copy_payload(*msg, values_.subspan(q0, q1 - q0));
          lo_ = base;
          hi_ = base + block;
          dist_ *= 2;
          sent_ = false;
          progressed = true;
          continue;
        }
        case Phase::kUnfoldSend: {  // hand the folded-away neighbour its copy
          comm_.send_span(rank + 1, tag_, std::span<const T>(values_));
          phase_ = Phase::kDone;
          progressed = true;
          continue;
        }
        case Phase::kDone:
          break;
      }
    }
    return progressed;
  }

  [[nodiscard]] bool done() const override { return phase_ == Phase::kDone; }

 private:
  enum class Phase {
    kFoldSend,
    kFoldAwaitFinal,
    kFoldRecv,
    kReduceScatter,
    kAllgather,
    kUnfoldSend,
    kDone,
  };

  [[nodiscard]] int real_rank(int vr) const {
    return vr < rem_ ? 2 * vr : vr + rem_;
  }

  static void copy_payload(const mprt::Message& msg, std::span<T> out) {
    if (msg.payload_size() != out.size_bytes()) {
      throw ProtocolError(
          "iallreduce (rabenseifner): buffer extent differs across ranks");
    }
    if (!out.empty()) {
      std::memcpy(out.data(), msg.payload().data(), msg.payload_size());
    }
  }

  static std::vector<T> to_values(const mprt::Message& msg,
                                  std::size_t expected) {
    if (msg.payload_size() != expected * sizeof(T)) {
      throw ProtocolError(
          "iallreduce (rabenseifner): buffer extent differs across ranks");
    }
    std::vector<T> out(expected);
    if (!out.empty()) {
      std::memcpy(out.data(), msg.payload().data(), msg.payload_size());
    }
    return out;
  }

  mprt::Comm& comm_;
  Op op_;
  std::span<T> values_;
  int tag_;
  int pof2_;
  int rem_;
  int vrank_;
  int lo_;
  int hi_;
  int dist_;
  bool sent_ = false;
  Phase phase_;
};

}  // namespace detail

/// Starts a nonblocking in-place allreduce of `values`; on completion every
/// rank's buffer holds the combined result.  The buffer must have the same
/// extent on every rank and outlive the request.
template <typename T, LocalViewOp<T> Op>
Request iallreduce(mprt::Comm& comm, std::span<T> values, const Op& op,
                   IAllreduceAlgo algo = IAllreduceAlgo::kBinomial) {
  if (comm.size() == 1) return Request{};
  if (algo == IAllreduceAlgo::kRabenseifner) {
    if (!is_commutative<Op>()) {
      throw ArgumentError(
          "iallreduce: rabenseifner schedule requires a commutative operator");
    }
    const int tag = comm.reserve_collective_tags(1);
    return ProgressEngine::current().launch(
        comm,
        std::make_unique<detail::IAllreduceRabenseifnerOp<T, Op>>(comm, values,
                                                                  op, tag),
        tag, 1);
  }
  const int tag = comm.reserve_collective_tags(2);
  return ProgressEngine::current().launch(
      comm,
      std::make_unique<detail::IReduceOp<T, Op>>(comm, /*root=*/0, values, op,
                                                 /*bcast_after=*/true, tag,
                                                 tag + 1),
      tag, 2);
}

/// Starts a nonblocking in-place reduce of `values` to `root`.  On
/// completion the result is valid on `root` only; other ranks' buffers are
/// clobbered with partial results (as in the blocking local_reduce).
template <typename T, LocalViewOp<T> Op>
Request ireduce(mprt::Comm& comm, int root, std::span<T> values,
                const Op& op) {
  if (root < 0 || root >= comm.size()) {
    throw ArgumentError("ireduce: root rank out of range");
  }
  if (comm.size() == 1) return Request{};
  const int tag = comm.reserve_collective_tags(2);
  return ProgressEngine::current().launch(
      comm,
      std::make_unique<detail::IReduceOp<T, Op>>(comm, root, values, op,
                                                 /*bcast_after=*/false, tag,
                                                 tag + 1),
      tag, 2);
}

}  // namespace rsmpi::coll::nb
