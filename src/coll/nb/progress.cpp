#include "coll/nb/progress.hpp"

#include "mprt/scheduler.hpp"

namespace rsmpi::coll::nb {

ProgressEngine& ProgressEngine::current() {
  // A virtualized rank keeps its engine in its fiber slot: the worker's
  // thread_local would interleave pending tables of every rank multiplexed
  // onto it, and a fiber may migrate workers between launch and wait.
  if (mprt::FiberSlot* slot = mprt::current_fiber_slot()) {
    if (!slot->nb_engine) {
      slot->nb_engine = std::make_shared<ProgressEngine>();
    }
    return *static_cast<ProgressEngine*>(slot->nb_engine.get());
  }
  static thread_local ProgressEngine engine;
  return engine;
}

Request ProgressEngine::launch(mprt::Comm& comm,
                               std::unique_ptr<Operation> op, int first_tag,
                               int tag_count) {
  // Advance greedily (polled mode: no modelled waiting is charged at
  // launch): initial sends are posted here, and operations that need no
  // communication complete without entering the table.
  while (!op->done() && op->step(StepMode::kPolled)) {
  }
  if (op->done()) return Request{};

  Slot slot;
  slot.id = next_id_++;
  slot.op = std::move(op);
  slot.comm = &comm;
  slot.pending_id = comm.register_pending_op(first_tag, tag_count);
  slot.vtime = comm.clock().now();
  slots_.push_back(std::move(slot));
  return Request(this, slots_.back().id);
}

namespace {

/// Repositions a rank clock to an arbitrary virtual time (the clock's own
/// API only moves forward; reset-then-advance lands exactly on `t`).
void set_clock(mprt::VirtualClock& clock, double t) {
  clock.reset();
  clock.advance(t);
}

}  // namespace

bool ProgressEngine::poll(StepMode mode) {
  bool progressed = false;
  for (auto& slot : slots_) {
    if (slot.op->done()) continue;
    auto& clock = slot.comm->clock();
    if (mode == StepMode::kPolled) {
      // Advance at the rank's current virtual time — but never step an
      // operation a blocking test already replayed past this point, or
      // its timeline would run backwards.
      if (clock.now() < slot.vtime) continue;
      if (slot.op->step(mode)) {
        progressed = true;
        // Only a step that actually advanced moves the timeline: an empty
        // poll proves nothing was physically queued, not that virtually
        // earlier messages won't still need replaying at their arrival
        // times during a later blocking wait.
        slot.vtime = clock.now();
      }
    } else {
      // Replay on the operation's own timeline: swap the rank clock to
      // the operation's last progress point so arrival-time merges (and
      // compute_section charges and outgoing send stamps) land where a
      // promptly-polling rank would have put them.
      const double rank_now = clock.now();
      set_clock(clock, slot.vtime);
      if (slot.op->step(mode)) progressed = true;
      slot.vtime = clock.now();
      set_clock(clock, rank_now);
    }
  }
  std::erase_if(slots_, [](Slot& slot) {
    if (!slot.op->done()) return false;
    // Completion rejoins the rank's timeline: the rank observes the
    // operation finished no earlier than its modelled finish time.  After
    // a polled step vtime equals the rank clock and this is a no-op.
    slot.comm->clock().merge(slot.vtime);
    slot.comm->complete_pending_op(slot.pending_id);
    return true;
  });
  return progressed;
}

bool ProgressEngine::is_complete(std::uint64_t id) const {
  for (const auto& slot : slots_) {
    if (slot.id == id) return false;
  }
  return true;
}

void ProgressEngine::wait(std::uint64_t id) {
  while (!is_complete(id)) {
    // Blocking passes replay operations on their own timelines; the
    // waited operation's finish time merges into the rank clock when it
    // retires.  A pass with no progress means another rank is still
    // working; park until the mailbox sees a new event (plain yield
    // outside verify mode).  The event count is snapshotted *before* the
    // pass so an arrival mid-pass is never slept through; under the
    // starvation monitor the park doubles as the deadlock-detection point
    // for ranks spinning here rather than in a blocking take.
    mprt::Comm* comm = nullptr;
    for (auto& slot : slots_) {
      if (slot.id == id) {
        comm = slot.comm;
        break;
      }
    }
    if (comm == nullptr) return;  // retired by a concurrent pass
    const std::uint64_t seen = comm->mail_events();
    if (!poll(StepMode::kBlocking)) comm->idle_wait(seen);
  }
}

bool Request::done() const {
  return engine_ == nullptr || engine_->is_complete(id_);
}

bool Request::test() {
  if (engine_ == nullptr) return true;
  // A blocking-mode pass, as in MPI_Test: queued messages are replayed
  // onto the operation's timeline then and there, so while(!test())
  // loops make progress even though they never advance the rank clock.
  engine_->poll(StepMode::kBlocking);
  return engine_->is_complete(id_);
}

void Request::wait() {
  if (engine_ != nullptr) engine_->wait(id_);
}

void wait_all(std::span<Request> requests) {
  for (auto& request : requests) request.wait();
}

int test_any(std::span<Request> requests) {
  bool polled = false;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!polled && requests[i].valid()) {
      (void)requests[i].test();  // one progress pass for the whole batch
      polled = true;
      break;
    }
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].done()) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace rsmpi::coll::nb
