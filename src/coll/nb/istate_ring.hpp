// Nonblocking ring allreduce over partitionable operator states: the
// state_allreduce_ring schedule of coll/ring.hpp as a polled state
// machine for the per-rank progress engine (ISSUE 5).
//
// Each of the 2·(p−1) ring steps sends one chunk downstream and waits
// (nonblockingly) for the upstream chunk; between polls the rank is free
// to compute, so the bandwidth-optimal schedule overlaps with application
// work exactly like the butterfly operation in rs/async.hpp.  A single
// collective tag suffices: the runtime's per-source sequence numbers keep
// the chunks of consecutive steps ordered.
//
// Commutative, partitionable operators only — the blocking dispatcher
// enforces the same constraint before selecting the ring.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "coll/nb/progress.hpp"
#include "coll/rabenseifner.hpp"
#include "coll/ring.hpp"
#include "mprt/comm.hpp"

namespace rsmpi::coll::nb {

/// `StateHolder` is any shared-ownership wrapper exposing an `op` member
/// (rs::detail::AsyncOpState in practice); templating on the holder keeps
/// this header free of rs/async.hpp and breaks the include cycle.
template <typename StateHolder>
class IStateRingAllreduceOp final : public Operation {
  using Op = std::remove_reference_t<decltype(std::declval<StateHolder&>().op)>;
  static_assert(rs::PartitionableState<Op>,
                "ring allreduce requires a partitionable operator state");

 public:
  IStateRingAllreduceOp(mprt::Comm& comm, std::shared_ptr<StateHolder> state,
                        int tag)
      : comm_(comm),
        state_(std::move(state)),
        tag_(tag),
        n_(state_->op.part_extent()) {}

  bool step(StepMode mode) override {
    bool progressed = false;
    const int p = comm_.size();
    const int rank = comm_.rank();
    const int next = (rank + 1) % p;
    const int prev = (rank + p - 1) % p;
    while (phase_ != Phase::kDone) {
      switch (phase_) {
        case Phase::kReduceScatter: {
          if (s_ >= p - 1) {
            s_ = 0;
            sent_ = false;
            phase_ = Phase::kAllgather;
            continue;
          }
          if (!sent_) {
            const auto [lo, hi] = bounds(rank - s_);
            rs::detail::send_state_part(comm_, next, tag_, state_->op, lo, hi);
            sent_ = true;
            progressed = true;
          }
          auto msg = detail::nb_recv(comm_, prev, tag_, mode);
          if (!msg.has_value()) return progressed;
          const auto [lo, hi] = bounds(rank - s_ - 1);
          rs::detail::combine_part_received(comm_, state_->op, lo, hi,
                                            std::move(*msg));
          ++s_;
          sent_ = false;
          progressed = true;
          continue;
        }
        case Phase::kAllgather: {
          if (s_ >= p - 1) {
            phase_ = Phase::kDone;
            continue;
          }
          if (!sent_) {
            const auto [lo, hi] = bounds(rank + 1 - s_);
            rs::detail::send_state_part(comm_, next, tag_, state_->op, lo, hi);
            sent_ = true;
            progressed = true;
          }
          auto msg = detail::nb_recv(comm_, prev, tag_, mode);
          if (!msg.has_value()) return progressed;
          const auto [lo, hi] = bounds(rank - s_);
          rs::detail::load_part_received(comm_, state_->op, lo, hi,
                                         std::move(*msg));
          ++s_;
          sent_ = false;
          progressed = true;
          continue;
        }
        case Phase::kDone:
          break;
      }
    }
    return progressed;
  }

  [[nodiscard]] bool done() const override { return phase_ == Phase::kDone; }

 private:
  enum class Phase { kReduceScatter, kAllgather, kDone };

  [[nodiscard]] std::pair<std::size_t, std::size_t> bounds(int c) const {
    const int p = comm_.size();
    const int cc = ((c % p) + p) % p;
    return {coll::detail::chunk_start(n_, p, cc),
            coll::detail::chunk_start(n_, p, cc + 1)};
  }

  mprt::Comm& comm_;
  std::shared_ptr<StateHolder> state_;
  int tag_;
  std::size_t n_;
  int s_ = 0;
  bool sent_ = false;
  Phase phase_ = Phase::kReduceScatter;
};

}  // namespace rsmpi::coll::nb
