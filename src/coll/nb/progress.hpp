// The per-rank progress engine for nonblocking collectives.
//
// Every in-flight nonblocking operation is a state machine (Operation)
// advanced over the Comm::try_recv_due/try_recv_message primitives:
// sends are posted eagerly (they never block), receives are polled, and a
// step that cannot advance simply returns until the next poll.  There are
// no progress threads — progress happens inside Request::wait/test and at
// explicit poll() points, which is exactly the MPI guidance of calling
// MPI_Test inside compute loops to overlap communication with computation.
//
// Virtual-clock accounting: every in-flight operation carries its own
// progress timeline, seeded with the rank clock at launch.  A compute-loop
// poll() advances operations at the rank's current virtual time, taking
// only messages whose modelled arrival has already passed (Comm::
// try_recv_due) — the receive overhead lands on the rank clock, the wire
// time is already sunk, so overlapped communication is free.  wait()/test()
// instead *replay* each operation on its own timeline: the rank clock is
// swapped to the operation's last progress point, messages are taken as
// they sit in the mailbox (the ordinary arrival-time merge then lands at
// max(op time, arrival), exactly where a promptly-polling rank would have
// processed them), and on completion the operation's finish time merges
// back into the rank clock.  The replay is what makes the modelled
// critical path independent of real-time thread scheduling: whether a
// message was physically present at poll time or only showed up during the
// final wait, it is charged at the same virtual instant.
//
// The engine is thread-local: each rank thread owns one, reachable via
// ProgressEngine::current().  Operations hold references to their Comm and
// to user buffers; both must outlive the request's completion.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coll/nb/request.hpp"
#include "mprt/comm.hpp"

namespace rsmpi::coll::nb {

/// How a progress pass is allowed to treat in-flight messages.
enum class StepMode {
  /// Polled progress (compute-loop poll()): take only messages whose
  /// modelled arrival time has passed on this rank's virtual clock.  A
  /// message that is physically queued but virtually still in flight stays
  /// queued, so polling never charges modelled waiting — overlapped
  /// communication is free on the virtual timeline.
  kPolled,
  /// Blocking progress (wait()/test()): the engine replays the operation
  /// on its own timeline (rank clock swapped to the operation's last
  /// progress point), taking any queued message; the arrival-time merge
  /// then charges processing at max(op time, arrival), as if the rank had
  /// kept polling.  The completion time merges into the rank clock.
  kBlocking,
};

/// One in-flight nonblocking collective, advanced as a state machine.
class Operation {
 public:
  virtual ~Operation() = default;

  /// Attempts to advance as far as possible without blocking; returns
  /// true if any state change occurred (a message taken or sent).
  virtual bool step(StepMode mode) = 0;

  /// True when the operation has run to completion.
  [[nodiscard]] virtual bool done() const = 0;
};

namespace detail {

/// The receive every nonblocking state machine polls with: due-only in
/// polled mode, take-anything in blocking mode.
inline std::optional<mprt::Message> nb_recv(mprt::Comm& comm, int source,
                                            int tag, StepMode mode) {
  return mode == StepMode::kPolled ? comm.try_recv_due(source, tag)
                                   : comm.try_recv_message(source, tag);
}

}  // namespace detail

/// Registry of a rank's pending operations.  One per rank thread.
class ProgressEngine {
 public:
  /// The calling rank thread's engine.
  static ProgressEngine& current();

  /// Registers an operation and advances it as far as it will go.  If it
  /// completes immediately (single-rank communicators, lucky timing), the
  /// returned handle is null and nothing is enqueued.  `first_tag` and
  /// `tag_count` describe the collective-tag window the operation reserved
  /// on `comm`; they are recorded in the rank's pending-operation table.
  Request launch(mprt::Comm& comm, std::unique_ptr<Operation> op,
                 int first_tag, int tag_count);

  /// Steps every pending operation once and retires the completed ones.
  /// Returns true if any operation made progress.  Call this from compute
  /// loops (default kPolled mode) to overlap communication with
  /// computation; wait/test use kBlocking internally.
  bool poll(StepMode mode = StepMode::kPolled);

  /// Number of operations still in flight on this engine.
  [[nodiscard]] std::size_t in_flight() const { return slots_.size(); }

 private:
  friend class Request;

  struct Slot {
    std::uint64_t id = 0;
    std::unique_ptr<Operation> op;
    mprt::Comm* comm = nullptr;  // for pending-table bookkeeping
    std::uint64_t pending_id = 0;
    /// The operation's progress timeline: the virtual time up to which it
    /// has been advanced.  Polled steps pin it to the rank clock; blocking
    /// steps replay from it with the rank clock swapped in.
    double vtime = 0.0;
  };

  [[nodiscard]] bool is_complete(std::uint64_t id) const;
  void wait(std::uint64_t id);

  std::vector<Slot> slots_;
  std::uint64_t next_id_ = 1;
};

/// Convenience: one progress pass on the calling rank's engine.
inline bool poll() { return ProgressEngine::current().poll(); }

}  // namespace rsmpi::coll::nb
