// Nonblocking dissemination barrier (MPI_Ibarrier).
//
// Same schedule as coll/barrier.cpp — ceil(log2 p) rounds of pairwise
// token exchange — but each round's receive is polled instead of blocked
// on, so a rank can keep computing while the barrier's wavefront works its
// way around the ring.
#pragma once

#include <cstdint>
#include <memory>

#include "coll/nb/progress.hpp"
#include "mprt/comm.hpp"
#include "mprt/topology.hpp"

namespace rsmpi::coll::nb {

namespace detail {

class IBarrierOp final : public Operation {
 public:
  IBarrierOp(mprt::Comm& comm, int tag)
      : comm_(comm),
        tag_(tag),
        rounds_(mprt::topology::num_rounds(comm.size())) {}

  bool step(StepMode mode) override {
    bool progressed = false;
    const int p = comm_.size();
    const int rank = comm_.rank();
    while (round_ < rounds_) {
      const int dist = 1 << round_;
      if (!sent_) {
        comm_.send((rank + dist) % p, tag_, std::uint8_t{1});
        sent_ = true;
        progressed = true;
      }
      const auto token =
          detail::nb_recv(comm_, (rank - dist + p) % p, tag_, mode);
      if (!token.has_value()) return progressed;
      ++round_;
      sent_ = false;
      progressed = true;
    }
    return progressed;
  }

  [[nodiscard]] bool done() const override { return round_ >= rounds_; }

 private:
  mprt::Comm& comm_;
  int tag_;
  int rounds_;
  int round_ = 0;
  bool sent_ = false;
};

}  // namespace detail

/// Starts a nonblocking barrier on `comm`.  The barrier is complete (its
/// request done) once every rank has entered it.
inline Request ibarrier(mprt::Comm& comm) {
  const int tag = comm.next_collective_tag();
  return ProgressEngine::current().launch(
      comm, std::make_unique<detail::IBarrierOp>(comm, tag), tag, 1);
}

}  // namespace rsmpi::coll::nb
