// The local-view user-defined operator interface (paper §2).
//
// A local-view operator is defined by two functions over fixed-size value
// buffers:
//   * ident(buf)        — fill the buffer with the operator's identity, and
//   * combine(inout, in) — inout := inout (+) in, where `inout` is the
//     operand that precedes `in` in rank order (operand order matters for
//     non-commutative operators).
//
// This is exactly the shape of Listing 1's mink operator: a per-processor
// k-vector of partial results plus a merge.  MPI's MPI_Op_create is the
// same idea with inverted argument order and per-element aggregation
// (§2.1/§2.2); the ElementwiseOp adapter below provides the aggregated
// form of any scalar binary operator.
#pragma once

#include <algorithm>
#include <concepts>
#include <limits>
#include <span>
#include <vector>

#include "coll/ops.hpp"

namespace rsmpi::coll {

/// A user-defined local-view operator over buffers of T.
template <typename Op, typename T>
concept LocalViewOp = requires(const Op op, std::span<T> inout,
                               std::span<const T> in) {
  op.ident(inout);
  op.combine(inout, in);
};

/// Lifts a scalar binary operator to the buffer interface by applying it
/// element-wise — the "aggregation" extension of §2.1, which computes many
/// independent reductions in one message.
template <typename T, BinaryOperator<T> BinOp>
struct ElementwiseOp {
  static constexpr bool commutative = is_commutative<BinOp>();

  BinOp op{};

  void ident(std::span<T> buf) const {
    for (T& v : buf) v = BinOp::identity();
  }

  void combine(std::span<T> inout, std::span<const T> in) const {
    for (std::size_t i = 0; i < inout.size(); ++i) {
      inout[i] = op(inout[i], in[i]);
    }
  }
};

/// The mink operator of Listing 1, restated against the buffer interface:
/// each buffer holds k values sorted ascending; combine merges two such
/// buffers keeping the k smallest.  (The paper's C code keeps descending
/// order and bubble-inserts; we keep ascending order, which makes the
/// merge a textbook two-pointer pass — the abstract operator is the same.)
template <typename T>
struct LocalMinK {
  static constexpr bool commutative = true;

  void ident(std::span<T> buf) const {
    for (T& v : buf) v = std::numeric_limits<T>::max();
  }

  void combine(std::span<T> inout, std::span<const T> in) const {
    // Merge the two ascending k-vectors, keeping the smallest k in inout,
    // without a scratch buffer: first count how many survivors each
    // operand contributes (the same comparisons a forward merge would
    // make), then merge backwards in place — writing position na+nb-1
    // never clobbers inout[na-1] while anything from `in` remains.
    const std::size_t k = inout.size();
    std::size_t na = 0, nb = 0;
    while (na + nb < k) {
      if (nb >= in.size() || (na < k && inout[na] <= in[nb])) {
        ++na;
      } else {
        ++nb;
      }
    }
    std::size_t t = k;
    while (nb > 0) {
      --t;
      if (na > 0 && inout[na - 1] > in[nb - 1]) {
        inout[t] = inout[--na];
      } else {
        inout[t] = in[--nb];
      }
    }
    // inout[0..na) already holds the remaining survivors in order.
  }
};

/// Aggregates a fixed-block-size buffer operator: treats a buffer of
/// m*block elements as m independent instances of `Inner`, each spanning
/// one block.  This is §2.1's closing observation — "the mink reduction
/// can itself be aggregated to compute the element-wise k minimums of the
/// values in arrays of vectors" — as a reusable adapter:
///
///   BlockwiseOp<int, LocalMinK<int>> op{10};   // m k-vectors per buffer
template <typename T, typename Inner>
struct BlockwiseOp {
  static constexpr bool commutative = is_commutative<Inner>();

  std::size_t block;
  Inner inner{};

  void ident(std::span<T> buf) const {
    for (std::size_t off = 0; off < buf.size(); off += block) {
      inner.ident(buf.subspan(off, block));
    }
  }

  void combine(std::span<T> inout, std::span<const T> in) const {
    for (std::size_t off = 0; off < inout.size(); off += block) {
      inner.combine(inout.subspan(off, block), in.subspan(off, block));
    }
  }
};

}  // namespace rsmpi::coll
