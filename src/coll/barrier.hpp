// Dissemination barrier.
#pragma once

#include "mprt/comm.hpp"

namespace rsmpi::coll {

/// Synchronizes all ranks.  Implemented as a dissemination barrier
/// (ceil(log2 p) rounds of pairwise token exchange) rather than shared
/// state, so each rank's virtual clock correctly advances to the barrier's
/// causal completion time.
void barrier(mprt::Comm& comm);

}  // namespace rsmpi::coll
