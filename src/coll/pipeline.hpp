// Pipelined binomial-tree reduce/broadcast over partitionable operator
// states (ISSUE 5).
//
// A whole-state binomial reduce serializes the full state on every tree
// edge, so a rank near the root waits log2(p) full-state hops before it
// can even start combining.  When the operator is partitionable
// (rs/op_concepts.hpp), the state can instead stream through the tree in
// fixed-size segments: while a parent folds segment k, its child is
// already serializing segment k+1, hiding all but the pipeline fill of
// ceil(log2 p) − 1 segment hops.  Modelled critical path drops from
// log2(p)·hop(n) to (log2(p) + m − 1)·hop(n/m) for m segments.
//
// Segment messages share one tag per collective: the runtime's
// per-(source, tag) sequence numbers give FIFO delivery, so segment k
// from a given child always arrives before its segment k+1.  Combines
// touch each element range exactly once per edge in the same receive
// order as the whole-state schedule, so the pipelined reduce preserves
// rank order and works for non-commutative partitionable operators too.
//
// The segment size comes from the caller (state_exchange.hpp reads
// RSMPI_SEGMENT_BYTES, default kDefaultSegmentBytes); segments never cut
// an element, so operators with few large elements degenerate gracefully
// toward the whole-state schedule.
#pragma once

#include <cstddef>
#include <utility>

#include "coll/rabenseifner.hpp"
#include "coll/ring.hpp"
#include "mprt/comm.hpp"
#include "mprt/topology.hpp"
#include "rs/op_concepts.hpp"

namespace rsmpi::rs::detail {

/// Default pipeline segment size: big enough to amortize per-message
/// overheads (o_s + L + o_r), small enough that the pipeline fill is cheap
/// next to the payload.  Overridable per run via RSMPI_SEGMENT_BYTES.
inline constexpr std::size_t kDefaultSegmentBytes = 64 * 1024;

/// Number of pipeline segments for `op` at the requested segment size:
/// ceil(total / segment_bytes), clamped to the element extent (segments
/// never split an element) and to at least 1.
template <PartitionableState Op>
[[nodiscard]] std::size_t plan_segment_count(const Op& op,
                                             std::size_t segment_bytes) {
  const std::size_t n = op.part_extent();
  if (n <= 1) return 1;
  const std::size_t total = op.part_bytes(0, n);
  if (segment_bytes == 0 || total <= segment_bytes) return 1;
  const std::size_t m = (total + segment_bytes - 1) / segment_bytes;
  return m < n ? m : n;
}

/// Pipelined binomial reduce to rank 0: segment k flows through the same
/// binomial tree as the whole-state schedule, all segments sharing one
/// collective tag (per-source FIFO keeps them ordered).  Order-preserving,
/// so non-commutative partitionable operators are fine.  Ranks other than
/// 0 are left holding partially-reduced garbage, exactly like the
/// whole-state reduce schedules.
template <Combinable Op>
  requires PartitionableState<Op>
void state_reduce_pipelined(mprt::Comm& comm, Op& op,
                            std::size_t segment_bytes = kDefaultSegmentBytes) {
  const int p = comm.size();
  if (p == 1) return;
  const int tag = comm.next_collective_tag();
  const std::size_t n = op.part_extent();
  const std::size_t m = plan_segment_count(op, segment_bytes);
  const auto steps =
      mprt::topology::binomial_reduce_schedule(comm.rank(), p);

  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t lo = coll::detail::chunk_start(n, static_cast<int>(m),
                                                     static_cast<int>(k));
    const std::size_t hi = coll::detail::chunk_start(n, static_cast<int>(m),
                                                     static_cast<int>(k) + 1);
    for (const auto& step : steps) {
      if (step.role == mprt::topology::BinomialStep::Role::kSend) {
        send_state_part(comm, step.partner, tag, op, lo, hi);
      } else {
        auto msg = comm.recv_message(step.partner, tag);
        combine_part_received(comm, op, lo, hi, std::move(msg));
      }
    }
  }
}

/// Pipelined binomial broadcast from rank 0: the mirror schedule, with
/// every receiver overwriting the segment before forwarding it.
template <Combinable Op>
  requires PartitionableState<Op>
void state_bcast_pipelined(mprt::Comm& comm, Op& op,
                           std::size_t segment_bytes = kDefaultSegmentBytes) {
  const int p = comm.size();
  if (p == 1) return;
  const int tag = comm.next_collective_tag();
  const std::size_t n = op.part_extent();
  const std::size_t m = plan_segment_count(op, segment_bytes);
  const auto steps = mprt::topology::binomial_bcast_schedule(comm.rank(), p);

  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t lo = coll::detail::chunk_start(n, static_cast<int>(m),
                                                     static_cast<int>(k));
    const std::size_t hi = coll::detail::chunk_start(n, static_cast<int>(m),
                                                     static_cast<int>(k) + 1);
    for (const auto& step : steps) {
      if (step.role == mprt::topology::BinomialStep::Role::kSend) {
        send_state_part(comm, step.partner, tag, op, lo, hi);
      } else {
        auto msg = comm.recv_message(step.partner, tag);
        load_part_received(comm, op, lo, hi, std::move(msg));
      }
    }
  }
}

/// Pipelined allreduce: pipelined reduce to rank 0 followed by pipelined
/// broadcast.  The broadcast overwrites every element range on every
/// non-root rank, so the partial reduce states they hold in between never
/// leak into the result.
template <Combinable Op>
  requires PartitionableState<Op>
void state_allreduce_pipelined(
    mprt::Comm& comm, Op& op,
    std::size_t segment_bytes = kDefaultSegmentBytes) {
  state_reduce_pipelined(comm, op, segment_bytes);
  state_bcast_pipelined(comm, op, segment_bytes);
}

}  // namespace rsmpi::rs::detail
