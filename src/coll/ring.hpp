// Bandwidth-optimal ring allreduce over partitionable operator states
// (ISSUE 5).
//
// The whole-state schedules in rs/state_exchange.hpp ship the full
// serialized state on every hop, so their critical path scales as
// O(log p · n) bytes.  When the operator models the partitionable-state
// hooks (rs/op_concepts.hpp), the state can instead be cut into p chunks
// that reduce-scatter around a ring and reassemble with an allgather:
// every rank moves 2·(p−1)/p·n bytes regardless of p — the bandwidth-
// optimal volume — at the price of 2·(p−1) latency terms.  A chunked
// Rabenseifner variant (recursive halving + recursive doubling over the
// same hooks) trades most of that latency back at power-of-two rank
// counts; the schedule autotuner in state_exchange.hpp picks between
// them from the cost model.
//
// Both schedules require a commutative operator: chunks are folded in
// pair/ring order, not rank order.  Chunk boundaries come from
// coll::detail::chunk_start, so extents smaller than the rank count
// degenerate gracefully to empty segments.  Segment messages carry the
// raw save_part bytes with no framing — both ends derive the element
// range from the schedule step, and the hooks validate sizes.
#pragma once

#include <cstddef>
#include <utility>

#include "coll/rabenseifner.hpp"
#include "mprt/comm.hpp"
#include "mprt/topology.hpp"
#include "rs/op_concepts.hpp"

namespace rsmpi::rs::detail {

/// Serializes `op` into a pooled buffer and move-sends it: after warm-up
/// the whole send path performs zero heap allocations and zero payload
/// copies (small states travel inline in the Message itself).  Lives here,
/// beside its segmented analogue, so every schedule header (ring,
/// hierarchical, state_exchange) sees one definition.
template <Combinable Op>
void send_state(mprt::Comm& comm, int dest, int tag, const Op& op) {
  bytes::Writer w(comm.acquire_buffer(0));
  save_op_into(op, w);
  comm.send_bytes(dest, tag, std::move(w).take());
}

/// Folds a received serialized state into `op` (op = op (+) decode) and
/// recycles the receive buffer into this rank's pool.
template <Combinable Op>
void combine_received_state(mprt::Comm& comm, Op& op, const Op& prototype,
                            mprt::Message&& msg) {
  {
    auto timer = comm.compute_section();
    combine_op_from_bytes(op, prototype, msg.payload());
  }
  comm.recycle_buffer(msg.release_storage());
}

/// Serializes the element range [lo, hi) of `op` into a pooled buffer and
/// move-sends it: the segmented analogue of send_state, zero-copy after
/// warm-up (and, with the size-class pool bins, reusing segment-sized
/// buffers rather than cannibalizing whole-state ones).
template <PartitionableState Op>
void send_state_part(mprt::Comm& comm, int dest, int tag, const Op& op,
                     std::size_t lo, std::size_t hi) {
  bytes::Writer w(comm.acquire_buffer(op.part_bytes(lo, hi)));
  op.save_part(lo, hi, w);
  comm.send_bytes(dest, tag, std::move(w).take());
}

/// Folds a received segment into [lo, hi) of `op` and recycles the buffer.
template <PartitionableState Op>
void combine_part_received(mprt::Comm& comm, Op& op, std::size_t lo,
                           std::size_t hi, mprt::Message&& msg) {
  {
    auto timer = comm.compute_section();
    op.combine_part(lo, hi, msg.payload());
  }
  comm.recycle_buffer(msg.release_storage());
}

/// Overwrites [lo, hi) of `op` from a received segment (allgather phase).
template <PartitionableState Op>
void load_part_received(mprt::Comm& comm, Op& op, std::size_t lo,
                        std::size_t hi, mprt::Message&& msg) {
  {
    auto timer = comm.compute_section();
    op.load_part(lo, hi, msg.payload());
  }
  comm.recycle_buffer(msg.release_storage());
}

/// Ring allreduce: reduce-scatter (p−1 steps, each rank combines one
/// incoming chunk per step) followed by allgather (p−1 steps circulating
/// the finished chunks).  Works for any p, power of two or not; requires
/// commutativity.  Per-rank traffic is 2·(p−1)/p·n bytes.
template <Combinable Op>
  requires PartitionableState<Op>
void state_allreduce_ring(mprt::Comm& comm, Op& op) {
  const int p = comm.size();
  if (p == 1) return;
  const int tag = comm.next_collective_tag();
  const int rank = comm.rank();
  const std::size_t n = op.part_extent();
  const int next = (rank + 1) % p;
  const int prev = (rank + p - 1) % p;
  const auto bounds = [&](int c) {
    const int cc = ((c % p) + p) % p;
    return std::pair{coll::detail::chunk_start(n, p, cc),
                     coll::detail::chunk_start(n, p, cc + 1)};
  };

  // Reduce-scatter: in step s, rank r sends chunk (r − s) mod p downstream
  // and folds incoming chunk (r − s − 1) mod p.  After p − 1 steps, rank r
  // holds the fully reduced chunk (r + 1) mod p.
  for (int s = 0; s < p - 1; ++s) {
    const auto [slo, shi] = bounds(rank - s);
    send_state_part(comm, next, tag, op, slo, shi);
    const auto [rlo, rhi] = bounds(rank - s - 1);
    auto msg = comm.recv_message(prev, tag);
    combine_part_received(comm, op, rlo, rhi, std::move(msg));
  }

  // Allgather: circulate the finished chunks once more around the ring,
  // each rank overwriting the chunk it receives.
  for (int s = 0; s < p - 1; ++s) {
    const auto [slo, shi] = bounds(rank + 1 - s);
    send_state_part(comm, next, tag, op, slo, shi);
    const auto [rlo, rhi] = bounds(rank - s);
    auto msg = comm.recv_message(prev, tag);
    load_part_received(comm, op, rlo, rhi, std::move(msg));
  }
}

/// Chunked Rabenseifner allreduce over partitionable state: recursive-
/// halving reduce-scatter + recursive-doubling allgather, the state-level
/// restatement of coll::local_allreduce_rabenseifner.  2·log2(p) latency
/// terms with the same 2·(1 − 1/p)·n bandwidth as the ring — the usual
/// winner at power-of-two rank counts.  Non-powers-of-two fold the
/// remainder ranks into even neighbours first (whole-state, MPICH-style)
/// and hand them the finished state last, which costs two full-state hops;
/// at large n the ring overtakes it there.  Commutative operators only.
template <Combinable Op>
  requires PartitionableState<Op>
void state_allreduce_rabenseifner(mprt::Comm& comm, Op& op,
                                  const Op& prototype) {
  const int p = comm.size();
  if (p == 1) return;
  const int tag = comm.next_collective_tag();
  const int rank = comm.rank();
  const std::size_t n = op.part_extent();
  const int pof2 = 1 << mprt::topology::floor_log2(p);
  const int rem = p - pof2;

  // Fold the remainder: the first 2·rem ranks pair up; odds deposit their
  // whole state with the even neighbour and sit out until the end.
  int vrank;  // rank within the power-of-two core, or folded away
  if (rank < 2 * rem) {
    if (rank % 2 == 1) {
      {
        bytes::Writer w(comm.acquire_buffer(0));
        save_op_into(op, w);
        comm.send_bytes(rank - 1, tag, std::move(w).take());
      }
      auto msg = comm.recv_message(rank - 1, tag);
      {
        auto timer = comm.compute_section();
        load_op_into(op, msg.payload());
      }
      comm.recycle_buffer(msg.release_storage());
      return;
    }
    auto msg = comm.recv_message(rank + 1, tag);
    {
      auto timer = comm.compute_section();
      combine_op_from_bytes(op, prototype, msg.payload());
    }
    comm.recycle_buffer(msg.release_storage());
    vrank = rank / 2;
  } else {
    vrank = rank - rem;
  }
  const auto real_rank = [&](int vr) { return vr < rem ? 2 * vr : vr + rem; };
  const auto start = [&](int c) { return coll::detail::chunk_start(n, pof2, c); };

  // Phase 1: recursive-halving reduce-scatter.  Invariant: this rank holds
  // the partial reduction of chunk range [lo, hi), containing chunk vrank.
  int lo = 0, hi = pof2;
  for (int dist = pof2 / 2; dist >= 1; dist /= 2) {
    const int partner = vrank ^ dist;
    const int mid = (lo + hi) / 2;
    const bool keep_low = vrank < mid;
    const int send_lo = keep_low ? mid : lo;
    const int send_hi = keep_low ? hi : mid;
    const int keep_lo = keep_low ? lo : mid;
    const int keep_hi = keep_low ? mid : hi;

    send_state_part(comm, real_rank(partner), tag, op, start(send_lo),
                    start(send_hi));
    auto msg = comm.recv_message(real_rank(partner), tag);
    combine_part_received(comm, op, start(keep_lo), start(keep_hi),
                          std::move(msg));
    lo = keep_lo;
    hi = keep_hi;
  }

  // Phase 2: recursive-doubling allgather.  Invariant: this rank holds the
  // *final* values of the aligned chunk range [lo, hi) of width dist.
  for (int dist = 1; dist < pof2; dist *= 2) {
    const int partner = vrank ^ dist;
    send_state_part(comm, real_rank(partner), tag, op, start(lo), start(hi));
    const int block = 2 * dist;
    const int base = (vrank / block) * block;
    const int plo = (lo == base) ? base + dist : base;
    const int phi = plo + dist;
    auto msg = comm.recv_message(real_rank(partner), tag);
    load_part_received(comm, op, start(plo), start(phi), std::move(msg));
    lo = base;
    hi = base + block;
  }

  // Hand the folded-away odd neighbour its finished state.
  if (rank < 2 * rem) {
    bytes::Writer w(comm.acquire_buffer(0));
    save_op_into(op, w);
    comm.send_bytes(rank + 1, tag, std::move(w).take());
  }
}

}  // namespace rsmpi::rs::detail
