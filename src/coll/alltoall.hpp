// Personalized all-to-all exchange (MPI_Alltoallv), used by the NAS IS
// bucket sort to route keys to their destination ranks.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "mprt/comm.hpp"

namespace rsmpi::coll {

/// Exchange plan and result for one alltoallv call.
struct AlltoallvCounts {
  /// recv_counts[r] = number of elements this rank received from rank r.
  std::vector<std::size_t> recv_counts;
};

namespace detail {
/// Pairwise-exchange schedule shared by all alltoallv instantiations:
/// in round k (k = 0..p-1) every rank exchanges with `rank xor k` when that
/// partner exists, otherwise with (rank + k) mod p / (rank - k) mod p.
/// Returns the send-partner for the round (receive partner is symmetric
/// for the xor schedule and the mirrored shift otherwise).
void alltoallv_bytes(mprt::Comm& comm,
                     const std::vector<std::vector<std::byte>>& send,
                     std::vector<std::vector<std::byte>>& recv);
}  // namespace detail

/// Sends `send_blocks[r]` to rank r and returns the blocks received from
/// every rank, concatenated in source-rank order.  Per-source counts are
/// reported through `counts` when non-null.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> alltoallv(mprt::Comm& comm,
                         const std::vector<std::vector<T>>& send_blocks,
                         AlltoallvCounts* counts = nullptr) {
  const int p = comm.size();
  std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const auto& block = send_blocks[static_cast<std::size_t>(r)];
    send[static_cast<std::size_t>(r)].resize(block.size() * sizeof(T));
    if (!block.empty()) {
      std::memcpy(send[static_cast<std::size_t>(r)].data(), block.data(),
                  block.size() * sizeof(T));
    }
  }
  std::vector<std::vector<std::byte>> recv;
  detail::alltoallv_bytes(comm, send, recv);

  std::vector<T> out;
  if (counts != nullptr) {
    counts->recv_counts.assign(static_cast<std::size_t>(p), 0);
  }
  for (int r = 0; r < p; ++r) {
    const auto& block = recv[static_cast<std::size_t>(r)];
    const std::size_t n = block.size() / sizeof(T);
    const std::size_t old = out.size();
    out.resize(old + n);
    if (n > 0) std::memcpy(out.data() + old, block.data(), block.size());
    if (counts != nullptr) counts->recv_counts[static_cast<std::size_t>(r)] = n;
  }
  return out;
}

}  // namespace rsmpi::coll
