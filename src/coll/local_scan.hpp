// LOCAL_SCAN / LOCAL_XSCAN: the paper's local-view scan abstraction (§2).
//
// Each rank contributes one value buffer; the exclusive scan leaves in
// each rank's buffer the combination of all *lower* ranks' contributions
// (identity on rank 0), and the inclusive scan additionally folds in the
// rank's own contribution.  Unlike MPI — whose MPI_Exscan leaves rank 0
// undefined — the paper's abstraction requires the operator's identity
// function precisely so the exclusive scan is total (§2).
//
// The parallel algorithm is the Hillis–Steele / recursive-doubling form of
// the Ladner–Fischer parallel prefix network: ceil(log2 p) rounds in which
// rank r sends its running inclusive value to rank r+d and prepends the
// value received from rank r-d.  Each prepend joins two contiguous rank
// intervals in order, so the schedule is valid for non-commutative
// (associative) operators as well.
#pragma once

#include <span>
#include <vector>

#include "coll/buffer_op.hpp"
#include "mprt/comm.hpp"
#include "util/error.hpp"

namespace rsmpi::coll {

enum class ScanAlgo {
  kAuto,          ///< recursive doubling
  kLinear,        ///< chain through ranks; O(p) latency baseline
  kHillisSteele,  ///< recursive doubling; O(log p) rounds, ~p log p msgs
  kBlelloch,      ///< up/down sweep; 2 log p rounds, 3(p-1) msgs.
                  ///< Power-of-two rank counts only; other counts fall
                  ///< back to recursive doubling.
};

namespace detail {

/// Recursive-doubling exclusive+inclusive scan.  On return `excl` holds the
/// combination of ranks [0, rank) (identity on rank 0) and `incl` holds
/// [0, rank].  Invariant per round with distance d: `incl` covers the
/// contiguous interval [max(0, rank-2d+1), rank].
template <typename T, LocalViewOp<T> Op>
void scan_hillis_steele(mprt::Comm& comm, const Op& op, std::span<T> excl,
                        std::span<T> incl) {
  const int p = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();

  std::vector<T> received(excl.size());
  for (int d = 1; d < p; d <<= 1) {
    if (rank + d < p) {
      comm.send_span(rank + d, tag, std::span<const T>(incl.data(),
                                                       incl.size()));
    }
    if (rank - d >= 0) {
      comm.recv_span<T>(rank - d, tag, received);
      // Prepend: new = received (+) old.  Evaluate into a temp because the
      // received block is the left operand.
      std::vector<T> tmp(received.begin(), received.end());
      op.combine(std::span<T>(tmp),
                 std::span<const T>(incl.data(), incl.size()));
      std::copy(tmp.begin(), tmp.end(), incl.begin());

      // The same received interval also extends the exclusive prefix:
      // excl covers [max(0, rank-2d+1), rank-1] after this update and
      // therefore [0, rank-1] once 2d > rank.
      tmp.assign(received.begin(), received.end());
      op.combine(std::span<T>(tmp),
                 std::span<const T>(excl.data(), excl.size()));
      std::copy(tmp.begin(), tmp.end(), excl.begin());
    }
  }
}

/// Linear-chain scan: rank r waits for the exclusive prefix of rank r-1,
/// extends it with its own value, and forwards.  O(p) latency but only one
/// combine per rank; the baseline for the microbenchmarks.
template <typename T, LocalViewOp<T> Op>
void scan_linear(mprt::Comm& comm, const Op& op, std::span<T> excl,
                 std::span<T> incl) {
  const int p = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();

  if (rank > 0) {
    // Receive the inclusive prefix of ranks [0, rank-1] — our exclusive.
    comm.recv_span<T>(rank - 1, tag, excl);
    std::vector<T> tmp(excl.begin(), excl.end());
    op.combine(std::span<T>(tmp),
               std::span<const T>(incl.data(), incl.size()));
    std::copy(tmp.begin(), tmp.end(), incl.begin());
  }
  if (rank + 1 < p) {
    comm.send_span(rank + 1, tag, std::span<const T>(incl.data(),
                                                     incl.size()));
  }
}

/// Blelloch's work-efficient up/down sweep, across ranks (one value per
/// rank), for power-of-two p.  The up-sweep is the in-place binomial
/// reduction of the classic array formulation — after round d, rank k
/// with (k+1) % 2d == 0 holds the combination of ranks (k-2d, k]; ranks
/// keep their pre-combination values implicitly, because each rank *is*
/// one array slot.  The down-sweep then pushes exclusive prefixes back
/// down: at each level the pair (k-d, k) exchanges, k-d adopting k's
/// prefix and k extending it with k-d's up-sweep value (prefix on the
/// left, so non-commutative operators are safe).
///
/// Cost: 2·log2(p) rounds but only 3(p-1) messages, versus recursive
/// doubling's ~p·log2(p) — the classic span-vs-work tradeoff of parallel
/// prefix networks (Ladner–Fischer; Blelloch, the paper's [3] and [11]).
template <typename T, LocalViewOp<T> Op>
void scan_blelloch(mprt::Comm& comm, const Op& op, std::span<T> excl,
                   std::span<T> incl) {
  const int p = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();

  // `value` plays the role of array slot x[rank]; it starts as the local
  // inclusive contribution and is overwritten by the sweeps.
  std::vector<T> value(incl.begin(), incl.end());
  std::vector<T> received(value.size());

  // Up-sweep: after the loop, rank k with (k+1) % 2d == 0 holds the
  // combination of the 2d ranks ending at k.
  int d = 1;
  for (; d < p; d <<= 1) {
    const bool is_right = (rank + 1) % (2 * d) == 0;
    const bool is_left = (rank + 1) % (2 * d) == d;
    if (is_left) {
      comm.send_span(rank + d, tag, std::span<const T>(value));
    } else if (is_right) {
      comm.recv_span<T>(rank - d, tag, received);
      // received covers earlier ranks: value = received (+) value.
      std::vector<T> tmp(received);
      op.combine(std::span<T>(tmp), std::span<const T>(value));
      value = std::move(tmp);
    }
  }

  // Down-sweep: the root's slot becomes the identity; descending the
  // levels, each left child adopts its parent's prefix and each parent
  // extends it with the left child's up-sweep value.
  if (rank == p - 1) {
    op.ident(std::span<T>(value));
  }
  for (d >>= 1; d >= 1; d >>= 1) {
    const bool is_right = (rank + 1) % (2 * d) == 0;
    const bool is_left = (rank + 1) % (2 * d) == d;
    if (is_right) {
      // Exchange: send my prefix down, fold the left subtree's sum in.
      comm.send_span(rank - d, tag, std::span<const T>(value));
      comm.recv_span<T>(rank - d, tag, received);
      op.combine(std::span<T>(value), std::span<const T>(received));
    } else if (is_left) {
      comm.send_span(rank + d, tag, std::span<const T>(value));
      comm.recv_span<T>(rank + d, tag, value);
    }
  }

  // `value` is now the exclusive prefix of this rank; incl = excl (+) own.
  std::copy(value.begin(), value.end(), excl.begin());
  std::vector<T> own(incl.begin(), incl.end());
  std::copy(excl.begin(), excl.end(), incl.begin());
  op.combine(incl, std::span<const T>(own));
}

template <typename T, LocalViewOp<T> Op>
void scan_impl(mprt::Comm& comm, const Op& op, std::span<T> excl,
               std::span<T> incl, ScanAlgo algo) {
  switch (algo) {
    case ScanAlgo::kLinear:
      scan_linear(comm, op, excl, incl);
      return;
    case ScanAlgo::kBlelloch:
      if ((comm.size() & (comm.size() - 1)) == 0) {
        scan_blelloch(comm, op, excl, incl);
        return;
      }
      scan_hillis_steele(comm, op, excl, incl);
      return;
    case ScanAlgo::kHillisSteele:
    case ScanAlgo::kAuto:
      scan_hillis_steele(comm, op, excl, incl);
      return;
  }
}

}  // namespace detail

/// LOCAL_XSCAN: exclusive scan.  On return `values` holds the combination
/// of all lower ranks' contributions; rank 0 holds the operator identity.
template <typename T, LocalViewOp<T> Op>
void local_xscan(mprt::Comm& comm, std::span<T> values, const Op& op,
                 ScanAlgo algo = ScanAlgo::kAuto) {
  std::vector<T> incl(values.begin(), values.end());
  op.ident(values);
  detail::scan_impl(comm, op, values, std::span<T>(incl), algo);
}

/// LOCAL_SCAN: inclusive scan.  On return `values` holds the combination
/// of ranks [0, rank].  The inclusive scan needs no identity function, but
/// the buffer interface carries one anyway; as the paper notes (§2), the
/// inclusive scan is derivable from the exclusive scan without
/// communication while the converse requires either an invertible combine
/// or an extra shift.
template <typename T, LocalViewOp<T> Op>
void local_scan(mprt::Comm& comm, std::span<T> values, const Op& op,
                ScanAlgo algo = ScanAlgo::kAuto) {
  std::vector<T> excl(values.size());
  op.ident(std::span<T>(excl));
  detail::scan_impl(comm, op, std::span<T>(excl), values, algo);
}

// -- Scalar convenience wrappers over binary operators ----------------------

template <typename T, BinaryOperator<T> BinOp>
T local_xscan_value(mprt::Comm& comm, T value, BinOp,
                    ScanAlgo algo = ScanAlgo::kAuto) {
  ElementwiseOp<T, BinOp> op;
  local_xscan(comm, std::span<T>(&value, 1), op, algo);
  return value;
}

template <typename T, BinaryOperator<T> BinOp>
T local_scan_value(mprt::Comm& comm, T value, BinOp,
                   ScanAlgo algo = ScanAlgo::kAuto) {
  ElementwiseOp<T, BinOp> op;
  local_scan(comm, std::span<T>(&value, 1), op, algo);
  return value;
}

}  // namespace rsmpi::coll
