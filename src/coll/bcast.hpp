// Binomial-tree broadcast.
#pragma once

#include <span>
#include <vector>

#include "mprt/comm.hpp"
#include "mprt/topology.hpp"
#include "util/error.hpp"

namespace rsmpi::coll {

/// Broadcasts a byte buffer from `root` to all ranks in ceil(log2 p)
/// rounds along a binomial tree.  On non-root ranks the returned vector is
/// the received payload; on the root it is a copy of `payload`.
inline std::vector<std::byte> bcast_bytes(mprt::Comm& comm, int root,
                                          std::span<const std::byte> payload) {
  const int p = comm.size();
  if (root < 0 || root >= p) {
    throw ArgumentError("bcast: root rank out of range");
  }
  const int tag = comm.next_collective_tag();
  // Rotate so the tree is always rooted at virtual rank 0.
  const int vrank = (comm.rank() - root + p) % p;

  std::vector<std::byte> data(payload.begin(), payload.end());
  for (const auto& step :
       mprt::topology::binomial_bcast_schedule(vrank, p)) {
    const int partner = (step.partner + root) % p;
    if (step.role == mprt::topology::BinomialStep::Role::kRecv) {
      data = comm.recv_message(partner, tag).take_payload();
    } else {
      comm.send_bytes(partner, tag, data);
    }
  }
  return data;
}

/// Broadcasts one trivially-copyable value from `root`.
template <typename T>
  requires std::is_trivially_copyable_v<T>
T bcast(mprt::Comm& comm, int root, const T& value) {
  const auto out = bcast_bytes(comm, root, bytes::to_bytes(value));
  return bytes::from_bytes<T>(out);
}

/// Broadcasts a buffer of trivially-copyable values in place; the buffer
/// must have the same extent on every rank.
template <typename T>
  requires std::is_trivially_copyable_v<T>
void bcast_span(mprt::Comm& comm, int root, std::span<T> values) {
  const auto out = bcast_bytes(
      comm, root,
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(values.data()),
          values.size_bytes()));
  if (out.size() != values.size_bytes()) {
    throw ProtocolError("bcast_span: buffer extent differs across ranks");
  }
  std::memcpy(values.data(), out.data(), out.size());
}

}  // namespace rsmpi::coll
