// Rabenseifner's allreduce: recursive-halving reduce-scatter followed by
// recursive-doubling allgather.
//
// The reduce-to-root + broadcast allreduce moves the *whole* buffer along
// every tree edge: about 2·log2(p)·n bytes on the critical path.
// Rabenseifner's algorithm exchanges halves, quarters, ... during the
// reduce-scatter and reassembles them during the allgather, moving only
// about 2·(1 − 1/p)·n bytes — the bandwidth-optimal schedule for large
// aggregated payloads (§2.1 aggregation makes payloads large; §1 notes
// commutative operators can "take better advantage of the network", and
// this schedule is the canonical example, since it combines chunks in
// pair order rather than rank order).
//
// Requires a commutative operator.  Non-power-of-two rank counts fold the
// remainder ranks into neighbours first and hand them the result last,
// MPICH-style.
#pragma once

#include <span>
#include <vector>

#include "coll/buffer_op.hpp"
#include "mprt/comm.hpp"
#include "mprt/topology.hpp"
#include "util/error.hpp"

namespace rsmpi::coll {

namespace detail {

/// Element index where chunk `c` of `chunks` begins in a buffer of n
/// elements (monotone, exactly covering [0, n)).  The product n * c can
/// exceed 64 bits for large element counts, so it is computed in 128-bit
/// arithmetic.
inline std::size_t chunk_start(std::size_t n, int chunks, int c) {
  return static_cast<std::size_t>(static_cast<unsigned __int128>(n) *
                                  static_cast<unsigned>(c) /
                                  static_cast<unsigned>(chunks));
}

}  // namespace detail

/// In-place allreduce of `values` with a commutative buffer operator via
/// reduce-scatter + allgather.  The buffer must have the same extent on
/// every rank.
template <typename T, LocalViewOp<T> Op>
void local_allreduce_rabenseifner(mprt::Comm& comm, std::span<T> values,
                                  const Op& op) {
  if (!is_commutative<Op>()) {
    throw ArgumentError(
        "rabenseifner allreduce requires a commutative operator");
  }
  const int p = comm.size();
  if (p == 1) return;
  const int tag = comm.next_collective_tag();
  const std::size_t n = values.size();

  const int pof2 = 1 << mprt::topology::floor_log2(p);
  const int rem = p - pof2;
  const int rank = comm.rank();

  // Fold the remainder: the first 2·rem ranks pair up; odds send their
  // buffer to the even neighbour and sit out until the end.
  int vrank;  // rank within the power-of-two core, or -1 if sitting out
  if (rank < 2 * rem) {
    if (rank % 2 == 1) {
      comm.send_span(rank - 1, tag, std::span<const T>(values));
      // Wait for the final result at the very end.
      comm.recv_span<T>(rank - 1, tag, values);
      return;
    }
    std::vector<T> other(n);
    comm.recv_span<T>(rank + 1, tag, other);
    op.combine(values, std::span<const T>(other));
    vrank = rank / 2;
  } else {
    vrank = rank - rem;
  }
  const auto real_rank = [&](int vr) {
    return vr < rem ? 2 * vr : vr + rem;
  };

  // Phase 1: recursive halving reduce-scatter.  Invariant: this rank
  // holds the partial reduction of chunk range [lo, hi), which always
  // contains its own chunk `vrank`.
  int lo = 0, hi = pof2;
  for (int dist = pof2 / 2; dist >= 1; dist /= 2) {
    const int partner = vrank ^ dist;
    const int mid = (lo + hi) / 2;
    // The half we keep is the one containing our chunk.
    const bool keep_low = vrank < mid;
    const int send_lo = keep_low ? mid : lo;
    const int send_hi = keep_low ? hi : mid;
    const int keep_lo = keep_low ? lo : mid;
    const int keep_hi = keep_low ? mid : hi;

    const std::size_t s0 = detail::chunk_start(n, pof2, send_lo);
    const std::size_t s1 = detail::chunk_start(n, pof2, send_hi);
    comm.send_span(real_rank(partner), tag,
                   std::span<const T>(values.data() + s0, s1 - s0));

    const std::size_t k0 = detail::chunk_start(n, pof2, keep_lo);
    const std::size_t k1 = detail::chunk_start(n, pof2, keep_hi);
    std::vector<T> other(k1 - k0);
    comm.recv_span<T>(real_rank(partner), tag, other);
    op.combine(values.subspan(k0, k1 - k0), std::span<const T>(other));

    lo = keep_lo;
    hi = keep_hi;
  }

  // Phase 2: recursive doubling allgather.  Invariant: this rank holds
  // the *final* values of the aligned chunk range [lo, hi) of width dist.
  for (int dist = 1; dist < pof2; dist *= 2) {
    const int partner = vrank ^ dist;
    const std::size_t h0 = detail::chunk_start(n, pof2, lo);
    const std::size_t h1 = detail::chunk_start(n, pof2, hi);
    comm.send_span(real_rank(partner), tag,
                   std::span<const T>(values.data() + h0, h1 - h0));

    // The partner's aligned block is the sibling of ours at this level.
    const int block = 2 * dist;
    const int base = (vrank / block) * block;
    const int plo = (lo == base) ? base + dist : base;
    const int phi = plo + dist;
    const std::size_t q0 = detail::chunk_start(n, pof2, plo);
    const std::size_t q1 = detail::chunk_start(n, pof2, phi);
    comm.recv_span<T>(real_rank(partner), tag,
                      std::span<T>(values.data() + q0, q1 - q0));
    lo = base;
    hi = base + block;
  }

  // Hand the folded-away odd neighbour its result.
  if (rank < 2 * rem) {
    comm.send_span(rank + 1, tag, std::span<const T>(values));
  }
}

}  // namespace rsmpi::coll
