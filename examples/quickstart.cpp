// Quickstart: the global-view abstraction in a dozen lines.
//
// Launches a small virtual machine, distributes an array across its ranks,
// and runs three reductions over the *conceptual whole array*: a built-in
// sum, the paper's mink operator, and a user-defined operator written
// inline below — note how little the custom operator needs beyond its
// accumulate/combine/generate trio.
//
//   $ ./quickstart [num_ranks]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "rs/rsmpi.hpp"

namespace {

// A user-defined operator: the longest run of equal consecutive values.
// Non-commutative (runs can span rank boundaries), with pre_accum/post
// hooks unnecessary — boundary runs are handled by tracking each block's
// edge runs in the state.
class LongestRun {
 public:
  static constexpr bool commutative = false;

  void accum(const int& x) {
    if (!any_) {
      any_ = true;
      first_val_ = last_val_ = x;
      head_ = tail_ = best_ = 1;
      interior_ = false;
      return;
    }
    if (x == last_val_) {
      ++tail_;
    } else {
      interior_ = true;
      tail_ = 1;
      last_val_ = x;
    }
    if (!interior_) head_ = tail_;
    if (tail_ > best_) best_ = tail_;
  }

  void combine(const LongestRun& o) {
    if (!o.any_) return;
    if (!any_) {
      *this = o;
      return;
    }
    if (last_val_ == o.first_val_) {
      const long bridged = tail_ + o.head_;
      if (bridged > best_) best_ = bridged;
      if (!o.interior_) {
        // The right block is one single run: it extends our tail.
        tail_ = bridged;
        if (!interior_) head_ = bridged;
      } else {
        tail_ = o.tail_;
      }
    } else {
      tail_ = o.tail_;
      interior_ = true;
    }
    if (o.best_ > best_) best_ = o.best_;
    if (o.interior_) interior_ = true;
    last_val_ = o.last_val_;
  }

  [[nodiscard]] long gen() const { return best_; }

 private:
  bool any_ = false;
  bool interior_ = false;  // true once more than one distinct run exists
  int first_val_ = 0;
  int last_val_ = 0;
  long head_ = 0;  // length of the run touching the block's left edge
  long tail_ = 0;  // length of the run touching the block's right edge
  long best_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_rank = 1000;

  rsmpi::mprt::run(ranks, [&](rsmpi::mprt::Comm& comm) {
    // Each rank owns one contiguous slice of the conceptual global array.
    std::vector<int> mine(per_rank);
    for (int i = 0; i < per_rank; ++i) {
      const long g = static_cast<long>(comm.rank()) * per_rank + i;
      mine[static_cast<std::size_t>(i)] = static_cast<int>((g * g) % 97);
    }

    const long total = rsmpi::rs::reduce(comm, mine, rsmpi::rs::ops::Sum<long>{});
    const auto mins = rsmpi::rs::reduce(comm, mine, rsmpi::rs::ops::MinK<int>(5));
    const long run = rsmpi::rs::reduce(comm, mine, LongestRun{});

    if (comm.rank() == 0) {
      std::printf("ranks            : %d\n", comm.size());
      std::printf("global sum       : %ld\n", total);
      std::printf("5 smallest       : %d %d %d %d %d\n", mins[0], mins[1],
                  mins[2], mins[3], mins[4]);
      std::printf("longest equal run: %ld\n", run);
    }
  });
  return 0;
}
