// The extension operators on a finance-flavoured workload: daily price
// deltas, distributed across ranks in date order.
//
//   * MaxSubarray — the best buy/hold window's total gain (the maximum
//                   contiguous subarray sum), an associative but
//                   non-commutative reduction;
//   * Segmented   — per-month running totals via a segmented sum scan
//                   (Blelloch-style segment flags at month starts);
//   * Sorted      — a one-line check that the date order survived the
//                   distribution (Listing 7 earning its keep outside NAS).
//
//   $ ./trading_days [num_ranks] [days]
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "rs/rsmpi.hpp"

namespace {

struct Day {
  int index;     // global day number (also the sortedness witness)
  long delta;    // price change in cents
  bool month_start;
};

std::vector<Day> make_days(int n) {
  std::mt19937 rng(2026);
  std::normal_distribution<double> move(0.5, 30.0);
  std::vector<Day> days(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    days[static_cast<std::size_t>(i)] = {
        i, static_cast<long>(move(rng)), i % 21 == 0 /* ~monthly */};
  }
  return days;
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 5;
  const int n = argc > 2 ? std::atoi(argv[2]) : 2100;

  const auto all = make_days(n);

  rsmpi::mprt::run(ranks, [&](rsmpi::mprt::Comm& comm) {
    namespace ops = rsmpi::rs::ops;

    // Block-distribute the days in date order.
    const int p = comm.size();
    const std::size_t base = all.size() / static_cast<std::size_t>(p);
    const std::size_t extra = all.size() % static_cast<std::size_t>(p);
    const std::size_t lo = base * static_cast<std::size_t>(comm.rank()) +
                           std::min<std::size_t>(comm.rank(), extra);
    const std::size_t len =
        base + (static_cast<std::size_t>(comm.rank()) < extra);
    const std::vector<Day> mine(all.begin() + static_cast<long>(lo),
                                all.begin() + static_cast<long>(lo + len));

    // Sanity: the distribution preserved date order (sorted reduction on
    // the day index).
    std::vector<int> indices;
    for (const auto& d : mine) indices.push_back(d.index);
    const bool ordered =
        rsmpi::rs::reduce(comm, indices, ops::Sorted<int>{});

    // Best buy/hold window (maximum subarray of deltas).
    std::vector<long> deltas;
    for (const auto& d : mine) deltas.push_back(d.delta);
    const long best_gain =
        rsmpi::rs::reduce(comm, deltas, ops::MaxSubarray<long>{});

    // Per-month running totals: segmented sum scan.
    std::vector<ops::Seg<long>> segged;
    for (const auto& d : mine) segged.push_back({d.delta, d.month_start});
    const auto month_running =
        rsmpi::rs::scan(comm, segged, ops::segmented<long>(ops::Sum<long>{}));

    if (comm.rank() == 0) {
      std::printf("days             : %d over %d ranks\n", n, comm.size());
      std::printf("date order intact: %s\n", ordered ? "yes" : "NO");
      std::printf("best window gain : %+ld cents\n", best_gain);
      std::printf("month-to-date at rank 0's first days:");
      for (std::size_t i = 0; i < month_running.size() && i < 10; ++i) {
        std::printf(" %+ld", month_running[i]);
      }
      std::printf("\n");
    }
  });
  return 0;
}
