// The paper's §3.1.3 example, end to end: particles live in one of eight
// octants; a `counts` *reduction* tallies how many particles occupy each
// octant, and a `counts` *scan* assigns every particle its rank within its
// octant — the same operator, two generate functions (red_gen/scan_gen).
//
//   $ ./particle_octants [num_ranks] [particles_per_rank]
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "rs/rsmpi.hpp"

namespace {

struct Particle {
  double x, y, z;
};

/// Octant number in [0, 8): one bit per positive axis.
int octant_of(const Particle& p) {
  return (p.x >= 0 ? 1 : 0) | (p.y >= 0 ? 2 : 0) | (p.z >= 0 ? 4 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_rank = argc > 2 ? std::atoi(argv[2]) : 12;

  rsmpi::mprt::run(ranks, [&](rsmpi::mprt::Comm& comm) {
    // Each rank owns a block of the conceptual global particle array.
    std::mt19937 rng(1000u + static_cast<unsigned>(comm.rank()));
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<Particle> particles(static_cast<std::size_t>(per_rank));
    for (auto& p : particles) p = {dist(rng), dist(rng), dist(rng)};

    std::vector<int> octants;
    octants.reserve(particles.size());
    for (const auto& p : particles) octants.push_back(octant_of(p));

    // Reduction: global occupancy of each octant.
    const auto counts =
        rsmpi::rs::reduce(comm, octants, rsmpi::rs::ops::Counts(8));

    // Scan: each particle's 1-based rank within its octant, in global
    // particle order.
    const auto ranks_in_octant =
        rsmpi::rs::scan(comm, octants, rsmpi::rs::ops::Counts(8));

    if (comm.rank() == 0) {
      std::printf("particles: %d ranks x %d = %d\n", comm.size(), per_rank,
                  comm.size() * per_rank);
      std::printf("octant occupancy:");
      long total = 0;
      for (std::size_t o = 0; o < counts.size(); ++o) {
        std::printf(" [%zu]=%ld", o, counts[o]);
        total += counts[o];
      }
      std::printf("  (total %ld)\n", total);
      std::printf("rank 0's first particles (octant -> rank-in-octant):");
      for (std::size_t i = 0; i < octants.size() && i < 8; ++i) {
        std::printf(" %d->%ld", octants[i], ranks_in_octant[i]);
      }
      std::printf("\n");
    }
  });
  return 0;
}
