// Multidimensional scans (paper §1's remark that exclusive scans enable
// "the elegant recursive definitions of multidimensional scans"): build a
// summed-area table of a distributed image by composing a row scan (pure
// local compute) with a column scan (one aggregated exclusive scan across
// ranks), then answer box-sum queries in O(1) from the table.
//
//   $ ./summed_area [num_ranks] [rows] [cols]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "coll/ops.hpp"
#include "dist/block_matrix.hpp"
#include "mprt/runtime.hpp"

namespace {

long pixel(std::int64_t r, std::int64_t c) {
  // A deterministic "image": soft diagonal gradient with texture.
  return (r * 7 + c * 13) % 32;
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::int64_t rows = argc > 2 ? std::atoll(argv[2]) : 480;
  const std::int64_t cols = argc > 3 ? std::atoll(argv[3]) : 640;

  rsmpi::mprt::run(ranks, [&](rsmpi::mprt::Comm& comm) {
    auto sat =
        rsmpi::dist::BlockMatrix<long>::from_index(comm, rows, cols, pixel);
    sat.prefix2d_inplace(rsmpi::coll::Sum<long>{});

    // Box-sum query over [r0, r1] x [c0, c1] from the four SAT corners.
    // The corners live on (at most two) specific ranks; gather the table
    // to rank 0 for the demo queries.
    const auto table = sat.gather_to(0);
    if (comm.rank() == 0) {
      auto at = [&](std::int64_t r, std::int64_t c) -> long {
        if (r < 0 || c < 0) return 0;
        return table[static_cast<std::size_t>(r * cols + c)];
      };
      auto box = [&](std::int64_t r0, std::int64_t c0, std::int64_t r1,
                     std::int64_t c1) {
        return at(r1, c1) - at(r0 - 1, c1) - at(r1, c0 - 1) +
               at(r0 - 1, c0 - 1);
      };

      std::printf("image %lldx%lld over %d ranks\n",
                  static_cast<long long>(rows), static_cast<long long>(cols),
                  comm.size());
      struct Query {
        std::int64_t r0, c0, r1, c1;
      };
      for (const Query q : {Query{0, 0, rows - 1, cols - 1},
                            Query{10, 10, 19, 19},
                            Query{rows / 2, cols / 2, rows - 1, cols - 1}}) {
        long brute = 0;
        for (std::int64_t r = q.r0; r <= q.r1; ++r) {
          for (std::int64_t c = q.c0; c <= q.c1; ++c) brute += pixel(r, c);
        }
        const long fast = box(q.r0, q.c0, q.r1, q.c1);
        std::printf(
            "box (%lld,%lld)-(%lld,%lld): SAT=%ld brute=%ld  %s\n",
            static_cast<long long>(q.r0), static_cast<long long>(q.c0),
            static_cast<long long>(q.r1), static_cast<long long>(q.c1), fast,
            brute, fast == brute ? "ok" : "MISMATCH");
      }
    }
  });
  return 0;
}
