// Distributed descriptive statistics in one combine tree each:
//
//   * MeanVar   — count/mean/variance via Welford + Chan merging, the
//                 fully general in != state != out case of §3's signatures;
//   * Histogram — Counts generalized to real-valued bins;
//   * Fuse      — min and max in a single pass and a single message per
//                 tree edge (operator-level aggregation, §2.1);
//   * MinI/MaxI — the paper's Listing 5, locating the extreme samples.
//
//   $ ./streaming_stats [num_ranks] [samples_per_rank]
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "rs/rsmpi.hpp"

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 6;
  const int per_rank = argc > 2 ? std::atoi(argv[2]) : 50'000;

  rsmpi::mprt::run(ranks, [&](rsmpi::mprt::Comm& comm) {
    namespace ops = rsmpi::rs::ops;

    // Each rank draws its block of samples: a noisy sine sweep, so the
    // distribution is bimodal and the extremes are informative.
    std::mt19937 rng(7u + static_cast<unsigned>(comm.rank()));
    std::normal_distribution<double> noise(0.0, 0.1);
    std::vector<double> samples(static_cast<std::size_t>(per_rank));
    const long base = static_cast<long>(comm.rank()) * per_rank;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const double t = static_cast<double>(base + static_cast<long>(i)) / 500.0;
      samples[i] = std::sin(t) + noise(rng);
    }

    // One pass, one tree: mean/variance.
    const auto stats = rsmpi::rs::reduce(comm, samples, ops::MeanVar{});

    // One pass, one tree: min AND max, fused.
    const auto [mn, mx] = rsmpi::rs::reduce(
        comm, samples, ops::fuse(ops::Min<double>{}, ops::Max<double>{}));

    // Histogram over [-2, 2) in 8 bins.
    std::vector<double> edges;
    for (int i = 0; i <= 8; ++i) edges.push_back(-2.0 + 0.5 * i);
    const auto hist =
        rsmpi::rs::reduce(comm, samples, ops::Histogram<double>(edges));

    // Where is the global maximum?  Listing 5's mini/maxi with a lazy
    // (value, global index) view.
    auto located = std::views::iota(std::size_t{0}, samples.size()) |
                   std::views::transform([&](std::size_t i) {
                     return ops::Located<double>{
                         samples[i], base + static_cast<long>(i)};
                   });
    const auto peak = rsmpi::rs::reduce(comm, located, ops::MaxI<double>{});

    if (comm.rank() == 0) {
      std::printf("samples        : %d x %d = %lld\n", comm.size(), per_rank,
                  static_cast<long long>(stats.count));
      std::printf("mean / stddev  : %+.4f / %.4f\n", stats.mean,
                  std::sqrt(stats.variance));
      std::printf("min / max      : %+.4f / %+.4f (fused, one reduction)\n",
                  mn, mx);
      std::printf("peak location  : global sample %ld (value %+.4f)\n",
                  peak.index, peak.value);
      std::printf("histogram      :");
      for (std::size_t b = 0; b + 2 < hist.size(); ++b) {
        std::printf(" %ld", hist[b]);
      }
      std::printf("  (under %ld, over %ld)\n", hist[hist.size() - 2],
                  hist.back());
    }
  });
  return 0;
}
