// Jacobi heat diffusion on a distributed grid: the classic stencil code,
// included because it is the canonical *consumer* of reductions — every
// iteration ends with a max-norm reduction deciding convergence, which in
// real MPI codes is a substantial fraction of all collective calls (the
// paper opens with exactly this statistic: ~9% of NPB's MPI calls are
// reductions).
//
// Structure per iteration:
//   1. halo exchange of boundary rows (BlockMatrix::exchange_halos),
//   2. local 5-point stencil sweep,
//   3. rs::reduce with Max over the local residuals -> global residual.
//
//   $ ./heat_diffusion [num_ranks] [n] [iters]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "coll/ops.hpp"
#include "dist/block_matrix.hpp"
#include "mprt/runtime.hpp"
#include "rs/ops/basic.hpp"
#include "rs/reduce.hpp"

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 128;
  const int max_iters = argc > 3 ? std::atoi(argv[3]) : 200;

  rsmpi::mprt::run(ranks, [&](rsmpi::mprt::Comm& comm) {
    using Matrix = rsmpi::dist::BlockMatrix<double>;

    // Unit square, hot west wall, cold elsewhere.
    auto grid = Matrix::from_index(comm, n, n,
                                   [&](std::int64_t r, std::int64_t c) {
                                     (void)r;
                                     return c == 0 ? 100.0 : 0.0;
                                   });

    double residual = 0.0;
    int iter = 0;
    for (; iter < max_iters; ++iter) {
      const auto halos = grid.exchange_halos();
      auto next = grid;

      {
        auto timer = comm.compute_section();
        const std::int64_t r0 = grid.local_row_start();
        for (std::int64_t r = 0; r < grid.local_rows(); ++r) {
          const std::int64_t gr = r0 + r;
          if (gr == 0 || gr == n - 1) continue;  // fixed boundary rows
          for (std::int64_t c = 1; c < n - 1; ++c) {
            const double north =
                r > 0 ? grid.at_local(r - 1, c)
                      : (halos.has_above ? halos.above[static_cast<
                                               std::size_t>(c)]
                                         : 0.0);
            const double south =
                r + 1 < grid.local_rows()
                    ? grid.at_local(r + 1, c)
                    : (halos.has_below
                           ? halos.below[static_cast<std::size_t>(c)]
                           : 0.0);
            next.at_local(r, c) =
                0.25 * (north + south + grid.at_local(r, c - 1) +
                        grid.at_local(r, c + 1));
          }
        }
      }

      // Local residuals, reduced with the global-view Max.
      std::vector<double> deltas;
      {
        auto timer = comm.compute_section();
        deltas.reserve(grid.local().size());
        for (std::size_t i = 0; i < grid.local().size(); ++i) {
          deltas.push_back(std::abs(next.local()[i] - grid.local()[i]));
        }
      }
      residual = rsmpi::rs::reduce(comm, deltas, rsmpi::rs::ops::Max<double>{});

      grid = std::move(next);
      if (residual < 1e-4) break;
    }

    if (comm.rank() == 0) {
      std::printf("grid %lldx%lld on %d ranks\n", static_cast<long long>(n),
                  static_cast<long long>(n), comm.size());
      std::printf("stopped after %d iterations, max residual %.2e\n", iter,
                  residual);
    }
    // Spot temperatures along the centre row (collective fetches).
    const std::int64_t mid = n / 2;
    const double west = grid.fetch(mid, 1);
    const double centre = grid.fetch(mid, n / 2);
    const double east = grid.fetch(mid, n - 2);
    if (comm.rank() == 0) {
      std::printf("centre row: near-west %.2f, centre %.3f, near-east %.4f\n",
                  west, centre, east);
    }
  });
  return 0;
}
