// Streaming log analytics with mergeable sketches — the MapReduce-shaped
// workload the paper's related-work section contrasts with (§5: MapReduce's
// combine/reduce split "parallels our accumulate and combine functions").
//
// Each rank holds a shard of synthetic web-log events (user id, url id,
// latency).  One pass per sketch answers:
//   * how many distinct users?               (HyperLogLog reduction)
//   * which urls dominate the traffic?       (HeavyHitters reduction)
//   * latency distribution + p-ish quantiles (Histogram reduction)
//   * was any user id seen twice? fast test  (BloomFilter reduction)
// All of it through the same reduce() entry point as the NAS kernels.
//
//   $ ./log_analytics [num_ranks] [events_per_rank]
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "rs/rsmpi.hpp"

namespace {

struct Event {
  long user;
  long url;
  double latency_ms;
};

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 6;
  const int per_rank = argc > 2 ? std::atoi(argv[2]) : 100'000;

  rsmpi::mprt::run(ranks, [&](rsmpi::mprt::Comm& comm) {
    namespace ops = rsmpi::rs::ops;

    // Synthesize this shard: Zipf-ish url popularity, ~20k distinct users.
    std::mt19937_64 rng(99u + static_cast<unsigned>(comm.rank()));
    std::exponential_distribution<double> lat(1.0 / 40.0);
    std::vector<Event> events(static_cast<std::size_t>(per_rank));
    for (auto& e : events) {
      const auto u = rng();
      e.user = static_cast<long>(u % 20'000);
      // Skewed url popularity: cubing a uniform front-loads low ids, so a
      // handful of urls dominate (what HeavyHitters is for).
      const double u01 =
          static_cast<double>(rng() % 1'000'000) / 1'000'000.0;
      e.url = static_cast<long>(u01 * u01 * u01 * 997.0);
      e.latency_ms = lat(rng);
    }

    std::vector<long> users, urls;
    std::vector<double> latencies;
    for (const auto& e : events) {
      users.push_back(e.user);
      urls.push_back(e.url);
      latencies.push_back(e.latency_ms);
    }

    const double distinct_users =
        rsmpi::rs::reduce(comm, users, ops::HyperLogLog<long>(12));
    const auto top_urls =
        rsmpi::rs::reduce(comm, urls, ops::HeavyHitters<long>(16));
    std::vector<double> edges = {0, 10, 20, 40, 80, 160, 320, 640};
    const auto lat_hist =
        rsmpi::rs::reduce(comm, latencies, ops::Histogram<double>(edges));
    const auto stats = rsmpi::rs::reduce(comm, latencies, ops::MeanVar{});

    if (comm.rank() == 0) {
      const long total = static_cast<long>(ranks) * per_rank;
      std::printf("events            : %ld over %d ranks\n", total,
                  comm.size());
      std::printf("distinct users    : ~%.0f (HyperLogLog; true <= 20000)\n",
                  distinct_users);
      std::printf("latency mean/sd   : %.1f / %.1f ms\n", stats.mean,
                  std::sqrt(stats.variance));
      std::printf("latency histogram :");
      for (std::size_t b = 0; b + 2 < lat_hist.size(); ++b) {
        std::printf(" %ld", lat_hist[b]);
      }
      std::printf(" (overflow %ld)\n", lat_hist.back());
      std::printf("hottest urls      :");
      for (std::size_t i = 0; i < top_urls.size() && i < 5; ++i) {
        std::printf(" #%ld(>=%ld)", top_urls[i].value, top_urls[i].count);
      }
      std::printf("\n");
    }
  });
  return 0;
}
