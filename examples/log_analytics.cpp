// Streaming log analytics as a multi-tenant service — the MapReduce-shaped
// workload the paper's related-work section contrasts with (§5), run not as
// four one-shot reductions but as four *tenant streams* of the streaming
// aggregation service (src/svc, docs/service.md).
//
// Every rank ingests a shard of synthetic web-log events (user id as the
// key, latency as the value); each epoch the service routes events to
// their owning shards, folds, merges through persistent collectives, and
// advances the tenants' windows:
//
//   * "requests" — Sum over all ranks, tumbling(1): requests per epoch;
//   * "users"    — HyperLogLog sliding(8,1): distinct users over the last
//                  8 epochs, refreshed every epoch (two-stack window —
//                  sketch merges have no inverse);
//   * "latency"  — Histogram sliding(6,2): latency distribution over the
//                  last 6 epochs, every 2 (invertible O(1) eviction);
//   * "worst"    — Max sliding(4,1): worst latency of the last 4 epochs,
//                  sharded on a subset of the ranks (two-stack).
//
// All planning happens at add_stream; the epoch loop neither plans nor
// allocates once warm.  The same operators and call shapes as the batch
// examples — the global-view protocol, extended in time.
//
// The per-shard folds run through the work-stealing local pool
// (docs/parallel_local.md): RSMPI_LOCAL_THREADS workers per rank chew
// each routed batch in grain-sized chunks, and the run's "par.*"
// counters land in RunResult::user_stats next to the svc totals.
//
//   $ ./log_analytics [num_ranks] [epochs] [events_per_rank_epoch]
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "rs/rsmpi.hpp"

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 12;
  const int per_epoch = argc > 3 ? std::atoi(argv[3]) : 20'000;

  // Parallel local accumulate, unless the caller chose a width.  Routed
  // batches are ~per_epoch / ranks events, so pick a grain four chunks
  // below that; the pool falls back to serial for smaller batches.
  ::setenv("RSMPI_LOCAL_THREADS", "4", /*overwrite=*/0);
  const int batch = per_epoch / (ranks > 0 ? ranks : 1);
  ::setenv("RSMPI_LOCAL_GRAIN",
           std::to_string(batch > 4 ? batch / 4 : 1).c_str(),
           /*overwrite=*/0);

  const auto res = rsmpi::mprt::run(ranks, [&](rsmpi::mprt::Comm& comm) {
    namespace ops = rsmpi::rs::ops;
    namespace svc = rsmpi::svc;

    svc::Service service(comm);

    // Four tenants, one ingest feed.  Members must be registered
    // identically on every rank (add_stream is collective, like a split).
    std::vector<int> all(static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) all[static_cast<std::size_t>(r)] = r;
    std::vector<int> evens;
    for (int r = 0; r < comm.size(); r += 2) evens.push_back(r);

    auto& requests = service.add_stream(
        "requests", all, ops::Sum<long>{},
        [](const svc::Event&) { return 1L; }, svc::WindowConfig{1});
    auto& users = service.add_stream(
        "users", all, ops::HyperLogLog<std::uint64_t>(12),
        [](const svc::Event& e) { return e.key; },
        svc::WindowConfig{.window_epochs = 8, .slide_epochs = 1});
    std::vector<double> edges = {0, 10, 20, 40, 80, 160, 320, 640};
    auto& latency = service.add_stream(
        "latency", all, ops::Histogram<double>(edges),
        [](const svc::Event& e) { return e.value; },
        svc::WindowConfig{.window_epochs = 6, .slide_epochs = 2});
    auto& worst = service.add_stream(
        "worst", evens, ops::Max<double>{},
        [](const svc::Event& e) { return e.value; },
        svc::WindowConfig{.window_epochs = 4, .slide_epochs = 1});

    // The epoch loop: ingest, step, observe.
    std::mt19937_64 rng(99u + static_cast<unsigned>(comm.rank()));
    std::exponential_distribution<double> lat(1.0 / 40.0);
    for (int e = 0; e < epochs; ++e) {
      for (int i = 0; i < per_epoch; ++i) {
        // ~20k distinct users; a slow diurnal drift in latency scale.
        const svc::Event ev{rng() % 20'000,
                            lat(rng) * (1.0 + 0.5 * (e % 4))};
        requests.stage(ev);
        users.stage(ev);
        latency.stage(ev);
        worst.stage(ev);
      }
      service.step_epoch();

      if (comm.rank() == 0) {
        std::printf("epoch %2d : %ld requests", e + 1,
                    requests.last_window().value_or(0L));
        if (users.last_window().has_value()) {
          std::printf(", ~%.0f users/8ep", *users.last_window());
        }
        if (worst.last_window().has_value()) {
          std::printf(", worst %.0f ms/4ep", *worst.last_window());
        }
        if (latency.last_window().has_value()) {
          const auto& h = *latency.last_window();
          std::printf(", lat[");
          for (std::size_t b = 0; b + 2 < h.size(); ++b) {
            std::printf("%s%ld", b ? " " : "", h[b]);
          }
          std::printf("]");
        }
        std::printf("\n");
      }
    }

    service.publish();
    if (comm.rank() == 0) {
      std::printf("\nrank 0 stat dump (docs/service.md schema):\n%s\n",
                  service.stats_json().c_str());
    }
  });

  // publish() folded every rank's totals into RunResult::user_stats.
  const auto stat = [&](const char* k) {
    const auto it = res.user_stats.find(k);
    return it == res.user_stats.end() ? 0.0 : it->second;
  };
  std::printf("\ntotals  : %.0f events, %.0f stream-epochs, %.0f windows\n",
              stat("svc.events"), stat("svc.epochs"), stat("svc.windows"));
  std::printf("modelled: %.2fms makespan, %.1fM events/s aggregate\n",
              res.makespan_s * 1e3,
              stat("svc.events") / res.makespan_s / 1e6);
  if (res.local_sections > 0) {
    std::printf("local   : %llu workers/rank, %.0f parallel sections, "
                "%.0f chunks, %.0f steals\n",
                static_cast<unsigned long long>(res.local_threads),
                stat("par.sections"), stat("par.chunks"), stat("par.steals"));
  }
  return 0;
}
