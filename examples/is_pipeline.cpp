// NAS IS end to end (paper §4.1): generate keys, bucket-sort them across
// the virtual machine, then verify global sortedness three ways — the NPB
// C+MPI structure, the scalar-optimized variant, and the one-line RSMPI
// `sorted` reduction — reporting modelled time and message counts for
// each.
//
//   $ ./is_pipeline [num_ranks] [class S|W|A|B|C]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "coll/barrier.hpp"
#include "nas/is.hpp"
#include "rs/rsmpi.hpp"

namespace {

using namespace rsmpi;

nas::ProblemClass parse_class(const char* s) {
  switch (s[0]) {
    case 'S': return nas::ProblemClass::S;
    case 'W': return nas::ProblemClass::W;
    case 'A': return nas::ProblemClass::A;
    case 'B': return nas::ProblemClass::B;
    case 'C': return nas::ProblemClass::C;
    default:
      std::fprintf(stderr, "unknown class '%s', using S\n", s);
      return nas::ProblemClass::S;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const auto cls = parse_class(argc > 2 ? argv[2] : "S");
  const auto params = nas::is_params(cls);

  std::printf("NAS IS, class %s: %lld keys in [0, %lld), %d ranks\n",
              std::string(nas::to_string(cls)).c_str(),
              static_cast<long long>(params.total_keys),
              static_cast<long long>(params.max_key), ranks);

  mprt::run(ranks, [&](mprt::Comm& comm) {
    auto keys = nas::is_generate_keys(comm, params);
    const auto sorted = nas::is_bucket_sort(comm, std::move(keys), params);

    struct Impl {
      const char* name;
      bool (*verify)(mprt::Comm&, const std::vector<nas::Key>&);
    };
    const Impl impls[] = {
        {"nas-mpi (2 refs/elt)", nas::is_verify_nas_mpi},
        {"opt-mpi (1 ref/elt)", nas::is_verify_opt_mpi},
        {"rsmpi (sorted reduce)", nas::is_verify_rsmpi},
    };

    for (const auto& impl : impls) {
      coll::barrier(comm);
      comm.clock().reset();
      comm.reset_counters();
      const bool ok = impl.verify(comm, sorted);
      coll::barrier(comm);
      if (comm.rank() == 0) {
        std::printf("  %-22s verified=%-5s  modelled time %8.3f ms\n",
                    impl.name, ok ? "true" : "false",
                    comm.clock().now() * 1e3);
      }
    }
  });
  return 0;
}
