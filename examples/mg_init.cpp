// NAS MG ZRAN3 (paper §4.2): fill a distributed 3-D grid with random
// values, locate the ten largest and ten smallest with their positions,
// and write the +-1 charges — comparing the F+MPI structure (forty
// built-in reductions) against the single user-defined TopBottomK
// reduction, with message counts to show where the forty went.
//
//   $ ./mg_init [num_ranks] [class S|W|A|B|C]
#include <cstdio>
#include <cstdlib>

#include "coll/barrier.hpp"
#include "nas/mg.hpp"
#include "rs/rsmpi.hpp"

namespace {

using namespace rsmpi;

nas::ProblemClass parse_class(const char* s) {
  switch (s[0]) {
    case 'S': return nas::ProblemClass::S;
    case 'W': return nas::ProblemClass::W;
    case 'A': return nas::ProblemClass::A;
    case 'B': return nas::ProblemClass::B;
    case 'C': return nas::ProblemClass::C;
    default: return nas::ProblemClass::S;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const auto cls = parse_class(argc > 2 ? argv[2] : "S");
  const auto params = nas::mg_params(cls);

  std::printf("NAS MG ZRAN3, class %s: %dx%dx%d grid, %d ranks\n",
              std::string(nas::to_string(cls)).c_str(), params.nx, params.ny,
              params.nz, ranks);

  mprt::run(ranks, [&](mprt::Comm& comm) {
    auto grid = nas::mg_fill_grid(comm, params);

    struct Impl {
      const char* name;
      nas::MgCharges (*find)(mprt::Comm&, const nas::MgGrid&, std::size_t);
    };
    const Impl impls[] = {
        {"f-mpi  (40 reductions)", nas::mg_zran3_baseline},
        {"rsmpi  ( 1 reduction) ", nas::mg_zran3_rsmpi},
    };

    nas::MgCharges last;
    for (const auto& impl : impls) {
      coll::barrier(comm);
      comm.clock().reset();
      comm.reset_counters();
      const auto charges = impl.find(comm, grid, 10);
      coll::barrier(comm);
      const auto msgs = comm.messages_sent();
      if (comm.rank() == 0) {
        std::printf("  %s  modelled %8.3f ms, rank0 sent %llu msgs\n",
                    impl.name, comm.clock().now() * 1e3,
                    static_cast<unsigned long long>(msgs));
      }
      last = charges;
    }

    const int written = nas::mg_apply_charges(grid, last);
    (void)written;
    if (comm.rank() == 0) {
      std::printf("  charge positions (+1): ");
      for (const auto pos : last.positive) {
        std::printf("%lld ", static_cast<long long>(pos));
      }
      std::printf("\n  charge positions (-1): ");
      for (const auto pos : last.negative) {
        std::printf("%lld ", static_cast<long long>(pos));
      }
      std::printf("\n");
    }
  });
  return 0;
}
