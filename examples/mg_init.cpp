// NAS MG ZRAN3 (paper §4.2): fill a distributed 3-D grid with random
// values, locate the ten largest and ten smallest with their positions,
// and write the +-1 charges — comparing the F+MPI structure (forty
// built-in reductions) against the single user-defined TopBottomK
// reduction, with message counts to show where the forty went.
//
// The nonblocking epilogue overlaps the charge search with the fill of the
// next random field: mg_zran3_rsmpi_async starts the combine, the rank
// fills the next grid plane by plane with coll::nb::poll() between planes,
// and the combine tree climbs during the fill — the modelled time shows
// the overlap as critical-path savings.
//
//   $ ./mg_init [num_ranks] [class S|W|A|B|C]
#include <cstdio>
#include <cstdlib>
#include <span>

#include "coll/barrier.hpp"
#include "nas/mg.hpp"
#include "nas/randlc.hpp"
#include "rs/rsmpi.hpp"

namespace {

using namespace rsmpi;

nas::ProblemClass parse_class(const char* s) {
  switch (s[0]) {
    case 'S': return nas::ProblemClass::S;
    case 'W': return nas::ProblemClass::W;
    case 'A': return nas::ProblemClass::A;
    case 'B': return nas::ProblemClass::B;
    case 'C': return nas::ProblemClass::C;
    default: return nas::ProblemClass::S;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const auto cls = parse_class(argc > 2 ? argv[2] : "S");
  const auto params = nas::mg_params(cls);

  std::printf("NAS MG ZRAN3, class %s: %dx%dx%d grid, %d ranks\n",
              std::string(nas::to_string(cls)).c_str(), params.nx, params.ny,
              params.nz, ranks);

  mprt::run(ranks, [&](mprt::Comm& comm) {
    auto grid = nas::mg_fill_grid(comm, params);

    struct Impl {
      const char* name;
      nas::MgCharges (*find)(mprt::Comm&, const nas::MgGrid&, std::size_t);
    };
    const Impl impls[] = {
        {"f-mpi  (40 reductions)", nas::mg_zran3_baseline},
        {"rsmpi  ( 1 reduction) ", nas::mg_zran3_rsmpi},
    };

    nas::MgCharges last;
    for (const auto& impl : impls) {
      coll::barrier(comm);
      comm.clock().reset();
      comm.reset_counters();
      const auto charges = impl.find(comm, grid, 10);
      coll::barrier(comm);
      const auto msgs = comm.messages_sent();
      if (comm.rank() == 0) {
        std::printf("  %s  modelled %8.3f ms, rank0 sent %llu msgs\n",
                    impl.name, comm.clock().now() * 1e3,
                    static_cast<unsigned long long>(msgs));
      }
      last = charges;
    }

    // Overlapped: start the reduction, fill the *next* field's grid plane
    // by plane (a fresh stream of the same generator), and poll the
    // progress engine between planes so the combine overlaps the fill.
    coll::barrier(comm);
    comm.clock().reset();
    comm.reset_counters();
    auto future = nas::mg_zran3_rsmpi_async(comm, grid, 10);
    nas::MgGrid next = grid;  // same slab geometry, values overwritten
    const int plane = next.nx * next.ny;
    const auto field_cells = static_cast<std::uint64_t>(next.nx) * next.ny *
                             static_cast<std::uint64_t>(next.nz);
    for (int zl = 0; zl < next.local_nz; ++zl) {
      const std::uint64_t offset =
          field_cells + static_cast<std::uint64_t>(next.z0 + zl) *
                            static_cast<std::uint64_t>(plane);
      double x = nas::randlc_jump(nas::kRandlcSeed, nas::kRandlcA, offset);
      {
        auto timer = comm.compute_section();
        nas::vranlc(x, nas::kRandlcA,
                    std::span<double>(next.values)
                        .subspan(static_cast<std::size_t>(zl) * plane,
                                 static_cast<std::size_t>(plane)));
      }
      coll::nb::poll();
    }
    const auto overlapped = future.get();
    coll::barrier(comm);
    if (comm.rank() == 0) {
      std::printf(
          "  rsmpi  (async+fill)     modelled %8.3f ms, rank0 sent %llu "
          "msgs\n",
          comm.clock().now() * 1e3,
          static_cast<unsigned long long>(comm.messages_sent()));
    }
    if (overlapped.positive != last.positive ||
        overlapped.negative != last.negative) {
      std::printf("  MISMATCH: async charges differ from blocking charges\n");
    }

    const int written = nas::mg_apply_charges(grid, last);
    (void)written;
    if (comm.rank() == 0) {
      std::printf("  charge positions (+1): ");
      for (const auto pos : last.positive) {
        std::printf("%lld ", static_cast<long long>(pos));
      }
      std::printf("\n  charge positions (-1): ");
      for (const auto pos : last.negative) {
        std::printf("%lld ", static_cast<long long>(pos));
      }
      std::printf("\n");
    }
  });
  return 0;
}
