// Listing 8 of the paper, runnable: the `sorted` operator in the RSMPI
// C style, applied with RSMPI_Reduceall — including §4's convenience of
// defaulting the communicator (the analogue of MPI_COMM_WORLD).
//
//   $ ./rsmpi_listing8 [num_ranks]
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "rsmpi_c/rsmpi_c.hpp"

namespace {

// rsmpi operator sorted {            -- Listing 8, line for line --
//   non-commutative
//   state { int first, last; int status; }
//   ...
// }
struct Sorted {
  using In = int;
  struct State {
    int first, last;
    int status;
  };
  static constexpr bool commutative = false;

  static void ident(State& s) {
    s.first = INT_MAX;
    s.last = INT_MIN;
    s.status = 1;
  }
  static void pre_accum(State& s, const In& i) { s.first = i; }
  static void accum(State& s, const In& i) {
    if (s.last > i) s.status = 0;
    s.last = i;
  }
  static void combine(State& s1, const State& s2) {
    s1.status = s1.status && s2.status && (s1.last <= s2.first);
    s1.last = s2.last;
  }
  static int generate(const State& s) { return s.status; }
};

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;

  rsmpi::mprt::run(ranks, [](rsmpi::mprt::Comm& comm) {
    // Each rank's slice of a globally ascending array...
    std::vector<int> keys(1000);
    std::iota(keys.begin(), keys.end(), comm.rank() * 1000);

    int sorted = 0;
    rsmpi::c_api::RSMPI_Reduceall<Sorted>(&sorted, keys);
    if (comm.rank() == 0) {
      std::printf("ascending data : sorted=%d (expect 1)\n", sorted);
    }

    // ...then break one rank's slice and ask again.
    if (comm.rank() == comm.size() / 2) {
      std::swap(keys.front(), keys.back());
    }
    rsmpi::c_api::RSMPI_Reduceall<Sorted>(&sorted, keys);
    if (comm.rank() == 0) {
      std::printf("after a swap   : sorted=%d (expect 0)\n", sorted);
    }
  });
  return 0;
}
