// Determinism and correctness suite for the work-stealing parallel local
// accumulate (src/par/).
//
// The load-bearing claim: with the pool enabled, every reduction is
// *bit-identical* to the serial loop — for every operator in the zoo
// (commutative and noncommutative), at every pool width and grain,
// independent of the stealing schedule.  The suite checks that claim
// across worker counts {1, 2, 3, 8} x grains {1, 64, extent+1} (the last
// forces the serial fallback), plus the boundary-hook exactly-once
// contract, empty/single-element edges, raw do_all coverage, forced
// stealing, exception propagation, and the RunResult counter plumbing.
//
// The TSAN CI job re-runs this binary with RSMPI_LOCAL_THREADS=4 so the
// pool's deques and completion protocol are race-checked on every push;
// the suite also sweeps the env vars itself, so it exercises parallel
// paths under any outer environment.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "mprt/runtime.hpp"
#include "par/accumulate.hpp"
#include "par/do_all.hpp"
#include "par/pool.hpp"
#include "rs/ops/basic.hpp"
#include "rs/ops/concat.hpp"
#include "rs/ops/counts.hpp"
#include "rs/ops/histogram.hpp"
#include "rs/ops/maxsubarray.hpp"
#include "rs/ops/mink.hpp"
#include "rs/ops/sketches.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "rs/serial.hpp"
#include "svc/persistent.hpp"
#include "verify/checker.hpp"

namespace {

using namespace rsmpi;
using namespace rsmpi::rs;

/// Scoped environment override, restoring the previous value on exit so
/// sweeps cannot leak into later tests.
class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() {
    if (old_.has_value()) {
      ::setenv(name_, old_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::optional<std::string> old_;
};

constexpr int kThreadSweep[] = {1, 2, 3, 8};

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Accumulates `input` through rs::reduce on one rank for every (pool
/// width, grain) in the sweep and expects the generated result to equal
/// the serial oracle's, exactly.
template <typename Op, typename In>
void check_zoo_op(const std::string& label, const Op& prototype,
                  const std::vector<In>& input) {
  const auto expected =
      red_result(serial::reduce_state(std::span<const In>(input), Op(prototype)));
  for (const int threads : kThreadSweep) {
    for (const std::size_t grain :
         {std::size_t{1}, std::size_t{64}, input.size() + 1}) {
      EnvGuard tg("RSMPI_LOCAL_THREADS", std::to_string(threads));
      EnvGuard gg("RSMPI_LOCAL_GRAIN", std::to_string(grain));
      mprt::run(1, [&](mprt::Comm& comm) {
        const auto got =
            rs::reduce(comm, std::span<const In>(input), Op(prototype));
        EXPECT_EQ(got, expected)
            << label << " threads=" << threads << " grain=" << grain;
      });
    }
  }
}

TEST(ParDeterminism, SumBitIdenticalAcrossThreadsAndGrains) {
  std::vector<long> input;
  std::uint64_t s = 1;
  for (int i = 0; i < 4000; ++i) {
    input.push_back(static_cast<long>(splitmix(s) % 1000) - 500);
  }
  check_zoo_op("Sum<long>", ops::Sum<long>{}, input);
}

TEST(ParDeterminism, MinMaxBitIdenticalAcrossThreadsAndGrains) {
  std::vector<int> input;
  std::uint64_t s = 2;
  for (int i = 0; i < 4000; ++i) {
    input.push_back(static_cast<int>(splitmix(s) % 100000) - 50000);
  }
  check_zoo_op("Min<int>", ops::Min<int>{}, input);
  check_zoo_op("Max<int>", ops::Max<int>{}, input);
}

TEST(ParDeterminism, CountsBitIdenticalAcrossThreadsAndGrains) {
  std::vector<int> input;
  std::uint64_t s = 3;
  for (int i = 0; i < 4000; ++i) {
    input.push_back(static_cast<int>(splitmix(s) % 8));
  }
  check_zoo_op("Counts(8)", ops::Counts(8), input);
}

TEST(ParDeterminism, ConcatNoncommutativeBitIdentical) {
  std::vector<char> input;
  std::uint64_t s = 4;
  for (int i = 0; i < 4000; ++i) {
    input.push_back(static_cast<char>('a' + splitmix(s) % 26));
  }
  check_zoo_op("Concat", ops::Concat{}, input);
}

TEST(ParDeterminism, MinKBitIdenticalAcrossThreadsAndGrains) {
  std::vector<int> input;
  std::uint64_t s = 5;
  for (int i = 0; i < 4000; ++i) {
    input.push_back(static_cast<int>(splitmix(s) % 1000000));
  }
  check_zoo_op("MinK<int>(4)", ops::MinK<int>(4), input);
}

TEST(ParDeterminism, HistogramBitIdenticalAcrossThreadsAndGrains) {
  std::vector<int> input;
  std::uint64_t s = 6;
  for (int i = 0; i < 4000; ++i) {
    input.push_back(static_cast<int>(splitmix(s) % 128));
  }
  check_zoo_op("Histogram<int>", ops::Histogram<int>({0, 32, 64, 96, 128}),
               input);
}

TEST(ParDeterminism, MaxSubarrayNoncommutativeBitIdentical) {
  std::vector<long> input;
  std::uint64_t s = 7;
  for (int i = 0; i < 4000; ++i) {
    input.push_back(static_cast<long>(splitmix(s) % 101) - 50);
  }
  check_zoo_op("MaxSubarray<long>", ops::MaxSubarray<long>{}, input);
}

TEST(ParDeterminism, HyperLogLogBitIdenticalAcrossThreadsAndGrains) {
  std::vector<std::uint64_t> input;
  std::uint64_t s = 8;
  for (int i = 0; i < 4000; ++i) input.push_back(splitmix(s) % 1500);
  check_zoo_op("HyperLogLog(10)", ops::HyperLogLog<std::uint64_t>(10), input);
}

TEST(ParDeterminism, OrderedWordNoncommutativeBitIdentical) {
  // OrderedWord concatenates "<token>" per element — any chunk
  // misordering, duplication, or loss changes the word.  The strongest
  // single witness that the chunk-state merge preserves the serial
  // association exactly.
  std::vector<int> input;
  std::uint64_t s = 9;
  for (int i = 0; i < 2000; ++i) {
    input.push_back(static_cast<int>(splitmix(s) % 997));
  }
  check_zoo_op("OrderedWord", verify::OrderedWord{}, input);
}

TEST(ParDeterminism, CanonSetBitIdenticalAcrossThreadsAndGrains) {
  std::vector<int> input;
  std::uint64_t s = 13;
  for (int i = 0; i < 2000; ++i) {
    input.push_back(static_cast<int>(splitmix(s) % 200));  // heavy dedup
  }
  check_zoo_op("CanonSet", verify::CanonSet{}, input);
}

TEST(ParDeterminism, TsqrCanonicalChunkedAcrossWidths) {
  // TSQR's combine is bitwise nonassociative, so the pooled result equals
  // the *canonical chunked fold* — identity clones per chunk, merged in
  // ascending chunk order — not the plain serial accum loop.  That fold
  // is a function of (extent, grain) only: every pool width >= 2 must
  // reproduce its bits exactly, and width 1 joins them under
  // RSMPI_LOCAL_CHUNKED=1 (ISSUE 9).
  constexpr std::size_t kCols = 4;
  constexpr std::size_t kGrain = 64;
  std::vector<std::vector<double>> rows;
  std::uint64_t s = 14;
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> row(kCols);
    for (auto& v : row) {
      v = static_cast<double>(splitmix(s) % 4001) / 16.0 - 125.0;
    }
    rows.push_back(std::move(row));
  }

  ops::TSQR oracle(kCols);
  for (std::size_t lo = 0; lo < rows.size(); lo += kGrain) {
    ops::TSQR chunk(kCols);
    for (std::size_t i = lo; i < std::min(rows.size(), lo + kGrain); ++i) {
      chunk.accum(rows[i]);
    }
    oracle.combine(chunk);
  }
  const auto expected = save_op(oracle);

  EnvGuard cg("RSMPI_LOCAL_CHUNKED", "1");
  EnvGuard gg("RSMPI_LOCAL_GRAIN", std::to_string(kGrain));
  for (const int threads : kThreadSweep) {
    EnvGuard tg("RSMPI_LOCAL_THREADS", std::to_string(threads));
    mprt::run(1, [&](mprt::Comm& comm) {
      const ops::TSQR got = rs::reduce_state(
          comm, std::span<const std::vector<double>>(rows), ops::TSQR(kCols));
      EXPECT_EQ(save_op(got), expected) << "threads=" << threads;
    });
  }
}

// Satellite 6: the shared verify registry drives this tier too — a new
// zoo operator without a ParDeterminism witness fails here.
TEST(ParDeterminism, EveryRegistryOpIsCovered) {
  const std::vector<std::string> covered = {"counts", "word", "canon", "tsqr"};
  for (const std::string& name : verify::zoo_names()) {
    EXPECT_TRUE(std::find(covered.begin(), covered.end(), name) !=
                covered.end())
        << "registry operator '" << name
        << "' has no witness in the par determinism suite";
  }
}

TEST(ParDeterminism, CrossRankReductionMatchesSerialWithPool) {
  // p = 3 with the pool active on every rank: parallel local accumulate
  // composed with the cross-rank combine phase, noncommutative included.
  std::vector<int> input;
  std::uint64_t s = 10;
  for (int i = 0; i < 3000; ++i) {
    input.push_back(static_cast<int>(splitmix(s) % 128));
  }
  const auto expected_hist = red_result(serial::reduce_state(
      std::span<const int>(input), ops::Histogram<int>({0, 32, 64, 96, 128})));
  const auto expected_word = red_result(
      serial::reduce_state(std::span<const int>(input), verify::OrderedWord{}));
  EnvGuard tg("RSMPI_LOCAL_THREADS", "8");
  EnvGuard gg("RSMPI_LOCAL_GRAIN", "16");
  mprt::run(3, [&](mprt::Comm& comm) {
    const std::size_t lo = input.size() * static_cast<std::size_t>(comm.rank()) / 3;
    const std::size_t hi =
        input.size() * (static_cast<std::size_t>(comm.rank()) + 1) / 3;
    const auto slice = std::span<const int>(input).subspan(lo, hi - lo);
    EXPECT_EQ(rs::reduce(comm, slice, ops::Histogram<int>({0, 32, 64, 96, 128})),
              expected_hist);
    EXPECT_EQ(rs::reduce(comm, slice, verify::OrderedWord{}), expected_word);
  });
}

TEST(ParDeterminism, ScanMatchesSerialOracleWithPool) {
  std::vector<int> input;
  std::uint64_t s = 11;
  for (int i = 0; i < 1200; ++i) {
    input.push_back(static_cast<int>(splitmix(s) % 8));
  }
  const auto expected = serial::scan(std::span<const int>(input), ops::Counts(8));
  for (const int threads : {1, 8}) {
    EnvGuard tg("RSMPI_LOCAL_THREADS", std::to_string(threads));
    EnvGuard gg("RSMPI_LOCAL_GRAIN", "32");
    std::vector<std::vector<long>> slices(2);
    mprt::run(2, [&](mprt::Comm& comm) {
      const std::size_t half = input.size() / 2;
      const auto mine = std::span<const int>(input).subspan(
          comm.rank() == 0 ? 0 : half, half);
      slices[static_cast<std::size_t>(comm.rank())] =
          rs::scan(comm, mine, ops::Counts(8));
    });
    std::vector<long> got = slices[0];
    got.insert(got.end(), slices[1].begin(), slices[1].end());
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ParDeterminism, PersistentEpochsMatchSerialWithPool) {
  // The svc persistent path reuses detail::accumulate_local, so warm
  // epochs go through the pool too; every epoch must stay oracle-exact.
  std::vector<long> input;
  std::uint64_t s = 12;
  for (int i = 0; i < 2000; ++i) {
    input.push_back(static_cast<long>(splitmix(s) % 500));
  }
  const auto expected =
      serial::reduce_state(std::span<const long>(input), ops::Sum<long>{}).gen();
  EnvGuard tg("RSMPI_LOCAL_THREADS", "4");
  EnvGuard gg("RSMPI_LOCAL_GRAIN", "64");
  mprt::run(2, [&](mprt::Comm& comm) {
    const std::size_t half = input.size() / 2;
    const auto mine = std::span<const long>(input).subspan(
        comm.rank() == 0 ? 0 : half, half);
    svc::PersistentReduce<ops::Sum<long>> handle(comm, ops::Sum<long>{});
    for (int epoch = 0; epoch < 3; ++epoch) {
      EXPECT_EQ(handle.execute_state(mine).gen(), expected);
    }
  });
}

// --- boundary hooks ---------------------------------------------------------

/// Counting operator: combine sums the hook counters of chunk states, so
/// any spurious per-chunk pre/post firing shows up in the final count.
struct HookCounter {
  long sum = 0;
  int pre_calls = 0;
  int post_calls = 0;
  long first_seen = -1;
  long last_seen = -1;
  void pre_accum(const long& x) {
    ++pre_calls;
    first_seen = x;
  }
  void accum(const long& x) { sum += x; }
  void post_accum(const long& x) {
    ++post_calls;
    last_seen = x;
  }
  void combine(const HookCounter& o) {
    sum += o.sum;
    pre_calls += o.pre_calls;
    post_calls += o.post_calls;
  }
  [[nodiscard]] long gen() const { return sum; }
};

TEST(ParDeterminism, PrePostFireExactlyOnceOnTrueBoundaries) {
  std::vector<long> input;
  for (long i = 0; i < 100; ++i) input.push_back(i + 7);
  for (const int threads : {1, 3, 8}) {
    EnvGuard tg("RSMPI_LOCAL_THREADS", std::to_string(threads));
    EnvGuard gg("RSMPI_LOCAL_GRAIN", "1");
    mprt::run(1, [&](mprt::Comm& comm) {
      const HookCounter out = rs::reduce_state(
          comm, std::span<const long>(input), HookCounter{});
      EXPECT_EQ(out.pre_calls, 1) << "threads=" << threads;
      EXPECT_EQ(out.post_calls, 1) << "threads=" << threads;
      EXPECT_EQ(out.first_seen, 7) << "threads=" << threads;
      EXPECT_EQ(out.last_seen, 106) << "threads=" << threads;
      EXPECT_EQ(out.sum, (7 + 106) * 100 / 2);
    });
  }
}

TEST(ParDeterminism, EmptyAndSingleElementEdges) {
  EnvGuard tg("RSMPI_LOCAL_THREADS", "8");
  EnvGuard gg("RSMPI_LOCAL_GRAIN", "1");
  mprt::run(1, [&](mprt::Comm& comm) {
    const std::vector<long> empty;
    const HookCounter none =
        rs::reduce_state(comm, std::span<const long>(empty), HookCounter{});
    EXPECT_EQ(none.pre_calls, 0);
    EXPECT_EQ(none.post_calls, 0);
    EXPECT_EQ(none.sum, 0);

    const std::vector<long> one = {42};
    const HookCounter single =
        rs::reduce_state(comm, std::span<const long>(one), HookCounter{});
    EXPECT_EQ(single.pre_calls, 1);
    EXPECT_EQ(single.post_calls, 1);
    EXPECT_EQ(single.first_seen, 42);
    EXPECT_EQ(single.last_seen, 42);
    EXPECT_EQ(single.sum, 42);
  });
}

// --- the pool itself --------------------------------------------------------

TEST(ParPool, DoAllVisitsEveryIndexExactlyOnce) {
  EnvGuard tg("RSMPI_LOCAL_THREADS", "8");
  const std::size_t n = 10000;
  std::vector<int> visits(n, 0);
  const par::RunStats stats =
      par::do_all(n, [&](std::size_t i) { visits[i] += 1; }, /*grain=*/1);
  EXPECT_EQ(stats.chunks, n);
  EXPECT_EQ(stats.threads, 8u);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST(ParPool, StealsMoveBlockedOwnersWorkAndAreCounted) {
  // Chunk 0's executor (worker 0, which owns the leading block) parks
  // until every other chunk has run — so its remaining block can only
  // finish via stealing, making steals >= 1 deterministic.
  par::WorkerPool pool(4);
  constexpr std::size_t kChunks = 64;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t done_elsewhere = 0;
  const par::RunStats stats = pool.run_chunks(
      kChunks, [&](unsigned, std::size_t c) {
        std::unique_lock<std::mutex> lk(mu);
        if (c == 0) {
          cv.wait_for(lk, std::chrono::seconds(30),
                      [&] { return done_elsewhere >= kChunks - 1; });
        } else if (++done_elsewhere >= kChunks - 1) {
          cv.notify_all();
        }
      });
  EXPECT_EQ(stats.chunks, kChunks);
  EXPECT_GE(stats.steals, 1u);
  EXPECT_EQ(stats.threads, 4u);
}

TEST(ParPool, BodyExceptionPropagatesAndPoolSurvives) {
  EnvGuard tg("RSMPI_LOCAL_THREADS", "4");
  EnvGuard gg("RSMPI_LOCAL_GRAIN", "1");
  EXPECT_THROW(par::do_all(200,
                           [](std::size_t i) {
                             if (i == 37) {
                               throw std::runtime_error("chunk 37 boom");
                             }
                           }),
               std::runtime_error);
  // Same pool, next section: fully usable.
  std::vector<int> visits(200, 0);
  par::do_all(200, [&](std::size_t i) { visits[i] += 1; });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i], 1) << "index " << i;
  }
}

// --- counters + serial fallback --------------------------------------------

TEST(ParAccumulate, CountersSurfaceThroughRunResult) {
  EnvGuard tg("RSMPI_LOCAL_THREADS", "4");
  EnvGuard gg("RSMPI_LOCAL_GRAIN", "16");
  std::vector<long> input(1000);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<long>(i);
  }
  const auto result = mprt::run(2, [&](mprt::Comm& comm) {
    const auto mine = std::span<const long>(input).subspan(
        comm.rank() == 0 ? 0 : 500, 500);
    (void)rs::reduce(comm, mine, ops::Sum<long>{});
    EXPECT_EQ(comm.local_threads(), 4u);
    EXPECT_EQ(comm.local_parallel_sections(), 1u);
    EXPECT_EQ(comm.local_chunks(), 32u);  // ceil(500 / 16)
  });
  EXPECT_EQ(result.local_sections, 2u);
  EXPECT_EQ(result.local_chunks, 64u);
  EXPECT_EQ(result.local_threads, 4u);
  EXPECT_EQ(result.user_stats.at("par.sections"), 2.0);
  EXPECT_EQ(result.user_stats.at("par.chunks"), 64.0);
  EXPECT_EQ(result.user_stats.at("par.threads"), 4.0);
  EXPECT_TRUE(result.user_stats.count("par.steals") == 1);
}

TEST(ParAccumulate, SerialFallbackBelowGrainRunsNoSection) {
  EnvGuard tg("RSMPI_LOCAL_THREADS", "8");
  EnvGuard gg("RSMPI_LOCAL_GRAIN", "100000");
  std::vector<long> input(500, 1);
  const auto result = mprt::run(1, [&](mprt::Comm& comm) {
    EXPECT_EQ(rs::reduce(comm, std::span<const long>(input), ops::Sum<long>{}),
              500);
  });
  EXPECT_EQ(result.local_sections, 0u);
  EXPECT_EQ(result.local_threads, 0u);
  EXPECT_EQ(result.user_stats.count("par.sections"), 0u);
}

TEST(ParAccumulate, DefaultEnvironmentStaysSerial) {
  EnvGuard tg("RSMPI_LOCAL_THREADS", "");
  std::vector<long> input(20000, 2);
  const auto result = mprt::run(1, [&](mprt::Comm& comm) {
    EXPECT_EQ(rs::reduce(comm, std::span<const long>(input), ops::Sum<long>{}),
              40000);
  });
  EXPECT_EQ(result.local_sections, 0u);
}

}  // namespace
