// Tests for the global-view distributed array: geometry, rank-count
// independence, and the Chapel-style reduce/scan call sites.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dist/block_array.hpp"
#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/serial.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
using dist::BlockArray;

class BlockArraySweep : public ::testing::TestWithParam<int> {};

TEST_P(BlockArraySweep, GeometryPartitionsIndexSpace) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    const BlockArray<int> a(comm, 103);
    EXPECT_EQ(a.size(), 103);
    // Everyone agrees on ownership, and each rank owns exactly its span.
    for (std::int64_t i = 0; i < a.size(); ++i) {
      const bool mine = i >= a.local_start() &&
                        i < a.local_start() + a.local_size();
      EXPECT_EQ(a.owns(i), mine) << "i=" << i;
    }
  });
}

TEST_P(BlockArraySweep, FromIndexIsRankCountInvariant) {
  const int p = GetParam();
  std::vector<long> reference;
  mprt::run(1, [&](mprt::Comm& comm) {
    reference = BlockArray<long>::from_index(comm, 97, [](std::int64_t i) {
                  return i * i % 31;
                }).gather_to(0);
  });
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto a = BlockArray<long>::from_index(
        comm, 97, [](std::int64_t i) { return i * i % 31; });
    const auto all = a.gather_to(0);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, reference);
    }
  });
}

TEST_P(BlockArraySweep, ChapelMinkCallSite) {
  // minimums = mink(integer, 10) reduce A  (§3.1.1).
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    const auto a = BlockArray<int>::from_index(
        comm, 500, [](std::int64_t i) { return static_cast<int>((i * 379) % 1009); });
    const auto minimums = a.reduce(ops::MinK<int>(10));

    std::vector<int> all(500);
    for (std::int64_t i = 0; i < 500; ++i) {
      all[static_cast<std::size_t>(i)] = static_cast<int>((i * 379) % 1009);
    }
    EXPECT_EQ(minimums, rs::serial::reduce(all, ops::MinK<int>(10)));
  });
}

TEST_P(BlockArraySweep, ChapelMiniCallSite) {
  // var (val, loc) = mini(integer) reduce [i in 1..n] (A(i), i)  (§3.1.2),
  // via the lazy indexed view.
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    const auto a = BlockArray<int>::from_index(comm, 300, [](std::int64_t i) {
      return static_cast<int>((i * 577 + 11) % 891);
    });
    const auto [val, loc] = a.reduce_indexed(ops::MinI<int, std::int64_t>{});
    // Verify against brute force.
    int want_val = std::numeric_limits<int>::max();
    std::int64_t want_loc = -1;
    for (std::int64_t i = 0; i < 300; ++i) {
      const int v = static_cast<int>((i * 577 + 11) % 891);
      if (v < want_val) {
        want_val = v;
        want_loc = i;
      }
    }
    EXPECT_EQ(val, want_val);
    EXPECT_EQ(loc, want_loc);
  });
}

TEST_P(BlockArraySweep, ScanReturnsDistributedResult) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    const auto a = BlockArray<long>::from_index(
        comm, 123, [](std::int64_t i) { return i % 7; });
    const auto prefix = a.scan(ops::Sum<long>{});
    EXPECT_EQ(prefix.size(), a.size());
    EXPECT_EQ(prefix.local_size(), a.local_size());

    const auto all = prefix.gather_to(0);
    if (comm.rank() == 0) {
      long acc = 0;
      for (std::int64_t i = 0; i < 123; ++i) {
        acc += i % 7;
        EXPECT_EQ(all[static_cast<std::size_t>(i)], acc) << "i=" << i;
      }
    }
  });
}

TEST_P(BlockArraySweep, XscanShiftsByOne) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    const auto a = BlockArray<long>::from_index(
        comm, 64, [](std::int64_t i) { return i + 1; });
    const auto ex = a.xscan(ops::Sum<long>{});
    const auto all = ex.gather_to(0);
    if (comm.rank() == 0) {
      for (std::int64_t i = 0; i < 64; ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(i)], i * (i + 1) / 2);
      }
    }
  });
}

TEST_P(BlockArraySweep, ForEachVisitsEveryOwnedIndexOnce) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    auto a = BlockArray<long>(comm, 50);
    a.for_each([](long& v, std::int64_t i) { v = 2 * i; });
    const auto all = a.gather_to(0);
    if (comm.rank() == 0) {
      for (std::int64_t i = 0; i < 50; ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(i)], 2 * i);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, BlockArraySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

TEST_P(BlockArraySweep, MapProducesSameDistribution) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    const auto a = BlockArray<int>::from_index(
        comm, 77, [](std::int64_t i) { return static_cast<int>(i); });
    const auto b = a.map([](const int& v, std::int64_t i) {
      return static_cast<long>(v) * 2 + (i % 3);
    });
    EXPECT_EQ(b.size(), a.size());
    EXPECT_EQ(b.local_size(), a.local_size());
    const auto all = b.gather_to(0);
    if (comm.rank() == 0) {
      for (std::int64_t i = 0; i < 77; ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(i)], i * 2 + i % 3);
      }
    }
  });
}

TEST_P(BlockArraySweep, ZipReduceDotProduct) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    const auto a = BlockArray<long>::from_index(
        comm, 60, [](std::int64_t i) { return i + 1; });
    const auto b = BlockArray<long>::from_index(
        comm, 60, [](std::int64_t i) { return 2 * i; });

    // Dot product as a zip-reduce with an inline operator.
    struct Dot {
      long acc = 0;
      void accum(const std::pair<long, long>& xy) {
        acc += xy.first * xy.second;
      }
      void combine(const Dot& o) { acc += o.acc; }
      [[nodiscard]] long gen() const { return acc; }
    };
    const long got = dist::zip_reduce(a, b, Dot{});
    long want = 0;
    for (std::int64_t i = 0; i < 60; ++i) want += (i + 1) * 2 * i;
    EXPECT_EQ(got, want);
  });
}

TEST(BlockArray, ZipReduceRejectsMismatchedSizes) {
  EXPECT_THROW(
      mprt::run(2,
                [](mprt::Comm& comm) {
                  const BlockArray<int> a(comm, 10);
                  const BlockArray<int> b(comm, 11);
                  struct Nop {
                    void accum(const std::pair<int, int>&) {}
                    void combine(const Nop&) {}
                    int gen() const { return 0; }
                  };
                  (void)dist::zip_reduce(a, b, Nop{});
                }),
      ArgumentError);
}

TEST_P(BlockArraySweep, FetchBroadcastsFromOwner) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    const auto a = BlockArray<long>::from_index(
        comm, 41, [](std::int64_t i) { return i * 3 + 1; });
    for (const std::int64_t i : {std::int64_t{0}, std::int64_t{20},
                                 std::int64_t{40}}) {
      EXPECT_EQ(a.fetch(i), i * 3 + 1);
    }
  });
}

TEST(BlockArray, FetchRejectsOutOfRange) {
  EXPECT_THROW(mprt::run(2,
                         [](mprt::Comm& comm) {
                           const BlockArray<int> a(comm, 5);
                           (void)a.fetch(5);
                         }),
               ArgumentError);
}

TEST(BlockArray, AtThrowsOnForeignIndex) {
  mprt::run(2, [](mprt::Comm& comm) {
    BlockArray<int> a(comm, 10);
    const std::int64_t foreign = comm.rank() == 0 ? 9 : 0;
    EXPECT_THROW((void)a.at(foreign), ArgumentError);
    EXPECT_NO_THROW((void)a.at(a.local_start()));
  });
}

TEST(BlockArray, FromLocalValidatesBlockSize) {
  EXPECT_THROW(mprt::run(2,
                         [](mprt::Comm& comm) {
                           (void)BlockArray<int>::from_local(
                               comm, 10, std::vector<int>(3));
                         }),
               ArgumentError);
}

TEST(BlockArray, EmptyArray) {
  mprt::run(4, [](mprt::Comm& comm) {
    const BlockArray<int> a(comm, 0);
    EXPECT_EQ(a.local_size(), 0);
    EXPECT_EQ(a.reduce(rs::ops::Sum<long>{}), 0);
  });
}

}  // namespace
