// Tests for the distributed matrix and its axis scans: row scans are
// local, column scans cross ranks, and their composition is the 2-D
// prefix (summed-area table), validated against a brute-force oracle.
#include <gtest/gtest.h>

#include <vector>

#include "coll/ops.hpp"
#include "dist/block_matrix.hpp"
#include "mprt/runtime.hpp"

namespace {

using namespace rsmpi;
using dist::BlockMatrix;

long cell(std::int64_t r, std::int64_t c) {
  return (r * 31 + c * 17 + 3) % 23 - 11;
}

class BlockMatrixSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlockMatrixSweep, FromIndexIsRankCountInvariant) {
  const int p = GetParam();
  std::vector<long> reference;
  mprt::run(1, [&](mprt::Comm& comm) {
    reference =
        BlockMatrix<long>::from_index(comm, 13, 9, cell).gather_to(0);
  });
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto m = BlockMatrix<long>::from_index(comm, 13, 9, cell);
    const auto all = m.gather_to(0);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, reference);
    }
  });
}

TEST_P(BlockMatrixSweep, RowScanIsPerRowPrefix) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    auto m = BlockMatrix<long>::from_index(comm, 12, 7, cell);
    m.row_scan_inplace(coll::Sum<long>{});
    const auto all = m.gather_to(0);
    if (comm.rank() == 0) {
      for (std::int64_t r = 0; r < 12; ++r) {
        long acc = 0;
        for (std::int64_t c = 0; c < 7; ++c) {
          acc += cell(r, c);
          EXPECT_EQ(all[static_cast<std::size_t>(r * 7 + c)], acc)
              << "r=" << r << " c=" << c;
        }
      }
    }
  });
}

TEST_P(BlockMatrixSweep, ColumnScanCrossesRanks) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    auto m = BlockMatrix<long>::from_index(comm, 11, 5, cell);
    m.column_scan_inplace(coll::Sum<long>{});
    const auto all = m.gather_to(0);
    if (comm.rank() == 0) {
      for (std::int64_t c = 0; c < 5; ++c) {
        long acc = 0;
        for (std::int64_t r = 0; r < 11; ++r) {
          acc += cell(r, c);
          EXPECT_EQ(all[static_cast<std::size_t>(r * 5 + c)], acc)
              << "r=" << r << " c=" << c;
        }
      }
    }
  });
}

TEST_P(BlockMatrixSweep, Prefix2dIsSummedAreaTable) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    auto m = BlockMatrix<long>::from_index(comm, 10, 8, cell);
    m.prefix2d_inplace(coll::Sum<long>{});
    const auto all = m.gather_to(0);
    if (comm.rank() == 0) {
      for (std::int64_t r = 0; r < 10; ++r) {
        for (std::int64_t c = 0; c < 8; ++c) {
          long want = 0;
          for (std::int64_t i = 0; i <= r; ++i) {
            for (std::int64_t j = 0; j <= c; ++j) {
              want += cell(i, j);
            }
          }
          EXPECT_EQ(all[static_cast<std::size_t>(r * 8 + c)], want)
              << "r=" << r << " c=" << c;
        }
      }
    }
  });
}

TEST_P(BlockMatrixSweep, ColumnScanWithMax) {
  // Axis scans are generic over the operator: running column maxima.
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    auto m = BlockMatrix<long>::from_index(comm, 9, 4, cell);
    m.column_scan_inplace(coll::Max<long>{});
    const auto all = m.gather_to(0);
    if (comm.rank() == 0) {
      for (std::int64_t c = 0; c < 4; ++c) {
        long acc = std::numeric_limits<long>::lowest();
        for (std::int64_t r = 0; r < 9; ++r) {
          acc = std::max(acc, cell(r, c));
          EXPECT_EQ(all[static_cast<std::size_t>(r * 4 + c)], acc);
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, BlockMatrixSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

TEST_P(BlockMatrixSweep, HaloExchangeDeliversNeighbourRows) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    const auto m = BlockMatrix<long>::from_index(comm, 10, 6, cell);
    const auto halos = m.exchange_halos();
    if (m.local_rows() == 0) {
      EXPECT_FALSE(halos.has_above);
      EXPECT_FALSE(halos.has_below);
      return;
    }
    const std::int64_t r0 = m.local_row_start();
    if (r0 == 0) {
      EXPECT_FALSE(halos.has_above);
    } else {
      ASSERT_TRUE(halos.has_above);
      for (std::int64_t c = 0; c < 6; ++c) {
        EXPECT_EQ(halos.above[static_cast<std::size_t>(c)], cell(r0 - 1, c));
      }
    }
    const std::int64_t rend = r0 + m.local_rows();
    if (rend == 10) {
      EXPECT_FALSE(halos.has_below);
    } else {
      ASSERT_TRUE(halos.has_below);
      for (std::int64_t c = 0; c < 6; ++c) {
        EXPECT_EQ(halos.below[static_cast<std::size_t>(c)], cell(rend, c));
      }
    }
  });
}

TEST_P(BlockMatrixSweep, FetchReturnsAnyCellEverywhere) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    const auto m = BlockMatrix<long>::from_index(comm, 7, 5, cell);
    EXPECT_EQ(m.fetch(0, 0), cell(0, 0));
    EXPECT_EQ(m.fetch(6, 4), cell(6, 4));
    EXPECT_EQ(m.fetch(3, 2), cell(3, 2));
  });
}

TEST(BlockMatrix, HaloExchangeAcrossEmptyRanks) {
  // 2 rows over 8 ranks: ranks 0 and 1 own one row each; the rest relay.
  mprt::run(8, [](mprt::Comm& comm) {
    const auto m = BlockMatrix<long>::from_index(comm, 2, 3, cell);
    const auto halos = m.exchange_halos();
    if (comm.rank() == 0) {
      ASSERT_EQ(m.local_rows(), 1);
      EXPECT_FALSE(halos.has_above);
      ASSERT_TRUE(halos.has_below);
      EXPECT_EQ(halos.below[0], cell(1, 0));
    } else if (comm.rank() == 1) {
      ASSERT_EQ(m.local_rows(), 1);
      ASSERT_TRUE(halos.has_above);
      EXPECT_EQ(halos.above[2], cell(0, 2));
      EXPECT_FALSE(halos.has_below);
    } else {
      EXPECT_EQ(m.local_rows(), 0);
    }
  });
}

TEST(BlockMatrix, FetchRejectsOutOfRange) {
  EXPECT_THROW(mprt::run(2,
                         [](mprt::Comm& comm) {
                           const BlockMatrix<long> m(comm, 3, 3);
                           (void)m.fetch(3, 0);
                         }),
               ArgumentError);
}

TEST(BlockMatrix, MoreRanksThanRows) {
  mprt::run(8, [](mprt::Comm& comm) {
    auto m = BlockMatrix<long>::from_index(comm, 3, 4, cell);
    m.prefix2d_inplace(coll::Sum<long>{});
    const auto all = m.gather_to(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 12u);
      EXPECT_EQ(all[0], cell(0, 0));
    }
  });
}

}  // namespace
