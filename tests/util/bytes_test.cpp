// Unit tests for the byte archive.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace {

using rsmpi::ProtocolError;
using rsmpi::bytes::Reader;
using rsmpi::bytes::Writer;

TEST(Bytes, ScalarRoundTrip) {
  Writer w;
  w.put<int>(42);
  w.put<double>(3.25);
  w.put<std::uint8_t>(7);

  Reader r(w.view());
  EXPECT_EQ(r.get<int>(), 42);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, VectorRoundTrip) {
  Writer w;
  const std::vector<long> values = {1, -2, 3, -4, 5};
  w.put_vector(values);

  Reader r(w.view());
  EXPECT_EQ(r.get_vector<long>(), values);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, EmptyVectorRoundTrip) {
  Writer w;
  w.put_vector(std::vector<int>{});
  Reader r(w.view());
  EXPECT_TRUE(r.get_vector<int>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, StringRoundTrip) {
  Writer w;
  w.put_string("hello");
  w.put_string("");
  Reader r(w.view());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, MixedSequenceRoundTrip) {
  Writer w;
  w.put<int>(1);
  w.put_vector(std::vector<double>{0.5, 1.5});
  w.put_string("tail");

  Reader r(w.view());
  EXPECT_EQ(r.get<int>(), 1);
  EXPECT_EQ(r.get_vector<double>(), (std::vector<double>{0.5, 1.5}));
  EXPECT_EQ(r.get_string(), "tail");
}

TEST(Bytes, GetSpanChecksLength) {
  Writer w;
  w.put_vector(std::vector<int>{1, 2, 3});
  std::vector<int> out(2);  // wrong size
  Reader r(w.view());
  EXPECT_THROW(r.get_span<int>(out), ProtocolError);
}

TEST(Bytes, GetSpanExactLength) {
  Writer w;
  w.put_vector(std::vector<int>{1, 2, 3});
  std::vector<int> out(3);
  Reader r(w.view());
  r.get_span<int>(out);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Bytes, UnderflowThrows) {
  Writer w;
  w.put<std::uint16_t>(1);
  Reader r(w.view());
  EXPECT_THROW(r.get<std::uint64_t>(), ProtocolError);
}

TEST(Bytes, VectorUnderflowThrows) {
  // A length prefix that promises more data than the payload carries.
  Writer w;
  w.put<std::uint64_t>(1000);
  Reader r(w.view());
  EXPECT_THROW(r.get_vector<double>(), ProtocolError);
}

TEST(Bytes, FromBytesRejectsTrailingBytes) {
  Writer w;
  w.put<int>(1);
  w.put<int>(2);
  EXPECT_THROW(rsmpi::bytes::from_bytes<int>(w.view()), ProtocolError);
}

TEST(Bytes, RemainingTracksPosition) {
  Writer w;
  w.put<int>(1);
  w.put<int>(2);
  Reader r(w.view());
  EXPECT_EQ(r.remaining(), 2 * sizeof(int));
  (void)r.get<int>();
  EXPECT_EQ(r.remaining(), sizeof(int));
  (void)r.get<int>();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, TakeMovesBuffer) {
  Writer w;
  w.put<int>(99);
  auto buf = std::move(w).take();
  EXPECT_EQ(buf.size(), sizeof(int));
  EXPECT_EQ(rsmpi::bytes::from_bytes<int>(buf), 99);
}

TEST(Bytes, CorruptedLengthPrefixCannotWrapBoundsCheck) {
  // Regression: a hostile 64-bit count n with n * sizeof(T) overflowing
  // size_t (e.g. n = 2^61, sizeof(double) = 8 -> product 2^64 == 0) used
  // to slip past the bounds check and reach a huge resize.  Both
  // extraction paths must reject it with ProtocolError instead.
  Writer w;
  w.put<std::uint64_t>(std::uint64_t{1} << 61);  // corrupted length prefix
  w.put<double>(1.0);                            // a few bytes of "payload"
  {
    Reader r(w.view());
    EXPECT_THROW((void)r.get_vector<double>(), ProtocolError);
  }
  {
    Reader r(w.view());
    std::vector<double> out(std::size_t{1} << 20);
    // Length mismatch fires only if the extent check doesn't wrap first;
    // either way the huge prefix must throw, never memcpy.
    EXPECT_THROW(r.get_span<double>(out), ProtocolError);
  }
  // A count that wraps to a *small* in-bounds product is the dangerous
  // case for get_span: n != out.size() would not save us if n wrapped to
  // out.size().  (2^61 + 1) * 8 == 8 (mod 2^64): one double available.
  {
    Writer w2;
    w2.put<std::uint64_t>((std::uint64_t{1} << 61) + 1);
    w2.put<double>(42.0);
    Reader r(w2.view());
    std::vector<double> out(1);
    EXPECT_THROW(r.get_span<double>(out), ProtocolError);
  }
}

TEST(Bytes, WriterOverRecycledBufferKeepsCapacity) {
  std::vector<std::byte> recycled(1024);
  const std::size_t cap = recycled.capacity();
  Writer w(std::move(recycled));
  EXPECT_EQ(w.size(), 0u);  // contents cleared...
  w.put<int>(7);
  auto buf = std::move(w).take();
  EXPECT_GE(buf.capacity(), cap);  // ...but the allocation was kept
  EXPECT_EQ(rsmpi::bytes::from_bytes<int>(buf), 7);
}

TEST(Bytes, ResetClearsContentWithoutFreeing) {
  Writer w;
  w.put<std::uint64_t>(1);
  w.put<std::uint64_t>(2);
  const auto* before = w.view().data();
  w.reset();
  EXPECT_EQ(w.size(), 0u);
  w.put<std::uint64_t>(3);
  EXPECT_EQ(w.view().data(), before);  // same allocation reused
}

TEST(Bytes, GetRawBorrowsWithoutCopying) {
  Writer w;
  w.put_vector(std::vector<long>{10, 20, 30});
  Reader r(w.view());
  std::uint64_t n = 0;
  const auto raw = r.get_counted_raw<long>(&n);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(raw.size(), 3 * sizeof(long));
  EXPECT_EQ(raw.data(), w.view().data() + sizeof(std::uint64_t));  // borrowed
  EXPECT_EQ(rsmpi::bytes::load_unaligned<long>(raw.data() + sizeof(long)), 20);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, GetCountedRawRejectsOverflowingCount) {
  Writer w;
  w.put<std::uint64_t>(std::uint64_t{1} << 61);
  Reader r(w.view());
  EXPECT_THROW((void)r.get_counted_raw<double>(), ProtocolError);
}

}  // namespace
