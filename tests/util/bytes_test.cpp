// Unit tests for the byte archive.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace {

using rsmpi::ProtocolError;
using rsmpi::bytes::Reader;
using rsmpi::bytes::Writer;

TEST(Bytes, ScalarRoundTrip) {
  Writer w;
  w.put<int>(42);
  w.put<double>(3.25);
  w.put<std::uint8_t>(7);

  Reader r(w.view());
  EXPECT_EQ(r.get<int>(), 42);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, VectorRoundTrip) {
  Writer w;
  const std::vector<long> values = {1, -2, 3, -4, 5};
  w.put_vector(values);

  Reader r(w.view());
  EXPECT_EQ(r.get_vector<long>(), values);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, EmptyVectorRoundTrip) {
  Writer w;
  w.put_vector(std::vector<int>{});
  Reader r(w.view());
  EXPECT_TRUE(r.get_vector<int>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, StringRoundTrip) {
  Writer w;
  w.put_string("hello");
  w.put_string("");
  Reader r(w.view());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, MixedSequenceRoundTrip) {
  Writer w;
  w.put<int>(1);
  w.put_vector(std::vector<double>{0.5, 1.5});
  w.put_string("tail");

  Reader r(w.view());
  EXPECT_EQ(r.get<int>(), 1);
  EXPECT_EQ(r.get_vector<double>(), (std::vector<double>{0.5, 1.5}));
  EXPECT_EQ(r.get_string(), "tail");
}

TEST(Bytes, GetSpanChecksLength) {
  Writer w;
  w.put_vector(std::vector<int>{1, 2, 3});
  std::vector<int> out(2);  // wrong size
  Reader r(w.view());
  EXPECT_THROW(r.get_span<int>(out), ProtocolError);
}

TEST(Bytes, GetSpanExactLength) {
  Writer w;
  w.put_vector(std::vector<int>{1, 2, 3});
  std::vector<int> out(3);
  Reader r(w.view());
  r.get_span<int>(out);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Bytes, UnderflowThrows) {
  Writer w;
  w.put<std::uint16_t>(1);
  Reader r(w.view());
  EXPECT_THROW(r.get<std::uint64_t>(), ProtocolError);
}

TEST(Bytes, VectorUnderflowThrows) {
  // A length prefix that promises more data than the payload carries.
  Writer w;
  w.put<std::uint64_t>(1000);
  Reader r(w.view());
  EXPECT_THROW(r.get_vector<double>(), ProtocolError);
}

TEST(Bytes, FromBytesRejectsTrailingBytes) {
  Writer w;
  w.put<int>(1);
  w.put<int>(2);
  EXPECT_THROW(rsmpi::bytes::from_bytes<int>(w.view()), ProtocolError);
}

TEST(Bytes, RemainingTracksPosition) {
  Writer w;
  w.put<int>(1);
  w.put<int>(2);
  Reader r(w.view());
  EXPECT_EQ(r.remaining(), 2 * sizeof(int));
  (void)r.get<int>();
  EXPECT_EQ(r.remaining(), sizeof(int));
  (void)r.get<int>();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, TakeMovesBuffer) {
  Writer w;
  w.put<int>(99);
  auto buf = std::move(w).take();
  EXPECT_EQ(buf.size(), sizeof(int));
  EXPECT_EQ(rsmpi::bytes::from_bytes<int>(buf), 99);
}

}  // namespace
