// Tests for the input-transforming operator adapter.
#include <gtest/gtest.h>

#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/ops/mapped.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "rs/serial.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;

struct Reading {
  int sensor;
  double value;
};

TEST(Mapped, ProjectsFieldsIntoPlainOps) {
  const std::vector<Reading> v = {{1, 3.5}, {2, -1.0}, {3, 7.25}};
  double (*value_of)(const Reading&) = [](const Reading& r) {
    return r.value;
  };
  const double hottest = rs::serial::reduce(
      v, ops::mapped<Reading>(value_of, ops::Max<double>{}));
  EXPECT_DOUBLE_EQ(hottest, 7.25);
}

TEST(Mapped, ForwardsPrePostHooksThroughTheTransform) {
  // Sorted over the projected field: detects out-of-order sensor ids.
  const std::vector<Reading> sorted_v = {{1, 9.0}, {2, 1.0}, {3, 5.0}};
  const std::vector<Reading> unsorted_v = {{2, 9.0}, {1, 1.0}};
  int (*id_of)(const Reading&) = [](const Reading& r) { return r.sensor; };
  EXPECT_TRUE(rs::serial::reduce(
      sorted_v, ops::mapped<Reading>(id_of, ops::Sorted<int>{})));
  EXPECT_FALSE(rs::serial::reduce(
      unsorted_v, ops::mapped<Reading>(id_of, ops::Sorted<int>{})));
}

TEST(Mapped, CommutativityFollowsInnerOp) {
  int (*id_of)(const Reading&) = [](const Reading& r) { return r.sensor; };
  using MSorted = decltype(ops::mapped<Reading>(id_of, ops::Sorted<int>{}));
  using MSum = decltype(ops::mapped<Reading>(id_of, ops::Sum<int>{}));
  EXPECT_FALSE(rs::op_commutative<MSorted>());
  EXPECT_TRUE(rs::op_commutative<MSum>());
}

class MappedSweep : public ::testing::TestWithParam<int> {};

TEST_P(MappedSweep, ParallelWithTrivialInner) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    std::vector<Reading> mine;
    for (int i = 0; i < 20; ++i) {
      mine.push_back({comm.rank() * 20 + i, (comm.rank() * 20 + i) * 0.5});
    }
    double (*value_of)(const Reading&) = [](const Reading& r) {
      return r.value;
    };
    const double total = rs::reduce(
        comm, mine, ops::mapped<Reading>(value_of, ops::Sum<double>{}));
    const long n = static_cast<long>(comm.size()) * 20;
    EXPECT_DOUBLE_EQ(total, 0.5 * static_cast<double>(n) *
                                static_cast<double>(n - 1) / 2.0);
  });
}

TEST_P(MappedSweep, ParallelWithHeapStateInner) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    std::vector<Reading> mine;
    for (int i = 0; i < 15; ++i) {
      const int g = comm.rank() * 15 + i;
      mine.push_back({g, static_cast<double>((g * 73) % 97)});
    }
    int (*bucket_of)(const Reading&) = [](const Reading& r) {
      return static_cast<int>(r.value) % 4;
    };
    const auto counts = rs::reduce(
        comm, mine, ops::mapped<Reading>(bucket_of, ops::Counts(4)));
    long total = 0;
    for (long c : counts) total += c;
    EXPECT_EQ(total, static_cast<long>(comm.size()) * 15);
  });
}

TEST_P(MappedSweep, ScanGenGoesThroughTransform) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    std::vector<Reading> mine;
    for (int i = 0; i < 8; ++i) {
      mine.push_back({comm.rank() * 8 + i, static_cast<double>(i % 2)});
    }
    int (*bucket_of)(const Reading&) = [](const Reading& r) {
      return static_cast<int>(r.value);
    };
    // Rank each reading within its bucket, across the whole machine.
    const auto ranks = rs::scan(
        comm, mine, ops::mapped<Reading>(bucket_of, ops::Counts(2)));
    ASSERT_EQ(ranks.size(), mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      // Global index of this reading within its bucket: buckets alternate
      // per position, so rank-in-bucket = global_position / 2 + 1.
      const long g = comm.rank() * 8 + static_cast<long>(i);
      EXPECT_EQ(ranks[i], g / 2 + 1);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MappedSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
