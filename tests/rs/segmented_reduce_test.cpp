// Tests for segmented_reduce (per-segment results with arbitrary inner
// operators) and the MajorityVote operator.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/algos/segmented_reduce.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "rs/serial.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;

template <typename T>
std::vector<T> my_block(const std::vector<T>& all, int p, int rank) {
  const std::size_t n = all.size();
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t extra = n % static_cast<std::size_t>(p);
  const std::size_t lo = base * static_cast<std::size_t>(rank) +
                         std::min<std::size_t>(rank, extra);
  const std::size_t len = base + (static_cast<std::size_t>(rank) < extra);
  return {all.begin() + static_cast<std::ptrdiff_t>(lo),
          all.begin() + static_cast<std::ptrdiff_t>(lo + len)};
}

std::vector<ops::Seg<long>> seg_data(const std::vector<long>& values,
                                     const std::vector<std::size_t>& starts) {
  std::vector<ops::Seg<long>> out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.push_back({values[i], std::find(starts.begin(), starts.end(), i) !=
                                  starts.end()});
  }
  return out;
}

/// Serial oracle: per-segment left-fold with the operator protocol.
template <typename Op>
std::vector<rs::reduce_result_t<Op>> serial_segmented(
    const std::vector<ops::Seg<long>>& data, Op prototype) {
  std::vector<Op> states;
  for (const auto& e : data) {
    if (states.empty() || e.start) states.push_back(prototype);
    states.back().accum(e.value);
  }
  std::vector<rs::reduce_result_t<Op>> out;
  for (const auto& s : states) out.push_back(rs::red_result(s));
  return out;
}

class SegReduceSweep : public ::testing::TestWithParam<int> {};

TEST_P(SegReduceSweep, SumsPerSegment) {
  const int p = GetParam();
  const auto data = seg_data({1, 2, 3, 4, 5, 6, 7}, {0, 3, 5});
  const auto want = serial_segmented(data, ops::Sum<long>{});
  ASSERT_EQ(want, (std::vector<long>{6, 9, 13}));

  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::segmented_reduce<ops::Sum<long>, long>(
        comm, mine, ops::Sum<long>{});
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

TEST_P(SegReduceSweep, RandomSegmentsWithMin) {
  const int p = GetParam();
  std::mt19937 rng(77);
  std::vector<long> values(300);
  std::vector<std::size_t> starts = {0};
  for (auto& v : values) v = static_cast<long>(rng() % 1000) - 500;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (rng() % 7 == 0) starts.push_back(i);
  }
  const auto data = seg_data(values, starts);
  const auto want = serial_segmented(data, ops::Min<long>{});

  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::segmented_reduce<ops::Min<long>, long>(
        comm, mine, ops::Min<long>{});
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

TEST_P(SegReduceSweep, HeapStateInnerOperator) {
  // MinK per segment: serialized partial states with save/load.
  const int p = GetParam();
  std::mt19937 rng(78);
  std::vector<long> values(200);
  std::vector<std::size_t> starts = {0, 60, 61, 150};
  for (auto& v : values) v = static_cast<long>(rng() % 10000);
  const auto data = seg_data(values, starts);
  const auto want = serial_segmented(data, ops::MinK<long>(3));

  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::segmented_reduce<ops::MinK<long>, long>(
        comm, mine, ops::MinK<long>(3));
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

TEST_P(SegReduceSweep, NonCommutativeInnerOperator) {
  // Per-segment sortedness: operand order inside segments must hold.
  const int p = GetParam();
  std::vector<long> values = {1, 2, 3, 9, 8, 7, 4, 5, 6};
  const auto data = seg_data(values, {0, 3, 6});
  const auto want = serial_segmented(data, ops::Sorted<long>{});
  ASSERT_EQ(want, (std::vector<bool>{true, false, true}));

  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::segmented_reduce<ops::Sorted<long>, long>(
        comm, mine, ops::Sorted<long>{});
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

TEST_P(SegReduceSweep, UnflaggedOpeningSegment) {
  const int p = GetParam();
  const auto data = seg_data({5, 6, 7}, {});  // implicit segment 0
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::segmented_reduce<ops::Sum<long>, long>(
        comm, mine, ops::Sum<long>{});
    EXPECT_EQ(got, my_block(std::vector<long>{18}, comm.size(), comm.rank()));
  });
}

TEST_P(SegReduceSweep, EmptyInput) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    const std::vector<ops::Seg<long>> nothing;
    const auto got = rs::algos::segmented_reduce<ops::Sum<long>, long>(
        comm, std::span<const ops::Seg<long>>(nothing), ops::Sum<long>{});
    EXPECT_TRUE(got.empty());
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SegReduceSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

// -- MajorityVote -----------------------------------------------------------------

TEST(MajorityVote, FindsStrictMajoritySerially) {
  std::vector<int> v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 2 == 0 ? 42 : i);
  v.push_back(42);  // 51 of 101
  EXPECT_EQ(rs::serial::reduce(v, ops::MajorityVote<int>{}), 42);
}

class MajoritySweep : public ::testing::TestWithParam<int> {};

TEST_P(MajoritySweep, MajoritySurvivesAnyTree) {
  const int p = GetParam();
  std::mt19937 rng(55);
  std::vector<int> data;
  for (int i = 0; i < 999; ++i) {
    data.push_back(i % 5 < 3 ? 7 : static_cast<int>(rng() % 100) + 10);
  }
  std::shuffle(data.begin(), data.end(), rng);
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const int candidate =
        rs::reduce(comm, mine, ops::MajorityVote<int>{});
    EXPECT_EQ(candidate, 7);
    // The verification pass the algorithm prescribes.  (A function
    // pointer rather than a lambda: the operator is serialized between
    // ranks, so its predicate must be assignable and trivially copyable.)
    bool (*is7)(int) = [](int x) { return x == 7; };
    const long count =
        rs::reduce(comm, mine, ops::CountIf<int, bool (*)(int)>(is7));
    EXPECT_GT(count * 2, static_cast<long>(data.size()));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MajoritySweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

}  // namespace
