// Tests for the histogram-quantile helper and a cross-module consistency
// check: the radix sort, the IS bucket sort, and std::sort must agree.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "coll/gather.hpp"
#include "mprt/runtime.hpp"
#include "nas/is.hpp"
#include "rs/algos/radix_sort.hpp"
#include "rs/ops/histogram.hpp"
#include "rs/reduce.hpp"
#include "rs/serial.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;

TEST(HistogramQuantile, UniformDataHitsLinearQuantiles) {
  // 10k uniform samples on [0, 100) in 100 bins: q-quantile ~ 100q.
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  std::vector<double> edges;
  for (int i = 0; i <= 100; ++i) edges.push_back(i);
  ops::Histogram<double> h(edges);
  for (int i = 0; i < 10000; ++i) h.accum(dist(rng));
  const auto counts = h.red_gen();

  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(ops::histogram_quantile(counts, edges, q), 100.0 * q, 2.0)
        << "q=" << q;
  }
}

TEST(HistogramQuantile, ExtremesClampToEdges) {
  const std::vector<double> edges = {0.0, 1.0, 2.0};
  ops::Histogram<double> h(edges);
  h.accum(0.5);
  h.accum(1.5);
  const auto counts = h.red_gen();
  EXPECT_DOUBLE_EQ(ops::histogram_quantile(counts, edges, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ops::histogram_quantile(counts, edges, 1.0), 2.0);
}

TEST(HistogramQuantile, OutliersCountTowardTheEnds) {
  const std::vector<double> edges = {0.0, 10.0};
  ops::Histogram<double> h(edges);
  h.accum(-100.0);  // underflow
  h.accum(5.0);
  h.accum(999.0);  // overflow
  const auto counts = h.red_gen();
  // The median sample is the in-range 5.0.
  EXPECT_NEAR(ops::histogram_quantile(counts, edges, 0.5), 5.0, 5.0);
  EXPECT_DOUBLE_EQ(ops::histogram_quantile(counts, edges, 0.01), 0.0);
}

TEST(HistogramQuantile, Validation) {
  const std::vector<double> edges = {0.0, 1.0};
  const std::vector<long> counts = {1, 0, 0};
  EXPECT_NO_THROW((void)ops::histogram_quantile(counts, edges, 0.5));
  EXPECT_THROW((void)ops::histogram_quantile({1, 2}, edges, 0.5),
               ArgumentError);
  EXPECT_THROW((void)ops::histogram_quantile(counts, edges, 1.5),
               ArgumentError);
  EXPECT_THROW((void)ops::histogram_quantile({0, 0, 0}, edges, 0.5),
               ArgumentError);
}

TEST(HistogramQuantile, DistributedMedianPipeline) {
  // The intended use: reduce a Histogram across ranks, then read the
  // median locally from the counts.
  mprt::run(6, [](mprt::Comm& comm) {
    std::vector<double> edges;
    for (int i = 0; i <= 50; ++i) edges.push_back(i * 2.0);
    std::mt19937 rng(11u + static_cast<unsigned>(comm.rank()));
    std::normal_distribution<double> dist(50.0, 10.0);
    std::vector<double> samples(5000);
    for (auto& x : samples) x = dist(rng);
    const auto counts =
        rs::reduce(comm, samples, ops::Histogram<double>(edges));
    const double median = ops::histogram_quantile(counts, edges, 0.5);
    EXPECT_NEAR(median, 50.0, 1.5);
  });
}

// -- Cross-module sort agreement ---------------------------------------------------

TEST(SortAgreement, RadixAndBucketSortAndStdSortAgree) {
  constexpr nas::IsParams params{1 << 11, 1 << 8};
  mprt::run(5, [&](mprt::Comm& comm) {
    const auto keys = nas::is_generate_keys(comm, params);

    // Path 1: the NAS bucket sort.
    auto bucket_sorted = nas::is_bucket_sort(comm, keys, params);
    const auto all_bucket = coll::gather<nas::Key>(comm, 0, bucket_sorted);

    // Path 2: the scan-built radix sort (keys are non-negative).
    std::vector<std::uint32_t> ukeys(keys.begin(), keys.end());
    const auto radix_sorted = rs::algos::radix_sort(comm, std::move(ukeys));
    const auto all_radix = coll::gather<std::uint32_t>(comm, 0, radix_sorted);

    if (comm.rank() == 0) {
      ASSERT_EQ(all_bucket.size(), all_radix.size());
      for (std::size_t i = 0; i < all_bucket.size(); ++i) {
        ASSERT_EQ(static_cast<std::uint32_t>(all_bucket[i]), all_radix[i])
            << "position " << i;
      }
    }
  });
}

}  // namespace
