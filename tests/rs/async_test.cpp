// Tests for the asynchronous global-view API (rs/async.hpp): futures,
// equivalence with the blocking reduce/scan, out-of-order completion,
// subcommunicators, the C-style nonblocking handles, and the modelled
// compute/communication overlap win the subsystem exists for.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "coll/nb/progress.hpp"
#include "mprt/runtime.hpp"
#include "rs/async.hpp"
#include "rs/ops/counts.hpp"
#include "rs/ops/meanvar.hpp"
#include "rs/ops/mink.hpp"
#include "rs/ops/sorted.hpp"
#include "rs/ops/topbottomk.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "rsmpi_c/rsmpi_c.hpp"
#include "util/error.hpp"

namespace {

using namespace rsmpi;
using mprt::Comm;

std::vector<int> rank_slice(int rank, int n = 20) {
  std::vector<int> v(n);
  for (int i = 0; i < n; ++i) {
    v[i] = (rank * 37 + i * 11) % 101;
  }
  return v;
}

TEST(ReduceAsync, MinKMatchesBlocking) {
  mprt::run(6, [](Comm& comm) {
    const auto mine = rank_slice(comm.rank());
    const auto blocking = rs::reduce(comm, mine, rs::ops::MinK<int>(5));
    auto future = rs::reduce_async(comm, mine, rs::ops::MinK<int>(5));
    EXPECT_EQ(future.get(), blocking);
    // get() is idempotent.
    EXPECT_EQ(future.get(), blocking);
  });
}

TEST(ReduceAsync, CountsMatchesBlocking) {
  mprt::run(5, [](Comm& comm) {
    std::vector<int> buckets;
    for (int i = 0; i < 30; ++i) buckets.push_back((comm.rank() + i) % 8);
    const auto blocking = rs::reduce(comm, buckets, rs::ops::Counts(8));
    auto future = rs::reduce_async(comm, buckets, rs::ops::Counts(8));
    EXPECT_EQ(future.get(), blocking);
  });
}

TEST(ReduceAsync, NonCommutativeSortedMatchesBlocking) {
  // Sorted is the paper's showcase non-commutative operator; async must
  // pick the order-preserving binomial schedule for it.
  mprt::run(7, [](Comm& comm) {
    // Globally sorted: rank r holds [10r, 10r+10).
    std::vector<int> sorted_slice(10);
    for (int i = 0; i < 10; ++i) sorted_slice[i] = comm.rank() * 10 + i;
    auto future = rs::reduce_async(comm, sorted_slice,
                                   rs::ops::Sorted<int>{});
    EXPECT_TRUE(future.get());

    // One inversion at a rank boundary must be caught.
    std::vector<int> broken = sorted_slice;
    if (comm.rank() == 3) broken[0] = -1;
    auto future2 = rs::reduce_async(comm, broken, rs::ops::Sorted<int>{});
    EXPECT_FALSE(future2.get());
  });
}

TEST(ReduceAsync, MeanVarWithPollingCompute) {
  mprt::run(4, [](Comm& comm) {
    std::vector<double> xs;
    for (int i = 0; i < 25; ++i) {
      xs.push_back(comm.rank() * 1.5 + i * 0.125);
    }
    const auto blocking = rs::reduce(comm, xs, rs::ops::MeanVar{});
    auto future = rs::reduce_async(comm, xs, rs::ops::MeanVar{});
    // The intended usage: poll between chunks of other work.
    for (int c = 0; c < 50; ++c) coll::nb::poll();
    const auto& result = future.get();
    EXPECT_DOUBLE_EQ(result.mean, blocking.mean);
    EXPECT_DOUBLE_EQ(result.variance, blocking.variance);
    EXPECT_EQ(result.count, blocking.count);
  });
}

TEST(ReduceAsync, OutOfOrderGet) {
  mprt::run(6, [](Comm& comm) {
    const auto mine = rank_slice(comm.rank());
    auto first = rs::reduce_async(comm, mine, rs::ops::MinK<int>(3));
    auto second = rs::reduce_async(comm, mine, rs::ops::MinK<int>(7));
    const auto b7 = rs::reduce(comm, mine, rs::ops::MinK<int>(7));
    const auto b3 = rs::reduce(comm, mine, rs::ops::MinK<int>(3));
    EXPECT_EQ(second.get(), b7);
    EXPECT_EQ(first.get(), b3);
  });
}

TEST(ReduceAsync, SiblingSubcommunicators) {
  mprt::run(8, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    const auto mine = rank_slice(comm.rank());
    auto sub_future = rs::reduce_async(sub, mine, rs::ops::MinK<int>(4));
    auto world_future = rs::reduce_async(comm, mine, rs::ops::MinK<int>(4));
    // Complete in opposite orders on the two subgroups.
    std::vector<int> world_result, sub_result;
    if (comm.rank() % 2 == 0) {
      world_result = world_future.get();
      sub_result = sub_future.get();
    } else {
      sub_result = sub_future.get();
      world_result = world_future.get();
    }
    const auto world_blocking = rs::reduce(comm, mine, rs::ops::MinK<int>(4));
    const auto sub_blocking = rs::reduce(sub, mine, rs::ops::MinK<int>(4));
    EXPECT_EQ(world_result, world_blocking);
    EXPECT_EQ(sub_result, sub_blocking);
  });
}

TEST(ScanAsync, InclusiveAndExclusiveMatchBlocking) {
  mprt::run(5, [](Comm& comm) {
    std::vector<int> buckets;
    for (int i = 0; i < 12; ++i) buckets.push_back((comm.rank() * 3 + i) % 8);
    const auto incl = rs::scan(comm, buckets, rs::ops::Counts(8),
                               rs::ScanKind::kInclusive);
    const auto excl = rs::scan(comm, buckets, rs::ops::Counts(8),
                               rs::ScanKind::kExclusive);
    auto f_incl = rs::scan_async(comm, buckets, rs::ops::Counts(8),
                                 rs::ScanKind::kInclusive);
    auto f_excl = rs::scan_async(comm, buckets, rs::ops::Counts(8),
                                 rs::ScanKind::kExclusive);
    EXPECT_EQ(f_excl.get(), excl);
    EXPECT_EQ(f_incl.get(), incl);
  });
}

TEST(ScanAsync, InputMayBeOverwrittenWhileInFlight) {
  mprt::run(4, [](Comm& comm) {
    std::vector<int> data(10);
    for (int i = 0; i < 10; ++i) data[i] = (comm.rank() + i) % 8;
    const auto blocking = rs::scan(comm, data, rs::ops::Counts(8));
    auto future = rs::scan_async(comm, data, rs::ops::Counts(8));
    std::fill(data.begin(), data.end(), 0);  // the future holds a copy
    EXPECT_EQ(future.get(), blocking);
  });
}

TEST(Future, DefaultIsInvalid) {
  rs::Future<int> f;
  EXPECT_FALSE(f.valid());
  EXPECT_TRUE(f.done());
  EXPECT_THROW(f.get(), ArgumentError);
}

TEST(CApi, IreduceallWaitAndTest) {
  mprt::run(4, [](Comm& comm) {
    struct CSum {
      using In = int;
      struct State {
        long total;
      };
      static void ident(State& s) { s.total = 0; }
      static void accum(State& s, const In& x) { s.total += x; }
      static void combine(State& s1, const State& s2) {
        s1.total += s2.total;
      }
      static long generate(const State& s) { return s.total; }
    };
    const auto mine = rank_slice(comm.rank());
    long blocking = 0;
    c_api::RSMPI_Reduceall<CSum>(&blocking, mine, comm);

    long via_wait = 0;
    auto req = c_api::RSMPI_Ireduceall<CSum>(&via_wait, mine, comm);
    EXPECT_TRUE(req.valid());
    c_api::RSMPI_Wait(&req);
    EXPECT_FALSE(req.valid());  // completed handles become null
    EXPECT_EQ(via_wait, blocking);

    long via_test = 0;
    auto req2 = c_api::RSMPI_Ireduceall<CSum>(&via_test, mine, comm);
    while (c_api::RSMPI_Test(&req2) == 0) {
    }
    EXPECT_EQ(via_test, blocking);

    // Waitall over a batch, and Wait on a null handle is a no-op.
    long a = 0, b = 0;
    std::array<c_api::RSMPI_Request, 3> reqs = {
        c_api::RSMPI_Ireduceall<CSum>(&a, mine, comm),
        c_api::RSMPI_Request{},
        c_api::RSMPI_Ireduceall<CSum>(&b, mine, comm),
    };
    c_api::RSMPI_Waitall(std::span<c_api::RSMPI_Request>(reqs));
    EXPECT_EQ(a, blocking);
    EXPECT_EQ(b, blocking);
  });
}

// The acceptance measurement, pinned down deterministically: at 16 ranks
// on the default cost model, reduce_async overlapped with compute must
// beat blocking reduce + the same compute by at least 20% of modelled
// critical-path time.  compute_scale is zeroed so the only clock charges
// are message costs and the explicit advances — the result is a
// deterministic function of the cost model.
TEST(Overlap, AsyncBeatsBlockingByTwentyPercent) {
  mprt::CostModel model;  // default LogGP parameters
  model.compute_scale = 0.0;
  constexpr int kRanks = 16;
  // 20 chunks of 4 us: enough compute to hide the butterfly's 4 rounds.
  // (The blocking baseline got ~4x cheaper on communication when the
  // commutative allreduce moved from 8-round reduce+bcast to a 4-round
  // recursive doubling, so the maximum achievable saving shrank; the
  // compute span is sized so a full overlap is still >= 20% of the total.)
  constexpr int kChunks = 20;
  constexpr double kChunkSeconds = 4e-6;

  auto slice = [](int rank) {
    std::vector<rs::ops::Located<double, std::int64_t>> v;
    for (int i = 0; i < 256; ++i) {
      const std::int64_t g = rank * 256 + i;
      v.push_back({static_cast<double>((g * 7919) % 104729), g});
    }
    return v;
  };

  const auto blocking = mprt::run(
      kRanks,
      [&](Comm& comm) {
        const auto result =
            rs::reduce(comm, slice(comm.rank()),
                       rs::ops::TopBottomK<double, std::int64_t>(10));
        (void)result;
        for (int c = 0; c < kChunks; ++c) {
          comm.clock().advance(kChunkSeconds);
        }
      },
      model);

  const auto overlapped = mprt::run(
      kRanks,
      [&](Comm& comm) {
        auto future =
            rs::reduce_async(comm, slice(comm.rank()),
                             rs::ops::TopBottomK<double, std::int64_t>(10));
        for (int c = 0; c < kChunks; ++c) {
          comm.clock().advance(kChunkSeconds);
          coll::nb::poll();
        }
        (void)future.get();
      },
      model);

  EXPECT_LE(overlapped.makespan_s, 0.8 * blocking.makespan_s)
      << "blocking " << blocking.makespan_s << " s, overlapped "
      << overlapped.makespan_s << " s";
}

}  // namespace
