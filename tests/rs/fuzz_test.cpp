// Randomized cross-validation: for a grid of (seed, rank count) pairs,
// generate a random global array, slice it unevenly (random block
// boundaries, including empty blocks), and check that every operator's
// parallel reduction and scan equal the sequential oracle.  Uneven slices
// distinguish these cases from the block-distribution tests and hammer
// the empty-rank and boundary paths of every operator at once.
#include <gtest/gtest.h>

#include <random>
#include <tuple>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "rs/serial.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
namespace serial = rs::serial;

/// Random cut points: p possibly-empty, possibly-lopsided slices.
std::vector<std::pair<std::size_t, std::size_t>> random_slices(
    std::size_t n, int p, std::mt19937& rng) {
  std::vector<std::size_t> cuts = {0, n};
  std::uniform_int_distribution<std::size_t> pos(0, n);
  for (int i = 0; i < p - 1; ++i) cuts.push_back(pos(rng));
  std::sort(cuts.begin(), cuts.end());
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (int r = 0; r < p; ++r) {
    out.push_back({cuts[static_cast<std::size_t>(r)],
                   cuts[static_cast<std::size_t>(r) + 1]});
  }
  return out;
}

class Fuzz : public ::testing::TestWithParam<std::tuple<unsigned, int>> {
 protected:
  void SetUp() override {
    const auto [seed, p] = GetParam();
    p_ = p;
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> vdist(-500, 500);
    std::uniform_int_distribution<std::size_t> ndist(0, 400);
    data_.resize(ndist(rng));
    for (auto& x : data_) x = vdist(rng);
    slices_ = random_slices(data_.size(), p, rng);
  }

  [[nodiscard]] std::vector<int> slice(int rank) const {
    const auto [lo, hi] = slices_[static_cast<std::size_t>(rank)];
    return {data_.begin() + static_cast<std::ptrdiff_t>(lo),
            data_.begin() + static_cast<std::ptrdiff_t>(hi)};
  }

  /// The output slice of a serial scan corresponding to this rank's input.
  template <typename Out>
  [[nodiscard]] std::vector<Out> out_slice(const std::vector<Out>& all,
                                           int rank) const {
    const auto [lo, hi] = slices_[static_cast<std::size_t>(rank)];
    return {all.begin() + static_cast<std::ptrdiff_t>(lo),
            all.begin() + static_cast<std::ptrdiff_t>(hi)};
  }

  int p_ = 1;
  std::vector<int> data_;
  std::vector<std::pair<std::size_t, std::size_t>> slices_;
};

TEST_P(Fuzz, ReducersMatchSerialOnUnevenSlices) {
  const long want_sum = serial::reduce(data_, ops::Sum<long>{});
  const int want_min = serial::reduce(data_, ops::Min<int>{});
  const auto want_mink = serial::reduce(data_, ops::MinK<int>(7));
  const auto want_maxk = serial::reduce(data_, ops::MaxK<int>(4));
  const auto want_stats = serial::reduce(
      std::vector<double>(data_.begin(), data_.end()), ops::MeanVar{});
  const long want_maxsub = serial::reduce(
      std::vector<long>(data_.begin(), data_.end()), ops::MaxSubarray<long>{});
  const bool want_sorted = serial::reduce(data_, ops::Sorted<int>{});

  mprt::run(p_, [&](mprt::Comm& comm) {
    const auto mine = slice(comm.rank());
    EXPECT_EQ(rs::reduce(comm, mine, ops::Sum<long>{}), want_sum);
    EXPECT_EQ(rs::reduce(comm, mine, ops::Min<int>{}), want_min);
    EXPECT_EQ(rs::reduce(comm, mine, ops::MinK<int>(7)), want_mink);
    EXPECT_EQ(rs::reduce(comm, mine, ops::MaxK<int>(4)), want_maxk);
    EXPECT_EQ(rs::reduce(comm, mine, ops::Sorted<int>{}), want_sorted);

    const std::vector<double> dmine(mine.begin(), mine.end());
    const auto stats = rs::reduce(comm, dmine, ops::MeanVar{});
    EXPECT_EQ(stats.count, want_stats.count);
    EXPECT_NEAR(stats.mean, want_stats.mean, 1e-9);
    EXPECT_NEAR(stats.variance, want_stats.variance, 1e-6);

    const std::vector<long> lmine(mine.begin(), mine.end());
    EXPECT_EQ(rs::reduce(comm, lmine, ops::MaxSubarray<long>{}),
              want_maxsub);
  });
}

TEST_P(Fuzz, ScannersMatchSerialOnUnevenSlices) {
  const auto want_sum = serial::scan(data_, ops::Sum<long>{});
  const auto want_xsum = serial::xscan(data_, ops::Sum<long>{});
  const auto want_min = serial::scan(data_, ops::Min<int>{});

  mprt::run(p_, [&](mprt::Comm& comm) {
    const auto mine = slice(comm.rank());
    EXPECT_EQ(rs::scan(comm, mine, ops::Sum<long>{}),
              out_slice(want_sum, comm.rank()));
    EXPECT_EQ(rs::xscan(comm, mine, ops::Sum<long>{}),
              out_slice(want_xsum, comm.rank()));
    EXPECT_EQ(rs::scan(comm, mine, ops::Min<int>{}),
              out_slice(want_min, comm.rank()));
  });
}

TEST_P(Fuzz, CountsOnBucketizedData) {
  std::vector<int> buckets;
  for (int x : data_) buckets.push_back(((x % 16) + 16) % 16);
  const auto want_red = serial::reduce(buckets, ops::Counts(16));
  const auto want_scan = serial::scan(buckets, ops::Counts(16));

  mprt::run(p_, [&](mprt::Comm& comm) {
    const auto [lo, hi] = slices_[static_cast<std::size_t>(comm.rank())];
    const std::vector<int> mine(
        buckets.begin() + static_cast<std::ptrdiff_t>(lo),
        buckets.begin() + static_cast<std::ptrdiff_t>(hi));
    EXPECT_EQ(rs::reduce(comm, mine, ops::Counts(16)), want_red);
    EXPECT_EQ(rs::scan(comm, mine, ops::Counts(16)),
              out_slice(want_scan, comm.rank()));
  });
}

TEST_P(Fuzz, ConcatIsOrderWitness) {
  // Any schedule or slicing error scrambles the string.
  std::vector<char> chars;
  for (int x : data_) chars.push_back(static_cast<char>('a' + ((x % 26) + 26) % 26));
  const std::string want(chars.begin(), chars.end());
  mprt::run(p_, [&](mprt::Comm& comm) {
    const auto [lo, hi] = slices_[static_cast<std::size_t>(comm.rank())];
    const std::vector<char> mine(
        chars.begin() + static_cast<std::ptrdiff_t>(lo),
        chars.begin() + static_cast<std::ptrdiff_t>(hi));
    EXPECT_EQ(rs::reduce(comm, mine, ops::Concat{}), want);
  });
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRanks, Fuzz,
    ::testing::Combine(::testing::Values(11u, 22u, 33u, 44u, 55u, 66u),
                       ::testing::Values(1, 3, 5, 8, 13)),
    [](const auto& inf) {
      return "seed" + std::to_string(std::get<0>(inf.param)) + "_p" +
             std::to_string(std::get<1>(inf.param));
    });

}  // namespace
