// Unit tests for every operator in the library: identity, accumulate,
// combine, generate, and edge cases — all through the sequential oracle so
// the semantics are pinned independently of any parallel schedule.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "rs/serial.hpp"
#include "rs/ops/ops.hpp"

namespace {

using namespace rsmpi::rs;
namespace ops = rsmpi::rs::ops;

// -- Sum / Product / Min / Max ----------------------------------------------

TEST(BasicOps, SumOverRange) {
  const std::vector<int> v = {1, 2, 3, 4};
  EXPECT_EQ(serial::reduce(v, ops::Sum<long>{}), 10);
}

TEST(BasicOps, EmptyRangeYieldsIdentity) {
  EXPECT_EQ(serial::reduce(std::vector<int>{}, ops::Sum<long>{}), 0);
  EXPECT_EQ(serial::reduce(std::vector<int>{}, ops::Min<int>{}),
            std::numeric_limits<int>::max());
  EXPECT_EQ(serial::reduce(std::vector<int>{}, ops::Max<int>{}),
            std::numeric_limits<int>::lowest());
  EXPECT_EQ(serial::reduce(std::vector<int>{}, ops::Product<int>{}), 1);
}

TEST(BasicOps, ProductOverRange) {
  const std::vector<int> v = {2, 3, 4};
  EXPECT_EQ(serial::reduce(v, ops::Product<long>{}), 24);
}

TEST(BasicOps, MinMaxOverRange) {
  const std::vector<int> v = {5, -2, 9, 0};
  EXPECT_EQ(serial::reduce(v, ops::Min<int>{}), -2);
  EXPECT_EQ(serial::reduce(v, ops::Max<int>{}), 9);
}

TEST(BasicOps, AllAnyCombine) {
  EXPECT_TRUE(serial::reduce(std::vector<bool>{true, true}, ops::All{}));
  EXPECT_FALSE(
      serial::reduce(std::vector<bool>{true, false, true}, ops::All{}));
  EXPECT_TRUE(
      serial::reduce(std::vector<bool>{false, true, false}, ops::Any{}));
  EXPECT_FALSE(serial::reduce(std::vector<bool>{false, false}, ops::Any{}));
}

TEST(BasicOps, CountIfCountsMatches) {
  const std::vector<int> v = {1, 2, 3, 4, 5, 6};
  const auto even = [](int x) { return x % 2 == 0; };
  EXPECT_EQ(serial::reduce(v, ops::CountIf<int, decltype(even)>(even)), 3);
}

// -- MinK / MaxK (Listings 1/4) ----------------------------------------------

TEST(MinK, KeepsKSmallestAscending) {
  const std::vector<int> v = {9, 3, 7, 1, 8, 2, 6};
  EXPECT_EQ(serial::reduce(v, ops::MinK<int>(3)),
            (std::vector<int>{1, 2, 3}));
}

TEST(MinK, HandlesDuplicates) {
  const std::vector<int> v = {4, 4, 4, 1, 1, 9};
  EXPECT_EQ(serial::reduce(v, ops::MinK<int>(4)),
            (std::vector<int>{1, 1, 4, 4}));
}

TEST(MinK, FewerInputsThanKLeavesSentinels) {
  const std::vector<int> v = {5, 2};
  const auto out = serial::reduce(v, ops::MinK<int>(4));
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 5);
  EXPECT_EQ(out[2], std::numeric_limits<int>::max());
  EXPECT_EQ(out[3], std::numeric_limits<int>::max());
}

TEST(MinK, CombineMergesStates) {
  ops::MinK<int> a(3), b(3);
  for (int x : {10, 20, 30}) a.accum(x);
  for (int x : {5, 25, 35}) b.accum(x);
  a.combine(b);
  EXPECT_EQ(a.gen(), (std::vector<int>{5, 10, 20}));
}

TEST(MinK, ZeroKRejected) {
  EXPECT_THROW(ops::MinK<int>(0), rsmpi::ArgumentError);
}

TEST(MinK, MatchesSortOracleOnRandomData) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> dist(-1000, 1000);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> v(200);
    for (auto& x : v) x = dist(rng);
    const auto got = serial::reduce(v, ops::MinK<int>(10));
    std::vector<int> want = v;
    std::sort(want.begin(), want.end());
    want.resize(10);
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(MaxK, KeepsKLargestDescending) {
  const std::vector<int> v = {9, 3, 7, 1, 8, 2, 6};
  EXPECT_EQ(serial::reduce(v, ops::MaxK<int>(3)),
            (std::vector<int>{9, 8, 7}));
}

TEST(MaxK, MatchesSortOracleOnRandomData) {
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> dist(-500, 500);
  std::vector<int> v(150);
  for (auto& x : v) x = dist(rng);
  const auto got = serial::reduce(v, ops::MaxK<int>(7));
  std::vector<int> want = v;
  std::sort(want.rbegin(), want.rend());
  want.resize(7);
  EXPECT_EQ(got, want);
}

// -- MinI / MaxI (Listing 5) --------------------------------------------------

TEST(MinI, FindsValueAndLocation) {
  std::vector<ops::Located<int>> v;
  const std::vector<int> data = {7, 3, 9, 3, 8};
  for (std::size_t i = 0; i < data.size(); ++i) {
    v.push_back({data[i], static_cast<long>(i)});
  }
  const auto best = serial::reduce(v, ops::MinI<int>{});
  EXPECT_EQ(best.value, 3);
  EXPECT_EQ(best.index, 1);  // tie at index 3 resolved to the smaller index
}

TEST(MaxI, FindsValueAndLocation) {
  std::vector<ops::Located<int>> v = {{5, 0}, {9, 1}, {9, 2}, {1, 3}};
  const auto best = serial::reduce(v, ops::MaxI<int>{});
  EXPECT_EQ(best.value, 9);
  EXPECT_EQ(best.index, 1);
}

TEST(MinI, CombineOrderIrrelevantOnTies) {
  ops::MinI<int> a, b;
  a.accum({3, 10});
  b.accum({3, 4});
  ops::MinI<int> ab = a;
  ab.combine(b);
  ops::MinI<int> ba = b;
  ba.combine(a);
  EXPECT_EQ(ab.gen(), ba.gen());
  EXPECT_EQ(ab.gen().index, 4);
}

// -- Counts (Listing 6) --------------------------------------------------------

TEST(Counts, PaperReductionExample) {
  // §3.1.3: octants [6,7,6,3,8,2,8,4,8,3] -> counts [0,1,2,1,0,2,1,3].
  std::vector<int> v;
  for (int x : {6, 7, 6, 3, 8, 2, 8, 4, 8, 3}) v.push_back(x - 1);
  EXPECT_EQ(serial::reduce(v, ops::Counts(8)),
            (std::vector<long>{0, 1, 2, 1, 0, 2, 1, 3}));
}

TEST(Counts, PaperScanExample) {
  // §3.1.3: rankings [1,1,2,1,1,1,2,1,3,2].
  std::vector<int> v;
  for (int x : {6, 7, 6, 3, 8, 2, 8, 4, 8, 3}) v.push_back(x - 1);
  EXPECT_EQ(serial::scan(v, ops::Counts(8)),
            (std::vector<long>{1, 1, 2, 1, 1, 1, 2, 1, 3, 2}));
}

TEST(Counts, ExclusiveScanGivesZeroBasedRanks) {
  const std::vector<int> v = {0, 0, 1, 0};
  EXPECT_EQ(serial::xscan(v, ops::Counts(2)),
            (std::vector<long>{0, 1, 0, 2}));
}

TEST(Counts, OutOfRangeBucketRejected) {
  ops::Counts c(4);
  EXPECT_THROW(c.accum(4), rsmpi::ArgumentError);
  EXPECT_THROW(c.accum(-1), rsmpi::ArgumentError);
}

// -- Sorted (Listing 7) --------------------------------------------------------

TEST(Sorted, AcceptsSortedSequences) {
  EXPECT_TRUE(serial::reduce(std::vector<int>{1, 2, 2, 3}, ops::Sorted<int>{}));
  EXPECT_TRUE(serial::reduce(std::vector<int>{7}, ops::Sorted<int>{}));
  EXPECT_TRUE(serial::reduce(std::vector<int>{}, ops::Sorted<int>{}));
}

TEST(Sorted, RejectsDescents) {
  EXPECT_FALSE(
      serial::reduce(std::vector<int>{1, 3, 2, 4}, ops::Sorted<int>{}));
  EXPECT_FALSE(serial::reduce(std::vector<int>{2, 1}, ops::Sorted<int>{}));
}

TEST(Sorted, CombineChecksBoundary) {
  // Two internally sorted halves with a descending boundary.
  auto left = serial::reduce_state(std::vector<int>{1, 5}, ops::Sorted<int>{});
  auto right =
      serial::reduce_state(std::vector<int>{3, 7}, ops::Sorted<int>{});
  left.combine(right);
  EXPECT_FALSE(left.gen());  // 5 > 3 at the boundary

  auto a = serial::reduce_state(std::vector<int>{1, 2}, ops::Sorted<int>{});
  auto b = serial::reduce_state(std::vector<int>{2, 9}, ops::Sorted<int>{});
  a.combine(b);
  EXPECT_TRUE(a.gen());  // equal boundary values are in order
}

TEST(Sorted, EmptyStateIsCombineIdentity) {
  const ops::Sorted<int> empty;
  auto block = serial::reduce_state(std::vector<int>{4, 6}, ops::Sorted<int>{});

  auto l = empty;
  l.combine(block);
  EXPECT_TRUE(l.gen());

  auto r = block;
  r.combine(empty);
  EXPECT_TRUE(r.gen());

  // And an empty identity between two halves must not mask a boundary
  // violation: [9] ++ [] ++ [3] is unsorted.
  auto nine = serial::reduce_state(std::vector<int>{9}, ops::Sorted<int>{});
  auto three = serial::reduce_state(std::vector<int>{3}, ops::Sorted<int>{});
  nine.combine(ops::Sorted<int>{});
  nine.combine(three);
  EXPECT_FALSE(nine.gen());
}

TEST(Sorted, UnsortednessIsSticky) {
  auto bad =
      serial::reduce_state(std::vector<int>{5, 1}, ops::Sorted<int>{});
  auto good =
      serial::reduce_state(std::vector<int>{6, 7}, ops::Sorted<int>{});
  bad.combine(good);
  EXPECT_FALSE(bad.gen());
}

// -- Histogram -----------------------------------------------------------------

TEST(Histogram, BinsByEdges) {
  ops::Histogram<double> h({0.0, 1.0, 2.0, 3.0});
  for (double x : {0.5, 1.5, 1.7, 2.1, -4.0, 3.0, 99.0}) h.accum(x);
  const auto counts = h.red_gen();
  // Interior: [0,1)=1, [1,2)=2, [2,3)=1; underflow 1 (-4), overflow 2
  // (3.0 lands at the last edge and 99 beyond it).
  EXPECT_EQ(counts, (std::vector<long>{1, 2, 1, 1, 2}));
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
}

TEST(Histogram, EdgeValuesGoToRightBin) {
  ops::Histogram<double> h({0.0, 1.0, 2.0});
  h.accum(1.0);  // exactly on an interior edge -> bin [1, 2)
  EXPECT_EQ(h.red_gen(), (std::vector<long>{0, 1, 0, 0}));
}

TEST(Histogram, RequiresSortedEdges) {
  EXPECT_THROW(ops::Histogram<double>({1.0, 0.0}), rsmpi::ArgumentError);
  EXPECT_THROW(ops::Histogram<double>({1.0}), rsmpi::ArgumentError);
}

TEST(Histogram, ScanGenRanksWithinBin) {
  const std::vector<double> v = {0.1, 0.2, 1.5, 0.3};
  const auto ranks =
      serial::scan(v, ops::Histogram<double>({0.0, 1.0, 2.0}));
  EXPECT_EQ(ranks, (std::vector<long>{1, 2, 1, 3}));
}

// -- MeanVar ---------------------------------------------------------------------

TEST(MeanVar, MatchesClosedForm) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto r = serial::reduce(v, ops::MeanVar{});
  EXPECT_EQ(r.count, 8);
  EXPECT_DOUBLE_EQ(r.mean, 5.0);
  EXPECT_DOUBLE_EQ(r.variance, 4.0);
}

TEST(MeanVar, CombineEqualsSingleStream) {
  std::mt19937 rng(3);
  std::normal_distribution<double> dist(10.0, 2.0);
  std::vector<double> all(1000);
  for (auto& x : all) x = dist(rng);

  const auto whole = serial::reduce(all, ops::MeanVar{});

  ops::MeanVar left, right;
  for (std::size_t i = 0; i < 400; ++i) left.accum(all[i]);
  for (std::size_t i = 400; i < all.size(); ++i) right.accum(all[i]);
  left.combine(right);
  const auto merged = left.gen();

  EXPECT_EQ(merged.count, whole.count);
  EXPECT_NEAR(merged.mean, whole.mean, 1e-12);
  EXPECT_NEAR(merged.variance, whole.variance, 1e-9);
}

TEST(MeanVar, EmptyAndSingleElement) {
  EXPECT_EQ(serial::reduce(std::vector<double>{}, ops::MeanVar{}).count, 0);
  const auto one = serial::reduce(std::vector<double>{5.0}, ops::MeanVar{});
  EXPECT_EQ(one.count, 1);
  EXPECT_DOUBLE_EQ(one.mean, 5.0);
  EXPECT_DOUBLE_EQ(one.variance, 0.0);
}

TEST(MeanVar, CombineWithEmptyIsIdentity) {
  ops::MeanVar a;
  a.accum(1.0);
  a.accum(3.0);
  ops::MeanVar empty;
  a.combine(empty);
  EXPECT_DOUBLE_EQ(a.gen().mean, 2.0);
  ops::MeanVar b;
  b.combine(a);
  EXPECT_DOUBLE_EQ(b.gen().mean, 2.0);
}

// -- TopBottomK --------------------------------------------------------------------

TEST(TopBottomK, FindsExtremaWithPositions) {
  std::vector<ops::Located<double>> v;
  const std::vector<double> data = {0.5, 0.9, 0.1, 0.7, 0.3};
  for (std::size_t i = 0; i < data.size(); ++i) {
    v.push_back({data[i], static_cast<long>(i)});
  }
  const auto r = serial::reduce(v, ops::TopBottomK<double>(2));
  ASSERT_EQ(r.largest.size(), 2u);
  EXPECT_EQ(r.largest[0].index, 1);
  EXPECT_EQ(r.largest[1].index, 3);
  ASSERT_EQ(r.smallest.size(), 2u);
  EXPECT_EQ(r.smallest[0].index, 2);
  EXPECT_EQ(r.smallest[1].index, 4);
}

TEST(TopBottomK, TiesResolveToSmallestPosition) {
  std::vector<ops::Located<double>> v = {
      {1.0, 5}, {1.0, 2}, {0.0, 9}, {0.0, 1}};
  const auto r = serial::reduce(v, ops::TopBottomK<double>(1));
  EXPECT_EQ(r.largest[0].index, 2);
  EXPECT_EQ(r.smallest[0].index, 1);
}

TEST(TopBottomK, FewerThanKInputs) {
  std::vector<ops::Located<double>> v = {{3.0, 0}};
  const auto r = serial::reduce(v, ops::TopBottomK<double>(10));
  EXPECT_EQ(r.largest.size(), 1u);
  EXPECT_EQ(r.smallest.size(), 1u);
}

TEST(TopBottomK, MatchesPartialSortOracle) {
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<ops::Located<double>> v(500);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = {dist(rng), static_cast<long>(i)};
  }
  const auto r = serial::reduce(v, ops::TopBottomK<double>(10));

  auto byval = v;
  std::sort(byval.begin(), byval.end(),
            [](const auto& a, const auto& b) { return a.value < b.value; });
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(r.smallest[static_cast<std::size_t>(i)].index,
              byval[static_cast<std::size_t>(i)].index);
    EXPECT_EQ(r.largest[static_cast<std::size_t>(i)].index,
              byval[byval.size() - 1 - static_cast<std::size_t>(i)].index);
  }
}

// -- Concat ------------------------------------------------------------------------

TEST(Concat, ReduceJoinsInOrder) {
  const std::string s = "parallel";
  EXPECT_EQ(serial::reduce(s, ops::Concat{}), "parallel");
}

TEST(Concat, ScanYieldsPrefixes) {
  const std::string s = "abc";
  const auto prefixes = serial::scan(s, ops::Concat{});
  EXPECT_EQ(prefixes,
            (std::vector<std::string>{"a", "ab", "abc"}));
  const auto xprefixes = serial::xscan(s, ops::Concat{});
  EXPECT_EQ(xprefixes, (std::vector<std::string>{"", "a", "ab"}));
}

}  // namespace
