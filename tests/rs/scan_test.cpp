// Property tests for the global-view scan (Listing 3): the parallel scan
// over block-distributed data must equal the sequential scan over the
// concatenation, position by position, for every rank count and operator —
// plus the scan laws relating inclusive, exclusive, and reduction.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/ops/ops.hpp"
#include "rs/scan.hpp"
#include "rs/serial.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;

template <typename T>
std::vector<T> my_block(const std::vector<T>& all, int p, int rank) {
  const std::size_t n = all.size();
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t extra = n % static_cast<std::size_t>(p);
  const std::size_t lo = base * static_cast<std::size_t>(rank) +
                         std::min<std::size_t>(rank, extra);
  const std::size_t len = base + (static_cast<std::size_t>(rank) < extra);
  return {all.begin() + static_cast<std::ptrdiff_t>(lo),
          all.begin() + static_cast<std::ptrdiff_t>(lo + len)};
}

/// Runs both scan kinds in parallel and compares this rank's output slice
/// against the serial oracle's corresponding slice.
template <typename Op, typename In>
void expect_scan_matches_serial(int p, const std::vector<In>& data, Op op) {
  const auto want_incl = rs::serial::scan(data, op);
  const auto want_excl = rs::serial::xscan(data, op);
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto incl = rs::scan(comm, mine, op);
    const auto excl = rs::xscan(comm, mine, op);
    const auto want_i = my_block(want_incl, comm.size(), comm.rank());
    const auto want_x = my_block(want_excl, comm.size(), comm.rank());
    EXPECT_EQ(incl, want_i) << "inclusive, rank " << comm.rank();
    EXPECT_EQ(excl, want_x) << "exclusive, rank " << comm.rank();
  });
}

class GlobalScanSweep : public ::testing::TestWithParam<int> {};

TEST_P(GlobalScanSweep, SumScan) {
  std::vector<long> data(500);
  std::mt19937 rng(50);
  std::uniform_int_distribution<long> dist(-50, 50);
  for (auto& x : data) x = dist(rng);
  expect_scan_matches_serial(GetParam(), data, ops::Sum<long>{});
}

TEST_P(GlobalScanSweep, MinScanIsRunningMinimum) {
  std::vector<int> data(300);
  std::mt19937 rng(51);
  std::uniform_int_distribution<int> dist(-1000, 1000);
  for (auto& x : data) x = dist(rng);
  expect_scan_matches_serial(GetParam(), data, ops::Min<int>{});
}

TEST_P(GlobalScanSweep, CountsScanRanksParticles) {
  // The paper's §3.1.3 octant ranking, block-distributed.
  std::vector<int> data;
  std::mt19937 rng(52);
  std::uniform_int_distribution<int> dist(0, 7);
  for (int i = 0; i < 640; ++i) data.push_back(dist(rng));
  expect_scan_matches_serial(GetParam(), data, ops::Counts(8));
}

TEST_P(GlobalScanSweep, ConcatScanBuildsPrefixes) {
  const std::string text = "global-view scans compose";
  const std::vector<char> data(text.begin(), text.end());
  expect_scan_matches_serial(GetParam(), data, ops::Concat{});
}

TEST_P(GlobalScanSweep, EmptyRanksPassPrefixThrough) {
  const int p = GetParam();
  const std::vector<int> data = {3, 1};  // most ranks empty for large p
  expect_scan_matches_serial(p, data, ops::Sum<long>{});
  expect_scan_matches_serial(p, data, ops::Counts(4));
}

TEST_P(GlobalScanSweep, PaperExampleSumScan) {
  // §1: scan of [6,7,6,3,8,2,8,4,8,3] = [6,13,19,22,30,32,40,44,52,55];
  // exclusive = [0,6,13,19,22,30,32,40,44,52].
  const int p = GetParam();
  const std::vector<int> data = {6, 7, 6, 3, 8, 2, 8, 4, 8, 3};
  const std::vector<long> want_incl = {6, 13, 19, 22, 30, 32, 40, 44, 52, 55};
  const std::vector<long> want_excl = {0, 6, 13, 19, 22, 30, 32, 40, 44, 52};
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    EXPECT_EQ(rs::scan(comm, mine, ops::Sum<long>{}),
              my_block(want_incl, comm.size(), comm.rank()));
    EXPECT_EQ(rs::xscan(comm, mine, ops::Sum<long>{}),
              my_block(want_excl, comm.size(), comm.rank()));
  });
}

TEST_P(GlobalScanSweep, ScanLaws) {
  // inclusive[i] = exclusive[i] + a[i]; last inclusive = reduction;
  // exclusive[0] = identity.
  const int p = GetParam();
  std::vector<long> data(257);
  std::mt19937 rng(53);
  std::uniform_int_distribution<long> dist(-9, 9);
  for (auto& x : data) x = dist(rng);

  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto incl = rs::scan(comm, mine, ops::Sum<long>{});
    const auto excl = rs::xscan(comm, mine, ops::Sum<long>{});
    ASSERT_EQ(incl.size(), mine.size());
    ASSERT_EQ(excl.size(), mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(incl[i], excl[i] + mine[i]);
    }
    if (comm.rank() == 0 && !mine.empty()) {
      EXPECT_EQ(excl[0], 0);
    }
    if (comm.rank() == comm.size() - 1 && !mine.empty()) {
      const long total = std::accumulate(data.begin(), data.end(), 0L);
      EXPECT_EQ(incl.back(), total);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, GlobalScanSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(GlobalScan, MinKScanGivesRunningTopK) {
  // Scanning with mink yields, at each position, the k smallest values
  // seen so far — the paper's reduce/scan symmetry on a reduction-style
  // operator that shares one gen().
  mprt::run(4, [](mprt::Comm& comm) {
    std::vector<int> all = {9, 4, 7, 2, 8, 1, 6, 3, 5, 0, 11, 10};
    const auto mine = my_block(all, comm.size(), comm.rank());
    const auto got = rs::scan(comm, mine, ops::MinK<int>(3));
    const auto want_all = rs::serial::scan(all, ops::MinK<int>(3));
    const auto want = my_block(want_all, comm.size(), comm.rank());
    EXPECT_EQ(got, want);
  });
}

}  // namespace
