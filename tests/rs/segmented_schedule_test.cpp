// Tests for the segmented (partitionable-state) schedules of ISSUE 5:
//
//  * the partitionable hook contract itself, via the sequential oracle
//    serial::combine_via_parts at several segmentation widths;
//  * bit-identical equivalence of ring, chunked Rabenseifner, and
//    pipelined-tree allreduce with the legacy two-message schedule for the
//    operator zoo, across power-of-two and non-power-of-two rank counts,
//    fault-free and under benign fault plans (delay/duplicate/reorder);
//  * the pipelined binomial reduce against the order-preserving binomial;
//  * the cost-model schedule autotuner's decision table and its env-var
//    override/fallback behaviour (RSMPI_SCHEDULE / RSMPI_SEGMENT_BYTES);
//  * ring selection in the nonblocking (progress-engine) path; and
//  * segment-buffer recycling surfacing in RunResult::segments_reused.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstddef>
#include <string>
#include <vector>

#include "mprt/cost_model.hpp"
#include "mprt/runtime.hpp"
#include "mprt/sim.hpp"
#include "rs/async.hpp"
#include "rs/ops/ops.hpp"
#include "rs/reduce.hpp"
#include "rs/serial.hpp"
#include "rs/state_exchange.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
using mprt::Comm;
using mprt::SimConfig;
using rs::save_op;
using rs::detail::Schedule;

// Rank counts for the equivalence sweeps: degenerate shapes, powers of two
// (pure recursive halving/doubling), and the non-powers whose remainder
// ranks take the fold-in/fold-out path.
const int kSegRanks[] = {1, 2, 3, 5, 6, 7, 8, 12, 16};

/// Benign fault plan (no drops, no kills): delayed, duplicated, and
/// reordered deliveries, seeded per (p, variant) so runs replay exactly.
SimConfig benign_plan(int p, int variant) {
  SimConfig sim;
  sim.seed = 50000 + 100ull * static_cast<std::uint64_t>(p) +
             static_cast<std::uint64_t>(variant);
  sim.delay_prob = 0.4;
  sim.max_extra_delay_s = 1.5e-5;
  sim.duplicate_prob = 0.4;
  sim.reorder_prob = 0.4;
  sim.max_compute_skew_s = 6e-6;
  return sim;
}

/// Scoped environment variable: set on construction, unset on destruction
/// (runs must not be in flight while the value changes — rank threads read
/// the environment during dispatch).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
};

ops::Counts filled_counts(std::size_t buckets, int rank, int items = 57) {
  ops::Counts c(buckets);
  for (int i = 0; i < items; ++i) {
    c.accum(static_cast<int>((static_cast<std::size_t>(rank) * 41u +
                              static_cast<std::size_t>(i) * 13u) %
                             buckets));
  }
  return c;
}

// --- hook contract ----------------------------------------------------------

TEST(PartitionableContract, TraitDetection) {
  EXPECT_TRUE(rs::op_partitionable<ops::Counts>());
  EXPECT_TRUE(rs::op_partitionable<ops::Histogram<double>>());
  EXPECT_TRUE(rs::op_partitionable<ops::MeanVar>());
  EXPECT_TRUE(rs::op_partitionable<ops::Sum<long>>());
  EXPECT_TRUE(rs::op_partitionable<ops::Min<int>>());
  EXPECT_TRUE(rs::op_partitionable<ops::Max<int>>());
  // TSQR's streamed column-panel merge makes it partitionable despite the
  // non-element-wise combine (ISSUE 9).
  EXPECT_TRUE(rs::op_partitionable<ops::TSQR>());
  // Order- or structure-dependent states cannot combine range-by-range.
  EXPECT_FALSE(rs::op_partitionable<ops::Concat>());
  EXPECT_FALSE(rs::op_partitionable<ops::Sorted<int>>());
  EXPECT_FALSE(rs::op_partitionable<ops::MinK<int>>());
}

// Segment widths for the combine_via_parts oracle sweeps.  The original
// sweep leaned on powers of two (plus the extent itself), which never
// exercised split points landing mid-way through an odd remainder — the
// production segmenter picks byte budgets, not element counts, so odd and
// prime widths are the common case, not the corner (ISSUE 9 satellite).
const std::size_t kPartWidths[] = {1, 2, 3, 5, 7, 11, 13, 31, 32,
                                   61, 97, 128, 1000};

TEST(PartitionableContract, CombineViaPartsMatchesWholeCombine) {
  const auto left = filled_counts(97, 0);
  const auto right = filled_counts(97, 1);
  const auto whole = rs::serial::combine(left, right);
  for (const std::size_t width : kPartWidths) {
    const auto parts = rs::serial::combine_via_parts(left, right, width);
    EXPECT_EQ(save_op(parts), save_op(whole)) << "segment width " << width;
  }
}

// Regression (ISSUE 9 satellite): TSQR panels weigh j+1 doubles at column
// j, so every split width that is not a multiple of the extent lands on
// uneven panels — the streamed-session merge must still be bitwise equal
// to the whole-state combine at *every* width, odd and prime included.
TEST(PartitionableContract, TsqrCombineViaPartsAtOddWidths) {
  constexpr std::size_t kCols = 7;
  ops::TSQR left(kCols), right(kCols);
  for (int i = 0; i < 23; ++i) {
    std::vector<double> row(kCols);
    for (std::size_t c = 0; c < kCols; ++c) {
      row[c] = static_cast<double>((i * 17 + static_cast<int>(c) * 29) % 37 -
                                   18);
    }
    (i % 2 == 0 ? left : right).accum(row);
  }
  const auto whole = rs::serial::combine(left, right);
  for (const std::size_t width : kPartWidths) {
    const auto parts = rs::serial::combine_via_parts(left, right, width);
    EXPECT_EQ(save_op(parts), save_op(whole)) << "segment width " << width;
  }
}

TEST(PartitionableContract, HistogramCombineViaParts) {
  const std::vector<double> edges = {0.0, 1.0, 2.5, 4.0, 10.0};
  ops::Histogram<double> left(edges), right(edges);
  for (int i = 0; i < 40; ++i) {
    left.accum(static_cast<double>(i % 11));
    right.accum(static_cast<double>((i * 7) % 13) - 1.0);
  }
  const auto whole = rs::serial::combine(left, right);
  for (const std::size_t width : kPartWidths) {
    EXPECT_EQ(rs::serial::combine_via_parts(left, right, width).red_gen(),
              whole.red_gen())
        << "segment width " << width;
  }
}

TEST(PartitionableContract, ScalarAndMeanVarDegenerateToWholeState) {
  ops::Sum<long> a, b;
  a.accum(41);
  b.accum(59);
  EXPECT_EQ(rs::serial::combine_via_parts(a, b).gen(),
            rs::serial::combine(a, b).gen());

  ops::MeanVar ma, mb;
  for (int i = 0; i < 20; ++i) {
    ma.accum(0.5 * i);
    mb.accum(1.25 * i - 3.0);
  }
  // Single-element extent: combine_via_parts performs the identical Chan
  // combine, so even the floating-point fields agree exactly.
  EXPECT_EQ(rs::serial::combine_via_parts(ma, mb).gen(),
            rs::serial::combine(ma, mb).gen());
}

TEST(PartitionableContract, SavePartLoadPartRoundTrips) {
  const auto src = filled_counts(61, 3);
  ops::Counts dst(61);
  const std::size_t n = src.part_extent();
  for (std::size_t lo = 0; lo < n; lo += 7) {
    const std::size_t hi = std::min(n, lo + 7);
    bytes::Writer w;
    src.save_part(lo, hi, w);
    EXPECT_EQ(w.size(), src.part_bytes(lo, hi));
    dst.load_part(lo, hi, w.view());
  }
  EXPECT_EQ(save_op(dst), save_op(src));
}

TEST(PartitionableContract, RangeAndSizeValidation) {
  ops::Counts c(8);
  bytes::Writer w;
  EXPECT_THROW(c.save_part(5, 3, w), ProtocolError);   // lo > hi
  EXPECT_THROW(c.save_part(0, 9, w), ProtocolError);   // hi out of bounds
  c.save_part(0, 4, w);
  EXPECT_THROW(c.combine_part(0, 3, w.view()), ProtocolError);  // wrong size
  EXPECT_THROW(c.load_part(0, 3, w.view()), ProtocolError);
}

// --- schedule equivalence ---------------------------------------------------

/// Runs the legacy two-message allreduce and each segmented schedule on
/// copies of the same accumulated state, on every rank count in kSegRanks,
/// fault-free and faulted, and hands (legacy, candidate, label) to `eq`.
template <typename Op, typename Fill, typename Eq>
void segmented_schedules_agree(const Op& prototype, Fill fill, Eq eq) {
  int variant = 0;
  for (const int p : kSegRanks) {
    for (const bool faulted : {false, true}) {
      mprt::run(
          p,
          [&](Comm& comm) {
            Op mine = prototype;
            fill(mine, comm.rank());
            Op legacy = mine;
            rs::detail::state_allreduce_reduce_bcast(comm, legacy, prototype,
                                                     /*commutative=*/true);
            Op ring = mine;
            rs::detail::state_allreduce_ring(comm, ring);
            Op rab = mine;
            rs::detail::state_allreduce_rabenseifner(comm, rab, prototype);
            Op pipe = mine;
            // A deliberately tiny segment so even small states pipeline.
            rs::detail::state_allreduce_pipelined(comm, pipe,
                                                  /*segment_bytes=*/64);
            const std::string ctx = "p=" + std::to_string(p) +
                                    (faulted ? " faulted" : "");
            eq(legacy, ring, "ring " + ctx);
            eq(legacy, rab, "rabenseifner " + ctx);
            eq(legacy, pipe, "pipelined " + ctx);
          },
          mprt::CostModel{}, faulted ? benign_plan(p, variant) : SimConfig{});
      ++variant;
    }
  }
}

TEST(SegmentedSchedules, CountsBitIdenticalAcrossSchedules) {
  segmented_schedules_agree(
      ops::Counts(97),
      [](ops::Counts& c, int rank) { c = filled_counts(97, rank); },
      [](const ops::Counts& legacy, const ops::Counts& got,
         const std::string& ctx) {
        EXPECT_EQ(save_op(got), save_op(legacy)) << ctx;
      });
}

TEST(SegmentedSchedules, HistogramBitIdenticalAcrossSchedules) {
  std::vector<double> edges;
  for (int i = 0; i <= 24; ++i) edges.push_back(0.5 * i);
  const ops::Histogram<double> prototype(edges);
  segmented_schedules_agree(
      prototype,
      [](ops::Histogram<double>& h, int rank) {
        for (int i = 0; i < 64; ++i) {
          h.accum(static_cast<double>((rank * 37 + i * 5) % 160) * 0.1 - 1.0);
        }
      },
      [](const auto& legacy, const auto& got, const std::string& ctx) {
        EXPECT_EQ(save_op(got), save_op(legacy)) << ctx;
      });
}

TEST(SegmentedSchedules, ScalarOpsBitIdenticalAcrossSchedules) {
  segmented_schedules_agree(
      ops::Sum<long>{},
      [](ops::Sum<long>& s, int rank) { s.accum(rank * 1001L + 7); },
      [](const auto& legacy, const auto& got, const std::string& ctx) {
        EXPECT_EQ(got.gen(), legacy.gen()) << ctx;
      });
  segmented_schedules_agree(
      ops::Min<int>{},
      [](ops::Min<int>& m, int rank) { m.accum((rank * 577) % 83 - 40); },
      [](const auto& legacy, const auto& got, const std::string& ctx) {
        EXPECT_EQ(got.gen(), legacy.gen()) << ctx;
      });
  segmented_schedules_agree(
      ops::Max<int>{},
      [](ops::Max<int>& m, int rank) { m.accum((rank * 733) % 89); },
      [](const auto& legacy, const auto& got, const std::string& ctx) {
        EXPECT_EQ(got.gen(), legacy.gen()) << ctx;
      });
}

TEST(SegmentedSchedules, MeanVarAgreesUpToRounding) {
  // The Chan combine is floating-point: different schedules bracket the
  // pairwise merges differently, so results agree only up to rounding.
  segmented_schedules_agree(
      ops::MeanVar{},
      [](ops::MeanVar& m, int rank) {
        for (int i = 0; i < 25; ++i) {
          m.accum(static_cast<double>(rank) * 0.75 + 0.1 * i);
        }
      },
      [](const ops::MeanVar& legacy, const ops::MeanVar& got,
         const std::string& ctx) {
        const auto a = legacy.gen();
        const auto b = got.gen();
        EXPECT_EQ(b.count, a.count) << ctx;
        EXPECT_NEAR(b.mean, a.mean, 1e-9) << ctx;
        EXPECT_NEAR(b.variance, a.variance, 1e-9) << ctx;
      });
}

TEST(SegmentedSchedules, PipelinedReduceMatchesBinomialBitExact) {
  // The pipelined reduce replays the binomial tree segment by segment, so
  // rank 0's state must be bit-identical at *every* segment size.
  for (const int p : kSegRanks) {
    for (const std::size_t seg :
         {std::size_t{64}, std::size_t{200}, std::size_t{1} << 20}) {
      mprt::run(p, [&](Comm& comm) {
        const ops::Counts prototype(97);
        ops::Counts mine = filled_counts(97, comm.rank());
        ops::Counts binomial = mine;
        rs::detail::state_reduce_binomial(comm, binomial, prototype);
        ops::Counts pipelined = mine;
        rs::detail::state_reduce_pipelined(comm, pipelined, seg);
        if (comm.rank() == 0) {
          EXPECT_EQ(save_op(pipelined), save_op(binomial))
              << "p=" << p << " segment_bytes=" << seg;
        }
      });
    }
  }
}

// --- autotuner --------------------------------------------------------------

TEST(Autotuner, DecisionTableUnderDefaultModel) {
  const mprt::CostModel m;  // o = 1 us, L = 10 us, G = 1 ns/B
  const std::size_t seg = rs::detail::kDefaultSegmentBytes;
  using rs::detail::choose_allreduce_schedule;

  // Small states: latency-dominated, the log-round butterfly wins.
  EXPECT_EQ(choose_allreduce_schedule(m, 8, 4 * 1024, seg),
            Schedule::kButterfly);
  EXPECT_EQ(choose_allreduce_schedule(m, 16, 16 * 1024, seg),
            Schedule::kButterfly);
  // One-segment states past the butterfly's comfort zone: chunked
  // Rabenseifner (bandwidth-optimal volume in only 2·log2 p rounds, while
  // a single-segment pipeline degenerates to the two-message tree).
  EXPECT_EQ(choose_allreduce_schedule(m, 16, 64 * 1024, seg),
            Schedule::kRabenseifner);
  EXPECT_EQ(choose_allreduce_schedule(m, 8, 64 * 1024, seg),
            Schedule::kRabenseifner);
  // A shallow pipeline (n barely past one segment) at small non-power-of-
  // two p: the ring's 2·(p−1) chunk hops undercut both the halving
  // schedule's whole-state fold penalty and a depth-2 pipeline.
  EXPECT_EQ(choose_allreduce_schedule(m, 3, 100 * 1024, seg),
            Schedule::kRing);
  // Many-segment states: the pipelined tree's fill-and-drain critical path
  // (segments overlap across levels) beats every bulk schedule.
  EXPECT_EQ(choose_allreduce_schedule(m, 16, 4 * 1024 * 1024, seg),
            Schedule::kPipelined);
  EXPECT_EQ(choose_allreduce_schedule(m, 8, 512 * 1024, seg),
            Schedule::kPipelined);
}

TEST(Autotuner, ChoiceIsTheCostModelArgmin) {
  const mprt::CostModel m;
  const std::size_t seg = rs::detail::kDefaultSegmentBytes;
  using SC = mprt::ScheduleCost;
  for (const int p : {2, 3, 5, 8, 12, 16, 32}) {
    for (const std::size_t bytes :
         {std::size_t{256}, std::size_t{4096}, std::size_t{65536},
          std::size_t{1} << 20, std::size_t{4} << 20}) {
      const Schedule s = rs::detail::choose_allreduce_schedule(m, p, bytes, seg);
      const double costs[] = {
          SC::two_message(m, p, bytes), SC::butterfly(m, p, bytes),
          SC::rabenseifner(m, p, bytes), SC::ring(m, p, bytes),
          SC::pipelined_tree_allreduce(m, p, bytes, seg)};
      double best = costs[0];
      for (const double c : costs) best = std::min(best, c);
      const double chosen =
          s == Schedule::kTwoMessage    ? costs[0]
          : s == Schedule::kButterfly   ? costs[1]
          : s == Schedule::kRabenseifner ? costs[2]
          : s == Schedule::kRing         ? costs[3]
                                         : costs[4];
      EXPECT_DOUBLE_EQ(chosen, best) << "p=" << p << " bytes=" << bytes;
    }
  }
}

TEST(Autotuner, EnvParsing) {
  using rs::detail::schedule_from_env;
  EXPECT_EQ(schedule_from_env(), Schedule::kAuto);  // unset
  {
    EnvGuard g("RSMPI_SCHEDULE", "auto");
    EXPECT_EQ(schedule_from_env(), Schedule::kAuto);
  }
  {
    EnvGuard g("RSMPI_SCHEDULE", "ring");
    EXPECT_EQ(schedule_from_env(), Schedule::kRing);
  }
  {
    EnvGuard g("RSMPI_SCHEDULE", "reduce_bcast");  // accepted alias
    EXPECT_EQ(schedule_from_env(), Schedule::kTwoMessage);
  }
  {
    EnvGuard g("RSMPI_SCHEDULE", "pipelined");
    EXPECT_EQ(schedule_from_env(), Schedule::kPipelined);
  }
  {
    EnvGuard g("RSMPI_SCHEDULE", "hypercube");  // typo → loud failure
    EXPECT_THROW(schedule_from_env(), ArgumentError);
  }
  using rs::detail::segment_bytes_from_env;
  EXPECT_EQ(segment_bytes_from_env(), rs::detail::kDefaultSegmentBytes);
  {
    EnvGuard g("RSMPI_SEGMENT_BYTES", "4096");
    EXPECT_EQ(segment_bytes_from_env(), 4096u);
  }
  {
    EnvGuard g("RSMPI_SEGMENT_BYTES", "0");  // clamped to something sane
    EXPECT_EQ(segment_bytes_from_env(), 1u);
  }
}

TEST(Autotuner, EnvOverrideForcesScheduleThroughDispatch) {
  // Forced ring through the public dispatch must match the legacy result
  // (which ignores the env var) bit-exactly.
  EnvGuard g("RSMPI_SCHEDULE", "ring");
  for (const int p : {4, 6}) {
    mprt::run(p, [&](Comm& comm) {
      const ops::Counts prototype(97);
      ops::Counts forced = filled_counts(97, comm.rank());
      ops::Counts legacy = forced;
      rs::detail::state_allreduce(comm, forced, prototype);
      rs::detail::state_allreduce_reduce_bcast(comm, legacy, prototype,
                                               /*commutative=*/true);
      EXPECT_EQ(save_op(forced), save_op(legacy)) << "p=" << p;
    });
  }
}

TEST(Autotuner, NonPartitionableOpFallsBackGracefully) {
  // MinK is commutative but not partitionable: a segmented schedule name
  // in the env must fall back to the butterfly, not fail.
  EnvGuard g("RSMPI_SCHEDULE", "ring");
  mprt::run(6, [&](Comm& comm) {
    std::vector<int> mine;
    for (int i = 0; i < 9; ++i) mine.push_back((comm.rank() * 41 + i * 13) % 97);
    const auto got = rs::reduce(comm, mine, ops::MinK<int>(3));
    std::vector<int> global;
    for (int r = 0; r < comm.size(); ++r) {
      for (int i = 0; i < 9; ++i) global.push_back((r * 41 + i * 13) % 97);
    }
    EXPECT_EQ(got, rs::serial::reduce(global, ops::MinK<int>(3)));
  });
}

TEST(Autotuner, AutotunedDispatchMatchesLegacyOnLargeStates) {
  // Large partitionable state with no env override: the dispatcher picks a
  // segmented schedule (whichever the model prefers) and the result must
  // still be bit-identical to the legacy path.
  constexpr std::size_t kBuckets = 1 << 15;  // 256 KiB of state
  for (const int p : {8, 12}) {
    mprt::run(p, [&](Comm& comm) {
      const ops::Counts prototype(kBuckets);
      ops::Counts tuned = filled_counts(kBuckets, comm.rank(), 200);
      ops::Counts legacy = tuned;
      rs::detail::state_allreduce(comm, tuned, prototype);
      rs::detail::state_allreduce_reduce_bcast(comm, legacy, prototype,
                                               /*commutative=*/true);
      EXPECT_EQ(save_op(tuned), save_op(legacy)) << "p=" << p;
    });
  }
}

// --- nonblocking ring -------------------------------------------------------

TEST(AsyncRing, EnvForcedRingMatchesOracle) {
  EnvGuard g("RSMPI_SCHEDULE", "ring");
  for (const int p : {2, 4, 6}) {
    std::vector<int> global;
    for (int r = 0; r < p; ++r) {
      for (int i = 0; i < 57; ++i) global.push_back((r * 41 + i * 13) % 97);
    }
    const auto expected = rs::serial::reduce(global, ops::Counts(97));
    mprt::run(p, [&](Comm& comm) {
      std::vector<int> mine;
      for (int i = 0; i < 57; ++i) {
        mine.push_back((comm.rank() * 41 + i * 13) % 97);
      }
      auto fut = rs::reduce_async(comm, mine, ops::Counts(97));
      EXPECT_EQ(fut.get(), expected) << "p=" << p;
    });
  }
}

TEST(AsyncRing, AutoPicksRingForLargeStates) {
  // At p=4 under the default model the ring beats the butterfly once the
  // state exceeds ~112 KB; Counts(1 << 14) is 128 KiB, so the launch path
  // selects the ring state machine on its own.  The test pins only the
  // result — identical to the oracle — but runs through the ring branch.
  constexpr std::size_t kBuckets = 1 << 14;
  const int p = 4;
  std::vector<int> global;
  for (int r = 0; r < p; ++r) {
    for (int i = 0; i < 300; ++i) {
      global.push_back(static_cast<int>((static_cast<std::size_t>(r) * 41u +
                                         static_cast<std::size_t>(i) * 13u) %
                                        kBuckets));
    }
  }
  const auto expected = rs::serial::reduce(global, ops::Counts(kBuckets));
  mprt::run(p, [&](Comm& comm) {
    std::vector<int> mine;
    for (int i = 0; i < 300; ++i) {
      mine.push_back(static_cast<int>((static_cast<std::size_t>(comm.rank()) *
                                           41u +
                                       static_cast<std::size_t>(i) * 13u) %
                                      kBuckets));
    }
    auto fut = rs::reduce_async(comm, mine, ops::Counts(kBuckets));
    EXPECT_EQ(fut.get(), expected);
  });
}

// --- segment-buffer recycling -----------------------------------------------

TEST(SegmentReuse, PipelinedRunRecyclesSegmentBuffers) {
  EnvGuard sched("RSMPI_SCHEDULE", "pipelined");
  EnvGuard seg("RSMPI_SEGMENT_BYTES", "1024");
  const auto result = mprt::run(8, [&](Comm& comm) {
    const ops::Counts prototype(2048);  // 16 KiB state → 16 segments
    for (int iter = 0; iter < 3; ++iter) {
      ops::Counts c = filled_counts(2048, comm.rank(), 80);
      rs::detail::state_allreduce(comm, c, prototype);
    }
  });
  // Size-class bins serve repeat segment-sized acquires from the matching
  // bin; the counter rolls up into the run result.
  EXPECT_GT(result.segments_reused, 0u);
}

}  // namespace
