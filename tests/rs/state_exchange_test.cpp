// Tests for the combine-phase plumbing (rs/state_exchange.hpp): the
// pooled zero-copy path's allocation behaviour (ISSUE 3's acceptance
// property), and equivalence of the new schedules — recursive-doubling
// butterfly allreduce and the deferred-prefix xscan — with the legacy
// ones, for every operator in rs/ops/ops.hpp.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/op_concepts.hpp"
#include "rs/ops/ops.hpp"
#include "rs/state_exchange.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
using mprt::Comm;
using rs::save_op;
using rs::detail::state_allreduce;
using rs::detail::state_allreduce_butterfly;
using rs::detail::state_allreduce_reduce_bcast;
using rs::detail::state_xscan;
using rs::detail::state_xscan_eager;

// Rank counts exercised by the equivalence sweeps: powers of two (pure
// butterfly), non-powers (the Rabenseifner fold-in/fold-out), and the
// p=1 / p=2 degenerate shapes.
const int kRankSweep[] = {1, 2, 3, 5, 8, 13, 16};

// --- harnesses --------------------------------------------------------------

/// Accumulates a rank-specific state, runs the butterfly and the
/// deterministic legacy schedule (order-preserving binomial reduce +
/// broadcast) on copies of it, and hands both results to
/// `check(butterfly, legacy)` on every rank.
template <typename Op, typename Fill, typename Check>
void allreduce_both(const Op& prototype, Fill fill, Check check) {
  for (const int p : kRankSweep) {
    mprt::run(p, [&](Comm& comm) {
      Op mine = prototype;
      fill(mine, comm.rank());
      Op butterfly = mine;
      state_allreduce_butterfly(comm, butterfly, prototype);
      Op legacy = mine;
      state_allreduce_reduce_bcast(comm, legacy, prototype,
                                   /*commutative=*/false);
      check(butterfly, legacy);
    });
  }
}

/// Same shape for the exclusive scan: the deferred-prefix formulation
/// against the eager legacy one.  The deferred fold replays the eager
/// bracketing exactly, so results must be BIT-identical for every
/// operator — including non-commutative and floating-point ones.
template <typename Op, typename Fill, typename Check>
void xscan_both(const Op& prototype, Fill fill, Check check) {
  for (const int p : kRankSweep) {
    mprt::run(p, [&](Comm& comm) {
      Op mine = prototype;
      fill(mine, comm.rank());
      Op deferred = mine;
      state_xscan(comm, deferred, prototype);
      Op eager = mine;
      state_xscan_eager(comm, eager, prototype);
      check(deferred, eager);
    });
  }
}

/// Equivalence checks for the common cases.  `gen_eq` compares generated
/// outputs exactly (right for order-independent combines and for the
/// bit-identical xscan claim); `bytes_eq` compares serialized states,
/// additionally exercising each operator's save path.
template <typename Op>
void gen_eq(const Op& a, const Op& b) {
  EXPECT_EQ(a.gen(), b.gen());
}
template <typename Op>
void bytes_eq(const Op& a, const Op& b) {
  EXPECT_EQ(save_op(a), save_op(b));
}

// --- allreduce equivalence: butterfly vs reduce+bcast -----------------------
// Exact (order-independent) commutative operators must agree bitwise with
// the legacy schedule; floating-point mixers agree to rounding.

TEST(ButterflyEquivalence, ScalarFoldOps) {
  allreduce_both(
      ops::Sum<long>{},
      [](ops::Sum<long>& op, int r) {
        for (int i = 0; i < 24; ++i) op.accum(r * 31 + i);
      },
      gen_eq<ops::Sum<long>>);
  allreduce_both(
      ops::Product<long>{},
      [](ops::Product<long>& op, int r) {
        for (int i = 0; i < 8; ++i) op.accum(1 + (r + i) % 3);
      },
      gen_eq<ops::Product<long>>);
  allreduce_both(
      ops::Min<int>{},
      [](ops::Min<int>& op, int r) {
        for (int i = 0; i < 16; ++i) op.accum((r * 7919 + i * 104729) % 1000);
      },
      gen_eq<ops::Min<int>>);
  allreduce_both(
      ops::Max<int>{},
      [](ops::Max<int>& op, int r) {
        for (int i = 0; i < 16; ++i) op.accum((r * 7919 + i * 104729) % 1000);
      },
      gen_eq<ops::Max<int>>);
}

TEST(ButterflyEquivalence, LogicalAndCountingOps) {
  allreduce_both(
      ops::All{},
      [](ops::All& op, int r) {
        for (int i = 0; i < 10; ++i) op.accum((r + i) % 7 != 0);
      },
      gen_eq<ops::All>);
  allreduce_both(
      ops::Any{},
      [](ops::Any& op, int r) {
        for (int i = 0; i < 10; ++i) op.accum((r * 10 + i) == 42);
      },
      gen_eq<ops::Any>);

  const auto is_even = [](int x) { return x % 2 == 0; };
  using CountEven = ops::CountIf<int, decltype(is_even)>;
  allreduce_both(
      CountEven(is_even),
      [](CountEven& op, int r) {
        for (int i = 0; i < 20; ++i) op.accum(r * 3 + i);
      },
      gen_eq<CountEven>);

  // With one value holding a strict majority on every rank, the vote
  // summaries all carry the same candidate and merge by weight addition,
  // which is order-independent.
  allreduce_both(
      ops::MajorityVote<int>{},
      [](ops::MajorityVote<int>& op, int r) {
        for (int i = 0; i < 10; ++i) op.accum(i < 9 ? 7 : r);
      },
      gen_eq<ops::MajorityVote<int>>);
}

TEST(ButterflyEquivalence, LocatedExtremaOps) {
  using E = ops::Located<double, long>;
  allreduce_both(
      ops::MinI<double, long>{},
      [](ops::MinI<double, long>& op, int r) {
        for (int i = 0; i < 16; ++i) {
          const long g = r * 16 + i;
          op.accum(E{static_cast<double>((g * 7919) % 997), g});
        }
      },
      gen_eq<ops::MinI<double, long>>);
  allreduce_both(
      ops::MaxI<double, long>{},
      [](ops::MaxI<double, long>& op, int r) {
        for (int i = 0; i < 16; ++i) {
          const long g = r * 16 + i;
          op.accum(E{static_cast<double>((g * 6151) % 997), g});
        }
      },
      gen_eq<ops::MaxI<double, long>>);
}

TEST(ButterflyEquivalence, SelectionOps) {
  allreduce_both(
      ops::MinK<int>(5),
      [](ops::MinK<int>& op, int r) {
        for (int i = 0; i < 32; ++i) op.accum((r * 131 + i * 37) % 4096);
      },
      bytes_eq<ops::MinK<int>>);
  allreduce_both(
      ops::MaxK<int>(5),
      [](ops::MaxK<int>& op, int r) {
        for (int i = 0; i < 32; ++i) op.accum((r * 131 + i * 37) % 4096);
      },
      bytes_eq<ops::MaxK<int>>);

  using TBK = ops::TopBottomK<double, std::int64_t>;
  allreduce_both(
      TBK(6),
      [](TBK& op, int r) {
        for (int i = 0; i < 40; ++i) {
          const std::int64_t g = r * 40 + i;
          op.accum({static_cast<double>((g * 7919) % 104729), g});
        }
      },
      [](const TBK& a, const TBK& b) {
        EXPECT_EQ(a.gen().largest, b.gen().largest);
        EXPECT_EQ(a.gen().smallest, b.gen().smallest);
        EXPECT_EQ(save_op(a), save_op(b));
      });
}

TEST(ButterflyEquivalence, BucketingOps) {
  allreduce_both(
      ops::Counts(16),
      [](ops::Counts& op, int r) {
        for (int i = 0; i < 48; ++i) op.accum((r * 5 + i * 3) % 16);
      },
      [](const ops::Counts& a, const ops::Counts& b) {
        EXPECT_EQ(a.red_gen(), b.red_gen());
        EXPECT_EQ(save_op(a), save_op(b));
      });

  std::vector<double> edges;
  for (int i = 0; i <= 32; ++i) edges.push_back(i * 4.0);
  allreduce_both(
      ops::Histogram<double>(edges),
      [](ops::Histogram<double>& op, int r) {
        for (int i = 0; i < 64; ++i) op.accum((r * 17 + i * 5) % 128);
      },
      [](const ops::Histogram<double>& a, const ops::Histogram<double>& b) {
        EXPECT_EQ(a.red_gen(), b.red_gen());
        EXPECT_EQ(save_op(a), save_op(b));
      });
}

TEST(ButterflyEquivalence, SketchOps) {
  allreduce_both(
      ops::HyperLogLog<long>(8),
      [](ops::HyperLogLog<long>& op, int r) {
        for (int i = 0; i < 200; ++i) op.accum(r * 200 + i);
      },
      bytes_eq<ops::HyperLogLog<long>>);
  allreduce_both(
      ops::BloomFilter<long>(1024, 3),
      [](ops::BloomFilter<long>& op, int r) {
        for (int i = 0; i < 50; ++i) op.accum(r * 50 + i);
      },
      bytes_eq<ops::BloomFilter<long>>);
  // With at most 8 distinct values against k = 16, the Misra–Gries merge
  // never decrements, so it degenerates to order-independent counter
  // addition.  (HeavyHitters has no combine_from_bytes on purpose: it
  // keeps the save/load fallback path of the zero-copy machinery covered.)
  allreduce_both(
      ops::HeavyHitters<int>(16),
      [](ops::HeavyHitters<int>& op, int r) {
        for (int i = 0; i < 64; ++i) op.accum((r + i) % 8);
      },
      gen_eq<ops::HeavyHitters<int>>);
}

TEST(ButterflyEquivalence, AdapterOps) {
  const auto half = [](int x) { return static_cast<long>(x) / 2; };
  auto mapped_proto = ops::mapped<int>(half, ops::Sum<long>{});
  using MappedSum = decltype(mapped_proto);
  allreduce_both(
      mapped_proto,
      [](MappedSum& op, int r) {
        for (int i = 0; i < 20; ++i) op.accum(r * 20 + i);
      },
      [](const MappedSum& a, const MappedSum& b) {
        EXPECT_EQ(a.red_gen(), b.red_gen());
      });

  auto fuse_proto = ops::fuse(ops::Min<int>{}, ops::Max<int>{});
  using MinMax = decltype(fuse_proto);
  allreduce_both(
      fuse_proto,
      [](MinMax& op, int r) {
        for (int i = 0; i < 16; ++i) op.accum((r * 523 + i * 101) % 2048);
      },
      [](const MinMax& a, const MinMax& b) {
        EXPECT_EQ(a.red_gen(), b.red_gen());
      });
}

TEST(ButterflyEquivalence, FloatingPointOpsAgreeToRounding) {
  // KahanSum and MeanVar mix doubles in combine, and the butterfly folds
  // partials in a different order than the binomial tree — results agree
  // to rounding, not bitwise (that is the compensated sum's whole point).
  allreduce_both(
      ops::KahanSum{},
      [](ops::KahanSum& op, int r) {
        for (int i = 0; i < 50; ++i) {
          op.accum((r * 50 + i) * 1e-3 + (i % 2 ? 1e10 : -1e10));
        }
      },
      [](const ops::KahanSum& a, const ops::KahanSum& b) {
        EXPECT_NEAR(a.gen(), b.gen(), 1e-6);
      });
  allreduce_both(
      ops::MeanVar{},
      [](ops::MeanVar& op, int r) {
        for (int i = 0; i < 40; ++i) op.accum(r * 1.5 + i * 0.125);
      },
      [](const ops::MeanVar& a, const ops::MeanVar& b) {
        const auto ra = a.gen();
        const auto rb = b.gen();
        EXPECT_EQ(ra.count, rb.count);
        EXPECT_NEAR(ra.mean, rb.mean, 1e-9);
        EXPECT_NEAR(ra.variance, rb.variance, 1e-9);
      });
}

TEST(AllreduceDispatch, RoutesNonCommutativeOpsToLegacySchedule) {
  // The dispatcher must not hand a non-commutative operator to the
  // butterfly; Concat makes any reordering visible immediately.
  for (const int p : kRankSweep) {
    mprt::run(p, [&](Comm& comm) {
      ops::Concat mine;
      for (int i = 0; i < 3; ++i) {
        mine.accum(static_cast<char>('a' + (comm.rank() + i) % 26));
      }
      std::string want;
      for (int r = 0; r < p; ++r) {
        for (int i = 0; i < 3; ++i) {
          want.push_back(static_cast<char>('a' + (r + i) % 26));
        }
      }
      state_allreduce(comm, mine, ops::Concat{});
      EXPECT_EQ(mine.gen(), want);
    });
  }
}

// --- xscan equivalence: deferred-prefix vs eager ----------------------------
// Bit-identical for every operator, non-commutative and floating-point
// included: the deferred fold replays the eager bracketing exactly.

TEST(DeferredXscanEquivalence, CommutativeOps) {
  xscan_both(
      ops::Sum<long>{},
      [](ops::Sum<long>& op, int r) {
        for (int i = 0; i < 24; ++i) op.accum(r * 31 + i);
      },
      gen_eq<ops::Sum<long>>);
  xscan_both(
      ops::Counts(16),
      [](ops::Counts& op, int r) {
        for (int i = 0; i < 48; ++i) op.accum((r * 5 + i * 3) % 16);
      },
      bytes_eq<ops::Counts>);
  using TBK = ops::TopBottomK<double, std::int64_t>;
  xscan_both(
      TBK(6),
      [](TBK& op, int r) {
        for (int i = 0; i < 40; ++i) {
          const std::int64_t g = r * 40 + i;
          op.accum({static_cast<double>((g * 7919) % 104729), g});
        }
      },
      bytes_eq<TBK>);
  xscan_both(
      ops::HyperLogLog<long>(8),
      [](ops::HyperLogLog<long>& op, int r) {
        for (int i = 0; i < 200; ++i) op.accum(r * 200 + i);
      },
      bytes_eq<ops::HyperLogLog<long>>);
}

TEST(DeferredXscanEquivalence, FloatingPointOpsBitIdentical) {
  // The strong form of the claim: even for floating-point states, whose
  // combines are rounding-order sensitive, deferring the prefix fold off
  // the critical path changes NOTHING about which combines happen in
  // which bracketing — doubles come out bit-for-bit equal.
  xscan_both(
      ops::KahanSum{},
      [](ops::KahanSum& op, int r) {
        for (int i = 0; i < 50; ++i) {
          op.accum((r * 50 + i) * 1e-3 + (i % 2 ? 1e10 : -1e10));
        }
      },
      gen_eq<ops::KahanSum>);
  xscan_both(
      ops::MeanVar{},
      [](ops::MeanVar& op, int r) {
        for (int i = 0; i < 40; ++i) op.accum(r * 1.5 + i * 0.125);
      },
      gen_eq<ops::MeanVar>);
}

TEST(DeferredXscanEquivalence, NonCommutativeOps) {
  xscan_both(
      ops::Concat{},
      [](ops::Concat& op, int r) {
        for (int i = 0; i < 4; ++i) {
          op.accum(static_cast<char>('a' + (r + i) % 26));
        }
      },
      gen_eq<ops::Concat>);
  xscan_both(
      ops::First<int>{},
      [](ops::First<int>& op, int r) { op.accum(r * 100); },
      gen_eq<ops::First<int>>);
  xscan_both(
      ops::Last<int>{},
      [](ops::Last<int>& op, int r) { op.accum(r * 100 + 7); },
      gen_eq<ops::Last<int>>);
  xscan_both(
      ops::MaxSubarray<long>{},
      [](ops::MaxSubarray<long>& op, int r) {
        for (int i = 0; i < 20; ++i) op.accum(((r * 13 + i * 7) % 11) - 5);
      },
      gen_eq<ops::MaxSubarray<long>>);
  xscan_both(
      ops::Sorted<int>{},
      [](ops::Sorted<int>& op, int r) {
        // Sorted within each rank; rank 5's block breaks the global order.
        for (int i = 0; i < 8; ++i) op.accum((r == 5 ? 0 : r * 8) + i);
      },
      gen_eq<ops::Sorted<int>>);

  using SegSum = ops::Segmented<ops::Sum<long>, long>;
  xscan_both(
      SegSum(ops::Sum<long>{}),
      [](SegSum& op, int r) {
        for (int i = 0; i < 6; ++i) {
          op.accum(ops::Seg<long>{r * 6 + i, (r * 6 + i) % 5 == 0});
        }
      },
      [](const SegSum& a, const SegSum& b) {
        EXPECT_EQ(a.red_gen(), b.red_gen());
        EXPECT_EQ(save_op(a), save_op(b));
      });
}

// --- the zero-copy pooled path's allocation behaviour -----------------------

/// Histogram prototype with ~2048 bins: a 16 KB state, far past the 64 B
/// inline threshold, so every exchange exercises the heap-buffer path.
ops::Histogram<double> big_histogram() {
  std::vector<double> edges;
  for (int i = 0; i <= 2048; ++i) edges.push_back(static_cast<double>(i));
  return ops::Histogram<double>(edges);
}

// The acceptance property behind ISSUE 3's ">= 50% fewer heap
// allocations": once each rank's pool is warm, a state_allreduce round
// performs ZERO payload allocations and ZERO payload copies — every send
// serializes into a recycled buffer and moves it to the receiver, and
// every receive buffer is recycled after its in-place combine.
TEST(ZeroCopyPath, WarmAllreduceMakesNoAllocationsOrCopies) {
  constexpr int kRanks = 8;
  const auto prototype = big_histogram();
  mprt::run(kRanks, [&](Comm& comm) {
    auto mine = prototype;
    for (int i = 0; i < 256; ++i) {
      mine.accum((comm.rank() * 37 + i * 11) % 2048);
    }

    // Warm-up pass: pools start empty, so this one may allocate.
    auto warm = mine;
    state_allreduce(comm, warm, prototype);
    EXPECT_GT(comm.payload_allocs(), 0u);  // cold pool had to allocate
    EXPECT_EQ(comm.payload_copies(), 0u);  // but never copied a payload
    comm.reset_counters();

    // Steady state: every buffer comes from this rank's pool.
    auto hot = mine;
    state_allreduce(comm, hot, prototype);
    EXPECT_EQ(comm.payload_allocs(), 0u);
    EXPECT_EQ(comm.payload_copies(), 0u);
    EXPECT_EQ(comm.pool_stats().misses, 0u);
    EXPECT_GT(comm.pool_stats().hits, 0u);
    EXPECT_GT(comm.sends_moved(), 0u);

    // Both passes computed the same (correct) reduction.
    EXPECT_EQ(warm.red_gen(), hot.red_gen());
  });
}

TEST(ZeroCopyPath, WarmXscanHalvesAllocationsAndNeverCopies) {
  // The scan's send/receive pattern is unbalanced (rank 0 only sends,
  // rank p-1 only receives), so unlike the butterfly the pools can't
  // reach a zero-allocation steady state on every rank.  The acceptance
  // bound still holds in aggregate: with warm pools, a scan pass
  // allocates for at most half of its sends (>= 50% fewer allocations
  // than the legacy one-alloc-per-send path), and copies nothing.
  constexpr int kRanks = 8;
  const auto prototype = big_histogram();
  std::array<std::uint64_t, kRanks> allocs{};
  std::array<std::uint64_t, kRanks> sends{};
  mprt::run(kRanks, [&](Comm& comm) {
    auto mine = prototype;
    for (int i = 0; i < 256; ++i) {
      mine.accum((comm.rank() * 53 + i * 13) % 2048);
    }
    auto warm = mine;
    state_xscan(comm, warm, prototype);
    comm.reset_counters();

    auto hot = mine;
    state_xscan(comm, hot, prototype);
    EXPECT_EQ(comm.payload_copies(), 0u);
    allocs[static_cast<std::size_t>(comm.rank())] = comm.payload_allocs();
    sends[static_cast<std::size_t>(comm.rank())] =
        comm.sends_moved() + comm.sends_inline();
    EXPECT_EQ(warm.red_gen(), hot.red_gen());
  });
  std::uint64_t total_allocs = 0, total_sends = 0;
  for (int r = 0; r < kRanks; ++r) {
    total_allocs += allocs[static_cast<std::size_t>(r)];
    total_sends += sends[static_cast<std::size_t>(r)];
  }
  EXPECT_GT(total_sends, 0u);
  EXPECT_LE(2 * total_allocs, total_sends)
      << "steady-state scan allocated " << total_allocs << " buffers for "
      << total_sends << " sends";
}

TEST(ZeroCopyPath, SpanSendsCopyButMoveSendsAdopt) {
  // The counter semantics the benchmark's alloc comparison rests on: the
  // span overload allocates + copies per send; the move overload adopts
  // the buffer (or stores it inline when it fits in the Message).
  mprt::run(2, [](Comm& comm) {
    std::vector<std::byte> big(1024, std::byte{0x5A});
    if (comm.rank() == 0) {
      comm.send_bytes(1, 7, std::span<const std::byte>(big));
      EXPECT_EQ(comm.payload_allocs(), 1u);
      EXPECT_EQ(comm.payload_copies(), 1u);

      auto buf = comm.acquire_buffer(big.size());  // pool is cold: 1 alloc
      buf.assign(big.begin(), big.end());
      comm.send_bytes(1, 8, std::move(buf));
      EXPECT_EQ(comm.payload_allocs(), 2u);
      EXPECT_EQ(comm.payload_copies(), 1u);  // unchanged: no copy on move
      EXPECT_EQ(comm.sends_moved(), 1u);

      // Small payloads ride inline in the Message; the (capacity-bearing)
      // buffer is recycled into the pool instead of travelling.
      auto small = comm.acquire_buffer(16);
      small.resize(16, std::byte{0x3C});
      comm.send_bytes(1, 9, std::move(small));
      EXPECT_EQ(comm.sends_inline(), 1u);
      EXPECT_EQ(comm.pool_stats().dropped, 0u);
    } else {
      for (const int tag : {7, 8, 9}) {
        auto msg = comm.recv_message(0, tag);
        EXPECT_EQ(msg.payload()[0],
                  tag == 9 ? std::byte{0x3C} : std::byte{0x5A});
        comm.recycle_buffer(msg.release_storage());
      }
      // The two large payloads' buffers were recycled into this rank's
      // pool; the next acquire is served from it without allocating.
      auto reused = comm.acquire_buffer(1024);
      EXPECT_GT(comm.pool_stats().hits, 0u);
      EXPECT_EQ(comm.payload_allocs(), 0u);
      comm.recycle_buffer(std::move(reused));
    }
  });
}

}  // namespace
