// Tests for distributed run-length encoding, the First/Last operators,
// and the xscan_state building block.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "mprt/runtime.hpp"
#include "rs/algos/rle.hpp"
#include "rs/ops/firstlast.hpp"
#include "rs/reduce.hpp"
#include "rs/scan.hpp"
#include "rs/serial.hpp"

namespace {

using namespace rsmpi;
namespace ops = rs::ops;
using rs::algos::Run;

template <typename T>
std::vector<T> my_block(const std::vector<T>& all, int p, int rank) {
  const std::size_t n = all.size();
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t extra = n % static_cast<std::size_t>(p);
  const std::size_t lo = base * static_cast<std::size_t>(rank) +
                         std::min<std::size_t>(rank, extra);
  const std::size_t len = base + (static_cast<std::size_t>(rank) < extra);
  return {all.begin() + static_cast<std::ptrdiff_t>(lo),
          all.begin() + static_cast<std::ptrdiff_t>(lo + len)};
}

std::vector<Run<int>> serial_rle(const std::vector<int>& v) {
  std::vector<Run<int>> out;
  for (int x : v) {
    if (!out.empty() && out.back().value == x) {
      out.back().length += 1;
    } else {
      out.push_back({x, 1});
    }
  }
  return out;
}

// -- First / Last operators -----------------------------------------------------

TEST(FirstLast, SerialSemantics) {
  const std::vector<int> v = {4, 7, 9};
  EXPECT_EQ(rs::serial::reduce(v, ops::First<int>{}),
            (ops::Maybe<int>{true, 4}));
  EXPECT_EQ(rs::serial::reduce(v, ops::Last<int>{}),
            (ops::Maybe<int>{true, 9}));
  EXPECT_FALSE(rs::serial::reduce(std::vector<int>{}, ops::First<int>{}).has);
  EXPECT_FALSE(rs::serial::reduce(std::vector<int>{}, ops::Last<int>{}).has);
}

TEST(FirstLast, CombineSkipsEmptyStates) {
  ops::Last<int> a;  // empty
  ops::Last<int> b;
  b.accum(5);
  a.combine(b);
  EXPECT_EQ(a.gen(), (ops::Maybe<int>{true, 5}));
  ops::Last<int> c;  // empty right operand must not clobber
  a.combine(c);
  EXPECT_EQ(a.gen(), (ops::Maybe<int>{true, 5}));
}

class FirstLastSweep : public ::testing::TestWithParam<int> {};

TEST_P(FirstLastSweep, ParallelAcrossEmptyRanks) {
  const int p = GetParam();
  const std::vector<int> data = {11, 22};  // most ranks empty at large p
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    EXPECT_EQ(rs::reduce(comm, mine, ops::First<int>{}),
              (ops::Maybe<int>{true, 11}));
    EXPECT_EQ(rs::reduce(comm, mine, ops::Last<int>{}),
              (ops::Maybe<int>{true, 22}));
  });
}

TEST_P(FirstLastSweep, XscanStateCarriesPrecedingValue) {
  const int p = GetParam();
  // Rank r (non-empty) should see the last element of the nearest
  // non-empty earlier rank.
  std::vector<int> data(37);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>(i) * 3;
  }
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto carry = rs::xscan_state(comm, mine, ops::Last<int>{}).gen();
    // The element preceding my block globally:
    std::size_t lo = 0;
    {
      const std::size_t n = data.size();
      const std::size_t base = n / static_cast<std::size_t>(comm.size());
      const std::size_t extra = n % static_cast<std::size_t>(comm.size());
      lo = base * static_cast<std::size_t>(comm.rank()) +
           std::min<std::size_t>(comm.rank(), extra);
    }
    if (lo == 0) {
      EXPECT_FALSE(carry.has);
    } else {
      ASSERT_TRUE(carry.has);
      EXPECT_EQ(carry.value, data[lo - 1]);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, FirstLastSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

// -- run_length_encode -----------------------------------------------------------

class RleSweep : public ::testing::TestWithParam<int> {};

TEST_P(RleSweep, MatchesSerialOracle) {
  const int p = GetParam();
  std::mt19937 rng(123);
  std::vector<int> data;
  // Bursty data: runs of random length 1..9.
  while (data.size() < 400) {
    const int v = static_cast<int>(rng() % 5);
    const std::size_t len = 1 + rng() % 9;
    for (std::size_t i = 0; i < len; ++i) data.push_back(v);
  }
  const auto want = serial_rle(data);

  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::run_length_encode<int>(comm, mine);
    // Each rank holds its block of the run list.
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

TEST_P(RleSweep, RunSpanningManyRanks) {
  // One giant run across every rank plus a tail: partial-run merging.
  const int p = GetParam();
  std::vector<int> data(300, 7);
  data.push_back(8);
  const std::vector<rs::algos::Run<int>> want = {{7, 300}, {8, 1}};

  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::run_length_encode<int>(comm, mine);
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

TEST_P(RleSweep, AlternatingValuesMakeNRuns) {
  const int p = GetParam();
  std::vector<int> data;
  for (int i = 0; i < 100; ++i) data.push_back(i % 2);
  const auto want = serial_rle(data);
  ASSERT_EQ(want.size(), 100u);
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::run_length_encode<int>(comm, mine);
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

TEST_P(RleSweep, EmptyInput) {
  const int p = GetParam();
  mprt::run(p, [](mprt::Comm& comm) {
    const std::vector<int> nothing;
    const auto got = rs::algos::run_length_encode<int>(
        comm, std::span<const int>(nothing));
    EXPECT_TRUE(got.empty());
  });
}

TEST_P(RleSweep, UniqueConsecutiveDropsLengths) {
  const int p = GetParam();
  const std::vector<int> data = {1, 1, 2, 2, 2, 3, 1, 1};
  const std::vector<int> want = {1, 2, 3, 1};
  mprt::run(p, [&](mprt::Comm& comm) {
    const auto mine = my_block(data, comm.size(), comm.rank());
    const auto got = rs::algos::unique_consecutive<int>(comm, mine);
    EXPECT_EQ(got, my_block(want, comm.size(), comm.rank()));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RleSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

}  // namespace
